// Command mrchaos runs the deterministic chaos (nemesis) harness against a
// simulated three-region cluster: randomized crashes, region failures,
// partitions, and slow links are injected while bank-transfer and
// linearizability workloads verify invariants and a prober measures
// virtual-time recovery.
//
// Usage:
//
//	mrchaos -seed 42 -faults 25 -v
//	mrchaos -seed 42 -verify   # run twice, check schedules match
//	mrchaos -seed 42 -metrics  # include the full metrics registry in the report
package main

import (
	"flag"
	"fmt"
	"os"

	"mrdb/internal/chaos"
	"mrdb/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed (same seed => same run)")
	faults := flag.Int("faults", 10, "number of fault/heal pairs to inject")
	hold := flag.Duration("hold", 4*sim.Second, "mean fault hold duration (virtual)")
	pause := flag.Duration("pause", 6*sim.Second, "mean pause between faults (virtual)")
	movers := flag.Int("movers", 3, "concurrent bank-transfer workers")
	verbose := flag.Bool("v", false, "print events as they are injected")
	verify := flag.Bool("verify", false, "run twice and verify determinism")
	metrics := flag.Bool("metrics", false, "dump the full metrics registry into the report (covered by -verify)")
	crashes := flag.Bool("crashes", false, "restrict the nemesis to crash/restart-from-disk faults")
	elastic := flag.Bool("elastic", false, "enable the load-based allocator and replica migrator (nemesis-free unless -faults is set)")
	flag.Parse()

	if *elastic {
		// Elastic runs default to nemesis-free so placement invariants are
		// checked in isolation; an explicit -faults combines both.
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "faults" {
				explicit = true
			}
		})
		if !explicit {
			*faults = 0
		}
	}

	opts := chaos.Options{
		Seed:        *seed,
		Faults:      *faults,
		MeanHold:    *hold,
		MeanPause:   *pause,
		Movers:      *movers,
		Metrics:     *metrics,
		CrashesOnly: *crashes,
		Elastic:     *elastic,
		Verbose:     *verbose,
	}
	rep, err := chaos.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrchaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep)

	if *verify {
		opts.Verbose = false
		rep2, err := chaos.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrchaos: second run: %v\n", err)
			os.Exit(1)
		}
		if rep.SpanHash != rep2.SpanHash {
			fmt.Fprintf(os.Stderr, "mrchaos: DETERMINISM VIOLATION: span-tree hashes differ (%016x vs %016x)\n",
				rep.SpanHash, rep2.SpanHash)
			os.Exit(1)
		}
		if rep.Schedule() != rep2.Schedule() || rep.String() != rep2.String() {
			fmt.Fprintln(os.Stderr, "mrchaos: DETERMINISM VIOLATION: runs differ")
			os.Exit(1)
		}
		fmt.Println("determinism verified: second run identical (schedule, report, span hash)")
	}
	if !rep.OK() {
		fmt.Fprintln(os.Stderr, "mrchaos: invariants violated")
		os.Exit(1)
	}
}

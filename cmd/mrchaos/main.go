// Command mrchaos runs the deterministic chaos (nemesis) harness against a
// simulated three-region cluster: randomized crashes, region failures,
// partitions, and slow links are injected while bank-transfer and
// linearizability workloads verify invariants and a prober measures
// virtual-time recovery.
//
// Usage:
//
//	mrchaos -seed 42 -faults 25 -v
//	mrchaos -seed 42 -verify   # run twice, check schedules match
//	mrchaos -seed 42 -metrics  # include the full metrics registry in the report
//	mrchaos -seed 42 -export-dir out  # write OpenMetrics + Jaeger artifacts
//
// -cpuprofile FILE / -memprofile FILE write pprof profiles covering the
// whole run (including the -verify replay), for profiling the simulator
// under fault injection.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"mrdb/internal/chaos"
	"mrdb/internal/sim"
)

func main() {
	// Indirect through run so the profile-writing defers fire before the
	// process exits with the failure code.
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 1, "simulation seed (same seed => same run)")
	faults := flag.Int("faults", 10, "number of fault/heal pairs to inject")
	hold := flag.Duration("hold", 4*sim.Second, "mean fault hold duration (virtual)")
	pause := flag.Duration("pause", 6*sim.Second, "mean pause between faults (virtual)")
	movers := flag.Int("movers", 3, "concurrent bank-transfer workers")
	verbose := flag.Bool("v", false, "print events as they are injected")
	verify := flag.Bool("verify", false, "run twice and verify determinism")
	metrics := flag.Bool("metrics", false, "dump the full metrics registry into the report (covered by -verify)")
	crashes := flag.Bool("crashes", false, "restrict the nemesis to crash/restart-from-disk faults")
	elastic := flag.Bool("elastic", false, "enable the load-based allocator and replica migrator (nemesis-free unless -faults is set)")
	exportDir := flag.String("export-dir", "", "write OpenMetrics timeseries and Jaeger traces into DIR after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the whole run to FILE")
	memprofile := flag.String("memprofile", "", "write an allocation profile to FILE on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrchaos: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mrchaos: start CPU profile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrchaos: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "mrchaos: write alloc profile: %v\n", err)
			}
		}()
	}

	if *elastic {
		// Elastic runs default to nemesis-free so placement invariants are
		// checked in isolation; an explicit -faults combines both.
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "faults" {
				explicit = true
			}
		})
		if !explicit {
			*faults = 0
		}
	}

	opts := chaos.Options{
		Seed:        *seed,
		Faults:      *faults,
		MeanHold:    *hold,
		MeanPause:   *pause,
		Movers:      *movers,
		Metrics:     *metrics,
		CrashesOnly: *crashes,
		Elastic:     *elastic,
		ExportDir:   *exportDir,
		Verbose:     *verbose,
	}
	rep, err := chaos.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrchaos: %v\n", err)
		return 1
	}
	fmt.Print(rep)

	if *verify {
		opts.Verbose = false
		// The export artifacts came from the first run; don't overwrite them
		// (byte-identity of same-seed exports has its own test coverage).
		opts.ExportDir = ""
		rep2, err := chaos.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrchaos: second run: %v\n", err)
			return 1
		}
		if rep.SpanHash != rep2.SpanHash {
			fmt.Fprintf(os.Stderr, "mrchaos: DETERMINISM VIOLATION: span-tree hashes differ (%016x vs %016x)\n",
				rep.SpanHash, rep2.SpanHash)
			return 1
		}
		if rep.Schedule() != rep2.Schedule() || rep.String() != rep2.String() {
			fmt.Fprintln(os.Stderr, "mrchaos: DETERMINISM VIOLATION: runs differ")
			return 1
		}
		fmt.Println("determinism verified: second run identical (schedule, report, span hash)")
	}
	if !rep.OK() {
		fmt.Fprintln(os.Stderr, "mrchaos: invariants violated")
		return 1
	}
	return 0
}

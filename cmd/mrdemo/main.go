// Command mrdemo walks through paper §7.5.1: converting the single-region
// movr application to multi-region, counting the DDL statements required
// with the new declarative syntax versus the legacy recipe (Table 2), and
// then actually executing the conversion against a simulated cluster.
package main

import (
	"fmt"

	"mrdb/internal/cluster"
	"mrdb/internal/core"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
)

func main() {
	regions := []simnet.Region{simnet.USEast1, simnet.EuropeW2, simnet.AsiaNE1}

	fmt.Println("== Paper §7.5.1: what it takes to make movr multi-region ==")
	spec := core.MovrSchema()
	newStmts := core.NewSyntaxConvertSchema(spec, regions)
	legacyStmts := core.LegacyConvertSchema(spec, regions)
	fmt.Printf("\nLegacy recipe: %d statements (partitioning + zone configs + duplicate indexes)\n", len(legacyStmts))
	for _, s := range legacyStmts[:4] {
		fmt.Printf("  %s\n", s)
	}
	fmt.Printf("  ... and %d more\n", len(legacyStmts)-4)
	fmt.Printf("\nNew declarative syntax: %d statements\n", len(newStmts))
	for _, s := range newStmts {
		fmt.Printf("  %s\n", s)
	}
	fmt.Printf("\nAdd a region:  legacy %d statements -> new syntax %d\n",
		len(core.LegacyAddRegion(spec, "us-west1")), len(core.NewSyntaxAddRegion(spec, "us-west1")))
	fmt.Printf("Drop a region: legacy %d statements -> new syntax %d\n",
		len(core.LegacyDropRegion(spec, regions[2])), len(core.NewSyntaxDropRegion(spec, regions[2])))

	fmt.Println("\n== Now do it for real: single-region movr -> multi-region ==")
	c := cluster.New(cluster.Config{Seed: 3, Regions: cluster.ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	catalog := sql.NewCatalog()
	c.Sim.Spawn("mrdemo", func(p *sim.Proc) {
		defer c.Sim.Stop()
		s := sql.NewSession(c, catalog, c.GatewayFor(simnet.USEast1))
		must := func(q string) {
			if _, err := s.Exec(p, q); err != nil {
				panic(fmt.Sprintf("%s: %v", q, err))
			}
			fmt.Printf("  ok: %s\n", q)
		}
		fmt.Println("\n-- The single-region application (one region, default localities):")
		must(`CREATE DATABASE movr PRIMARY REGION "us-east1"`)
		must(`CREATE TABLE users (id INT PRIMARY KEY, city STRING NOT NULL, email STRING UNIQUE, name STRING)`)
		must(`CREATE TABLE promo_codes (code STRING PRIMARY KEY, description STRING)`)
		p.Sleep(sim.Second)
		must(`INSERT INTO users (id, city, email, name) VALUES (1, 'new york', 'amy@movr.com', 'Amy')`)
		must(`INSERT INTO promo_codes (code, description) VALUES ('FIVE', 'five off')`)

		fmt.Println("\n-- Conversion (the handful of statements Table 2 counts):")
		must(`ALTER DATABASE movr ADD REGION "europe-west2"`)
		must(`ALTER DATABASE movr ADD REGION "asia-northeast1"`)
		must(`ALTER TABLE users SET LOCALITY REGIONAL BY ROW`)
		must(`ALTER TABLE promo_codes SET LOCALITY GLOBAL`)
		p.Sleep(2 * sim.Second)

		fmt.Println("\n-- Existing data survived the conversion and new localities work:")
		asia := sql.NewSession(c, catalog, c.GatewayFor(simnet.AsiaNE1))
		asia.Database = "movr"
		start := p.Now()
		res, err := asia.Exec(p, `SELECT name FROM users WHERE email = 'amy@movr.com'`)
		if err != nil || len(res.Rows) != 1 {
			panic(fmt.Sprintf("lost amy: %v %v", res, err))
		}
		fmt.Printf("  amy is still there (read from asia in %s)\n", p.Now().Sub(start))
		start = p.Now()
		if _, err := asia.Exec(p, `SELECT description FROM promo_codes WHERE code = 'FIVE'`); err != nil {
			panic(err)
		}
		fmt.Printf("  promo read from asia in %s (GLOBAL => local)\n", p.Now().Sub(start))
		start = p.Now()
		if _, err := asia.Exec(p, `INSERT INTO users (id, city, email, name) VALUES (2, 'tokyo', 'kei@movr.com', 'Kei')`); err != nil {
			panic(err)
		}
		fmt.Printf("  tokyo user signs up from asia in %s (REGIONAL BY ROW => homed locally)\n", p.Now().Sub(start))
	})
	c.Sim.Run()
}

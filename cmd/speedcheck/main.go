// Command speedcheck compares a freshly generated BENCH_speed.json against
// a committed baseline and fails only on regressions beyond 2x (events/sec
// halving, or allocs/event / allocs/txn doubling, on any optimized arm).
// Anything smaller is hardware variance between the machine that committed
// the baseline and the CI runner; allocation counts barely move across
// hardware, so a 2x jump there is a real code regression.
//
// Workloads present in the fresh run but absent from the committed baseline
// are warned about and skipped, not failed: a PR that adds a speed workload
// should not be forced to regenerate the baseline in the same commit.
//
// Usage:
//
//	speedcheck BASELINE.json FRESH.json
package main

import (
	"fmt"
	"os"

	"mrdb/internal/bench"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: speedcheck BASELINE.json FRESH.json")
		os.Exit(2)
	}
	if err := bench.SpeedCompare(os.Stdout, os.Args[1], os.Args[2]); err != nil {
		fmt.Fprintf(os.Stderr, "speedcheck: %v\n", err)
		os.Exit(1)
	}
}

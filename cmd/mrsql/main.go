// Command mrsql is an interactive SQL shell against an in-process
// simulated multi-region cluster.
//
// Usage:
//
//	mrsql [-regions us-east1,europe-west2,asia-northeast1] [-e 'stmt' ...]
//
// Reads statements from stdin (or -e flags), one per line. Besides DDL and
// DML this includes the introspection surface: EXPLAIN ANALYZE <stmt> and
// SELECTs over the mrdb_internal virtual tables (statement_statistics,
// contention_events, ranges, node_liveness, timeseries, net_links).
// Meta-commands:
//
//	\region <name>   switch the gateway region of the session
//	\regions         list cluster regions
//	\ranges          dump range descriptors
//	\stats           dump the statement-statistics registry
//	\t on|off        toggle per-statement latency output
//	\q               quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
)

func main() {
	regionsFlag := flag.String("regions", "us-east1,europe-west2,asia-northeast1",
		"comma-separated cluster regions (3 zones x 1 node each)")
	var stmts multiFlag
	flag.Var(&stmts, "e", "statement to execute (repeatable); disables the interactive loop")
	flag.Parse()

	var specs []cluster.RegionSpec
	for _, r := range strings.Split(*regionsFlag, ",") {
		specs = append(specs, cluster.RegionSpec{
			Name: simnet.Region(strings.TrimSpace(r)), Zones: 3, NodesPerZone: 1,
		})
	}
	// Sampling feeds mrdb_internal.timeseries, so interactive sessions can
	// watch the cluster's trajectory; the shell's deferred Stop() terminates
	// the sampler tickers with everything else.
	c := cluster.New(cluster.Config{Seed: 1, Regions: specs, MaxOffset: 250 * sim.Millisecond, Sampling: true})
	catalog := sql.NewCatalog()

	var input func() (string, bool)
	if len(stmts) > 0 {
		i := 0
		input = func() (string, bool) {
			if i >= len(stmts) {
				return "", false
			}
			i++
			return stmts[i-1], true
		}
	} else {
		scanner := bufio.NewScanner(os.Stdin)
		scanner.Buffer(make([]byte, 1<<20), 1<<20)
		input = func() (string, bool) {
			fmt.Print("mrdb> ")
			if !scanner.Scan() {
				return "", false
			}
			return scanner.Text(), true
		}
	}

	c.Sim.Spawn("mrsql", func(p *sim.Proc) {
		defer c.Sim.Stop()
		session := sql.NewSession(c, catalog, c.GatewayFor(specs[0].Name))
		// Repeated DML lines re-execute through a per-session prepared
		// statement, so the shell benefits from the plan cache like a
		// driver using the extended protocol would.
		prepared := map[string]*sql.Prepared{}
		showTiming := true
		for {
			line, ok := input()
			if !ok {
				return
			}
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "--") {
				continue
			}
			if strings.HasPrefix(line, "\\") {
				before := session
				if !metaCommand(p, c, &session, catalog, line, &showTiming) {
					return
				}
				if session != before {
					// Prepared statements are session-scoped.
					prepared = map[string]*sql.Prepared{}
				}
				continue
			}
			start := p.Now()
			res, err := execLine(p, session, prepared, line)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			printResult(res)
			if showTiming {
				fmt.Printf("-- %s @ %s\n", p.Now().Sub(start), session.Region())
			}
		}
	})
	c.Sim.Run()
}

// execLine executes one shell line, caching argument-free DML as prepared
// statements keyed by their text. DDL and introspection statements (or
// anything that fails to prepare) run through the plain path.
func execLine(p *sim.Proc, s *sql.Session, prepared map[string]*sql.Prepared, line string) (*sql.Result, error) {
	if ps, ok := prepared[line]; ok {
		return s.ExecPrepared(p, ps)
	}
	if ps, err := s.Prepare(line); err == nil && ps.NumArgs() == 0 {
		prepared[line] = ps
		return s.ExecPrepared(p, ps)
	}
	return s.Exec(p, line)
}

func metaCommand(p *sim.Proc, c *cluster.Cluster, session **sql.Session, catalog *sql.Catalog, line string, showTiming *bool) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q":
		return false
	case "\\region":
		if len(fields) != 2 {
			fmt.Println("usage: \\region <name>")
			return true
		}
		gw := c.GatewayFor(simnet.Region(fields[1]))
		if gw == 0 {
			fmt.Printf("no nodes in region %q\n", fields[1])
			return true
		}
		db := (*session).Database
		*session = sql.NewSession(c, catalog, gw)
		(*session).Database = db
		fmt.Printf("gateway now in %s\n", fields[1])
	case "\\regions":
		for _, r := range c.Regions() {
			fmt.Printf("  %s (%d nodes)\n", r, len(c.Topo.NodesInRegion(r)))
		}
	case "\\ranges":
		for _, d := range c.Catalog.All() {
			fmt.Printf("  r%-4d [%q, %q) lease=n%d policy=%s voters=%v nonvoters=%v\n",
				d.RangeID, d.StartKey, d.EndKey, d.Leaseholder, d.Policy, d.Voters, d.NonVoters)
		}
	case "\\stats":
		fmt.Print(c.StmtStats)
	case "\\t":
		*showTiming = len(fields) < 2 || fields[1] != "off"
	default:
		fmt.Printf("unknown meta-command %q\n", fields[0])
	}
	return true
}

func printResult(res *sql.Result) {
	if len(res.Columns) == 0 {
		if res.RowsAffected > 0 {
			fmt.Printf("OK, %d row(s)\n", res.RowsAffected)
		} else {
			fmt.Println("OK")
		}
		return
	}
	for _, col := range res.Columns {
		fmt.Printf("%-24s", col)
	}
	fmt.Println()
	for _, row := range res.Rows {
		for _, v := range row {
			fmt.Printf("%-24s", sql.FormatDatum(v))
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

// Command mrbench regenerates every table and figure of the paper's
// evaluation section on the simulated cluster.
//
// Usage:
//
//	mrbench [-full|-quick] [-trace] [experiment ...]
//
// Experiments: table1 table2 fig3 fig4a fig4b fig4c fig5 fig6
// ablation-commitwait ablation-nonvoters ablation-survivability batch
// elastic speed all (default: all).
//
// batch compares the batched per-range KV dispatch against a per-key RPC
// ablation on a multi-region INSERT + cross-range scan workload and writes
// the comparison to BENCH_batch.json.
//
// elastic runs the dynamic scenarios (follow-the-sun region rotation,
// migrating hotspot, online region add/drop) against the load-based
// allocator and writes the latency trajectories to BENCH_elastic.json,
// gating only on each trajectory re-converging to the pre-shift shape.
// With -export-dir DIR each scenario also exports its virtual-time
// timeseries (OpenMetrics) and traces (Jaeger UI JSON) into DIR.
//
// -full runs at a scale close to the paper's (minutes per figure); the
// default quick scale (also spellable as -quick) finishes in seconds per
// figure and preserves every reported shape.
//
// -trace enables span recording during fig3, writes per-phase span
// histograms to results/fig3_phases.txt, and fails the run if any
// non-GLOBAL variant shows a commit-wait span above the gate — the CI
// smoke that commit-waits never leak into REGIONAL transactions.
//
// speed runs the wall-clock scheduler benchmark (sim micro-workloads plus
// MovR/TPC-C steady state, each on the legacy and optimized schedulers) and
// writes BENCH_speed.json. Combine with -cpuprofile/-memprofile to see
// where the simulator itself spends real time.
//
// -cpuprofile FILE / -memprofile FILE write pprof profiles covering the
// selected experiments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"mrdb/internal/bench"
)

func main() {
	// Indirect through run so the profile-writing defers fire before the
	// process exits with the failure code.
	os.Exit(run())
}

func run() int {
	full := flag.Bool("full", false, "run at paper scale (slow)")
	quick := flag.Bool("quick", false, "run at quick scale (the default; explicit for CI invocations)")
	trace := flag.Bool("trace", false, "record spans; write fig3 phase histograms and enforce the commit-wait gate")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to FILE")
	memprofile := flag.String("memprofile", "", "write an allocation profile to FILE on exit")
	exportDir := flag.String("export-dir", "", "write OpenMetrics timeseries and Jaeger traces from the elastic scenarios into DIR")
	flag.Parse()

	if *full && *quick {
		fmt.Fprintln(os.Stderr, "mrbench: -full and -quick are mutually exclusive")
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: start CPU profile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "mrbench: write alloc profile: %v\n", err)
			}
		}()
	}
	scale := bench.Quick()
	if *full {
		scale = bench.Full()
	}
	bench.Trace = *trace
	bench.ExportDir = *exportDir
	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"all"}
	}

	type runner func(io.Writer) error
	table := map[string]runner{
		"table1": func(w io.Writer) error { return bench.Table1(w) },
		"table2": func(w io.Writer) error { return bench.Table2(w) },
		"fig3":   func(w io.Writer) error { return bench.Fig3(w, scale) },
		"fig4a":  func(w io.Writer) error { return bench.Fig4a(w, scale) },
		"fig4b":  func(w io.Writer) error { return bench.Fig4b(w, scale) },
		"fig4c":  func(w io.Writer) error { return bench.Fig4c(w, scale) },
		"fig5":   func(w io.Writer) error { return bench.Fig5(w, scale) },
		"fig6":   func(w io.Writer) error { return bench.Fig6(w, scale, *full) },
		"ablation-commitwait": func(w io.Writer) error {
			return bench.AblationCommitWait(w, scale)
		},
		"ablation-nonvoters": func(w io.Writer) error {
			return bench.AblationNonVoters(w, scale)
		},
		"ablation-survivability": func(w io.Writer) error {
			return bench.AblationSurvivability(w, scale)
		},
		"batch":   func(w io.Writer) error { return bench.Batch(w, scale) },
		"elastic": func(w io.Writer) error { return bench.Elastic(w, scale) },
		"speed":   func(w io.Writer) error { return bench.Speed(w, scale) },
	}
	order := []string{
		"table1", "table2", "fig3", "fig4a", "fig4b", "fig4c", "fig5", "fig6",
		"ablation-commitwait", "ablation-nonvoters", "ablation-survivability",
		"batch", "elastic", "speed",
	}

	var toRun []string
	for _, e := range experiments {
		if e == "all" {
			toRun = append(toRun, order...)
			continue
		}
		if _, ok := table[e]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", e, order)
			return 2
		}
		toRun = append(toRun, e)
	}
	for _, e := range toRun {
		if err := table[e](os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e, err)
			return 1
		}
	}
	return 0
}

// Package mrdb is a from-scratch Go reproduction of "Enabling the Next
// Generation of Multi-Region Applications with CockroachDB" (VanBenschoten
// et al., SIGMOD 2022).
//
// The repository implements the full system the paper describes — a
// multi-region distributed SQL database with declarative region,
// survivability and table-locality abstractions — on top of a
// deterministic discrete-event simulator, and regenerates every table and
// figure of the paper's evaluation section.
//
// Layout:
//
//	internal/sim       deterministic discrete-event simulator
//	internal/simnet    region/zone topology, WAN latency, failure injection
//	internal/hlc       hybrid logical clocks
//	internal/skl       skiplist (storage ordered map)
//	internal/mvcc      MVCC engine with write intents
//	internal/raft      consensus with voters and non-voting learners
//	internal/zones     zone configs + replica allocator
//	internal/kv        ranges, leases, closed timestamps, lock table, routing
//	internal/txn       transaction coordinator (uncertainty, commit wait, 1PC)
//	internal/core      the paper's multi-region abstractions (§2, §3)
//	internal/sql       SQL: parser, catalog, locality-aware planner, executor
//	internal/workload  YCSB, TPC-C, latency recorders
//	internal/cluster   simulated cluster assembly
//	internal/bench     experiment reproductions (Figures 3-6, Tables 1-2)
//	cmd/mrbench        CLI driving every experiment
//	cmd/mrsql          SQL shell against a simulated cluster
//	cmd/mrdemo         the movr conversion walkthrough (§7.5)
//	examples/          runnable quickstart, movr, and IoT examples
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package mrdb

package core

import (
	"fmt"

	"mrdb/internal/simnet"
)

// This file reproduces paper Table 2: the number of DDL statements needed
// for multi-region schema operations before and after the declarative
// syntax. The "after" statement lists are generated directly from the new
// syntax. The "before" lists reconstruct the legacy recipe the paper
// describes — manual partitioning, per-partition zone configurations, and
// duplicate indexes — for each workload's schema; the paper does not print
// the legacy statements, so the reconstruction's index layout is calibrated
// against Table 2's totals and recorded here and in EXPERIMENTS.md.

// SchemaSpec describes a workload schema for DDL accounting.
type SchemaSpec struct {
	Name string
	// RegionalTables are tables that become REGIONAL BY ROW.
	RegionalTables []TableSpec
	// GlobalTables are tables that become GLOBAL (legacy: duplicate
	// indexes).
	GlobalTables []string
	// ComputedRegionTables lists regional tables that need an explicit
	// computed crdb_region column (e.g. city → region).
	ComputedRegionTables []string
	// CountCreateDatabase controls whether database-level statements are
	// counted; the YCSB benchmark operates on a pre-existing database so
	// only table-level statements count (paper Table 2 shows 1).
	CountCreateDatabase bool
	// LegacySecondaryIndexStatements is the number of extra legacy
	// statements for separately partitioned secondary indexes during
	// schema creation.
	LegacySecondaryIndexStatements int
	// LegacySecondaryIndexStatementsOnRegionChange is the analogous
	// count when adding/dropping a region requires repartitioning
	// secondary indexes individually.
	LegacySecondaryIndexStatementsOnRegionChange int
	// LegacyExtraStatements covers workload-specific extra legacy
	// statements at schema creation (e.g. database-wide default zone
	// configs).
	LegacyExtraStatements int
	// LegacyExtraStatementsOnRegionChange is the analogous count for
	// add/drop region (e.g. fix-ups of special indexes).
	LegacyExtraStatementsOnRegionChange int
}

// TableSpec names a regional table.
type TableSpec struct {
	Name string
}

// MovrSchema returns the paper's movr ride-sharing schema (§1.1, §7.5.1):
// six tables, promo_codes GLOBAL, the rest REGIONAL BY ROW with computed
// region columns translating city to a region.
func MovrSchema() SchemaSpec {
	return SchemaSpec{
		Name: "movr",
		RegionalTables: []TableSpec{
			{Name: "users"}, {Name: "vehicles"}, {Name: "rides"},
			{Name: "vehicle_location_histories"}, {Name: "user_promo_codes"},
		},
		GlobalTables: []string{"promo_codes"},
		ComputedRegionTables: []string{
			"users", "vehicles", "rides", "vehicle_location_histories", "user_promo_codes",
		},
		CountCreateDatabase:                          true,
		LegacySecondaryIndexStatements:               3,
		LegacySecondaryIndexStatementsOnRegionChange: 3,
	}
}

// TPCCSchema returns the TPC-C schema (§7.4): items GLOBAL, the other
// eight tables REGIONAL BY ROW with the region computed from warehouse ID.
func TPCCSchema() SchemaSpec {
	return SchemaSpec{
		Name: "tpcc",
		RegionalTables: []TableSpec{
			{Name: "warehouse"}, {Name: "district"}, {Name: "customer"},
			{Name: "history"}, {Name: "orders"}, {Name: "new_order"},
			{Name: "order_line"}, {Name: "stock"},
		},
		GlobalTables: []string{"item"},
		ComputedRegionTables: []string{
			"warehouse", "district", "customer", "history",
			"orders", "new_order", "order_line", "stock",
		},
		CountCreateDatabase:                          true,
		LegacySecondaryIndexStatements:               7,
		LegacySecondaryIndexStatementsOnRegionChange: 0,
		LegacyExtraStatementsOnRegionChange:          2,
	}
}

// YCSBSchema returns the single-table YCSB schema; its database pre-exists
// so only table statements are counted.
func YCSBSchema() SchemaSpec {
	return SchemaSpec{
		Name:                  "ycsb",
		RegionalTables:        []TableSpec{{Name: "usertable"}},
		CountCreateDatabase:   false,
		LegacyExtraStatements: 1, // database-wide default zone config
	}
}

// NewSyntaxNewSchema generates the declarative statements for creating the
// schema as multi-region from scratch.
func NewSyntaxNewSchema(s SchemaSpec, regions []simnet.Region) []string {
	var out []string
	if s.CountCreateDatabase {
		stmt := fmt.Sprintf("CREATE DATABASE %s PRIMARY REGION %q", s.Name, regions[0])
		for i, r := range regions[1:] {
			if i == 0 {
				stmt += fmt.Sprintf(" REGIONS %q", r)
			} else {
				stmt += fmt.Sprintf(", %q", r)
			}
		}
		out = append(out, stmt)
	}
	for _, t := range s.RegionalTables {
		out = append(out, fmt.Sprintf("CREATE TABLE %s (...) LOCALITY REGIONAL BY ROW", t.Name))
	}
	for _, t := range s.GlobalTables {
		out = append(out, fmt.Sprintf("CREATE TABLE %s (...) LOCALITY GLOBAL", t))
	}
	for _, t := range s.ComputedRegionTables {
		out = append(out, fmt.Sprintf(
			"ALTER TABLE %s ALTER COLUMN crdb_region SET DEFAULT region_from_city(city)", t))
	}
	return out
}

// NewSyntaxConvertSchema generates the statements to convert an existing
// single-region schema: the same locality/computed statements plus ADD
// REGION for each non-primary region.
func NewSyntaxConvertSchema(s SchemaSpec, regions []simnet.Region) []string {
	var out []string
	if s.CountCreateDatabase {
		out = append(out, fmt.Sprintf("ALTER DATABASE %s SET PRIMARY REGION %q", s.Name, regions[0]))
		for _, r := range regions[1:] {
			out = append(out, fmt.Sprintf("ALTER DATABASE %s ADD REGION %q", s.Name, r))
		}
	}
	for _, t := range s.RegionalTables {
		out = append(out, fmt.Sprintf("ALTER TABLE %s SET LOCALITY REGIONAL BY ROW", t.Name))
	}
	for _, t := range s.GlobalTables {
		out = append(out, fmt.Sprintf("ALTER TABLE %s SET LOCALITY GLOBAL", t))
	}
	for _, t := range s.ComputedRegionTables {
		out = append(out, fmt.Sprintf(
			"ALTER TABLE %s ALTER COLUMN crdb_region SET DEFAULT region_from_city(city)", t))
	}
	return out
}

// NewSyntaxAddRegion is always a single statement.
func NewSyntaxAddRegion(s SchemaSpec, r simnet.Region) []string {
	return []string{fmt.Sprintf("ALTER DATABASE %s ADD REGION %q", s.Name, r)}
}

// NewSyntaxDropRegion is always a single statement.
func NewSyntaxDropRegion(s SchemaSpec, r simnet.Region) []string {
	return []string{fmt.Sprintf("ALTER DATABASE %s DROP REGION %q", s.Name, r)}
}

// LegacyNewSchema reconstructs the pre-declarative recipe: partition every
// regional table by list of regions, add a zone configuration per
// partition, and build duplicate indexes (one per non-primary region, each
// pinned) for global-style tables.
func LegacyNewSchema(s SchemaSpec, regions []simnet.Region) []string {
	var out []string
	for _, t := range s.RegionalTables {
		out = append(out, fmt.Sprintf("ALTER TABLE %s PARTITION BY LIST (region) (%d partitions)", t.Name, len(regions)))
		for _, r := range regions {
			out = append(out, fmt.Sprintf(
				"ALTER PARTITION %q OF TABLE %s CONFIGURE ZONE USING constraints='[+region=%s]', lease_preferences='[[+region=%s]]'",
				r, t.Name, r, r))
		}
	}
	for i := 0; i < s.LegacySecondaryIndexStatements; i++ {
		out = append(out, fmt.Sprintf("ALTER INDEX secondary_idx_%d PARTITION BY LIST (region) (...)", i+1))
	}
	for _, t := range s.GlobalTables {
		for _, r := range regions[1:] {
			out = append(out, fmt.Sprintf("CREATE INDEX %s_idx_%s ON %s (...) STORING (...)", t, r, t))
		}
		for _, r := range regions {
			out = append(out, fmt.Sprintf(
				"ALTER INDEX %s_idx_%s CONFIGURE ZONE USING lease_preferences='[[+region=%s]]'", t, r, r))
		}
	}
	for i := 0; i < s.LegacyExtraStatements; i++ {
		out = append(out, fmt.Sprintf("ALTER DATABASE %s CONFIGURE ZONE USING num_replicas=3", s.Name))
	}
	return out
}

// LegacyConvertSchema is the same work as LegacyNewSchema: partitioning and
// zone configs must be specified either way (paper Table 2 shows identical
// before-counts).
func LegacyConvertSchema(s SchemaSpec, regions []simnet.Region) []string {
	return LegacyNewSchema(s, regions)
}

// LegacyAddRegion reconstructs adding one region: repartition each regional
// table (and separately partitioned secondary indexes), configure the new
// partition's zone, and extend each duplicate-index table with a new pinned
// index.
func LegacyAddRegion(s SchemaSpec, r simnet.Region) []string {
	var out []string
	for _, t := range s.RegionalTables {
		out = append(out, fmt.Sprintf("ALTER TABLE %s PARTITION BY LIST (region) (... + %q)", t.Name, r))
		out = append(out, fmt.Sprintf(
			"ALTER PARTITION %q OF TABLE %s CONFIGURE ZONE USING constraints='[+region=%s]'", r, t.Name, r))
	}
	for i := 0; i < s.LegacySecondaryIndexStatementsOnRegionChange; i++ {
		out = append(out, fmt.Sprintf("ALTER INDEX secondary_idx_%d PARTITION BY LIST (region) (... + %q)", i+1, r))
	}
	for _, t := range s.GlobalTables {
		out = append(out, fmt.Sprintf("CREATE INDEX %s_idx_%s ON %s (...) STORING (...)", t, r, t))
		out = append(out, fmt.Sprintf(
			"ALTER INDEX %s_idx_%s CONFIGURE ZONE USING lease_preferences='[[+region=%s]]'", t, r, r))
	}
	for i := 0; i < s.LegacyExtraStatementsOnRegionChange; i++ {
		out = append(out, fmt.Sprintf("ALTER INDEX special_idx_%d PARTITION BY LIST (region) (... + %q)", i+1, r))
	}
	return out
}

// LegacyDropRegion reconstructs dropping one region: repartition regional
// tables and secondary indexes without the region and drop the region's
// duplicate indexes (partition zone configs disappear with the partitions).
func LegacyDropRegion(s SchemaSpec, r simnet.Region) []string {
	var out []string
	for _, t := range s.RegionalTables {
		out = append(out, fmt.Sprintf("ALTER TABLE %s PARTITION BY LIST (region) (... - %q)", t.Name, r))
	}
	for i := 0; i < s.LegacySecondaryIndexStatementsOnRegionChange; i++ {
		out = append(out, fmt.Sprintf("ALTER INDEX secondary_idx_%d PARTITION BY LIST (region) (... - %q)", i+1, r))
	}
	for _, t := range s.GlobalTables {
		out = append(out, fmt.Sprintf("DROP INDEX %s_idx_%s", t, r))
	}
	for i := 0; i < s.LegacyExtraStatementsOnRegionChange; i++ {
		out = append(out, fmt.Sprintf("ALTER INDEX special_idx_%d PARTITION BY LIST (region) (... - %q)", i+1, r))
	}
	// The YCSB single-table setup also rewrote its table-level zone
	// config when the region set changed.
	for i := 0; i < s.LegacyExtraStatements; i++ {
		out = append(out, fmt.Sprintf("ALTER TABLE %s CONFIGURE ZONE USING constraints='...'", s.Name))
	}
	return out
}

// Table2Row holds one workload's before/after counts for all four
// operations.
type Table2Row struct {
	Workload                          string
	NewSchemaBefore, NewSchemaAfter   int
	ConvertBefore, ConvertAfter       int
	AddRegionBefore, AddRegionAfter   int
	DropRegionBefore, DropRegionAfter int
}

// Table2 computes the full Table 2 for the three workloads over the given
// regions (the paper uses 3).
func Table2(regions []simnet.Region) []Table2Row {
	var rows []Table2Row
	for _, s := range []SchemaSpec{MovrSchema(), TPCCSchema(), YCSBSchema()} {
		newRegion := simnet.Region("new-region-1")
		rows = append(rows, Table2Row{
			Workload:         s.Name,
			NewSchemaBefore:  len(LegacyNewSchema(s, regions)),
			NewSchemaAfter:   len(NewSyntaxNewSchema(s, regions)),
			ConvertBefore:    len(LegacyConvertSchema(s, regions)),
			ConvertAfter:     len(NewSyntaxConvertSchema(s, regions)),
			AddRegionBefore:  len(LegacyAddRegion(s, newRegion)),
			AddRegionAfter:   len(NewSyntaxAddRegion(s, newRegion)),
			DropRegionBefore: len(LegacyDropRegion(s, regions[len(regions)-1])),
			DropRegionAfter:  len(NewSyntaxDropRegion(s, regions[len(regions)-1])),
		})
	}
	return rows
}

package core

import (
	"fmt"
	"testing"

	"mrdb/internal/kv"
	"mrdb/internal/simnet"
)

func testDB(regions ...simnet.Region) *Database {
	return NewDatabase("movr", regions[0], regions[1:]...)
}

func TestDatabaseRegions(t *testing.T) {
	db := testDB(simnet.USEast1, simnet.USWest1, simnet.EuropeW2)
	if len(db.Regions()) != 3 {
		t.Fatalf("regions = %v", db.Regions())
	}
	if db.PrimaryRegion != simnet.USEast1 {
		t.Fatalf("primary = %v", db.PrimaryRegion)
	}
	if err := db.AddRegion(simnet.AsiaNE1); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRegion(simnet.AsiaNE1); err == nil {
		t.Fatal("duplicate add should fail")
	}
	if !db.HasRegion(simnet.AsiaNE1) {
		t.Fatal("added region missing")
	}
}

func TestDropRegionValidation(t *testing.T) {
	db := testDB(simnet.USEast1, simnet.USWest1, simnet.EuropeW2)

	// Dropping the primary region is forbidden.
	if err := db.DropRegion(simnet.USEast1, nil); err == nil {
		t.Fatal("dropped primary region")
	}

	// Validation failure rolls back to PUBLIC (all-or-nothing, §2.4.1).
	var sawReadOnly bool
	err := db.DropRegion(simnet.USWest1, func(r simnet.Region) (bool, error) {
		st, _ := db.RegionState(r)
		sawReadOnly = st == RegionReadOnly
		return true, nil // rows still exist
	})
	if err == nil {
		t.Fatal("drop succeeded despite remaining rows")
	}
	if !sawReadOnly {
		t.Fatal("region was not READ ONLY during validation")
	}
	if st, ok := db.RegionState(simnet.USWest1); !ok || st != RegionPublic {
		t.Fatalf("rollback state = %v, %v", st, ok)
	}
	if db.CanWriteRegion(simnet.USWest1) != true {
		t.Fatal("region not writable after rollback")
	}

	// Successful drop.
	if err := db.DropRegion(simnet.USWest1, func(simnet.Region) (bool, error) {
		return false, nil
	}); err != nil {
		t.Fatal(err)
	}
	if db.HasRegion(simnet.USWest1) {
		t.Fatal("region still present after drop")
	}
}

func TestReadOnlyRegionNotWritable(t *testing.T) {
	db := testDB(simnet.USEast1, simnet.USWest1)
	db.regions[simnet.USWest1] = RegionReadOnly
	if db.CanWriteRegion(simnet.USWest1) {
		t.Fatal("READ ONLY region is writable")
	}
	if !db.CanWriteRegion(simnet.USEast1) {
		t.Fatal("PUBLIC region not writable")
	}
}

func TestSurvivalGoalConstraints(t *testing.T) {
	db := testDB(simnet.USEast1, simnet.USWest1)
	if err := db.SetSurvivalGoal(SurviveRegion); err == nil {
		t.Fatal("REGION survivability allowed with 2 regions")
	}
	db.AddRegion(simnet.EuropeW2)
	if err := db.SetSurvivalGoal(SurviveRegion); err != nil {
		t.Fatal(err)
	}
	// PLACEMENT RESTRICTED is incompatible with REGION survivability.
	if err := db.SetPlacement(PlacementRestricted); err == nil {
		t.Fatal("RESTRICTED allowed with REGION survivability")
	}
	db.SetSurvivalGoal(SurviveZone)
	if err := db.SetPlacement(PlacementRestricted); err != nil {
		t.Fatal(err)
	}
	if err := db.SetSurvivalGoal(SurviveRegion); err == nil {
		t.Fatal("REGION survivability allowed with RESTRICTED placement")
	}
	// Dropping below 3 regions under REGION survivability is rejected.
	db.SetPlacement(PlacementDefault)
	db.SetSurvivalGoal(SurviveRegion)
	if err := db.DropRegion(simnet.USWest1, nil); err == nil {
		t.Fatal("drop below 3 regions allowed under REGION survivability")
	}
}

func TestZoneSurvivabilityConfig(t *testing.T) {
	// §3.3.2: N regions → 3 voters in home + (N-1) non-voters.
	db := testDB(simnet.USEast1, simnet.USWest1, simnet.EuropeW2, simnet.AsiaNE1)
	cfg, err := db.ZoneConfigForHome(simnet.USWest1, false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumVoters != 3 || cfg.NumReplicas != 3+3 {
		t.Fatalf("voters=%d replicas=%d, want 3 and 6", cfg.NumVoters, cfg.NumReplicas)
	}
	if cfg.VoterConstraints[simnet.USWest1] != 3 {
		t.Fatalf("voter constraints %v", cfg.VoterConstraints)
	}
	for _, r := range db.Regions() {
		want := 1
		if r == simnet.USWest1 {
			want = 3
		}
		if cfg.Constraints[r] != want {
			t.Fatalf("constraints[%s] = %d, want %d", r, cfg.Constraints[r], want)
		}
	}
	if len(cfg.LeasePreferences) != 1 || cfg.LeasePreferences[0] != simnet.USWest1 {
		t.Fatalf("lease prefs %v", cfg.LeasePreferences)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionSurvivabilityConfig(t *testing.T) {
	// §3.3.3: 5 voters, 2 in home; max(2+(N-1), 5) replicas; ≥1/region.
	cases := []struct {
		regions      int
		wantReplicas int
	}{
		{3, 5}, {4, 5}, {5, 6}, {6, 7},
	}
	for _, c := range cases {
		var regions []simnet.Region
		for i := 0; i < c.regions; i++ {
			regions = append(regions, simnet.Region(fmt.Sprintf("region-%d", i)))
		}
		db := testDB(regions...)
		if err := db.SetSurvivalGoal(SurviveRegion); err != nil {
			t.Fatal(err)
		}
		cfg, err := db.ZoneConfigForHome(regions[0], false)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.NumVoters != 5 {
			t.Fatalf("%d regions: voters = %d", c.regions, cfg.NumVoters)
		}
		if cfg.NumReplicas != c.wantReplicas {
			t.Fatalf("%d regions: replicas = %d, want %d", c.regions, cfg.NumReplicas, c.wantReplicas)
		}
		if cfg.VoterConstraints[regions[0]] != 2 {
			t.Fatalf("home voters = %d, want 2", cfg.VoterConstraints[regions[0]])
		}
		for _, r := range regions {
			if cfg.Constraints[r] < 1 {
				t.Fatalf("region %s has no replica constraint", r)
			}
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%d regions: %v", c.regions, err)
		}
	}
}

func TestPlacementRestricted(t *testing.T) {
	db := testDB(simnet.USEast1, simnet.USWest1, simnet.EuropeW2)
	if err := db.SetPlacement(PlacementRestricted); err != nil {
		t.Fatal(err)
	}
	// Regional tables: all replicas in home.
	cfg, err := db.ZoneConfigForHome(simnet.USEast1, false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumReplicas != 3 || cfg.Constraints[simnet.USEast1] != 3 {
		t.Fatalf("restricted config = %+v", cfg)
	}
	if len(cfg.Constraints) != 1 {
		t.Fatalf("restricted config places replicas outside home: %v", cfg.Constraints)
	}
	// GLOBAL tables are unaffected by RESTRICTED (§3.3.4).
	gcfg, err := db.ZoneConfigForHome(simnet.USEast1, true)
	if err != nil {
		t.Fatal(err)
	}
	if gcfg.NumReplicas != 3+2 {
		t.Fatalf("global table affected by RESTRICTED: %+v", gcfg)
	}
}

func TestPlacementForTable(t *testing.T) {
	db := testDB(simnet.USEast1, simnet.USWest1, simnet.EuropeW2)

	// REGIONAL BY TABLE defaults to the primary region.
	tp, err := db.PlacementForTable(RegionalByTable, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Home) != 1 || tp.Policy != kv.ClosedTSLag {
		t.Fatalf("RBT placement %+v", tp)
	}
	if _, ok := tp.Home[simnet.USEast1]; !ok {
		t.Fatal("RBT not homed in primary")
	}

	// REGIONAL BY TABLE IN another region.
	tp, err = db.PlacementForTable(RegionalByTable, simnet.EuropeW2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tp.Home[simnet.EuropeW2]; !ok {
		t.Fatal("RBT IN region ignored")
	}

	// REGIONAL BY ROW: one partition per region.
	tp, err = db.PlacementForTable(RegionalByRow, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Home) != 3 {
		t.Fatalf("RBR partitions = %d, want 3", len(tp.Home))
	}
	for r, cfg := range tp.Home {
		if cfg.VoterConstraints[r] != 3 {
			t.Fatalf("partition %s voters not homed there: %v", r, cfg.VoterConstraints)
		}
	}

	// GLOBAL: LEAD policy, homed in primary.
	tp, err = db.PlacementForTable(Global, "")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Policy != kv.ClosedTSLead {
		t.Fatal("GLOBAL table not using LEAD closed-timestamp policy")
	}
	if _, ok := tp.Home[simnet.USEast1]; !ok {
		t.Fatal("GLOBAL not homed in primary")
	}
}

func TestZoneConfigUnknownHome(t *testing.T) {
	db := testDB(simnet.USEast1)
	if _, err := db.ZoneConfigForHome(simnet.AsiaNE1, false); err == nil {
		t.Fatal("config for non-member region succeeded")
	}
}

// TestTable2 verifies the DDL accounting reproduces paper Table 2 exactly.
func TestTable2(t *testing.T) {
	regions := []simnet.Region{simnet.USEast1, simnet.USWest1, simnet.EuropeW2}
	rows := Table2(regions)
	want := map[string][8]int{
		// newBefore, newAfter, convBefore, convAfter, addBefore,
		// addAfter, dropBefore, dropAfter
		"movr": {28, 12, 28, 14, 15, 1, 9, 1},
		"tpcc": {44, 18, 44, 20, 20, 1, 11, 1},
		"ycsb": {5, 1, 5, 1, 2, 1, 2, 1},
	}
	for _, row := range rows {
		w, ok := want[row.Workload]
		if !ok {
			t.Fatalf("unexpected workload %q", row.Workload)
		}
		got := [8]int{
			row.NewSchemaBefore, row.NewSchemaAfter,
			row.ConvertBefore, row.ConvertAfter,
			row.AddRegionBefore, row.AddRegionAfter,
			row.DropRegionBefore, row.DropRegionAfter,
		}
		if got != w {
			t.Errorf("%s: counts = %v, want %v", row.Workload, got, w)
		}
	}
}

func TestStringers(t *testing.T) {
	if SurviveZone.String() != "ZONE" || SurviveRegion.String() != "REGION" {
		t.Error("SurvivalGoal strings")
	}
	if Global.String() != "GLOBAL" || RegionalByRow.String() != "REGIONAL BY ROW" ||
		RegionalByTable.String() != "REGIONAL BY TABLE" {
		t.Error("locality strings")
	}
	if PlacementDefault.String() != "DEFAULT" || PlacementRestricted.String() != "RESTRICTED" {
		t.Error("placement strings")
	}
}

// Package core implements the paper's primary contribution: the
// multi-region abstractions of CockroachDB — database regions, survivability
// goals, and table localities (paper §2) — and their automatic translation
// into zone configurations (§3.3). Higher layers (SQL) declare intent with
// these types; this package turns intent into replica placement policy.
package core

import (
	"fmt"
	"sort"

	"mrdb/internal/kv"
	"mrdb/internal/simnet"
	"mrdb/internal/zones"
)

// SurvivalGoal is the class of failure a database must tolerate without
// losing availability (paper §2.2).
type SurvivalGoal int8

const (
	// SurviveZone tolerates the loss of one availability zone; it is the
	// default and keeps write quorums region-local.
	SurviveZone SurvivalGoal = iota
	// SurviveRegion tolerates the loss of an entire region at the cost
	// of cross-region write latency.
	SurviveRegion
)

func (g SurvivalGoal) String() string {
	if g == SurviveRegion {
		return "REGION"
	}
	return "ZONE"
}

// TableLocality is the expected access pattern of a table (paper §2.3).
type TableLocality int8

const (
	// RegionalByTable optimizes all rows for one home region.
	RegionalByTable TableLocality = iota
	// RegionalByRow optimizes each row for its own home region, chosen
	// by the hidden crdb_region column.
	RegionalByRow
	// Global optimizes for low-latency reads from every region at the
	// cost of slower writes (global transactions, §6).
	Global
)

func (l TableLocality) String() string {
	switch l {
	case RegionalByRow:
		return "REGIONAL BY ROW"
	case Global:
		return "GLOBAL"
	default:
		return "REGIONAL BY TABLE"
	}
}

// DataPlacement controls whether REGIONAL tables keep non-voting replicas
// in remote regions (paper §3.3.4).
type DataPlacement int8

const (
	// PlacementDefault places a (non-)voting replica in every region so
	// every region can serve stale reads.
	PlacementDefault DataPlacement = iota
	// PlacementRestricted keeps all replicas of REGIONAL tables in the
	// home region, for data domiciling (GDPR-style) requirements. Only
	// compatible with ZONE survivability; GLOBAL tables are unaffected.
	PlacementRestricted
)

func (p DataPlacement) String() string {
	if p == PlacementRestricted {
		return "RESTRICTED"
	}
	return "DEFAULT"
}

// RegionState tracks a region enum value's lifecycle; dropping a region
// marks it READ ONLY during validation (paper §2.4.1).
type RegionState int8

const (
	// RegionPublic values are fully usable.
	RegionPublic RegionState = iota
	// RegionReadOnly values may be read but no query can write them;
	// the transitional state while a DROP REGION validates.
	RegionReadOnly
)

// Database is the multi-region configuration of one database.
type Database struct {
	Name          string
	PrimaryRegion simnet.Region
	Survival      SurvivalGoal
	Placement     DataPlacement

	// regions is the crdb_internal_region enum: the source of truth for
	// which regions the database uses (paper §2.1).
	regions map[simnet.Region]RegionState
	// sorted memoizes Regions(); nil after any membership change. Callers
	// must not mutate the returned slice.
	sorted []simnet.Region
}

// NewDatabase creates a multi-region database with a primary region and
// optional additional regions (CREATE DATABASE ... PRIMARY REGION ...).
func NewDatabase(name string, primary simnet.Region, others ...simnet.Region) *Database {
	db := &Database{
		Name:          name,
		PrimaryRegion: primary,
		regions:       map[simnet.Region]RegionState{primary: RegionPublic},
	}
	for _, r := range others {
		db.regions[r] = RegionPublic
	}
	return db
}

// Regions returns the database's usable (public or read-only) regions,
// sorted for determinism.
func (db *Database) Regions() []simnet.Region {
	if db.sorted == nil {
		out := make([]simnet.Region, 0, len(db.regions))
		for r := range db.regions {
			out = append(out, r)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		db.sorted = out
	}
	return db.sorted
}

// HasRegion reports whether r is a usable region of the database.
func (db *Database) HasRegion(r simnet.Region) bool {
	_, ok := db.regions[r]
	return ok
}

// RegionState returns the lifecycle state of a region value.
func (db *Database) RegionState(r simnet.Region) (RegionState, bool) {
	s, ok := db.regions[r]
	return s, ok
}

// CanWriteRegion reports whether rows may be homed in r (false while r is
// READ ONLY during a drop, paper §2.4.1).
func (db *Database) CanWriteRegion(r simnet.Region) bool {
	return db.regions[r] == RegionPublic && db.HasRegion(r)
}

// AddRegion implements ALTER DATABASE ... ADD REGION.
func (db *Database) AddRegion(r simnet.Region) error {
	if db.HasRegion(r) {
		return fmt.Errorf("core: region %q already in database %q", r, db.Name)
	}
	db.regions[r] = RegionPublic
	db.sorted = nil
	return nil
}

// RegionRowValidator reports whether any REGIONAL BY ROW row is still homed
// in the given region; the SQL layer supplies it during DROP REGION
// validation. Because crdb_region is the partition prefix, this check scans
// only the region's partitions (paper footnote 2).
type RegionRowValidator func(r simnet.Region) (rowsExist bool, err error)

// DropRegion implements ALTER DATABASE ... DROP REGION with all-or-nothing
// semantics (paper §2.4.1): the region value is marked READ ONLY, the
// validator confirms no rows remain homed there, and only then is the value
// removed. Validation failure rolls the state back to PUBLIC.
func (db *Database) DropRegion(r simnet.Region, validate RegionRowValidator) error {
	if !db.HasRegion(r) {
		return fmt.Errorf("core: region %q not in database %q", r, db.Name)
	}
	if r == db.PrimaryRegion {
		return fmt.Errorf("core: cannot drop primary region %q", r)
	}
	if db.Survival == SurviveRegion && len(db.regions) <= 3 {
		return fmt.Errorf("core: dropping %q would leave fewer than 3 regions with REGION survivability", r)
	}
	// Mark READ ONLY so no new rows can be homed there while validating.
	db.regions[r] = RegionReadOnly
	if validate != nil {
		rowsExist, err := validate(r)
		if err != nil || rowsExist {
			db.regions[r] = RegionPublic // roll back
			if err != nil {
				return fmt.Errorf("core: drop region validation: %w", err)
			}
			return fmt.Errorf("core: region %q still has REGIONAL BY ROW rows", r)
		}
	}
	delete(db.regions, r)
	db.sorted = nil
	return nil
}

// SetSurvivalGoal implements ALTER DATABASE ... SURVIVE {ZONE|REGION}
// FAILURE.
func (db *Database) SetSurvivalGoal(g SurvivalGoal) error {
	if g == SurviveRegion {
		if len(db.regions) < 3 {
			return fmt.Errorf("core: REGION survivability requires at least 3 regions, have %d", len(db.regions))
		}
		if db.Placement == PlacementRestricted {
			return fmt.Errorf("core: REGION survivability is incompatible with PLACEMENT RESTRICTED")
		}
	}
	db.Survival = g
	return nil
}

// SetPlacement implements ALTER DATABASE ... PLACEMENT {DEFAULT|RESTRICTED}.
func (db *Database) SetPlacement(p DataPlacement) error {
	if p == PlacementRestricted && db.Survival == SurviveRegion {
		return fmt.Errorf("core: PLACEMENT RESTRICTED cannot be combined with REGION survivability")
	}
	db.Placement = p
	return nil
}

// --- Zone-config translation (paper §3.3) ---

// ZoneConfigForHome computes the zone configuration for a table or
// partition whose leaseholders live in home, under the database's
// survivability goal and placement policy. global marks GLOBAL tables,
// which ignore PLACEMENT RESTRICTED.
func (db *Database) ZoneConfigForHome(home simnet.Region, global bool) (zones.Config, error) {
	if !db.HasRegion(home) {
		return zones.Config{}, fmt.Errorf("core: %q is not a region of database %q", home, db.Name)
	}
	n := len(db.regions)
	switch db.Survival {
	case SurviveZone:
		// §3.3.2: 3 voters in the home region (spread across zones) and
		// one non-voter in each other region.
		cfg := zones.Config{
			NumVoters:        3,
			Constraints:      map[simnet.Region]int{},
			VoterConstraints: map[simnet.Region]int{home: 3},
			LeasePreferences: []simnet.Region{home},
		}
		if db.Placement == PlacementRestricted && !global {
			// §3.3.4: no replicas outside the home region.
			cfg.NumReplicas = 3
			cfg.Constraints[home] = 3
			return cfg, nil
		}
		cfg.NumReplicas = 3 + (n - 1)
		for r := range db.regions {
			if r == home {
				cfg.Constraints[r] = 3
			} else {
				cfg.Constraints[r] = 1
			}
		}
		return cfg, nil
	case SurviveRegion:
		// §3.3.3: 5 voters, 2 in the home region; at least one replica
		// per region so stale reads work everywhere; total replicas
		// max(2 + (N-1), num_voters).
		numVoters := 5
		numReplicas := 2 + (n - 1)
		if numReplicas < numVoters {
			numReplicas = numVoters
		}
		cfg := zones.Config{
			NumVoters:        numVoters,
			NumReplicas:      numReplicas,
			Constraints:      map[simnet.Region]int{},
			VoterConstraints: map[simnet.Region]int{home: 2},
			LeasePreferences: []simnet.Region{home},
		}
		cfg.Constraints[home] = 2
		for r := range db.regions {
			if r != home {
				cfg.Constraints[r] = 1
			}
		}
		return cfg, nil
	}
	return zones.Config{}, fmt.Errorf("core: unknown survival goal %v", db.Survival)
}

// TablePlacement describes the ranges a table needs: one entry per
// partition for REGIONAL BY ROW, a single entry otherwise.
type TablePlacement struct {
	// Home maps each partition's home region to its zone config.
	Home map[simnet.Region]zones.Config
	// Policy is the closed-timestamp policy for all the table's ranges.
	Policy kv.ClosedTSPolicy
}

// PlacementForTable computes the full placement plan for a table with the
// given locality (homeRegion applies to REGIONAL BY TABLE; ignored
// otherwise).
func (db *Database) PlacementForTable(loc TableLocality, homeRegion simnet.Region) (TablePlacement, error) {
	switch loc {
	case RegionalByTable:
		home := homeRegion
		if home == "" {
			home = db.PrimaryRegion
		}
		cfg, err := db.ZoneConfigForHome(home, false)
		if err != nil {
			return TablePlacement{}, err
		}
		return TablePlacement{
			Home:   map[simnet.Region]zones.Config{home: cfg},
			Policy: kv.ClosedTSLag,
		}, nil
	case RegionalByRow:
		// §3.3: one zone configuration per partition, i.e. per region.
		home := map[simnet.Region]zones.Config{}
		for _, r := range db.Regions() {
			cfg, err := db.ZoneConfigForHome(r, false)
			if err != nil {
				return TablePlacement{}, err
			}
			home[r] = cfg
		}
		return TablePlacement{Home: home, Policy: kv.ClosedTSLag}, nil
	case Global:
		// §3.3.1: GLOBAL tables are homed in the primary region and use
		// the leading closed-timestamp policy (§6.2.1).
		cfg, err := db.ZoneConfigForHome(db.PrimaryRegion, true)
		if err != nil {
			return TablePlacement{}, err
		}
		return TablePlacement{
			Home:   map[simnet.Region]zones.Config{db.PrimaryRegion: cfg},
			Policy: kv.ClosedTSLead,
		}, nil
	}
	return TablePlacement{}, fmt.Errorf("core: unknown locality %v", loc)
}

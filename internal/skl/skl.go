// Package skl implements a deterministic skiplist: the ordered map
// underlying mrdb's MVCC storage engine.
//
// The list is keyed by []byte with bytes.Compare ordering and stores an
// arbitrary value per key. Tower heights come from a seeded RNG so that,
// combined with the deterministic simulator, entire cluster runs are
// bit-for-bit reproducible.
package skl

import (
	"bytes"
	"math/rand"
)

const maxHeight = 20 // supports ~2^20 entries at p=0.5

type node struct {
	key   []byte
	value interface{}
	next  [maxHeight]*node
	level int
}

// List is a skiplist from []byte keys to interface{} values. The zero value
// is not usable; call New.
type List struct {
	head   *node
	height int
	length int
	rng    *rand.Rand
}

// New returns an empty list whose tower heights derive from seed.
func New(seed int64) *List {
	return &List{
		head:   &node{level: maxHeight},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Len returns the number of entries.
func (l *List) Len() int { return l.length }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Intn(2) == 0 {
		h++
	}
	return h
}

// findGE locates the first node with key >= key. prev, if non-nil, is filled
// with the rightmost node before the target at every level.
func (l *List) findGE(key []byte, prev *[maxHeight]*node) *node {
	x := l.head
	for i := l.height - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		if prev != nil {
			prev[i] = x
		}
	}
	return x.next[0]
}

// Set inserts or replaces the value for key. It returns the previous value
// and whether one existed.
func (l *List) Set(key []byte, value interface{}) (prev interface{}, replaced bool) {
	var before [maxHeight]*node
	for i := l.height; i < maxHeight; i++ {
		before[i] = l.head
	}
	n := l.findGE(key, &before)
	if n != nil && bytes.Equal(n.key, key) {
		old := n.value
		n.value = value
		return old, true
	}
	h := l.randomHeight()
	if h > l.height {
		l.height = h
	}
	nn := &node{key: append([]byte(nil), key...), value: value, level: h}
	for i := 0; i < h; i++ {
		nn.next[i] = before[i].next[i]
		before[i].next[i] = nn
	}
	l.length++
	return nil, false
}

// Get returns the value for key.
func (l *List) Get(key []byte) (interface{}, bool) {
	n := l.findGE(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.value, true
	}
	return nil, false
}

// Delete removes key, returning its value and whether it was present.
func (l *List) Delete(key []byte) (interface{}, bool) {
	var before [maxHeight]*node
	for i := l.height; i < maxHeight; i++ {
		before[i] = l.head
	}
	n := l.findGE(key, &before)
	if n == nil || !bytes.Equal(n.key, key) {
		return nil, false
	}
	for i := 0; i < n.level; i++ {
		if before[i].next[i] == n {
			before[i].next[i] = n.next[i]
		}
	}
	l.length--
	return n.value, true
}

// Iterator walks list entries in key order.
type Iterator struct {
	list *List
	cur  *node
}

// NewIterator returns an unpositioned iterator; call SeekGE or First.
func (l *List) NewIterator() *Iterator { return &Iterator{list: l} }

// Iter returns an unpositioned iterator by value, so iteration-heavy paths
// (MVCC scans, GC sweeps, snapshot copies) keep it on the stack instead of
// allocating one per traversal.
func (l *List) Iter() Iterator { return Iterator{list: l} }

// First positions at the smallest key.
func (it *Iterator) First() { it.cur = it.list.head.next[0] }

// SeekGE positions at the first key >= key.
func (it *Iterator) SeekGE(key []byte) { it.cur = it.list.findGE(key, nil) }

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.cur != nil }

// Next advances to the following entry.
func (it *Iterator) Next() { it.cur = it.cur.next[0] }

// Key returns the current key. The returned slice must not be modified.
func (it *Iterator) Key() []byte { return it.cur.key }

// Value returns the current value.
func (it *Iterator) Value() interface{} { return it.cur.value }

// SetValue replaces the value at the iterator's position, avoiding a second
// search when read-modify-write is needed.
func (it *Iterator) SetValue(v interface{}) { it.cur.value = v }

package skl

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	l := New(1)
	if _, ok := l.Get([]byte("a")); ok {
		t.Fatal("empty list returned a value")
	}
	if _, replaced := l.Set([]byte("a"), 1); replaced {
		t.Fatal("fresh insert reported replace")
	}
	v, ok := l.Get([]byte("a"))
	if !ok || v.(int) != 1 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	prev, replaced := l.Set([]byte("a"), 2)
	if !replaced || prev.(int) != 1 {
		t.Fatalf("replace = %v, %v", prev, replaced)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestDelete(t *testing.T) {
	l := New(1)
	for i := 0; i < 100; i++ {
		l.Set([]byte(fmt.Sprintf("k%03d", i)), i)
	}
	v, ok := l.Delete([]byte("k050"))
	if !ok || v.(int) != 50 {
		t.Fatalf("Delete = %v, %v", v, ok)
	}
	if _, ok := l.Get([]byte("k050")); ok {
		t.Fatal("deleted key still present")
	}
	if _, ok := l.Delete([]byte("k050")); ok {
		t.Fatal("double delete succeeded")
	}
	if l.Len() != 99 {
		t.Fatalf("Len = %d", l.Len())
	}
	// Remaining keys intact and ordered.
	it := l.NewIterator()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if n != 99 {
		t.Fatalf("iterated %d entries", n)
	}
}

func TestIterationOrder(t *testing.T) {
	l := New(2)
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, k := range keys {
		l.Set([]byte(k), i)
	}
	var got []string
	it := l.NewIterator()
	for it.First(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
}

func TestSeekGE(t *testing.T) {
	l := New(3)
	for _, k := range []string{"b", "d", "f"} {
		l.Set([]byte(k), k)
	}
	cases := []struct{ seek, want string }{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"f", "f"},
	}
	it := l.NewIterator()
	for _, c := range cases {
		it.SeekGE([]byte(c.seek))
		if !it.Valid() || string(it.Key()) != c.want {
			t.Fatalf("SeekGE(%q) landed on %q", c.seek, it.Key())
		}
	}
	it.SeekGE([]byte("g"))
	if it.Valid() {
		t.Fatal("SeekGE past end should be invalid")
	}
}

func TestSetValueViaIterator(t *testing.T) {
	l := New(4)
	l.Set([]byte("x"), 1)
	it := l.NewIterator()
	it.SeekGE([]byte("x"))
	it.SetValue(2)
	v, _ := l.Get([]byte("x"))
	if v.(int) != 2 {
		t.Fatalf("SetValue not visible: %v", v)
	}
}

func TestKeyCopied(t *testing.T) {
	l := New(5)
	k := []byte("mutate")
	l.Set(k, 1)
	k[0] = 'X'
	if _, ok := l.Get([]byte("mutate")); !ok {
		t.Fatal("list retained caller's mutable key slice")
	}
}

func TestDeterministicStructure(t *testing.T) {
	build := func() []int {
		l := New(99)
		for i := 0; i < 1000; i++ {
			l.Set([]byte(fmt.Sprintf("%06d", i*7%1000)), i)
		}
		var heights []int
		it := l.NewIterator()
		for it.First(); it.Valid(); it.Next() {
			heights = append(heights, it.cur.level)
		}
		return heights
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different towers")
		}
	}
}

// Property: the skiplist behaves exactly like a map + sorted keys under a
// random op sequence.
func TestQuickModelCheck(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint8
		Val  int
	}
	f := func(seed int64, ops []op) bool {
		l := New(seed)
		model := map[string]int{}
		for _, o := range ops {
			k := []byte{o.Key}
			switch o.Kind % 3 {
			case 0:
				l.Set(k, o.Val)
				model[string(k)] = o.Val
			case 1:
				v, ok := l.Get(k)
				mv, mok := model[string(k)]
				if ok != mok || (ok && v.(int) != mv) {
					return false
				}
			case 2:
				_, ok := l.Delete(k)
				_, mok := model[string(k)]
				if ok != mok {
					return false
				}
				delete(model, string(k))
			}
		}
		if l.Len() != len(model) {
			return false
		}
		// Full ordered scan must match the sorted model.
		var want []string
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		it := l.NewIterator()
		i := 0
		for it.First(); it.Valid(); it.Next() {
			if i >= len(want) || string(it.Key()) != want[i] {
				return false
			}
			if it.Value().(int) != model[want[i]] {
				return false
			}
			i++
		}
		return i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeScaleOrdered(t *testing.T) {
	l := New(7)
	rng := rand.New(rand.NewSource(11))
	const n = 20000
	for i := 0; i < n; i++ {
		k := make([]byte, 8)
		rng.Read(k)
		l.Set(k, i)
	}
	it := l.NewIterator()
	var prev []byte
	count := 0
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatal("keys out of order")
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != l.Len() {
		t.Fatalf("scan saw %d, Len %d", count, l.Len())
	}
}

func BenchmarkSet(b *testing.B) {
	l := New(1)
	keys := make([][]byte, 100000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%016d", i*2654435761%100000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Set(keys[i%len(keys)], i)
	}
}

func BenchmarkGet(b *testing.B) {
	l := New(1)
	keys := make([][]byte, 100000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%016d", i))
		l.Set(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get(keys[i%len(keys)])
	}
}

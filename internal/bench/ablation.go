package bench

import (
	"fmt"
	"io"

	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
	"mrdb/internal/workload"
	"mrdb/internal/zones"
)

// AblationCommitWait compares the paper's commit-wait-concurrent-with-lock-
// release design (§6.2) against Spanner-style lock holding through the
// wait. The difference shows up in the *reader* tail on contended GLOBAL
// keys: with Spanner-style waiting, a reader can block on locks for the
// whole commit wait (~lead time), instead of only max_clock_offset.
func AblationCommitWait(w io.Writer, scale Scale) error {
	header(w, "Ablation: commit wait concurrent with lock release (paper) vs holding locks (Spanner-style)")
	for i, spanner := range []bool{false, true} {
		c := paperCluster(700+int64(i), 250*sim.Millisecond)
		catalog := newCatalog()
		y := workload.NewYCSB(c, catalog, workload.YCSBConfig{
			Variant:           workload.YCSBA,
			RecordCount:       scale.RecordCount / 4, // extra contention
			Distribution:      "zipfian",
			OpsPerClient:      scale.OpsPerClient,
			ClientsPerRegion:  scale.ClientsPerRegion,
			SpannerCommitWait: spanner,
			// Force the intent-writing path: the ablation is about how
			// long locks stay visible to readers.
			DisableOnePC: true,
		})
		err := runSim(c, 12*3600*sim.Second, func(p *sim.Proc) error {
			if err := y.SetupSchema(p, "LOCALITY GLOBAL"); err != nil {
				return err
			}
			p.Sleep(2 * sim.Second)
			if err := y.Load(p); err != nil {
				return err
			}
			p.Sleep(2 * sim.Second)
			return y.Run(p)
		})
		if err != nil {
			return err
		}
		name := "concurrent release (paper)"
		if spanner {
			name = "hold locks through wait (Spanner)"
		}
		cdfRows(w, name+" [read]", y.AllReads())
		cdfRows(w, name+" [write]", y.AllWrites())
	}
	fmt.Fprintln(w, `
Expected: both variants stay bounded — the deeper reason global reads are
fast is that future-time intents sit above every present-time reader's
uncertainty window until the final max_clock_offset slice of the writer's
commit wait. Releasing locks concurrently (the paper's design) trims the
extreme read tail in that window; holding them through the wait
(Spanner-style) lengthens it, and the gap widens with contention and with
larger max_clock_offset.`)
	return nil
}

// AblationNonVoters compares the paper's non-voting replicas (§5.2) against
// the alternative of making every remote replica a voter: read coverage is
// identical, but quorums now span regions and write latency explodes.
func AblationNonVoters(w io.Writer, scale Scale) error {
	header(w, "Ablation: non-voting replicas (paper §5.2) vs voters everywhere")
	type variant struct {
		name string
		cfg  zones.Config
	}
	variants := []variant{
		{
			"3 voters home + 4 non-voters", // paper ZONE-survivable layout
			zones.Config{
				NumReplicas: 7, NumVoters: 3,
				VoterConstraints: map[simnet.Region]int{simnet.USEast1: 3},
				Constraints: map[simnet.Region]int{
					simnet.USWest1: 1, simnet.EuropeW2: 1, simnet.AsiaNE1: 1, simnet.AustralSE1: 1,
				},
				LeasePreferences: []simnet.Region{simnet.USEast1},
			},
		},
		{
			"7 voters spread across regions",
			zones.Config{
				NumReplicas: 7, NumVoters: 7,
				VoterConstraints: map[simnet.Region]int{
					simnet.USEast1: 3, simnet.USWest1: 1, simnet.EuropeW2: 1, simnet.AsiaNE1: 1, simnet.AustralSE1: 1,
				},
				LeasePreferences: []simnet.Region{simnet.USEast1},
			},
		},
	}
	for i, v := range variants {
		c := paperCluster(720+int64(i), 250*sim.Millisecond)
		if _, err := c.CreateRangeWithZoneConfig([]byte("a/"), []byte("a0"), v.cfg, kv.ClosedTSLag); err != nil {
			return err
		}
		writes := workload.NewLatencyRecorder(v.name)
		stale := workload.NewLatencyRecorder(v.name + " stale reads")
		err := runSim(c, 3600*sim.Second, func(p *sim.Proc) error {
			if err := c.Admin.WaitAllReady(p); err != nil {
				return err
			}
			p.Sleep(sim.Second)
			gw := c.GatewayFor(simnet.USEast1)
			co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
			for i := 0; i < scale.OpsPerClient; i++ {
				key := mvcc.Key(fmt.Sprintf("a/key-%04d", i%50))
				start := p.Now()
				if err := co.Run(p, func(tx *txn.Txn) error {
					return tx.Put(p, key, mvcc.Value(fmt.Sprintf("v%d", i)))
				}); err != nil {
					return err
				}
				writes.Record(p.Now().Sub(start))
			}
			// Remote stale reads work identically in both layouts.
			p.Sleep(4 * sim.Second)
			remote := txn.NewCoordinator(c.Stores[c.GatewayFor(simnet.AustralSE1)], c.Senders[c.GatewayFor(simnet.AustralSE1)])
			for i := 0; i < scale.OpsPerClient/2; i++ {
				key := mvcc.Key(fmt.Sprintf("a/key-%04d", i%50))
				start := p.Now()
				if _, _, err := remote.ExactStaleRead(p, key, remote.Store.Clock.Now().Add(-4*sim.Second)); err != nil {
					return err
				}
				stale.Record(p.Now().Sub(start))
			}
			return nil
		})
		if err != nil {
			return err
		}
		boxRow(w, v.name+" [write from home]", writes)
		boxRow(w, v.name+" [stale read from australia]", stale)
	}
	fmt.Fprintln(w, `
Expected: with non-voters, home-region writes commit at intra-region quorum
latency (~2ms); with 7 voters the quorum (4 of 7) must reach other regions
and writes pay a WAN round trip — while stale-read coverage is identical.`)
	return nil
}

// AblationSurvivability measures the write-latency price of REGION
// survivability (§3.3.3) vs ZONE survivability (§3.3.2) — the paper's
// "write latency is increased by at least the round-trip time to the
// nearest region" claim.
func AblationSurvivability(w io.Writer, scale Scale) error {
	header(w, "Ablation: ZONE vs REGION survivability write latency (§2.2)")
	type variant struct {
		name string
		cfg  zones.Config
	}
	variants := []variant{
		{
			"SURVIVE ZONE FAILURE (3 voters home)",
			zones.Config{
				NumReplicas: 5, NumVoters: 3,
				VoterConstraints: map[simnet.Region]int{simnet.USEast1: 3},
				Constraints:      map[simnet.Region]int{simnet.USWest1: 1, simnet.EuropeW2: 1},
				LeasePreferences: []simnet.Region{simnet.USEast1},
			},
		},
		{
			"SURVIVE REGION FAILURE (5 voters, 2 home)",
			zones.Config{
				NumReplicas: 5, NumVoters: 5,
				VoterConstraints: map[simnet.Region]int{simnet.USEast1: 2, simnet.USWest1: 2, simnet.EuropeW2: 1},
				LeasePreferences: []simnet.Region{simnet.USEast1},
			},
		},
	}
	for i, v := range variants {
		c := threeRegionClusterUS(740 + int64(i))
		if _, err := c.CreateRangeWithZoneConfig([]byte("s/"), []byte("s0"), v.cfg, kv.ClosedTSLag); err != nil {
			return err
		}
		writes := workload.NewLatencyRecorder(v.name)
		err := runSim(c, 3600*sim.Second, func(p *sim.Proc) error {
			if err := c.Admin.WaitAllReady(p); err != nil {
				return err
			}
			p.Sleep(sim.Second)
			gw := c.GatewayFor(simnet.USEast1)
			co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
			for i := 0; i < scale.OpsPerClient; i++ {
				start := p.Now()
				if err := co.Run(p, func(tx *txn.Txn) error {
					return tx.Put(p, mvcc.Key(fmt.Sprintf("s/k%04d", i%100)), mvcc.Value("v"))
				}); err != nil {
					return err
				}
				writes.Record(p.Now().Sub(start))
			}
			return nil
		})
		if err != nil {
			return err
		}
		boxRow(w, v.name, writes)
	}
	fmt.Fprintln(w, `
Expected: ZONE survivability commits within the home region (~2-5ms);
REGION survivability needs a cross-region quorum, adding at least the RTT
to the nearest region (us-east1 <-> us-west1 = 63ms).`)
	return nil
}

package bench

import (
	"strings"
	"testing"

	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

func TestTable1Output(t *testing.T) {
	var sb stringsWriter
	if err := Table1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"us-east1", "australia-southeast1", "63", "274", "113"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestTable2Output(t *testing.T) {
	var sb stringsWriter
	if err := Table2(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"movr", "tpcc", "ycsb", "28", "44", "CREATE DATABASE movr"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q", want)
		}
	}
}

func TestScalePresets(t *testing.T) {
	q, f := Quick(), Full()
	if q.RecordCount >= f.RecordCount || q.OpsPerClient >= f.OpsPerClient {
		t.Error("Quick not smaller than Full")
	}
	if f.RecordCount != 100000 || f.ClientsPerRegion != 10 {
		t.Errorf("Full scale does not match the paper: %+v", f)
	}
}

func TestSyntheticRegionsTopology(t *testing.T) {
	specs, rtt := syntheticRegions(8)
	if len(specs) != 8 {
		t.Fatalf("specs = %d", len(specs))
	}
	near := rtt[[2]simnet.Region{"region-00", "region-01"}]
	far := rtt[[2]simnet.Region{"region-00", "region-04"}]
	if near != 85*sim.Millisecond {
		t.Errorf("neighbor RTT = %v, want 85ms", near)
	}
	if far != 280*sim.Millisecond { // 20 + 4*65 = 280, below the cap
		t.Errorf("antipode RTT = %v, want 280ms", far)
	}
	// Neighbor spacing must not depend on region count.
	_, rtt2 := syntheticRegions(26)
	if rtt2[[2]simnet.Region{"region-00", "region-01"}] != near {
		t.Error("neighbor RTT depends on region count")
	}
}

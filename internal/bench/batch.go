package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
	"mrdb/internal/workload"
)

// BatchOut is where Batch writes its JSON result.
var BatchOut = "BENCH_batch.json"

// batchVariantResult is one side of the batched-vs-per-key ablation.
type batchVariantResult struct {
	InsertP50Ms float64 `json:"insert_p50_ms"`
	InsertP90Ms float64 `json:"insert_p90_ms"`
	ScanP50Ms   float64 `json:"scan_p50_ms"`
	ScanP90Ms   float64 `json:"scan_p90_ms"`
	KVSent      int64   `json:"kv_rpcs_sent"`
}

// batchResult is the BENCH_batch.json schema.
type batchResult struct {
	Rows          int                `json:"rows_per_insert"`
	Iterations    int                `json:"iterations"`
	Batched       batchVariantResult `json:"batched"`
	PerKey        batchVariantResult `json:"per_key"`
	InsertSpeedup float64            `json:"insert_speedup_p50"`
	ScanSpeedup   float64            `json:"scan_speedup_p50"`
}

func msf(d sim.Duration) float64 { return float64(d) / float64(sim.Millisecond) }

// batchRun executes the multi-range workload on a fresh 3-region cluster:
// K-row INSERTs whose rows home in all three regions of a REGIONAL BY ROW
// table (3 ranges), then full-table scans crossing all of them. perKey
// selects the ablation: dispatch every KV request as its own sequential
// RPC, the shape of the pre-batching code.
func batchRun(seed int64, scale Scale, perKey bool) (*batchVariantResult, int, int, error) {
	const rowsPerInsert = 12
	iterations := scale.OpsPerClient
	if iterations > 200 {
		iterations = 200 // per-key inserts cost seconds of virtual time each
	}
	regions := []string{"us-east1", "europe-west2", "asia-northeast1"}

	c := threeRegionCluster(seed, 250*sim.Millisecond)
	if perKey {
		for _, ds := range c.Senders {
			ds.PerKeyDispatch = true
		}
	}
	catalog := newCatalog()
	inserts := workload.NewLatencyRecorder("insert")
	scans := workload.NewLatencyRecorder("scan")
	var sent int64
	err := runSim(c, 12*3600*sim.Second, func(p *sim.Proc) error {
		s := sql.NewSession(c, catalog, c.GatewayFor(simnet.USEast1))
		stmts := []string{
			`CREATE DATABASE movr PRIMARY REGION "us-east1" REGIONS "europe-west2", "asia-northeast1"`,
			`CREATE TABLE rides (id INT PRIMARY KEY, info STRING) LOCALITY REGIONAL BY ROW`,
		}
		for _, stmt := range stmts {
			if _, err := s.Exec(p, stmt); err != nil {
				return fmt.Errorf("%s: %w", stmt, err)
			}
		}
		s.Database = "movr"
		p.Sleep(2 * sim.Second)
		for _, ds := range c.Senders {
			sent -= ds.Sent
		}
		id := 0
		for i := 0; i < iterations; i++ {
			stmt := `INSERT INTO rides (id, info, crdb_region) VALUES `
			for r := 0; r < rowsPerInsert; r++ {
				if r > 0 {
					stmt += ", "
				}
				stmt += fmt.Sprintf("(%d, 'r%d', '%s')", id, id, regions[r%len(regions)])
				id++
			}
			start := p.Now()
			if _, err := s.Exec(p, stmt); err != nil {
				return fmt.Errorf("insert %d: %w", i, err)
			}
			inserts.Record(p.Now().Sub(start))
		}
		// Split every region partition into three ranges so the scans below
		// exercise the DistSender's cross-range fan-out (the SQL layer
		// already parallelizes across partitions; the splits make each
		// per-partition scan itself multi-range).
		t, ok := catalog.Table("movr", "rides")
		if !ok {
			return fmt.Errorf("rides table missing from catalog")
		}
		total := int64(iterations * rowsPerInsert)
		for _, region := range []simnet.Region{"us-east1", "europe-west2", "asia-northeast1"} {
			partStart, _ := sql.IndexSpan(t, t.Primary().ID, region)
			desc, err := c.Catalog.Lookup(partStart)
			if err != nil {
				return fmt.Errorf("lookup partition %s: %w", region, err)
			}
			mid, err := c.Admin.SplitRange(p, desc.RangeID,
				sql.EncodeIndexKey(t, t.Primary(), region, []sql.Datum{total / 3}))
			if err != nil {
				return fmt.Errorf("split %s: %w", region, err)
			}
			if _, err := c.Admin.SplitRange(p, mid.RangeID,
				sql.EncodeIndexKey(t, t.Primary(), region, []sql.Datum{2 * total / 3})); err != nil {
				return fmt.Errorf("second split %s: %w", region, err)
			}
		}
		p.Sleep(sim.Second)
		for i := 0; i < iterations; i++ {
			start := p.Now()
			res, err := s.Exec(p, `SELECT id FROM rides`)
			if err != nil {
				return fmt.Errorf("scan %d: %w", i, err)
			}
			if len(res.Rows) != iterations*rowsPerInsert {
				return fmt.Errorf("scan %d: %d rows, want %d", i, len(res.Rows), iterations*rowsPerInsert)
			}
			scans.Record(p.Now().Sub(start))
		}
		for _, ds := range c.Senders {
			sent += ds.Sent
		}
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	return &batchVariantResult{
		InsertP50Ms: msf(inserts.Percentile(50)),
		InsertP90Ms: msf(inserts.Percentile(90)),
		ScanP50Ms:   msf(scans.Percentile(50)),
		ScanP90Ms:   msf(scans.Percentile(90)),
		KVSent:      sent,
	}, rowsPerInsert, iterations, nil
}

// Batch is the multi-range dispatch microbenchmark: the same K-row
// multi-region INSERT + cross-range scan workload run with batched
// per-range dispatch (the tentpole) and with the per-key ablation
// (one sequential RPC per request, the pre-batching shape). Writes the
// comparison to BENCH_batch.json; errors if batching is not strictly
// faster at the median on both operations.
func Batch(w io.Writer, scale Scale) error {
	header(w, "Batch: per-range batched dispatch vs per-key RPCs (K-row multi-region INSERT + cross-range scan)")
	batched, rows, iters, err := batchRun(760, scale, false)
	if err != nil {
		return err
	}
	perKey, _, _, err := batchRun(761, scale, true)
	if err != nil {
		return err
	}
	res := batchResult{
		Rows:          rows,
		Iterations:    iters,
		Batched:       *batched,
		PerKey:        *perKey,
		InsertSpeedup: perKey.InsertP50Ms / batched.InsertP50Ms,
		ScanSpeedup:   perKey.ScanP50Ms / batched.ScanP50Ms,
	}
	fmt.Fprintf(w, "  %-28s insert p50=%-10.2fms p90=%-10.2fms scan p50=%-10.2fms p90=%-10.2fms kv rpcs=%d\n",
		"batched (per-range)", batched.InsertP50Ms, batched.InsertP90Ms, batched.ScanP50Ms, batched.ScanP90Ms, batched.KVSent)
	fmt.Fprintf(w, "  %-28s insert p50=%-10.2fms p90=%-10.2fms scan p50=%-10.2fms p90=%-10.2fms kv rpcs=%d\n",
		"per-key (ablation)", perKey.InsertP50Ms, perKey.InsertP90Ms, perKey.ScanP50Ms, perKey.ScanP90Ms, perKey.KVSent)
	fmt.Fprintf(w, "  speedup: insert %.1fx, scan %.1fx at p50\n", res.InsertSpeedup, res.ScanSpeedup)
	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(BatchOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "  written to %s\n", BatchOut)
	if batched.InsertP50Ms >= perKey.InsertP50Ms {
		return fmt.Errorf("batch: batched insert p50 %.2fms not below per-key %.2fms", batched.InsertP50Ms, perKey.InsertP50Ms)
	}
	if batched.ScanP50Ms >= perKey.ScanP50Ms {
		return fmt.Errorf("batch: batched scan p50 %.2fms not below per-key %.2fms", batched.ScanP50Ms, perKey.ScanP50Ms)
	}
	return nil
}

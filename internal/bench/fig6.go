package bench

import (
	"fmt"
	"io"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
	"mrdb/internal/workload"
)

// syntheticRegions builds an n-region world for the scalability experiment
// (§7.4 uses up to 26 GCP regions; we synthesize a ring topology whose
// farthest pair is ~280ms apart, matching intercontinental RTTs).
func syntheticRegions(n int) ([]cluster.RegionSpec, map[[2]simnet.Region]sim.Duration) {
	specs := make([]cluster.RegionSpec, n)
	names := make([]simnet.Region, n)
	for i := 0; i < n; i++ {
		names[i] = simnet.Region(fmt.Sprintf("region-%02d", i))
		specs[i] = cluster.RegionSpec{Name: names[i], Zones: 3, NodesPerZone: 1}
	}
	rtt := map[[2]simnet.Region]sim.Duration{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := j - i
			if n-d < d {
				d = n - d
			}
			// Constant 65ms spacing between ring neighbors (the paper's
			// North-American inter-region RTTs), capped at an
			// intercontinental 300ms, so adjacent-region latency does
			// not depend on the region count.
			lat := 20*sim.Millisecond + sim.Duration(d)*65*sim.Millisecond
			if lat > 300*sim.Millisecond {
				lat = 300 * sim.Millisecond
			}
			rtt[[2]simnet.Region{names[i], names[j]}] = lat
		}
	}
	return specs, rtt
}

// fig6Result is one scalability data point.
type fig6Result struct {
	regions    int
	warehouses int
	tpmC       float64
	noP50      map[simnet.Region][2]sim.Duration // p50, p90 per region
}

func fig6Run(seed int64, scale Scale, nRegions int, restricted bool) (*fig6Result, error) {
	specs, rtt := syntheticRegions(nRegions)
	c := cluster.New(cluster.Config{
		Seed:      seed,
		Regions:   specs,
		MaxOffset: 250 * sim.Millisecond,
		RTT:       rtt,
		Jitter:    0.02,
	})
	catalog := newCatalog()
	cfg := workload.DefaultTPCCConfig()
	cfg.TxnsPerTerminal = scale.TPCCTxnsPerTerminal
	// A fixed measurement window keeps tpmC free of straggler skew.
	cfg.RunFor = sim.Duration(scale.TPCCTxnsPerTerminal) * 400 * sim.Millisecond
	t := workload.NewTPCC(c, catalog, cfg)
	err := runSim(c, 12*3600*sim.Second, func(p *sim.Proc) error {
		if err := t.SetupSchema(p); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		if err := t.Load(p); err != nil {
			return err
		}
		if restricted {
			s := sql.NewSession(c, catalog, c.GatewayFor(specs[0].Name))
			if _, err := s.Exec(p, "ALTER DATABASE tpcc PLACEMENT RESTRICTED"); err != nil {
				return err
			}
		}
		p.Sleep(2 * sim.Second)
		return t.Run(p)
	})
	if err != nil {
		return nil, err
	}
	res := &fig6Result{
		regions:    nRegions,
		warehouses: cfg.WarehousesPerRegion * nRegions,
		tpmC:       t.TpmC(),
		noP50:      map[simnet.Region][2]sim.Duration{},
	}
	for r, rec := range t.PerRegionNO {
		res.noP50[r] = [2]sim.Duration{rec.Percentile(50), rec.Percentile(90)}
	}
	return res, nil
}

// Fig6 reproduces paper Figure 6: TPC-C throughput scaling with region
// count, plus the per-region latency profile and the PLACEMENT RESTRICTED
// comparison (§7.4).
func Fig6(w io.Writer, scale Scale, full bool) error {
	header(w, "Figure 6: multi-region TPC-C scalability")
	counts := []int{2, 4, 8}
	if full {
		counts = []int{4, 10, 26}
	}
	var results []*fig6Result
	for i, n := range counts {
		res, err := fig6Run(600+int64(i), scale, n, false)
		if err != nil {
			return fmt.Errorf("fig6 %d regions: %w", n, err)
		}
		results = append(results, res)
	}
	base := results[0]
	fmt.Fprintf(w, "\n%-10s %-12s %-12s %-14s %-10s\n", "regions", "warehouses", "tpmC", "tpmC/warehouse", "efficiency")
	for _, r := range results {
		perWH := r.tpmC / float64(r.warehouses)
		eff := perWH / (base.tpmC / float64(base.warehouses)) * 100
		fmt.Fprintf(w, "%-10d %-12d %-12.1f %-14.2f %.1f%%\n", r.regions, r.warehouses, r.tpmC, perWH, eff)
	}
	// Per-region latency spread for the middle configuration (paper
	// reports the 10-region run).
	mid := results[len(results)/2]
	loP50, hiP50 := sim.Duration(1<<62), sim.Duration(0)
	loP90, hiP90 := sim.Duration(1<<62), sim.Duration(0)
	for _, pair := range mid.noP50 {
		if pair[0] > 0 && pair[0] < loP50 {
			loP50 = pair[0]
		}
		if pair[0] > hiP50 {
			hiP50 = pair[0]
		}
		if pair[1] > 0 && pair[1] < loP90 {
			loP90 = pair[1]
		}
		if pair[1] > hiP90 {
			hiP90 = pair[1]
		}
	}
	fmt.Fprintf(w, "\n%d-region run, per-region new-order latencies: p50 %s – %s, p90 %s – %s\n",
		mid.regions, ms(loP50), ms(hiP50), ms(loP90), ms(hiP90))

	// PLACEMENT RESTRICTED comparison at the smallest configuration.
	rres, err := fig6Run(650, scale, counts[0], true)
	if err != nil {
		return fmt.Errorf("fig6 restricted: %w", err)
	}
	var rp50lo, rp50hi sim.Duration = 1 << 62, 0
	for _, pair := range rres.noP50 {
		if pair[0] > 0 && pair[0] < rp50lo {
			rp50lo = pair[0]
		}
		if pair[0] > rp50hi {
			rp50hi = pair[0]
		}
	}
	fmt.Fprintf(w, "PLACEMENT RESTRICTED (%d regions): new-order p50 %s – %s (vs DEFAULT, should be comparable)\n",
		rres.regions, ms(rp50lo), ms(rp50hi))
	fmt.Fprintln(w, `
Expected shape (paper): throughput scales linearly with regions (>= 97%
efficiency); per-region p50 latencies stay region-local (only the ~10% of
new-orders touching remote warehouses cross regions); PLACEMENT RESTRICTED
does not change the latency profile.`)
	return nil
}

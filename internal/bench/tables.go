package bench

import (
	"fmt"
	"io"

	"mrdb/internal/core"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// Table1 prints the inter-region round-trip matrix used by every
// experiment — the values of paper Table 1.
func Table1(w io.Writer) error {
	header(w, "Table 1: inter-region round-trip times (ms)")
	topo := simnet.NewTable1Topology()
	regions := simnet.Table1Regions()
	short := map[simnet.Region]string{
		simnet.USEast1: "UE", simnet.USWest1: "UW", simnet.EuropeW2: "EW",
		simnet.AsiaNE1: "AN", simnet.AustralSE1: "AS",
	}
	fmt.Fprintf(w, "%-22s", "")
	for _, r := range regions {
		fmt.Fprintf(w, "%6s", short[r])
	}
	fmt.Fprintln(w)
	for i, a := range regions {
		fmt.Fprintf(w, "%-22s", a)
		for j, b := range regions {
			if j <= i {
				fmt.Fprintf(w, "%6s", "-")
			} else {
				fmt.Fprintf(w, "%6d", int(topo.RegionRTT(a, b)/sim.Millisecond))
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table2 prints the DDL-count comparison of paper Table 2, generated from
// the statement lists in internal/core.
func Table2(w io.Writer) error {
	header(w, "Table 2: DDL statements for multi-region operations, before (legacy) vs after (new syntax)")
	regions := []simnet.Region{simnet.USEast1, simnet.USWest1, simnet.EuropeW2}
	rows := core.Table2(regions)
	fmt.Fprintf(w, "%-34s", "Operation")
	for _, r := range rows {
		fmt.Fprintf(w, "%6s-B %6s-A", r.Workload, r.Workload)
	}
	fmt.Fprintln(w)
	type field struct {
		name string
		get  func(core.Table2Row) (int, int)
	}
	fields := []field{
		{"New multi-region schema", func(r core.Table2Row) (int, int) { return r.NewSchemaBefore, r.NewSchemaAfter }},
		{"Converting single-region schema", func(r core.Table2Row) (int, int) { return r.ConvertBefore, r.ConvertAfter }},
		{"Adding a region", func(r core.Table2Row) (int, int) { return r.AddRegionBefore, r.AddRegionAfter }},
		{"Dropping a region", func(r core.Table2Row) (int, int) { return r.DropRegionBefore, r.DropRegionAfter }},
	}
	for _, f := range fields {
		fmt.Fprintf(w, "%-34s", f.name)
		for _, r := range rows {
			b, a := f.get(r)
			fmt.Fprintf(w, "%8d %8d", b, a)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nPaper values: movr 28/12, 28/14, 15/1, 9/1; tpcc 44/18, 44/20, 20/1, 11/1; ycsb 5/1, 5/1, 2/1, 2/1.")
	fmt.Fprintln(w, "Example statements (movr, new syntax):")
	for _, stmt := range core.NewSyntaxNewSchema(core.MovrSchema(), regions) {
		fmt.Fprintf(w, "  %s\n", stmt)
	}
	return nil
}

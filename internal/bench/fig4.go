package bench

import (
	"fmt"
	"io"

	"mrdb/internal/sim"
	"mrdb/internal/workload"
)

// fig4Cluster builds the §7.2 environment: 3 regions, 9 nodes.
func fig4Run(seed int64, scale Scale, cfg workload.YCSBConfig, schema string) (*workload.YCSB, error) {
	c := threeRegionCluster(seed, 250*sim.Millisecond)
	catalog := newCatalog()
	cfg.RecordCount = scale.RecordCount
	cfg.OpsPerClient = scale.OpsPerClient
	if cfg.ClientsPerRegion == 0 {
		cfg.ClientsPerRegion = scale.ClientsPerRegion
	}
	y := workload.NewYCSB(c, catalog, cfg)
	err := runSim(c, 12*3600*sim.Second, func(p *sim.Proc) error {
		if err := y.SetupSchema(p, schema); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		if err := y.Load(p); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		return y.Run(p)
	})
	return y, err
}

// Fig4a reproduces paper Figure 4a: locality optimized search and
// automatic rehoming on REGIONAL BY ROW tables, YCSB-B with 95% and 50%
// locality of access and disjoint keys per client.
func Fig4a(w io.Writer, scale Scale) error {
	header(w, "Figure 4a: LOS and auto-rehoming on REGIONAL BY ROW (YCSB-B, uniform, disjoint keys)")
	type variant struct {
		name       string
		disableLOS bool
		rehoming   bool
		baseline   bool
	}
	variants := []variant{
		{"Unoptimized (no LOS)", true, false, false},
		{"Default (LOS)", false, false, false},
		{"Rehoming (LOS+rehome)", false, true, false},
		{"Baseline (manual partitioning)", false, false, true},
	}
	for _, locality := range []float64{0.95, 0.50} {
		fmt.Fprintf(w, "\nLocality of access = %.0f%%:\n", locality*100)
		for i, v := range variants {
			cfg := workload.YCSBConfig{
				Variant:          workload.YCSBB,
				Distribution:     "uniform",
				LocalityOfAccess: locality,
				DisableLOS:       v.disableLOS,
				Rehoming:         v.rehoming,
				BaselineManual:   v.baseline,
			}
			y, err := fig4Run(300+int64(i)+int64(locality*100), scale, cfg, "LOCALITY REGIONAL BY ROW")
			if err != nil {
				return fmt.Errorf("fig4a %s: %w", v.name, err)
			}
			boxRow(w, v.name+" [read]", y.AllReads())
			boxRow(w, v.name+" [write]", y.AllWrites())
		}
	}
	fmt.Fprintln(w, `
Expected shape (paper): Unoptimized fans out on every operation
(150-200ms); Default keeps local-key operations local and is only slightly
slower than Baseline on remote keys; Rehoming migrates remote rows to the
accessing region and converges to all-local latency (disjoint keys).`)
	return nil
}

// Fig4b reproduces paper Figure 4b: the cost of global uniqueness checks
// on INSERT (YCSB-D, 100% locality) and their elision for computed region
// columns.
func Fig4b(w io.Writer, scale Scale) error {
	header(w, "Figure 4b: uniqueness checks on INSERT (YCSB-D, 100% locality)")
	computedSchema := `CREATE TABLE usertable (
		ycsb_key STRING PRIMARY KEY,
		field0 STRING,
		crdb_region crdb_internal_region AS (region_from_prefix(ycsb_key)) STORED
	) LOCALITY REGIONAL BY ROW`
	type variant struct {
		name     string
		schema   string
		baseline bool
		prefixed bool
	}
	variants := []variant{
		{"Computed (region from PK)", computedSchema, false, true},
		{"Default (region from gateway)", "", false, false},
		{"Baseline (manual partitioning)", "", true, false},
	}
	for i, v := range variants {
		cfg := workload.YCSBConfig{
			Variant:            workload.YCSBD,
			Distribution:       "uniform",
			LocalityOfAccess:   1.0,
			BaselineManual:     v.baseline,
			SchemaSQL:          v.schema,
			RegionPrefixedKeys: v.prefixed,
		}
		y, err := fig4Run(400+int64(i), scale, cfg, "LOCALITY REGIONAL BY ROW")
		if err != nil {
			return fmt.Errorf("fig4b %s: %w", v.name, err)
		}
		boxRow(w, v.name+" [insert]", y.AllWrites())
		boxRow(w, v.name+" [read]", y.AllReads())
	}
	fmt.Fprintln(w, `
Expected shape (paper): Computed elides the uniqueness check (the region is
derived from the primary key) and matches Baseline with local-latency
INSERTs; Default pays one parallel cross-region probe per INSERT, so its
insert latency sits at the inter-region RTTs.`)
	return nil
}

// Fig4c reproduces paper Figure 4c: auto-rehoming under contention —
// c = 1, 2, 3 clients per region all re-homing a shared remote key block,
// against the non-rehoming Default.
func Fig4c(w io.Writer, scale Scale) error {
	header(w, "Figure 4c: auto-rehoming under contention (YCSB-B, 50% locality, shared remote keys)")
	for _, c := range []int{1, 2, 3} {
		cfg := workload.YCSBConfig{
			Variant:          workload.YCSBB,
			Distribution:     "uniform",
			LocalityOfAccess: 0.50,
			SharedRemoteKeys: true,
			Rehoming:         true,
			ClientsPerRegion: c,
		}
		y, err := fig4Run(500+int64(c), scale, cfg, "LOCALITY REGIONAL BY ROW")
		if err != nil {
			return fmt.Errorf("fig4c c=%d: %w", c, err)
		}
		boxRow(w, fmt.Sprintf("Rehoming c=%d [read]", c), y.AllReads())
		boxRow(w, fmt.Sprintf("Rehoming c=%d [write]", c), y.AllWrites())
	}
	cfg := workload.YCSBConfig{
		Variant:          workload.YCSBB,
		Distribution:     "uniform",
		LocalityOfAccess: 0.50,
		SharedRemoteKeys: true,
		ClientsPerRegion: 3,
	}
	y, err := fig4Run(510, scale, cfg, "LOCALITY REGIONAL BY ROW")
	if err != nil {
		return fmt.Errorf("fig4c default: %w", err)
	}
	boxRow(w, "Default (no rehoming) [read]", y.AllReads())
	boxRow(w, "Default (no rehoming) [write]", y.AllWrites())
	fmt.Fprintln(w, `
Expected shape (paper): with c=1 the shared rows re-home to the accessing
region and stay local; with c=2,3 contending regions thrash rows back and
forth and latency degrades toward Default, where remote accesses always
cross a region boundary.`)
	return nil
}

package bench

import (
	"fmt"
	"io"

	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/workload"
)

// fig3Run executes the §7.1 workload (YCSB-A, zipf, 5 regions, us-east1
// primary) against one table configuration and returns the workload with
// its recorders.
func fig3Run(seed int64, maxOffset sim.Duration, scale Scale, locality string, stale bool, dupIndexes bool) (*workload.YCSB, error) {
	c := paperCluster(seed, maxOffset)
	catalog := newCatalog()
	cfg := workload.YCSBConfig{
		Variant:          workload.YCSBA,
		RecordCount:      scale.RecordCount,
		Distribution:     "zipfian",
		OpsPerClient:     scale.OpsPerClient,
		ClientsPerRegion: scale.ClientsPerRegion,
		StaleReads:       stale,
	}
	if dupIndexes {
		cfg.SchemaSQL = "CREATE TABLE usertable (ycsb_key STRING PRIMARY KEY, field0 STRING) WITH DUPLICATE INDEXES"
	}
	y := workload.NewYCSB(c, catalog, cfg)
	err := runSim(c, 12*3600*sim.Second, func(p *sim.Proc) error {
		if err := y.SetupSchema(p, locality); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		if err := y.Load(p); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		return y.Run(p)
	})
	return y, err
}

// Fig3 reproduces paper Figure 3: transaction latency for REGIONAL and
// GLOBAL tables, from the PRIMARY region and from non-PRIMARY regions,
// with max_clock_offset = 250ms.
func Fig3(w io.Writer, scale Scale) error {
	header(w, "Figure 3: transaction latency for REGIONAL and GLOBAL tables (max_clock_offset=250ms)")
	type variant struct {
		name     string
		locality string
		stale    bool
	}
	variants := []variant{
		{"Global", "LOCALITY GLOBAL", false},
		{"Regional (Latest)", "LOCALITY REGIONAL BY TABLE IN PRIMARY REGION", false},
		{"Regional (Stale)", "LOCALITY REGIONAL BY TABLE IN PRIMARY REGION", true},
	}
	primary := simnet.USEast1
	for i, v := range variants {
		y, err := fig3Run(100+int64(i), 250*sim.Millisecond, scale, v.locality, v.stale, false)
		if err != nil {
			return fmt.Errorf("fig3 %s: %w", v.name, err)
		}
		fmt.Fprintf(w, "\n%s:\n", v.name)
		isPrimary := func(r simnet.Region) bool { return r == primary }
		notPrimary := func(r simnet.Region) bool { return r != primary }
		boxRow(w, "read  / primary region", mergeRecorders("", y.ReadLat, isPrimary))
		boxRow(w, "read  / non-primary", mergeRecorders("", y.ReadLat, notPrimary))
		if !v.stale {
			boxRow(w, "write / primary region", mergeRecorders("", y.WriteLat, isPrimary))
			boxRow(w, "write / non-primary", mergeRecorders("", y.WriteLat, notPrimary))
		} else {
			boxRow(w, "write / primary region (fresh)", mergeRecorders("", y.WriteLat, isPrimary))
			boxRow(w, "write / non-primary (fresh)", mergeRecorders("", y.WriteLat, notPrimary))
		}
	}
	fmt.Fprintln(w, `
Expected shape (paper): GLOBAL reads < 3ms everywhere, GLOBAL writes
500-600ms; REGIONAL reads/writes < 3ms from the primary region and
100-200ms remote; stale remote reads < 3ms.`)
	return nil
}

package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mrdb/internal/cluster"
	"mrdb/internal/obs"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/workload"
)

// Trace enables span recording during Fig 3 runs. The collected traces are
// aggregated into per-phase latency histograms written under TraceDir, and
// the commit-wait gate turns protocol regressions into hard errors: only
// GLOBAL tables may commit-wait. Tracing is passive over virtual time, so
// the reported latencies are identical with it on or off.
var Trace bool

// TraceDir is where Trace output lands.
var TraceDir = "results"

// commitWaitGate is the longest commit-wait tolerated on a non-GLOBAL
// table. Clock skew alone can force a wait bounded by the actual skew
// spread (2ms by default); GLOBAL transactions wait hundreds of
// milliseconds by design. 10ms cleanly separates the two.
const commitWaitGate = 10 * sim.Millisecond

// fig3Run executes the §7.1 workload (YCSB-A, zipf, 5 regions, us-east1
// primary) against one table configuration and returns the workload with
// its recorders, plus the cluster for trace inspection.
func fig3Run(seed int64, maxOffset sim.Duration, scale Scale, locality string, stale bool, dupIndexes bool) (*workload.YCSB, *cluster.Cluster, error) {
	c := paperCluster(seed, maxOffset)
	if Trace {
		c.EnableTracing()
	}
	catalog := newCatalog()
	cfg := workload.YCSBConfig{
		Variant:          workload.YCSBA,
		RecordCount:      scale.RecordCount,
		Distribution:     "zipfian",
		OpsPerClient:     scale.OpsPerClient,
		ClientsPerRegion: scale.ClientsPerRegion,
		StaleReads:       stale,
	}
	if dupIndexes {
		cfg.SchemaSQL = "CREATE TABLE usertable (ycsb_key STRING PRIMARY KEY, field0 STRING) WITH DUPLICATE INDEXES"
	}
	y := workload.NewYCSB(c, catalog, cfg)
	err := runSim(c, 12*3600*sim.Second, func(p *sim.Proc) error {
		if err := y.SetupSchema(p, locality); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		if err := y.Load(p); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		return y.Run(p)
	})
	return y, c, err
}

// tracePhases aggregates span durations by span name for one Fig 3 variant
// and reports the longest commit-wait seen, so the caller can apply the
// non-GLOBAL gate.
func tracePhases(w io.Writer, name string, c *cluster.Cluster) sim.Duration {
	reg := obs.NewRegistry()
	var maxWait sim.Duration
	for _, tr := range c.Tracer.Traces() {
		for _, sp := range tr.Spans {
			reg.Histogram(sp.Name).RecordDuration(sp.Duration())
			if sp.Name == "txn.commitwait" && sp.Duration() > maxWait {
				maxWait = sp.Duration()
			}
		}
	}
	fmt.Fprintf(w, "\n%s:\n", name)
	for _, n := range reg.Histograms() {
		fmt.Fprintf(w, "  %-18s %s\n", n, reg.Histogram(n).Summary())
	}
	return maxWait
}

// Fig3 reproduces paper Figure 3: transaction latency for REGIONAL and
// GLOBAL tables, from the PRIMARY region and from non-PRIMARY regions,
// with max_clock_offset = 250ms.
func Fig3(w io.Writer, scale Scale) error {
	header(w, "Figure 3: transaction latency for REGIONAL and GLOBAL tables (max_clock_offset=250ms)")
	type variant struct {
		name     string
		locality string
		stale    bool
	}
	variants := []variant{
		{"Global", "LOCALITY GLOBAL", false},
		{"Regional (Latest)", "LOCALITY REGIONAL BY TABLE IN PRIMARY REGION", false},
		{"Regional (Stale)", "LOCALITY REGIONAL BY TABLE IN PRIMARY REGION", true},
	}
	primary := simnet.USEast1
	var phases strings.Builder
	var gateErr error
	for i, v := range variants {
		y, c, err := fig3Run(100+int64(i), 250*sim.Millisecond, scale, v.locality, v.stale, false)
		if err != nil {
			return fmt.Errorf("fig3 %s: %w", v.name, err)
		}
		if Trace {
			maxWait := tracePhases(&phases, v.name, c)
			if !strings.Contains(v.locality, "GLOBAL") && maxWait > commitWaitGate && gateErr == nil {
				gateErr = fmt.Errorf("fig3 %s: commit-wait of %v on a non-GLOBAL table (gate %v): only GLOBAL tables may commit-wait",
					v.name, maxWait, commitWaitGate)
			}
		}
		fmt.Fprintf(w, "\n%s:\n", v.name)
		isPrimary := func(r simnet.Region) bool { return r == primary }
		notPrimary := func(r simnet.Region) bool { return r != primary }
		boxRow(w, "read  / primary region", mergeRecorders("", y.ReadLat, isPrimary))
		boxRow(w, "read  / non-primary", mergeRecorders("", y.ReadLat, notPrimary))
		if !v.stale {
			boxRow(w, "write / primary region", mergeRecorders("", y.WriteLat, isPrimary))
			boxRow(w, "write / non-primary", mergeRecorders("", y.WriteLat, notPrimary))
		} else {
			boxRow(w, "write / primary region (fresh)", mergeRecorders("", y.WriteLat, isPrimary))
			boxRow(w, "write / non-primary (fresh)", mergeRecorders("", y.WriteLat, notPrimary))
		}
	}
	fmt.Fprintln(w, `
Expected shape (paper): GLOBAL reads < 3ms everywhere, GLOBAL writes
500-600ms; REGIONAL reads/writes < 3ms from the primary region and
100-200ms remote; stale remote reads < 3ms.`)
	if Trace {
		if err := os.MkdirAll(TraceDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(TraceDir, "fig3_phases.txt")
		if err := os.WriteFile(path, []byte(phases.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nper-phase span histograms written to %s\n", path)
	}
	return gateErr
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/sql"
	"mrdb/internal/workload"
)

// SpeedOut is where Speed writes its JSON result.
var SpeedOut = "BENCH_speed.json"

// speedArm is one measured configuration of a speed workload: the same
// virtual-time run executed on either the legacy scheduler (boxed heap
// events, closure wakes, no pooling — the pre-optimization shape, kept as
// sim.NewLegacy) or the optimized one. Wall-clock and allocation numbers
// are real; everything in virtual time is identical between the two arms.
type speedArm struct {
	WallMs         float64 `json:"wall_ms"`
	Events         int64   `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Allocs         int64   `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	Txns           int64   `json:"txns,omitempty"`
	TxnsPerSecWall float64 `json:"txns_per_sec_wall,omitempty"`
	AllocsPerTxn   float64 `json:"allocs_per_txn,omitempty"`
}

// speedPair is one workload's before/after comparison.
type speedPair struct {
	Legacy              speedArm `json:"legacy"`
	Optimized           speedArm `json:"optimized"`
	EventsPerSecSpeedup float64  `json:"events_per_sec_speedup"`
	TxnsPerSecSpeedup   float64  `json:"txns_per_sec_speedup,omitempty"`
}

// speedResult is the BENCH_speed.json schema.
type speedResult struct {
	EventQueue  speedPair `json:"event_queue"`
	SpawnFanOut speedPair `json:"spawn_fanout"`
	Movr        speedPair `json:"movr"`
	TPCC        speedPair `json:"tpcc"`
	// The plan-cache pairs are the SQL fast-path ablation: both arms run
	// the optimized scheduler and differ only in Catalog.PlanCacheOff, so
	// the comparison isolates plan caching + pooled materialization from
	// the scheduler work below. "legacy" = cache off, "optimized" = on.
	MovrPlanCache speedPair `json:"movr_plan_cache"`
	TPCCPlanCache speedPair `json:"tpcc_plan_cache"`
	// TPCCPlanning measures planning throughput alone (TPC-C statement
	// set, no execution): the full plan-vs-bind comparison the cache
	// gates on. In the executing pairs above the simulated replication
	// and network layers — bit-identical across the ablation — dominate
	// wall time, so the cache shows up there as allocation reduction.
	TPCCPlanning speedPair `json:"tpcc_planning"`
}

// speedMeter brackets a measured region: wall clock via time.Now, allocation
// count via runtime.MemStats.Mallocs deltas, event count via sim.Events
// deltas. It runs a GC first so the measured window starts from a settled
// heap; Mallocs (object counts) rather than TotalAlloc (bytes) keeps the
// committed numbers comparable across hardware.
type speedMeter struct {
	s   *sim.Simulation
	m0  runtime.MemStats
	ev0 int64
	t0  time.Time
}

func startMeter(s *sim.Simulation) *speedMeter {
	m := &speedMeter{s: s, ev0: s.Events()}
	runtime.GC()
	runtime.ReadMemStats(&m.m0)
	m.t0 = time.Now()
	return m
}

func (m *speedMeter) stop(txns int64) speedArm {
	wall := time.Since(m.t0)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	arm := speedArm{
		WallMs: float64(wall) / float64(time.Millisecond),
		Events: m.s.Events() - m.ev0,
		Allocs: int64(m1.Mallocs - m.m0.Mallocs),
		Txns:   txns,
	}
	if wall > 0 {
		arm.EventsPerSec = float64(arm.Events) / wall.Seconds()
		arm.TxnsPerSecWall = float64(txns) / wall.Seconds()
	}
	if arm.Events > 0 {
		arm.AllocsPerEvent = float64(arm.Allocs) / float64(arm.Events)
	}
	if txns > 0 {
		arm.AllocsPerTxn = float64(arm.Allocs) / float64(txns)
	}
	return arm
}

func newSpeedSim(seed int64, legacy bool) *sim.Simulation {
	if legacy {
		return sim.NewLegacy(seed)
	}
	return sim.New(seed)
}

// eventQueueArm measures the raw scheduler hot loop: one process sleeping
// through n timer events. This is the pure park/wake + heap push/pop path —
// the BenchmarkEventQueue shape — and the arm the 1.5x gate applies to.
func eventQueueArm(legacy bool, n int) speedArm {
	s := newSpeedSim(1, legacy)
	var arm speedArm
	s.Spawn("speed/event-queue", func(p *sim.Proc) {
		// Warm pools and the heap's backing array so the measured window is
		// steady state for both arms.
		for i := 0; i < 4096; i++ {
			p.Sleep(sim.Microsecond)
		}
		m := startMeter(s)
		for i := 0; i < n; i++ {
			p.Sleep(sim.Microsecond)
		}
		arm = m.stop(0)
	})
	s.Run()
	return arm
}

// spawnFanOutArm measures process churn: iters rounds of an 8-way
// spawn/join, the shape of DistSender fan-out and parallel SQL probes.
func spawnFanOutArm(legacy bool, iters int) speedArm {
	s := newSpeedSim(2, legacy)
	var arm speedArm
	s.Spawn("speed/fanout", func(p *sim.Proc) {
		fan := func() {
			wg := s.GetWaitGroup()
			for j := 0; j < 8; j++ {
				wg.Add(1)
				s.Spawn("speed/child", func(cp *sim.Proc) {
					cp.Sleep(sim.Duration(10+j) * sim.Microsecond)
					wg.Done()
				})
			}
			wg.Wait(p)
			wg.Release()
		}
		for i := 0; i < 256; i++ { // warm the proc pool
			fan()
		}
		m := startMeter(s)
		for i := 0; i < iters; i++ {
			fan()
		}
		arm = m.stop(0)
	})
	s.Run()
	return arm
}

// movrArm runs the MovR steady state (tracing on, so the span arena is on
// the measured path) and brackets the Run phase: schema setup and bulk load
// stay outside the measured window.
func movrArm(seed int64, scale Scale, legacy, planCacheOff bool) (speedArm, error) {
	c := cluster.New(cluster.Config{
		Seed:            seed,
		Regions:         cluster.ThreeRegions(),
		MaxOffset:       250 * sim.Millisecond,
		Jitter:          0.02,
		Tracing:         true,
		LegacyScheduler: legacy,
	})
	catalog := newCatalog()
	catalog.PlanCacheOff = planCacheOff
	m := workload.NewMovr(c, catalog)
	var arm speedArm
	err := runSim(c, 12*3600*sim.Second, func(p *sim.Proc) error {
		if err := m.Setup(p); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		if err := m.Load(p); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		meter := startMeter(c.Sim)
		if err := m.Run(p, scale.ClientsPerRegion, scale.OpsPerClient); err != nil {
			return err
		}
		txns := int64(m.SignupLat.Count() + m.RideLat.Count() + m.BrowseLat.Count())
		arm = meter.stop(txns)
		return nil
	})
	return arm, err
}

// tpccArm runs the TPC-C mix (tracing off: the span-free configuration) and
// brackets the terminal run phase.
func tpccArm(seed int64, scale Scale, legacy, planCacheOff bool) (speedArm, error) {
	c := cluster.New(cluster.Config{
		Seed:            seed,
		Regions:         cluster.ThreeRegions(),
		MaxOffset:       250 * sim.Millisecond,
		Jitter:          0.02,
		LegacyScheduler: legacy,
	})
	catalog := newCatalog()
	catalog.PlanCacheOff = planCacheOff
	cfg := workload.DefaultTPCCConfig()
	cfg.TxnsPerTerminal = scale.TPCCTxnsPerTerminal
	t := workload.NewTPCC(c, catalog, cfg)
	var arm speedArm
	err := runSim(c, 12*3600*sim.Second, func(p *sim.Proc) error {
		if err := t.SetupSchema(p); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		if err := t.Load(p); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		meter := startMeter(c.Sim)
		if err := t.Run(p); err != nil {
			return err
		}
		txns := int64(t.NewOrderLat.Count() + t.PaymentLat.Count() +
			t.OrderStatusLat.Count() + t.DeliveryLat.Count() + t.StockLevelLat.Count())
		arm = meter.stop(txns)
		return nil
	})
	return arm, err
}

// tpccPlanArm measures SQL planning throughput over the TPC-C statement
// set: schema setup only (no data load, no statement execution), then n
// transactions' worth of planning through the prepared-statement path.
// Txns counts planned transactions, so TxnsPerSecWall is plans-per-second
// in transaction units.
func tpccPlanArm(seed int64, n int, planCacheOff bool) (speedArm, error) {
	c := cluster.New(cluster.Config{
		Seed:      seed,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
	})
	catalog := newCatalog()
	catalog.PlanCacheOff = planCacheOff
	t := workload.NewTPCC(c, catalog, workload.DefaultTPCCConfig())
	var arm speedArm
	err := runSim(c, 3600*sim.Second, func(p *sim.Proc) error {
		if err := t.SetupSchema(p); err != nil {
			return err
		}
		s := sql.NewSession(c, catalog, c.GatewayFor(c.Regions()[0]))
		s.Database = "tpcc"
		// Warm the cache (and, cache-off, the planner's code paths) so the
		// measured window is steady state for both arms.
		if _, err := t.PlanOnly(s, 64); err != nil {
			return err
		}
		m := startMeter(c.Sim)
		if _, err := t.PlanOnly(s, n); err != nil {
			return err
		}
		arm = m.stop(int64(n))
		return nil
	})
	return arm, err
}

func newSpeedPair(legacy, opt speedArm) speedPair {
	p := speedPair{Legacy: legacy, Optimized: opt}
	if opt.EventsPerSec > 0 && legacy.EventsPerSec > 0 {
		p.EventsPerSecSpeedup = opt.EventsPerSec / legacy.EventsPerSec
	}
	if opt.TxnsPerSecWall > 0 && legacy.TxnsPerSecWall > 0 {
		p.TxnsPerSecSpeedup = opt.TxnsPerSecWall / legacy.TxnsPerSecWall
	}
	return p
}

func speedRow(w io.Writer, name string, p speedPair) {
	arm := func(label string, a speedArm) {
		fmt.Fprintf(w, "  %-14s %-9s wall=%-10s events/s=%-12.0f allocs/event=%-8.3f",
			name, label, fmt.Sprintf("%.1fms", a.WallMs), a.EventsPerSec, a.AllocsPerEvent)
		name = ""
		if a.Txns > 0 {
			fmt.Fprintf(w, " txns/s=%-8.0f allocs/txn=%.0f", a.TxnsPerSecWall, a.AllocsPerTxn)
		}
		fmt.Fprintln(w)
	}
	arm("legacy", p.Legacy)
	arm("optimized", p.Optimized)
	fmt.Fprintf(w, "  %-14s %-9s events/s speedup=%.2fx", "", "", p.EventsPerSecSpeedup)
	if p.TxnsPerSecSpeedup > 0 {
		fmt.Fprintf(w, " txns/s speedup=%.2fx", p.TxnsPerSecSpeedup)
	}
	fmt.Fprintln(w)
}

// Speed is the wall-clock performance benchmark: it runs the two sim
// micro-workloads (event queue, spawn fan-out) and the two macro workloads
// (MovR with tracing, TPC-C without) on both the legacy scheduler and the
// optimized one — same process, same hardware — and writes the comparison
// to BENCH_speed.json. Hard gates: the event-queue arm must show >= 1.5x
// events/sec, and the optimized arms must allocate strictly less per event
// and per transaction than legacy.
func Speed(w io.Writer, scale Scale) error {
	header(w, "Speed: wall-clock scheduler performance, legacy vs optimized (same hardware, same process)")

	evN, fanN := 400000, 20000
	if scale.RecordCount > 10000 { // -full
		evN, fanN = 2000000, 100000
	}

	eq := newSpeedPair(eventQueueArm(true, evN), eventQueueArm(false, evN))
	fan := newSpeedPair(spawnFanOutArm(true, fanN), spawnFanOutArm(false, fanN))

	movrLegacy, err := movrArm(810, scale, true, false)
	if err != nil {
		return fmt.Errorf("movr legacy: %w", err)
	}
	movrOpt, err := movrArm(810, scale, false, false)
	if err != nil {
		return fmt.Errorf("movr optimized: %w", err)
	}
	movr := newSpeedPair(movrLegacy, movrOpt)

	tpccLegacy, err := tpccArm(811, scale, true, false)
	if err != nil {
		return fmt.Errorf("tpcc legacy: %w", err)
	}
	tpccOpt, err := tpccArm(811, scale, false, false)
	if err != nil {
		return fmt.Errorf("tpcc optimized: %w", err)
	}
	tpcc := newSpeedPair(tpccLegacy, tpccOpt)

	// Plan-cache ablation: optimized scheduler on both arms, PlanCacheOff
	// flipped. Fresh seeds keep these runs independent of the scheduler
	// pairs above.
	movrPCOff, err := movrArm(812, scale, false, true)
	if err != nil {
		return fmt.Errorf("movr plan-cache off: %w", err)
	}
	movrPCOn, err := movrArm(812, scale, false, false)
	if err != nil {
		return fmt.Errorf("movr plan-cache on: %w", err)
	}
	movrPC := newSpeedPair(movrPCOff, movrPCOn)

	tpccPCOff, err := tpccArm(813, scale, false, true)
	if err != nil {
		return fmt.Errorf("tpcc plan-cache off: %w", err)
	}
	tpccPCOn, err := tpccArm(813, scale, false, false)
	if err != nil {
		return fmt.Errorf("tpcc plan-cache on: %w", err)
	}
	tpccPC := newSpeedPair(tpccPCOff, tpccPCOn)

	planN := 5000
	if scale.RecordCount > 10000 { // -full
		planN = 20000
	}
	planOff, err := tpccPlanArm(814, planN, true)
	if err != nil {
		return fmt.Errorf("tpcc planning cache off: %w", err)
	}
	planOn, err := tpccPlanArm(814, planN, false)
	if err != nil {
		return fmt.Errorf("tpcc planning cache on: %w", err)
	}
	tpccPlan := newSpeedPair(planOff, planOn)

	res := speedResult{
		EventQueue: eq, SpawnFanOut: fan, Movr: movr, TPCC: tpcc,
		MovrPlanCache: movrPC, TPCCPlanCache: tpccPC, TPCCPlanning: tpccPlan,
	}
	speedRow(w, "event_queue", eq)
	speedRow(w, "spawn_fanout", fan)
	speedRow(w, "movr", movr)
	speedRow(w, "tpcc", tpcc)
	speedRow(w, "movr_plan_cache", movrPC)
	speedRow(w, "tpcc_plan_cache", tpccPC)
	speedRow(w, "tpcc_planning", tpccPlan)

	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(SpeedOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "  written to %s\n", SpeedOut)

	// Gates. Wall-clock speedups on the macro arms are reported but not
	// gated (too noisy under CI contention); allocation counts are
	// near-deterministic, so they gate hard.
	if eq.EventsPerSecSpeedup < 1.5 {
		return fmt.Errorf("speed: event queue speedup %.2fx below the 1.5x gate", eq.EventsPerSecSpeedup)
	}
	if eq.Optimized.AllocsPerEvent >= eq.Legacy.AllocsPerEvent {
		return fmt.Errorf("speed: event queue allocs/event %.3f not below legacy %.3f",
			eq.Optimized.AllocsPerEvent, eq.Legacy.AllocsPerEvent)
	}
	if movr.Optimized.AllocsPerEvent >= movr.Legacy.AllocsPerEvent {
		return fmt.Errorf("speed: movr allocs/event %.3f not below legacy %.3f",
			movr.Optimized.AllocsPerEvent, movr.Legacy.AllocsPerEvent)
	}
	if movr.Optimized.AllocsPerTxn >= movr.Legacy.AllocsPerTxn {
		return fmt.Errorf("speed: movr allocs/txn %.0f not below legacy %.0f",
			movr.Optimized.AllocsPerTxn, movr.Legacy.AllocsPerTxn)
	}
	if tpcc.Optimized.AllocsPerTxn >= tpcc.Legacy.AllocsPerTxn {
		return fmt.Errorf("speed: tpcc allocs/txn %.0f not below legacy %.0f",
			tpcc.Optimized.AllocsPerTxn, tpcc.Legacy.AllocsPerTxn)
	}
	// Plan-cache gates: cache-on must allocate strictly less per txn on
	// both executing workloads, and the TPC-C planning arm must deliver
	// >= 1.3x planned txns/sec over cache-off.
	if movrPC.Optimized.AllocsPerTxn >= movrPC.Legacy.AllocsPerTxn {
		return fmt.Errorf("speed: movr plan-cache allocs/txn %.0f not below cache-off %.0f",
			movrPC.Optimized.AllocsPerTxn, movrPC.Legacy.AllocsPerTxn)
	}
	if tpccPC.Optimized.AllocsPerTxn >= tpccPC.Legacy.AllocsPerTxn {
		return fmt.Errorf("speed: tpcc plan-cache allocs/txn %.0f not below cache-off %.0f",
			tpccPC.Optimized.AllocsPerTxn, tpccPC.Legacy.AllocsPerTxn)
	}
	if tpccPlan.TxnsPerSecSpeedup < 1.3 {
		return fmt.Errorf("speed: tpcc planning txns/sec speedup %.2fx below the 1.3x gate",
			tpccPlan.TxnsPerSecSpeedup)
	}
	return nil
}

// SpeedCompare is the CI regression checker: it loads a committed baseline
// BENCH_speed.json and a freshly generated one and fails only on >2x
// regressions — events/sec halving (or txns/sec halving for planning-style
// arms that run no simulation events), or allocs/event (or allocs/txn)
// doubling on any optimized arm. Smaller movements are hardware noise
// between the machine that committed the baseline and the CI runner.
//
// Both files decode generically as workload-name -> pair, not through
// speedResult, so a fresh run carrying workloads the committed baseline
// predates is tolerated: new keys warn and are skipped until the baseline
// is regenerated, instead of silently comparing against zeros (or forcing
// every workload addition to land with a same-commit baseline refresh).
func SpeedCompare(w io.Writer, baselinePath, freshPath string) error {
	type pair struct {
		Optimized speedArm `json:"optimized"`
	}
	load := func(path string) (map[string]pair, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r map[string]pair
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return r, nil
	}
	base, err := load(baselinePath)
	if err != nil {
		return err
	}
	fresh, err := load(freshPath)
	if err != nil {
		return err
	}
	var failures []string
	check := func(name string, b, f speedArm) {
		if b.EventsPerSec > 0 && f.EventsPerSec > 0 {
			ratio := f.EventsPerSec / b.EventsPerSec
			fmt.Fprintf(w, "  %-14s events/s %12.0f -> %12.0f (%.2fx)", name, b.EventsPerSec, f.EventsPerSec, ratio)
			if ratio < 0.5 {
				failures = append(failures, fmt.Sprintf("%s events/sec regressed %.2fx", name, ratio))
			}
		} else if b.TxnsPerSecWall > 0 && f.TxnsPerSecWall > 0 {
			// Planning-style arms (tpcc_planning) run no simulation events;
			// their throughput is txns/sec, so gate that instead.
			ratio := f.TxnsPerSecWall / b.TxnsPerSecWall
			fmt.Fprintf(w, "  %-14s txns/s   %12.0f -> %12.0f (%.2fx)", name, b.TxnsPerSecWall, f.TxnsPerSecWall, ratio)
			if ratio < 0.5 {
				failures = append(failures, fmt.Sprintf("%s txns/sec regressed %.2fx", name, ratio))
			}
		}
		if b.AllocsPerEvent > 0 && f.AllocsPerEvent > b.AllocsPerEvent*2 {
			failures = append(failures, fmt.Sprintf("%s allocs/event %.3f -> %.3f (>2x)", name, b.AllocsPerEvent, f.AllocsPerEvent))
		}
		if b.AllocsPerTxn > 0 && f.AllocsPerTxn > b.AllocsPerTxn*2 {
			failures = append(failures, fmt.Sprintf("%s allocs/txn %.0f -> %.0f (>2x)", name, b.AllocsPerTxn, f.AllocsPerTxn))
		}
		fmt.Fprintln(w)
	}
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)
	header(w, "Speed check: fresh run vs committed baseline (optimized arms, >2x gates)")
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "  %-14s not in baseline %s — skipped (regenerate the baseline to gate it)\n", name, baselinePath)
			continue
		}
		check(name, b.Optimized, fresh[name].Optimized)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(w, "  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("speed check: %d regression(s) beyond the 2x gate", len(failures))
	}
	fmt.Fprintln(w, "  no regressions beyond the 2x gate")
	return nil
}

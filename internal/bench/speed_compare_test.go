package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSpeedJSON drops a minimal BENCH_speed.json-shaped file.
func writeSpeedJSON(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSpeedCompareToleratesNewWorkloads(t *testing.T) {
	dir := t.TempDir()
	base := writeSpeedJSON(t, dir, "base.json", `{
		"event_queue": {"optimized": {"events_per_sec": 1000000, "allocs_per_event": 0.5}}
	}`)
	fresh := writeSpeedJSON(t, dir, "fresh.json", `{
		"event_queue": {"optimized": {"events_per_sec": 900000, "allocs_per_event": 0.5}},
		"brand_new_workload": {"optimized": {"events_per_sec": 123, "allocs_per_event": 99}}
	}`)
	var sb stringsWriter
	if err := SpeedCompare(&sb, base, fresh); err != nil {
		t.Fatalf("new workload in fresh run must not fail the check: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "brand_new_workload") || !strings.Contains(out, "not in baseline") {
		t.Errorf("expected a skip warning for the new workload, got:\n%s", out)
	}
}

func TestSpeedCompareStillCatchesRegressions(t *testing.T) {
	dir := t.TempDir()
	base := writeSpeedJSON(t, dir, "base.json", `{
		"event_queue": {"optimized": {"events_per_sec": 1000000, "allocs_per_event": 0.5}}
	}`)
	fresh := writeSpeedJSON(t, dir, "fresh.json", `{
		"event_queue": {"optimized": {"events_per_sec": 400000, "allocs_per_event": 0.5}},
		"brand_new_workload": {"optimized": {"events_per_sec": 123}}
	}`)
	var sb stringsWriter
	err := SpeedCompare(&sb, base, fresh)
	if err == nil {
		t.Fatalf("a >2x events/sec regression must still fail:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Errorf("unexpected error: %v", err)
	}
}

package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSpeedJSON drops a minimal BENCH_speed.json-shaped file.
func writeSpeedJSON(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSpeedCompareToleratesNewWorkloads(t *testing.T) {
	dir := t.TempDir()
	base := writeSpeedJSON(t, dir, "base.json", `{
		"event_queue": {"optimized": {"events_per_sec": 1000000, "allocs_per_event": 0.5}}
	}`)
	fresh := writeSpeedJSON(t, dir, "fresh.json", `{
		"event_queue": {"optimized": {"events_per_sec": 900000, "allocs_per_event": 0.5}},
		"brand_new_workload": {"optimized": {"events_per_sec": 123, "allocs_per_event": 99}}
	}`)
	var sb stringsWriter
	if err := SpeedCompare(&sb, base, fresh); err != nil {
		t.Fatalf("new workload in fresh run must not fail the check: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "brand_new_workload") || !strings.Contains(out, "not in baseline") {
		t.Errorf("expected a skip warning for the new workload, got:\n%s", out)
	}
}

func TestSpeedCompareStillCatchesRegressions(t *testing.T) {
	dir := t.TempDir()
	base := writeSpeedJSON(t, dir, "base.json", `{
		"event_queue": {"optimized": {"events_per_sec": 1000000, "allocs_per_event": 0.5}}
	}`)
	fresh := writeSpeedJSON(t, dir, "fresh.json", `{
		"event_queue": {"optimized": {"events_per_sec": 400000, "allocs_per_event": 0.5}},
		"brand_new_workload": {"optimized": {"events_per_sec": 123}}
	}`)
	var sb stringsWriter
	err := SpeedCompare(&sb, base, fresh)
	if err == nil {
		t.Fatalf("a >2x events/sec regression must still fail:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Errorf("unexpected error: %v", err)
	}
}

// The plan-cache workloads: the macro ablation pairs carry events/sec like
// any other workload, while tpcc_planning runs no simulation events and is
// gated on txns/sec instead.
func TestSpeedCompareGatesPlanningTxnsPerSec(t *testing.T) {
	dir := t.TempDir()
	base := writeSpeedJSON(t, dir, "base.json", `{
		"tpcc_plan_cache": {"optimized": {"events_per_sec": 200000, "allocs_per_event": 7.0, "allocs_per_txn": 6800}},
		"tpcc_planning": {"optimized": {"txns_per_sec_wall": 60000, "allocs_per_txn": 110}}
	}`)
	ok := writeSpeedJSON(t, dir, "ok.json", `{
		"tpcc_plan_cache": {"optimized": {"events_per_sec": 150000, "allocs_per_event": 7.2, "allocs_per_txn": 6900}},
		"tpcc_planning": {"optimized": {"txns_per_sec_wall": 40000, "allocs_per_txn": 120}}
	}`)
	var sb stringsWriter
	if err := SpeedCompare(&sb, base, ok); err != nil {
		t.Fatalf("within-2x drift must pass: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "tpcc_planning") || !strings.Contains(sb.String(), "txns/s") {
		t.Errorf("planning arm should be reported on its txns/sec gate, got:\n%s", sb.String())
	}

	bad := writeSpeedJSON(t, dir, "bad.json", `{
		"tpcc_plan_cache": {"optimized": {"events_per_sec": 150000, "allocs_per_event": 7.2, "allocs_per_txn": 6900}},
		"tpcc_planning": {"optimized": {"txns_per_sec_wall": 20000, "allocs_per_txn": 120}}
	}`)
	var sb2 stringsWriter
	err := SpeedCompare(&sb2, base, bad)
	if err == nil {
		t.Fatalf("a >2x planning txns/sec regression must fail:\n%s", sb2.String())
	}
	if !strings.Contains(err.Error(), "regression") || !strings.Contains(sb2.String(), "tpcc_planning") {
		t.Errorf("unexpected failure shape: %v\n%s", err, sb2.String())
	}
}

// Package bench reproduces every table and figure of the paper's
// evaluation (§7) on the simulated cluster. Each experiment builds its own
// cluster, runs the workload in virtual time, and renders the same rows or
// series the paper reports. Scale.Quick keeps runs small enough for
// `go test -bench`; Scale.Full approaches the paper's operation counts.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
	"mrdb/internal/workload"
)

// Scale selects experiment sizes.
type Scale struct {
	// RecordCount is the YCSB table size (paper: 100k).
	RecordCount int
	// OpsPerClient is the per-client closed-loop op count (paper: 50k).
	OpsPerClient int
	// ClientsPerRegion (paper: 10).
	ClientsPerRegion int
	// TPCCTxnsPerTerminal bounds the TPC-C run length.
	TPCCTxnsPerTerminal int
}

// Quick returns the laptop-scale configuration used by `go test -bench`.
func Quick() Scale {
	return Scale{RecordCount: 600, OpsPerClient: 40, ClientsPerRegion: 3, TPCCTxnsPerTerminal: 15}
}

// Full returns a configuration close to the paper's (slow: minutes of real
// time per figure).
func Full() Scale {
	return Scale{RecordCount: 100000, OpsPerClient: 2000, ClientsPerRegion: 10, TPCCTxnsPerTerminal: 200}
}

// ms formats a duration in milliseconds with two decimals.
func ms(d sim.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(sim.Millisecond))
}

// runSim executes fn as the root process of c's simulation and drains it.
func runSim(c *cluster.Cluster, budget sim.Duration, fn func(p *sim.Proc) error) error {
	var err error
	done := false
	c.Sim.Spawn("bench", func(p *sim.Proc) {
		err = fn(p)
		done = true
		// Nothing after the experiment matters: stop rather than drain
		// hours of background heartbeats.
		c.Sim.Stop()
	})
	c.Sim.RunFor(budget)
	if !done && err == nil {
		return fmt.Errorf("bench: experiment did not finish within %v of virtual time", budget)
	}
	if err != nil {
		return err
	}
	if n := c.ApplyErrors(); n != 0 {
		return fmt.Errorf("bench: %d command application errors", n)
	}
	return nil
}

// paperCluster builds the 5-region cluster of §7.1 with the given maximum
// clock offset.
func paperCluster(seed int64, maxOffset sim.Duration) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Seed:      seed,
		Regions:   cluster.PaperRegions(),
		MaxOffset: maxOffset,
		Jitter:    0.02,
	})
}

// threeRegionCluster builds the 3-region cluster of §7.2.
func threeRegionCluster(seed int64, maxOffset sim.Duration) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Seed:      seed,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: maxOffset,
		Jitter:    0.02,
	})
}

// threeRegionClusterUS builds a 3-region cluster with two nearby US regions
// plus Europe, for the survivability ablation (nearest-region RTT 63ms).
func threeRegionClusterUS(seed int64) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Seed: seed,
		Regions: []cluster.RegionSpec{
			{Name: simnet.USEast1, Zones: 3, NodesPerZone: 1},
			{Name: simnet.USWest1, Zones: 3, NodesPerZone: 1},
			{Name: simnet.EuropeW2, Zones: 3, NodesPerZone: 1},
		},
		MaxOffset: 250 * sim.Millisecond,
		Jitter:    0.02,
	})
}

// boxRow renders one paper-Fig-3 style box plot line.
func boxRow(w io.Writer, label string, r *workload.LatencyRecorder) {
	b := r.Box()
	fmt.Fprintf(w, "  %-34s n=%-6d whiskerLo=%-10s p25=%-10s p50=%-10s p75=%-10s whiskerHi=%-10s\n",
		label, r.Count(), ms(b.WhiskerLo), ms(b.P25), ms(b.P50), ms(b.P75), ms(b.WhiskerHi))
}

// cdfRows renders a compact CDF (selected percentiles) for Fig 5.
func cdfRows(w io.Writer, label string, r *workload.LatencyRecorder) {
	fmt.Fprintf(w, "  %-34s", label)
	for _, q := range []float64{50, 90, 99, 99.9, 100} {
		fmt.Fprintf(w, " p%-5v=%-10s", q, ms(r.Percentile(q)))
	}
	fmt.Fprintf(w, " n=%d errs=%d\n", r.Count(), r.Errors)
}

// mergeRecorders combines recorders from selected regions.
func mergeRecorders(name string, recs map[simnet.Region]*workload.LatencyRecorder, include func(simnet.Region) bool) *workload.LatencyRecorder {
	out := workload.NewLatencyRecorder(name)
	regions := make([]simnet.Region, 0, len(recs))
	for r := range recs {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, r := range regions {
		if include(r) {
			out.Merge(recs[r])
		}
	}
	return out
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// newCatalog returns a fresh SQL catalog for one experiment's cluster.
func newCatalog() *sql.Catalog { return sql.NewCatalog() }

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mrdb/internal/cluster"
	"mrdb/internal/kv"
	"mrdb/internal/obs/export"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
	"mrdb/internal/workload"
)

// ElasticOut is where Elastic writes its JSON result.
var ElasticOut = "BENCH_elastic.json"

// ExportDir, when non-empty (mrbench -export-dir), makes every elastic
// scenario export its observability state — OpenMetrics timeseries,
// registry dump, Jaeger traces — into that directory, and turns tracing on
// for the benchmark clusters.
var ExportDir = ""

// elasticGate is the re-convergence requirement: after every dynamic event
// the tail-of-phase p50 and p99 must come back to within this factor of the
// pre-shift steady state. Absolute latencies are not gated — only the shape
// of the recovery.
const elasticGate = 1.5

// elasticWindow is one point of the latency trajectory.
type elasticWindow struct {
	StartSec float64 `json:"start_sec"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	N        int     `json:"n"`
	Errors   int     `json:"errors"`
}

// elasticEvent is one dynamic event and its measured recovery. Early* is
// the first third of the post-event phase, Tail* the last third: together
// they assert the shape of the curve, not just its endpoint — latency may
// run elevated while the system adapts, and must have come back down by the
// phase's end.
type elasticEvent struct {
	Name       string  `json:"name"`
	AtSec      float64 `json:"at_sec"`
	EarlyP50Ms float64 `json:"early_p50_ms"`
	EarlyP99Ms float64 `json:"early_p99_ms"`
	TailP50Ms  float64 `json:"tail_p50_ms"`
	TailP99Ms  float64 `json:"tail_p99_ms"`
	RatioP50   float64 `json:"ratio_p50"`
	RatioP99   float64 `json:"ratio_p99"`
	// Elevated reports whether the early window's p99 ran above the phase
	// tail's — the transient the adaptation is supposed to burn off.
	Elevated  bool `json:"elevated"`
	Converged bool `json:"converged"`
}

// elasticScenario is one dynamic scenario's full result.
type elasticScenario struct {
	Name          string          `json:"name"`
	BaselineP50Ms float64         `json:"baseline_p50_ms"`
	BaselineP99Ms float64         `json:"baseline_p99_ms"`
	Events        []elasticEvent  `json:"events"`
	Windows       []elasticWindow `json:"windows"`
	LoadSplits    int64           `json:"load_splits"`
	Merges        int64           `json:"merges"`
	LeaseMoves    int64           `json:"lease_moves"`
	ReplicaMoves  int64           `json:"replica_moves"`
	RangesFinal   int             `json:"ranges_final"`
	Errors        int             `json:"errors"`
}

// elasticResult is the BENCH_elastic.json schema.
type elasticResult struct {
	Gate      float64           `json:"convergence_gate"`
	Scenarios []elasticScenario `json:"scenarios"`
}

// secf converts a virtual time to seconds.
func secf(t sim.Time) float64 { return float64(t) / float64(sim.Second) }

// trajectory converts a windowed recorder into the JSON trajectory.
func trajectory(wr *workload.WindowedRecorder) ([]elasticWindow, int) {
	var out []elasticWindow
	errs := 0
	for _, idx := range wr.Indices() {
		rec := wr.Window(idx)
		out = append(out, elasticWindow{
			StartSec: float64(idx) * float64(wr.Width) / float64(sim.Second),
			P50Ms:    msf(rec.Percentile(50)),
			P99Ms:    msf(rec.Percentile(99)),
			N:        rec.Count(),
			Errors:   rec.Errors,
		})
		errs += rec.Errors
	}
	return out, errs
}

// phaseTail merges the last third of a phase — the steady state the system
// should have re-converged to by the phase's end.
func phaseTail(wr *workload.WindowedRecorder, start sim.Time, dur sim.Duration) *workload.LatencyRecorder {
	return wr.Between(start.Add(2*dur/3), start.Add(dur))
}

// convergence scores each post-baseline phase against the baseline: the
// early third of the phase captures the transient right after the event,
// the tail third the steady state it must re-converge to.
func convergence(names []string, wr *workload.WindowedRecorder, starts []sim.Time, dur sim.Duration) (float64, float64, []elasticEvent) {
	base := phaseTail(wr, starts[0], dur)
	b50, b99 := base.Percentile(50), base.Percentile(99)
	var events []elasticEvent
	for i, name := range names {
		early := wr.Between(starts[i+1], starts[i+1].Add(dur/3))
		e50, e99 := early.Percentile(50), early.Percentile(99)
		tail := phaseTail(wr, starts[i+1], dur)
		t50, t99 := tail.Percentile(50), tail.Percentile(99)
		r50 := float64(t50) / float64(b50)
		r99 := float64(t99) / float64(b99)
		events = append(events, elasticEvent{
			Name: name, AtSec: secf(starts[i+1]),
			EarlyP50Ms: msf(e50), EarlyP99Ms: msf(e99),
			TailP50Ms: msf(t50), TailP99Ms: msf(t99),
			RatioP50: r50, RatioP99: r99,
			Elevated:  e99 > t99,
			Converged: t50 > 0 && r50 <= elasticGate && r99 <= elasticGate,
		})
	}
	return msf(b50), msf(b99), events
}

// elasticCluster builds a 3-region cluster with the load-based allocator on.
// Sampling is always on (the trajectory is the experiment); tracing only
// when an export was requested, since traces are the one observability
// layer with real memory weight.
func elasticCluster(seed int64, lc kv.LoadConfig) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Seed:           seed,
		Regions:        cluster.ThreeRegions(),
		MaxOffset:      250 * sim.Millisecond,
		Jitter:         0.02,
		LoadBased:      true,
		Load:           lc,
		Tracing:        ExportDir != "",
		Sampling:       true,
		SampleInterval: 1 * sim.Second,
		SampleBucket:   5 * sim.Second,
	})
}

// exportScenario writes one scenario's observability state into ExportDir
// (no-op when unset): elastic_<name>_{metrics.prom,registry.prom,traces.json}.
func exportScenario(c *cluster.Cluster, name string) error {
	if ExportDir == "" {
		return nil
	}
	return export.WriteDir(ExportDir, "elastic_"+name+"_", c.TSDB, c.Metrics, c.Tracer.Traces())
}

// elasticFollowTheSun runs scenario (a): MovR traffic whose dominant region
// rotates us-east → europe → asia. The REGIONAL BY ROW schema keeps each
// region's traffic local, so the hot region's latency must return to the
// pre-shift shape after every rotation while the load queue absorbs the
// shifted mix.
func elasticFollowTheSun(phaseDur sim.Duration, window sim.Duration) (*elasticScenario, error) {
	c := elasticCluster(801, kv.LoadConfig{})
	catalog := newCatalog()
	m := workload.NewMovr(c, catalog)
	fts := workload.NewFollowTheSun(m, window)
	fts.Think = 1 * sim.Second
	phases := []workload.SunPhase{
		{Hot: simnet.USEast1, Duration: phaseDur},
		{Hot: simnet.EuropeW2, Duration: phaseDur},
		{Hot: simnet.AsiaNE1, Duration: phaseDur},
	}
	err := runSim(c, 6*3600*sim.Second, func(p *sim.Proc) error {
		if err := m.Setup(p); err != nil {
			return err
		}
		if err := m.Load(p); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		return fts.Run(p, phases)
	})
	if err != nil {
		return nil, err
	}
	out := &elasticScenario{Name: "follow-the-sun"}
	out.Windows, out.Errors = trajectory(fts.Windows)
	out.BaselineP50Ms, out.BaselineP99Ms, out.Events = convergence(
		[]string{"shift-to-europe", "shift-to-asia"}, fts.HotWindows, fts.PhaseStarts, phaseDur)
	out.LoadSplits, out.Merges = c.Admin.LoadSplits, c.Admin.Merges
	out.LeaseMoves, out.ReplicaMoves = c.Admin.LeaseMoves, c.Admin.ReplicaMoves
	out.RangesFinal = len(c.Catalog.All())
	return out, exportScenario(c, out.Name)
}

// elasticHotspot runs scenario (b): a migrating YCSB hotspot. 90% of the
// operations land in a key window that jumps each phase; the load queue must
// split the hot window out (load_splits > 0) and merge the abandoned cold
// remnants back (merges > 0) while the latency shape stays converged.
func elasticHotspot(scale Scale, phaseDur sim.Duration, window sim.Duration) (*elasticScenario, error) {
	c := elasticCluster(802, kv.LoadConfig{
		Interval:   10 * sim.Second,
		HalfLife:   20 * sim.Second,
		SplitQPS:   3,
		MergeQPS:   0.8,
		MergeTicks: 2,
	})
	catalog := newCatalog()
	y := workload.NewYCSB(c, catalog, workload.YCSBConfig{
		RecordCount:  scale.RecordCount,
		Distribution: "uniform",
	})
	hs := workload.NewMigratingHotspot(y, window)
	hs.ClientsPerRegion = 3
	hs.Think = 300 * sim.Millisecond
	hs.Regions = []simnet.Region{simnet.USEast1}
	n := scale.RecordCount
	phases := []workload.HotspotPhase{
		{Start: 0, Duration: phaseDur},
		{Start: n / 2, Duration: phaseDur},
		{Start: n / 4, Duration: phaseDur},
	}
	err := runSim(c, 6*3600*sim.Second, func(p *sim.Proc) error {
		if err := y.SetupSchema(p, "LOCALITY REGIONAL BY TABLE"); err != nil {
			return err
		}
		if err := y.Load(p); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		return hs.Run(p, phases)
	})
	if err != nil {
		return nil, err
	}
	out := &elasticScenario{Name: "migrating-hotspot"}
	out.Windows, out.Errors = trajectory(hs.Windows)
	out.BaselineP50Ms, out.BaselineP99Ms, out.Events = convergence(
		[]string{"hotspot-jump-1", "hotspot-jump-2"}, hs.Windows, hs.PhaseStarts, phaseDur)
	out.LoadSplits, out.Merges = c.Admin.LoadSplits, c.Admin.Merges
	out.LeaseMoves, out.ReplicaMoves = c.Admin.LeaseMoves, c.Admin.ReplicaMoves
	out.RangesFinal = len(c.Catalog.All())
	if out.LoadSplits == 0 {
		return out, fmt.Errorf("elastic: hotspot produced no load-based splits")
	}
	if out.Merges == 0 {
		return out, fmt.Errorf("elastic: cold remnants were never merged back")
	}
	return out, exportScenario(c, out.Name)
}

// elasticRegionAdd runs scenario (c): MovR over a two-region database while
// the third region's nodes idle, then ALTER DATABASE ... ADD REGION (and
// later DROP REGION) fire mid-benchmark. The live replica migrations must
// not knock the running traffic's latency shape out of the gate.
func elasticRegionAdd(phaseDur sim.Duration, window sim.Duration) (*elasticScenario, error) {
	c := elasticCluster(803, kv.LoadConfig{})
	catalog := newCatalog()
	m := workload.NewMovr(c, catalog)
	m.SetRegions([]simnet.Region{simnet.USEast1, simnet.EuropeW2})
	fts := workload.NewFollowTheSun(m, window)
	fts.Think = 1 * sim.Second
	phases := []workload.SunPhase{
		{Hot: simnet.USEast1, Duration: phaseDur},
		{Hot: simnet.USEast1, Duration: phaseDur},
		{Hot: simnet.USEast1, Duration: phaseDur},
	}
	var ddlErr error
	err := runSim(c, 6*3600*sim.Second, func(p *sim.Proc) error {
		if err := m.Setup(p); err != nil {
			return err
		}
		if err := m.Load(p); err != nil {
			return err
		}
		p.Sleep(2 * sim.Second)
		// The region change fires shortly after each phase boundary, while
		// the benchmark traffic keeps running.
		c.Sim.Spawn("elastic/region-ddl", func(dp *sim.Proc) {
			s := sql.NewSession(c, catalog, c.GatewayFor(simnet.USEast1))
			s.Database = "movr"
			dp.Sleep(phaseDur + 5*sim.Second)
			if _, err := s.Exec(dp, `ALTER DATABASE movr ADD REGION "asia-northeast1"`); err != nil {
				ddlErr = fmt.Errorf("add region: %w", err)
				return
			}
			dp.Sleep(phaseDur)
			if _, err := s.Exec(dp, `ALTER DATABASE movr DROP REGION "asia-northeast1"`); err != nil {
				ddlErr = fmt.Errorf("drop region: %w", err)
			}
		})
		return fts.Run(p, phases)
	})
	if err != nil {
		return nil, err
	}
	if ddlErr != nil {
		return nil, ddlErr
	}
	out := &elasticScenario{Name: "region-add-drop"}
	out.Windows, out.Errors = trajectory(fts.Windows)
	out.BaselineP50Ms, out.BaselineP99Ms, out.Events = convergence(
		[]string{"add-region-asia", "drop-region-asia"}, fts.Windows, fts.PhaseStarts, phaseDur)
	out.LoadSplits, out.Merges = c.Admin.LoadSplits, c.Admin.Merges
	out.LeaseMoves, out.ReplicaMoves = c.Admin.LeaseMoves, c.Admin.ReplicaMoves
	out.RangesFinal = len(c.Catalog.All())
	return out, exportScenario(c, out.Name)
}

// Elastic is the dynamic-scenario experiment: three runs whose traffic shape
// changes mid-benchmark — a follow-the-sun region-mix rotation, a migrating
// key hotspot, and an online region add/drop — each gated on the latency
// shape re-converging to within elasticGate of the pre-shift steady state.
// Absolute latencies are reported but never gated.
func Elastic(w io.Writer, scale Scale) error {
	header(w, "Elastic: dynamic scenarios (load-based split/merge, rebalancing, online region add/drop)")
	phaseDur := 120 * sim.Second
	window := 15 * sim.Second
	if scale.RecordCount > 10000 {
		phaseDur = 240 * sim.Second
	}

	type runnerFn func() (*elasticScenario, error)
	runs := []runnerFn{
		func() (*elasticScenario, error) { return elasticFollowTheSun(phaseDur, window) },
		func() (*elasticScenario, error) { return elasticHotspot(scale, phaseDur, window) },
		func() (*elasticScenario, error) { return elasticRegionAdd(phaseDur, window) },
	}
	res := elasticResult{Gate: elasticGate}
	var firstErr error
	for _, run := range runs {
		sc, err := run()
		if sc != nil {
			res.Scenarios = append(res.Scenarios, *sc)
			fmt.Fprintf(w, "  %-20s baseline p50=%-8.2fms p99=%-8.2fms splits=%d merges=%d lease_moves=%d replica_moves=%d ranges=%d errs=%d\n",
				sc.Name, sc.BaselineP50Ms, sc.BaselineP99Ms, sc.LoadSplits, sc.Merges,
				sc.LeaseMoves, sc.ReplicaMoves, sc.RangesFinal, sc.Errors)
			for _, ev := range sc.Events {
				status := "converged"
				if !ev.Converged {
					status = "NOT CONVERGED"
				}
				if ev.Elevated {
					status += " (elevated early: p99 " + fmt.Sprintf("%.2f", ev.EarlyP99Ms) + "ms)"
				}
				fmt.Fprintf(w, "    %-20s at=%-6.0fs early p99=%-8.2fms tail p50=%-8.2fms p99=%-8.2fms ratio p50=%-5.2f p99=%-5.2f %s\n",
					ev.Name, ev.AtSec, ev.EarlyP99Ms, ev.TailP50Ms, ev.TailP99Ms, ev.RatioP50, ev.RatioP99, status)
				if !ev.Converged && firstErr == nil {
					firstErr = fmt.Errorf("elastic: %s/%s did not re-converge (p50 %.2fx, p99 %.2fx > %.1fx gate)",
						sc.Name, ev.Name, ev.RatioP50, ev.RatioP99, elasticGate)
				}
			}
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(ElasticOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "  written to %s\n", ElasticOut)
	return firstErr
}

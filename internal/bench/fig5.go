package bench

import (
	"fmt"
	"io"

	"mrdb/internal/sim"
)

// Fig5 reproduces paper Figure 5: CDFs of read and write latencies for
// GLOBAL tables under three max_clock_offset settings (250ms, 50ms, 10ms),
// the legacy duplicate-indexes baseline, and the two REGIONAL baselines.
// The tail behaviour is the paper's headline: global-table read tails are
// bounded by max_clock_offset, duplicate-index tails are unbounded because
// they wait on WAN coordination.
func Fig5(w io.Writer, scale Scale) error {
	header(w, "Figure 5: read/write latency CDFs — GLOBAL vs duplicate indexes vs REGIONAL")
	type variant struct {
		name       string
		locality   string
		offset     sim.Duration
		stale      bool
		dupIndexes bool
	}
	variants := []variant{
		{"Global (offset=250ms)", "LOCALITY GLOBAL", 250 * sim.Millisecond, false, false},
		{"Global (offset=50ms)", "LOCALITY GLOBAL", 50 * sim.Millisecond, false, false},
		{"Global (offset=10ms)", "LOCALITY GLOBAL", 10 * sim.Millisecond, false, false},
		{"Duplicate Indexes", "", 250 * sim.Millisecond, false, true},
		{"Regional (Latest)", "LOCALITY REGIONAL BY TABLE IN PRIMARY REGION", 250 * sim.Millisecond, false, false},
		{"Regional (Stale)", "LOCALITY REGIONAL BY TABLE IN PRIMARY REGION", 250 * sim.Millisecond, true, false},
	}
	fmt.Fprintln(w, "\nReads:")
	var writesOut []string
	for i, v := range variants {
		y, _, err := fig3Run(200+int64(i), v.offset, scale, v.locality, v.stale, v.dupIndexes)
		if err != nil {
			return fmt.Errorf("fig5 %s: %w", v.name, err)
		}
		reads := y.AllReads()
		writes := y.AllWrites()
		cdfRows(w, v.name, reads)
		var sb stringsWriter
		cdfRows(&sb, v.name, writes)
		writesOut = append(writesOut, sb.String())
	}
	fmt.Fprintln(w, "\nWrites:")
	for _, line := range writesOut {
		fmt.Fprint(w, line)
	}
	fmt.Fprintln(w, `
Expected shape (paper): reads < 3ms below the 90th percentile for all but
Regional (Latest); global-table read tails bounded by max_clock_offset
(smaller offset => tighter tail); duplicate-index read and write tails
unbounded (seconds) under contention; global writes 250-600ms scaling with
max_clock_offset; duplicate-index writes similar at the median but with a
far worse tail.`)
	return nil
}

// stringsWriter is a minimal strings.Builder alias implementing io.Writer.
type stringsWriter struct{ buf []byte }

func (s *stringsWriter) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}
func (s *stringsWriter) String() string { return string(s.buf) }

package obs_test

// Same-seed chaos runs must reproduce the exact same span forest: the
// span-tree hash covers every probe's full trace (routing attempts, network
// hops, consensus rounds), so any nondeterminism anywhere in the recovery
// path shows up as a hash mismatch.

import (
	"testing"

	"mrdb/internal/chaos"
)

func TestChaosSpanHashDeterministic(t *testing.T) {
	opts := chaos.Options{Seed: 7, Faults: 3}
	r1, err := chaos.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := chaos.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.OK() || !r2.OK() {
		t.Fatalf("invariants violated:\n%s\n%s", r1, r2)
	}
	if r1.SpanHash != r2.SpanHash {
		t.Errorf("span hashes differ: %016x vs %016x", r1.SpanHash, r2.SpanHash)
	}
	if r1.SpanHash == 0 {
		t.Error("span hash is zero — no traces were recorded")
	}
	if r1.Schedule() != r2.Schedule() {
		t.Errorf("schedules differ:\n%s\nvs\n%s", r1.Schedule(), r2.Schedule())
	}
	if r1.String() != r2.String() {
		t.Errorf("reports differ:\n%s\nvs\n%s", r1, r2)
	}
	// A different seed produces a different fault schedule, hence different
	// traces.
	r3, err := chaos.Run(chaos.Options{Seed: 8, Faults: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r3.SpanHash == r1.SpanHash {
		t.Error("different seeds produced the same span hash")
	}
}

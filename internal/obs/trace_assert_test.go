package obs_test

// Trace-driven protocol assertions: instead of asserting on latencies
// (which only imply locality), these tests collect the span tree of a
// single statement and assert the paper's structural claims directly —
// which network links a request crossed, which replica served it, and how
// many WAN acknowledgements a quorum needed.

import (
	"errors"
	"strings"
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/obs"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
	"mrdb/internal/zones"
)

// traceHarness is a 3-region cluster with one SQL session per region and
// tracing initially off, so setup DDL stays out of the collected traces.
type traceHarness struct {
	c        *cluster.Cluster
	catalog  *sql.Catalog
	sessions map[simnet.Region]*sql.Session
}

func newTraceHarness(seed int64) *traceHarness {
	c := cluster.New(cluster.Config{
		Seed:      seed,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
		Jitter:    0.02,
	})
	h := &traceHarness{c: c, catalog: sql.NewCatalog(), sessions: map[simnet.Region]*sql.Session{}}
	for _, r := range c.Regions() {
		h.sessions[r] = sql.NewSession(c, h.catalog, c.GatewayFor(r))
	}
	return h
}

func (h *traceHarness) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	h.c.Sim.Spawn("test", func(p *sim.Proc) {
		p.Sleep(100 * sim.Millisecond)
		fn(p)
	})
	h.c.Sim.RunFor(20 * 60 * sim.Second)
	if n := h.c.ApplyErrors(); n != 0 {
		t.Fatalf("%d command application errors", n)
	}
}

// setup creates the movr-style schema; surviveRegion upgrades the database
// to SURVIVE REGION FAILURE (5 voters per range).
func (h *traceHarness) setup(t *testing.T, p *sim.Proc, surviveRegion bool) *sql.Session {
	t.Helper()
	s := h.sessions[simnet.USEast1]
	stmts := []string{
		`CREATE DATABASE movr PRIMARY REGION "us-east1" REGIONS "europe-west2", "asia-northeast1"`,
	}
	if surviveRegion {
		stmts = append(stmts, `ALTER DATABASE movr SURVIVE REGION FAILURE`)
	}
	stmts = append(stmts,
		`CREATE TABLE users (id INT PRIMARY KEY, name STRING) LOCALITY REGIONAL BY ROW`,
		`CREATE TABLE promo_codes (code STRING PRIMARY KEY, description STRING) LOCALITY GLOBAL`,
	)
	for _, stmt := range stmts {
		if _, err := s.Exec(p, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	for _, sess := range h.sessions {
		sess.Database = "movr"
	}
	p.Sleep(500 * sim.Millisecond) // closed timestamps propagate
	return s
}

// lastTrace returns the most recent collected trace rooted at rootName.
func lastTrace(tr *obs.Tracer, rootName string) *obs.Trace {
	traces := tr.Traces()
	for i := len(traces) - 1; i >= 0; i-- {
		if r := traces[i].Root(); r != nil && r.Name == rootName {
			return traces[i]
		}
	}
	return nil
}

// assertNoWAN fails if any network hop in the trace crossed regions; it
// also requires at least one hop, so the assertion can't pass vacuously.
func assertNoWAN(t *testing.T, trace *obs.Trace, what string) {
	t.Helper()
	hops := trace.FindAll("net.rpc")
	if len(hops) == 0 {
		t.Fatalf("%s: no net.rpc spans recorded:\n%s", what, trace)
	}
	for _, sp := range hops {
		if wan, _ := sp.Tag("wan"); wan != "false" {
			t.Errorf("%s: crossed a WAN link:\n%s", what, trace)
			return
		}
	}
}

// TestTraceStaleReadStaysLocal: combo 1 (REGIONAL BY ROW × exact-stale
// read). A remote region's stale read of a row homed elsewhere is served
// entirely by local follower replicas — zero WAN hops (§5.3).
func TestTraceStaleReadStaysLocal(t *testing.T) {
	h := newTraceHarness(501)
	h.run(t, func(p *sim.Proc) {
		s := h.setup(t, p, false)
		if _, err := s.Exec(p, `INSERT INTO users (id, name) VALUES (1, 'alice')`); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(6 * sim.Second) // age the row past the staleness bound
		h.c.EnableTracing()
		asia := h.sessions[simnet.AsiaNE1]
		res, err := asia.Exec(p, `SELECT name FROM users AS OF SYSTEM TIME '-5s' WHERE id = 1`)
		if err != nil || len(res.Rows) != 1 {
			t.Errorf("stale read: %v %v", res, err)
			return
		}
		trace := lastTrace(h.c.Tracer, "sql.exec")
		if trace == nil {
			t.Fatal("no sql.exec trace collected")
		}
		assertNoWAN(t, trace, "stale read from asia")
		followed := false
		for _, sp := range trace.FindAll("replica.eval") {
			if v, _ := sp.Tag("follower_read"); v == "true" {
				followed = true
			}
		}
		if !followed {
			t.Errorf("no follower read in trace:\n%s", trace)
		}
	})
}

// TestTraceHomeWriteOneWANQuorumTrip: combo 2 (REGIONAL BY ROW × home-region
// write under SURVIVE REGION FAILURE). The 5-replica quorum (3 of 5) is the
// leaseholder, one local voter, and exactly one remote voter: the write's
// critical path crosses the WAN once, in the Raft quorum, and nowhere else
// (§4.2). Uniqueness checks are disabled to isolate the write path.
func TestTraceHomeWriteOneWANQuorumTrip(t *testing.T) {
	h := newTraceHarness(502)
	h.run(t, func(p *sim.Proc) {
		s := h.setup(t, p, true)
		s.UniquenessChecks = false
		h.c.EnableTracing()
		if _, err := s.Exec(p, `INSERT INTO users (id, name) VALUES (2, 'bob')`); err != nil {
			t.Error(err)
			return
		}
		trace := lastTrace(h.c.Tracer, "sql.exec")
		if trace == nil {
			t.Fatal("no sql.exec trace collected")
		}
		// The gateway is in the home region: every RPC hop is local.
		assertNoWAN(t, trace, "home-region write")
		// Exactly one consensus round, acknowledged by exactly one remote
		// voter: the quorum never waits for the slower WAN replicas.
		reps := trace.FindAll("raft.replicate")
		if len(reps) != 1 {
			t.Fatalf("raft.replicate spans = %d, want 1 (one-phase commit):\n%s", len(reps), trace)
		}
		if wan, _ := reps[0].Tag("wan_acks"); wan != "1" {
			t.Errorf("wan_acks = %q, want 1:\n%s", wan, trace)
		}
		// A REGIONAL table write must not commit-wait (beyond clock skew).
		if cw := trace.Find("txn.commitwait"); cw != nil && cw.Duration() > 10*sim.Millisecond {
			t.Errorf("regional write commit-waited %v:\n%s", cw.Duration(), trace)
		}
	})
}

// TestTraceGlobalReadServedLocally: combo 3 (GLOBAL × present-time read).
// A non-primary region reads a GLOBAL table at the current time and is
// served by its local replica without any WAN traffic, because GLOBAL
// ranges close timestamps in the future (§5.4).
func TestTraceGlobalReadServedLocally(t *testing.T) {
	h := newTraceHarness(503)
	h.run(t, func(p *sim.Proc) {
		s := h.setup(t, p, false)
		if _, err := s.Exec(p, `INSERT INTO promo_codes (code, description) VALUES ('GLOBAL10', 'ten off')`); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(2 * sim.Second) // let the lead closed timestamp cover the write
		h.c.EnableTracing()
		eu := h.sessions[simnet.EuropeW2]
		res, err := eu.Exec(p, `SELECT description FROM promo_codes WHERE code = 'GLOBAL10'`)
		if err != nil || len(res.Rows) != 1 {
			t.Errorf("global read: %v %v", res, err)
			return
		}
		trace := lastTrace(h.c.Tracer, "sql.exec")
		if trace == nil {
			t.Fatal("no sql.exec trace collected")
		}
		assertNoWAN(t, trace, "global read from europe")
		followed := false
		for _, sp := range trace.FindAll("replica.eval") {
			if v, _ := sp.Tag("follower_read"); v == "true" {
				followed = true
			}
		}
		if !followed {
			t.Errorf("global read not served as a follower read:\n%s", trace)
		}
	})
}

// TestDistSenderExhaustionSurfacesLastError: when the retry budget runs
// out, the returned error wraps the final attempt's failure instead of a
// bare attempt count, and the ds.send span carries it as a tag.
func TestDistSenderExhaustionSurfacesLastError(t *testing.T) {
	c := cluster.New(cluster.Config{
		Seed:      504,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
		Jitter:    0.02,
		Tracing:   true,
	})
	// A range confined to us-east1: crashing that region's nodes makes
	// every routing attempt fail with an RPC error.
	cfg := zones.Config{
		NumReplicas: 3, NumVoters: 3,
		VoterConstraints: map[simnet.Region]int{simnet.USEast1: 3},
		LeasePreferences: []simnet.Region{simnet.USEast1},
	}
	if _, err := c.CreateRangeWithZoneConfig([]byte("k/"), []byte("k0"), cfg, kv.ClosedTSLag); err != nil {
		t.Fatal(err)
	}
	var sendErr error
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		for _, id := range c.Topo.NodesInRegion(simnet.USEast1) {
			c.Net.CrashNode(id)
		}
		gw := c.GatewayFor(simnet.EuropeW2)
		ds := c.Senders[gw]
		_, done := c.Tracer.StartRootIn(p, "test.get")
		resp := ds.Send(p, &kv.GetRequest{
			Key:       mvcc.Key("k/x"),
			Timestamp: c.Stores[gw].Clock.Now(),
		})
		done()
		sendErr = resp.Err
	})
	c.Sim.RunFor(30 * sim.Minute)

	if sendErr == nil {
		t.Fatal("send to a dead range succeeded")
	}
	msg := sendErr.Error()
	if !strings.Contains(msg, "failed after") || !strings.Contains(msg, "last attempt:") {
		t.Errorf("exhaustion error lost the cause: %q", msg)
	}
	var rpcErr *simnet.ErrRPC
	if !errors.As(sendErr, &rpcErr) {
		t.Errorf("cause not unwrappable to *simnet.ErrRPC: %q", msg)
	}
	// The ds.send span carries the final error.
	trace := lastTrace(c.Tracer, "test.get")
	if trace == nil {
		t.Fatal("no trace collected")
	}
	send := trace.Find("ds.send")
	if send == nil {
		t.Fatalf("no ds.send span:\n%s", trace)
	}
	if tag, ok := send.Tag("err"); !ok || !strings.Contains(tag, "last attempt:") {
		t.Errorf("ds.send err tag = %q", tag)
	}
}

package obs

import (
	"testing"

	"mrdb/internal/sim"
)

// BenchmarkStartSpanFinish measures the server-side span path: a child span
// under a live trace with the usual tag load, then finished. With the arena
// this is the steady-state cost of tracing one RPC hop.
func BenchmarkStartSpanFinish(b *testing.B) {
	s := sim.New(1)
	tr := NewTracer(s)
	tr.SetEnabled(true)
	root := tr.StartRoot("txn")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child := tr.StartSpan("replica.eval", root.Ctx())
		child.SetTagInt("node", 3).SetTagInt("range", 7).SetTag("req", "*kv.GetRequest")
		child.Finish()
	}
}

// BenchmarkStartInFinish measures the proc-scoped variant used by the txn
// and SQL layers: StartIn pushes the span onto the proc, the returned done
// restores the previous one. The method-value finisher is the single
// remaining allocation on this path.
func BenchmarkStartInFinish(b *testing.B) {
	s := sim.New(2)
	tr := NewTracer(s)
	tr.SetEnabled(true)
	b.ReportAllocs()
	s.Spawn("bench", func(p *sim.Proc) {
		_, rootDone := tr.StartRootIn(p, "stmt")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp, done := tr.StartIn(p, "kv.send")
			sp.SetTagDuration("wait", 3*sim.Millisecond)
			done()
		}
		b.StopTimer()
		rootDone()
	})
	s.Run()
}

// TestSpanPathAllocs pins the child-span path's steady-state allocation
// count: spans come from 256-span arena slabs and the inline tag buffer
// absorbs the usual tag load, so starting and finishing a tagged child must
// stay under 0.1 allocations amortized (the slab costs ~1 allocation per
// 256 spans; the trace's span list doubles geometrically).
func TestSpanPathAllocs(t *testing.T) {
	s := sim.New(3)
	tr := NewTracer(s)
	tr.SetEnabled(true)
	root := tr.StartRoot("op")
	// Warm: first slabs and span-list growth.
	for i := 0; i < 2048; i++ {
		sp := tr.StartSpan("warm", root.Ctx())
		sp.Finish()
	}
	per := testing.AllocsPerRun(4096, func() {
		child := tr.StartSpan("child", root.Ctx())
		child.SetTagInt("node", 3).SetTag("req", "*kv.GetRequest")
		child.Finish()
	})
	if per > 0.1 {
		t.Fatalf("child span start/finish allocates %.3f objects/run, want <= 0.1", per)
	}
}

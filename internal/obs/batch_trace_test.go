package obs_test

// Trace assertions for the batched, range-aware KV dispatch: a multi-row
// statement's KV work collapses to one RPC per touched range per phase, and
// a multi-range scan pays the max, not the sum, of per-range round trips.

import (
	"strconv"
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
	"mrdb/internal/zones"
)

// TestTraceBatchedInsertOneRPCPerRange pins the tentpole's round-trip
// collapse: a 10-row INSERT spread across the 3 partitions (ranges) of a
// REGIONAL BY ROW table issues at most one KV RPC per touched range per
// phase — the writes go out as 3 per-range batches carrying all 10
// requests, and the same holds for the uniqueness probes, the parallel-
// commit QueryIntent proofs, and the async intent resolution.
func TestTraceBatchedInsertOneRPCPerRange(t *testing.T) {
	h := newTraceHarness(505)
	h.run(t, func(p *sim.Proc) {
		s := h.setup(t, p, false)
		s.UniquenessChecks = false // remote probes off; local probes remain
		h.c.EnableTracing()
		if _, err := s.Exec(p, `INSERT INTO users (id, name, crdb_region) VALUES
			(1, 'a', 'us-east1'), (2, 'b', 'europe-west2'), (3, 'c', 'asia-northeast1'),
			(4, 'd', 'us-east1'), (5, 'e', 'europe-west2'), (6, 'f', 'asia-northeast1'),
			(7, 'g', 'us-east1'), (8, 'h', 'europe-west2'), (9, 'i', 'asia-northeast1'),
			(10, 'j', 'us-east1')`); err != nil {
			t.Error(err)
			return
		}
		trace := lastTrace(h.c.Tracer, "sql.exec")
		if trace == nil {
			t.Fatal("no sql.exec trace collected")
		}
		const touchedRanges = 3
		perType := map[string]int{}
		putReqs := int64(0)
		for _, sp := range trace.FindAll("ds.send") {
			typ, _ := sp.Tag("req")
			perType[typ]++
			if typ == "*kv.PutRequest" {
				reqs := int64(1)
				if v, ok := sp.Tag("reqs"); ok {
					if n, err := strconv.ParseInt(v, 10, 64); err == nil {
						reqs = n
					}
				}
				putReqs += reqs
			}
		}
		for typ, n := range perType {
			if n > touchedRanges {
				t.Errorf("%s: %d per-range RPCs, want <= %d (one per touched range):\n%s",
					typ, n, touchedRanges, trace)
			}
		}
		// The 10 row writes collapse to exactly one batch per partition.
		if perType["*kv.PutRequest"] != touchedRanges {
			t.Errorf("put batches = %d, want %d:\n%s", perType["*kv.PutRequest"], touchedRanges, trace)
		}
		if putReqs != 10 {
			t.Errorf("put requests carried = %d, want 10:\n%s", putReqs, trace)
		}
		// Total attempts stay bounded by phases x ranges, far below the
		// per-key count (>= 40 RPCs for 10 rows before batching).
		if rpcs := len(trace.FindAll("ds.rpc")); rpcs >= 20 {
			t.Errorf("kv rpcs = %d, want < 20 (bounded by touched ranges, not rows):\n%s", rpcs, trace)
		}
	})
}

// TestTraceMultiRangeScanLatencyIsMax pins the scan fan-out: a scan over a
// table split into 3 ranges dispatches the per-range sub-scans in parallel,
// so its virtual latency is (about) the max over the per-range sends — and
// strictly below their sum, which is what a serial resume-key walk would
// pay.
func TestTraceMultiRangeScanLatencyIsMax(t *testing.T) {
	c := cluster.New(cluster.Config{
		Seed:      506,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
		Jitter:    0.02,
		Tracing:   true,
	})
	cfg := zones.Config{
		NumReplicas: 5, NumVoters: 3,
		VoterConstraints: map[simnet.Region]int{simnet.USEast1: 3},
		Constraints:      map[simnet.Region]int{simnet.EuropeW2: 1, simnet.AsiaNE1: 1},
		LeasePreferences: []simnet.Region{simnet.USEast1},
	}
	desc, err := c.CreateRangeWithZoneConfig([]byte("ms/"), []byte("ms0"), cfg, kv.ClosedTSLag)
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) mvcc.Key { return mvcc.Key("ms/" + string(rune('a'+i))) }
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		east := c.GatewayFor(simnet.USEast1)
		co := txn.NewCoordinator(c.Stores[east], c.Senders[east])
		if err := co.Run(p, func(tx *txn.Txn) error {
			for i := 0; i < 9; i++ {
				if err := tx.Put(p, key(i), mvcc.Value("v")); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Error(err)
			return
		}
		mid, err := c.Admin.SplitRange(p, desc.RangeID, key(3))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Admin.SplitRange(p, mid.RangeID, key(6)); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		// Scan from a remote gateway so per-range round trips are WAN-sized
		// and the max-vs-sum contrast is unambiguous.
		eu := c.GatewayFor(simnet.EuropeW2)
		ds := c.Senders[eu]
		_, done := c.Tracer.StartRootIn(p, "test.scan")
		resp := ds.Send(p, &kv.ScanRequest{
			StartKey: mvcc.Key("ms/"), EndKey: mvcc.Key("ms0"),
			Timestamp: c.Stores[eu].Clock.Now(),
		})
		done()
		if resp.Err != nil {
			t.Errorf("scan: %v", resp.Err)
			return
		}
		if len(resp.Scan.Rows) != 9 {
			t.Errorf("scan rows = %d, want 9", len(resp.Scan.Rows))
		}
		trace := lastTrace(c.Tracer, "test.scan")
		if trace == nil {
			t.Fatal("no trace collected")
		}
		scan := trace.Find("ds.scan")
		if scan == nil {
			t.Fatalf("no ds.scan span:\n%s", trace)
		}
		sends := trace.FindAll("ds.send")
		if len(sends) != 3 {
			t.Fatalf("ds.send spans = %d, want 3 (one per range):\n%s", len(sends), trace)
		}
		var sum, max sim.Duration
		for _, sp := range sends {
			d := sp.Duration()
			if d <= 0 {
				t.Fatalf("ds.send with non-positive duration:\n%s", trace)
			}
			sum += d
			if d > max {
				max = d
			}
		}
		got := scan.Duration()
		if got < max {
			t.Errorf("scan latency %v below slowest per-range send %v:\n%s", got, max, trace)
		}
		if got >= sum {
			t.Errorf("scan latency %v >= sum of per-range sends %v (serial, not parallel):\n%s", got, sum, trace)
		}
		// Stronger: parallel dispatch pays about one range's round trip,
		// not two or three.
		if got > 2*max {
			t.Errorf("scan latency %v > 2x slowest per-range send %v:\n%s", got, max, trace)
		}
	})
	c.Sim.RunFor(10 * 60 * sim.Second)
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
}

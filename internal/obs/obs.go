// Package obs is mrdb's deterministic observability layer: hierarchical
// spans stamped with virtual time, and a metrics registry (counters,
// gauges, HDR-style histograms).
//
// Everything here is driven by the simulation clock, never the wall clock,
// and records strictly passively: no method sleeps, schedules events, or
// consumes simulation randomness. Tracing on versus off therefore cannot
// change the event order or any virtual-time latency — observability is
// zero-cost in virtual time, which the metamorphic tests assert. Because
// the simulator is deterministic per seed, traces are bit-for-bit
// reproducible and serve as a test oracle: tests assert structural protocol
// properties ("this follower read crossed 0 WAN links") directly on
// collected span trees.
//
// The package depends only on sim. Spans travel across layers in two ways:
// within a process via an opaque slot on sim.Proc (ProcSpan/SetProcSpan),
// and across the simulated network via SpanContext embedded in requests.
package obs

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"mrdb/internal/sim"
)

// TraceID identifies one trace: the tree of spans under a single root.
type TraceID uint64

// SpanID identifies a span within a tracer.
type SpanID uint64

// SpanContext is the portable reference to a span, embeddable in requests
// that cross the simulated network.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context refers to a real span.
func (c SpanContext) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// Tag is one key=value annotation on a span. Tags keep insertion order so
// a trace renders (and hashes) the same way on every run.
type Tag struct {
	Key   string
	Value string
}

// Span is one timed operation in a trace. Start and End are virtual times;
// End is zero while the span is unfinished. All methods are safe on a nil
// receiver, so instrumentation sites need no "is tracing on" checks.
type Span struct {
	tr      *Tracer
	Context SpanContext
	Parent  SpanID // zero for roots
	Name    string
	Start   sim.Time
	End     sim.Time
	Tags    []Tag

	// tagbuf backs Tags for the first few tags so typical spans (the hot
	// path averages 1-3 tags) never allocate a tag slice; Tags spills to the
	// heap only beyond len(tagbuf).
	tagbuf [4]Tag
	// prevIn/procIn restore the process's current span when a span started
	// with StartIn/StartRootIn ends.
	prevIn *Span
	procIn *sim.Proc
}

// Ctx returns the span's context (zero value for a nil span).
func (s *Span) Ctx() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.Context
}

// SetTag annotates the span; it returns s for chaining.
func (s *Span) SetTag(key, value string) *Span {
	if s == nil {
		return nil
	}
	for i := range s.Tags {
		if s.Tags[i].Key == key {
			s.Tags[i].Value = value
			return s
		}
	}
	s.Tags = append(s.Tags, Tag{key, value})
	return s
}

// SetTagInt annotates the span with an integer value. The nil check comes
// first so untraced call sites pay nothing for formatting.
func (s *Span) SetTagInt(key string, value int64) *Span {
	if s == nil {
		return nil
	}
	return s.SetTag(key, strconv.FormatInt(value, 10))
}

// SetTagDuration annotates the span with a virtual duration.
func (s *Span) SetTagDuration(key string, d sim.Duration) *Span {
	if s == nil {
		return nil
	}
	return s.SetTag(key, d.String())
}

// SetError marks the span failed: the message under "err" plus a boolean
// "error" tag, which trace exporters map to Jaeger's error convention so
// failed attempts (RPC retries, rejected commits) render distinctly in real
// tooling. Nil-span- and nil-error-safe; returns s for chaining.
func (s *Span) SetError(err error) *Span {
	if s == nil || err == nil {
		return s
	}
	s.SetTag("error", "true")
	return s.SetTag("err", err.Error())
}

// IsError reports whether the span was marked failed via SetError.
func (s *Span) IsError() bool {
	v, ok := s.Tag("error")
	return ok && v == "true"
}

// Tag returns the value of a tag, if set.
func (s *Span) Tag(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	for _, t := range s.Tags {
		if t.Key == key {
			return t.Value, true
		}
	}
	return "", false
}

// Finish stamps the span's end with the current virtual time. Finishing an
// already-finished span keeps the first end time.
func (s *Span) Finish() {
	if s == nil || s.End != 0 {
		return
	}
	s.End = s.tr.sim.Now()
}

// Duration is End-Start, or the zero duration while unfinished.
func (s *Span) Duration() sim.Duration {
	if s == nil || s.End == 0 {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Trace is the collected set of spans sharing one TraceID, in creation
// order (the first span is the root).
type Trace struct {
	ID    TraceID
	Spans []*Span
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	if t == nil || len(t.Spans) == 0 {
		return nil
	}
	return t.Spans[0]
}

// Find returns the first span with the given name, or nil.
func (t *Trace) Find(name string) *Span {
	if t == nil {
		return nil
	}
	for _, s := range t.Spans {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// FindAll returns every span with the given name, in creation order.
func (t *Trace) FindAll(name string) []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for _, s := range t.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// String renders the trace as an indented tree in canonical form: children
// in creation order, each line carrying name, [start, end) virtual times
// and tags in insertion order. Two runs with the same seed produce
// byte-identical renderings.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	children := map[SpanID][]*Span{}
	byID := map[SpanID]*Span{}
	for _, s := range t.Spans {
		byID[s.Context.Span] = s
	}
	var roots []*Span
	for _, s := range t.Spans {
		if s.Parent != 0 && byID[s.Parent] != nil {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d\n", t.ID)
	var render func(s *Span, depth int)
	render = func(s *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth+1))
		end := "..."
		if s.End != 0 {
			end = fmt.Sprintf("%s (%s)", s.End, s.Duration())
		}
		fmt.Fprintf(&b, "%s [%s .. %s]", s.Name, s.Start, end)
		for _, tag := range s.Tags {
			fmt.Fprintf(&b, " %s=%s", tag.Key, tag.Value)
		}
		b.WriteString("\n")
		for _, c := range children[s.Context.Span] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return b.String()
}

// Hash returns an FNV-1a hash of the canonical rendering.
func (t *Trace) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(t.String()))
	return h.Sum64()
}

// Tracer creates and retains spans. It is owned by a single Simulation and
// touched only from Procs, so (like the rest of the simulator) it needs no
// locking. A nil or disabled Tracer is fully usable: every method degrades
// to a no-op returning nil spans.
type Tracer struct {
	sim       *sim.Simulation
	enabled   bool
	nextTrace uint64
	nextSpan  uint64
	traces    map[TraceID]*Trace
	order     []TraceID

	// arena backs span storage in fixed-size slabs: one allocation per
	// spanChunk spans instead of one per span. Spans are retained for the
	// lifetime of the run (they are the determinism oracle), so slabs are
	// never recycled — pointers into them stay valid forever.
	arena    []Span
	arenaPos int
}

// spanChunk is the slab size of the span arena.
const spanChunk = 256

// NewTracer returns a disabled tracer bound to s; call SetEnabled(true) to
// start recording.
func NewTracer(s *sim.Simulation) *Tracer {
	return &Tracer{sim: s, traces: map[TraceID]*Trace{}}
}

// SetEnabled switches span recording on or off.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled = on
	}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

func (t *Tracer) newSpan(name string, trace TraceID, parent SpanID) *Span {
	t.nextSpan++
	if t.arenaPos == len(t.arena) {
		t.arena = make([]Span, spanChunk)
		t.arenaPos = 0
	}
	s := &t.arena[t.arenaPos]
	t.arenaPos++
	s.tr = t
	s.Context = SpanContext{Trace: trace, Span: SpanID(t.nextSpan)}
	s.Parent = parent
	s.Name = name
	s.Start = t.sim.Now()
	s.Tags = s.tagbuf[:0]
	tr := t.traces[trace]
	if tr == nil {
		tr = &Trace{ID: trace}
		t.traces[trace] = tr
		t.order = append(t.order, trace)
	}
	tr.Spans = append(tr.Spans, s)
	return s
}

// StartRoot begins a new trace and returns its root span.
func (t *Tracer) StartRoot(name string) *Span {
	if !t.Enabled() {
		return nil
	}
	t.nextTrace++
	return t.newSpan(name, TraceID(t.nextTrace), 0)
}

// StartSpan begins a child span under a remote parent context, as when a
// request arrives over the network. An invalid parent yields no span:
// untraced background work (heartbeats, liveness) records nothing.
func (t *Tracer) StartSpan(name string, parent SpanContext) *Span {
	if !t.Enabled() || !parent.Valid() {
		return nil
	}
	return t.newSpan(name, parent.Trace, parent.Span)
}

// StartChild begins a child of an in-process parent span.
func (t *Tracer) StartChild(name string, parent *Span) *Span {
	return t.StartSpan(name, parent.Ctx())
}

// Collect returns the trace with the given ID, or nil.
func (t *Tracer) Collect(id TraceID) *Trace {
	if t == nil {
		return nil
	}
	return t.traces[id]
}

// Traces returns every collected trace in creation order.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	out := make([]*Trace, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.traces[id])
	}
	return out
}

// Hash folds the canonical rendering of every trace into one FNV-1a value:
// the span-tree hash the chaos harness compares across same-seed runs.
func (t *Tracer) Hash() uint64 {
	h := fnv.New64a()
	if t != nil {
		for _, id := range t.order {
			h.Write([]byte(t.traces[id].String()))
		}
	}
	return h.Sum64()
}

// ProcSpan returns the span currently installed on p, if any.
func ProcSpan(p *sim.Proc) *Span {
	if p == nil {
		return nil
	}
	s, _ := p.ObsCtx().(*Span)
	return s
}

// SetProcSpan installs s as p's current span. Passing nil clears it. Use
// this when spawning a sub-process that should inherit the caller's trace.
func SetProcSpan(p *sim.Proc, s *Span) {
	if p == nil {
		return
	}
	if s == nil {
		p.SetObsCtx(nil)
		return
	}
	p.SetObsCtx(s)
}

// StartIn begins a child of p's current span, installs it as current, and
// returns it with a closure that finishes it and restores the previous
// span. If p has no current span (or tracing is off) it returns (nil,
// no-op), so call sites are unconditional:
//
//	sp, done := tracer.StartIn(p, "txn.commitwait")
//	defer done()
func (t *Tracer) StartIn(p *sim.Proc, name string) (*Span, func()) {
	prev := ProcSpan(p)
	s := t.StartChild(name, prev)
	if s == nil {
		return nil, nopDone
	}
	s.prevIn, s.procIn = prev, p
	SetProcSpan(p, s)
	return s, s.endIn
}

// nopDone is the shared no-op finisher returned when no span was started.
var nopDone = func() {}

// endIn finishes the span and restores the process's previous current span.
// Returned as a method value from StartIn/StartRootIn: one small allocation
// instead of a closure capturing three variables.
func (s *Span) endIn() {
	s.Finish()
	SetProcSpan(s.procIn, s.prevIn)
	s.prevIn, s.procIn = nil, nil
}

// StartRootIn is StartIn, except that when p has no current span and the
// tracer is enabled it begins a fresh trace. This is the entry point used
// at the top of the request path (SQL statement execution) and by tests.
func (t *Tracer) StartRootIn(p *sim.Proc, name string) (*Span, func()) {
	if prev := ProcSpan(p); prev != nil {
		return t.StartIn(p, name)
	}
	s := t.StartRoot(name)
	if s == nil {
		return nil, nopDone
	}
	s.prevIn, s.procIn = nil, p
	SetProcSpan(p, s)
	return s, s.endIn
}

package obs

import (
	"strings"
	"testing"
)

// TestPercentileEmpty pins the empty-histogram contract: every quantile is
// zero, on both empty and nil receivers.
func TestPercentileEmpty(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Percentile(q); got != 0 {
			t.Errorf("empty Percentile(%v) = %d, want 0", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Percentile(0.5); got != 0 {
		t.Errorf("nil Percentile(0.5) = %d, want 0", got)
	}
	if nilH.Count() != 0 || nilH.Max() != 0 {
		t.Error("nil histogram accessors must be zero")
	}
}

// TestPercentileSingleSample: with one sample, every quantile — including
// out-of-range ones, which clamp — is that exact sample, because bucket
// lower bounds clamp to [Min, Max].
func TestPercentileSingleSample(t *testing.T) {
	const v = 1234567 // lands in the log-linear region, lower bound != v
	h := NewHistogram()
	h.Record(v)
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.99, 1, 2} {
		if got := h.Percentile(q); got != v {
			t.Errorf("Percentile(%v) = %d, want %d", q, got, v)
		}
	}
	if h.Min() != v || h.Max() != v || h.Mean() != v || h.Sum() != v {
		t.Errorf("single-sample accessors: min=%d max=%d mean=%d sum=%d",
			h.Min(), h.Max(), h.Mean(), h.Sum())
	}
}

// TestPercentileOverflowBucket exercises samples far into the log-linear
// region (top buckets), where the bucket lower bound undershoots the sample
// and must clamp to the exact recorded extremes.
func TestPercentileOverflowBucket(t *testing.T) {
	const huge = int64(1)<<40 + 12345
	h := NewHistogram()
	h.Record(1)
	h.Record(huge)
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	// p99/p100 of two samples rank into the top bucket; the reported value
	// is that bucket's lower bound — within the documented ~3% relative
	// error of the true sample, and never above the exact max.
	for _, q := range []float64{0.99, 1} {
		got := h.Percentile(q)
		if got > huge || got < huge-huge/16 {
			t.Errorf("Percentile(%v) = %d, outside [%d, %d]", q, got, huge-huge/16, huge)
		}
	}
	// Negative samples clamp to zero rather than corrupting buckets.
	h2 := NewHistogram()
	h2.Record(-5)
	if h2.Min() != 0 || h2.Max() != 0 || h2.Percentile(0.5) != 0 {
		t.Errorf("negative sample: min=%d max=%d p50=%d, want zeros",
			h2.Min(), h2.Max(), h2.Percentile(0.5))
	}
}

// TestRegistryStringGolden pins Registry.String()'s canonical rendering:
// sections in counter/gauge/histogram order, names sorted within each, and
// byte-identical output from two identically-built registries.
func TestRegistryStringGolden(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("zeta.sent").Add(7)
		r.Counter("alpha.sent").Add(3)
		r.Gauge("queue.depth").Set(42)
		h := r.Histogram("rpc.latency")
		h.Record(1)
		h.Record(2)
		h.Record(3)
		return r
	}
	got := build().String()
	want := "counter alpha.sent                       3\n" +
		"counter zeta.sent                        7\n" +
		"gauge   queue.depth                      42\n" +
		"hist    rpc.latency                      count=3 min=1ns p50=2ns p90=3ns p99=3ns max=3ns mean=2ns\n"
	if got != want {
		t.Errorf("Registry.String() =\n%q\nwant\n%q", got, want)
	}
	if again := build().String(); again != got {
		t.Errorf("identical builds rendered differently:\n%q\nvs\n%q", got, again)
	}
	if !strings.HasPrefix(got, "counter ") {
		t.Error("counters must render first")
	}
}

// Package export serializes a run's observability state — the virtual-time
// timeseries store, the metrics registry, and the collected span forest —
// into formats real tools load directly:
//
//   - OpenMetrics text with per-sample timestamps, which
//     `promtool tsdb create-blocks-from openmetrics` backfills into a
//     Prometheus instance for Grafana dashboards over the run's trajectory;
//   - a point-in-time Prometheus exposition dump of the registry;
//   - Jaeger UI JSON (the format the Jaeger frontend's "JSON File" upload
//     accepts), with spans marked via Span.SetError carrying Jaeger's
//     `error=true` convention so failed RPC attempts render red.
//
// Virtual timestamps are mapped onto a fixed epoch (2020-01-01T00:00:00Z):
// no wall clock is ever consulted, so two same-seed runs export
// byte-identical artifacts — the determinism tests compare the files raw.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mrdb/internal/obs"
	"mrdb/internal/obs/tsdb"
	"mrdb/internal/sim"
)

// Epoch is the fixed wall-clock origin virtual time zero maps to:
// 2020-01-01T00:00:00Z in Unix seconds. Any fixed value works; this one
// keeps exported runs in a range Grafana and Jaeger render comfortably.
const Epoch int64 = 1577836800

// DefaultMaxTraces bounds Jaeger exports: traces beyond the cap are dropped
// (in creation order), keeping files loadable in the UI.
const DefaultMaxTraces = 200

// sanitize maps a metric name onto the Prometheus name charset and prefixes
// the mrdb namespace: "ds.rpc.wan" -> "mrdb_ds_rpc_wan".
func sanitize(name string) string {
	var b strings.Builder
	b.WriteString("mrdb_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promTime renders a virtual time as epoch-mapped seconds with millisecond
// precision, the OpenMetrics timestamp format.
func promTime(t sim.Time) string {
	ns := int64(t)
	return fmt.Sprintf("%d.%03d", Epoch+ns/int64(sim.Second), (ns%int64(sim.Second))/int64(sim.Millisecond))
}

// OpenMetrics writes every tsdb series as OpenMetrics text with timestamps:
// one sample per rollup bucket and aggregate stat, labeled {node, stat}.
// Load it with `promtool tsdb create-blocks-from openmetrics FILE DIR`.
func OpenMetrics(w io.Writer, db *tsdb.DB) error {
	for _, metric := range db.Metrics() {
		name := sanitize(metric)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
			return err
		}
		for _, node := range db.Nodes(metric) {
			for _, ba := range db.Buckets(metric, node) {
				ts := promTime(ba.Start)
				for _, stat := range [4]struct {
					label string
					v     int64
				}{{"count", ba.Count}, {"sum", ba.Sum}, {"min", ba.Min}, {"max", ba.Max}} {
					if _, err := fmt.Fprintf(w, "%s{node=\"%d\",stat=\"%s\"} %d %s\n",
						name, node, stat.label, stat.v, ts); err != nil {
						return err
					}
				}
			}
		}
	}
	_, err := fmt.Fprintln(w, "# EOF")
	return err
}

// RegistrySnapshot writes the metrics registry as a point-in-time
// Prometheus exposition dump: counters and gauges verbatim, histograms as
// summaries (quantile values are the histogram's raw int64 samples —
// virtual-time nanoseconds for latency metrics).
func RegistrySnapshot(w io.Writer, reg *obs.Registry) error {
	for _, n := range reg.Counters() {
		name := sanitize(n) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, reg.Counter(n).Value()); err != nil {
			return err
		}
	}
	for _, n := range reg.Gauges() {
		name := sanitize(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, reg.Gauge(n).Value()); err != nil {
			return err
		}
	}
	for _, n := range reg.Histograms() {
		h := reg.Histogram(n)
		name := sanitize(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
			return err
		}
		for _, q := range [3]float64{0.5, 0.9, 0.99} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%g\"} %d\n", name, q, h.Percentile(q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// jaeger* mirror the JSON the Jaeger UI's file upload accepts (the
// /api/traces response shape). Field order is fixed by the struct
// definitions, so marshaling is deterministic.
type jaegerTag struct {
	Key   string      `json:"key"`
	Type  string      `json:"type"`
	Value interface{} `json:"value"`
}

type jaegerRef struct {
	RefType string `json:"refType"`
	TraceID string `json:"traceID"`
	SpanID  string `json:"spanID"`
}

type jaegerSpan struct {
	TraceID       string      `json:"traceID"`
	SpanID        string      `json:"spanID"`
	OperationName string      `json:"operationName"`
	References    []jaegerRef `json:"references"`
	StartTime     int64       `json:"startTime"` // µs since Unix epoch
	Duration      int64       `json:"duration"`  // µs
	Tags          []jaegerTag `json:"tags"`
	ProcessID     string      `json:"processID"`
}

type jaegerProcess struct {
	ServiceName string      `json:"serviceName"`
	Tags        []jaegerTag `json:"tags"`
}

type jaegerTrace struct {
	TraceID   string                   `json:"traceID"`
	Spans     []jaegerSpan             `json:"spans"`
	Processes map[string]jaegerProcess `json:"processes"`
}

type jaegerFile struct {
	Data []jaegerTrace `json:"data"`
}

// jaegerMicros maps a virtual time onto epoch-based microseconds.
func jaegerMicros(t sim.Time) int64 {
	return Epoch*1_000_000 + int64(t)/int64(sim.Microsecond)
}

// JaegerJSON writes up to maxTraces collected traces (0 means
// DefaultMaxTraces) as a Jaeger UI JSON file. Unfinished spans export with
// zero duration; spans marked with Span.SetError carry the boolean
// error=true tag Jaeger renders distinctly.
func JaegerJSON(w io.Writer, traces []*obs.Trace, maxTraces int) error {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if len(traces) > maxTraces {
		traces = traces[:maxTraces]
	}
	file := jaegerFile{Data: make([]jaegerTrace, 0, len(traces))}
	for _, tr := range traces {
		jt := jaegerTrace{
			TraceID:   fmt.Sprintf("%016x", uint64(tr.ID)),
			Spans:     make([]jaegerSpan, 0, len(tr.Spans)),
			Processes: map[string]jaegerProcess{"p1": {ServiceName: "mrdb", Tags: []jaegerTag{}}},
		}
		for _, s := range tr.Spans {
			js := jaegerSpan{
				TraceID:       jt.TraceID,
				SpanID:        fmt.Sprintf("%016x", uint64(s.Context.Span)),
				OperationName: s.Name,
				References:    []jaegerRef{},
				StartTime:     jaegerMicros(s.Start),
				ProcessID:     "p1",
				Tags:          make([]jaegerTag, 0, len(s.Tags)),
			}
			if s.End != 0 {
				js.Duration = int64(s.Duration()) / int64(sim.Microsecond)
			}
			if s.Parent != 0 {
				js.References = append(js.References, jaegerRef{
					RefType: "CHILD_OF", TraceID: jt.TraceID,
					SpanID: fmt.Sprintf("%016x", uint64(s.Parent)),
				})
			}
			for _, tag := range s.Tags {
				if tag.Key == "error" && tag.Value == "true" {
					js.Tags = append(js.Tags, jaegerTag{Key: "error", Type: "bool", Value: true})
					continue
				}
				js.Tags = append(js.Tags, jaegerTag{Key: tag.Key, Type: "string", Value: tag.Value})
			}
			jt.Spans = append(jt.Spans, js)
		}
		file.Data = append(file.Data, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// WriteDir writes the full export set into dir (created if missing):
// <prefix>metrics.prom (OpenMetrics trajectory), <prefix>registry.prom
// (point-in-time dump) and <prefix>traces.json (Jaeger). A nil db or empty
// trace slice still writes the file, so artifact sets are uniform.
func WriteDir(dir, prefix string, db *tsdb.DB, reg *obs.Registry, traces []*obs.Trace) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, prefix+name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("metrics.prom", func(w io.Writer) error { return OpenMetrics(w, db) }); err != nil {
		return err
	}
	if err := write("registry.prom", func(w io.Writer) error { return RegistrySnapshot(w, reg) }); err != nil {
		return err
	}
	return write("traces.json", func(w io.Writer) error { return JaegerJSON(w, traces, 0) })
}

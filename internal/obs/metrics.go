package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"mrdb/internal/sim"
)

// Registry is a named collection of counters, gauges and histograms.
// Metric methods get-or-create, so instrumentation sites never register up
// front. Like the tracer it is touched only from Procs and needs no
// locking; a nil Registry degrades every method to a no-op.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Counters returns the recorded counter names in sorted order.
func (r *Registry) Counters() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Gauges returns the recorded gauge names in sorted order.
func (r *Registry) Gauges() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Histograms returns the recorded histogram names in sorted order.
func (r *Registry) Histograms() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String dumps every metric, sorted by name, one per line.
func (r *Registry) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %-32s %d\n", n, r.counters[n].Value())
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge   %-32s %d\n", n, r.gauges[n].Value())
	}
	for _, n := range r.Histograms() {
		fmt.Fprintf(&b, "hist    %-32s %s\n", n, r.hists[n].Summary())
	}
	return b.String()
}

// Counter is a monotonically increasing count.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous value.
type Gauge struct{ v int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v = n
	}
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v += n
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram approximation parameters: log-linear buckets, HDR style. Each
// power-of-two range is split into 2^histSubBits linear sub-buckets, giving
// a worst-case relative error of 1/2^histSubBits ≈ 3% on percentiles while
// values below 2^histSubBits are exact.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
)

// Histogram records int64 samples (typically virtual-time nanoseconds)
// into log-linear buckets. Count, Sum, Min and Max are exact; percentiles
// are bucket lower bounds (≤3% relative error). Negative samples clamp to
// zero.
type Histogram struct {
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets []int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histBucket maps a non-negative value to its bucket index. Values below
// histSubCount map to themselves; above that, index = (exp-histSubBits+1)
// * histSubCount + sub, which is continuous with the linear region.
func histBucket(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1
	sub := (u >> uint(exp-histSubBits)) & (histSubCount - 1)
	return (exp-histSubBits+1)*histSubCount + int(sub)
}

// histLower is the inverse of histBucket: the smallest value in bucket i.
func histLower(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	block := i/histSubCount - 1
	sub := i % histSubCount
	return int64(histSubCount+sub) << uint(block)
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := histBucket(v)
	if i >= len(h.buckets) {
		grown := make([]int64, i+1)
		copy(grown, h.buckets)
		h.buckets = grown
	}
	h.buckets[i]++
}

// RecordDuration adds one virtual-duration sample in nanoseconds.
func (h *Histogram) RecordDuration(d sim.Duration) { h.Record(int64(d)) }

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the exact total of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the exact smallest sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the exact largest sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the exact average (0 when empty).
func (h *Histogram) Mean() int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Percentile returns the value at quantile q in [0, 1]: the lower bound of
// the bucket holding the q-th sample, clamped to [Min, Max].
func (h *Histogram) Percentile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen > rank {
			v := histLower(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Summary renders the histogram one-line, interpreting samples as
// virtual-time nanoseconds.
func (h *Histogram) Summary() string {
	if h.Count() == 0 {
		return "count=0"
	}
	d := func(v int64) sim.Duration { return sim.Duration(v) }
	return fmt.Sprintf("count=%d min=%s p50=%s p90=%s p99=%s max=%s mean=%s",
		h.Count(), d(h.Min()), d(h.Percentile(0.50)), d(h.Percentile(0.90)),
		d(h.Percentile(0.99)), d(h.Max()), d(h.Mean()))
}

package obs_test

import (
	"strings"
	"testing"

	"mrdb/internal/obs"
	"mrdb/internal/sim"
)

// TestSpanTree checks span lifecycle against the virtual clock: parentage,
// tags, durations, and the canonical rendering.
func TestSpanTree(t *testing.T) {
	s := sim.New(1)
	tr := obs.NewTracer(s)
	tr.SetEnabled(true)
	var trace *obs.Trace
	s.Spawn("test", func(p *sim.Proc) {
		root := tr.StartRoot("op")
		root.SetTag("k", "v").SetTagInt("n", 7)
		p.Sleep(5 * sim.Millisecond)
		child := tr.StartChild("step", root)
		p.Sleep(3 * sim.Millisecond)
		child.Finish()
		child.Finish() // second finish keeps the first end time
		root.Finish()
		trace = tr.Collect(root.Ctx().Trace)
	})
	s.RunFor(sim.Second)

	if trace == nil || len(trace.Spans) != 2 {
		t.Fatalf("trace = %v", trace)
	}
	root, child := trace.Root(), trace.Find("step")
	if root.Name != "op" || child == nil {
		t.Fatalf("root=%v child=%v", root, child)
	}
	if child.Parent != root.Ctx().Span {
		t.Errorf("child parent = %d, want %d", child.Parent, root.Ctx().Span)
	}
	if d := root.Duration(); d != 8*sim.Millisecond {
		t.Errorf("root duration = %v, want 8ms", d)
	}
	if d := child.Duration(); d != 3*sim.Millisecond {
		t.Errorf("child duration = %v, want 3ms", d)
	}
	if v, ok := root.Tag("k"); !ok || v != "v" {
		t.Errorf("tag k = %q %v", v, ok)
	}
	if v, _ := root.Tag("n"); v != "7" {
		t.Errorf("tag n = %q", v)
	}
	// Re-setting a key updates in place, preserving insertion order.
	root.SetTag("k", "v2")
	if len(root.Tags) != 2 || root.Tags[0].Value != "v2" {
		t.Errorf("tags after reset = %v", root.Tags)
	}
	out := trace.String()
	for _, want := range []string{"op [", "step [", "k=v2", "n=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "op [") > strings.Index(out, "step [") {
		t.Errorf("child rendered before root:\n%s", out)
	}
}

// TestDisabledAndNilSafety: a disabled tracer and nil spans degrade every
// operation to a no-op, so instrumentation sites need no conditionals.
func TestDisabledAndNilSafety(t *testing.T) {
	s := sim.New(1)
	tr := obs.NewTracer(s) // starts disabled
	if tr.Enabled() {
		t.Fatal("tracer should start disabled")
	}
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatalf("disabled StartRoot = %v", sp)
	}
	// All nil-span methods are safe and chainable.
	sp.SetTag("a", "b").SetTagInt("c", 1).SetTagDuration("d", sim.Second)
	sp.Finish()
	if sp.Duration() != 0 {
		t.Error("nil span has a duration")
	}
	if _, ok := sp.Tag("a"); ok {
		t.Error("nil span has a tag")
	}
	if sp.Ctx().Valid() {
		t.Error("nil span context is valid")
	}
	// A child of a nil parent records nothing even when enabled: untraced
	// background work must not create orphan roots.
	tr.SetEnabled(true)
	if c := tr.StartChild("orphan", nil); c != nil {
		t.Errorf("orphan child = %v", c)
	}
	if got := len(tr.Traces()); got != 0 {
		t.Errorf("traces = %d, want 0", got)
	}
	var nilTracer *obs.Tracer
	if nilTracer.Enabled() || nilTracer.StartRoot("x") != nil || nilTracer.Hash() == 0 {
		t.Error("nil tracer misbehaves")
	}
}

// TestProcSpanPropagation: StartIn/StartRootIn install and restore the
// proc-current span so nested instrumentation sites see the right parent.
func TestProcSpanPropagation(t *testing.T) {
	s := sim.New(1)
	tr := obs.NewTracer(s)
	tr.SetEnabled(true)
	s.Spawn("test", func(p *sim.Proc) {
		// No current span: StartIn is a no-op, StartRootIn roots a trace.
		if sp, done := tr.StartIn(p, "dangling"); sp != nil {
			t.Errorf("StartIn without parent = %v", sp)
			done()
		}
		root, rootDone := tr.StartRootIn(p, "root")
		if obs.ProcSpan(p) != root {
			t.Error("root not installed as proc-current")
		}
		inner, innerDone := tr.StartIn(p, "inner")
		if inner.Parent != root.Ctx().Span {
			t.Errorf("inner parent = %d, want root", inner.Parent)
		}
		if obs.ProcSpan(p) != inner {
			t.Error("inner not installed")
		}
		innerDone()
		if obs.ProcSpan(p) != root {
			t.Error("done() did not restore the previous span")
		}
		rootDone()
		if obs.ProcSpan(p) != nil {
			t.Error("root done() did not clear the proc span")
		}
	})
	s.RunFor(sim.Second)
}

// buildScenario drives one deterministic trace shape; used to check hashes.
func buildScenario(seed int64, extraTag string) uint64 {
	s := sim.New(seed)
	tr := obs.NewTracer(s)
	tr.SetEnabled(true)
	s.Spawn("test", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			root, done := tr.StartRootIn(p, "op")
			root.SetTagInt("i", int64(i))
			if extraTag != "" {
				root.SetTag("extra", extraTag)
			}
			p.Sleep(sim.Duration(i+1) * sim.Millisecond)
			child, childDone := tr.StartIn(p, "step")
			_ = child
			p.Sleep(2 * sim.Millisecond)
			childDone()
			done()
		}
	})
	s.RunFor(sim.Second)
	return tr.Hash()
}

// TestHashDeterminism: identical runs hash identically; any structural or
// tag difference changes the hash.
func TestHashDeterminism(t *testing.T) {
	h1, h2 := buildScenario(42, ""), buildScenario(42, "")
	if h1 != h2 {
		t.Errorf("same scenario hashed %016x vs %016x", h1, h2)
	}
	if h3 := buildScenario(42, "changed"); h3 == h1 {
		t.Error("tag change did not change the hash")
	}
}

// TestMetricsRegistry covers counters, gauges and nil-registry no-ops.
func TestMetricsRegistry(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Add(2)
	if v := r.Counter("a").Value(); v != 3 {
		t.Errorf("counter = %d", v)
	}
	r.Gauge("g").Set(10)
	r.Gauge("g").Add(-3)
	if v := r.Gauge("g").Value(); v != 7 {
		t.Errorf("gauge = %d", v)
	}
	dump := r.String()
	if !strings.Contains(dump, "a") || !strings.Contains(dump, "g") {
		t.Errorf("dump missing metrics:\n%s", dump)
	}
	var nilReg *obs.Registry
	nilReg.Counter("x").Inc()
	nilReg.Gauge("x").Set(1)
	nilReg.Histogram("x").Record(1)
	if nilReg.String() != "" || nilReg.Histograms() != nil {
		t.Error("nil registry misbehaves")
	}
}

// TestHistogram checks the log-linear buckets: exact aggregates, and
// percentiles within the documented ~3% relative error.
func TestHistogram(t *testing.T) {
	h := obs.NewHistogram()
	if h.Summary() != "count=0" {
		t.Errorf("empty summary = %q", h.Summary())
	}
	for v := int64(0); v < 100; v++ {
		h.Record(v)
	}
	if h.Count() != 100 || h.Min() != 0 || h.Max() != 99 || h.Sum() != 4950 {
		t.Errorf("aggregates: count=%d min=%d max=%d sum=%d", h.Count(), h.Min(), h.Max(), h.Sum())
	}
	if h.Mean() != 49 {
		t.Errorf("mean = %d", h.Mean())
	}
	// Values below 128 land in buckets of width <= 4, so these are near
	// exact; assert within the documented error.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 50}, {0.9, 90}, {0.99, 99}} {
		got := h.Percentile(tc.q)
		if diff := got - tc.want; diff < -4 || diff > 4 {
			t.Errorf("p%v = %d, want ~%d", tc.q*100, got, tc.want)
		}
	}
	// Percentiles clamp to [Min, Max].
	if h.Percentile(0) < 0 || h.Percentile(1) > h.Max() {
		t.Errorf("percentile out of range: p0=%d p100=%d", h.Percentile(0), h.Percentile(1))
	}
	// Large values: relative error bounded by 1/32.
	big := obs.NewHistogram()
	big.RecordDuration(1000 * sim.Millisecond)
	p := big.Percentile(0.5)
	if lo := int64(1000*sim.Millisecond) * 31 / 32; p < lo || p > int64(1000*sim.Millisecond) {
		t.Errorf("p50 of single 1s sample = %v", sim.Duration(p))
	}
	if !strings.Contains(big.Summary(), "count=1") {
		t.Errorf("summary = %q", big.Summary())
	}
	// Negative samples clamp to zero.
	neg := obs.NewHistogram()
	neg.Record(-5)
	if neg.Min() != 0 || neg.Max() != 0 || neg.Count() != 1 {
		t.Errorf("negative sample: min=%d max=%d count=%d", neg.Min(), neg.Max(), neg.Count())
	}
}

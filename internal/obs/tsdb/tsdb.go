// Package tsdb is a deterministic, virtual-time, in-memory timeseries
// store: the time dimension of mrdb's observability layer. Point-in-time
// registry snapshots answer "how many WAN RPCs happened?"; the tsdb answers
// "what did p99 look like while the lease moved?" — the trajectory questions
// that distinguish dynamic multi-region behavior (elastic re-convergence,
// chaos RTO curves) from static aggregates.
//
// Samples are keyed (metric, node) and rolled up into fixed-width buckets
// carrying count/sum/min/max, so rates (Δ of a sampled cumulative counter
// across a bucket) and percentile approximations (bucket max ≈ p99 at our
// sampling cadences) are derivable after the fact. Each series is backed by
// a ring of a fixed number of buckets: memory is strictly bounded per
// series no matter how long the run, and old buckets are overwritten in
// place rather than ever reallocating.
//
// Like the rest of internal/obs, the tsdb is strictly passive over virtual
// time: Observe and every read method never sleep, schedule events, or
// consume simulation randomness, so collection on versus off cannot change
// a run's schedule (the metamorphic tests pin this). Iteration orders are
// canonical (sorted metric, sorted node, ascending bucket), so same-seed
// runs render byte-identical series.
package tsdb

import (
	"sort"

	"mrdb/internal/sim"
)

// Default rollup parameters: 10s buckets, 720 of them (2h of retention at
// the default width) per series.
const (
	DefaultBucketWidth = 10 * sim.Second
	DefaultCapacity    = 720
)

// Bucket is one rollup window's aggregate.
type Bucket struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
}

// merge folds one observation into the bucket.
func (b *Bucket) merge(v int64) {
	if b.Count == 0 || v < b.Min {
		b.Min = v
	}
	if b.Count == 0 || v > b.Max {
		b.Max = v
	}
	b.Count++
	b.Sum += v
}

// BucketAt is a bucket stamped with the virtual start time of its window.
type BucketAt struct {
	Start sim.Time
	Bucket
}

// Series is the ring-buffered bucket history of one (metric, node) pair.
type Series struct {
	Metric string
	Node   int

	width sim.Duration
	// slots is the ring: slot i holds the bucket whose absolute index is
	// idx[i] (-1 while empty). An observation for bucket bi lands in slot
	// bi % len(slots), evicting whatever older bucket occupied it — the
	// ring bound, enforced in place.
	slots []Bucket
	idx   []int64
	last  int64 // highest absolute bucket index observed
}

func newSeries(metric string, node int, width sim.Duration, capacity int) *Series {
	s := &Series{
		Metric: metric, Node: node, width: width,
		slots: make([]Bucket, capacity),
		idx:   make([]int64, capacity),
		last:  -1,
	}
	for i := range s.idx {
		s.idx[i] = -1
	}
	return s
}

// observe folds v into the bucket containing t. Observations older than the
// ring's retention window are dropped.
func (s *Series) observe(t sim.Time, v int64) {
	bi := int64(t) / int64(s.width)
	if s.last >= 0 && bi <= s.last-int64(len(s.slots)) {
		return
	}
	slot := int(bi % int64(len(s.slots)))
	if s.idx[slot] != bi {
		s.idx[slot] = bi
		s.slots[slot] = Bucket{}
	}
	s.slots[slot].merge(v)
	if bi > s.last {
		s.last = bi
	}
}

// Buckets returns the retained buckets in ascending bucket-start order.
func (s *Series) Buckets() []BucketAt {
	if s == nil {
		return nil
	}
	out := make([]BucketAt, 0, len(s.slots))
	for i, bi := range s.idx {
		if bi < 0 || bi <= s.last-int64(len(s.slots)) {
			continue
		}
		out = append(out, BucketAt{Start: sim.Time(bi * int64(s.width)), Bucket: s.slots[i]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Width returns the series' bucket width.
func (s *Series) Width() sim.Duration {
	if s == nil {
		return 0
	}
	return s.width
}

// DB holds every series of one run. Like the metrics registry it is touched
// only from Procs (no locking) and a nil DB degrades every method to a
// no-op, so instrumentation sites need no "is collection on" checks.
type DB struct {
	width    sim.Duration
	capacity int
	series   map[string]map[int]*Series // metric -> node -> series
}

// New returns an empty store; zero arguments take the defaults.
func New(width sim.Duration, capacity int) *DB {
	if width <= 0 {
		width = DefaultBucketWidth
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &DB{width: width, capacity: capacity, series: map[string]map[int]*Series{}}
}

// BucketWidth returns the rollup bucket width.
func (db *DB) BucketWidth() sim.Duration {
	if db == nil {
		return 0
	}
	return db.width
}

// Observe folds one sample for (metric, node) into the bucket containing t,
// creating the series on first use. Node 0 is the convention for
// cluster-wide metrics.
func (db *DB) Observe(metric string, node int, t sim.Time, v int64) {
	if db == nil {
		return
	}
	nodes := db.series[metric]
	if nodes == nil {
		nodes = map[int]*Series{}
		db.series[metric] = nodes
	}
	s := nodes[node]
	if s == nil {
		s = newSeries(metric, node, db.width, db.capacity)
		nodes[node] = s
	}
	s.observe(t, v)
}

// Metrics returns the recorded metric names in sorted order.
func (db *DB) Metrics() []string {
	if db == nil {
		return nil
	}
	out := make([]string, 0, len(db.series))
	for m := range db.series {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Nodes returns the nodes with data for a metric, in ascending order.
func (db *DB) Nodes(metric string) []int {
	if db == nil {
		return nil
	}
	out := make([]int, 0, len(db.series[metric]))
	for n := range db.series[metric] {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Series returns the series for (metric, node), or nil.
func (db *DB) Series(metric string, node int) *Series {
	if db == nil {
		return nil
	}
	return db.series[metric][node]
}

// Buckets returns the retained buckets for (metric, node) in ascending
// bucket-start order.
func (db *DB) Buckets(metric string, node int) []BucketAt {
	return db.Series(metric, node).Buckets()
}

// Merged folds every node's series for a metric into one bucket sequence,
// in ascending bucket-start order — the cluster-wide view of a per-node
// metric (e.g. probe latency across rotating gateways).
func (db *DB) Merged(metric string) []BucketAt {
	if db == nil {
		return nil
	}
	byStart := map[sim.Time]*Bucket{}
	for _, node := range db.Nodes(metric) {
		for _, ba := range db.Buckets(metric, node) {
			b := byStart[ba.Start]
			if b == nil {
				b = &Bucket{}
				byStart[ba.Start] = b
			}
			if b.Count == 0 || ba.Min < b.Min {
				b.Min = ba.Min
			}
			if b.Count == 0 || ba.Max > b.Max {
				b.Max = ba.Max
			}
			b.Count += ba.Count
			b.Sum += ba.Sum
		}
	}
	starts := make([]sim.Time, 0, len(byStart))
	for s := range byStart {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]BucketAt, 0, len(starts))
	for _, s := range starts {
		out = append(out, BucketAt{Start: s, Bucket: *byStart[s]})
	}
	return out
}

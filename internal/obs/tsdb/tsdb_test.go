package tsdb

import (
	"testing"

	"mrdb/internal/sim"
)

func TestRollupBuckets(t *testing.T) {
	db := New(10*sim.Second, 8)
	// Three samples in bucket 0, one in bucket 2.
	db.Observe("m", 1, sim.Time(1*sim.Second), 5)
	db.Observe("m", 1, sim.Time(2*sim.Second), 1)
	db.Observe("m", 1, sim.Time(9*sim.Second), 9)
	db.Observe("m", 1, sim.Time(25*sim.Second), 7)

	bs := db.Buckets("m", 1)
	if len(bs) != 2 {
		t.Fatalf("got %d buckets, want 2: %+v", len(bs), bs)
	}
	b0 := bs[0]
	if b0.Start != 0 || b0.Count != 3 || b0.Sum != 15 || b0.Min != 1 || b0.Max != 9 {
		t.Errorf("bucket 0 = %+v", b0)
	}
	b2 := bs[1]
	if b2.Start != sim.Time(20*sim.Second) || b2.Count != 1 || b2.Min != 7 || b2.Max != 7 {
		t.Errorf("bucket 2 = %+v", b2)
	}
}

func TestRingEviction(t *testing.T) {
	const capacity = 4
	db := New(1*sim.Second, capacity)
	// 10 buckets through a 4-bucket ring: only the last 4 survive.
	for i := 0; i < 10; i++ {
		db.Observe("m", 0, sim.Time(sim.Duration(i)*sim.Second), int64(i))
	}
	bs := db.Buckets("m", 0)
	if len(bs) != capacity {
		t.Fatalf("got %d buckets, want %d", len(bs), capacity)
	}
	for i, b := range bs {
		want := int64(10 - capacity + i)
		if b.Min != want || b.Count != 1 {
			t.Errorf("bucket %d = %+v, want value %d", i, b, want)
		}
		if b.Start != sim.Time(sim.Duration(want)*sim.Second) {
			t.Errorf("bucket %d start = %v", i, b.Start)
		}
	}
	// A sample older than the retention window is dropped, not resurrected.
	db.Observe("m", 0, sim.Time(2*sim.Second), 999)
	for _, b := range db.Buckets("m", 0) {
		if b.Max == 999 {
			t.Error("stale observation resurrected an evicted bucket")
		}
	}
}

func TestMergedAcrossNodes(t *testing.T) {
	db := New(10*sim.Second, 8)
	db.Observe("lat", 1, sim.Time(1*sim.Second), 10)
	db.Observe("lat", 2, sim.Time(2*sim.Second), 30)
	db.Observe("lat", 2, sim.Time(12*sim.Second), 5)
	merged := db.Merged("lat")
	if len(merged) != 2 {
		t.Fatalf("got %d merged buckets, want 2", len(merged))
	}
	if merged[0].Count != 2 || merged[0].Min != 10 || merged[0].Max != 30 || merged[0].Sum != 40 {
		t.Errorf("merged bucket 0 = %+v", merged[0])
	}
	if merged[1].Count != 1 || merged[1].Max != 5 {
		t.Errorf("merged bucket 1 = %+v", merged[1])
	}
}

func TestNilSafety(t *testing.T) {
	var db *DB
	db.Observe("m", 0, 0, 1)
	if db.Metrics() != nil || db.Buckets("m", 0) != nil || db.Merged("m") != nil {
		t.Error("nil DB returned data")
	}
	var s *Series
	if s.Buckets() != nil || s.Width() != 0 {
		t.Error("nil Series returned data")
	}
}

package obs

import (
	"fmt"
	"sort"
	"strings"

	"mrdb/internal/sim"
)

// StmtStat accumulates execution statistics for one statement fingerprint:
// how often it ran, how often it failed, and histograms over its
// virtual-time latency, transaction restarts, and WAN round trips.
type StmtStat struct {
	Count   int64
	Errors  int64
	Latency *Histogram // virtual nanoseconds end-to-end
	Retries *Histogram // transaction restarts per execution
	WANRPCs *Histogram // cross-region RPCs issued per execution
}

// StmtStats is the cluster-wide statement statistics registry, keyed by
// statement fingerprint (the statement text with literals normalized away).
// Like the rest of the obs package it is strictly passive and stamped with
// virtual time only, so its contents are bit-for-bit reproducible per seed
// and queryable through mrdb_internal.statement_statistics.
type StmtStats struct {
	stats map[string]*StmtStat
}

// NewStmtStats returns an empty registry.
func NewStmtStats() *StmtStats {
	return &StmtStats{stats: map[string]*StmtStat{}}
}

// Record folds one execution into the fingerprint's accumulated stats.
// Nil-safe, so callers need no "is stats collection on" checks.
func (s *StmtStats) Record(fingerprint string, latency sim.Duration, retries, wanRPCs int64, failed bool) {
	if s == nil {
		return
	}
	st, ok := s.stats[fingerprint]
	if !ok {
		st = &StmtStat{
			Latency: NewHistogram(),
			Retries: NewHistogram(),
			WANRPCs: NewHistogram(),
		}
		s.stats[fingerprint] = st
	}
	st.Count++
	if failed {
		st.Errors++
	}
	st.Latency.RecordDuration(latency)
	st.Retries.Record(retries)
	st.WANRPCs.Record(wanRPCs)
}

// Get returns the stats for a fingerprint, or nil.
func (s *StmtStats) Get(fingerprint string) *StmtStat {
	if s == nil {
		return nil
	}
	return s.stats[fingerprint]
}

// Fingerprints returns every recorded fingerprint in sorted order.
func (s *StmtStats) Fingerprints() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.stats))
	for fp := range s.stats {
		out = append(out, fp)
	}
	sort.Strings(out)
	return out
}

// String renders the registry in canonical (sorted) form; two same-seed
// runs produce byte-identical output.
func (s *StmtStats) String() string {
	var b strings.Builder
	for _, fp := range s.Fingerprints() {
		st := s.stats[fp]
		fmt.Fprintf(&b, "%s count=%d errors=%d retries=%d wan=%d latency{%s}\n",
			fp, st.Count, st.Errors, st.Retries.Sum(), st.WANRPCs.Sum(),
			st.Latency.Summary())
	}
	return b.String()
}

// ContentionEvent records one transaction blocking on another's intent: the
// virtual time the wait began, where it happened, who held the lock, who
// waited, and for how long. Fields use plain types (int64, string) so the
// kv layer can feed events without obs importing it.
type ContentionEvent struct {
	Start    sim.Time
	NodeID   int64
	RangeID  int64
	Key      string // raw key bytes; render with %q
	Holder   string // holder transaction ID
	Waiter   string // waiting transaction ID ("0" for non-transactional)
	Duration sim.Duration
	IsWrite  bool
}

// ContentionLog is an append-only record of contention events, fed from the
// replica intent-wait path. Events append in simulation-event order, so the
// log is deterministic per seed.
type ContentionLog struct {
	events []ContentionEvent
}

// NewContentionLog returns an empty log.
func NewContentionLog() *ContentionLog {
	return &ContentionLog{}
}

// Record appends one event. Nil-safe.
func (l *ContentionLog) Record(ev ContentionEvent) {
	if l == nil {
		return
	}
	l.events = append(l.events, ev)
}

// Events returns the recorded events in append order.
func (l *ContentionLog) Events() []ContentionEvent {
	if l == nil {
		return nil
	}
	return l.events
}

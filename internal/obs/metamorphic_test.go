package obs_test

// Metamorphic test for zero-cost tracing: because the tracer never sleeps,
// schedules events, or consumes simulation randomness, running the exact
// same workload with tracing on and off must produce identical query
// results and identical virtual-time latencies, sample for sample.

import (
	"reflect"
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/sql"
	"mrdb/internal/workload"
)

// movrOutcome captures everything observable about one MovR run.
type movrOutcome struct {
	FinalTime sim.Time
	Signup    []sim.Duration
	Ride      []sim.Duration
	Browse    []sim.Duration
	UserRows  [][]sql.Datum
	Traces    int
}

func runMovr(t *testing.T, seed int64, tracing bool) movrOutcome {
	t.Helper()
	c := cluster.New(cluster.Config{
		Seed:      seed,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
		Tracing:   tracing,
	})
	catalog := sql.NewCatalog()
	m := workload.NewMovr(c, catalog)
	var out movrOutcome
	var runErr error
	c.Sim.Spawn("movr", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if runErr = m.Setup(p); runErr != nil {
			return
		}
		p.Sleep(2 * sim.Second)
		if runErr = m.Load(p); runErr != nil {
			return
		}
		p.Sleep(2 * sim.Second)
		if runErr = m.Run(p, 2, 10); runErr != nil {
			return
		}
		s := sql.NewSession(c, catalog, c.GatewayFor(c.Regions()[0]))
		s.Database = "movr"
		res, err := s.Exec(p, `SELECT name FROM users WHERE id = 1`)
		if err != nil {
			runErr = err
			return
		}
		out.UserRows = res.Rows
	})
	c.Sim.RunFor(60 * 60 * sim.Second)
	if runErr != nil {
		t.Fatalf("movr run (tracing=%v): %v", tracing, runErr)
	}
	out.FinalTime = c.Sim.Now()
	out.Signup = m.SignupLat.Samples()
	out.Ride = m.RideLat.Samples()
	out.Browse = m.BrowseLat.Samples()
	out.Traces = len(c.Tracer.Traces())
	return out
}

func TestMetamorphicTracingIsFree(t *testing.T) {
	off := runMovr(t, 71, false)
	on := runMovr(t, 71, true)

	// Tracing actually happened in one run and not the other.
	if off.Traces != 0 {
		t.Errorf("untraced run collected %d traces", off.Traces)
	}
	if on.Traces == 0 {
		t.Error("traced run collected no traces")
	}
	// ...and changed nothing observable.
	if off.FinalTime != on.FinalTime {
		t.Errorf("virtual end time differs: off=%v on=%v", off.FinalTime, on.FinalTime)
	}
	if !reflect.DeepEqual(off.UserRows, on.UserRows) {
		t.Errorf("query results differ: off=%v on=%v", off.UserRows, on.UserRows)
	}
	for _, tc := range []struct {
		name    string
		off, on []sim.Duration
	}{
		{"signup", off.Signup, on.Signup},
		{"ride", off.Ride, on.Ride},
		{"browse", off.Browse, on.Browse},
	} {
		if !reflect.DeepEqual(tc.off, tc.on) {
			t.Errorf("%s latency samples differ (n=%d vs n=%d)", tc.name, len(tc.off), len(tc.on))
		}
	}
	if len(off.Browse) == 0 || len(off.Ride) == 0 {
		t.Fatalf("workload recorded no samples: browse=%d ride=%d", len(off.Browse), len(off.Ride))
	}
}

package obs_test

// Metamorphic tests for zero-cost observability: because the tracer and the
// timeseries sampler never sleep, schedule workload-visible events, or
// consume simulation randomness, running the exact same workload with
// tracing (or sampling) on and off must produce identical query results and
// identical virtual-time latencies, sample for sample.

import (
	"fmt"
	"reflect"
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/sql"
	"mrdb/internal/workload"
)

// movrOutcome captures everything observable about one MovR run.
type movrOutcome struct {
	FinalTime sim.Time
	Signup    []sim.Duration
	Ride      []sim.Duration
	Browse    []sim.Duration
	UserRows  [][]sql.Datum
	Traces    int
	SpanHash  uint64
	StmtStats string
	// TSRows / Timeseries capture the full mrdb_internal.timeseries table
	// (row count and canonical rendering); empty when sampling is off.
	TSRows     int
	Timeseries string
}

func runMovr(t *testing.T, seed int64, tracing, sampling bool) movrOutcome {
	t.Helper()
	c := cluster.New(cluster.Config{
		Seed:      seed,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
		Tracing:   tracing,
		Sampling:  sampling,
	})
	catalog := sql.NewCatalog()
	m := workload.NewMovr(c, catalog)
	var out movrOutcome
	var runErr error
	c.Sim.Spawn("movr", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if runErr = m.Setup(p); runErr != nil {
			return
		}
		p.Sleep(2 * sim.Second)
		if runErr = m.Load(p); runErr != nil {
			return
		}
		p.Sleep(2 * sim.Second)
		if runErr = m.Run(p, 2, 10); runErr != nil {
			return
		}
		s := sql.NewSession(c, catalog, c.GatewayFor(c.Regions()[0]))
		s.Database = "movr"
		res, err := s.Exec(p, `SELECT name FROM users WHERE id = 1`)
		if err != nil {
			runErr = err
			return
		}
		out.UserRows = res.Rows
		stats, err := s.Exec(p, `SELECT * FROM mrdb_internal.statement_statistics`)
		if err != nil {
			runErr = err
			return
		}
		for _, row := range stats.Rows {
			out.StmtStats += fmt.Sprintln(row)
		}
		ts, err := s.Exec(p, `SELECT * FROM mrdb_internal.timeseries`)
		if err != nil {
			runErr = err
			return
		}
		out.TSRows = len(ts.Rows)
		for _, row := range ts.Rows {
			out.Timeseries += fmt.Sprintln(row)
		}
	})
	c.Sim.RunFor(60 * 60 * sim.Second)
	if runErr != nil {
		t.Fatalf("movr run (tracing=%v): %v", tracing, runErr)
	}
	out.FinalTime = c.Sim.Now()
	out.SpanHash = c.Tracer.Hash()
	out.Signup = m.SignupLat.Samples()
	out.Ride = m.RideLat.Samples()
	out.Browse = m.BrowseLat.Samples()
	out.Traces = len(c.Tracer.Traces())
	return out
}

func TestMetamorphicTracingIsFree(t *testing.T) {
	off := runMovr(t, 71, false, false)
	on := runMovr(t, 71, true, false)

	// Tracing actually happened in one run and not the other.
	if off.Traces != 0 {
		t.Errorf("untraced run collected %d traces", off.Traces)
	}
	if on.Traces == 0 {
		t.Error("traced run collected no traces")
	}
	// ...and changed nothing observable.
	if off.FinalTime != on.FinalTime {
		t.Errorf("virtual end time differs: off=%v on=%v", off.FinalTime, on.FinalTime)
	}
	if !reflect.DeepEqual(off.UserRows, on.UserRows) {
		t.Errorf("query results differ: off=%v on=%v", off.UserRows, on.UserRows)
	}
	for _, tc := range []struct {
		name    string
		off, on []sim.Duration
	}{
		{"signup", off.Signup, on.Signup},
		{"ride", off.Ride, on.Ride},
		{"browse", off.Browse, on.Browse},
	} {
		if !reflect.DeepEqual(tc.off, tc.on) {
			t.Errorf("%s latency samples differ (n=%d vs n=%d)", tc.name, len(tc.off), len(tc.on))
		}
	}
	if len(off.Browse) == 0 || len(off.Ride) == 0 {
		t.Fatalf("workload recorded no samples: browse=%d ride=%d", len(off.Browse), len(off.Ride))
	}
}

// TestMetamorphicSameProcessReruns runs the traced MovR workload twice in
// one process. The first run starts from a cold heap; by the second, the
// runtime's allocator caches, the GC, and any package-level state have been
// exercised by a full cluster lifetime. None of that may leak into the
// simulation: span-tree hashes and statement statistics must come back
// byte-identical. This is the regression net for the scheduler's object
// pools (procs, wait groups, span arenas, intent records) — reused memory
// must behave exactly like fresh memory.
func TestMetamorphicSameProcessReruns(t *testing.T) {
	cold := runMovr(t, 77, true, true)
	warm := runMovr(t, 77, true, true)
	if cold.Traces == 0 {
		t.Fatal("traced run collected no traces")
	}
	if cold.SpanHash != warm.SpanHash {
		t.Errorf("span-tree hashes differ across same-process reruns: %016x vs %016x",
			cold.SpanHash, warm.SpanHash)
	}
	if cold.StmtStats != warm.StmtStats {
		t.Errorf("statement statistics differ across same-process reruns:\n%s\nvs\n%s",
			cold.StmtStats, warm.StmtStats)
	}
	if cold.StmtStats == "" {
		t.Error("statement statistics empty after MovR run")
	}
	if cold.FinalTime != warm.FinalTime {
		t.Errorf("virtual end time differs: %v vs %v", cold.FinalTime, warm.FinalTime)
	}
	if !reflect.DeepEqual(cold.UserRows, warm.UserRows) {
		t.Errorf("query results differ: %v vs %v", cold.UserRows, warm.UserRows)
	}
	if !reflect.DeepEqual(cold.Signup, warm.Signup) ||
		!reflect.DeepEqual(cold.Ride, warm.Ride) ||
		!reflect.DeepEqual(cold.Browse, warm.Browse) {
		t.Error("latency samples differ across same-process reruns")
	}
	if cold.TSRows == 0 {
		t.Error("sampled run produced an empty mrdb_internal.timeseries")
	}
	if cold.Timeseries != warm.Timeseries {
		t.Error("mrdb_internal.timeseries differs across same-process reruns")
	}
}

// TestMetamorphicSamplingIsFree is the sampler's version of the tracing
// metamorphism: the per-node timeseries tickers add events to the schedule,
// but those events only read state — so every workload-visible observable
// (virtual end time, query results, per-op latency samples) must be
// identical with sampling on and off.
func TestMetamorphicSamplingIsFree(t *testing.T) {
	off := runMovr(t, 71, false, false)
	on := runMovr(t, 71, false, true)

	// Sampling actually happened in one run and not the other.
	if off.TSRows != 0 {
		t.Errorf("unsampled run has %d timeseries rows", off.TSRows)
	}
	if on.TSRows == 0 {
		t.Error("sampled run has an empty mrdb_internal.timeseries")
	}
	// ...and changed nothing observable.
	if off.FinalTime != on.FinalTime {
		t.Errorf("virtual end time differs: off=%v on=%v", off.FinalTime, on.FinalTime)
	}
	if !reflect.DeepEqual(off.UserRows, on.UserRows) {
		t.Errorf("query results differ: off=%v on=%v", off.UserRows, on.UserRows)
	}
	for _, tc := range []struct {
		name    string
		off, on []sim.Duration
	}{
		{"signup", off.Signup, on.Signup},
		{"ride", off.Ride, on.Ride},
		{"browse", off.Browse, on.Browse},
	} {
		if !reflect.DeepEqual(tc.off, tc.on) {
			t.Errorf("%s latency samples differ (n=%d vs n=%d)", tc.name, len(tc.off), len(tc.on))
		}
	}
	if len(off.Browse) == 0 || len(off.Ride) == 0 {
		t.Fatalf("workload recorded no samples: browse=%d ride=%d", len(off.Browse), len(off.Ride))
	}
}

package txn_test

import (
	"fmt"
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
	"mrdb/internal/zones"
)

// harness: a 3-region cluster with one LAG range covering "k/...".
type harness struct {
	c    *cluster.Cluster
	desc *kv.RangeDescriptor
}

func newHarness(t *testing.T, seed int64) *harness {
	t.Helper()
	c := cluster.New(cluster.Config{
		Seed: seed, Regions: cluster.ThreeRegions(), MaxOffset: 250 * sim.Millisecond,
	})
	cfg := zones.Config{
		NumReplicas: 5, NumVoters: 3,
		VoterConstraints: map[simnet.Region]int{simnet.USEast1: 3},
		Constraints:      map[simnet.Region]int{simnet.EuropeW2: 1, simnet.AsiaNE1: 1},
		LeasePreferences: []simnet.Region{simnet.USEast1},
	}
	desc, err := c.CreateRangeWithZoneConfig([]byte("k/"), []byte("k0"), cfg, kv.ClosedTSLag)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{c: c, desc: desc}
}

func (h *harness) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	h.c.Sim.Spawn("test", func(p *sim.Proc) {
		defer h.c.Sim.Stop()
		if err := h.c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		fn(p)
	})
	h.c.Sim.RunFor(30 * 60 * sim.Second)
	if n := h.c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
}

func (h *harness) coord(r simnet.Region) *txn.Coordinator {
	gw := h.c.GatewayFor(r)
	return txn.NewCoordinator(h.c.Stores[gw], h.c.Senders[gw])
}

func TestOnePCCommit(t *testing.T) {
	h := newHarness(t, 1)
	h.run(t, func(p *sim.Proc) {
		co := h.coord(simnet.USEast1)
		tx := co.Begin(0)
		tx.AllowOnePC = true
		if err := tx.Put(p, mvcc.Key("k/a"), mvcc.Value("v1")); err != nil {
			t.Error(err)
			return
		}
		// The buffered write is not yet visible anywhere (no intent!).
		lh, _ := h.c.Stores[h.desc.Leaseholder].Replica(h.desc.RangeID)
		if _, ok := lh.EngineForBulkLoad().GetIntent(mvcc.Key("k/a")); ok {
			t.Error("buffered 1PC write produced an intent")
		}
		if err := tx.Commit(p); err != nil {
			t.Error(err)
			return
		}
		// Committing again is a no-op for a 1PC txn.
		if err := tx.Commit(p); err != nil {
			t.Errorf("idempotent commit: %v", err)
		}
		// Value visible to a new txn; still no intent ever existed.
		var got mvcc.Value
		if err := co.Run(p, func(tx2 *txn.Txn) error {
			v, err := tx2.Get(p, mvcc.Key("k/a"))
			got = v
			return err
		}); err != nil || string(got) != "v1" {
			t.Errorf("read back %q, %v", got, err)
		}
		if lh.EngineForBulkLoad().IntentCount() != 0 {
			t.Error("1PC left intents behind")
		}
	})
}

func TestOnePCReadYourBufferedWriteFlushes(t *testing.T) {
	h := newHarness(t, 2)
	h.run(t, func(p *sim.Proc) {
		co := h.coord(simnet.USEast1)
		tx := co.Begin(0)
		tx.AllowOnePC = true
		if err := tx.Put(p, mvcc.Key("k/b"), mvcc.Value("mine")); err != nil {
			t.Error(err)
			return
		}
		// Reading the key flushes the buffer into a real intent so
		// read-your-writes holds.
		v, err := tx.Get(p, mvcc.Key("k/b"))
		if err != nil || string(v) != "mine" {
			t.Errorf("read-your-write: %q %v", v, err)
			return
		}
		if err := tx.Commit(p); err != nil {
			t.Error(err)
		}
	})
}

func TestOnePCDeclinedFallsBack(t *testing.T) {
	h := newHarness(t, 3)
	h.run(t, func(p *sim.Proc) {
		co := h.coord(simnet.USEast1)
		// Seed a value.
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("k/c"), mvcc.Value("0"))
		}); err != nil {
			t.Error(err)
			return
		}
		// T1 reads k/c, then T2 overwrites it, then T1 tries a 1PC write
		// to another key: the server-side refresh of k/c must fail and
		// the fallback must ALSO fail the refresh — the txn restarts.
		tx1 := co.Begin(0)
		tx1.AllowOnePC = true
		if _, err := tx1.Get(p, mvcc.Key("k/c")); err != nil {
			t.Error(err)
			return
		}
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("k/c"), mvcc.Value("1"))
		}); err != nil {
			t.Error(err)
			return
		}
		if err := tx1.Put(p, mvcc.Key("k/d"), mvcc.Value("x")); err != nil {
			t.Error(err)
			return
		}
		err := tx1.Commit(p)
		// The write ts did not need to move (no conflict on k/d), so the
		// commit may succeed at the original timestamp — but if it had
		// to move, the refresh would fail. Either way the database stays
		// consistent: verify serializability by rereading.
		if err != nil {
			tx1.Abort(p)
		}
		var got mvcc.Value
		if err := co.Run(p, func(tx *txn.Txn) error {
			v, err := tx.Get(p, mvcc.Key("k/c"))
			got = v
			return err
		}); err != nil || string(got) != "1" {
			t.Errorf("k/c = %q, %v", got, err)
		}
	})
}

func TestGetForUpdateSerializesIncrements(t *testing.T) {
	h := newHarness(t, 4)
	h.run(t, func(p *sim.Proc) {
		co := h.coord(simnet.USEast1)
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("k/ctr"), mvcc.Value("0"))
		}); err != nil {
			t.Error(err)
			return
		}
		wg := sim.NewWaitGroup(h.c.Sim)
		const n = 8
		wg.Add(n)
		for i := 0; i < n; i++ {
			h.c.Sim.Spawn("inc", func(wp *sim.Proc) {
				defer wg.Done()
				err := co.Run(wp, func(tx *txn.Txn) error {
					v, err := tx.GetForUpdate(wp, mvcc.Key("k/ctr"))
					if err != nil {
						return err
					}
					cur := 0
					fmt.Sscanf(string(v), "%d", &cur)
					return tx.Put(wp, mvcc.Key("k/ctr"), mvcc.Value(fmt.Sprintf("%d", cur+1)))
				})
				if err != nil {
					t.Errorf("increment: %v", err)
				}
			})
		}
		wg.Wait(p)
		var got mvcc.Value
		co.Run(p, func(tx *txn.Txn) error {
			v, err := tx.Get(p, mvcc.Key("k/ctr"))
			got = v
			return err
		})
		if string(got) != fmt.Sprintf("%d", n) {
			t.Errorf("counter = %q, want %d", got, n)
		}
		// SELECT FOR UPDATE queues instead of restarting: restarts should
		// be rare (deadlock-free single-key workload => none).
		if co.Restarts > 1 {
			t.Errorf("SFU increments caused %d restarts", co.Restarts)
		}
	})
}

func TestPipelinedWritesProveAtCommit(t *testing.T) {
	h := newHarness(t, 5)
	h.run(t, func(p *sim.Proc) {
		co := h.coord(simnet.EuropeW2) // remote gateway: pipelining matters
		start := p.Now()
		err := co.Run(p, func(tx *txn.Txn) error {
			var kvs []mvcc.KeyValue
			for i := 0; i < 8; i++ {
				kvs = append(kvs, mvcc.KeyValue{
					Key:   mvcc.Key(fmt.Sprintf("k/p%d", i)),
					Value: mvcc.Value("v"),
				})
			}
			return tx.PutParallel(p, kvs)
		})
		if err != nil {
			t.Error(err)
			return
		}
		// 8 writes from Europe to us-east1: pipelining + parallel commit
		// keep the whole txn around two WAN round trips, far below the
		// 8x sequential-replication cost.
		elapsed := p.Now().Sub(start)
		if elapsed > 400*sim.Millisecond {
			t.Errorf("8-write remote txn took %v, pipelining broken", elapsed)
		}
		// All writes landed.
		for i := 0; i < 8; i++ {
			key := mvcc.Key(fmt.Sprintf("k/p%d", i))
			var got mvcc.Value
			if err := co.Run(p, func(tx *txn.Txn) error {
				v, err := tx.Get(p, key)
				got = v
				return err
			}); err != nil || got == nil {
				t.Errorf("write %d lost: %v", i, err)
			}
		}
	})
}

func TestAbortResolvesIntents(t *testing.T) {
	h := newHarness(t, 6)
	h.run(t, func(p *sim.Proc) {
		co := h.coord(simnet.USEast1)
		tx := co.Begin(0)
		if err := tx.Put(p, mvcc.Key("k/ab"), mvcc.Value("doomed")); err != nil {
			t.Error(err)
			return
		}
		tx.Abort(p)
		p.Sleep(500 * sim.Millisecond) // async resolution
		var got mvcc.Value
		if err := co.Run(p, func(tx2 *txn.Txn) error {
			v, err := tx2.Get(p, mvcc.Key("k/ab"))
			got = v
			return err
		}); err != nil || got != nil {
			t.Errorf("aborted write visible: %q %v", got, err)
		}
		lh, _ := h.c.Stores[h.desc.Leaseholder].Replica(h.desc.RangeID)
		if lh.EngineForBulkLoad().IntentCount() != 0 {
			t.Error("aborted intents not cleaned up")
		}
	})
}

func TestCommitWaitOnlyForFutureTimestamps(t *testing.T) {
	h := newHarness(t, 7)
	h.run(t, func(p *sim.Proc) {
		co := h.coord(simnet.USEast1)
		// LAG-range writes commit at present time: no commit wait.
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("k/cw"), mvcc.Value("x"))
		}); err != nil {
			t.Error(err)
			return
		}
		if co.CommitWaits != 0 {
			t.Errorf("present-time commit waited %d times (%v total)", co.CommitWaits, co.CommitWaitTotal)
		}
	})
}

// Package txn implements the gateway-side transaction coordinator: begin /
// read / write / commit with serializable isolation, uncertainty-interval
// refreshes and restarts (paper §6.1), commit wait for future-time (global)
// transactions performed concurrently with lock release (§6.2), and the
// stale read-only transaction variants — exact and bounded staleness
// (§5.3).
package txn

import (
	"errors"
	"fmt"

	"mrdb/internal/hlc"
	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/obs"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// Coordinator creates transactions on one gateway node.
type Coordinator struct {
	Store  *kv.Store
	Sender *kv.DistSender

	// PipelineWrites replies to writes after proposal rather than after
	// replication (async consensus); the commit path proves every
	// pipelined write with QueryIntent before writing the commit record.
	// On by default via NewCoordinator.
	PipelineWrites bool

	// FollowerReadPatience, when non-zero, lets follower replicas wait up
	// to this long for their closed timestamp to catch up instead of
	// redirecting a read to the leaseholder (the paper's adaptive-policy
	// future work, §5.3.1).
	FollowerReadPatience sim.Duration

	// SpannerCommitWait, when true, performs commit wait *before*
	// releasing locks (resolving intents), as Spanner does; the default
	// (false) releases locks concurrently with the wait, which is the
	// paper's key latency optimization (§6.2). Exposed for the ablation
	// benchmark.
	SpannerCommitWait bool

	// Stats.
	Begun, Committed, Aborted, Restarts int64
	CommitWaits                         int64
	CommitWaitTotal                     sim.Duration
}

// NewCoordinator returns a coordinator bound to a gateway store.
func NewCoordinator(store *kv.Store, sender *kv.DistSender) *Coordinator {
	return &Coordinator{Store: store, Sender: sender, PipelineWrites: true}
}

// tracer returns the gateway store's tracer (nil-safe).
func (c *Coordinator) tracer() *obs.Tracer {
	if c.Store == nil {
		return nil
	}
	return c.Store.Obs
}

// Txn is one transaction attempt (an epoch); it is restarted in place on
// retryable errors.
type Txn struct {
	co *Coordinator
	kv *kv.Txn

	// AllowOnePC lets the transaction buffer a sole write and commit it
	// with a one-phase commit at the leaseholder (no intent ever becomes
	// visible). The SQL layer sets it for auto-commit statements.
	AllowOnePC bool

	writes    []mvcc.Key
	pipelined []mvcc.Key
	reads     []readSpan
	// buffered holds the candidate one-phase-commit write until commit
	// or until any other operation forces a flush.
	buffered     *mvcc.KeyValue
	finished     bool
	committed1PC bool
	epochOnly    bool // set once the txn restarted at least once
}

type readSpan struct {
	key mvcc.Key
	end mvcc.Key // nil for point reads
}

// Begin starts a transaction at the gateway's current HLC time.
func (c *Coordinator) Begin(priority int64) *Txn {
	c.Begun++
	return &Txn{co: c, kv: kv.GatewayTxn(c.Store, nil, priority)}
}

// ID returns the transaction's ID.
func (t *Txn) ID() mvcc.TxnID { return t.kv.Meta.ID }

// ReadTimestamp returns the current read timestamp.
func (t *Txn) ReadTimestamp() hlc.Timestamp { return t.kv.ReadTimestamp }

// ProvisionalCommitTimestamp returns the current provisional commit ts.
func (t *Txn) ProvisionalCommitTimestamp() hlc.Timestamp { return t.kv.Meta.WriteTimestamp }

// followerOK reports whether a fresh read of key may be served by any
// replica: true only for ranges with the leading closed-timestamp policy
// (GLOBAL tables), where present time is closed everywhere.
func (t *Txn) followerOK(key mvcc.Key) bool {
	desc, err := t.co.Sender.Catalog.Lookup(key)
	return err == nil && desc.Policy == kv.ClosedTSLead
}

// restartError converts a conflict into a retry decision for RunTxn.
func (t *Txn) restartError(reason string, minTS hlc.Timestamp) error {
	return &kv.RetryableTxnError{TxnID: t.kv.Meta.ID, Reason: reason, MinTimestamp: minTS}
}

// flushBuffered sends a buffered one-phase-commit candidate through the
// normal write path; it must run before any other operation.
func (t *Txn) flushBuffered(p *sim.Proc) error {
	if t.buffered == nil {
		return nil
	}
	pair := *t.buffered
	t.buffered = nil
	return t.putSend(p, pair.Key, pair.Value)
}

// Get reads key at the transaction's read timestamp.
func (t *Txn) Get(p *sim.Proc, key mvcc.Key) (mvcc.Value, error) {
	return t.get(p, key, false)
}

// GetForUpdate reads key and acquires an exclusive unreplicated lock on it
// (SELECT FOR UPDATE), serializing read-modify-write transactions without
// restarts. Locking reads always go to the leaseholder.
func (t *Txn) GetForUpdate(p *sim.Proc, key mvcc.Key) (mvcc.Value, error) {
	return t.get(p, key, true)
}

func (t *Txn) get(p *sim.Proc, key mvcc.Key, forUpdate bool) (mvcc.Value, error) {
	if err := t.flushBuffered(p); err != nil {
		return nil, err
	}
	for {
		req := &kv.GetRequest{
			Key:           key,
			Timestamp:     t.kv.ReadTimestamp,
			Txn:           t.kv,
			Uncertainty:   true,
			FollowerRead:  !forUpdate && t.followerOK(key),
			CanBumpReadTS: len(t.reads) == 0,
			ForUpdate:     forUpdate,
			WaitForClosed: t.co.FollowerReadPatience,
		}
		resp := t.co.Sender.Send(p, req)
		if resp.Err == nil {
			if !resp.Get.BumpedTS.IsEmpty() && t.kv.ReadTimestamp.Less(resp.Get.BumpedTS) {
				t.adoptReadTS(resp.Get.BumpedTS)
			}
			t.reads = append(t.reads, readSpan{key: append(mvcc.Key(nil), key...)})
			return resp.Get.Value, nil
		}
		if err := t.handleReadErr(p, resp.Err); err != nil {
			return nil, err
		}
	}
}

// Scan reads [start, end) up to max rows.
func (t *Txn) Scan(p *sim.Proc, start, end mvcc.Key, max int) ([]mvcc.KeyValue, error) {
	if err := t.flushBuffered(p); err != nil {
		return nil, err
	}
	for {
		req := &kv.ScanRequest{
			StartKey: start, EndKey: end, MaxRows: max,
			Timestamp:    t.kv.ReadTimestamp,
			Txn:          t.kv,
			Uncertainty:  true,
			FollowerRead: t.followerOK(start),
		}
		resp := t.co.Sender.Send(p, req)
		if resp.Err == nil {
			t.reads = append(t.reads, readSpan{
				key: append(mvcc.Key(nil), start...),
				end: append(mvcc.Key(nil), end...),
			})
			return resp.Scan.Rows, nil
		}
		if err := t.handleReadErr(p, resp.Err); err != nil {
			return nil, err
		}
	}
}

// handleReadErr digests a read failure: uncertainty errors trigger a
// distributed refresh (retry on success, restart on failure); aborts
// propagate.
func (t *Txn) handleReadErr(p *sim.Proc, err error) error {
	var ue *mvcc.UncertaintyError
	if errors.As(err, &ue) {
		newTS := ue.ValueTimestamp
		if t.refreshReads(p, newTS) {
			t.adoptReadTS(newTS)
			return nil // retry the read
		}
		t.co.Restarts++
		return t.restartError("uncertainty refresh failed", newTS)
	}
	var ta *kv.TxnAbortedError
	if errors.As(err, &ta) {
		return err
	}
	return err
}

// adoptReadTS ratchets the read timestamp (and the provisional commit
// timestamp, which must always be >= the read timestamp).
func (t *Txn) adoptReadTS(ts hlc.Timestamp) {
	if t.kv.ReadTimestamp.Less(ts) {
		t.kv.ReadTimestamp = ts
	}
	if t.kv.Meta.WriteTimestamp.Less(ts) {
		t.kv.Meta.WriteTimestamp = ts
	}
}

// refreshReads verifies every prior read remains valid at newTS (paper
// §6.1: "checking whether the values previously read by the transaction
// remain unchanged at the newer timestamp"). Spans refresh in parallel;
// reads of GLOBAL tables refresh at the nearest replica when possible.
func (t *Txn) refreshReads(p *sim.Proc, newTS hlc.Timestamp) bool {
	if len(t.reads) == 0 {
		return true
	}
	sp, done := t.co.tracer().StartIn(p, "txn.refresh")
	defer done()
	sp.SetTagInt("spans", int64(len(t.reads)))
	s := t.co.Store.Sim
	wg := s.GetWaitGroup()
	wg.Add(len(t.reads))
	failed := false
	for _, span := range t.reads {
		span := span
		s.Spawn("txn/refresh", func(wp *sim.Proc) {
			defer wg.Done()
			obs.SetProcSpan(wp, sp)
			req := &kv.RefreshRequest{
				Key: span.key, EndKey: span.end,
				FromTS: t.kv.ReadTimestamp, ToTS: newTS,
				TxnID:        t.kv.Meta.ID,
				FollowerRead: t.followerOK(span.key),
			}
			resp := t.co.Sender.Send(wp, req)
			if resp.Err != nil || !resp.Refresh.Success {
				failed = true
			}
		})
	}
	wg.Wait(p)
	wg.Release()
	return !failed
}

// Put writes key=value. For one-phase-commit-eligible transactions the
// sole write is buffered at the coordinator and committed together with
// the transaction (CockroachDB's 1PC); otherwise it becomes a provisional
// intent immediately.
func (t *Txn) Put(p *sim.Proc, key mvcc.Key, value mvcc.Value) error {
	if t.AllowOnePC && t.buffered == nil && len(t.writes) == 0 {
		t.kv.Meta.Key = append(mvcc.Key(nil), key...)
		t.buffered = &mvcc.KeyValue{Key: append(mvcc.Key(nil), key...), Value: value}
		return nil
	}
	if err := t.flushBuffered(p); err != nil {
		return err
	}
	return t.putSend(p, key, value)
}

// putSend writes an intent through the leaseholder.
func (t *Txn) putSend(p *sim.Proc, key mvcc.Key, value mvcc.Value) error {
	if len(t.writes) == 0 {
		// First write anchors the transaction record's range.
		t.kv.Meta.Key = append(mvcc.Key(nil), key...)
	}
	req := &kv.PutRequest{
		Key: key, Value: value,
		Timestamp: t.kv.Meta.WriteTimestamp,
		Txn:       t.kv,
		Pipelined: t.co.PipelineWrites,
	}
	resp := t.co.Sender.Send(p, req)
	if resp.Err != nil {
		return resp.Err
	}
	if t.kv.Meta.WriteTimestamp.Less(resp.Put.WriteTimestamp) {
		t.kv.Meta.WriteTimestamp = resp.Put.WriteTimestamp
	}
	t.writes = append(t.writes, append(mvcc.Key(nil), key...))
	if req.Pipelined {
		t.pipelined = append(t.pipelined, t.writes[len(t.writes)-1])
	}
	return nil
}

// Del deletes key (writes a tombstone intent).
func (t *Txn) Del(p *sim.Proc, key mvcc.Key) error { return t.Put(p, key, nil) }

// PutParallel issues a set of writes concurrently and waits for all of
// them; it models CockroachDB's batched/pipelined writes so that multi-key
// statements pay the max, not the sum, of per-range latencies.
func (t *Txn) PutParallel(p *sim.Proc, kvs []mvcc.KeyValue) error {
	if len(kvs) == 0 {
		return nil
	}
	if t.AllowOnePC && t.buffered == nil && len(t.writes) == 0 && len(kvs) == 1 {
		t.kv.Meta.Key = append(mvcc.Key(nil), kvs[0].Key...)
		t.buffered = &mvcc.KeyValue{Key: append(mvcc.Key(nil), kvs[0].Key...), Value: kvs[0].Value}
		return nil
	}
	if err := t.flushBuffered(p); err != nil {
		return err
	}
	if len(t.writes) == 0 {
		t.kv.Meta.Key = append(mvcc.Key(nil), kvs[0].Key...)
	}
	reqs := make([]interface{}, len(kvs))
	for i, pair := range kvs {
		reqs[i] = &kv.PutRequest{Key: pair.Key, Value: pair.Value, Timestamp: t.kv.Meta.WriteTimestamp, Txn: t.kv, Pipelined: t.co.PipelineWrites}
	}
	resps := t.co.Sender.SendBatch(p, reqs)
	for i, resp := range resps {
		if resp.Err != nil {
			return resp.Err
		}
		if t.kv.Meta.WriteTimestamp.Less(resp.Put.WriteTimestamp) {
			t.kv.Meta.WriteTimestamp = resp.Put.WriteTimestamp
		}
		t.writes = append(t.writes, append(mvcc.Key(nil), kvs[i].Key...))
		if t.co.PipelineWrites {
			t.pipelined = append(t.pipelined, t.writes[len(t.writes)-1])
		}
	}
	return nil
}

// GetParallel issues point reads concurrently, preserving input order in
// the results.
func (t *Txn) GetParallel(p *sim.Proc, keys []mvcc.Key) ([]mvcc.Value, error) {
	if err := t.flushBuffered(p); err != nil {
		return nil, err
	}
	out := make([]mvcc.Value, len(keys))
	var firstErr error
	canBump := len(t.reads) == 0 && len(keys) == 1
	reqs := make([]interface{}, len(keys))
	for i, key := range keys {
		reqs[i] = &kv.GetRequest{
			Key: key, Timestamp: t.kv.ReadTimestamp, Txn: t.kv,
			Uncertainty: true, FollowerRead: t.followerOK(key),
			CanBumpReadTS: canBump,
		}
	}
	for i, resp := range t.co.Sender.SendBatch(p, reqs) {
		if resp.Err != nil {
			if firstErr == nil {
				firstErr = resp.Err
			}
			continue
		}
		if !resp.Get.BumpedTS.IsEmpty() && t.kv.ReadTimestamp.Less(resp.Get.BumpedTS) {
			t.adoptReadTS(resp.Get.BumpedTS)
		}
		out[i] = resp.Get.Value
	}
	if firstErr != nil {
		if err := t.handleReadErr(p, firstErr); err != nil {
			return nil, err
		}
		// A refresh succeeded: retry the whole batch.
		return t.GetParallel(p, keys)
	}
	for _, key := range keys {
		t.reads = append(t.reads, readSpan{key: append(mvcc.Key(nil), key...)})
	}
	return out, nil
}

// Commit finalizes the transaction. For read-write transactions this
// writes the commit record through consensus, then resolves intents and
// performs commit wait concurrently (§6.2); for read-only transactions it
// only commit-waits if the read timestamp leads the local clock.
func (t *Txn) Commit(p *sim.Proc) error {
	sp, done := t.co.tracer().StartIn(p, "txn.commit")
	defer done()
	_ = sp
	if t.finished {
		if t.committed1PC {
			return nil
		}
		return fmt.Errorf("txn: already finished")
	}
	if t.buffered != nil {
		ok, err := t.commit1PC(p)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		// Declined: fall back to the two-phase path.
		if err := t.flushBuffered(p); err != nil {
			return err
		}
	}
	t.finished = true

	if len(t.writes) == 0 {
		// Read-only: paper §6.2 — a reader that observed a future-time
		// value commit waits until the value is within every node's
		// uncertainty window.
		t.commitWait(p, t.kv.ReadTimestamp)
		t.co.Store.Registry.Abort(t.kv.Meta.ID) // record is vestigial
		t.co.Store.Registry.GC(t.kv.Meta.ID)
		t.co.Committed++
		return nil
	}

	commitTS := t.kv.Meta.WriteTimestamp
	if t.kv.ReadTimestamp.Less(commitTS) {
		// Reads must be valid at the commit timestamp (paper §5.1.1:
		// long-running transactions Read Refresh on commit). This must
		// precede the commit record: a failed refresh means restart.
		if !t.refreshReads(p, commitTS) {
			t.co.Restarts++
			t.co.Store.Registry.Abort(t.kv.Meta.ID)
			t.asyncResolve(p, mvcc.Aborted, hlc.Timestamp{})
			return t.restartError("commit refresh failed", commitTS)
		}
		t.kv.ReadTimestamp = commitTS
	}

	// Parallel commit (CockroachDB's parallel commits): write the commit
	// record in STAGING state concurrently with proving the pipelined
	// writes (QueryIntent barrier), then finalize. This keeps a remote
	// single-statement write at two WAN round trips instead of three.
	stage := len(t.pipelined) > 0
	var proveErr error
	proveDone := sim.NewFuture[struct{}](t.co.Store.Sim)
	parent := obs.ProcSpan(p)
	if stage {
		t.co.Store.Sim.Spawn("txn/prove", func(wp *sim.Proc) {
			obs.SetProcSpan(wp, parent)
			proveErr = t.proveWrites(wp)
			proveDone.Set(struct{}{})
		})
	} else {
		proveDone.Set(struct{}{})
	}

	// The staging phase: the commit record write (STAGING when pipelined
	// writes are still being proven) overlapped with the QueryIntent proofs.
	stageName := "txn.commit_record"
	if stage {
		stageName = "txn.stage"
	}
	ssp, stageDone := t.co.tracer().StartIn(p, stageName)
	_ = ssp
	resp := t.co.Sender.Send(p, &kv.EndTxnRequest{Txn: t.kv, Commit: true, CommitTS: commitTS, Stage: stage})
	proveDone.Wait(p)
	stageDone()
	if resp.Err != nil {
		var ta *kv.TxnAbortedError
		if errors.As(resp.Err, &ta) {
			t.asyncResolve(p, mvcc.Aborted, hlc.Timestamp{})
			t.co.Aborted++
			return resp.Err
		}
		// Transport or consensus failure after EndTxn was sent: the record
		// may be untouched, staged, or already committed (the registry
		// serialized which). It must not be abandoned in a pending state —
		// pushers refuse to abort staging records, so a later writer on our
		// keys would wait forever. Resolve it now, one way or the other; the
		// caller still sees the (ambiguous) error either way.
		reg := t.co.Store.Registry
		reg.AbortStaged(t.kv.Meta.ID)
		if st, cts := reg.Status(t.kv.Meta.ID); st == mvcc.Committed {
			t.asyncResolve(p, mvcc.Committed, cts)
			t.co.Committed++
		} else {
			reg.Abort(t.kv.Meta.ID)
			t.asyncResolve(p, mvcc.Aborted, hlc.Timestamp{})
			t.co.Aborted++
		}
		return resp.Err
	}
	if stage {
		if proveErr != nil {
			// A pipelined write was lost: roll the staged record back
			// and retry the transaction.
			t.co.Restarts++
			t.co.Store.Registry.AbortStaged(t.kv.Meta.ID)
			t.asyncResolve(p, mvcc.Aborted, hlc.Timestamp{})
			return proveErr
		}
		if err := t.co.Store.Registry.FinalizeStaged(t.kv.Meta.ID); err != nil {
			return err
		}
		t.pipelined = nil
	}

	if t.co.SpannerCommitWait {
		// Ablation: hold locks through the wait, then release.
		t.commitWait(p, commitTS)
		t.asyncResolve(p, mvcc.Committed, commitTS)
	} else {
		// Paper §6.2: "CRDB performs this wait concurrently with
		// releasing locks."
		t.asyncResolve(p, mvcc.Committed, commitTS)
		t.commitWait(p, commitTS)
	}
	t.co.Committed++
	return nil
}

// proveWrites issues parallel QueryIntent requests for every pipelined
// write and fails if any intent is missing.
func (t *Txn) proveWrites(p *sim.Proc) error {
	sp, done := t.co.tracer().StartIn(p, "txn.prove")
	defer done()
	sp.SetTagInt("writes", int64(len(t.pipelined)))
	reqs := make([]interface{}, len(t.pipelined))
	for i, key := range t.pipelined {
		reqs[i] = &kv.QueryIntentRequest{
			Key: key, TxnID: t.kv.Meta.ID, Epoch: t.kv.Meta.Epoch,
		}
	}
	missing := false
	for _, resp := range t.co.Sender.SendBatch(p, reqs) {
		if resp.Err != nil {
			return resp.Err
		}
		if !resp.QueryIntent.Found {
			missing = true
		}
	}
	if missing {
		return t.restartError("pipelined write lost", t.kv.Meta.WriteTimestamp)
	}
	return nil
}

// commit1PC attempts a one-phase commit of the buffered write, refreshing
// the transaction's reads server-side. It returns false (and leaves the
// buffer intact) when the server declines.
func (t *Txn) commit1PC(p *sim.Proc) (bool, error) {
	pair := *t.buffered
	var spans [][2]mvcc.Key
	for _, rs := range t.reads {
		spans = append(spans, [2]mvcc.Key{rs.key, rs.end})
	}
	req := &kv.PutRequest{
		Key: pair.Key, Value: pair.Value,
		Timestamp:  t.kv.Meta.WriteTimestamp,
		Txn:        t.kv,
		Commit1PC:  true,
		ReadSpans:  spans,
		ReadFromTS: t.kv.ReadTimestamp,
	}
	resp := t.co.Sender.Send(p, req)
	if resp.Err != nil {
		var ta *kv.TxnAbortedError
		if errors.As(resp.Err, &ta) {
			t.finished = true
			t.buffered = nil
			t.co.Aborted++
		}
		return false, resp.Err
	}
	if resp.Put.Declined1PC {
		return false, nil
	}
	t.finished = true
	t.committed1PC = true
	t.buffered = nil
	t.co.Committed++
	t.commitWait(p, resp.Put.WriteTimestamp)
	return true, nil
}

// commitWait parks p until the gateway's HLC passes ts.
func (t *Txn) commitWait(p *sim.Proc, ts hlc.Timestamp) {
	d := t.co.Store.Clock.NowAfter(ts)
	if d > 0 {
		sp := t.co.tracer().StartChild("txn.commitwait", obs.ProcSpan(p))
		sp.SetTagDuration("wait", d)
		sp.SetTagDuration("max_offset", t.co.Store.Clock.MaxOffset())
		t.co.CommitWaits++
		t.co.CommitWaitTotal += d
		p.Sleep(d)
		sp.Finish()
	}
}

// asyncResolve spawns intent resolution for every written key as one batch
// (one RPC per touched range). The resolution joins the transaction's trace
// (under a "txn.resolve" span) but runs concurrently with — never on — the
// caller's latency path.
func (t *Txn) asyncResolve(p *sim.Proc, status mvcc.TxnStatus, commitTS hlc.Timestamp) {
	if len(t.writes) == 0 {
		return
	}
	s := t.co.Store.Sim
	id := t.kv.Meta.ID
	parent := obs.ProcSpan(p)
	reqs := make([]interface{}, len(t.writes))
	for i, key := range t.writes {
		reqs[i] = &kv.ResolveIntentRequest{
			Key: key, TxnID: id, Status: status, CommitTS: commitTS,
		}
	}
	s.Spawn("txn/resolve", func(rp *sim.Proc) {
		sp := t.co.tracer().StartChild("txn.resolve", parent)
		obs.SetProcSpan(rp, sp)
		t.co.Sender.SendBatch(rp, reqs)
		sp.Finish()
	})
}

// Abort rolls the transaction back, resolving its intents as aborted.
func (t *Txn) Abort(p *sim.Proc) {
	if t.finished {
		return
	}
	t.finished = true
	t.buffered = nil
	t.co.Store.Registry.Abort(t.kv.Meta.ID)
	if len(t.writes) > 0 {
		t.co.Sender.Send(p, &kv.EndTxnRequest{Txn: t.kv, Commit: false})
		t.asyncResolve(p, mvcc.Aborted, hlc.Timestamp{})
	}
	t.co.Aborted++
}

// maxTxnAttempts bounds automatic retries in Run.
const maxTxnAttempts = 32

// Run executes fn transactionally, retrying on aborts and retryable errors
// with a fresh transaction each attempt (new ID, new timestamp).
func (c *Coordinator) Run(p *sim.Proc, fn func(t *Txn) error) error {
	var lastErr error
	for attempt := 0; attempt < maxTxnAttempts; attempt++ {
		t := c.Begin(0)
		err := fn(t)
		if err == nil {
			err = t.Commit(p)
		}
		if err == nil {
			return nil
		}
		t.Abort(p)
		lastErr = err
		var ta *kv.TxnAbortedError
		var rt *kv.RetryableTxnError
		if errors.As(err, &ta) || errors.As(err, &rt) {
			// Brief deterministic backoff to let the winner finish.
			p.Sleep(sim.Duration(1+p.Rand().Intn(4)) * sim.Millisecond)
			continue
		}
		return err
	}
	return fmt.Errorf("txn: gave up after %d attempts: %w", maxTxnAttempts, lastErr)
}

// --- Stale read-only transactions (paper §5.3) ---

// ExactStaleRead performs an AS OF SYSTEM TIME read at exactly ts,
// preferring the nearest replica. Stale reads have no uncertainty interval.
func (c *Coordinator) ExactStaleRead(p *sim.Proc, key mvcc.Key, ts hlc.Timestamp) (mvcc.Value, simnet.NodeID, error) {
	resp := c.Sender.Send(p, &kv.GetRequest{
		Key: key, Timestamp: ts, FollowerRead: true, Uncertainty: false,
		WaitForClosed: c.FollowerReadPatience,
	})
	if resp.Err != nil {
		return nil, 0, resp.Err
	}
	return resp.Get.Value, resp.Get.ServedBy, nil
}

// StaleScan performs an exact-staleness scan at ts from the nearest
// replicas of the touched ranges.
func (c *Coordinator) StaleScan(p *sim.Proc, start, end mvcc.Key, max int, ts hlc.Timestamp) ([]mvcc.KeyValue, error) {
	resp := c.Sender.Send(p, &kv.ScanRequest{
		StartKey: start, EndKey: end, MaxRows: max,
		Timestamp: ts, FollowerRead: true, Uncertainty: false,
	})
	if resp.Err != nil {
		return nil, resp.Err
	}
	return resp.Scan.Rows, nil
}

// BoundedStaleRead performs a with_min_timestamp(minTS) read (§5.3.2): it
// negotiates the highest locally servable timestamp and reads there if it
// satisfies the bound. If not and fallbackToLeaseholder is set, the read is
// served by the leaseholder at minTS; otherwise an error is returned.
func (c *Coordinator) BoundedStaleRead(p *sim.Proc, key mvcc.Key, minTS hlc.Timestamp, fallbackToLeaseholder bool) (mvcc.Value, hlc.Timestamp, simnet.NodeID, error) {
	end := append(append(mvcc.Key(nil), key...), 0)
	negotiated, err := c.Sender.NegotiateBoundedStaleness(p, [][2]mvcc.Key{{key, end}})
	if err != nil {
		return nil, hlc.Timestamp{}, 0, err
	}
	if now := c.Store.Clock.Now(); negotiated.IsEmpty() || now.Less(negotiated) {
		negotiated = now
	}
	if negotiated.Less(minTS) {
		if !fallbackToLeaseholder {
			return nil, hlc.Timestamp{}, 0, fmt.Errorf("txn: bounded staleness unsatisfiable: negotiated %s < bound %s", negotiated, minTS)
		}
		resp := c.Sender.Send(p, &kv.GetRequest{Key: key, Timestamp: minTS, Uncertainty: false})
		if resp.Err != nil {
			return nil, hlc.Timestamp{}, 0, resp.Err
		}
		return resp.Get.Value, minTS, resp.Get.ServedBy, nil
	}
	resp := c.Sender.Send(p, &kv.GetRequest{Key: key, Timestamp: negotiated, FollowerRead: true, Uncertainty: false})
	if resp.Err != nil {
		return nil, hlc.Timestamp{}, 0, resp.Err
	}
	return resp.Get.Value, negotiated, resp.Get.ServedBy, nil
}

// MaxStalenessToMinTS converts a with_max_staleness bound into the minimum
// acceptable timestamp at the gateway's clock.
func (c *Coordinator) MaxStalenessToMinTS(bound sim.Duration) hlc.Timestamp {
	return c.Store.Clock.Now().Add(-bound)
}

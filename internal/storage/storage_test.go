package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mrdb/internal/obs"
	"mrdb/internal/sim"
)

func newTestDisk(t *testing.T) (*sim.Simulation, *Disk) {
	t.Helper()
	s := sim.New(1)
	return s, NewDisk(s, 42, nil)
}

func TestEmptyWALRecovers(t *testing.T) {
	_, d := newTestDisk(t)
	w := d.WAL("r1/raft")
	recs, err := w.Records()
	if err != nil {
		t.Fatalf("empty WAL: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty WAL returned %d records", len(recs))
	}
	d.Crash()
	if recs, err = w.Records(); err != nil || len(recs) != 0 {
		t.Fatalf("empty WAL after crash: recs=%d err=%v", len(recs), err)
	}
}

func TestSyncMakesRecordsDurable(t *testing.T) {
	s, d := newTestDisk(t)
	w := d.WAL("r1/raft")
	w.Append([]byte("alpha"))
	w.Append([]byte("beta"))
	synced := false
	w.Sync(func() { synced = true })
	if synced {
		t.Fatal("fsync completed with no time passing")
	}
	s.RunFor(sim.Millisecond)
	if !synced {
		t.Fatal("fsync callback never fired")
	}
	d.Crash()
	recs, err := w.Records()
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if len(recs) != 2 || string(recs[0]) != "alpha" || string(recs[1]) != "beta" {
		t.Fatalf("recovered %q, want [alpha beta]", recs)
	}
}

func TestCrashDropsUnsyncedTail(t *testing.T) {
	s, d := newTestDisk(t)
	w := d.WAL("r1/raft")
	w.Append([]byte("durable"))
	w.Sync(nil)
	s.RunFor(sim.Millisecond)
	w.Append([]byte("volatile-1"))
	w.Append([]byte("volatile-2"))
	d.Crash()
	// At most a torn fragment of volatile-1's frame may survive; Records
	// must truncate it and return only the durable record.
	recs, err := w.Records()
	if err != nil {
		t.Fatalf("recovery after torn tail: %v", err)
	}
	if len(recs) != 1 || string(recs[0]) != "durable" {
		t.Fatalf("recovered %q, want [durable]", recs)
	}
	// The log must be clean after truncation: new appends recover fine.
	w.Append([]byte("post-crash"))
	w.Sync(nil)
	s.RunFor(sim.Millisecond)
	recs, err = w.Records()
	if err != nil || len(recs) != 2 || string(recs[1]) != "post-crash" {
		t.Fatalf("append after truncation: recs=%q err=%v", recs, err)
	}
}

func TestTornFragmentIsAlwaysIncomplete(t *testing.T) {
	// Across many crashes the torn fragment must never parse as a complete
	// record (the model persists at most a prefix of one in-flight frame).
	s := sim.New(7)
	for seed := int64(0); seed < 50; seed++ {
		d := NewDisk(s, seed, nil)
		w := d.WAL("w")
		w.Append(bytes.Repeat([]byte("x"), 100))
		d.Crash()
		recs, err := w.Records()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(recs) != 0 {
			t.Fatalf("seed %d: torn fragment parsed as a full record", seed)
		}
	}
}

func TestMidLogCorruptionFailsLoudly(t *testing.T) {
	s, d := newTestDisk(t)
	w := d.WAL("r1/raft")
	w.Append([]byte("first-record"))
	w.Append([]byte("second-record"))
	w.Sync(nil)
	s.RunFor(sim.Millisecond)
	// Flip a payload bit inside the first (mid-log, durable) record.
	w.FlipBit(frameHeader+2, 3)
	_, err := w.Records()
	var ce *ErrCorrupt
	if !errors.As(err, &ce) {
		t.Fatalf("corruption not detected: err=%v", err)
	}
	if ce.WAL != "r1/raft" || ce.Offset != 0 {
		t.Fatalf("wrong corruption site: %+v", ce)
	}
}

func TestLastDurableRecordCorruptionFailsLoudly(t *testing.T) {
	// Corruption below the durable prefix is never a torn tail, even on the
	// final record: the bytes were fsynced, so a bad CRC there is bit rot.
	s, d := newTestDisk(t)
	w := d.WAL("w")
	w.Append([]byte("only"))
	w.Sync(nil)
	s.RunFor(sim.Millisecond)
	w.FlipBit(w.DurableSize()-1, 0)
	if _, err := w.Records(); err == nil {
		t.Fatal("durable-record corruption went undetected")
	}
}

func TestCrashCancelsInflightFsync(t *testing.T) {
	s, d := newTestDisk(t)
	w := d.WAL("w")
	w.Append([]byte("doomed"))
	fired := false
	w.Sync(func() { fired = true })
	d.Crash() // before the fsync delay elapses
	s.RunFor(sim.Second)
	if fired {
		t.Fatal("fsync callback fired after crash")
	}
	if w.DurableSize() != 0 {
		t.Fatalf("durable size %d after crashed fsync", w.DurableSize())
	}
}

func TestResetDurableReplacesLog(t *testing.T) {
	s, d := newTestDisk(t)
	w := d.WAL("w")
	w.Append([]byte("old-1"))
	w.Append([]byte("old-2"))
	w.Sync(nil)
	s.RunFor(sim.Millisecond)
	w.ResetDurable([][]byte{[]byte("new-1")})
	d.Crash()
	recs, err := w.Records()
	if err != nil || len(recs) != 1 || string(recs[0]) != "new-1" {
		t.Fatalf("after reset+crash: recs=%q err=%v", recs, err)
	}
}

func TestResetInvalidatesInflightSync(t *testing.T) {
	s, d := newTestDisk(t)
	w := d.WAL("w")
	w.Append([]byte("pre-reset"))
	fired := false
	w.Sync(func() { fired = true })
	w.ResetDurable(nil)
	s.RunFor(sim.Second)
	if fired {
		t.Fatal("stale fsync completed against rewritten log")
	}
	if w.Size() != 0 {
		t.Fatalf("log not empty after reset: %d bytes", w.Size())
	}
}

func TestWALMetrics(t *testing.T) {
	s := sim.New(1)
	reg := obs.NewRegistry()
	d := NewDisk(s, 1, reg)
	w := d.WAL("w")
	w.Append([]byte("aaaa"))
	w.Append([]byte("bb"))
	w.Sync(nil)
	s.RunFor(sim.Millisecond)
	if got := reg.Counter("storage.wal.appends").Value(); got != 2 {
		t.Fatalf("appends=%d, want 2", got)
	}
	if got := reg.Counter("storage.wal.fsyncs").Value(); got != 1 {
		t.Fatalf("fsyncs=%d, want 1", got)
	}
	wantBytes := int64(2*frameHeader + 4 + 2)
	if got := reg.Counter("storage.wal.bytes").Value(); got != wantBytes {
		t.Fatalf("bytes=%d, want %d", got, wantBytes)
	}
}

func TestBlobsSurviveCrash(t *testing.T) {
	_, d := newTestDisk(t)
	d.PutBlob("r1/ckpt", []byte("checkpoint-v1"))
	d.PutBlob("nodemeta", []byte("epoch"))
	d.Crash()
	b, ok := d.GetBlob("r1/ckpt")
	if !ok || string(b) != "checkpoint-v1" {
		t.Fatalf("blob lost in crash: %q ok=%v", b, ok)
	}
	names := d.BlobNames()
	if fmt.Sprint(names) != "[nodemeta r1/ckpt]" {
		t.Fatalf("blob names %v", names)
	}
	d.DeleteBlob("nodemeta")
	if _, ok := d.GetBlob("nodemeta"); ok {
		t.Fatal("deleted blob still present")
	}
}

func TestFIFOSyncOrdering(t *testing.T) {
	s, d := newTestDisk(t)
	w := d.WAL("w")
	var order []int
	w.Append([]byte("one"))
	w.Sync(func() { order = append(order, 1) })
	w.Append([]byte("two"))
	w.Sync(func() { order = append(order, 2) })
	s.RunFor(sim.Millisecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("sync completion order %v, want [1 2]", order)
	}
	// When callback 2 fired, both records were durable (FIFO guarantee).
	if w.DurableSize() != w.Size() {
		t.Fatalf("durable %d != size %d after both syncs", w.DurableSize(), w.Size())
	}
}

// Package storage simulates per-node durable disks for mrdb.
//
// Production CockroachDB survives node failures because every Raft state
// transition is forced to disk before the node makes promises to its peers
// (paper §5.1: ranges recover from persisted Raft state after a crash). The
// simulator historically cheated: a "crashed" node kept all of its state in
// memory and restarted fully intact. This package supplies the missing
// layer: a Disk per node holding checksummed write-ahead logs and atomic
// checkpoint blobs, with fsync latency charged on the virtual clock and
// deterministic fault injection (torn tail on crash, bit-flip corruption
// for tests).
//
// Durability model:
//
//   - WAL appends land in a volatile tail; Sync makes the tail durable
//     after FsyncDelay of virtual time and then runs the caller's callback.
//     Syncs are FIFO: when a callback fires, every byte appended before
//     that Sync call is durable.
//   - Crash discards the volatile tail. At most one partially-written
//     record (a prefix of the first un-synced record, sized by the disk's
//     own deterministic RNG) survives past the durable prefix — the classic
//     torn write. Recovery truncates it cleanly.
//   - Blobs (checkpoints, node metadata) are written atomically and are
//     immediately durable, modeling write-to-temp + fsync + rename.
//   - Corruption below the durable prefix (bit rot, injected by tests) is
//     detected by per-record CRC32 and fails recovery loudly instead of
//     replaying garbage.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"

	"mrdb/internal/obs"
	"mrdb/internal/sim"
)

// DefaultFsyncDelay is the virtual-time cost of one fsync, tuned to a fast
// local SSD so that durability is visible in latency histograms without
// dominating WAN round trips.
const DefaultFsyncDelay = 250 * sim.Microsecond

// Disk is one node's simulated durable device. All state lives in memory,
// but the Disk distinguishes volatile bytes (appended, not yet synced) from
// durable bytes (survive Crash), so a node rebuilt from its Disk sees
// exactly what a real machine would find after power loss.
type Disk struct {
	sim     *sim.Simulation
	metrics *obs.Registry

	// rng drives torn-tail sizing. It is the disk's own generator, seeded
	// at construction, NOT the simulation RNG: disk faults must not perturb
	// the network-jitter random stream or runs with and without durability
	// would diverge everywhere.
	rng *rand.Rand

	// FsyncDelay is charged per Sync on the virtual clock.
	FsyncDelay sim.Duration

	wals  map[string]*WAL
	blobs map[string][]byte

	// incarnation is bumped on Crash; in-flight fsyncs from a previous
	// incarnation never complete (their callbacks are dropped).
	incarnation uint64
}

// NewDisk returns an empty disk bound to s. The seed isolates this disk's
// fault randomness from the simulation RNG; metrics may be nil.
func NewDisk(s *sim.Simulation, seed int64, metrics *obs.Registry) *Disk {
	return &Disk{
		sim:        s,
		metrics:    metrics,
		rng:        rand.New(rand.NewSource(seed)),
		FsyncDelay: DefaultFsyncDelay,
		wals:       map[string]*WAL{},
		blobs:      map[string][]byte{},
	}
}

// Metrics returns the registry this disk reports into (possibly nil; the
// obs API is nil-safe).
func (d *Disk) Metrics() *obs.Registry { return d.metrics }

// WAL returns the named log, creating it empty if needed.
func (d *Disk) WAL(name string) *WAL {
	w, ok := d.wals[name]
	if !ok {
		w = &WAL{disk: d, name: name}
		d.wals[name] = w
	}
	return w
}

// RemoveWAL deletes the named log entirely (replica removed from this node).
func (d *Disk) RemoveWAL(name string) { delete(d.wals, name) }

// WALNames returns all log names in sorted order.
func (d *Disk) WALNames() []string {
	names := make([]string, 0, len(d.wals))
	for n := range d.wals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PutBlob atomically replaces the named blob; the write is immediately
// durable (temp file + fsync + rename).
func (d *Disk) PutBlob(name string, data []byte) {
	d.blobs[name] = append([]byte(nil), data...)
}

// GetBlob returns a copy of the named blob.
func (d *Disk) GetBlob(name string) ([]byte, bool) {
	b, ok := d.blobs[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// DeleteBlob removes the named blob.
func (d *Disk) DeleteBlob(name string) { delete(d.blobs, name) }

// BlobNames returns all blob names in sorted order.
func (d *Disk) BlobNames() []string {
	names := make([]string, 0, len(d.blobs))
	for n := range d.blobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Crash models power loss: every WAL loses its volatile tail except for at
// most one torn record fragment, and in-flight fsyncs never complete. Blobs
// are durable and survive. The disk remains usable — recovery reopens the
// same WALs.
func (d *Disk) Crash() {
	d.incarnation++
	for _, name := range d.WALNames() {
		d.wals[name].crash()
	}
}

// wal record framing: [4B big-endian payload length][4B CRC32(payload)][payload]
const frameHeader = 8

// WAL is an append-only checksummed log on a Disk.
type WAL struct {
	disk *Disk
	name string

	data []byte
	// durableLen is the prefix of data guaranteed to survive Crash.
	durableLen int
	// gen is bumped when the log is rewritten (Reset); it invalidates
	// in-flight syncs against the old contents.
	gen uint64
}

// Append frames and appends one record to the volatile tail. It does not
// block; call Sync to make it durable.
func (w *WAL) Append(payload []byte) {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	w.data = append(w.data, hdr[:]...)
	w.data = append(w.data, payload...)
	w.disk.metrics.Counter("storage.wal.appends").Inc()
	w.disk.metrics.Counter("storage.wal.bytes").Add(int64(frameHeader + len(payload)))
}

// Sync makes everything appended so far durable after the disk's fsync
// delay, then calls done (if non-nil). If the disk crashes or the log is
// rewritten before the fsync completes, done never runs — exactly like an
// fsync that never returned.
func (w *WAL) Sync(done func()) {
	target := len(w.data)
	inc := w.disk.incarnation
	gen := w.gen
	w.disk.sim.After(w.disk.FsyncDelay, func() {
		if w.disk.incarnation != inc || w.gen != gen {
			return
		}
		if target > w.durableLen {
			w.durableLen = target
		}
		w.disk.metrics.Counter("storage.wal.fsyncs").Inc()
		if done != nil {
			done()
		}
	})
}

// ResetDurable atomically replaces the log's contents with the given
// records, immediately durable (new file + fsync + rename, the standard
// log-rotation idiom). Used for checkpoint truncation and snapshot install.
func (w *WAL) ResetDurable(payloads [][]byte) {
	w.gen++
	w.data = nil
	w.durableLen = 0
	for _, p := range payloads {
		w.Append(p)
	}
	w.durableLen = len(w.data)
	if len(payloads) > 0 {
		w.disk.metrics.Counter("storage.wal.fsyncs").Inc()
	}
}

// Size returns the total byte length including the volatile tail.
func (w *WAL) Size() int { return len(w.data) }

// DurableSize returns the byte length guaranteed to survive Crash.
func (w *WAL) DurableSize() int { return w.durableLen }

// FlipBit corrupts the log in place (testing hook for bit rot). Flipping a
// bit below the durable prefix models silent media corruption.
func (w *WAL) FlipBit(byteOff int, bit uint) {
	if byteOff >= 0 && byteOff < len(w.data) {
		w.data[byteOff] ^= 1 << (bit % 8)
	}
}

// crash discards the volatile tail, leaving at most a prefix of the first
// un-synced record behind (the torn write). The fragment is strictly
// shorter than the full frame, so recovery always detects and discards it.
func (w *WAL) crash() {
	w.gen++
	if len(w.data) <= w.durableLen {
		return
	}
	lost := w.data[w.durableLen:]
	w.data = w.data[:w.durableLen]
	if len(lost) < frameHeader {
		// Not even a full header was in flight; nothing survives.
		return
	}
	frame := frameHeader + int(binary.BigEndian.Uint32(lost[0:4]))
	if frame > len(lost) {
		frame = len(lost)
	}
	fragLen := w.disk.rng.Intn(frame) // 0 <= fragLen < frame: always torn
	w.data = append(w.data, lost[:fragLen]...)
}

// ErrCorrupt reports a checksum failure below the durable prefix —
// irrecoverable media corruption, as opposed to a torn tail.
type ErrCorrupt struct {
	WAL    string
	Offset int
}

func (e *ErrCorrupt) Error() string {
	return fmt.Sprintf("storage: wal %q: CRC mismatch at durable offset %d (corruption)", e.WAL, e.Offset)
}

// Records parses the log and returns every intact record payload in append
// order. A malformed or checksum-failing record at or beyond the durable
// prefix is a torn tail: it and everything after it are truncated away and
// parsing succeeds. The same failure below the durable prefix is corruption
// and returns *ErrCorrupt — recovery must fail loudly rather than replay
// garbage.
func (w *WAL) Records() ([][]byte, error) {
	var out [][]byte
	off := 0
	for off < len(w.data) {
		ok := false
		if len(w.data)-off >= frameHeader {
			ln := int(binary.BigEndian.Uint32(w.data[off : off+4]))
			sum := binary.BigEndian.Uint32(w.data[off+4 : off+8])
			if off+frameHeader+ln <= len(w.data) {
				payload := w.data[off+frameHeader : off+frameHeader+ln]
				if crc32.ChecksumIEEE(payload) == sum {
					out = append(out, append([]byte(nil), payload...))
					off += frameHeader + ln
					ok = true
				}
			}
		}
		if !ok {
			if off < w.durableLen {
				return nil, &ErrCorrupt{WAL: w.name, Offset: off}
			}
			// Torn tail: discard it so the log is clean going forward.
			w.data = w.data[:off]
			if w.durableLen > off {
				w.durableLen = off
			}
			break
		}
	}
	return out, nil
}

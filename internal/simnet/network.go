package simnet

import (
	"fmt"

	"mrdb/internal/obs"
	"mrdb/internal/sim"
)

// Message is a network payload addressed to a node.
type Message struct {
	From    NodeID
	To      NodeID
	Payload interface{}
}

// Handler consumes messages delivered to a node. Handlers run in scheduler
// context and must not block; long work should be spawned as a Proc.
type Handler func(msg Message)

// Network delivers messages between nodes with topology-derived latency,
// deterministic jitter, and injectable failures.
type Network struct {
	Sim  *sim.Simulation
	Topo *Topology

	handlers map[NodeID]Handler
	// downNodes refuse to send or receive anything.
	downNodes map[NodeID]bool
	// partitioned holds directional blocks: an entry {a,b} drops a→b only.
	// Symmetric partitions insert both directions.
	partitioned map[[2]NodeID]bool
	// downRegions drop all traffic in or out of a region.
	downRegions map[Region]bool
	// slowLinks adds extra one-way latency per directed link.
	slowLinks map[[2]NodeID]sim.Duration

	// Stats
	MessagesSent    int64
	MessagesDropped int64
	BytesEstimate   int64

	// Tracer, when set, records a "net.rpc" span per RPC with per-message
	// link attribution (endpoints, regions, WAN classification, one-way
	// delay). Optional; nil-safe.
	Tracer *obs.Tracer
	// Metrics, when set, counts messages and RPC round trips, split by
	// WAN/local. Optional; nil-safe.
	Metrics *obs.Registry
}

// NewNetwork returns a network over the given simulation and topology.
func NewNetwork(s *sim.Simulation, topo *Topology) *Network {
	return &Network{
		Sim:         s,
		Topo:        topo,
		handlers:    map[NodeID]Handler{},
		downNodes:   map[NodeID]bool{},
		partitioned: map[[2]NodeID]bool{},
		downRegions: map[Region]bool{},
		slowLinks:   map[[2]NodeID]sim.Duration{},
	}
}

// Register installs the message handler for a node.
func (n *Network) Register(id NodeID, h Handler) { n.handlers[id] = h }

// Unregister removes a node's handler.
func (n *Network) Unregister(id NodeID) { delete(n.handlers, id) }

// CrashNode makes a node unreachable until RestartNode.
func (n *Network) CrashNode(id NodeID) { n.downNodes[id] = true }

// RestartNode brings a crashed node back.
func (n *Network) RestartNode(id NodeID) { delete(n.downNodes, id) }

// NodeDown reports whether the node is crashed.
func (n *Network) NodeDown(id NodeID) bool { return n.downNodes[id] }

// FailRegion drops all traffic to and from every node in the region,
// simulating a whole-region outage (paper §2.2 REGION survivability).
func (n *Network) FailRegion(r Region) { n.downRegions[r] = true }

// RecoverRegion ends a region outage.
func (n *Network) RecoverRegion(r Region) { delete(n.downRegions, r) }

// Partition blocks traffic between two specific nodes in both directions.
func (n *Network) Partition(a, b NodeID) {
	n.partitioned[[2]NodeID{a, b}] = true
	n.partitioned[[2]NodeID{b, a}] = true
}

// Heal removes a pairwise partition (both directions).
func (n *Network) Heal(a, b NodeID) {
	delete(n.partitioned, [2]NodeID{a, b})
	delete(n.partitioned, [2]NodeID{b, a})
}

// PartitionOneWay blocks traffic from a to b only; b can still reach a.
// Real WAN faults are rarely symmetric (asymmetric routing, unidirectional
// congestion), and one-way loss exercises failure-detection paths that
// symmetric partitions cannot.
func (n *Network) PartitionOneWay(a, b NodeID) {
	n.partitioned[[2]NodeID{a, b}] = true
}

// HealOneWay removes the a→b block, leaving any b→a block in place.
func (n *Network) HealOneWay(a, b NodeID) {
	delete(n.partitioned, [2]NodeID{a, b})
}

// SlowLink adds extra one-way latency to every message from a to b,
// modeling a congested or degraded link. It stacks with the topology
// latency and jitter. Zero or negative extra clears the link.
func (n *Network) SlowLink(a, b NodeID, extra sim.Duration) {
	if extra <= 0 {
		delete(n.slowLinks, [2]NodeID{a, b})
		return
	}
	n.slowLinks[[2]NodeID{a, b}] = extra
}

// HealLink removes extra latency in both directions between a and b.
func (n *Network) HealLink(a, b NodeID) {
	delete(n.slowLinks, [2]NodeID{a, b})
	delete(n.slowLinks, [2]NodeID{b, a})
}

// WAN reports whether traffic between the two nodes crosses regions.
func (n *Network) WAN(a, b NodeID) bool {
	la, oka := n.Topo.LocalityOf(a)
	lb, okb := n.Topo.LocalityOf(b)
	return oka && okb && la.Region != lb.Region
}

func (n *Network) blocked(from, to NodeID) bool {
	if n.downNodes[from] || n.downNodes[to] {
		return true
	}
	if n.partitioned[[2]NodeID{from, to}] {
		return true
	}
	if len(n.downRegions) > 0 {
		if lf, ok := n.Topo.LocalityOf(from); ok && n.downRegions[lf.Region] {
			return true
		}
		if lt, ok := n.Topo.LocalityOf(to); ok && n.downRegions[lt.Region] {
			return true
		}
	}
	return false
}

// delay computes the one-way latency for a message, with jitter.
func (n *Network) delay(from, to NodeID) sim.Duration {
	base := n.Topo.OneWay(from, to)
	if n.Topo.Jitter > 0 {
		// Uniform in [1-j, 1+j]; deterministic via the sim RNG.
		f := 1 + n.Topo.Jitter*(2*n.Sim.Rand().Float64()-1)
		base = sim.Duration(float64(base) * f)
	}
	if base < 10*sim.Microsecond {
		base = 10 * sim.Microsecond
	}
	return base + n.slowLinks[[2]NodeID{from, to}]
}

// Send delivers payload to the destination node's handler after the
// topology-derived one-way delay. Messages to crashed or partitioned nodes
// are silently dropped, as on a real network.
func (n *Network) Send(from, to NodeID, payload interface{}) {
	n.MessagesSent++
	n.Metrics.Counter("net.send").Inc()
	if n.WAN(from, to) {
		n.Metrics.Counter("net.send.wan").Inc()
	}
	if n.blocked(from, to) {
		n.MessagesDropped++
		return
	}
	d := n.delay(from, to)
	n.Sim.After(d, func() {
		// Re-check at delivery time: the destination may have crashed
		// while the message was in flight.
		if n.blocked(from, to) {
			n.MessagesDropped++
			return
		}
		h, ok := n.handlers[to]
		if !ok {
			n.MessagesDropped++
			return
		}
		h(Message{From: from, To: to, Payload: payload})
	})
}

// RPCRequest wraps a payload with a reply future so callers can block on the
// response in virtual time.
type RPCRequest struct {
	From    NodeID
	Payload interface{}
	reply   *sim.Future[interface{}]
	net     *Network
	to      NodeID
}

// Reply sends the response back to the caller with network latency.
func (r *RPCRequest) Reply(resp interface{}) {
	if r.net.blocked(r.to, r.From) {
		r.net.MessagesDropped++
		return
	}
	d := r.net.delay(r.to, r.From)
	r.net.Sim.After(d, func() {
		if r.net.blocked(r.to, r.From) || r.reply.Done() {
			return
		}
		r.reply.Set(resp)
	})
}

// ErrRPC represents an RPC transport failure (timeout / unreachable).
type ErrRPC struct{ Reason string }

func (e *ErrRPC) Error() string { return "rpc: " + e.Reason }

// SendRPC issues a request to the destination node and parks p until a reply
// arrives or the timeout expires. The destination handler receives an
// *RPCRequest payload and must call Reply.
func (n *Network) SendRPC(p *sim.Proc, from, to NodeID, payload interface{}, timeout sim.Duration) (interface{}, error) {
	wan := n.WAN(from, to)
	n.Metrics.Counter("net.rpc").Inc()
	if wan {
		n.Metrics.Counter("net.rpc.wan").Inc()
	}
	sp := n.Tracer.StartChild("net.rpc", obs.ProcSpan(p))
	if sp != nil {
		sp.SetTagInt("from", int64(from)).SetTagInt("to", int64(to))
		if lf, ok := n.Topo.LocalityOf(from); ok {
			sp.SetTag("from_region", string(lf.Region))
		}
		if lt, ok := n.Topo.LocalityOf(to); ok {
			sp.SetTag("to_region", string(lt.Region))
		}
		sp.SetTag("wan", fmt.Sprintf("%t", wan))
		sp.SetTagDuration("link_rtt", n.Topo.NodeRTT(from, to))
	}
	reply := sim.NewFuture[interface{}](n.Sim)
	req := &RPCRequest{From: from, Payload: payload, reply: reply, net: n, to: to}
	n.MessagesSent++
	if n.blocked(from, to) {
		n.MessagesDropped++
		err := &ErrRPC{Reason: fmt.Sprintf("node %d unreachable from %d", to, from)}
		sp.SetError(err)
		sp.Finish()
		return nil, err
	}
	d := n.delay(from, to)
	sp.SetTagDuration("req_delay", d)
	n.Sim.After(d, func() {
		if n.blocked(from, to) {
			n.MessagesDropped++
			return
		}
		h, ok := n.handlers[to]
		if !ok {
			n.MessagesDropped++
			return
		}
		h(Message{From: from, To: to, Payload: req})
	})
	if timeout <= 0 {
		timeout = 10 * sim.Second
	}
	start := n.Sim.Now()
	v, ok := reply.WaitTimeout(p, timeout)
	n.Metrics.Histogram("net.rpc.rtt").RecordDuration(n.Sim.Now().Sub(start))
	if !ok {
		err := &ErrRPC{Reason: fmt.Sprintf("timeout after %s calling node %d", timeout, to)}
		sp.SetError(err)
		sp.Finish()
		return nil, err
	}
	sp.Finish()
	return v, nil
}

package simnet

import (
	"testing"

	"mrdb/internal/sim"
)

// threeRegionTopo builds a 3-region topology with one node per zone,
// 3 zones per region: node IDs 1..9.
func threeRegionTopo() *Topology {
	t := NewTable1Topology()
	t.Jitter = 0 // exact latencies for assertions
	id := NodeID(1)
	for _, r := range []Region{USEast1, EuropeW2, AsiaNE1} {
		for _, z := range []string{"a", "b", "c"} {
			t.AddNode(id, Locality{Region: r, Zone: Zone(string(r) + "-" + z)})
			id++
		}
	}
	return t
}

func TestTable1Matrix(t *testing.T) {
	topo := NewTable1Topology()
	cases := []struct {
		a, b Region
		ms   int
	}{
		{USEast1, USWest1, 63},
		{USWest1, USEast1, 63}, // symmetric
		{USEast1, EuropeW2, 87},
		{USEast1, AsiaNE1, 155},
		{USEast1, AustralSE1, 198},
		{USWest1, EuropeW2, 132},
		{USWest1, AsiaNE1, 90},
		{USWest1, AustralSE1, 156},
		{EuropeW2, AsiaNE1, 222},
		{EuropeW2, AustralSE1, 274},
		{AsiaNE1, AustralSE1, 113},
	}
	for _, c := range cases {
		if got := topo.RegionRTT(c.a, c.b); got != sim.Duration(c.ms)*sim.Millisecond {
			t.Errorf("RTT(%s,%s) = %v, want %dms", c.a, c.b, got, c.ms)
		}
	}
}

func TestNodeRTTTiers(t *testing.T) {
	topo := threeRegionTopo()
	// Same node.
	if topo.NodeRTT(1, 1) >= topo.IntraZoneRTT {
		t.Error("self RTT should be below intra-zone RTT")
	}
	// Same region, different zone: nodes 1 and 2.
	if got := topo.NodeRTT(1, 2); got != topo.IntraRegionRTT {
		t.Errorf("intra-region RTT = %v", got)
	}
	// Cross region: node 1 (us-east1) to node 4 (europe-west2).
	if got := topo.NodeRTT(1, 4); got != 87*sim.Millisecond {
		t.Errorf("cross-region RTT = %v, want 87ms", got)
	}
	if topo.OneWay(1, 4) != topo.NodeRTT(1, 4)/2 {
		t.Error("one-way != RTT/2")
	}
}

func TestTopologyQueries(t *testing.T) {
	topo := threeRegionTopo()
	regions := topo.Regions()
	if len(regions) != 3 {
		t.Fatalf("regions = %v", regions)
	}
	if got := topo.NodesInRegion(USEast1); len(got) != 3 || got[0] != 1 {
		t.Fatalf("us-east1 nodes = %v", got)
	}
	if got := topo.Nodes(); len(got) != 9 {
		t.Fatalf("nodes = %v", got)
	}
	topo.RemoveNode(9)
	if got := topo.Nodes(); len(got) != 8 {
		t.Fatalf("after remove, nodes = %v", got)
	}
}

func TestSendLatency(t *testing.T) {
	s := sim.New(1)
	topo := threeRegionTopo()
	n := NewNetwork(s, topo)
	var deliveredAt sim.Time
	n.Register(4, func(m Message) { deliveredAt = s.Now() })
	n.Send(1, 4, "hello")
	s.Run()
	want := sim.Time(87 * sim.Millisecond / 2)
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestRPCRoundTrip(t *testing.T) {
	s := sim.New(1)
	topo := threeRegionTopo()
	n := NewNetwork(s, topo)
	n.Register(4, func(m Message) {
		req := m.Payload.(*RPCRequest)
		req.Reply("pong:" + req.Payload.(string))
	})
	var got string
	var rtt sim.Duration
	s.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		resp, err := n.SendRPC(p, 1, 4, "ping", 0)
		if err != nil {
			t.Errorf("rpc failed: %v", err)
			return
		}
		got = resp.(string)
		rtt = p.Now().Sub(start)
	})
	s.Run()
	if got != "pong:ping" {
		t.Fatalf("got %q", got)
	}
	if rtt != 87*sim.Millisecond {
		t.Fatalf("rtt = %v, want 87ms", rtt)
	}
}

func TestRPCTimeout(t *testing.T) {
	s := sim.New(1)
	topo := threeRegionTopo()
	n := NewNetwork(s, topo)
	n.Register(4, func(m Message) { /* never replies */ })
	var err error
	s.Spawn("client", func(p *sim.Proc) {
		_, err = n.SendRPC(p, 1, 4, "ping", 100*sim.Millisecond)
	})
	s.Run()
	if err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestCrashNodeDropsTraffic(t *testing.T) {
	s := sim.New(1)
	topo := threeRegionTopo()
	n := NewNetwork(s, topo)
	delivered := 0
	n.Register(2, func(m Message) { delivered++ })
	n.CrashNode(2)
	n.Send(1, 2, "x")
	s.Run()
	if delivered != 0 {
		t.Fatal("message delivered to crashed node")
	}
	n.RestartNode(2)
	n.Send(1, 2, "x")
	s.Run()
	if delivered != 1 {
		t.Fatal("message not delivered after restart")
	}
}

func TestCrashMidFlight(t *testing.T) {
	s := sim.New(1)
	topo := threeRegionTopo()
	n := NewNetwork(s, topo)
	delivered := 0
	n.Register(4, func(m Message) { delivered++ })
	n.Send(1, 4, "x") // 43.5ms one-way
	s.After(10*sim.Millisecond, func() { n.CrashNode(4) })
	s.Run()
	if delivered != 0 {
		t.Fatal("message delivered to node that crashed mid-flight")
	}
}

func TestRegionFailure(t *testing.T) {
	s := sim.New(1)
	topo := threeRegionTopo()
	n := NewNetwork(s, topo)
	delivered := map[NodeID]int{}
	for id := NodeID(1); id <= 9; id++ {
		id := id
		n.Register(id, func(m Message) { delivered[id]++ })
	}
	n.FailRegion(EuropeW2) // nodes 4,5,6
	n.Send(1, 4, "x")
	n.Send(1, 7, "x")
	n.Send(5, 1, "x") // from failed region
	s.Run()
	if delivered[4] != 0 || delivered[1] != 0 {
		t.Fatalf("traffic crossed failed region: %v", delivered)
	}
	if delivered[7] != 1 {
		t.Fatalf("unrelated traffic dropped: %v", delivered)
	}
	n.RecoverRegion(EuropeW2)
	n.Send(1, 4, "x")
	s.Run()
	if delivered[4] != 1 {
		t.Fatal("traffic still blocked after recovery")
	}
}

func TestPartitionPair(t *testing.T) {
	s := sim.New(1)
	topo := threeRegionTopo()
	n := NewNetwork(s, topo)
	delivered := 0
	n.Register(2, func(m Message) { delivered++ })
	n.Register(1, func(m Message) { delivered++ })
	n.Partition(1, 2)
	n.Send(1, 2, "x")
	n.Send(2, 1, "x")
	s.Run()
	if delivered != 0 {
		t.Fatal("partitioned traffic delivered")
	}
	n.Heal(1, 2)
	n.Send(1, 2, "x")
	s.Run()
	if delivered != 1 {
		t.Fatal("traffic blocked after heal")
	}
}

func TestPartitionOneWay(t *testing.T) {
	s := sim.New(1)
	topo := threeRegionTopo()
	n := NewNetwork(s, topo)
	got := map[NodeID]int{}
	n.Register(1, func(m Message) { got[1]++ })
	n.Register(2, func(m Message) { got[2]++ })
	n.PartitionOneWay(1, 2)
	n.Send(1, 2, "x") // blocked
	n.Send(2, 1, "x") // reverse direction still flows
	s.Run()
	if got[2] != 0 {
		t.Fatal("1→2 delivered through one-way partition")
	}
	if got[1] != 1 {
		t.Fatal("2→1 blocked by one-way partition")
	}
	n.HealOneWay(1, 2)
	n.Send(1, 2, "x")
	s.Run()
	if got[2] != 1 {
		t.Fatal("1→2 still blocked after heal")
	}
}

func TestPartitionOneWayBlocksRPCReply(t *testing.T) {
	// A server whose replies are blocked looks dead to the client even
	// though the request arrived: the RPC must time out.
	s := sim.New(1)
	topo := threeRegionTopo()
	n := NewNetwork(s, topo)
	served := 0
	n.Register(4, func(m Message) {
		served++
		m.Payload.(*RPCRequest).Reply("pong")
	})
	n.PartitionOneWay(4, 1)
	var err error
	s.Spawn("client", func(p *sim.Proc) {
		_, err = n.SendRPC(p, 1, 4, "ping", 200*sim.Millisecond)
	})
	s.Run()
	if served != 1 {
		t.Fatalf("request not delivered: served=%d", served)
	}
	if err == nil {
		t.Fatal("expected timeout with reply direction partitioned")
	}
}

func TestSlowLink(t *testing.T) {
	s := sim.New(1)
	topo := threeRegionTopo()
	n := NewNetwork(s, topo)
	var at sim.Time
	n.Register(4, func(m Message) { at = s.Now() })
	n.SlowLink(1, 4, 100*sim.Millisecond)
	n.Send(1, 4, "x")
	s.Run()
	want := sim.Time(87*sim.Millisecond/2 + 100*sim.Millisecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	// Reverse direction unaffected.
	var back sim.Time
	n.Register(1, func(m Message) { back = s.Now() - at })
	n.Send(4, 1, "x")
	s.Run()
	if got := sim.Duration(back); got != 87*sim.Millisecond/2 {
		t.Fatalf("reverse latency %v, want 43.5ms", got)
	}
	n.HealLink(1, 4)
	n.Register(4, func(m Message) { at = s.Now() })
	start := s.Now()
	n.Send(1, 4, "x")
	s.Run()
	if at.Sub(start) != 87*sim.Millisecond/2 {
		t.Fatalf("latency after heal = %v", at.Sub(start))
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	run := func(seed int64) sim.Time {
		s := sim.New(seed)
		topo := threeRegionTopo()
		topo.Jitter = 0.05
		n := NewNetwork(s, topo)
		var at sim.Time
		n.Register(4, func(m Message) { at = s.Now() })
		n.Send(1, 4, "x")
		s.Run()
		return at
	}
	a, b := run(5), run(5)
	if a != b {
		t.Fatalf("jitter nondeterministic: %v vs %v", a, b)
	}
	base := 87 * sim.Millisecond / 2
	lo := sim.Time(float64(base) * 0.95)
	hi := sim.Time(float64(base) * 1.05)
	if a < lo || a > hi {
		t.Fatalf("jittered latency %v outside [%v,%v]", a, lo, hi)
	}
}

func TestLocalityString(t *testing.T) {
	l := Locality{Region: USEast1, Zone: "us-east1-b"}
	if l.String() != "region=us-east1,zone=us-east1-b" {
		t.Fatalf("got %q", l.String())
	}
}

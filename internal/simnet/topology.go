// Package simnet provides the simulated wide-area network that mrdb
// clusters run on: a region/zone topology, a configurable inter-region
// round-trip-time matrix (defaulting to the paper's Table 1), message
// delivery with latency and jitter, and failure injection (node crashes and
// region partitions) for survivability experiments.
package simnet

import (
	"fmt"
	"sort"

	"mrdb/internal/sim"
)

// Region names a geographic region, e.g. "us-east1".
type Region string

// Zone names an availability zone within a region, e.g. "us-east1-b".
type Zone string

// NodeID identifies a node in the cluster; IDs are dense and start at 1.
type NodeID int

// Locality is a node's position in the failure-domain hierarchy.
type Locality struct {
	Region Region
	Zone   Zone
}

// String renders the locality in the CLI flag format used by the paper
// (--locality=region=...,zone=...).
func (l Locality) String() string {
	return fmt.Sprintf("region=%s,zone=%s", l.Region, l.Zone)
}

// Topology describes the cluster's physical layout and link latencies.
type Topology struct {
	// RTT holds round-trip times between pairs of regions. Lookups are
	// symmetric; only one direction needs to be present.
	RTT map[[2]Region]sim.Duration
	// IntraRegionRTT is the round trip between two zones of one region.
	IntraRegionRTT sim.Duration
	// IntraZoneRTT is the round trip within a single zone.
	IntraZoneRTT sim.Duration
	// Jitter is the maximum fractional latency perturbation (e.g. 0.05
	// adds up to ±5%); deterministic per simulation seed.
	Jitter float64

	nodes map[NodeID]Locality
}

// Paper Table 1: inter-region round-trip times in milliseconds, measured on
// GCP between the five regions used in §7.1–§7.3.
const (
	USEast1    Region = "us-east1"
	USWest1    Region = "us-west1"
	EuropeW2   Region = "europe-west2"
	AsiaNE1    Region = "asia-northeast1"
	AustralSE1 Region = "australia-southeast1"
)

// Table1RTT returns the paper's Table 1 matrix.
func Table1RTT() map[[2]Region]sim.Duration {
	ms := func(n int) sim.Duration { return sim.Duration(n) * sim.Millisecond }
	return map[[2]Region]sim.Duration{
		{USEast1, USWest1}:     ms(63),
		{USEast1, EuropeW2}:    ms(87),
		{USEast1, AsiaNE1}:     ms(155),
		{USEast1, AustralSE1}:  ms(198),
		{USWest1, EuropeW2}:    ms(132),
		{USWest1, AsiaNE1}:     ms(90),
		{USWest1, AustralSE1}:  ms(156),
		{EuropeW2, AsiaNE1}:    ms(222),
		{EuropeW2, AustralSE1}: ms(274),
		{AsiaNE1, AustralSE1}:  ms(113),
	}
}

// Table1Regions lists the paper's five regions in the order of Table 1.
func Table1Regions() []Region {
	return []Region{USEast1, USWest1, EuropeW2, AsiaNE1, AustralSE1}
}

// NewTopology returns an empty topology with paper-realistic local
// latencies: 0.5ms within a zone and 2ms between zones of a region (§6.2.1
// quotes 2–5ms for a zone-survivable quorum RTT).
func NewTopology() *Topology {
	return &Topology{
		RTT:            map[[2]Region]sim.Duration{},
		IntraRegionRTT: 2 * sim.Millisecond,
		IntraZoneRTT:   500 * sim.Microsecond,
		Jitter:         0.05,
		nodes:          map[NodeID]Locality{},
	}
}

// NewTable1Topology returns a topology preloaded with the paper's Table 1
// RTT matrix.
func NewTable1Topology() *Topology {
	t := NewTopology()
	t.RTT = Table1RTT()
	return t
}

// AddNode registers a node at the given locality.
func (t *Topology) AddNode(id NodeID, loc Locality) {
	t.nodes[id] = loc
}

// RemoveNode forgets a node.
func (t *Topology) RemoveNode(id NodeID) { delete(t.nodes, id) }

// LocalityOf returns a node's locality.
func (t *Topology) LocalityOf(id NodeID) (Locality, bool) {
	l, ok := t.nodes[id]
	return l, ok
}

// Nodes returns all node IDs in ascending order.
func (t *Topology) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(t.nodes))
	for id := range t.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Regions returns the distinct regions with at least one node, sorted.
func (t *Topology) Regions() []Region {
	seen := map[Region]bool{}
	for _, l := range t.nodes {
		seen[l.Region] = true
	}
	out := make([]Region, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodesInRegion returns the node IDs located in region r, sorted.
func (t *Topology) NodesInRegion(r Region) []NodeID {
	var ids []NodeID
	for id, l := range t.nodes {
		if l.Region == r {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RegionRTT returns the round-trip time between two regions.
func (t *Topology) RegionRTT(a, b Region) sim.Duration {
	if a == b {
		return t.IntraRegionRTT
	}
	if d, ok := t.RTT[[2]Region{a, b}]; ok {
		return d
	}
	if d, ok := t.RTT[[2]Region{b, a}]; ok {
		return d
	}
	// Unknown pairs get a conservative default so misconfigurations are
	// visible as high latency rather than zero latency.
	return 150 * sim.Millisecond
}

// SetRegionRTT sets the round-trip time between two regions.
func (t *Topology) SetRegionRTT(a, b Region, d sim.Duration) {
	t.RTT[[2]Region{a, b}] = d
}

// NodeRTT returns the round-trip time between two nodes.
func (t *Topology) NodeRTT(a, b NodeID) sim.Duration {
	la, oka := t.nodes[a]
	lb, okb := t.nodes[b]
	if !oka || !okb {
		return 150 * sim.Millisecond
	}
	if a == b {
		return 50 * sim.Microsecond
	}
	if la.Region != lb.Region {
		return t.RegionRTT(la.Region, lb.Region)
	}
	if la.Zone != lb.Zone {
		return t.IntraRegionRTT
	}
	return t.IntraZoneRTT
}

// OneWay returns the one-way delay between two nodes (RTT/2).
func (t *Topology) OneWay(a, b NodeID) sim.Duration { return t.NodeRTT(a, b) / 2 }

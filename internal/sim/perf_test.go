package sim

import (
	"runtime"
	"testing"
	"time"
)

// schedulerWorkload drives a randomized mix of every scheduler feature —
// sleeps, mailbox rendezvous, futures, waitgroup fan-outs, bare callbacks —
// and records the (virtual time, kind) of every observed step plus the
// consumer-side message trace. Used to pin the optimized scheduler against
// the legacy arm event-for-event.
func schedulerWorkload(s *Simulation) (steps []Time, trace []Time) {
	s.stepHook = func(at Time) { steps = append(steps, at) }
	m := NewMailbox[int](s)
	f := NewFuture[string](s)
	for i := 0; i < 8; i++ {
		s.Spawn("producer", func(p *Proc) {
			for j := 0; j < 12; j++ {
				p.Sleep(Duration(p.Rand().Intn(700)) * Microsecond)
				m.Send(j)
			}
		})
	}
	s.Spawn("fanout", func(p *Proc) {
		for i := 0; i < 5; i++ {
			wg := s.GetWaitGroup()
			for j := 0; j < 4; j++ {
				wg.Add(1)
				s.Spawn("child", func(cp *Proc) {
					defer wg.Done()
					cp.Sleep(Duration(cp.Rand().Intn(300)) * Microsecond)
				})
			}
			wg.Wait(p)
			wg.Release()
		}
		f.Set("fanout-done")
	})
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 96; i++ {
			m.Recv(p)
			trace = append(trace, p.Now())
		}
		f.Wait(p)
	})
	s.Spawn("timeouts", func(p *Proc) {
		g := NewFuture[int](s)
		g.WaitTimeout(p, 3*Millisecond)
		f.WaitTimeout(p, Second)
	})
	s.Schedule(Time(2*Millisecond), func() { m.Send(-1) })
	s.Run()
	return steps, trace
}

// TestLegacySchedulerEquivalence pins the optimized scheduler (value-event
// 4-ary heap, direct proc wakes, pooled goroutines, self-wake fast path)
// against the retained legacy scheduler: both must execute the identical
// event sequence at identical virtual times for the same seed. Any
// optimization that perturbs event order fails here before it can corrupt a
// span-hash oracle downstream.
func TestLegacySchedulerEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 999} {
		newSteps, newTrace := schedulerWorkload(New(seed))
		legSteps, legTrace := schedulerWorkload(NewLegacy(seed))
		if len(newSteps) != len(legSteps) {
			t.Fatalf("seed %d: step counts differ: optimized %d vs legacy %d",
				seed, len(newSteps), len(legSteps))
		}
		for i := range newSteps {
			if newSteps[i] != legSteps[i] {
				t.Fatalf("seed %d: step %d diverged: optimized %v vs legacy %v",
					seed, i, newSteps[i], legSteps[i])
			}
		}
		if len(newTrace) != len(legTrace) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(newTrace), len(legTrace))
		}
		for i := range newTrace {
			if newTrace[i] != legTrace[i] {
				t.Fatalf("seed %d: trace %d diverged: %v vs %v", seed, i, newTrace[i], legTrace[i])
			}
		}
	}
}

// TestScheduleInPastFIFO pins the clamp semantics satellite: events
// scheduled with a timestamp in the past run at the current instant, ordered
// strictly by schedule order (seq) among all same-instant events — a
// past-timestamp Schedule cannot jump ahead of work already queued for now.
func TestScheduleInPastFIFO(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(Time(10), func() {
		s.Schedule(Time(10), func() { got = append(got, 1) }) // same instant
		s.Schedule(Time(3), func() { got = append(got, 2) })  // past: clamps to 10
		s.Schedule(Time(0), func() { got = append(got, 3) })  // past: clamps to 10
		s.Schedule(Time(10), func() { got = append(got, 4) }) // same instant
	})
	s.Run()
	if len(got) != 4 {
		t.Fatalf("ran %d events, want 4", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("past-clamped events not in FIFO seq order: %v", got)
		}
	}
	if s.Now() != 10 {
		t.Fatalf("clock rewound: now = %v, want 10", s.Now())
	}
}

// TestAfterClampsNegative covers After's only remaining clamp: a negative
// delay fires at the current instant (After skips Schedule's past-timestamp
// branch because now+d can never be in the past for d >= 0).
func TestAfterClampsNegative(t *testing.T) {
	s := New(1)
	var at Time
	s.Schedule(Time(5), func() {
		s.After(-Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 5 {
		t.Fatalf("negative After fired at %v, want 5", at)
	}
}

// TestProcPoolReuse verifies finished proc goroutines are recycled: after a
// wave of spawns completes, the next wave draws from the free list rather
// than growing the goroutine count, and Run drains the pool on exit.
func TestProcPoolReuse(t *testing.T) {
	s := New(1)
	ran := 0
	s.Spawn("driver", func(p *Proc) {
		for wave := 0; wave < 10; wave++ {
			wg := s.GetWaitGroup()
			for i := 0; i < 8; i++ {
				wg.Add(1)
				s.Spawn("w", func(wp *Proc) {
					defer wg.Done()
					wp.Sleep(Millisecond)
					ran++
				})
			}
			wg.Wait(p)
			wg.Release()
		}
	})
	before := runtime.NumGoroutine()
	s.Run()
	if ran != 80 {
		t.Fatalf("ran %d workers, want 80", ran)
	}
	if n := len(s.freeProcs); n != 0 {
		t.Fatalf("Run left %d procs in the free list, want 0", n)
	}
	// Drained goroutines exit asynchronously; poll briefly before declaring
	// a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before Run, %d after", before, after)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWaitGroupPoolSafety verifies Release refuses to pool a WaitGroup that
// is still in use, so a buggy early Release cannot cause cross-talk.
func TestWaitGroupPoolSafety(t *testing.T) {
	s := New(1)
	wg := s.GetWaitGroup()
	wg.Add(1)
	wg.Release() // in use: must not pool
	if got := s.GetWaitGroup(); got == wg {
		t.Fatal("Release pooled a WaitGroup with a non-zero count")
	}
	wg.Done()
	wg.Release()
	if got := s.GetWaitGroup(); got != wg {
		t.Fatal("idle WaitGroup was not recycled")
	}
}

// TestSteadyStateSleepAllocs asserts the core event loop is allocation-free
// at steady state: after warm-up, a proc sleeping in a loop must not
// allocate per event (the legacy scheduler paid two allocations per sleep).
func TestSteadyStateSleepAllocs(t *testing.T) {
	s := New(1)
	var perSleep float64
	s.Spawn("bench", func(p *Proc) {
		const warm, n = 64, 2048
		for i := 0; i < warm; i++ {
			p.Sleep(Microsecond)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < n; i++ {
			p.Sleep(Microsecond)
		}
		runtime.ReadMemStats(&after)
		perSleep = float64(after.Mallocs-before.Mallocs) / n
	})
	s.Run()
	if perSleep > 0.05 {
		t.Fatalf("steady-state sleep allocates %.3f objects/event, want ~0", perSleep)
	}
}

// TestStopDuringFastPath ensures Stop still halts a proc that has been
// consuming its own wake events through the self-wake fast path.
func TestStopDuringFastPath(t *testing.T) {
	s := New(1)
	iters := 0
	s.Spawn("spinner", func(p *Proc) {
		for {
			p.Sleep(Millisecond)
			iters++
		}
	})
	s.Schedule(Time(5*Millisecond)+1, func() { s.Stop() })
	s.Run()
	if iters > 6 {
		t.Fatalf("proc ran %d iterations past Stop", iters)
	}
}

// TestRunUntilBoundsFastPath ensures the self-wake fast path respects
// RunUntil's deadline: a proc must not pop its own wake event scheduled
// beyond the bound.
func TestRunUntilBoundsFastPath(t *testing.T) {
	s := New(1)
	var wokeAt []Time
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Millisecond)
			wokeAt = append(wokeAt, p.Now())
		}
	})
	s.RunUntil(Time(15 * Millisecond))
	if len(wokeAt) != 1 {
		t.Fatalf("woke %d times inside bound, want 1 (wokeAt=%v)", len(wokeAt), wokeAt)
	}
	if s.Now() != Time(15*Millisecond) {
		t.Fatalf("now = %v, want 15ms", s.Now())
	}
	s.Run()
	if len(wokeAt) != 3 {
		t.Fatalf("woke %d times total, want 3", len(wokeAt))
	}
}

// Package sim implements a deterministic discrete-event simulator with
// cooperative green-thread processes.
//
// All components of mrdb — nodes, Raft groups, transaction coordinators and
// workload clients — run as Procs on a single Simulation. Virtual time only
// advances when every live process is parked on a timer or a wait queue, so a
// run is fully deterministic for a given seed: the same events fire in the
// same order and produce the same latencies. This is what lets the benchmark
// harness reproduce the paper's WAN-scale latency distributions in
// milliseconds of real time.
//
// Concurrency model: exactly one goroutine (either the scheduler or a single
// process) executes at any moment. Control is handed off through per-process
// channels. Shared state touched only from Procs therefore needs no locking.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration mirrors time.Duration but measures virtual time.
type Duration = time.Duration

// Common durations re-exported for callers that build latencies.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String renders the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

type event struct {
	at  Time
	seq int64 // tie-break for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulation owns the virtual clock and the event queue.
type Simulation struct {
	now     Time
	queue   eventHeap
	seq     int64
	rng     *rand.Rand
	yield   chan struct{} // signalled when the running proc parks or exits
	procs   int           // live (not yet finished) processes
	stopped bool
	// stepHook, if set, is invoked before each event executes. Used by
	// tests to observe scheduling.
	stepHook func(at Time)
}

// New returns a Simulation whose randomness is derived from seed.
func New(seed int64) *Simulation {
	return &Simulation{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. It must only be
// used from scheduler callbacks or running Procs.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// Schedule runs fn at virtual time at (or now, if at is in the past).
func (s *Simulation) Schedule(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// After runs fn d after the current virtual time.
func (s *Simulation) After(d Duration, fn func()) { s.Schedule(s.now.Add(d), fn) }

// Stop halts the simulation: Run returns after the current event completes
// and pending events are discarded.
func (s *Simulation) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (s *Simulation) Run() Time {
	for !s.stopped && len(s.queue) > 0 {
		s.step()
	}
	return s.now
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (s *Simulation) RunUntil(t Time) {
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= t {
		s.step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Simulation) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

func (s *Simulation) step() {
	e := heap.Pop(&s.queue).(*event)
	if e.at > s.now {
		s.now = e.at
	}
	if s.stepHook != nil {
		s.stepHook(s.now)
	}
	e.fn()
}

// Proc is a cooperative green thread. A Proc's function runs on its own
// goroutine, but only ever concurrently with nothing else: it holds the
// simulation's execution token between calls to blocking primitives.
type Proc struct {
	sim  *Simulation
	name string
	wake chan struct{}
	done bool

	// obsctx is an opaque slot for the observability layer (the process's
	// current trace span). sim knows nothing about its type; it exists here
	// so spans can follow a process across blocking calls without sim
	// importing obs.
	obsctx interface{}
}

// ObsCtx returns the process's opaque observability context.
func (p *Proc) ObsCtx() interface{} { return p.obsctx }

// SetObsCtx installs an opaque observability context on the process.
func (p *Proc) SetObsCtx(v interface{}) { p.obsctx = v }

// Sim returns the simulation the process runs on.
func (p *Proc) Sim() *Simulation { return p.sim }

// Name returns the process's debug name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Rand returns the simulation's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.sim.rng }

// Spawn starts fn as a new process at the current virtual time. It may be
// called from scheduler callbacks or from other Procs.
func (s *Simulation) Spawn(name string, fn func(p *Proc)) {
	s.SpawnAt(s.now, name, fn)
}

// SpawnAt starts fn as a new process at time at.
func (s *Simulation) SpawnAt(at Time, name string, fn func(p *Proc)) {
	p := &Proc{sim: s, name: name, wake: make(chan struct{})}
	s.procs++
	s.Schedule(at, func() {
		go func() {
			defer func() {
				p.done = true
				s.procs--
				s.yield <- struct{}{}
			}()
			fn(p)
		}()
		<-s.yield // wait for the proc to park or finish
	})
}

// park suspends the calling process until something calls p.resume via a
// scheduled event. The scheduler regains control.
func (p *Proc) park() {
	p.sim.yield <- struct{}{}
	<-p.wake
}

// resume schedules the process to continue at time at. It must only be
// invoked from scheduler context (inside a Schedule callback).
func (p *Proc) resumeNow() {
	p.wake <- struct{}{}
	<-p.sim.yield
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		// Even a zero-length sleep yields, putting the proc behind
		// already-queued events at the current instant.
		d = 0
	}
	p.sim.After(d, func() { p.resumeNow() })
	p.park()
}

// SleepUntil suspends the process until virtual time t.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.sim.now {
		p.Sleep(0)
		return
	}
	p.Sleep(t.Sub(p.sim.now))
}

// Yield lets any other work scheduled at the current instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Future is a single-assignment value that processes can wait on.
type Future[T any] struct {
	sim     *Simulation
	set     bool
	val     T
	waiters []*Proc
}

// NewFuture returns an empty future bound to s.
func NewFuture[T any](s *Simulation) *Future[T] {
	return &Future[T]{sim: s}
}

// Set fulfills the future and wakes all waiters. Calling Set twice panics:
// a future is a one-shot rendezvous.
func (f *Future[T]) Set(v T) {
	if f.set {
		panic("sim: Future set twice")
	}
	f.set = true
	f.val = v
	waiters := f.waiters
	f.waiters = nil
	for _, w := range waiters {
		w := w
		f.sim.Schedule(f.sim.now, func() { w.resumeNow() })
	}
}

// Done reports whether the future has been fulfilled.
func (f *Future[T]) Done() bool { return f.set }

// Wait parks p until the future is set and returns its value.
func (f *Future[T]) Wait(p *Proc) T {
	for !f.set {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	return f.val
}

// WaitTimeout waits for the future for at most d. It returns the value and
// true if the future was set in time.
func (f *Future[T]) WaitTimeout(p *Proc, d Duration) (T, bool) {
	if f.set {
		return f.val, true
	}
	deadline := p.sim.now.Add(d)
	expired := false
	p.sim.Schedule(deadline, func() {
		if !f.set {
			expired = true
			// Remove p from waiters and wake it.
			for i, w := range f.waiters {
				if w == p {
					f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
					break
				}
			}
			p.resumeNow()
		}
	})
	for !f.set && !expired {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	if f.set {
		return f.val, true
	}
	var zero T
	return zero, false
}

// Mailbox is an unbounded FIFO queue connecting processes, akin to a
// buffered channel with no capacity limit.
type Mailbox[T any] struct {
	sim     *Simulation
	queue   []T
	waiters []*Proc
	closed  bool
}

// NewMailbox returns an empty mailbox bound to s.
func NewMailbox[T any](s *Simulation) *Mailbox[T] {
	return &Mailbox[T]{sim: s}
}

// Send enqueues v and wakes one waiting receiver, if any. Send never blocks.
// It may be called from scheduler callbacks or Procs.
func (m *Mailbox[T]) Send(v T) {
	if m.closed {
		panic("sim: send on closed Mailbox")
	}
	m.queue = append(m.queue, v)
	m.wakeOne()
}

func (m *Mailbox[T]) wakeOne() {
	if len(m.waiters) == 0 {
		return
	}
	w := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.sim.Schedule(m.sim.now, func() { w.resumeNow() })
}

// Close marks the mailbox closed; waiting and future receivers get ok=false
// once the queue drains.
func (m *Mailbox[T]) Close() {
	m.closed = true
	waiters := m.waiters
	m.waiters = nil
	for _, w := range waiters {
		w := w
		m.sim.Schedule(m.sim.now, func() { w.resumeNow() })
	}
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.queue) }

// Recv dequeues the next item, parking p until one is available. ok is false
// if the mailbox is closed and drained.
func (m *Mailbox[T]) Recv(p *Proc) (T, bool) {
	for len(m.queue) == 0 {
		if m.closed {
			var zero T
			return zero, false
		}
		m.waiters = append(m.waiters, p)
		p.park()
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	// If items remain and receivers wait, propagate the wake-up.
	if len(m.queue) > 0 {
		m.wakeOne()
	}
	return v, true
}

// WaitGroup tracks a set of processes and lets another process wait for all
// of them to finish, mirroring sync.WaitGroup in virtual time.
type WaitGroup struct {
	sim     *Simulation
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup bound to s.
func NewWaitGroup(s *Simulation) *WaitGroup { return &WaitGroup{sim: s} }

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter, waking waiters when it reaches zero.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup counter negative")
	}
	if wg.count == 0 {
		waiters := wg.waiters
		wg.waiters = nil
		for _, w := range waiters {
			w := w
			wg.sim.Schedule(wg.sim.now, func() { w.resumeNow() })
		}
	}
}

// Wait parks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.waiters = append(wg.waiters, p)
		p.park()
	}
}

// Cond is a waiting-room: processes park on it and are woken explicitly.
// Unlike sync.Cond there is no associated lock; the simulation's cooperative
// scheduling makes one unnecessary.
type Cond struct {
	sim     *Simulation
	waiters []*Proc
}

// NewCond returns a Cond bound to s.
func NewCond(s *Simulation) *Cond { return &Cond{sim: s} }

// Wait parks p until Broadcast or a Signal reaches it. Callers must re-check
// their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Broadcast wakes all waiting processes.
func (c *Cond) Broadcast() {
	waiters := c.waiters
	c.waiters = nil
	for _, w := range waiters {
		w := w
		c.sim.Schedule(c.sim.now, func() { w.resumeNow() })
	}
}

// Signal wakes one waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.sim.Schedule(c.sim.now, func() { w.resumeNow() })
}

// Ticker invokes fn every interval until the returned stop function is
// called. The first tick fires one interval from now.
func (s *Simulation) Ticker(interval Duration, fn func()) (stop func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if stopped {
			return
		}
		s.After(interval, tick)
	}
	s.After(interval, tick)
	return func() { stopped = true }
}

// SortedKeys returns map keys in sorted order; a convenience for
// deterministic iteration inside simulations.
func SortedKeys[M ~map[K]V, K ~string, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Trace formats a debug line prefixed with virtual time; it exists so that
// ad-hoc debugging output is consistent across packages.
func (s *Simulation) Trace(format string, args ...interface{}) string {
	return fmt.Sprintf("[%12s] ", Duration(s.now)) + fmt.Sprintf(format, args...)
}

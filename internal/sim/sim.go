// Package sim implements a deterministic discrete-event simulator with
// cooperative green-thread processes.
//
// All components of mrdb — nodes, Raft groups, transaction coordinators and
// workload clients — run as Procs on a single Simulation. Virtual time only
// advances when every live process is parked on a timer or a wait queue, so a
// run is fully deterministic for a given seed: the same events fire in the
// same order and produce the same latencies. This is what lets the benchmark
// harness reproduce the paper's WAN-scale latency distributions in
// milliseconds of real time.
//
// Concurrency model: exactly one goroutine (either the scheduler or a single
// process) executes at any moment. Control is handed off through per-process
// channels. Shared state touched only from Procs therefore needs no locking.
//
// Wall-clock performance: the event queue is an inlined 4-ary heap over
// event values (no per-event boxing, no container/heap interface calls),
// process wake-ups are value events that resume the process directly (no
// closure per wake), and finished processes park their goroutines in a free
// list so the next Spawn reuses the goroutine, its stack, and its wake
// channel. None of this changes the (at, seq) total order events execute in,
// so same-seed runs stay byte-identical — TestLegacySchedulerEquivalence
// pins that against the original boxed-heap scheduler, which survives behind
// NewLegacy as the "before" arm of the BENCH_speed trajectory.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration mirrors time.Duration but measures virtual time.
type Duration = time.Duration

// Common durations re-exported for callers that build latencies.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String renders the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// event is one queue entry. Exactly one of fn and proc is set: fn events run
// a callback in scheduler context; proc events hand control to a parked
// process (start=true hands it to a process that has not started yet).
// Events are stored by value — scheduling allocates nothing beyond amortized
// queue growth.
type event struct {
	at    Time
	seq   int64 // tie-break for determinism
	fn    func()
	proc  *Proc
	start bool
}

func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// fourAryHeap is the default event queue: a d=4 min-heap over event values.
// Shallower than a binary heap (fewer cache lines touched per op) and free
// of the interface conversions container/heap imposes.
type fourAryHeap []event

func (h *fourAryHeap) push(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(&q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
	*h = q
}

func (h *fourAryHeap) pop() event {
	q := *h
	n := len(q)
	min := q[0]
	last := q[n-1]
	q[n-1] = event{} // release fn/proc references
	q = q[:n-1]
	if n := len(q); n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if q[j].before(&q[m]) {
					m = j
				}
			}
			if !q[m].before(&last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	*h = q
	return min
}

// legacyEventHeap is the pre-optimization event queue: boxed *event entries
// behind container/heap. It is retained as the measurable "before" arm of
// the wall-clock perf trajectory (NewLegacy, `mrbench speed`); production
// simulations never use it.
type legacyEventHeap []*event

func (h legacyEventHeap) Len() int            { return len(h) }
func (h legacyEventHeap) Less(i, j int) bool  { return h[i].before(h[j]) }
func (h legacyEventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *legacyEventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *legacyEventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// maxFreeProcs caps the per-simulation pool of finished processes kept
// parked for reuse; beyond it, finished goroutines exit as before. Run
// drains the pool when the queue empties so idle simulations hold no
// goroutines.
const maxFreeProcs = 64

// maxFreeWaitGroups caps the WaitGroup free list.
const maxFreeWaitGroups = 32

// Simulation owns the virtual clock and the event queue.
type Simulation struct {
	now     Time
	queue   fourAryHeap
	lq      legacyEventHeap // event queue when legacy is set
	legacy  bool
	seq     int64
	events  int64 // events executed (wall-clock throughput denominator)
	rng     *rand.Rand
	yield   chan struct{} // signalled when the running proc parks or exits
	procs   int           // live (not yet finished) processes
	stopped bool

	freeProcs []*Proc      // finished procs parked for reuse
	freeWGs   []*WaitGroup // released WaitGroups

	// infn counts scheduler callbacks currently on the stack; the self-wake
	// fast path in park is disabled while one runs so a callback always
	// finishes before the next event pops (see park).
	infn int
	// bounded/deadline mirror RunUntil's time bound so the self-wake fast
	// path never pops an event the bounded run would have left queued.
	bounded  bool
	deadline Time

	// stepHook, if set, is invoked before each event executes. Used by
	// tests to observe scheduling.
	stepHook func(at Time)
}

// New returns a Simulation whose randomness is derived from seed.
func New(seed int64) *Simulation {
	return &Simulation{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// NewLegacy returns a Simulation running the pre-optimization scheduler:
// boxed events on a container/heap binary heap, a scheduled closure per
// process wake-up, and a fresh goroutine per Spawn. It exists solely as the
// "before" arm of the wall-clock perf trajectory; event order is identical
// to New (TestLegacySchedulerEquivalence).
func NewLegacy(seed int64) *Simulation {
	s := New(seed)
	s.legacy = true
	return s
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Events returns the number of events executed so far. It is a wall-clock
// throughput denominator for the perf harness; virtual time never depends
// on it.
func (s *Simulation) Events() int64 { return s.events }

// Rand returns the simulation's deterministic random source. It must only be
// used from scheduler callbacks or running Procs.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// push enqueues e under the next sequence number.
func (s *Simulation) push(e event) {
	s.seq++
	e.seq = s.seq
	if s.legacy {
		boxed := e
		heap.Push(&s.lq, &boxed)
		return
	}
	s.queue.push(e)
}

func (s *Simulation) queueLen() int {
	if s.legacy {
		return len(s.lq)
	}
	return len(s.queue)
}

func (s *Simulation) peekAt() Time {
	if s.legacy {
		return s.lq[0].at
	}
	return s.queue[0].at
}

// Schedule runs fn at virtual time at (or now, if at is in the past).
func (s *Simulation) Schedule(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.push(event{at: at, fn: fn})
}

// After runs fn d after the current virtual time. Negative delays clamp to
// zero; because the target time is derived from the current clock it can
// never be in the past, so After skips Schedule's past-clamp branch.
func (s *Simulation) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.push(event{at: s.now.Add(d), fn: fn})
}

// wakeAt schedules p to resume at time at. In the default scheduler this is
// a value event that resumes the process directly; the legacy arm models
// the original cost (a closure scheduled per wake).
func (s *Simulation) wakeAt(at Time, p *Proc) {
	if s.legacy {
		s.Schedule(at, func() { p.resumeNow() })
		return
	}
	s.push(event{at: at, proc: p})
}

// Stop halts the simulation: Run returns after the current event completes
// and pending events are discarded.
func (s *Simulation) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (s *Simulation) Run() Time {
	s.bounded = false
	for !s.stopped && s.queueLen() > 0 {
		s.step()
	}
	s.drainFreeProcs()
	return s.now
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (s *Simulation) RunUntil(t Time) {
	s.bounded, s.deadline = true, t
	for !s.stopped && s.queueLen() > 0 && s.peekAt() <= t {
		s.step()
	}
	s.bounded = false
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Simulation) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

func (s *Simulation) step() {
	var e event
	if s.legacy {
		e = *heap.Pop(&s.lq).(*event)
	} else {
		e = s.queue.pop()
	}
	if e.at > s.now {
		s.now = e.at
	}
	if s.stepHook != nil {
		s.stepHook(s.now)
	}
	s.events++
	switch {
	case e.proc == nil:
		s.infn++
		e.fn()
		s.infn--
	case e.start:
		e.proc.startRun()
	default:
		e.proc.resumeNow()
	}
}

// drainFreeProcs retires pooled goroutines so a finished simulation holds
// none. Called when Run exhausts the queue.
func (s *Simulation) drainFreeProcs() {
	for i, p := range s.freeProcs {
		p.exit = true
		p.wake <- struct{}{}
		s.freeProcs[i] = nil
	}
	s.freeProcs = s.freeProcs[:0]
}

// Proc is a cooperative green thread. A Proc's function runs on its own
// goroutine, but only ever concurrently with nothing else: it holds the
// simulation's execution token between calls to blocking primitives.
type Proc struct {
	sim     *Simulation
	name    string
	wake    chan struct{}
	fn      func(p *Proc)
	done    bool
	started bool // goroutine exists (possibly parked in the free list)
	exit    bool // parked goroutine should retire instead of running fn

	// obsctx is an opaque slot for the observability layer (the process's
	// current trace span). sim knows nothing about its type; it exists here
	// so spans can follow a process across blocking calls without sim
	// importing obs.
	obsctx interface{}
}

// ObsCtx returns the process's opaque observability context.
func (p *Proc) ObsCtx() interface{} { return p.obsctx }

// SetObsCtx installs an opaque observability context on the process.
func (p *Proc) SetObsCtx(v interface{}) { p.obsctx = v }

// Sim returns the simulation the process runs on.
func (p *Proc) Sim() *Simulation { return p.sim }

// Name returns the process's debug name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Rand returns the simulation's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.sim.rng }

// Spawn starts fn as a new process at the current virtual time. It may be
// called from scheduler callbacks or from other Procs.
func (s *Simulation) Spawn(name string, fn func(p *Proc)) {
	s.SpawnAt(s.now, name, fn)
}

// SpawnAt starts fn as a new process at time at. When a finished process is
// parked in the free list its goroutine, stack, and wake channel are reused;
// otherwise a fresh goroutine starts when the event fires.
func (s *Simulation) SpawnAt(at Time, name string, fn func(p *Proc)) {
	var p *Proc
	if n := len(s.freeProcs); n > 0 {
		p = s.freeProcs[n-1]
		s.freeProcs[n-1] = nil
		s.freeProcs = s.freeProcs[:n-1]
		p.name = name
		p.done = false
		p.obsctx = nil
	} else {
		p = &Proc{sim: s, name: name, wake: make(chan struct{})}
	}
	p.fn = fn
	s.procs++
	if s.legacy {
		s.Schedule(at, func() { p.startRun() })
		return
	}
	if at < s.now {
		at = s.now
	}
	s.push(event{at: at, proc: p, start: true})
}

// startRun hands the execution token to a process that has not run its
// current fn yet, launching its goroutine on first use.
func (p *Proc) startRun() {
	if p.started {
		p.wake <- struct{}{}
	} else {
		p.started = true
		go p.run()
	}
	<-p.sim.yield
}

// run is the body of a process goroutine: execute fn, then either retire or
// park in the simulation's free list awaiting the next Spawn. The inner
// closure's deferred handoff keeps the scheduler alive when fn unwinds
// abnormally (runtime.Goexit from t.Fatal, or a panic mid-crash).
func (p *Proc) run() {
	s := p.sim
	for {
		normal := false
		func() {
			defer func() {
				if !normal {
					p.done = true
					s.procs--
					s.yield <- struct{}{}
				}
			}()
			p.fn(p)
			normal = true
		}()
		p.fn = nil
		p.done = true
		s.procs--
		if s.legacy || len(s.freeProcs) >= maxFreeProcs {
			s.yield <- struct{}{}
			return
		}
		s.freeProcs = append(s.freeProcs, p)
		s.yield <- struct{}{}
		<-p.wake
		if p.exit {
			return
		}
	}
}

// park suspends the calling process until something calls p.resume via a
// scheduled event. The scheduler regains control.
//
// Fast path: when the queue head is this process's own wake event, handing
// the token to the scheduler would only pop that event and hand the token
// straight back — two goroutine switches for nothing. The process pops the
// event itself (same event the scheduler would have popped, so the (at, seq)
// execution order is untouched) and keeps running. The path is disabled
// while a scheduler callback is mid-flight (the callback must finish before
// the next event executes), when a bounded run would have left the event
// queued, and in the legacy arm.
func (p *Proc) park() {
	s := p.sim
	if !s.legacy && s.infn == 0 && !s.stopped && len(s.queue) > 0 {
		if top := &s.queue[0]; top.proc == p && !top.start &&
			(!s.bounded || top.at <= s.deadline) {
			e := s.queue.pop()
			if e.at > s.now {
				s.now = e.at
			}
			if s.stepHook != nil {
				s.stepHook(s.now)
			}
			s.events++
			return
		}
	}
	s.yield <- struct{}{}
	<-p.wake
}

// resume schedules the process to continue at time at. It must only be
// invoked from scheduler context (inside a Schedule callback).
func (p *Proc) resumeNow() {
	p.wake <- struct{}{}
	<-p.sim.yield
}

// Sleep suspends the process for d of virtual time. Even a zero-length
// sleep yields, putting the proc behind already-queued events at the
// current instant.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.sim.wakeAt(p.sim.now.Add(d), p)
	p.park()
}

// SleepUntil suspends the process until virtual time t.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.sim.now {
		p.Sleep(0)
		return
	}
	p.Sleep(t.Sub(p.sim.now))
}

// Yield lets any other work scheduled at the current instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Future is a single-assignment value that processes can wait on.
type Future[T any] struct {
	sim     *Simulation
	set     bool
	val     T
	waiters []*Proc
}

// NewFuture returns an empty future bound to s.
func NewFuture[T any](s *Simulation) *Future[T] {
	return &Future[T]{sim: s}
}

// MakeFuture returns an empty future bound to s by value, for embedding in
// a caller's own allocation. The future must not be copied once waited on.
func MakeFuture[T any](s *Simulation) Future[T] {
	return Future[T]{sim: s}
}

// Set fulfills the future and wakes all waiters. Calling Set twice panics:
// a future is a one-shot rendezvous.
func (f *Future[T]) Set(v T) {
	if f.set {
		panic("sim: Future set twice")
	}
	f.set = true
	f.val = v
	waiters := f.waiters
	f.waiters = nil
	for _, w := range waiters {
		f.sim.wakeAt(f.sim.now, w)
	}
}

// Done reports whether the future has been fulfilled.
func (f *Future[T]) Done() bool { return f.set }

// Wait parks p until the future is set and returns its value.
func (f *Future[T]) Wait(p *Proc) T {
	for !f.set {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	return f.val
}

// WaitTimeout waits for the future for at most d. It returns the value and
// true if the future was set in time.
func (f *Future[T]) WaitTimeout(p *Proc, d Duration) (T, bool) {
	if f.set {
		return f.val, true
	}
	deadline := p.sim.now.Add(d)
	expired := false
	p.sim.Schedule(deadline, func() {
		if !f.set {
			expired = true
			// Remove p from waiters and wake it.
			for i, w := range f.waiters {
				if w == p {
					f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
					break
				}
			}
			p.resumeNow()
		}
	})
	for !f.set && !expired {
		f.waiters = append(f.waiters, p)
		p.park()
	}
	if f.set {
		return f.val, true
	}
	var zero T
	return zero, false
}

// Mailbox is an unbounded FIFO queue connecting processes, akin to a
// buffered channel with no capacity limit.
type Mailbox[T any] struct {
	sim     *Simulation
	queue   []T
	waiters []*Proc
	closed  bool
}

// NewMailbox returns an empty mailbox bound to s.
func NewMailbox[T any](s *Simulation) *Mailbox[T] {
	return &Mailbox[T]{sim: s}
}

// Send enqueues v and wakes one waiting receiver, if any. Send never blocks.
// It may be called from scheduler callbacks or Procs.
func (m *Mailbox[T]) Send(v T) {
	if m.closed {
		panic("sim: send on closed Mailbox")
	}
	m.queue = append(m.queue, v)
	m.wakeOne()
}

func (m *Mailbox[T]) wakeOne() {
	if len(m.waiters) == 0 {
		return
	}
	w := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.sim.wakeAt(m.sim.now, w)
}

// Close marks the mailbox closed; waiting and future receivers get ok=false
// once the queue drains.
func (m *Mailbox[T]) Close() {
	m.closed = true
	waiters := m.waiters
	m.waiters = nil
	for _, w := range waiters {
		m.sim.wakeAt(m.sim.now, w)
	}
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.queue) }

// Recv dequeues the next item, parking p until one is available. ok is false
// if the mailbox is closed and drained.
func (m *Mailbox[T]) Recv(p *Proc) (T, bool) {
	for len(m.queue) == 0 {
		if m.closed {
			var zero T
			return zero, false
		}
		m.waiters = append(m.waiters, p)
		p.park()
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	// If items remain and receivers wait, propagate the wake-up.
	if len(m.queue) > 0 {
		m.wakeOne()
	}
	return v, true
}

// WaitGroup tracks a set of processes and lets another process wait for all
// of them to finish, mirroring sync.WaitGroup in virtual time.
type WaitGroup struct {
	sim     *Simulation
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup bound to s.
func NewWaitGroup(s *Simulation) *WaitGroup { return &WaitGroup{sim: s} }

// GetWaitGroup returns a WaitGroup from the simulation's free list, or a
// fresh one. Hot fan-out paths pair it with Release so steady state
// allocates no WaitGroups.
func (s *Simulation) GetWaitGroup() *WaitGroup {
	if n := len(s.freeWGs); n > 0 && !s.legacy {
		wg := s.freeWGs[n-1]
		s.freeWGs[n-1] = nil
		s.freeWGs = s.freeWGs[:n-1]
		return wg
	}
	return &WaitGroup{sim: s}
}

// Release returns an idle WaitGroup to the simulation's free list. Calling
// it on a WaitGroup with a non-zero count or parked waiters is a no-op.
func (wg *WaitGroup) Release() {
	s := wg.sim
	if wg.count != 0 || len(wg.waiters) != 0 || s.legacy || len(s.freeWGs) >= maxFreeWaitGroups {
		return
	}
	s.freeWGs = append(s.freeWGs, wg)
}

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter, waking waiters when it reaches zero.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup counter negative")
	}
	if wg.count == 0 {
		waiters := wg.waiters
		wg.waiters = nil
		for _, w := range waiters {
			wg.sim.wakeAt(wg.sim.now, w)
		}
	}
}

// Wait parks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.waiters = append(wg.waiters, p)
		p.park()
	}
}

// Cond is a waiting-room: processes park on it and are woken explicitly.
// Unlike sync.Cond there is no associated lock; the simulation's cooperative
// scheduling makes one unnecessary.
type Cond struct {
	sim     *Simulation
	waiters []*Proc
}

// NewCond returns a Cond bound to s.
func NewCond(s *Simulation) *Cond { return &Cond{sim: s} }

// Wait parks p until Broadcast or a Signal reaches it. Callers must re-check
// their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Broadcast wakes all waiting processes.
func (c *Cond) Broadcast() {
	waiters := c.waiters
	c.waiters = nil
	for _, w := range waiters {
		c.sim.wakeAt(c.sim.now, w)
	}
}

// Signal wakes one waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.sim.wakeAt(c.sim.now, w)
}

// Ticker invokes fn every interval until the returned stop function is
// called. The first tick fires one interval from now.
func (s *Simulation) Ticker(interval Duration, fn func()) (stop func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if stopped {
			return
		}
		s.After(interval, tick)
	}
	s.After(interval, tick)
	return func() { stopped = true }
}

// SortedKeys returns map keys in sorted order; a convenience for
// deterministic iteration inside simulations.
func SortedKeys[M ~map[K]V, K ~string, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Trace formats a debug line prefixed with virtual time; it exists so that
// ad-hoc debugging output is consistent across packages.
func (s *Simulation) Trace(format string, args ...interface{}) string {
	return fmt.Sprintf("[%12s] ", Duration(s.now)) + fmt.Sprintf(format, args...)
}

package sim

import "testing"

// BenchmarkEventQueue measures the raw event-queue throughput: one proc
// sleeping in a tight loop, so each iteration is a schedule + pop + resume
// round through the heap. This is the floor every simulated RPC pays twice.
func BenchmarkEventQueue(b *testing.B) {
	s := New(1)
	s.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Millisecond)
		}
	})
	b.ResetTimer()
	s.Run()
}

// BenchmarkSpawnFanOut measures proc spawn/join overhead: each iteration
// spawns a batch of procs that sleep once and rejoin through a WaitGroup —
// the shape of a DistSender per-range fan-out.
func BenchmarkSpawnFanOut(b *testing.B) {
	const fan = 8
	s := New(1)
	s.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			wg := NewWaitGroup(s)
			for j := 0; j < fan; j++ {
				wg.Add(1)
				s.Spawn("worker", func(wp *Proc) {
					defer wg.Done()
					wp.Sleep(Millisecond)
				})
			}
			wg.Wait(p)
		}
	})
	b.ResetTimer()
	s.Run()
}

// BenchmarkScheduleDrain measures bare callback scheduling: b.N events
// pushed onto the queue, then drained in one Run.
func BenchmarkScheduleDrain(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.After(Duration(i%1000)*Microsecond, func() {})
	}
	b.ResetTimer()
	s.Run()
}

package sim

import "testing"

// benchEventQueue measures raw event-queue throughput: one proc sleeping in
// a tight loop, so each iteration is a schedule + pop + resume round through
// the heap. This is the floor every simulated RPC pays twice.
func benchEventQueue(b *testing.B, s *Simulation) {
	b.ReportAllocs()
	s.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Millisecond)
		}
	})
	b.ResetTimer()
	s.Run()
}

func BenchmarkEventQueue(b *testing.B)       { benchEventQueue(b, New(1)) }
func BenchmarkEventQueueLegacy(b *testing.B) { benchEventQueue(b, NewLegacy(1)) }

// benchSpawnFanOut measures proc spawn/join overhead: each iteration spawns
// a batch of procs that sleep once and rejoin through a WaitGroup — the
// shape of a DistSender per-range fan-out.
func benchSpawnFanOut(b *testing.B, s *Simulation) {
	const fan = 8
	b.ReportAllocs()
	s.Spawn("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			wg := s.GetWaitGroup()
			for j := 0; j < fan; j++ {
				wg.Add(1)
				s.Spawn("worker", func(wp *Proc) {
					defer wg.Done()
					wp.Sleep(Millisecond)
				})
			}
			wg.Wait(p)
			wg.Release()
		}
	})
	b.ResetTimer()
	s.Run()
}

func BenchmarkSpawnFanOut(b *testing.B)       { benchSpawnFanOut(b, New(1)) }
func BenchmarkSpawnFanOutLegacy(b *testing.B) { benchSpawnFanOut(b, NewLegacy(1)) }

// BenchmarkScheduleDrain measures bare callback scheduling: b.N events
// pushed onto the queue, then drained in one Run.
func BenchmarkScheduleDrain(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.After(Duration(i%1000)*Microsecond, func() {})
	}
	b.ResetTimer()
	s.Run()
}

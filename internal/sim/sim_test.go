package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("final time = %v, want 30", s.Now())
	}
}

func TestScheduleSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestProcSleep(t *testing.T) {
	s := New(1)
	var wake Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100 * Millisecond)
		wake = p.Now()
	})
	s.Run()
	if wake != Time(100*Millisecond) {
		t.Fatalf("woke at %v, want 100ms", wake)
	}
}

func TestProcSleepUntilPast(t *testing.T) {
	s := New(1)
	ran := false
	s.Spawn("p", func(p *Proc) {
		p.Sleep(10)
		p.SleepUntil(5) // already past; should not rewind time
		if p.Now() < 10 {
			t.Errorf("time went backwards: %v", p.Now())
		}
		ran = true
	})
	s.Run()
	if !ran {
		t.Fatal("proc did not complete")
	}
}

func TestManyProcsInterleave(t *testing.T) {
	s := New(1)
	const n = 50
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		s.Spawn("worker", func(p *Proc) {
			for j := 0; j < 20; j++ {
				p.Sleep(Duration(i+1) * Millisecond)
				counts[i]++
			}
		})
	}
	s.Run()
	for i, c := range counts {
		if c != 20 {
			t.Fatalf("proc %d ran %d iterations, want 20", i, c)
		}
	}
}

func TestFutureSetBeforeWait(t *testing.T) {
	s := New(1)
	f := NewFuture[int](s)
	f.Set(42)
	var got int
	s.Spawn("w", func(p *Proc) { got = f.Wait(p) })
	s.Run()
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestFutureSetAfterWait(t *testing.T) {
	s := New(1)
	f := NewFuture[string](s)
	var got string
	var at Time
	s.Spawn("w", func(p *Proc) {
		got = f.Wait(p)
		at = p.Now()
	})
	s.Spawn("setter", func(p *Proc) {
		p.Sleep(7 * Millisecond)
		f.Set("done")
	})
	s.Run()
	if got != "done" || at != Time(7*Millisecond) {
		t.Fatalf("got %q at %v", got, at)
	}
}

func TestFutureMultipleWaiters(t *testing.T) {
	s := New(1)
	f := NewFuture[int](s)
	total := 0
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *Proc) { total += f.Wait(p) })
	}
	s.Spawn("setter", func(p *Proc) {
		p.Sleep(1)
		f.Set(10)
	})
	s.Run()
	if total != 50 {
		t.Fatalf("total = %d, want 50", total)
	}
}

func TestFutureWaitTimeoutExpires(t *testing.T) {
	s := New(1)
	f := NewFuture[int](s)
	var ok bool
	var at Time
	s.Spawn("w", func(p *Proc) {
		_, ok = f.WaitTimeout(p, 50*Millisecond)
		at = p.Now()
	})
	s.Run()
	if ok {
		t.Fatal("wait unexpectedly succeeded")
	}
	if at != Time(50*Millisecond) {
		t.Fatalf("timed out at %v, want 50ms", at)
	}
}

func TestFutureWaitTimeoutFulfilled(t *testing.T) {
	s := New(1)
	f := NewFuture[int](s)
	var got int
	var ok bool
	s.Spawn("w", func(p *Proc) { got, ok = f.WaitTimeout(p, 50*Millisecond) })
	s.Spawn("setter", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		f.Set(9)
	})
	s.Run()
	if !ok || got != 9 {
		t.Fatalf("got %d ok=%v", got, ok)
	}
}

func TestMailboxFIFO(t *testing.T) {
	s := New(1)
	m := NewMailbox[int](s)
	var got []int
	s.Spawn("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v, ok := m.Recv(p)
			if !ok {
				t.Errorf("unexpected close")
				return
			}
			got = append(got, v)
		}
	})
	s.Spawn("send", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Millisecond)
			m.Send(i)
		}
	})
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestMailboxClose(t *testing.T) {
	s := New(1)
	m := NewMailbox[int](s)
	var closedSeen bool
	s.Spawn("recv", func(p *Proc) {
		for {
			_, ok := m.Recv(p)
			if !ok {
				closedSeen = true
				return
			}
		}
	})
	s.Spawn("send", func(p *Proc) {
		m.Send(1)
		m.Send(2)
		p.Sleep(1)
		m.Close()
	})
	s.Run()
	if !closedSeen {
		t.Fatal("receiver did not observe close")
	}
}

func TestWaitGroup(t *testing.T) {
	s := New(1)
	wg := NewWaitGroup(s)
	var doneAt Time
	const n = 8
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		s.Spawn("w", func(p *Proc) {
			p.Sleep(Duration(i+1) * Millisecond)
			wg.Done()
		})
	}
	s.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	s.Run()
	if doneAt != Time(n*Millisecond) {
		t.Fatalf("waiter released at %v, want %v", doneAt, Time(n*Millisecond))
	}
}

func TestCondBroadcast(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	ready := false
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			for !ready {
				c.Wait(p)
			}
			woken++
		})
	}
	s.Spawn("b", func(p *Proc) {
		p.Sleep(Millisecond)
		ready = true
		c.Broadcast()
	})
	s.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	ticks := 0
	var stop func()
	stop = s.Ticker(10*Millisecond, func() {
		ticks++
		if ticks == 5 {
			stop()
		}
	})
	s.Run()
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if s.Now() != Time(50*Millisecond) {
		t.Fatalf("final time %v, want 50ms", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	fired := 0
	s.Schedule(Time(10), func() { fired++ })
	s.Schedule(Time(30), func() { fired++ })
	s.RunUntil(Time(20))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 20 {
		t.Fatalf("now = %v, want 20", s.Now())
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	fired := 0
	s.Schedule(1, func() { fired++; s.Stop() })
	s.Schedule(2, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after Stop, want 1", fired)
	}
}

// TestDeterminism runs the same randomized workload twice and requires
// identical traces: the foundation of reproducible experiments.
func TestDeterminism(t *testing.T) {
	runOnce := func(seed int64) []Time {
		s := New(seed)
		var trace []Time
		m := NewMailbox[int](s)
		for i := 0; i < 10; i++ {
			s.Spawn("producer", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(Duration(p.Rand().Intn(1000)) * Microsecond)
					m.Send(j)
				}
			})
		}
		s.Spawn("consumer", func(p *Proc) {
			for i := 0; i < 100; i++ {
				m.Recv(p)
				trace = append(trace, p.Now())
			}
		})
		s.Run()
		return trace
	}
	a := runOnce(42)
	b := runOnce(42)
	if len(a) != len(b) || len(a) != 100 {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := runOnce(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces; RNG not wired through")
	}
}

// Property: time never goes backwards across an arbitrary schedule of sleeps.
func TestQuickTimeMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		ok := true
		var last Time
		s.Spawn("p", func(p *Proc) {
			for _, d := range delays {
				p.Sleep(Duration(d) * Microsecond)
				if p.Now() < last {
					ok = false
				}
				last = p.Now()
			}
		})
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

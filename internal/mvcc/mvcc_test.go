package mvcc

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"mrdb/internal/hlc"
)

func ts(wall int64) hlc.Timestamp { return hlc.Timestamp{WallTime: wall} }

func k(s string) Key   { return Key(s) }
func v(s string) Value { return Value(s) }

func mustPut(t *testing.T, e *Engine, key, val string, at int64, txn *TxnMeta) {
	t.Helper()
	if _, err := e.Put(k(key), v(val), ts(at), txn); err != nil {
		t.Fatalf("Put(%s@%d): %v", key, at, err)
	}
}

func TestPutGetBasic(t *testing.T) {
	e := NewEngine(1)
	mustPut(t, e, "a", "v1", 10, nil)
	mustPut(t, e, "a", "v2", 20, nil)

	val, vts, err := e.Get(k("a"), ts(15), GetOptions{})
	if err != nil || string(val) != "v1" || vts != ts(10) {
		t.Fatalf("Get@15 = %q@%v err=%v", val, vts, err)
	}
	val, _, _ = e.Get(k("a"), ts(25), GetOptions{})
	if string(val) != "v2" {
		t.Fatalf("Get@25 = %q", val)
	}
	val, _, _ = e.Get(k("a"), ts(5), GetOptions{})
	if val != nil {
		t.Fatalf("Get@5 should see nothing, got %q", val)
	}
	val, _, _ = e.Get(k("missing"), ts(100), GetOptions{})
	if val != nil {
		t.Fatal("missing key returned value")
	}
}

func TestTombstone(t *testing.T) {
	e := NewEngine(1)
	mustPut(t, e, "a", "v1", 10, nil)
	if _, err := e.Delete(k("a"), ts(20), nil); err != nil {
		t.Fatal(err)
	}
	val, _, _ := e.Get(k("a"), ts(25), GetOptions{})
	if val != nil {
		t.Fatalf("deleted key visible: %q", val)
	}
	val, _, _ = e.Get(k("a"), ts(15), GetOptions{})
	if string(val) != "v1" {
		t.Fatal("old version hidden by later tombstone")
	}
}

func TestWriteTooOld(t *testing.T) {
	e := NewEngine(1)
	mustPut(t, e, "a", "v1", 20, nil)
	_, err := e.Put(k("a"), v("v0"), ts(10), nil)
	var wto *WriteTooOldError
	if !errors.As(err, &wto) {
		t.Fatalf("expected WriteTooOldError, got %v", err)
	}
	if !ts(20).Less(wto.ActualTimestamp) {
		t.Fatalf("ActualTimestamp %v not above existing", wto.ActualTimestamp)
	}
	// Writing at exactly the existing timestamp also fails.
	if _, err := e.Put(k("a"), v("x"), ts(20), nil); err == nil {
		t.Fatal("write at equal timestamp should fail")
	}
}

func TestIntentVisibility(t *testing.T) {
	e := NewEngine(1)
	txn := &TxnMeta{ID: 7, Epoch: 0}
	if _, err := e.Put(k("a"), v("prov"), ts(10), txn); err != nil {
		t.Fatal(err)
	}
	if e.IntentCount() != 1 {
		t.Fatalf("IntentCount = %d", e.IntentCount())
	}

	// Other readers at ts >= 10 block on the intent.
	_, _, err := e.Get(k("a"), ts(15), GetOptions{})
	var wie *WriteIntentError
	if !errors.As(err, &wie) || wie.Txn.ID != 7 {
		t.Fatalf("expected WriteIntentError{txn 7}, got %v", err)
	}
	// Readers below the intent timestamp don't see or block on it.
	val, _, err := e.Get(k("a"), ts(5), GetOptions{})
	if err != nil || val != nil {
		t.Fatalf("reader below intent: %q, %v", val, err)
	}
	// The owning transaction reads its own write.
	val, _, err = e.Get(k("a"), ts(15), GetOptions{Txn: txn})
	if err != nil || string(val) != "prov" {
		t.Fatalf("read-your-writes: %q, %v", val, err)
	}
}

func TestIntentWriteConflict(t *testing.T) {
	e := NewEngine(1)
	t1 := &TxnMeta{ID: 1}
	t2 := &TxnMeta{ID: 2}
	if _, err := e.Put(k("a"), v("x"), ts(10), t1); err != nil {
		t.Fatal(err)
	}
	_, err := e.Put(k("a"), v("y"), ts(20), t2)
	var wie *WriteIntentError
	if !errors.As(err, &wie) {
		t.Fatalf("expected WriteIntentError, got %v", err)
	}
	// Non-transactional writers also block.
	if _, err := e.Put(k("a"), v("z"), ts(20), nil); err == nil {
		t.Fatal("non-txn write over intent should fail")
	}
	// The owner can rewrite its own intent, advancing its timestamp.
	if _, err := e.Put(k("a"), v("x2"), ts(30), t1); err != nil {
		t.Fatal(err)
	}
	meta, ok := e.GetIntent(k("a"))
	if !ok || meta.WriteTimestamp != ts(30) {
		t.Fatalf("intent after rewrite: %v %v", meta, ok)
	}
	if e.IntentCount() != 1 {
		t.Fatalf("IntentCount = %d after rewrite", e.IntentCount())
	}
}

func TestResolveIntentCommit(t *testing.T) {
	e := NewEngine(1)
	txn := &TxnMeta{ID: 9}
	if _, err := e.Put(k("a"), v("val"), ts(10), txn); err != nil {
		t.Fatal(err)
	}
	// Commit at a pushed timestamp.
	if err := e.ResolveIntent(k("a"), 9, Committed, ts(12)); err != nil {
		t.Fatal(err)
	}
	if e.IntentCount() != 0 {
		t.Fatal("intent not cleared")
	}
	val, vts, err := e.Get(k("a"), ts(15), GetOptions{})
	if err != nil || string(val) != "val" || vts != ts(12) {
		t.Fatalf("after commit: %q@%v err=%v", val, vts, err)
	}
	// Idempotent re-resolution.
	if err := e.ResolveIntent(k("a"), 9, Committed, ts(12)); err != nil {
		t.Fatal(err)
	}
}

func TestResolveIntentAbort(t *testing.T) {
	e := NewEngine(1)
	mustPut(t, e, "a", "base", 5, nil)
	txn := &TxnMeta{ID: 9}
	if _, err := e.Put(k("a"), v("prov"), ts(10), txn); err != nil {
		t.Fatal(err)
	}
	if err := e.ResolveIntent(k("a"), 9, Aborted, hlc.Timestamp{}); err != nil {
		t.Fatal(err)
	}
	val, _, err := e.Get(k("a"), ts(15), GetOptions{})
	if err != nil || string(val) != "base" {
		t.Fatalf("after abort: %q err=%v", val, err)
	}
}

func TestUncertaintyInterval(t *testing.T) {
	e := NewEngine(1)
	mustPut(t, e, "a", "new", 100, nil)

	// Read at 90 with uncertainty through 110: must observe the value.
	_, _, err := e.Get(k("a"), ts(90), GetOptions{UncertaintyLimit: ts(110)})
	var ue *UncertaintyError
	if !errors.As(err, &ue) {
		t.Fatalf("expected UncertaintyError, got %v", err)
	}
	if ue.ValueTimestamp != ts(100) {
		t.Fatalf("ValueTimestamp = %v", ue.ValueTimestamp)
	}
	if ue.FutureTime {
		t.Fatal("FutureTime set without LocalLimit")
	}

	// Future-time flag: local clock (95) behind the value (100).
	_, _, err = e.Get(k("a"), ts(90), GetOptions{UncertaintyLimit: ts(110), LocalLimit: ts(95)})
	if !errors.As(err, &ue) || !ue.FutureTime {
		t.Fatalf("expected future-time uncertainty, got %v", err)
	}

	// Value outside the interval: invisible, no error.
	val, _, err := e.Get(k("a"), ts(90), GetOptions{UncertaintyLimit: ts(99)})
	if err != nil || val != nil {
		t.Fatalf("outside uncertainty: %q, %v", val, err)
	}

	// Stale reads disable uncertainty entirely.
	val, _, err = e.Get(k("a"), ts(90), GetOptions{})
	if err != nil || val != nil {
		t.Fatalf("no-uncertainty read: %q, %v", val, err)
	}
}

func TestUncertainIntentBlocks(t *testing.T) {
	e := NewEngine(1)
	txn := &TxnMeta{ID: 3}
	if _, err := e.Put(k("a"), v("x"), ts(100), txn); err != nil {
		t.Fatal(err)
	}
	// Intent above read ts but within uncertainty: blocks.
	_, _, err := e.Get(k("a"), ts(90), GetOptions{UncertaintyLimit: ts(110)})
	var wie *WriteIntentError
	if !errors.As(err, &wie) {
		t.Fatalf("expected WriteIntentError, got %v", err)
	}
	// Intent above the uncertainty limit: invisible.
	val, _, err := e.Get(k("a"), ts(90), GetOptions{UncertaintyLimit: ts(95)})
	if err != nil || val != nil {
		t.Fatalf("intent above uncertainty: %q, %v", val, err)
	}
}

func TestScan(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 10; i++ {
		mustPut(t, e, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i), 10, nil)
	}
	e.Delete(k("k03"), ts(20), nil)

	kvs, err := e.Scan(k("k02"), k("k07"), ts(30), 0, GetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, kv := range kvs {
		got = append(got, string(kv.Key))
	}
	want := []string{"k02", "k04", "k05", "k06"}
	if len(got) != len(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}

	// Limit.
	kvs, _ = e.Scan(k("k00"), nil, ts(30), 3, GetOptions{})
	if len(kvs) != 3 {
		t.Fatalf("limited scan returned %d", len(kvs))
	}

	// Scan hits an intent.
	if _, err := e.Put(k("k05"), v("locked"), ts(25), &TxnMeta{ID: 4}); err != nil {
		t.Fatal(err)
	}
	_, err = e.Scan(k("k00"), nil, ts(30), 0, GetOptions{})
	var wie *WriteIntentError
	if !errors.As(err, &wie) || string(wie.Key) != "k05" {
		t.Fatalf("scan over intent: %v", err)
	}
}

func TestPushIntentTimestamp(t *testing.T) {
	e := NewEngine(1)
	txn := &TxnMeta{ID: 5}
	if _, err := e.Put(k("a"), v("x"), ts(10), txn); err != nil {
		t.Fatal(err)
	}
	if !e.PushIntentTimestamp(k("a"), 5, ts(50)) {
		t.Fatal("push failed")
	}
	meta, _ := e.GetIntent(k("a"))
	if meta.WriteTimestamp != ts(50) {
		t.Fatalf("pushed ts = %v", meta.WriteTimestamp)
	}
	// Pushing backwards is a no-op.
	e.PushIntentTimestamp(k("a"), 5, ts(20))
	meta, _ = e.GetIntent(k("a"))
	if meta.WriteTimestamp != ts(50) {
		t.Fatal("push regressed timestamp")
	}
	if e.PushIntentTimestamp(k("a"), 99, ts(60)) {
		t.Fatal("pushed someone else's intent")
	}
}

func TestEpochIsolation(t *testing.T) {
	e := NewEngine(1)
	txn := &TxnMeta{ID: 6, Epoch: 0}
	if _, err := e.Put(k("a"), v("old-epoch"), ts(10), txn); err != nil {
		t.Fatal(err)
	}
	// After a restart the txn re-reads at epoch 1: old intent invisible.
	reader := &TxnMeta{ID: 6, Epoch: 1}
	val, _, err := e.Get(k("a"), ts(15), GetOptions{Txn: reader})
	if err != nil || val != nil {
		t.Fatalf("old-epoch intent visible: %q %v", val, err)
	}
	// New epoch rewrites the intent.
	if _, err := e.Put(k("a"), v("new-epoch"), ts(20), reader); err != nil {
		t.Fatal(err)
	}
	val, _, _ = e.Get(k("a"), ts(25), GetOptions{Txn: reader})
	if string(val) != "new-epoch" {
		t.Fatalf("got %q", val)
	}
}

func TestGC(t *testing.T) {
	e := NewEngine(1)
	for i := int64(1); i <= 10; i++ {
		mustPut(t, e, "a", fmt.Sprintf("v%d", i), i*10, nil)
	}
	if n := e.VersionCount(k("a")); n != 10 {
		t.Fatalf("versions = %d", n)
	}
	collected := e.GC(ts(55))
	if collected != 4 {
		t.Fatalf("collected %d, want 4", collected)
	}
	// Reads at or above the threshold are unaffected.
	val, _, _ := e.Get(k("a"), ts(55), GetOptions{})
	if string(val) != "v5" {
		t.Fatalf("Get@55 after GC = %q", val)
	}
	val, _, _ = e.Get(k("a"), ts(200), GetOptions{})
	if string(val) != "v10" {
		t.Fatalf("Get@200 after GC = %q", val)
	}
}

func TestResolveCommitBelowExistingFails(t *testing.T) {
	e := NewEngine(1)
	txn := &TxnMeta{ID: 8}
	if _, err := e.Put(k("a"), v("x"), ts(10), txn); err != nil {
		t.Fatal(err)
	}
	mustPut := func(at int64) {
		if _, err := e.Put(k("b"), v("y"), ts(at), nil); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(50)
	_ = mustPut
	// Simulate an illegal resolution below an existing committed version
	// on the same key: first commit a newer version is impossible while
	// the intent exists, so resolve at a normal ts then check the guard
	// by direct call.
	if err := e.ResolveIntent(k("a"), 8, Committed, ts(12)); err != nil {
		t.Fatal(err)
	}
	txn2 := &TxnMeta{ID: 9}
	if _, err := e.Put(k("a"), v("z"), ts(20), txn2); err != nil {
		t.Fatal(err)
	}
	if err := e.ResolveIntent(k("a"), 9, Committed, ts(5)); err == nil {
		t.Fatal("commit below existing version should error")
	}
}

// Property: for any interleaving of non-transactional writes at distinct
// ascending timestamps, a read at time T returns the value with the largest
// timestamp <= T.
func TestQuickSnapshotSemantics(t *testing.T) {
	f := func(writes []uint8, readAt uint8) bool {
		e := NewEngine(3)
		type w struct {
			ts  int64
			val string
		}
		var log []w
		next := int64(1)
		for _, x := range writes {
			next += int64(x%7) + 1
			val := fmt.Sprintf("v@%d", next)
			if _, err := e.Put(k("key"), v(val), ts(next), nil); err != nil {
				return false
			}
			log = append(log, w{next, val})
		}
		rts := int64(readAt)
		var want string
		for _, entry := range log {
			if entry.ts <= rts {
				want = entry.val
			}
		}
		got, _, err := e.Get(k("key"), ts(rts), GetOptions{})
		if err != nil {
			return false
		}
		if want == "" {
			return got == nil
		}
		return string(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: scans return keys in strictly ascending order with no
// duplicates, for arbitrary key sets.
func TestQuickScanOrdered(t *testing.T) {
	f := func(keys [][]byte) bool {
		e := NewEngine(4)
		for i, key := range keys {
			if len(key) == 0 {
				continue
			}
			e.Put(key, v(fmt.Sprintf("%d", i)), ts(int64(i)+1), nil)
		}
		kvs, err := e.Scan(nil, nil, ts(1<<40), 0, GetOptions{})
		if err != nil {
			return false
		}
		for i := 1; i < len(kvs); i++ {
			if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

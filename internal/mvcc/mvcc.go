// Package mvcc implements the multi-version concurrency control storage
// engine used by every replica in mrdb.
//
// The engine stores, per user key, a chain of committed versions ordered by
// descending HLC timestamp plus at most one provisional version — a write
// intent — belonging to an in-flight transaction. Reads are served at a
// snapshot timestamp and report the conflicts that drive the transaction
// protocol upstairs: write intents (locks), reads within the uncertainty
// interval (paper §6.1), and write-too-old conditions.
package mvcc

import (
	"fmt"

	"mrdb/internal/hlc"
	"mrdb/internal/skl"
)

// Key is a user key in the monolithic sorted keyspace.
type Key []byte

// Value is an opaque value; nil marks a deletion tombstone.
type Value []byte

// TxnID identifies a transaction.
type TxnID uint64

// TxnMeta is the subset of transaction state that rides along with writes
// and is stored inside intents.
type TxnMeta struct {
	ID TxnID
	// Key is the transaction's anchor key (where its record lives).
	Key Key
	// Epoch increments on transaction restarts; intents from older epochs
	// are discarded.
	Epoch int32
	// WriteTimestamp is the provisional commit timestamp of the intent.
	WriteTimestamp hlc.Timestamp
}

// TxnStatus describes the resolution of a transaction.
type TxnStatus int8

// Transaction resolutions.
const (
	Pending TxnStatus = iota
	Committed
	Aborted
)

func (s TxnStatus) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Committed:
		return "COMMITTED"
	case Aborted:
		return "ABORTED"
	}
	return "UNKNOWN"
}

// version is one committed value.
type version struct {
	ts  hlc.Timestamp
	val Value
}

// versions is the per-key chain: newest first, plus an optional intent.
type versions struct {
	intent *intentRecord
	vals   []version // sorted by descending ts
}

type intentRecord struct {
	txn TxnMeta
	val Value
}

// WriteIntentError reports that an operation ran into another transaction's
// provisional write (an exclusive lock).
type WriteIntentError struct {
	Key Key
	Txn TxnMeta
}

func (e *WriteIntentError) Error() string {
	return fmt.Sprintf("conflicting intent on %q held by txn %d at %s", e.Key, e.Txn.ID, e.Txn.WriteTimestamp)
}

// WriteTooOldError reports an attempt to write below an existing committed
// value; the writer must retry at ActualTimestamp or higher.
type WriteTooOldError struct {
	Key             Key
	Timestamp       hlc.Timestamp
	ActualTimestamp hlc.Timestamp
}

func (e *WriteTooOldError) Error() string {
	return fmt.Sprintf("write too old on %q: attempted %s, existing %s", e.Key, e.Timestamp, e.ActualTimestamp.Prev())
}

// UncertaintyError reports a read that observed a value above its read
// timestamp but within its uncertainty interval. The reader must ratchet its
// timestamp to ValueTimestamp and refresh (paper §6.1).
type UncertaintyError struct {
	Key            Key
	ReadTimestamp  hlc.Timestamp
	ValueTimestamp hlc.Timestamp
	// FutureTime is true when the value's timestamp leads the reader's
	// local clock, i.e. it was written by a future-time (global)
	// transaction: after refreshing, the reader must also commit-wait.
	FutureTime bool
}

func (e *UncertaintyError) Error() string {
	return fmt.Sprintf("read on %q at %s within uncertainty of value at %s", e.Key, e.ReadTimestamp, e.ValueTimestamp)
}

// Engine is a single replica's MVCC store. It is not internally
// synchronized: all access happens under the simulator's cooperative
// scheduler (and, in the distributed layer, under range latches).
type Engine struct {
	list *skl.List
	// stats
	keys    int
	intents int
	// freeIntents recycles resolved intent records: the write path of every
	// transactional workload allocates one per intent otherwise.
	freeIntents []*intentRecord
}

// NewEngine returns an empty engine whose internal skiplist derives tower
// heights from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{list: skl.New(seed)}
}

// KeyCount returns the number of distinct user keys (live or tombstoned).
func (e *Engine) KeyCount() int { return e.keys }

// IntentCount returns the number of outstanding write intents.
func (e *Engine) IntentCount() int { return e.intents }

func (e *Engine) chain(key Key) *versions {
	v, ok := e.list.Get(key)
	if !ok {
		return nil
	}
	return v.(*versions)
}

func (e *Engine) chainOrCreate(key Key) *versions {
	if c := e.chain(key); c != nil {
		return c
	}
	c := &versions{}
	e.list.Set(key, c)
	e.keys++
	return c
}

// prependVersion pushes v onto the front of the chain in place, reusing the
// chain's backing array instead of allocating a fresh slice per committed
// write (version chains are newest-first).
func prependVersion(c *versions, v version) {
	c.vals = append(c.vals, version{})
	copy(c.vals[1:], c.vals[:len(c.vals)-1])
	c.vals[0] = v
}

// GetOptions tunes visibility for Get and Scan.
type GetOptions struct {
	// Txn, if non-nil, identifies the reading transaction; its own intent
	// is visible to it.
	Txn *TxnMeta
	// UncertaintyLimit is the exclusive upper bound of the reader's
	// uncertainty interval (read timestamp + max_clock_offset). Values in
	// (ReadTS, UncertaintyLimit] raise UncertaintyError. Zero disables
	// uncertainty checking (used by stale reads, §5.3, whose timestamps
	// never change).
	UncertaintyLimit hlc.Timestamp
	// LocalLimit, if set, is the reader's local HLC reading; used only to
	// flag uncertain values as future-time.
	LocalLimit hlc.Timestamp
}

// Get returns the newest value with timestamp <= ts, its timestamp, and any
// protocol conflict.
func (e *Engine) Get(key Key, ts hlc.Timestamp, opts GetOptions) (Value, hlc.Timestamp, error) {
	c := e.chain(key)
	if c == nil {
		return nil, hlc.Timestamp{}, nil
	}
	return e.getFromChain(key, c, ts, opts)
}

func (e *Engine) getFromChain(key Key, c *versions, ts hlc.Timestamp, opts GetOptions) (Value, hlc.Timestamp, error) {
	if c.intent != nil {
		in := c.intent
		own := opts.Txn != nil && opts.Txn.ID == in.txn.ID
		if own {
			// Read-your-writes: the txn sees its own intent if it
			// is from the current epoch.
			if in.txn.Epoch == opts.Txn.Epoch {
				return in.val, in.txn.WriteTimestamp, nil
			}
			// Stale epoch intents are invisible.
		} else {
			if in.txn.WriteTimestamp.LessEq(ts) {
				// Locked below our read timestamp: must wait.
				return nil, hlc.Timestamp{}, &WriteIntentError{Key: append(Key(nil), key...), Txn: in.txn}
			}
			if !opts.UncertaintyLimit.IsEmpty() && in.txn.WriteTimestamp.LessEq(opts.UncertaintyLimit) {
				// An uncertain intent also blocks: it may commit
				// at a timestamp we would have to observe.
				return nil, hlc.Timestamp{}, &WriteIntentError{Key: append(Key(nil), key...), Txn: in.txn}
			}
		}
	}
	// Uncertainty: any committed value in (ts, uncertaintyLimit]?
	if !opts.UncertaintyLimit.IsEmpty() {
		for _, v := range c.vals {
			if v.ts.LessEq(ts) {
				break
			}
			if v.ts.LessEq(opts.UncertaintyLimit) {
				return nil, hlc.Timestamp{}, &UncertaintyError{
					Key:            append(Key(nil), key...),
					ReadTimestamp:  ts,
					ValueTimestamp: v.ts,
					FutureTime:     !opts.LocalLimit.IsEmpty() && opts.LocalLimit.Less(v.ts),
				}
			}
		}
	}
	for _, v := range c.vals {
		if v.ts.LessEq(ts) {
			if v.val == nil {
				return nil, v.ts, nil // tombstone
			}
			return v.val, v.ts, nil
		}
	}
	return nil, hlc.Timestamp{}, nil
}

// KeyValue pairs a key with the value visible at some read timestamp.
type KeyValue struct {
	Key       Key
	Value     Value
	Timestamp hlc.Timestamp
}

// Scan returns up to max visible key/value pairs in [start, end). A zero max
// means no limit. The first conflict aborts the scan. Returned keys and
// values alias the engine's internal storage (which is never mutated after
// insert) and must not be modified by callers.
func (e *Engine) Scan(start, end Key, ts hlc.Timestamp, max int, opts GetOptions) ([]KeyValue, error) {
	var out []KeyValue
	it := e.list.Iter()
	for it.SeekGE(start); it.Valid(); it.Next() {
		if end != nil && string(it.Key()) >= string(end) {
			break
		}
		c := it.Value().(*versions)
		val, vts, err := e.getFromChain(it.Key(), c, ts, opts)
		if err != nil {
			return nil, err
		}
		if val != nil {
			out = append(out, KeyValue{Key: it.Key(), Value: val, Timestamp: vts})
			if max > 0 && len(out) >= max {
				break
			}
		}
	}
	return out, nil
}

// Put writes value at ts. When txn is non-nil the write is provisional (an
// intent); otherwise it commits immediately. Put enforces the write-too-old
// rule against newer committed values and surfaces conflicting intents.
// It returns the timestamp actually written (>= ts after conflicts).
func (e *Engine) Put(key Key, value Value, ts hlc.Timestamp, txn *TxnMeta) (hlc.Timestamp, error) {
	c := e.chainOrCreate(key)
	if c.intent != nil {
		in := c.intent
		if txn == nil || in.txn.ID != txn.ID {
			return hlc.Timestamp{}, &WriteIntentError{Key: append(Key(nil), key...), Txn: in.txn}
		}
		// Replacing our own intent (same or newer epoch).
		if in.txn.Epoch > txn.Epoch {
			return hlc.Timestamp{}, fmt.Errorf("mvcc: intent from future epoch %d > %d", in.txn.Epoch, txn.Epoch)
		}
	}
	// Write-too-old: cannot write below an existing committed version.
	if len(c.vals) > 0 && ts.LessEq(c.vals[0].ts) {
		return hlc.Timestamp{}, &WriteTooOldError{
			Key:             append(Key(nil), key...),
			Timestamp:       ts,
			ActualTimestamp: c.vals[0].ts.Next(),
		}
	}
	if txn != nil {
		meta := *txn
		meta.WriteTimestamp = ts
		if c.intent != nil {
			// Replacing our own intent: reuse the record.
			c.intent.txn, c.intent.val = meta, value
			return ts, nil
		}
		e.intents++
		if n := len(e.freeIntents); n > 0 {
			in := e.freeIntents[n-1]
			e.freeIntents[n-1] = nil
			e.freeIntents = e.freeIntents[:n-1]
			in.txn, in.val = meta, value
			c.intent = in
		} else {
			c.intent = &intentRecord{txn: meta, val: value}
		}
		return ts, nil
	}
	prependVersion(c, version{ts: ts, val: value})
	return ts, nil
}

// Delete writes a tombstone; semantics match Put.
func (e *Engine) Delete(key Key, ts hlc.Timestamp, txn *TxnMeta) (hlc.Timestamp, error) {
	return e.Put(key, nil, ts, txn)
}

// GetIntent returns the intent on key, if any.
func (e *Engine) GetIntent(key Key) (TxnMeta, bool) {
	c := e.chain(key)
	if c == nil || c.intent == nil {
		return TxnMeta{}, false
	}
	return c.intent.txn, true
}

// ResolveIntent finalizes the intent held by txnID on key. For Committed the
// provisional value becomes a committed version at commitTS; for Aborted it
// is dropped. Resolving a non-existent or different-transaction intent is a
// no-op (resolution is idempotent, as in the real system).
func (e *Engine) ResolveIntent(key Key, txnID TxnID, status TxnStatus, commitTS hlc.Timestamp) error {
	if status == Pending {
		return fmt.Errorf("mvcc: cannot resolve intent to PENDING")
	}
	c := e.chain(key)
	if c == nil || c.intent == nil || c.intent.txn.ID != txnID {
		return nil
	}
	in := c.intent
	c.intent = nil
	e.intents--
	if status == Aborted {
		e.recycleIntent(in)
		return nil
	}
	ts := commitTS
	if ts.IsEmpty() {
		ts = in.txn.WriteTimestamp
	}
	if len(c.vals) > 0 && ts.LessEq(c.vals[0].ts) {
		return fmt.Errorf("mvcc: commit at %s below existing version %s", ts, c.vals[0].ts)
	}
	prependVersion(c, version{ts: ts, val: in.val})
	e.recycleIntent(in)
	return nil
}

// maxFreeIntents caps the intent-record freelist.
const maxFreeIntents = 64

// recycleIntent returns a detached intent record to the freelist. Only the
// record itself is recycled; the value slice it pointed at may still be
// referenced by readers and is never touched.
func (e *Engine) recycleIntent(in *intentRecord) {
	if len(e.freeIntents) >= maxFreeIntents {
		return
	}
	in.txn, in.val = TxnMeta{}, nil
	e.freeIntents = append(e.freeIntents, in)
}

// PushIntentTimestamp advances the provisional timestamp of txnID's intent
// on key to at least newTS. Used when a reader pushes a writer.
func (e *Engine) PushIntentTimestamp(key Key, txnID TxnID, newTS hlc.Timestamp) bool {
	c := e.chain(key)
	if c == nil || c.intent == nil || c.intent.txn.ID != txnID {
		return false
	}
	if c.intent.txn.WriteTimestamp.Less(newTS) {
		c.intent.txn.WriteTimestamp = newTS
	}
	return true
}

// GC removes committed versions older than threshold on every key, keeping
// at least the newest version (so reads at or above threshold still see
// data). It returns the number of versions collected.
func (e *Engine) GC(threshold hlc.Timestamp) int {
	collected := 0
	it := e.list.Iter()
	for it.First(); it.Valid(); it.Next() {
		c := it.Value().(*versions)
		// Find the newest version <= threshold; everything older than it
		// is invisible to any read at >= threshold.
		for i, v := range c.vals {
			if v.ts.LessEq(threshold) {
				if cut := len(c.vals) - (i + 1); cut > 0 {
					collected += cut
					c.vals = c.vals[:i+1]
				}
				break
			}
		}
	}
	return collected
}

// HasNewerVersion reports whether key has a committed version or a foreign
// intent in (fromTS, toTS]. It backs transaction refreshes (paper §6.1):
// a refresh from fromTS to toTS succeeds only if nothing was written in
// between that the transaction would have had to observe.
func (e *Engine) HasNewerVersion(key Key, fromTS, toTS hlc.Timestamp, ignoreTxn TxnID) bool {
	c := e.chain(key)
	if c == nil {
		return false
	}
	if c.intent != nil && c.intent.txn.ID != ignoreTxn {
		its := c.intent.txn.WriteTimestamp
		if fromTS.Less(its) && its.LessEq(toTS) {
			return true
		}
	}
	for _, v := range c.vals {
		if v.ts.LessEq(fromTS) {
			break
		}
		if v.ts.LessEq(toTS) {
			return true
		}
	}
	return false
}

// HasNewerVersionInSpan applies HasNewerVersion to every key in
// [start, end), backing span refreshes for scans.
func (e *Engine) HasNewerVersionInSpan(start, end Key, fromTS, toTS hlc.Timestamp, ignoreTxn TxnID) bool {
	it := e.list.Iter()
	for it.SeekGE(start); it.Valid(); it.Next() {
		if end != nil && string(it.Key()) >= string(end) {
			break
		}
		if e.HasNewerVersion(it.Key(), fromTS, toTS, ignoreTxn) {
			return true
		}
	}
	return false
}

// MinIntentTS returns the lowest intent timestamp in [start, end), if any.
// It backs bounded-staleness negotiation (paper §5.3.2).
func (e *Engine) MinIntentTS(start, end Key) (hlc.Timestamp, bool) {
	var minTS hlc.Timestamp
	found := false
	it := e.list.Iter()
	for it.SeekGE(start); it.Valid(); it.Next() {
		if end != nil && string(it.Key()) >= string(end) {
			break
		}
		c := it.Value().(*versions)
		if c.intent != nil {
			ts := c.intent.txn.WriteTimestamp
			if !found || ts.Less(minTS) {
				minTS, found = ts, true
			}
		}
	}
	return minTS, found
}

// ApproxMiddleKey returns the median live key in [start, end), if the span
// holds at least two keys; the split point chosen by the split queue.
func (e *Engine) ApproxMiddleKey(start, end Key) (Key, bool) {
	n := e.KeyCountInSpan(start, end)
	if n < 2 {
		return nil, false
	}
	it := e.list.Iter()
	i := 0
	for it.SeekGE(start); it.Valid(); it.Next() {
		if i == n/2 {
			return append(Key(nil), it.Key()...), true
		}
		i++
	}
	return nil, false
}

// KeyCountInSpan counts distinct keys in [start, end).
func (e *Engine) KeyCountInSpan(start, end Key) int {
	n := 0
	it := e.list.Iter()
	for it.SeekGE(start); it.Valid(); it.Next() {
		if end != nil && string(it.Key()) >= string(end) {
			break
		}
		n++
	}
	return n
}

// CopyTo deep-copies all data (committed versions and intents) in
// [start, end) into dst; the substrate of range splits.
func (e *Engine) CopyTo(dst *Engine, start, end Key) {
	it := e.list.Iter()
	for it.SeekGE(start); it.Valid(); it.Next() {
		if end != nil && string(it.Key()) >= string(end) {
			break
		}
		src := it.Value().(*versions)
		cp := &versions{vals: make([]version, len(src.vals))}
		for i, v := range src.vals {
			cp.vals[i] = version{ts: v.ts, val: append(Value(nil), v.val...)}
		}
		if src.intent != nil {
			cp.intent = &intentRecord{txn: src.intent.txn, val: append(Value(nil), src.intent.val...)}
			dst.intents++
		}
		dst.list.Set(it.Key(), cp)
		dst.keys++
	}
}

// SnapshotVersion is one committed version in a serialized engine snapshot.
type SnapshotVersion struct {
	Ts  hlc.Timestamp
	Val Value
}

// SnapshotIntent is a provisional write in a serialized engine snapshot.
type SnapshotIntent struct {
	Txn TxnMeta
	Val Value
}

// SnapshotKey is one key's full version chain in a serialized snapshot.
type SnapshotKey struct {
	Key      Key
	Versions []SnapshotVersion
	Intent   *SnapshotIntent
}

// Snapshot serializes the engine's entire contents into a flat, sorted,
// deep-copied form suitable for checkpointing to disk or shipping to a
// lagging replica. All fields are exported plain data so encoding/gob can
// round-trip it.
func (e *Engine) Snapshot() []SnapshotKey {
	out := make([]SnapshotKey, 0, e.keys)
	it := e.list.Iter()
	for it.First(); it.Valid(); it.Next() {
		src := it.Value().(*versions)
		sk := SnapshotKey{Key: append(Key(nil), it.Key()...)}
		if len(src.vals) > 0 {
			sk.Versions = make([]SnapshotVersion, len(src.vals))
			for i, v := range src.vals {
				sk.Versions[i] = SnapshotVersion{Ts: v.ts, Val: append(Value(nil), v.val...)}
			}
		}
		if src.intent != nil {
			sk.Intent = &SnapshotIntent{Txn: src.intent.txn, Val: append(Value(nil), src.intent.val...)}
		}
		out = append(out, sk)
	}
	return out
}

// LoadSnapshot populates the engine from a snapshot produced by Snapshot.
// The engine must be freshly constructed (empty); recovery builds a new
// Engine per replica rather than clearing one in place.
func (e *Engine) LoadSnapshot(snap []SnapshotKey) {
	for _, sk := range snap {
		c := &versions{}
		if len(sk.Versions) > 0 {
			c.vals = make([]version, len(sk.Versions))
			for i, v := range sk.Versions {
				c.vals[i] = version{ts: v.Ts, val: append(Value(nil), v.Val...)}
			}
		}
		if sk.Intent != nil {
			c.intent = &intentRecord{txn: sk.Intent.Txn, val: append(Value(nil), sk.Intent.Val...)}
			e.intents++
		}
		e.list.Set(append(Key(nil), sk.Key...), c)
		e.keys++
	}
}

// VersionCount returns the number of committed versions stored for key;
// a testing and introspection hook.
func (e *Engine) VersionCount(key Key) int {
	c := e.chain(key)
	if c == nil {
		return 0
	}
	return len(c.vals)
}

package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
)

// TestScanAcrossMerge is the merge-side mirror of TestScanAcrossSplit: a
// range is split twice and then merged back while reads and writes keep
// flowing. Scans that hold a resume key across a boundary that merges away
// between the two halves of the scan, and full scans racing the merges
// themselves, must return exactly the rows a quiesced cluster returns — no
// duplicates, no holes, no stale pre-merge copies.
func TestScanAcrossMerge(t *testing.T) {
	c := New(Config{Seed: 47, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	desc := regionalRange(t, c, "mg")
	key := func(i int) mvcc.Key { return mvcc.Key(fmt.Sprintf("mg/%03d", i)) }
	const rows = 12
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		gw := c.GatewayFor(simnet.USEast1)
		co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
		for i := 0; i < rows; i++ {
			if err := co.Run(p, func(tx *txn.Txn) error {
				return tx.Put(p, key(i), mvcc.Value(fmt.Sprintf("v-%d", i)))
			}); err != nil {
				t.Error(err)
				return
			}
		}
		// Split twice: [mg/, 004), [004, 008), [008, mg0).
		mid, err := c.Admin.SplitRange(p, desc.RangeID, key(4))
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if _, err := c.Admin.SplitRange(p, mid.RangeID, key(8)); err != nil {
			t.Errorf("second split: %v", err)
			return
		}

		// Traffic during the merges: a writer that keeps overwriting key 9
		// (on the right-most range, the one subsumed twice), and scanners
		// that must always see exactly 12 ordered rows.
		stop := false
		writes := 0
		wg := sim.NewWaitGroup(c.Sim)
		wg.Add(1)
		c.Sim.Spawn("merge-writer", func(wp *sim.Proc) {
			defer wg.Done()
			wco := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
			for !stop {
				writes++
				v := mvcc.Value(fmt.Sprintf("w-%d", writes))
				if err := wco.Run(wp, func(tx *txn.Txn) error {
					return tx.Put(wp, key(9), v)
				}); err != nil {
					t.Errorf("write under merge: %v", err)
					return
				}
				wp.Sleep(20 * sim.Millisecond)
			}
		})
		fullScans := 0
		wg.Add(1)
		c.Sim.Spawn("merge-scanner", func(wp *sim.Proc) {
			defer wg.Done()
			sco := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
			for !stop {
				var got []mvcc.KeyValue
				if err := sco.Run(wp, func(tx *txn.Txn) error {
					var err error
					got, err = tx.Scan(wp, mvcc.Key("mg/"), mvcc.Key("mg0"), 0)
					return err
				}); err != nil {
					t.Errorf("scan under merge: %v", err)
					return
				}
				fullScans++
				if len(got) != rows {
					t.Errorf("scan under merge: %d rows, want %d", len(got), rows)
					return
				}
				for i, r := range got {
					if !bytes.Equal(r.Key, key(i)) {
						t.Errorf("scan under merge: row %d is %q, want %q", i, r.Key, key(i))
						return
					}
				}
				wp.Sleep(30 * sim.Millisecond)
			}
		})

		// A resume-key scan whose boundary disappears mid-scan: read the
		// first 6 rows (ending inside the middle range), let both merges run,
		// then continue from the held resume position.
		var head []mvcc.KeyValue
		if err := co.Run(p, func(tx *txn.Txn) error {
			var err error
			head, err = tx.Scan(p, mvcc.Key("mg/"), mvcc.Key("mg0"), 6)
			return err
		}); err != nil {
			t.Errorf("head scan: %v", err)
			return
		}
		if len(head) != 6 {
			t.Errorf("head scan: %d rows, want 6", len(head))
			return
		}
		resume := append(append(mvcc.Key(nil), head[5].Key...), 0)

		// Merge everything back under the traffic: first [004,008)+[008,mg0),
		// then [mg/,004)+[004,mg0).
		if err := c.Admin.MergeRanges(p, mid.RangeID); err != nil {
			t.Errorf("merge right pair: %v", err)
			return
		}
		if err := c.Admin.MergeRanges(p, desc.RangeID); err != nil {
			t.Errorf("merge left pair: %v", err)
			return
		}
		merged, err := c.Catalog.Lookup(key(0))
		if err != nil || merged.RangeID != desc.RangeID || merged.EndKey == nil ||
			!bytes.Equal(merged.EndKey, mvcc.Key("mg0")) {
			t.Errorf("post-merge descriptor: %v %v", merged, err)
			return
		}

		// Finish the held scan across the now-vanished boundaries.
		var tail []mvcc.KeyValue
		if err := co.Run(p, func(tx *txn.Txn) error {
			var err error
			tail, err = tx.Scan(p, resume, mvcc.Key("mg0"), 0)
			return err
		}); err != nil {
			t.Errorf("resumed scan: %v", err)
			return
		}
		combined := append(append([]mvcc.KeyValue(nil), head...), tail...)
		if len(combined) != rows {
			t.Errorf("resumed scan across merge: %d rows total, want %d", len(combined), rows)
		}
		for i, r := range combined {
			if i < len(combined) && !bytes.Equal(r.Key, key(i)) {
				t.Errorf("resumed scan row %d: %q, want %q", i, r.Key, key(i))
			}
		}

		p.Sleep(2 * sim.Second)
		stop = true
		wg.Wait(p)
		if fullScans == 0 || writes == 0 {
			t.Errorf("traffic never overlapped the merges: scans=%d writes=%d", fullScans, writes)
		}

		// Quiesced reference scan: identical row set, and key 9 holds the
		// writer's last confirmed value.
		var ref []mvcc.KeyValue
		if err := co.Run(p, func(tx *txn.Txn) error {
			var err error
			ref, err = tx.Scan(p, mvcc.Key("mg/"), mvcc.Key("mg0"), 0)
			return err
		}); err != nil {
			t.Errorf("quiesced scan: %v", err)
			return
		}
		if len(ref) != rows {
			t.Errorf("quiesced scan: %d rows, want %d", len(ref), rows)
			return
		}
		if want := fmt.Sprintf("w-%d", writes); string(ref[9].Value) != want {
			t.Errorf("key 9 after merges = %q, want %q (last confirmed write)", ref[9].Value, want)
		}
	})
	c.Sim.RunFor(10 * 60 * sim.Second)
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
}

// TestStaleRouteAfterMerge pins the stale-catalog safety property: a sender
// that still routes with the pre-merge descriptor (defunct range ID, old
// leaseholder) must get RangeKeyMismatchError — never stale rows — and a
// refreshed lookup through the shared catalog must then return the data the
// merged range owns.
func TestStaleRouteAfterMerge(t *testing.T) {
	c := New(Config{Seed: 48, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	desc := regionalRange(t, c, "st")
	key := func(i int) mvcc.Key { return mvcc.Key(fmt.Sprintf("st/%03d", i)) }
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		gw := c.GatewayFor(simnet.USEast1)
		co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
		for i := 0; i < 8; i++ {
			if err := co.Run(p, func(tx *txn.Txn) error {
				return tx.Put(p, key(i), mvcc.Value(fmt.Sprintf("v-%d", i)))
			}); err != nil {
				t.Error(err)
				return
			}
		}
		rhs, err := c.Admin.SplitRange(p, desc.RangeID, key(4))
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		// Capture the route a stale cache would hold, then merge it away.
		staleID, staleLease := rhs.RangeID, rhs.Leaseholder
		if err := c.Admin.MergeRanges(p, desc.RangeID); err != nil {
			t.Errorf("merge: %v", err)
			return
		}
		// The post-merge write the stale route must not miss.
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, key(6), mvcc.Value("post-merge"))
		}); err != nil {
			t.Error(err)
			return
		}
		// Stale-routed RPC: old range ID straight at the old leaseholder.
		raw, rpcErr := c.Net.SendRPC(p, gw, staleLease, kv.BatchRequest{
			RangeID: staleID,
			Req: &kv.GetRequest{
				Key:       key(6),
				Timestamp: c.Stores[gw].Clock.Now(),
			},
		}, 0)
		if rpcErr != nil {
			t.Errorf("stale route rpc: %v", rpcErr)
			return
		}
		resp := raw.(kv.Response)
		var rkm *kv.RangeKeyMismatchError
		if resp.Err == nil || !errors.As(resp.Err, &rkm) {
			t.Errorf("stale route: err = %v, want RangeKeyMismatchError", resp.Err)
		}
		if resp.Get != nil {
			t.Errorf("stale route returned data: %v", resp.Get)
		}
		// The DistSender path (fresh catalog lookup + mismatch retry) serves
		// the post-merge value.
		var got mvcc.Value
		if err := co.Run(p, func(tx *txn.Txn) error {
			v, err := tx.Get(p, key(6))
			got = v
			return err
		}); err != nil || string(got) != "post-merge" {
			t.Errorf("refreshed read: %q %v, want post-merge", got, err)
		}
	})
	c.Sim.RunFor(10 * 60 * sim.Second)
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
}

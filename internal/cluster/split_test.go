package cluster

import (
	"fmt"
	"testing"

	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
)

// TestRangeSplit exercises Admin.SplitRange: data lands on both sides, the
// catalog routes correctly, and reads/writes keep working on both halves.
func TestRangeSplit(t *testing.T) {
	c := New(Config{Seed: 41, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	desc := regionalRange(t, c, "sp")
	key := func(i int) mvcc.Key { return mvcc.Key(fmt.Sprintf("sp/%03d", i)) }
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		gw := c.GatewayFor(simnet.USEast1)
		co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
		for i := 0; i < 10; i++ {
			if err := co.Run(p, func(tx *txn.Txn) error {
				return tx.Put(p, key(i), mvcc.Value(fmt.Sprintf("v%d", i)))
			}); err != nil {
				t.Error(err)
				return
			}
		}
		newDesc, err := c.Admin.SplitRange(p, desc.RangeID, key(5))
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		// Catalog routes each half correctly.
		left, err := c.Catalog.Lookup(key(2))
		if err != nil || left.RangeID != desc.RangeID {
			t.Errorf("left lookup: %v %v", left, err)
		}
		right, err := c.Catalog.Lookup(key(7))
		if err != nil || right.RangeID != newDesc.RangeID {
			t.Errorf("right lookup: %v %v", right, err)
		}
		// All data readable on both halves; writes work on both.
		for i := 0; i < 10; i++ {
			var got mvcc.Value
			if err := co.Run(p, func(tx *txn.Txn) error {
				v, err := tx.Get(p, key(i))
				got = v
				return err
			}); err != nil || string(got) != fmt.Sprintf("v%d", i) {
				t.Errorf("key %d after split: %q %v", i, got, err)
			}
		}
		if err := co.Run(p, func(tx *txn.Txn) error {
			if err := tx.Put(p, key(2), mvcc.Value("left-after")); err != nil {
				return err
			}
			return tx.Put(p, key(8), mvcc.Value("right-after"))
		}); err != nil {
			t.Errorf("cross-split txn: %v", err)
		}
		var got mvcc.Value
		co.Run(p, func(tx *txn.Txn) error {
			v, err := tx.Get(p, key(8))
			got = v
			return err
		})
		if string(got) != "right-after" {
			t.Errorf("right half write lost: %q", got)
		}
		// Splitting again inside the right half works too.
		if _, err := c.Admin.SplitRange(p, newDesc.RangeID, key(8)); err != nil {
			t.Errorf("second split: %v", err)
		}
		// Invalid split keys are rejected.
		if _, err := c.Admin.SplitRange(p, desc.RangeID, mvcc.Key("zz")); err == nil {
			t.Error("split outside range accepted")
		}
	})
	c.Sim.RunFor(10 * 60 * sim.Second)
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
}

// TestScanAcrossSplit is the regression test for the cross-range scan hole:
// replicas must truncate scans to their range bounds and return a resume
// key. Before the fix, the left replica's engine (which retains a stale
// copy of the right half's data from the split) answered for the whole
// span, so a scan could return rows the range no longer owns and miss
// writes that landed on the right-hand range after the split.
func TestScanAcrossSplit(t *testing.T) {
	c := New(Config{Seed: 43, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	desc := regionalRange(t, c, "sc")
	key := func(i int) mvcc.Key { return mvcc.Key(fmt.Sprintf("sc/%03d", i)) }
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		gw := c.GatewayFor(simnet.USEast1)
		co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
		for i := 0; i < 12; i++ {
			if err := co.Run(p, func(tx *txn.Txn) error {
				return tx.Put(p, key(i), mvcc.Value(fmt.Sprintf("old-%d", i)))
			}); err != nil {
				t.Error(err)
				return
			}
		}
		// Split twice: [sc/, 004), [004, 008), [008, sc0).
		mid, err := c.Admin.SplitRange(p, desc.RangeID, key(4))
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if _, err := c.Admin.SplitRange(p, mid.RangeID, key(8)); err != nil {
			t.Errorf("second split: %v", err)
			return
		}
		// Overwrite rows on both sides AFTER the splits: the left replica's
		// engine still holds the pre-split copies of the right-half keys,
		// so an untruncated scan would return these rows stale.
		if err := co.Run(p, func(tx *txn.Txn) error {
			for _, i := range []int{2, 5, 9} {
				if err := tx.Put(p, key(i), mvcc.Value(fmt.Sprintf("new-%d", i))); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Error(err)
			return
		}
		want := func(i int) string {
			if i == 2 || i == 5 || i == 9 {
				return fmt.Sprintf("new-%d", i)
			}
			return fmt.Sprintf("old-%d", i)
		}
		// Full-span scan must return every row exactly once, in order,
		// with the post-split values.
		var rows []mvcc.KeyValue
		if err := co.Run(p, func(tx *txn.Txn) error {
			var err error
			rows, err = tx.Scan(p, mvcc.Key("sc/"), mvcc.Key("sc0"), 0)
			return err
		}); err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		if len(rows) != 12 {
			t.Errorf("scan across splits: got %d rows, want 12", len(rows))
		}
		for i, r := range rows {
			if i < 12 && (string(r.Key) != string(key(i)) || string(r.Value) != want(i)) {
				t.Errorf("row %d: got %q=%q, want %q=%q", i, r.Key, r.Value, key(i), want(i))
			}
		}
		// MaxRows cutting across the split boundary: 6 rows spans the first
		// two ranges and must stop exactly at 6.
		if err := co.Run(p, func(tx *txn.Txn) error {
			var err error
			rows, err = tx.Scan(p, mvcc.Key("sc/"), mvcc.Key("sc0"), 6)
			return err
		}); err != nil {
			t.Errorf("limited scan: %v", err)
			return
		}
		if len(rows) != 6 {
			t.Errorf("limited scan: got %d rows, want 6", len(rows))
		}
		for i, r := range rows {
			if string(r.Key) != string(key(i)) || string(r.Value) != want(i) {
				t.Errorf("limited row %d: got %q=%q, want %q=%q", i, r.Key, r.Value, key(i), want(i))
			}
		}
	})
	c.Sim.RunFor(10 * 60 * sim.Second)
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
}

// TestSplitFollowerReads verifies the right-hand range serves stale reads
// from followers after a split (closed timestamps carry over).
func TestSplitFollowerReads(t *testing.T) {
	c := New(Config{Seed: 42, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	desc := regionalRange(t, c, "sf")
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		gw := c.GatewayFor(simnet.USEast1)
		co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("sf/zz"), mvcc.Value("right-side"))
		}); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Admin.SplitRange(p, desc.RangeID, mvcc.Key("sf/m")); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(5 * sim.Second) // close lag + propagation
		asia := txn.NewCoordinator(c.Stores[c.GatewayFor(simnet.AsiaNE1)], c.Senders[c.GatewayFor(simnet.AsiaNE1)])
		start := p.Now()
		v, served, err := asia.ExactStaleRead(p, mvcc.Key("sf/zz"), asia.Store.Clock.Now().Add(-4*sim.Second))
		if err != nil || string(v) != "right-side" {
			t.Errorf("stale read after split: %q %v", v, err)
			return
		}
		loc, _ := c.Topo.LocalityOf(served)
		if loc.Region != simnet.AsiaNE1 {
			t.Errorf("served by %s, want local follower", loc.Region)
		}
		if d := p.Now().Sub(start); d > 10*sim.Millisecond {
			t.Errorf("stale read took %v", d)
		}
	})
	c.Sim.RunFor(10 * 60 * sim.Second)
}

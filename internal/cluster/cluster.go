// Package cluster assembles a complete simulated mrdb cluster: a topology
// of regions/zones/nodes, one Store per node with its own skewed HLC clock,
// the shared range catalog and transaction registry, an Admin for range
// operations, and a DistSender per gateway node.
package cluster

import (
	"fmt"

	"mrdb/internal/hlc"
	"mrdb/internal/kv"
	"mrdb/internal/obs"
	"mrdb/internal/obs/tsdb"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/storage"
	"mrdb/internal/zones"
)

// RegionSpec describes one region of the cluster.
type RegionSpec struct {
	Name         simnet.Region
	Zones        int
	NodesPerZone int
}

// Config parameterizes a cluster.
type Config struct {
	Seed    int64
	Regions []RegionSpec
	// MaxOffset is the configured maximum tolerated clock skew
	// (max_clock_offset); it sizes uncertainty intervals and the
	// closed-timestamp lead of GLOBAL ranges. Default 250ms (the paper's
	// CRDB Dedicated default).
	MaxOffset sim.Duration
	// SkewSpread bounds the actual per-node clock skew: each node's
	// clock is offset by a deterministic value in [-SkewSpread/2,
	// +SkewSpread/2]. Real deployments keep actual skew far below the
	// configured maximum; default 2ms.
	SkewSpread sim.Duration
	// RTT, if non-nil, overrides the default Table 1 inter-region RTT
	// matrix.
	RTT map[[2]simnet.Region]sim.Duration
	// Jitter is the network latency jitter fraction; default 0.03.
	Jitter float64
	// CloseLag overrides the lagging closed-timestamp interval.
	CloseLag sim.Duration
	// GCTTL, when non-zero, starts the MVCC garbage-collection loop on
	// every store with this version time-to-live.
	GCTTL sim.Duration
	// AutoSplitKeys, when non-zero, starts the split queue: ranges whose
	// leaseholder holds more live keys are divided.
	AutoSplitKeys int
	// SplitQueueInterval overrides the size-based split queue's cadence
	// (default 5s).
	SplitQueueInterval sim.Duration
	// LoadBased enables the load-based allocator: per-range QPS tracking
	// fed by every DistSender, plus the split/merge/rebalance queue that
	// splits hot ranges at a load-weighted key, merges cold neighbors, and
	// moves leases and replicas toward traffic.
	LoadBased bool
	// Load tunes the load-based queue (zero fields take defaults).
	Load kv.LoadConfig
	// Tracing enables span recording from the start. Tracing is purely
	// passive over virtual time — it never changes the simulation schedule
	// or any latency — so it can also be switched on later with
	// EnableTracing.
	Tracing bool
	// Sampling starts the virtual-time timeseries store (internal/obs/tsdb)
	// and its samplers: one lightweight proc per node snapshots that node's
	// state (replicas, leases held, liveness) every SampleInterval, and the
	// lowest-numbered node's sampler additionally snapshots every
	// cluster-wide registry metric under node 0. Sampling only reads state —
	// it is zero-cost in virtual time, pinned by the metamorphic tests.
	Sampling bool
	// SampleInterval overrides the sampling cadence (default 1s virtual).
	SampleInterval sim.Duration
	// SampleBucket overrides the tsdb rollup bucket width (default 10s).
	SampleBucket sim.Duration
	// SampleBuckets overrides the per-series ring capacity (default 720
	// buckets — 2h of retention at the default width).
	SampleBuckets int
	// Durability gives every node a simulated disk: Raft state persists
	// through checksummed WALs (with fsync latency on the virtual clock),
	// checkpoints truncate the logs, and Cluster.CrashNode/RestartNode
	// model honest power loss plus recovery from disk. Off by default so
	// the in-memory fast path (and its golden outputs) stays untouched.
	Durability bool
	// CheckpointInterval overrides the checkpoint/truncation cadence of
	// durable stores (default kv.DefaultCheckpointInterval).
	CheckpointInterval sim.Duration
	// LegacyScheduler runs the cluster on the pre-optimization simulator
	// scheduler (boxed event heap, closure wakes, unpooled goroutines).
	// Virtual-time behavior is identical either way; this exists so the
	// `mrbench speed` harness can measure wall-clock before/after on the
	// same hardware in the same process.
	LegacyScheduler bool
}

// Cluster is a running simulated deployment.
type Cluster struct {
	Sim      *sim.Simulation
	Topo     *simnet.Topology
	Net      *simnet.Network
	Catalog  *kv.RangeCatalog
	Registry *kv.TxnRegistry
	Admin    *kv.Admin
	Liveness *kv.NodeLiveness
	Stores   map[simnet.NodeID]*kv.Store
	Senders  map[simnet.NodeID]*kv.DistSender

	// Disks holds each node's simulated durable device when Durability is
	// on (empty otherwise).
	Disks map[simnet.NodeID]*storage.Disk

	// Tracer and Metrics are the cluster-wide observability sinks, shared
	// by the network, every DistSender, and every Store. The tracer starts
	// disabled unless Config.Tracing is set.
	Tracer  *obs.Tracer
	Metrics *obs.Registry

	// TSDB is the virtual-time timeseries store fed by the per-node
	// samplers when Config.Sampling is on (nil otherwise; all methods are
	// nil-safe). Harnesses may also Observe raw samples into it directly —
	// observation is passive over virtual time.
	TSDB *tsdb.DB

	// StmtStats and Contention are the SQL-facing introspection registries:
	// per-fingerprint statement statistics recorded by sessions, and
	// contention events recorded by replicas when a request blocks on
	// another transaction's intent. Both are always on — recording is
	// passive over virtual time — and surface through the mrdb_internal
	// virtual tables.
	StmtStats  *obs.StmtStats
	Contention *obs.ContentionLog

	MaxOffset sim.Duration
	regions   []simnet.Region
}

// PaperRegions returns the paper's five-region topology spec (§7.1.1:
// 3 nodes per region; we spread them one per zone).
func PaperRegions() []RegionSpec {
	var out []RegionSpec
	for _, r := range simnet.Table1Regions() {
		out = append(out, RegionSpec{Name: r, Zones: 3, NodesPerZone: 1})
	}
	return out
}

// ThreeRegions returns the 3-region topology used in §7.2 (us-east1,
// europe-west2, asia-northeast1; nine nodes total).
func ThreeRegions() []RegionSpec {
	return []RegionSpec{
		{Name: simnet.USEast1, Zones: 3, NodesPerZone: 1},
		{Name: simnet.EuropeW2, Zones: 3, NodesPerZone: 1},
		{Name: simnet.AsiaNE1, Zones: 3, NodesPerZone: 1},
	}
}

// New builds and wires a cluster. Ranges are created afterwards via
// c.Admin (usually through the SQL layer).
func New(cfg Config) *Cluster {
	if cfg.MaxOffset == 0 {
		cfg.MaxOffset = 250 * sim.Millisecond
	}
	if cfg.SkewSpread == 0 {
		cfg.SkewSpread = 2 * sim.Millisecond
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.03
	}
	s := sim.New(cfg.Seed)
	if cfg.LegacyScheduler {
		s = sim.NewLegacy(cfg.Seed)
	}
	topo := simnet.NewTable1Topology()
	if cfg.RTT != nil {
		topo.RTT = cfg.RTT
	}
	topo.Jitter = cfg.Jitter

	c := &Cluster{
		Sim:       s,
		Topo:      topo,
		Catalog:   kv.NewRangeCatalog(),
		Stores:    map[simnet.NodeID]*kv.Store{},
		Senders:   map[simnet.NodeID]*kv.DistSender{},
		Disks:     map[simnet.NodeID]*storage.Disk{},
		MaxOffset: cfg.MaxOffset,
	}
	c.Tracer = obs.NewTracer(s)
	c.Tracer.SetEnabled(cfg.Tracing)
	c.Metrics = obs.NewRegistry()
	c.StmtStats = obs.NewStmtStats()
	c.Contention = obs.NewContentionLog()
	c.Net = simnet.NewNetwork(s, topo)
	c.Net.Tracer = c.Tracer
	c.Net.Metrics = c.Metrics
	c.Registry = kv.NewTxnRegistry(s, topo)
	c.Liveness = kv.NewNodeLiveness(s)
	var loadTracker *kv.RangeLoadTracker
	if cfg.LoadBased {
		loadTracker = kv.NewRangeLoadTracker(s, cfg.Load.HalfLife)
	}

	id := simnet.NodeID(1)
	for _, rs := range cfg.Regions {
		c.regions = append(c.regions, rs.Name)
		for z := 0; z < rs.Zones; z++ {
			zone := simnet.Zone(fmt.Sprintf("%s-%c", rs.Name, 'a'+z))
			for n := 0; n < rs.NodesPerZone; n++ {
				topo.AddNode(id, simnet.Locality{Region: rs.Name, Zone: zone})
				// Deterministic skew in [-spread/2, +spread/2].
				skew := sim.Duration(s.Rand().Int63n(int64(cfg.SkewSpread))) - cfg.SkewSpread/2
				clock := hlc.NewClock(hlc.SimWallSource{Sim: s, Skew: skew}, cfg.MaxOffset)
				st := kv.NewStore(id, s, c.Net, topo, clock, c.Registry)
				if cfg.CloseLag != 0 {
					st.CloseLag = cfg.CloseLag
				}
				st.Catalog = c.Catalog
				st.Obs = c.Tracer
				st.Contention = c.Contention
				if cfg.Durability {
					// The disk's fault RNG is seeded per node off the run
					// seed, isolated from the simulation's random stream.
					disk := storage.NewDisk(s, cfg.Seed*1_000_003+int64(id), c.Metrics)
					st.Disk = disk
					c.Disks[id] = disk
				}
				st.StartLiveness(c.Liveness)
				if cfg.Durability {
					st.StartCheckpoints(cfg.CheckpointInterval)
				}
				c.Stores[id] = st
				c.Senders[id] = &kv.DistSender{
					NodeID: id, Net: c.Net, Topo: topo, Catalog: c.Catalog,
					Liveness: c.Liveness, Tracer: c.Tracer, Metrics: c.Metrics,
					Load: loadTracker,
				}
				id++
			}
		}
	}
	c.Admin = &kv.Admin{
		Sim: s, Topo: topo, Catalog: c.Catalog, Stores: c.Stores,
		MaxOffset: cfg.MaxOffset, Load: loadTracker,
	}
	if cfg.GCTTL > 0 {
		for _, id := range topo.Nodes() {
			c.Stores[id].StartGCLoop(cfg.GCTTL)
		}
	}
	if cfg.AutoSplitKeys > 0 {
		c.Admin.StartSplitQueue(cfg.AutoSplitKeys, cfg.SplitQueueInterval)
	}
	if cfg.LoadBased {
		c.Admin.StartLoadQueue(cfg.Load)
	}
	if cfg.Sampling {
		c.TSDB = tsdb.New(cfg.SampleBucket, cfg.SampleBuckets)
		c.startSamplers(cfg.SampleInterval)
	}
	return c
}

// EnableTracing switches span recording on for subsequent requests.
func (c *Cluster) EnableTracing() { c.Tracer.SetEnabled(true) }

// CrashNode fails a node honestly: it becomes unreachable AND loses all
// volatile state (replicas, latches, tscache, un-fsynced WAL tails). With
// Durability off this degrades to the historical network-only crash, since
// there is no disk to recover from.
func (c *Cluster) CrashNode(id simnet.NodeID) {
	c.Net.CrashNode(id)
	if st := c.Stores[id]; st != nil && st.Disk != nil {
		st.Crash()
	}
}

// RestartNode boots a crashed node. Durable nodes recover from their disk
// first — blocking p for the recovery's virtual duration — and only then
// rejoin the network, so no traffic ever observes a half-recovered store.
func (c *Cluster) RestartNode(p *sim.Proc, id simnet.NodeID) (kv.RecoveryStats, error) {
	st := c.Stores[id]
	var stats kv.RecoveryStats
	if st != nil && st.Disk != nil {
		var err error
		if stats, err = st.Recover(p); err != nil {
			return stats, err
		}
	}
	c.Net.RestartNode(id)
	return stats, nil
}

// Regions returns the cluster's regions in creation order.
func (c *Cluster) Regions() []simnet.Region { return c.regions }

// GatewayFor returns the lowest-numbered node in a region, the conventional
// gateway for clients located there.
func (c *Cluster) GatewayFor(r simnet.Region) simnet.NodeID {
	nodes := c.Topo.NodesInRegion(r)
	if len(nodes) == 0 {
		return 0
	}
	return nodes[0]
}

// Allocator returns a zone-config allocator over the current topology with
// store replica counts as load.
func (c *Cluster) Allocator() *zones.Allocator {
	load := map[simnet.NodeID]int{}
	for id, st := range c.Stores {
		load[id] = st.Replicas()
	}
	return &zones.Allocator{Topo: c.Topo, Load: load}
}

// ApplyErrors sums command application failures across all stores; tests
// assert this is zero at the end of every run.
func (c *Cluster) ApplyErrors() int {
	n := 0
	for _, st := range c.Stores {
		n += st.ApplyErrors()
	}
	return n
}

// CreateRangeWithZoneConfig allocates a placement for zcfg, creates a
// range covering [start, end) with it, and registers the config in the
// catalog so the load queue and placement checkers can honor it.
func (c *Cluster) CreateRangeWithZoneConfig(start, end []byte, zcfg zones.Config, policy kv.ClosedTSPolicy) (*kv.RangeDescriptor, error) {
	placement, err := c.Allocator().Allocate(zcfg)
	if err != nil {
		return nil, err
	}
	desc, err := c.Admin.CreateRange(start, end, placement, policy)
	if err != nil {
		return nil, err
	}
	c.Catalog.SetZoneConfig(desc.RangeID, zcfg)
	return desc, nil
}

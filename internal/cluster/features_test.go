package cluster

import (
	"fmt"
	"testing"

	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
	"mrdb/internal/zones"
)

// regionalRange creates one zone-survivable LAG range homed in us-east1.
func regionalRange(t *testing.T, c *Cluster, prefix string) *kv.RangeDescriptor {
	t.Helper()
	cfg := zones.Config{
		NumReplicas: 5, NumVoters: 3,
		VoterConstraints: map[simnet.Region]int{simnet.USEast1: 3},
		Constraints:      map[simnet.Region]int{simnet.EuropeW2: 1, simnet.AsiaNE1: 1},
		LeasePreferences: []simnet.Region{simnet.USEast1},
	}
	desc, err := c.CreateRangeWithZoneConfig([]byte(prefix+"/"), []byte(prefix+"0"), cfg, kv.ClosedTSLag)
	if err != nil {
		t.Fatal(err)
	}
	return desc
}

// TestAdaptiveFollowerReadWait exercises the paper's future-work policy
// (§5.3.1): a stale read at a timestamp the follower has not closed yet
// waits for the closed timestamp to catch up instead of paying a WAN
// redirect.
func TestAdaptiveFollowerReadWait(t *testing.T) {
	c := New(Config{Seed: 31, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	regionalRange(t, c, "af")
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		east := txn.NewCoordinator(c.Stores[c.GatewayFor(simnet.USEast1)], c.Senders[c.GatewayFor(simnet.USEast1)])
		if err := east.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("af/k"), mvcc.Value("v"))
		}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(4 * sim.Second)
		asia := txn.NewCoordinator(c.Stores[c.GatewayFor(simnet.AsiaNE1)], c.Senders[c.GatewayFor(simnet.AsiaNE1)])

		// A stale read barely above the follower's closed timestamp: the
		// lag is 3s and propagation adds a few hundred ms, so a -2.7s
		// read is typically NOT yet closed on the follower.
		readAt := func(patience sim.Duration) (sim.Duration, simnet.NodeID, error) {
			asia.FollowerReadPatience = patience
			start := p.Now()
			_, served, err := asia.ExactStaleRead(p, mvcc.Key("af/k"), asia.Store.Clock.Now().Add(-2700*sim.Millisecond))
			return p.Now().Sub(start), served, err
		}

		// Without patience: redirected to the us-east1 leaseholder, one
		// WAN round trip away.
		d0, served0, err := readAt(0)
		if err != nil {
			t.Error(err)
			return
		}
		loc0, _ := c.Topo.LocalityOf(served0)
		if loc0.Region != simnet.USEast1 {
			t.Skipf("closed timestamp already covered the read (served by %s); timing-dependent", loc0.Region)
		}
		if d0 < 100*sim.Millisecond {
			t.Errorf("redirected read took %v, expected a WAN round trip", d0)
		}

		// With patience: the follower waits for its closed timestamp to
		// catch up and serves LOCALLY. The wait is bounded by the
		// closed-timestamp publication cadence; whether waiting beats
		// redirecting depends on the gap, which is exactly the policy
		// decision the paper leaves open ("we intend to make this policy
		// adaptive").
		d1, served1, err := readAt(2 * sim.Second)
		if err != nil {
			t.Error(err)
			return
		}
		loc1, _ := c.Topo.LocalityOf(served1)
		if loc1.Region != simnet.AsiaNE1 {
			t.Errorf("patient read served by %s, want local follower", loc1.Region)
		}
		if d1 > sim.Second {
			t.Errorf("patient wait %v exceeded the publication cadence bound", d1)
		}
		// A too-short patience still redirects.
		d2, served2, err := readAt(sim.Millisecond)
		if err != nil {
			t.Error(err)
			return
		}
		loc2, _ := c.Topo.LocalityOf(served2)
		if loc2.Region == simnet.AsiaNE1 && d2 > 10*sim.Millisecond {
			t.Errorf("impatient read served locally after %v", d2)
		}
	})
	c.Sim.RunFor(10 * 60 * sim.Second)
}

// TestMVCCGarbageCollection verifies the store GC loop: old versions are
// collected, recent stale reads keep working, too-old stale reads lose
// their data (the gc.ttl contract).
func TestMVCCGarbageCollection(t *testing.T) {
	c := New(Config{Seed: 32, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	desc := regionalRange(t, c, "gc")
	for _, st := range c.Stores {
		st.StartGCLoop(20 * sim.Second)
	}
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		gw := c.GatewayFor(simnet.USEast1)
		co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
		// 10 versions of one key, 1s apart.
		for i := 0; i < 10; i++ {
			if err := co.Run(p, func(tx *txn.Txn) error {
				return tx.Put(p, mvcc.Key("gc/k"), mvcc.Value(fmt.Sprintf("v%d", i)))
			}); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(sim.Second)
		}
		p.Sleep(30 * sim.Second) // let GC run a few cycles

		lh, _ := c.Stores[desc.Leaseholder].Replica(desc.RangeID)
		if n := lh.EngineForBulkLoad().VersionCount(mvcc.Key("gc/k")); n >= 10 {
			t.Errorf("GC left %d versions", n)
		}
		var collected int64
		for _, st := range c.Stores {
			collected += st.GCCollected
		}
		if collected == 0 {
			t.Error("GC collected nothing")
		}
		// The latest value is always preserved.
		var got mvcc.Value
		if err := co.Run(p, func(tx *txn.Txn) error {
			v, err := tx.Get(p, mvcc.Key("gc/k"))
			got = v
			return err
		}); err != nil || string(got) != "v9" {
			t.Errorf("latest value %q, %v", got, err)
		}
		// A recent stale read (within ttl) still works.
		if v, _, err := co.ExactStaleRead(p, mvcc.Key("gc/k"), co.Store.Clock.Now().Add(-5*sim.Second)); err != nil || v == nil {
			t.Errorf("recent stale read failed: %q %v", v, err)
		}
	})
	c.Sim.RunFor(10 * 60 * sim.Second)
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
}

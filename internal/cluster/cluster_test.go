package cluster

import (
	"errors"
	"fmt"
	"testing"

	"mrdb/internal/hlc"
	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
	"mrdb/internal/zones"
)

// testCluster builds the paper's 5-region topology with one REGIONAL-style
// range ("r/..", ZONE survivable, home us-east1) and one GLOBAL-style range
// ("g/..", LEAD policy, non-voters everywhere).
type testCluster struct {
	*Cluster
	regional *kv.RangeDescriptor
	global   *kv.RangeDescriptor
}

func newTestCluster(t *testing.T, seed int64, maxOffset sim.Duration) *testCluster {
	t.Helper()
	c := New(Config{
		Seed:      seed,
		Regions:   PaperRegions(),
		MaxOffset: maxOffset,
		Jitter:    0.02,
	})
	regionalCfg := zones.Config{
		NumReplicas: 3 + 4, NumVoters: 3,
		VoterConstraints: map[simnet.Region]int{simnet.USEast1: 3},
		Constraints: map[simnet.Region]int{
			simnet.USWest1: 1, simnet.EuropeW2: 1, simnet.AsiaNE1: 1, simnet.AustralSE1: 1,
		},
		LeasePreferences: []simnet.Region{simnet.USEast1},
	}
	globalCfg := regionalCfg.Clone()

	var err error
	tc := &testCluster{Cluster: c}
	tc.regional, err = c.CreateRangeWithZoneConfig([]byte("r/"), []byte("r0"), regionalCfg, kv.ClosedTSLag)
	if err != nil {
		t.Fatal(err)
	}
	tc.global, err = c.CreateRangeWithZoneConfig([]byte("g/"), []byte("g0"), globalCfg, kv.ClosedTSLead)
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

// run drives fn as the root test process and then checks invariants.
func (tc *testCluster) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	failed := false
	tc.Sim.Spawn("test", func(p *sim.Proc) {
		if err := tc.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			failed = true
			return
		}
		// Let closed timestamps propagate once everywhere.
		p.Sleep(500 * sim.Millisecond)
		fn(p)
	})
	tc.Sim.RunFor(10 * 60 * sim.Second)
	if failed {
		t.FailNow()
	}
	if n := tc.ApplyErrors(); n != 0 {
		t.Fatalf("%d command application errors", n)
	}
}

func (tc *testCluster) coord(region simnet.Region) *txn.Coordinator {
	gw := tc.GatewayFor(region)
	return txn.NewCoordinator(tc.Stores[gw], tc.Senders[gw])
}

func TestTxnWriteReadLocal(t *testing.T) {
	tc := newTestCluster(t, 1, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		co := tc.coord(simnet.USEast1)
		err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("r/a"), mvcc.Value("hello"))
		})
		if err != nil {
			t.Errorf("write txn: %v", err)
			return
		}
		var got mvcc.Value
		err = co.Run(p, func(tx *txn.Txn) error {
			v, err := tx.Get(p, mvcc.Key("r/a"))
			got = v
			return err
		})
		if err != nil || string(got) != "hello" {
			t.Errorf("read back %q, err=%v", got, err)
		}
	})
}

func TestRegionalLatencyProfile(t *testing.T) {
	tc := newTestCluster(t, 2, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		// Local (primary region) write+read: a few ms.
		local := tc.coord(simnet.USEast1)
		start := p.Now()
		if err := local.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("r/k1"), mvcc.Value("v"))
		}); err != nil {
			t.Error(err)
			return
		}
		localWrite := p.Now().Sub(start)
		if localWrite > 20*sim.Millisecond {
			t.Errorf("local regional write took %v, want < 20ms", localWrite)
		}

		start = p.Now()
		if err := local.Run(p, func(tx *txn.Txn) error {
			_, err := tx.Get(p, mvcc.Key("r/k1"))
			return err
		}); err != nil {
			t.Error(err)
			return
		}
		if d := p.Now().Sub(start); d > 10*sim.Millisecond {
			t.Errorf("local regional read took %v, want < 10ms", d)
		}

		// Remote (australia) fresh read must cross to us-east1:
		// RTT 198ms one round trip minimum.
		remote := tc.coord(simnet.AustralSE1)
		start = p.Now()
		if err := remote.Run(p, func(tx *txn.Txn) error {
			_, err := tx.Get(p, mvcc.Key("r/k1"))
			return err
		}); err != nil {
			t.Error(err)
			return
		}
		remoteRead := p.Now().Sub(start)
		if remoteRead < 150*sim.Millisecond || remoteRead > 450*sim.Millisecond {
			t.Errorf("remote regional read took %v, want ~200ms", remoteRead)
		}

		// Remote write: also about one RTT.
		start = p.Now()
		if err := remote.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("r/k2"), mvcc.Value("w"))
		}); err != nil {
			t.Error(err)
			return
		}
		remoteWrite := p.Now().Sub(start)
		if remoteWrite < 150*sim.Millisecond || remoteWrite > 700*sim.Millisecond {
			t.Errorf("remote regional write took %v, want ~200-400ms", remoteWrite)
		}
	})
}

func TestStaleReadServedLocally(t *testing.T) {
	tc := newTestCluster(t, 3, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		local := tc.coord(simnet.USEast1)
		if err := local.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("r/s1"), mvcc.Value("stale-me"))
		}); err != nil {
			t.Error(err)
			return
		}
		// Wait past the close lag so the value is below the closed ts.
		p.Sleep(4 * sim.Second)

		remote := tc.coord(simnet.AustralSE1)
		start := p.Now()
		val, served, err := remote.ExactStaleRead(p, mvcc.Key("r/s1"), remote.Store.Clock.Now().Add(-3500*sim.Millisecond))
		if err != nil {
			t.Errorf("stale read: %v", err)
			return
		}
		d := p.Now().Sub(start)
		if string(val) != "stale-me" {
			t.Errorf("stale read value %q", val)
		}
		loc, _ := tc.Topo.LocalityOf(served)
		if loc.Region != simnet.AustralSE1 {
			t.Errorf("stale read served by %v (n%d), want local replica", loc.Region, served)
		}
		if d > 5*sim.Millisecond {
			t.Errorf("stale read took %v, want local latency", d)
		}
	})
}

func TestBoundedStalenessRead(t *testing.T) {
	tc := newTestCluster(t, 4, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		local := tc.coord(simnet.USEast1)
		if err := local.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("r/b1"), mvcc.Value("bounded"))
		}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(4 * sim.Second)

		remote := tc.coord(simnet.AustralSE1)
		minTS := remote.MaxStalenessToMinTS(30 * sim.Second)
		start := p.Now()
		val, ts, served, err := remote.BoundedStaleRead(p, mvcc.Key("r/b1"), minTS, true)
		if err != nil {
			t.Errorf("bounded stale read: %v", err)
			return
		}
		d := p.Now().Sub(start)
		if string(val) != "bounded" {
			t.Errorf("value %q", val)
		}
		if ts.Less(minTS) {
			t.Errorf("negotiated ts %v below bound %v", ts, minTS)
		}
		loc, _ := tc.Topo.LocalityOf(served)
		if loc.Region != simnet.AustralSE1 {
			t.Errorf("served by %v, want local", loc.Region)
		}
		if d > 10*sim.Millisecond {
			t.Errorf("bounded stale read took %v", d)
		}
	})
}

func TestGlobalTableFastReadsEverywhere(t *testing.T) {
	tc := newTestCluster(t, 5, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		local := tc.coord(simnet.USEast1)
		start := p.Now()
		if err := local.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("g/k"), mvcc.Value("global"))
		}); err != nil {
			t.Error(err)
			return
		}
		writeLat := p.Now().Sub(start)
		// Paper Fig 3: global writes 500-600ms at 250ms offset.
		if writeLat < 350*sim.Millisecond || writeLat > 800*sim.Millisecond {
			t.Errorf("global write took %v, want ~500-600ms", writeLat)
		}

		// Fresh reads from every region served locally (<5ms).
		for _, region := range tc.Regions() {
			co := tc.coord(region)
			start := p.Now()
			var got mvcc.Value
			if err := co.Run(p, func(tx *txn.Txn) error {
				v, err := tx.Get(p, mvcc.Key("g/k"))
				got = v
				return err
			}); err != nil {
				t.Errorf("%s: global read: %v", region, err)
				return
			}
			d := p.Now().Sub(start)
			if string(got) != "global" {
				t.Errorf("%s: read %q", region, got)
			}
			if d > 5*sim.Millisecond {
				t.Errorf("%s: fresh global read took %v, want < 5ms", region, d)
			}
		}
	})
}

func TestGlobalReadUncertaintyCommitWait(t *testing.T) {
	tc := newTestCluster(t, 6, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		writer := tc.coord(simnet.USEast1)
		reader := tc.coord(simnet.AsiaNE1)

		// Concurrent writer and reader on the same key: the reader that
		// starts right after the write commits observes the future-time
		// value through its uncertainty interval and must commit wait —
		// but the wait is bounded by max_clock_offset, not WAN RTT.
		done := sim.NewFuture[sim.Duration](tc.Sim)
		tc.Sim.Spawn("writer", func(wp *sim.Proc) {
			writer.Run(wp, func(tx *txn.Txn) error {
				return tx.Put(wp, mvcc.Key("g/cw"), mvcc.Value("v1"))
			})
			done.Set(0)
		})
		// Start reading mid-write: poll until the value is visible.
		var sawValue bool
		var maxLat sim.Duration
		for i := 0; i < 200 && !sawValue; i++ {
			start := p.Now()
			var got mvcc.Value
			err := reader.Run(p, func(tx *txn.Txn) error {
				v, err := tx.Get(p, mvcc.Key("g/cw"))
				got = v
				return err
			})
			d := p.Now().Sub(start)
			if d > maxLat {
				maxLat = d
			}
			if err == nil && string(got) == "v1" {
				sawValue = true
			}
			p.Sleep(5 * sim.Millisecond)
		}
		done.Wait(p)
		if !sawValue {
			t.Error("reader never observed the write")
		}
		// Bounded by max_clock_offset (plus small overheads), NOT by a
		// WAN round trip to the leaseholder (~310ms from asia).
		if maxLat > 300*sim.Millisecond {
			t.Errorf("contended global read latency %v exceeds commit-wait bound", maxLat)
		}
	})
}

func TestWriteWriteConflictQueues(t *testing.T) {
	tc := newTestCluster(t, 7, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		co := tc.coord(simnet.USEast1)
		results := sim.NewMailbox[string](tc.Sim)

		tc.Sim.Spawn("w1", func(wp *sim.Proc) {
			err := co.Run(wp, func(tx *txn.Txn) error {
				if err := tx.Put(wp, mvcc.Key("r/ww"), mvcc.Value("first")); err != nil {
					return err
				}
				wp.Sleep(20 * sim.Millisecond) // hold the intent a while
				return nil
			})
			if err != nil {
				results.Send("w1-err")
			} else {
				results.Send("w1-ok")
			}
		})
		tc.Sim.Spawn("w2", func(wp *sim.Proc) {
			wp.Sleep(5 * sim.Millisecond) // start second
			err := co.Run(wp, func(tx *txn.Txn) error {
				return tx.Put(wp, mvcc.Key("r/ww"), mvcc.Value("second"))
			})
			if err != nil {
				results.Send("w2-err")
			} else {
				results.Send("w2-ok")
			}
		})
		for i := 0; i < 2; i++ {
			msg, _ := results.Recv(p)
			if msg == "w1-err" || msg == "w2-err" {
				t.Errorf("conflicting writer failed: %s", msg)
			}
		}
		// Final value is the second writer's.
		var got mvcc.Value
		if err := co.Run(p, func(tx *txn.Txn) error {
			v, err := tx.Get(p, mvcc.Key("r/ww"))
			got = v
			return err
		}); err != nil {
			t.Error(err)
			return
		}
		if string(got) != "second" {
			t.Errorf("final value %q, want \"second\"", got)
		}
	})
}

func TestReadBlocksOnIntentUntilCommit(t *testing.T) {
	tc := newTestCluster(t, 8, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		co := tc.coord(simnet.USEast1)
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("r/ib"), mvcc.Value("v0"))
		}); err != nil {
			t.Error(err)
			return
		}
		var readVal mvcc.Value
		var readDone sim.Time
		writerCommitted := sim.NewFuture[sim.Time](tc.Sim)
		tc.Sim.Spawn("writer", func(wp *sim.Proc) {
			co.Run(wp, func(tx *txn.Txn) error {
				if err := tx.Put(wp, mvcc.Key("r/ib"), mvcc.Value("v1")); err != nil {
					return err
				}
				wp.Sleep(100 * sim.Millisecond) // hold lock
				return nil
			})
			writerCommitted.Set(wp.Now())
		})
		tc.Sim.Spawn("reader", func(rp *sim.Proc) {
			rp.Sleep(10 * sim.Millisecond) // read mid-write
			co.Run(rp, func(tx *txn.Txn) error {
				v, err := tx.Get(rp, mvcc.Key("r/ib"))
				readVal = v
				return err
			})
			readDone = rp.Now()
		})
		writerCommitted.Wait(p)
		p.Sleep(sim.Second)
		// The reader started at t=10ms but the writer holds its lock for
		// ~100ms before committing: the read must have blocked at least
		// until then (it may complete just before the writer's *ack*,
		// which additionally includes commit wait).
		if readDone < sim.Time(110*sim.Millisecond) {
			t.Errorf("read completed at %v; expected it to block on the intent until ~110ms", readDone)
		}
		if string(readVal) != "v1" {
			t.Errorf("read value %q, want the committed v1", readVal)
		}
	})
}

func TestSerializableReadModifyWrite(t *testing.T) {
	tc := newTestCluster(t, 9, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		co := tc.coord(simnet.USEast1)
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("r/ctr"), mvcc.Value("0"))
		}); err != nil {
			t.Error(err)
			return
		}
		// 10 concurrent increments; serializability requires the final
		// value to be exactly 10.
		wg := sim.NewWaitGroup(tc.Sim)
		const n = 10
		wg.Add(n)
		for i := 0; i < n; i++ {
			tc.Sim.Spawn("inc", func(wp *sim.Proc) {
				defer wg.Done()
				err := co.Run(wp, func(tx *txn.Txn) error {
					v, err := tx.Get(wp, mvcc.Key("r/ctr"))
					if err != nil {
						return err
					}
					cur := 0
					fmt.Sscanf(string(v), "%d", &cur)
					return tx.Put(wp, mvcc.Key("r/ctr"), mvcc.Value(fmt.Sprintf("%d", cur+1)))
				})
				if err != nil {
					t.Errorf("increment failed: %v", err)
				}
			})
		}
		wg.Wait(p)
		var got mvcc.Value
		if err := co.Run(p, func(tx *txn.Txn) error {
			v, err := tx.Get(p, mvcc.Key("r/ctr"))
			got = v
			return err
		}); err != nil {
			t.Error(err)
			return
		}
		if string(got) != "10" {
			t.Errorf("counter = %q, want 10 (lost update => serializability violation)", got)
		}
	})
}

// TestRegionSurvivability kills the leaseholder's entire region and asserts
// the cluster heals ITSELF: a surviving voter wins the Raft election,
// declares the dead leaseholder expired via node liveness, fences its epoch,
// acquires the lease through the log, and publishes the new routing — with
// zero admin or test intervention, within a bounded virtual-time RTO.
func TestRegionSurvivability(t *testing.T) {
	const rtoBound = 15 * sim.Second
	c := New(Config{Seed: 10, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	// REGION-survivable range: 5 voters, 2 in home region, spread wide.
	regionCfg := zones.Config{
		NumReplicas: 5, NumVoters: 5,
		VoterConstraints: map[simnet.Region]int{simnet.USEast1: 2, simnet.EuropeW2: 2, simnet.AsiaNE1: 1},
		LeasePreferences: []simnet.Region{simnet.USEast1},
	}
	desc, err := c.CreateRangeWithZoneConfig([]byte("s/"), []byte("s0"), regionCfg, kv.ClosedTSLag)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			failed = true
			return
		}
		p.Sleep(500 * sim.Millisecond)
		gw := c.GatewayFor(simnet.EuropeW2)
		co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("s/a"), mvcc.Value("before"))
		}); err != nil {
			t.Errorf("pre-failure write: %v", err)
			return
		}
		// Kill the entire home region (including the leaseholder). No
		// recovery action follows — the cluster must heal on its own.
		failAt := p.Now()
		c.Net.FailRegion(simnet.USEast1)

		recoveredAt := sim.Time(0)
		for p.Now().Sub(failAt) < rtoBound {
			err := co.Run(p, func(tx *txn.Txn) error {
				v, err := tx.Get(p, mvcc.Key("s/a"))
				if err != nil {
					return err
				}
				if string(v) != "before" {
					return fmt.Errorf("lost data after region failure: %q", v)
				}
				return tx.Put(p, mvcc.Key("s/b"), mvcc.Value("after"))
			})
			if err == nil {
				recoveredAt = p.Now()
				break
			}
			p.Sleep(250 * sim.Millisecond)
		}
		if recoveredAt == 0 {
			t.Errorf("range did not recover within %v of region failure", rtoBound)
			return
		}
		t.Logf("region failover RTO: %v (virtual)", recoveredAt.Sub(failAt))
		// Routing converged on a surviving region's voter.
		nd, _ := c.Catalog.LookupByID(desc.RangeID)
		if loc, _ := c.Topo.LocalityOf(nd.Leaseholder); loc.Region == simnet.USEast1 {
			t.Errorf("leaseholder still in failed region: n%d", nd.Leaseholder)
		}
		if nd.Generation <= desc.Generation {
			t.Errorf("descriptor generation not bumped by lease acquisition: %d", nd.Generation)
		}
	})
	c.Sim.RunFor(5 * 60 * sim.Second)
	if failed {
		t.FailNow()
	}
}

func TestZoneSurvivableRangeLosesHomeRegion(t *testing.T) {
	c := New(Config{Seed: 11, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	zoneCfg := zones.Config{
		NumReplicas: 5, NumVoters: 3,
		VoterConstraints: map[simnet.Region]int{simnet.USEast1: 3},
		Constraints:      map[simnet.Region]int{simnet.EuropeW2: 1, simnet.AsiaNE1: 1},
		LeasePreferences: []simnet.Region{simnet.USEast1},
	}
	if _, err := c.CreateRangeWithZoneConfig([]byte("z/"), []byte("z0"), zoneCfg, kv.ClosedTSLag); err != nil {
		t.Fatal(err)
	}
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		gw := c.GatewayFor(simnet.EuropeW2)
		co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("z/a"), mvcc.Value("v"))
		}); err != nil {
			t.Errorf("pre-failure write: %v", err)
			return
		}
		p.Sleep(4 * sim.Second) // let closed timestamps pass the write
		// staleTS is comfortably below the closed timestamp the local
		// non-voter will be frozen at once its leaseholder dies.
		staleTS := co.Store.Clock.Now().Add(-(kv.DefaultCloseLag + sim.Second))
		c.Net.FailRegion(simnet.USEast1)

		// Fresh writes cannot commit: all voters are in the dead region,
		// and no amount of liveness-driven recovery can move the lease to
		// a non-voter. The write must fail (bounded retry budget).
		co.Sender.RPCTimeout = 2 * sim.Second
		tx := co.Begin(0)
		err := tx.Put(p, mvcc.Key("z/b"), mvcc.Value("doomed"))
		if err == nil {
			err = tx.Commit(p)
		}
		if err == nil {
			t.Error("write succeeded with home region down and ZONE survivability")
		}
		tx.Abort(p)

		// But stale reads still work from the local non-voter (paper
		// §6.2.2: partitioned replicas may still serve stale reads).
		val, served, err := co.ExactStaleRead(p, mvcc.Key("z/a"), staleTS)
		if err != nil {
			t.Errorf("stale read during outage: %v", err)
			return
		}
		if string(val) != "v" {
			t.Errorf("stale read got %q", val)
		}
		loc, _ := c.Topo.LocalityOf(served)
		if loc.Region != simnet.EuropeW2 {
			t.Errorf("stale read served from %s", loc.Region)
		}

		// The region comes back. With no admin in the loop, the range must
		// return to full service: the home-region voters re-elect, the
		// incumbent leaseholder revives (or a peer fences it and takes
		// over), and fresh writes commit again.
		healAt := p.Now()
		c.Net.RecoverRegion(simnet.USEast1)
		co.Sender.RPCTimeout = 0
		recovered := false
		for p.Now().Sub(healAt) < 30*sim.Second {
			if err := co.Run(p, func(tx *txn.Txn) error {
				return tx.Put(p, mvcc.Key("z/c"), mvcc.Value("after-heal"))
			}); err == nil {
				recovered = true
				break
			}
			p.Sleep(250 * sim.Millisecond)
		}
		if !recovered {
			t.Error("writes did not recover after region healed (no intervention)")
			return
		}
		t.Logf("post-heal write recovery: %v (virtual)", p.Now().Sub(healAt))
	})
	c.Sim.RunFor(5 * 60 * sim.Second)
}

func TestLeaseTransferMaintainsConsistency(t *testing.T) {
	tc := newTestCluster(t, 12, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		co := tc.coord(simnet.USEast1)
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("r/lt"), mvcc.Value("v1"))
		}); err != nil {
			t.Error(err)
			return
		}
		// Transfer the lease to another voter in us-east1.
		desc, _ := tc.Catalog.LookupByID(tc.regional.RangeID)
		var target simnet.NodeID
		for _, v := range desc.Voters {
			if v != desc.Leaseholder {
				target = v
				break
			}
		}
		if err := tc.Admin.TransferLease(p, tc.regional.RangeID, target); err != nil {
			t.Errorf("transfer: %v", err)
			return
		}
		// Reads and writes continue against the new leaseholder.
		if err := co.Run(p, func(tx *txn.Txn) error {
			v, err := tx.Get(p, mvcc.Key("r/lt"))
			if err != nil {
				return err
			}
			if string(v) != "v1" {
				return fmt.Errorf("read %q after transfer", v)
			}
			return tx.Put(p, mvcc.Key("r/lt"), mvcc.Value("v2"))
		}); err != nil {
			t.Errorf("post-transfer txn: %v", err)
		}
	})
}

func TestRelocateRange(t *testing.T) {
	tc := newTestCluster(t, 13, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		co := tc.coord(simnet.USEast1)
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, mvcc.Key("r/mv"), mvcc.Value("keepme"))
		}); err != nil {
			t.Error(err)
			return
		}
		// Re-home the regional range to europe-west2.
		alloc := tc.Allocator()
		newCfg := zones.Config{
			NumReplicas: 7, NumVoters: 3,
			VoterConstraints: map[simnet.Region]int{simnet.EuropeW2: 3},
			Constraints: map[simnet.Region]int{
				simnet.USEast1: 1, simnet.USWest1: 1, simnet.AsiaNE1: 1, simnet.AustralSE1: 1,
			},
			LeasePreferences: []simnet.Region{simnet.EuropeW2},
		}
		placement, err := alloc.Allocate(newCfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := tc.Admin.Relocate(p, tc.regional.RangeID, placement, kv.ClosedTSLag); err != nil {
			t.Errorf("relocate: %v", err)
			return
		}
		// Data survives; new home serves locally.
		eu := tc.coord(simnet.EuropeW2)
		start := p.Now()
		var got mvcc.Value
		if err := eu.Run(p, func(tx *txn.Txn) error {
			v, err := tx.Get(p, mvcc.Key("r/mv"))
			got = v
			return err
		}); err != nil {
			t.Errorf("post-relocate read: %v", err)
			return
		}
		if string(got) != "keepme" {
			t.Errorf("data lost in relocation: %q", got)
		}
		if d := p.Now().Sub(start); d > 20*sim.Millisecond {
			t.Errorf("read from new home region took %v, want local", d)
		}
	})
}

func TestSingleKeyLinearizability(t *testing.T) {
	// Concurrent writers and readers on one GLOBAL key; after any read
	// returns value vN, no later-starting read may return an older value.
	tc := newTestCluster(t, 14, 250*sim.Millisecond)
	tc.run(t, func(p *sim.Proc) {
		type readEv struct {
			start, end sim.Time
			val        int
		}
		var reads []readEv
		writerDone := false
		tc.Sim.Spawn("writer", func(wp *sim.Proc) {
			co := tc.coord(simnet.USEast1)
			for i := 1; i <= 5; i++ {
				val := fmt.Sprintf("%d", i)
				if err := co.Run(wp, func(tx *txn.Txn) error {
					return tx.Put(wp, mvcc.Key("g/lin"), mvcc.Value(val))
				}); err != nil {
					t.Errorf("write %d: %v", i, err)
				}
			}
			writerDone = true
		})
		for _, region := range []simnet.Region{simnet.AsiaNE1, simnet.EuropeW2, simnet.USWest1} {
			region := region
			tc.Sim.Spawn("reader", func(rp *sim.Proc) {
				co := tc.coord(region)
				for !writerDone {
					start := rp.Now()
					var v mvcc.Value
					err := co.Run(rp, func(tx *txn.Txn) error {
						got, err := tx.Get(rp, mvcc.Key("g/lin"))
						v = got
						return err
					})
					if err == nil {
						n := 0
						if v != nil {
							fmt.Sscanf(string(v), "%d", &n)
						}
						reads = append(reads, readEv{start: start, end: rp.Now(), val: n})
					}
					rp.Sleep(20 * sim.Millisecond)
				}
			})
		}
		// Wait for everything to finish.
		for !writerDone {
			p.Sleep(100 * sim.Millisecond)
		}
		p.Sleep(2 * sim.Second)
		// Check: for any two reads where r1 ends before r2 starts,
		// r2.val >= r1.val (single-writer monotone values).
		for i := range reads {
			for j := range reads {
				if reads[i].end < reads[j].start && reads[j].val < reads[i].val {
					t.Errorf("linearizability violation: read ending at %v saw %d; later read starting at %v saw %d",
						reads[i].end, reads[i].val, reads[j].start, reads[j].val)
					return
				}
			}
		}
		if len(reads) == 0 {
			t.Error("no reads recorded")
		}
	})
}

func TestClusterDeterminism(t *testing.T) {
	runOnce := func() (sim.Time, int64) {
		tc := newTestCluster(t, 99, 250*sim.Millisecond)
		var committed int64
		tc.run(t, func(p *sim.Proc) {
			co := tc.coord(simnet.USWest1)
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("r/det-%d", i%5)
				co.Run(p, func(tx *txn.Txn) error {
					if i%3 == 0 {
						_, err := tx.Get(p, mvcc.Key(key))
						return err
					}
					return tx.Put(p, mvcc.Key(key), mvcc.Value(fmt.Sprintf("v%d", i)))
				})
			}
			committed = co.Committed
		})
		return tc.Sim.Now(), committed
	}
	t1, c1 := runOnce()
	t2, c2 := runOnce()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("nondeterministic cluster: (%v,%d) vs (%v,%d)", t1, c1, t2, c2)
	}
}

func TestTxnAbortedErrorType(t *testing.T) {
	err := error(&kv.TxnAbortedError{TxnID: 5})
	var ta *kv.TxnAbortedError
	if !errors.As(err, &ta) {
		t.Fatal("errors.As failed")
	}
	var _ hlc.Timestamp // keep import
}

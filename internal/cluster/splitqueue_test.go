package cluster

import (
	"fmt"
	"testing"

	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
)

// TestSplitQueue verifies the background split queue divides oversized
// ranges and that data and routing stay correct afterwards.
func TestSplitQueue(t *testing.T) {
	c := New(Config{Seed: 61, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	regionalRange(t, c, "q")
	stop := c.Admin.StartSplitQueue(20, 2*sim.Second)
	defer stop()
	key := func(i int) mvcc.Key { return mvcc.Key(fmt.Sprintf("q/%04d", i)) }
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		gw := c.GatewayFor(simnet.USEast1)
		co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
		const n = 80
		for i := 0; i < n; i++ {
			if err := co.Run(p, func(tx *txn.Txn) error {
				return tx.Put(p, key(i), mvcc.Value(fmt.Sprintf("v%d", i)))
			}); err != nil {
				t.Error(err)
				return
			}
		}
		// Let the split queue catch up (80 keys / 20 per range => >= 4).
		p.Sleep(30 * sim.Second)
		if c.Admin.Splits < 2 {
			t.Errorf("split queue performed %d splits, want >= 2", c.Admin.Splits)
		}
		if c.Catalog.Len() < 3 {
			t.Errorf("catalog has %d ranges", c.Catalog.Len())
		}
		// Every key still readable and writable.
		for i := 0; i < n; i++ {
			var got mvcc.Value
			if err := co.Run(p, func(tx *txn.Txn) error {
				v, err := tx.Get(p, key(i))
				got = v
				return err
			}); err != nil || string(got) != fmt.Sprintf("v%d", i) {
				t.Errorf("key %d after splits: %q %v", i, got, err)
				return
			}
		}
		if err := co.Run(p, func(tx *txn.Txn) error {
			return tx.Put(p, key(5), mvcc.Value("rewritten"))
		}); err != nil {
			t.Errorf("write after splits: %v", err)
		}
	})
	c.Sim.RunFor(30 * 60 * sim.Second)
	if nerr := c.ApplyErrors(); nerr != 0 {
		t.Fatalf("%d apply errors", nerr)
	}
}

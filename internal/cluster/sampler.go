package cluster

import (
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// This file wires the virtual-time timeseries store (internal/obs/tsdb)
// into the cluster: one sampler per node, driven by the sim clock,
// snapshots state into ring-buffered rollup series every SampleInterval.
//
// Samplers only read — they never sleep inside a callback, schedule extra
// work, or touch the simulation RNG — so sampling on versus off cannot
// change a run's schedule or any virtual-time latency (the metamorphic
// tests assert this the same way they do for tracing).
//
// Series layout: per-node state (replica counts, leases held, liveness) is
// recorded under that node's ID; the shared metrics registry — counters,
// gauges, and histogram rollups — is cluster-wide, so the lowest-numbered
// node's sampler snapshots it exactly once per tick under the reserved
// node 0.

// DefaultSampleInterval is the sampling cadence when Config.SampleInterval
// is zero: one snapshot per virtual second.
const DefaultSampleInterval = 1 * sim.Second

// startSamplers starts one ticker per node. Tickers are registered in
// ascending node order, so same-instant ticks fire deterministically.
func (c *Cluster) startSamplers(interval sim.Duration) {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	nodes := c.Topo.Nodes()
	if len(nodes) == 0 {
		return
	}
	first := nodes[0]
	for _, id := range nodes {
		id := id
		c.Sim.Ticker(interval, func() { c.sampleNode(id, id == first) })
	}
}

// sampleNode snapshots one node's per-node series; the designated node also
// snapshots the cluster-wide registry.
func (c *Cluster) sampleNode(id simnet.NodeID, registry bool) {
	now := c.Sim.Now()
	node := int(id)
	if st := c.Stores[id]; st != nil {
		c.TSDB.Observe("store.replicas", node, now, int64(st.Replicas()))
	}
	leases := 0
	for _, d := range c.Catalog.All() {
		if d.Leaseholder == id {
			leases++
		}
	}
	c.TSDB.Observe("store.leases", node, now, int64(leases))
	live := int64(0)
	if c.Liveness.Live(id, now) {
		live = 1
	}
	c.TSDB.Observe("node.live", node, now, live)
	c.TSDB.Observe("node.epoch", node, now, c.Liveness.Epoch(id))
	if registry {
		c.sampleRegistry(now)
	}
}

// sampleRegistry snapshots every registry metric under node 0. Counters and
// gauges sample their cumulative/instantaneous value (rates are derivable
// from a bucket's max-min over its width); each histogram samples its
// cumulative count and sum plus running p50/p99/max, so latency trajectories
// survive even though the histogram itself never resets.
func (c *Cluster) sampleRegistry(now sim.Time) {
	for _, n := range c.Metrics.Counters() {
		c.TSDB.Observe(n, 0, now, c.Metrics.Counter(n).Value())
	}
	for _, n := range c.Metrics.Gauges() {
		c.TSDB.Observe(n, 0, now, c.Metrics.Gauge(n).Value())
	}
	for _, n := range c.Metrics.Histograms() {
		h := c.Metrics.Histogram(n)
		c.TSDB.Observe(n+".count", 0, now, h.Count())
		c.TSDB.Observe(n+".sum", 0, now, h.Sum())
		c.TSDB.Observe(n+".p50", 0, now, h.Percentile(0.50))
		c.TSDB.Observe(n+".p99", 0, now, h.Percentile(0.99))
		c.TSDB.Observe(n+".max", 0, now, h.Max())
	}
}

package cluster

import (
	"fmt"
	"testing"

	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
	"mrdb/internal/zones"
)

// TestBankInvariant is a jepsen-style stress test: concurrent transfer
// transactions move money between accounts from every region while the
// total balance must stay constant. It exercises locking reads, refresh
// restarts, deadlock detection and parallel commits under real contention.
func TestBankInvariant(t *testing.T) {
	const (
		accounts  = 8
		initial   = 100
		movers    = 9 // 3 per region
		transfers = 12
	)
	c := New(Config{Seed: 21, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	cfg := zones.Config{
		NumReplicas: 5, NumVoters: 3,
		VoterConstraints: map[simnet.Region]int{simnet.USEast1: 3},
		Constraints:      map[simnet.Region]int{simnet.EuropeW2: 1, simnet.AsiaNE1: 1},
		LeasePreferences: []simnet.Region{simnet.USEast1},
	}
	if _, err := c.CreateRangeWithZoneConfig([]byte("acct/"), []byte("acct0"), cfg, kv.ClosedTSLag); err != nil {
		t.Fatal(err)
	}
	key := func(i int) mvcc.Key { return mvcc.Key(fmt.Sprintf("acct/%03d", i)) }
	readBalance := func(p *sim.Proc, tx *txn.Txn, i int, locking bool) (int, error) {
		var v mvcc.Value
		var err error
		if locking {
			v, err = tx.GetForUpdate(p, key(i))
		} else {
			v, err = tx.Get(p, key(i))
		}
		if err != nil {
			return 0, err
		}
		n := 0
		fmt.Sscanf(string(v), "%d", &n)
		return n, nil
	}

	var setupErr error
	c.Sim.Spawn("bank", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			setupErr = err
			return
		}
		p.Sleep(500 * sim.Millisecond)
		seed := txn.NewCoordinator(c.Stores[c.GatewayFor(simnet.USEast1)], c.Senders[c.GatewayFor(simnet.USEast1)])
		if err := seed.Run(p, func(tx *txn.Txn) error {
			var kvs []mvcc.KeyValue
			for i := 0; i < accounts; i++ {
				kvs = append(kvs, mvcc.KeyValue{Key: key(i), Value: mvcc.Value(fmt.Sprintf("%d", initial))})
			}
			return tx.PutParallel(p, kvs)
		}); err != nil {
			setupErr = err
			return
		}

		regions := c.Regions()
		wg := sim.NewWaitGroup(c.Sim)
		wg.Add(movers)
		for m := 0; m < movers; m++ {
			m := m
			region := regions[m%len(regions)]
			wg.Add(0)
			c.Sim.Spawn("mover", func(wp *sim.Proc) {
				defer wg.Done()
				gw := c.GatewayFor(region)
				co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
				rng := wp.Rand()
				for i := 0; i < transfers; i++ {
					from := rng.Intn(accounts)
					to := rng.Intn(accounts)
					if from == to {
						continue
					}
					// Lock in a consistent order to avoid deadlocks by
					// construction half the time; the other half relies
					// on the deadlock detector.
					if m%2 == 0 && from > to {
						from, to = to, from
					}
					amount := 1 + rng.Intn(5)
					err := co.Run(wp, func(tx *txn.Txn) error {
						a, err := readBalance(wp, tx, from, true)
						if err != nil {
							return err
						}
						b, err := readBalance(wp, tx, to, true)
						if err != nil {
							return err
						}
						if a < amount {
							return nil // insufficient funds, no-op
						}
						if err := tx.Put(wp, key(from), mvcc.Value(fmt.Sprintf("%d", a-amount))); err != nil {
							return err
						}
						return tx.Put(wp, key(to), mvcc.Value(fmt.Sprintf("%d", b+amount)))
					})
					if err != nil {
						t.Errorf("transfer failed permanently: %v", err)
						return
					}
				}
			})
		}
		// Auditors read all balances concurrently; every snapshot must
		// sum to the invariant total (serializability check under load).
		audits := 0
		c.Sim.Spawn("auditor", func(ap *sim.Proc) {
			gw := c.GatewayFor(simnet.EuropeW2)
			co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
			for i := 0; i < 10; i++ {
				total := 0
				err := co.Run(ap, func(tx *txn.Txn) error {
					total = 0
					for a := 0; a < accounts; a++ {
						n, err := readBalance(ap, tx, a, false)
						if err != nil {
							return err
						}
						total += n
					}
					return nil
				})
				if err != nil {
					t.Errorf("audit failed: %v", err)
					return
				}
				if total != accounts*initial {
					t.Errorf("audit %d: total = %d, want %d (serializability violation)", i, total, accounts*initial)
					return
				}
				audits++
				ap.Sleep(300 * sim.Millisecond)
			}
		})
		wg.Wait(p)
		p.Sleep(5 * sim.Second) // drain auditors and async resolution

		// Final sum.
		total := 0
		if err := seed.Run(p, func(tx *txn.Txn) error {
			total = 0
			for a := 0; a < accounts; a++ {
				n, err := readBalance(p, tx, a, false)
				if err != nil {
					return err
				}
				total += n
			}
			return nil
		}); err != nil {
			t.Error(err)
			return
		}
		if total != accounts*initial {
			t.Errorf("final total = %d, want %d", total, accounts*initial)
		}
		if audits == 0 {
			t.Error("auditor never ran")
		}
	})
	c.Sim.RunFor(60 * 60 * sim.Second)
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
}

// TestBankSurvivesNodeCrash runs transfers while crashing and restarting a
// non-leaseholder node; the invariant must hold and operations must keep
// succeeding (ZONE survivability: one zone down).
func TestBankSurvivesNodeCrash(t *testing.T) {
	const accounts = 4
	const initial = 50
	c := New(Config{Seed: 22, Regions: ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	cfg := zones.Config{
		NumReplicas: 5, NumVoters: 3,
		VoterConstraints: map[simnet.Region]int{simnet.USEast1: 3},
		Constraints:      map[simnet.Region]int{simnet.EuropeW2: 1, simnet.AsiaNE1: 1},
		LeasePreferences: []simnet.Region{simnet.USEast1},
	}
	desc, err := c.CreateRangeWithZoneConfig([]byte("b/"), []byte("b0"), cfg, kv.ClosedTSLag)
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) mvcc.Key { return mvcc.Key(fmt.Sprintf("b/%03d", i)) }
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := c.Admin.WaitAllReady(p); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		gw := c.GatewayFor(simnet.USEast1)
		co := txn.NewCoordinator(c.Stores[gw], c.Senders[gw])
		if err := co.Run(p, func(tx *txn.Txn) error {
			var kvs []mvcc.KeyValue
			for i := 0; i < accounts; i++ {
				kvs = append(kvs, mvcc.KeyValue{Key: key(i), Value: mvcc.Value(fmt.Sprintf("%d", initial))})
			}
			return tx.PutParallel(p, kvs)
		}); err != nil {
			t.Error(err)
			return
		}
		// Crash a non-leaseholder voter mid-run, later restart it.
		var victim simnet.NodeID
		for _, v := range desc.Voters {
			if v != desc.Leaseholder {
				victim = v
				break
			}
		}
		c.Sim.After(200*sim.Millisecond, func() { c.Net.CrashNode(victim) })
		c.Sim.After(3*sim.Second, func() { c.Net.RestartNode(victim) })

		for i := 0; i < 20; i++ {
			from, to := i%accounts, (i+1)%accounts
			err := co.Run(p, func(tx *txn.Txn) error {
				av, err := tx.GetForUpdate(p, key(from))
				if err != nil {
					return err
				}
				bv, err := tx.GetForUpdate(p, key(to))
				if err != nil {
					return err
				}
				a, b := 0, 0
				fmt.Sscanf(string(av), "%d", &a)
				fmt.Sscanf(string(bv), "%d", &b)
				if err := tx.Put(p, key(from), mvcc.Value(fmt.Sprintf("%d", a-1))); err != nil {
					return err
				}
				return tx.Put(p, key(to), mvcc.Value(fmt.Sprintf("%d", b+1)))
			})
			if err != nil {
				t.Errorf("transfer %d failed: %v", i, err)
				return
			}
		}
		total := 0
		if err := co.Run(p, func(tx *txn.Txn) error {
			total = 0
			for a := 0; a < accounts; a++ {
				v, err := tx.Get(p, key(a))
				if err != nil {
					return err
				}
				n := 0
				fmt.Sscanf(string(v), "%d", &n)
				total += n
			}
			return nil
		}); err != nil {
			t.Error(err)
			return
		}
		if total != accounts*initial {
			t.Errorf("total = %d, want %d", total, accounts*initial)
		}
	})
	c.Sim.RunFor(60 * 60 * sim.Second)
}

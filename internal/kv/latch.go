package kv

import (
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
)

// latchManager serializes request evaluation per key on a leaseholder.
// Writes take an exclusive latch held through Raft application so that a
// concurrent read cannot slip between a write's evaluation and its apply
// (which would let the write commit below the read). Reads only wait for
// conflicting write latches; since evaluation is instantaneous under the
// cooperative scheduler, reads need no latch of their own.
type latchManager struct {
	sim    *sim.Simulation
	held   map[string]bool
	queues map[string][]*sim.Cond
}

func newLatchManager(s *sim.Simulation) *latchManager {
	return &latchManager{sim: s, held: map[string]bool{}, queues: map[string][]*sim.Cond{}}
}

// acquire takes the exclusive latch on key, parking p while another writer
// holds it.
func (m *latchManager) acquire(p *sim.Proc, key mvcc.Key) {
	k := string(key)
	for m.held[k] {
		c := sim.NewCond(m.sim)
		m.queues[k] = append(m.queues[k], c)
		c.Wait(p)
	}
	m.held[k] = true
}

// release frees the latch and wakes the next waiter.
func (m *latchManager) release(key mvcc.Key) {
	k := string(key)
	if !m.held[k] {
		panic("kv: releasing unheld latch")
	}
	delete(m.held, k)
	if q := m.queues[k]; len(q) > 0 {
		m.queues[k] = q[1:]
		if len(m.queues[k]) == 0 {
			delete(m.queues, k)
		}
		q[0].Broadcast()
	}
}

// waitFree parks p until no writer holds the latch on key (read-side wait).
func (m *latchManager) waitFree(p *sim.Proc, key mvcc.Key) {
	k := string(key)
	for m.held[k] {
		c := sim.NewCond(m.sim)
		m.queues[k] = append(m.queues[k], c)
		c.Wait(p)
	}
	// Wake the next queued waiter too: multiple readers may proceed, and
	// a queued writer will re-check and re-queue if a reader got in
	// first (readers don't mark the latch held).
	if q := m.queues[k]; len(q) > 0 {
		m.queues[k] = q[1:]
		if len(m.queues[k]) == 0 {
			delete(m.queues, k)
		}
		q[0].Broadcast()
	}
}

// heldCount returns the number of held latches (testing hook).
func (m *latchManager) heldCount() int { return len(m.held) }

package kv

import (
	"errors"
	"fmt"
	"sort"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/obs"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// DistSender routes KV requests from a gateway node to the right replica of
// the right range: the leaseholder for consistent reads and all writes, or
// the nearest replica for follower-read-eligible requests. It retries
// around leaseholder moves and follower-read misses.
type DistSender struct {
	NodeID  simnet.NodeID
	Net     *simnet.Network
	Topo    *simnet.Topology
	Catalog *RangeCatalog

	// Liveness, when set, steers routing away from dead nodes: a request
	// whose cached leaseholder is expired goes to the nearest live replica
	// instead, and leaseholder hints pointing at dead nodes are ignored.
	Liveness *NodeLiveness

	// RPCTimeout bounds each attempt. Zero uses the network default.
	RPCTimeout sim.Duration

	// Tracer, when set, records a "ds.send" span per routed request with a
	// "ds.rpc" child per replica attempt (target, retries, backoff, and the
	// error that caused each retry). Optional; nil-safe.
	Tracer *obs.Tracer

	// Stats.
	Sent             int64
	Retries          int64
	FollowerMisses   int64
	LeaseholderHints int64
	// WANRPCs counts attempts routed to a node in another region; sessions
	// diff it around a statement to attribute cross-region trips.
	WANRPCs int64
	// BackoffTotal accumulates virtual time spent in retry backoff.
	BackoffTotal sim.Duration
}

// live reports whether the sender should route to id.
func (ds *DistSender) live(id simnet.NodeID) bool {
	return ds.Liveness == nil || ds.Liveness.Live(id, ds.Net.Sim.Now())
}

// keyOf extracts the routing key from a request.
func keyOf(req interface{}) (mvcc.Key, bool) {
	switch q := req.(type) {
	case *GetRequest:
		return q.Key, true
	case *PutRequest:
		return q.Key, true
	case *ScanRequest:
		return q.StartKey, true
	case *EndTxnRequest:
		return q.Txn.Meta.Key, true
	case *ResolveIntentRequest:
		return q.Key, true
	case *RefreshRequest:
		return q.Key, true
	case *NegotiateRequest:
		return q.StartKey, true
	case *QueryIntentRequest:
		return q.Key, true
	}
	return nil, false
}

// wantsFollower reports whether the request may be served by any replica.
func wantsFollower(req interface{}) bool {
	switch q := req.(type) {
	case *GetRequest:
		return q.FollowerRead
	case *ScanRequest:
		return q.FollowerRead
	case *RefreshRequest:
		return q.FollowerRead
	case *NegotiateRequest:
		return true
	}
	return false
}

// nearestReplica picks the lowest-RTT replica of d from the gateway,
// preferring live replicas; if every replica looks dead it falls back to
// the nearest one regardless (liveness may simply be stale).
func (ds *DistSender) nearestReplica(d *RangeDescriptor) simnet.NodeID {
	return ds.nearestReplicaExcluding(d, 0)
}

// nearestReplicaExcluding is nearestReplica skipping one node (typically a
// leaseholder already known to be unresponsive).
func (ds *DistSender) nearestReplicaExcluding(d *RangeDescriptor, skip simnet.NodeID) simnet.NodeID {
	best, bestAny := simnet.NodeID(0), simnet.NodeID(0)
	var bestRTT, bestAnyRTT sim.Duration
	for _, id := range d.Replicas() {
		if id == skip {
			continue
		}
		rtt := ds.Topo.NodeRTT(ds.NodeID, id)
		if bestAny == 0 || rtt < bestAnyRTT {
			bestAny, bestAnyRTT = id, rtt
		}
		if ds.live(id) && (best == 0 || rtt < bestRTT) {
			best, bestRTT = id, rtt
		}
	}
	if best != 0 {
		return best
	}
	if bestAny != 0 {
		return bestAny
	}
	return skip
}

// replicasByPreference orders a range's replicas by RTT from the gateway,
// with live replicas ahead of liveness-expired ones (which still get tried
// last: the record may be stale).
func (ds *DistSender) replicasByPreference(d *RangeDescriptor) []simnet.NodeID {
	out := append([]simnet.NodeID(nil), d.Replicas()...)
	sort.SliceStable(out, func(i, j int) bool {
		li, lj := ds.live(out[i]), ds.live(out[j])
		if li != lj {
			return li
		}
		return ds.Topo.NodeRTT(ds.NodeID, out[i]) < ds.Topo.NodeRTT(ds.NodeID, out[j])
	})
	return out
}

// maxSendAttempts bounds routing retries before giving up. With the capped
// exponential backoff below, a full retry budget spans roughly 25s of
// virtual time — enough to ride out an election plus a liveness expiration
// during failover.
const maxSendAttempts = 32

// Retry backoff bounds: exponential from base to cap, with deterministic
// jitter drawn from the simulation RNG (full jitter over the upper half of
// the interval, so retries from different gateways decorrelate).
const (
	retryBackoffBase = 10 * sim.Millisecond
	retryBackoffMax  = 1 * sim.Second
)

// backoff sleeps for the n-th capped exponential retry pause.
func (ds *DistSender) backoff(p *sim.Proc, n int) {
	d := retryBackoffBase
	for i := 0; i < n && d < retryBackoffMax; i++ {
		d *= 2
	}
	if d > retryBackoffMax {
		d = retryBackoffMax
	}
	half := d / 2
	d = half + sim.Duration(ds.Net.Sim.Rand().Int63n(int64(half)+1))
	ds.BackoffTotal += d
	p.Sleep(d)
}

// Send routes req and returns the typed response. It parks p for network
// and evaluation time.
func (ds *DistSender) Send(p *sim.Proc, req interface{}) Response {
	key, ok := keyOf(req)
	if !ok {
		return Response{Err: fmt.Errorf("kv: cannot route %T", req)}
	}
	sp, finish := ds.Tracer.StartIn(p, "ds.send")
	defer finish()
	sp.SetTag("req", fmt.Sprintf("%T", req)).SetTag("key", string(key))
	leaseholderHint := simnet.NodeID(0)
	forceLeaseholder := false
	backoffs := 0
	// lastErr remembers why the most recent attempt failed, so exhausting
	// the retry budget surfaces the cause instead of a bare attempt count.
	var lastErr error
	backoff := func(asp *obs.Span) {
		before := ds.BackoffTotal
		ds.backoff(p, backoffs)
		backoffs++
		asp.SetTagDuration("backoff", ds.BackoffTotal-before)
	}
	for attempt := 0; attempt < maxSendAttempts; attempt++ {
		desc, err := ds.Catalog.Lookup(key)
		if err != nil {
			sp.SetTag("err", err.Error())
			return Response{Err: err}
		}
		target := desc.Leaseholder
		if leaseholderHint != 0 {
			target = leaseholderHint
			leaseholderHint = 0
		} else if wantsFollower(req) && !forceLeaseholder {
			target = ds.nearestReplica(desc)
		} else if !ds.live(target) {
			// The cached leaseholder's liveness record expired: route to
			// the nearest live replica instead, whose redirect (or the
			// recovered catalog entry next attempt) points at the new
			// leaseholder once a survivor acquires the lease.
			target = ds.nearestReplicaExcluding(desc, target)
		}
		ds.Sent++
		if ds.Net.WAN(ds.NodeID, target) {
			ds.WANRPCs++
		}
		asp, attemptDone := ds.Tracer.StartIn(p, "ds.rpc")
		asp.SetTagInt("attempt", int64(attempt)).SetTagInt("target", int64(target))
		raw, rpcErr := ds.Net.SendRPC(p, ds.NodeID, target,
			BatchRequest{RangeID: desc.RangeID, Req: req, Trace: asp.Ctx()}, ds.RPCTimeout)
		if rpcErr != nil {
			// Node unreachable: back off and re-route (the descriptor or
			// lease may move during failover).
			lastErr = rpcErr
			asp.SetTag("err", rpcErr.Error())
			ds.Retries++
			forceLeaseholder = false
			attemptDone()
			backoff(asp)
			continue
		}
		resp := raw.(Response)
		var nle *NotLeaseholderError
		if errors.As(resp.Err, &nle) {
			lastErr = resp.Err
			asp.SetTag("err", resp.Err.Error())
			ds.Retries++
			ds.LeaseholderHints++
			attemptDone()
			if nle.Leaseholder != 0 && nle.Leaseholder != target && ds.live(nle.Leaseholder) {
				leaseholderHint = nle.Leaseholder
			} else {
				backoff(asp)
			}
			continue
		}
		var fru *FollowerReadUnavailableError
		if errors.As(resp.Err, &fru) {
			// Paper §5.3.1: reads a follower cannot serve are
			// redirected to the leaseholder.
			lastErr = resp.Err
			asp.SetTag("err", resp.Err.Error())
			ds.Retries++
			ds.FollowerMisses++
			attemptDone()
			if forceLeaseholder || target == desc.Leaseholder {
				// The leaseholder itself could not serve (fenced lease
				// mid-recovery): wait for the lease to move.
				backoff(asp)
			}
			forceLeaseholder = true
			continue
		}
		var rkm *RangeKeyMismatchError
		if errors.As(resp.Err, &rkm) {
			lastErr = resp.Err
			asp.SetTag("err", resp.Err.Error())
			ds.Retries++
			attemptDone()
			backoff(asp)
			continue
		}
		attemptDone()
		return resp
	}
	err := fmt.Errorf("kv: request to %q failed after %d attempts", key, maxSendAttempts)
	if lastErr != nil {
		err = fmt.Errorf("kv: request to %q failed after %d attempts: last attempt: %w",
			key, maxSendAttempts, lastErr)
	}
	sp.SetTag("err", err.Error())
	return Response{Err: err}
}

// Get is a convenience wrapper returning the value for key.
func (ds *DistSender) Get(p *sim.Proc, req *GetRequest) (*GetResponse, error) {
	resp := ds.Send(p, req)
	if resp.Err != nil {
		return nil, resp.Err
	}
	return resp.Get, nil
}

// Put is a convenience wrapper for writes.
func (ds *DistSender) Put(p *sim.Proc, req *PutRequest) (*PutResponse, error) {
	resp := ds.Send(p, req)
	if resp.Err != nil {
		return nil, resp.Err
	}
	return resp.Put, nil
}

// NegotiateBoundedStaleness implements the two-phase bounded staleness
// protocol of §5.3.2 for a set of key spans: ask the nearest replica of
// each touched range for its locally servable timestamp and take the
// minimum. The caller compares the result against its staleness bound.
func (ds *DistSender) NegotiateBoundedStaleness(p *sim.Proc, spans [][2]mvcc.Key) (hlc.Timestamp, error) {
	result := hlc.MaxTimestamp
	for _, span := range spans {
		descs := ds.Catalog.LookupSpan(span[0], span[1])
		if len(descs) == 0 {
			// Point lookup fallback.
			d, err := ds.Catalog.Lookup(span[0])
			if err != nil {
				return hlc.Timestamp{}, err
			}
			descs = []*RangeDescriptor{d}
		}
		for _, desc := range descs {
			// Bounded staleness tolerates replica unavailability (§5.3.2):
			// try every replica in nearest-first order (live ones ahead of
			// suspect ones) and take the first answer, rather than failing
			// on the first transient RPC error.
			var lastErr error
			answered := false
			for _, target := range ds.replicasByPreference(desc) {
				raw, err := ds.Net.SendRPC(p, ds.NodeID, target,
					BatchRequest{RangeID: desc.RangeID, Req: &NegotiateRequest{StartKey: span[0], EndKey: span[1]}}, ds.RPCTimeout)
				if err != nil {
					ds.Retries++
					lastErr = err
					continue
				}
				resp := raw.(Response)
				if resp.Err != nil {
					ds.Retries++
					lastErr = resp.Err
					continue
				}
				if resp.Negot.MaxTimestamp.Less(result) {
					result = resp.Negot.MaxTimestamp
				}
				answered = true
				break
			}
			if !answered {
				if lastErr == nil {
					lastErr = fmt.Errorf("kv: r%d has no reachable replica", desc.RangeID)
				}
				return hlc.Timestamp{}, lastErr
			}
		}
	}
	return result, nil
}

package kv

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/obs"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// DistSender routes KV requests from a gateway node to the right replica of
// the right range: the leaseholder for consistent reads and all writes, or
// the nearest replica for follower-read-eligible requests. It retries
// around leaseholder moves and follower-read misses.
type DistSender struct {
	NodeID  simnet.NodeID
	Net     *simnet.Network
	Topo    *simnet.Topology
	Catalog *RangeCatalog

	// Liveness, when set, steers routing away from dead nodes: a request
	// whose cached leaseholder is expired goes to the nearest live replica
	// instead, and leaseholder hints pointing at dead nodes are ignored.
	Liveness *NodeLiveness

	// RPCTimeout bounds each attempt. Zero uses the network default.
	RPCTimeout sim.Duration

	// Tracer, when set, records a "ds.send" span per routed per-range RPC
	// with a "ds.rpc" child per replica attempt (target, retries, backoff,
	// and the error that caused each retry). Batches additionally get a
	// "ds.batch" parent and multi-range scans a "ds.scan" parent. Optional;
	// nil-safe.
	Tracer *obs.Tracer

	// Metrics, when set, records the batch-size and per-batch range fan-out
	// distributions ("ds.batch.size", "ds.batch.ranges", "ds.scan.ranges").
	// Optional; nil-safe.
	Metrics *obs.Registry

	// Load, when set, is the shared per-range traffic tracker feeding the
	// load-based split/merge/rebalance queue. Each routed sub-batch is
	// charged once, attributed to this gateway's region. Optional; nil-safe.
	Load *RangeLoadTracker

	// PerKeyDispatch is an ablation knob: dispatch one request per RPC,
	// sequentially, and walk multi-range scans one range at a time via
	// resume keys instead of fanning out. It models the pre-batching
	// dispatch so benchmarks can isolate what batching buys.
	PerKeyDispatch bool

	// Stats.
	Sent             int64
	Retries          int64
	FollowerMisses   int64
	LeaseholderHints int64
	// Batches counts SendBatch calls; BatchedReqs the requests they carried.
	Batches     int64
	BatchedReqs int64
	// WANRPCs counts attempts routed to a node in another region; sessions
	// diff it around a statement to attribute cross-region trips.
	WANRPCs int64
	// BackoffTotal accumulates virtual time spent in retry backoff.
	BackoffTotal sim.Duration
}

// live reports whether the sender should route to id.
func (ds *DistSender) live(id simnet.NodeID) bool {
	return ds.Liveness == nil || ds.Liveness.Live(id, ds.Net.Sim.Now())
}

// keyOf extracts the routing key from a request.
func keyOf(req interface{}) (mvcc.Key, bool) {
	switch q := req.(type) {
	case *GetRequest:
		return q.Key, true
	case *PutRequest:
		return q.Key, true
	case *ScanRequest:
		return q.StartKey, true
	case *EndTxnRequest:
		return q.Txn.Meta.Key, true
	case *ResolveIntentRequest:
		return q.Key, true
	case *RefreshRequest:
		return q.Key, true
	case *NegotiateRequest:
		return q.StartKey, true
	case *QueryIntentRequest:
		return q.Key, true
	}
	return nil, false
}

// reqTypeName returns the string %T would for a routable request, without
// reflection or allocation on the hot path. The literals must stay
// byte-identical to the reflected names: they appear in span renderings that
// same-seed determinism oracles hash.
func reqTypeName(req interface{}) string {
	switch req.(type) {
	case *GetRequest:
		return "*kv.GetRequest"
	case *PutRequest:
		return "*kv.PutRequest"
	case *ScanRequest:
		return "*kv.ScanRequest"
	case *EndTxnRequest:
		return "*kv.EndTxnRequest"
	case *ResolveIntentRequest:
		return "*kv.ResolveIntentRequest"
	case *RefreshRequest:
		return "*kv.RefreshRequest"
	case *NegotiateRequest:
		return "*kv.NegotiateRequest"
	case *QueryIntentRequest:
		return "*kv.QueryIntentRequest"
	}
	return fmt.Sprintf("%T", req)
}

// wantsFollower reports whether the request may be served by any replica.
func wantsFollower(req interface{}) bool {
	switch q := req.(type) {
	case *GetRequest:
		return q.FollowerRead
	case *ScanRequest:
		return q.FollowerRead
	case *RefreshRequest:
		return q.FollowerRead
	case *NegotiateRequest:
		return true
	}
	return false
}

// nearestReplica picks the lowest-RTT replica of d from the gateway,
// preferring live replicas; if every replica looks dead it falls back to
// the nearest one regardless (liveness may simply be stale).
func (ds *DistSender) nearestReplica(d *RangeDescriptor) simnet.NodeID {
	return ds.nearestReplicaExcluding(d, 0)
}

// nearestReplicaExcluding is nearestReplica skipping one node (typically a
// leaseholder already known to be unresponsive).
func (ds *DistSender) nearestReplicaExcluding(d *RangeDescriptor, skip simnet.NodeID) simnet.NodeID {
	best, bestAny := simnet.NodeID(0), simnet.NodeID(0)
	var bestRTT, bestAnyRTT sim.Duration
	for _, id := range d.Replicas() {
		if id == skip {
			continue
		}
		rtt := ds.Topo.NodeRTT(ds.NodeID, id)
		if bestAny == 0 || rtt < bestAnyRTT {
			bestAny, bestAnyRTT = id, rtt
		}
		if ds.live(id) && (best == 0 || rtt < bestRTT) {
			best, bestRTT = id, rtt
		}
	}
	if best != 0 {
		return best
	}
	if bestAny != 0 {
		return bestAny
	}
	return skip
}

// replicasByPreference orders a range's replicas by RTT from the gateway,
// with live replicas ahead of liveness-expired ones (which still get tried
// last: the record may be stale).
func (ds *DistSender) replicasByPreference(d *RangeDescriptor) []simnet.NodeID {
	out := append([]simnet.NodeID(nil), d.Replicas()...)
	sort.SliceStable(out, func(i, j int) bool {
		li, lj := ds.live(out[i]), ds.live(out[j])
		if li != lj {
			return li
		}
		return ds.Topo.NodeRTT(ds.NodeID, out[i]) < ds.Topo.NodeRTT(ds.NodeID, out[j])
	})
	return out
}

// maxSendAttempts bounds routing retries before giving up. With the capped
// exponential backoff below, a full retry budget spans roughly 25s of
// virtual time — enough to ride out an election plus a liveness expiration
// during failover.
const maxSendAttempts = 32

// Retry backoff bounds: exponential from base to cap, with deterministic
// jitter drawn from the simulation RNG (full jitter over the upper half of
// the interval, so retries from different gateways decorrelate).
const (
	retryBackoffBase = 10 * sim.Millisecond
	retryBackoffMax  = 1 * sim.Second
)

// backoff sleeps for the n-th capped exponential retry pause.
func (ds *DistSender) backoff(p *sim.Proc, n int) {
	d := retryBackoffBase
	for i := 0; i < n && d < retryBackoffMax; i++ {
		d *= 2
	}
	if d > retryBackoffMax {
		d = retryBackoffMax
	}
	half := d / 2
	d = half + sim.Duration(ds.Net.Sim.Rand().Int63n(int64(half)+1))
	ds.BackoffTotal += d
	p.Sleep(d)
}

// maxBatchSplitDepth bounds recursive re-splitting of a sub-batch whose
// range splits underneath it mid-dispatch.
const maxBatchSplitDepth = 8

// maxScanHops bounds resume-key following on a multi-range scan.
const maxScanHops = 64

// Send routes req and returns the typed response. It parks p for network
// and evaluation time. Scans route through the multi-range scan path;
// everything else is a single-request batch to one range.
func (ds *DistSender) Send(p *sim.Proc, req interface{}) Response {
	if sc, ok := req.(*ScanRequest); ok {
		return ds.sendScan(p, sc)
	}
	return ds.sendToRange(p, []interface{}{req}, 0)[0]
}

// SendBatch routes a batch of point requests: it groups them by range
// descriptor, dispatches one RPC per touched range in parallel (virtual
// latency is the max over ranges, not the sum), and returns responses in
// request order. Unroutable requests get per-slot errors; the rest of the
// batch still dispatches.
func (ds *DistSender) SendBatch(p *sim.Proc, reqs []interface{}) []Response {
	if len(reqs) == 0 {
		return nil
	}
	sp, finish := ds.Tracer.StartIn(p, "ds.batch")
	defer finish()
	if sp != nil {
		sp.SetTag("req", reqTypeName(reqs[0])).SetTagInt("reqs", int64(len(reqs)))
	}
	resps, ranges := ds.sendBatchInner(p, reqs, 0)
	sp.SetTagInt("ranges", int64(ranges))
	ds.Batches++
	ds.BatchedReqs += int64(len(reqs))
	if ds.Metrics != nil {
		ds.Metrics.Histogram("ds.batch.size").Record(int64(len(reqs)))
		ds.Metrics.Histogram("ds.batch.ranges").Record(int64(ranges))
	}
	return resps
}

// batchGroup is one per-range slice of request indices within a batch.
type batchGroup struct {
	rid  RangeID
	idxs []int32
}

// sendBatchInner splits reqs into per-range groups (first-occurrence
// order) and dispatches them; it returns the merged responses in request
// order plus the number of ranges touched.
//
// Grouping is slice-based rather than map-based: requests are assigned a
// group ordinal in one pass (memoizing the last descriptor, since batches
// are usually key-ordered and range-clustered), then index lists are carved
// out of a single shared buffer. A batch that lands entirely on one range —
// the overwhelmingly common case — dispatches reqs directly with no group
// buffers at all.
func (ds *DistSender) sendBatchInner(p *sim.Proc, reqs []interface{}, depth int) ([]Response, int) {
	resps := make([]Response, len(reqs))
	var groups []batchGroup
	var desc *RangeDescriptor // memoized last descriptor
	gid := -1                 // memoized group ordinal for desc
	routable := 0
	for i, req := range reqs {
		key, ok := keyOf(req)
		if !ok {
			resps[i] = Response{Err: fmt.Errorf("kv: cannot route %T", req)}
			continue
		}
		if desc == nil || !desc.ContainsKey(key) {
			d, err := ds.Catalog.Lookup(key)
			if err != nil {
				resps[i] = Response{Err: err}
				continue
			}
			desc = d
			gid = -1
			for g := range groups {
				if groups[g].rid == d.RangeID {
					gid = g
					break
				}
			}
			if gid == -1 {
				gid = len(groups)
				groups = append(groups, batchGroup{rid: d.RangeID})
			}
		}
		groups[gid].idxs = append(groups[gid].idxs, int32(i))
		routable++
	}
	dispatch := func(dp *sim.Proc, idxs []int32, sub []interface{}) {
		if sub == nil {
			sub = make([]interface{}, len(idxs))
			for j, i := range idxs {
				sub[j] = reqs[i]
			}
		}
		if ds.PerKeyDispatch {
			for j, r := range sub {
				resps[idxs[j]] = ds.sendToRange(dp, []interface{}{r}, depth)[0]
			}
			return
		}
		out := ds.sendToRange(dp, sub, depth)
		for j, i := range idxs {
			resps[i] = out[j]
		}
	}
	switch {
	case len(groups) == 1 && routable == len(reqs):
		// Single range, every request routable: the sub-batch is the batch.
		if ds.PerKeyDispatch {
			dispatch(p, groups[0].idxs, reqs)
			break
		}
		out := ds.sendToRange(p, reqs, depth)
		copy(resps, out)
	case len(groups) <= 1:
		if len(groups) == 1 {
			dispatch(p, groups[0].idxs, nil)
		}
	case ds.PerKeyDispatch:
		// Ablation: sequential per-range (and per-key) dispatch, so the
		// virtual latency is the sum over ranges.
		for g := range groups {
			dispatch(p, groups[g].idxs, nil)
		}
	default:
		parent := obs.ProcSpan(p)
		wg := p.Sim().GetWaitGroup()
		for g := range groups {
			idxs := groups[g].idxs
			wg.Add(1)
			p.Sim().Spawn("ds/batch-range", func(wp *sim.Proc) {
				obs.SetProcSpan(wp, parent)
				defer wg.Done()
				dispatch(wp, idxs, nil)
			})
		}
		wg.Wait(p)
		wg.Release()
	}
	return resps, len(groups)
}

// descContainsAll reports whether d owns the routing key of every request.
func descContainsAll(d *RangeDescriptor, reqs []interface{}) bool {
	for _, r := range reqs {
		key, ok := keyOf(r)
		if !ok || !d.ContainsKey(key) {
			return false
		}
	}
	return true
}

// errResponses fills one error Response per request.
func errResponses(n int, err error) []Response {
	resps := make([]Response, n)
	for i := range resps {
		resps[i] = Response{Err: err}
	}
	return resps
}

// sendToRange dispatches a per-range sub-batch (usually a singleton) as one
// RPC, retrying around leaseholder moves, follower-read misses, and range
// moves. A retriable error on any response retries the whole sub-batch; if
// a split moved some keys out of the range mid-flight, the sub-batch is
// re-split through sendBatchInner.
func (ds *DistSender) sendToRange(p *sim.Proc, reqs []interface{}, depth int) []Response {
	key, ok := keyOf(reqs[0])
	if !ok {
		return errResponses(len(reqs), fmt.Errorf("kv: cannot route %T", reqs[0]))
	}
	sp, finish := ds.Tracer.StartIn(p, "ds.send")
	defer finish()
	if sp != nil {
		sp.SetTag("req", reqTypeName(reqs[0])).SetTag("key", string(key))
		if len(reqs) > 1 {
			sp.SetTagInt("reqs", int64(len(reqs)))
		}
	}
	follower := true
	for _, r := range reqs {
		if !wantsFollower(r) {
			follower = false
			break
		}
	}
	leaseholderHint := simnet.NodeID(0)
	forceLeaseholder := false
	backoffs := 0
	// lastErr remembers why the most recent attempt failed, so exhausting
	// the retry budget surfaces the cause instead of a bare attempt count.
	var lastErr error
	backoff := func(asp *obs.Span) {
		// Never escapes this frame, so it costs no allocation.
		before := ds.BackoffTotal
		ds.backoff(p, backoffs)
		backoffs++
		asp.SetTagDuration("backoff", ds.BackoffTotal-before)
	}
	for attempt := 0; attempt < maxSendAttempts; attempt++ {
		desc, err := ds.Catalog.Lookup(key)
		if err != nil {
			sp.SetError(err)
			return errResponses(len(reqs), err)
		}
		if len(reqs) > 1 && depth < maxBatchSplitDepth && !descContainsAll(desc, reqs) {
			// The range split under the batch: re-split against the fresh
			// descriptors.
			sp.SetTag("resplit", "true")
			resps, _ := ds.sendBatchInner(p, reqs, depth+1)
			return resps
		}
		if attempt == 0 && ds.Load != nil {
			// Charge the sub-batch to the range once (not per retry),
			// attributed to this gateway's region.
			loc, _ := ds.Topo.LocalityOf(ds.NodeID)
			ds.Load.Record(desc.RangeID, key, loc.Region, len(reqs))
		}
		target := desc.Leaseholder
		if leaseholderHint != 0 {
			target = leaseholderHint
			leaseholderHint = 0
		} else if follower && !forceLeaseholder {
			target = ds.nearestReplica(desc)
		} else if !ds.live(target) {
			// The cached leaseholder's liveness record expired: route to
			// the nearest live replica instead, whose redirect (or the
			// recovered catalog entry next attempt) points at the new
			// leaseholder once a survivor acquires the lease.
			target = ds.nearestReplicaExcluding(desc, target)
		}
		ds.Sent++
		if ds.Net.WAN(ds.NodeID, target) {
			ds.WANRPCs++
		}
		asp, attemptDone := ds.Tracer.StartIn(p, "ds.rpc")
		asp.SetTagInt("attempt", int64(attempt)).SetTagInt("target", int64(target))
		env := BatchRequest{RangeID: desc.RangeID, Trace: asp.Ctx()}
		if len(reqs) == 1 {
			env.Req = reqs[0]
		} else {
			env.Reqs = reqs
		}
		raw, rpcErr := ds.Net.SendRPC(p, ds.NodeID, target, env, ds.RPCTimeout)
		if rpcErr != nil {
			// Node unreachable: back off and re-route (the descriptor or
			// lease may move during failover).
			lastErr = rpcErr
			asp.SetError(rpcErr)
			ds.Retries++
			forceLeaseholder = false
			attemptDone()
			backoff(asp)
			continue
		}
		var resps []Response
		if br, ok := raw.(BatchResponse); ok {
			resps = br.Resps
		} else {
			resps = []Response{raw.(Response)}
		}
		// A retriable error on any response retries the whole sub-batch
		// (requests are idempotent at the MVCC layer: re-evaluating a
		// write lays down the same intent).
		retriable := false
		for _, resp := range resps {
			var nle *NotLeaseholderError
			if errors.As(resp.Err, &nle) {
				lastErr = resp.Err
				asp.SetError(resp.Err)
				ds.Retries++
				ds.LeaseholderHints++
				attemptDone()
				if nle.Leaseholder != 0 && nle.Leaseholder != target && ds.live(nle.Leaseholder) {
					leaseholderHint = nle.Leaseholder
				} else {
					backoff(asp)
				}
				retriable = true
				break
			}
			var fru *FollowerReadUnavailableError
			if errors.As(resp.Err, &fru) {
				// Paper §5.3.1: reads a follower cannot serve are
				// redirected to the leaseholder.
				lastErr = resp.Err
				asp.SetError(resp.Err)
				ds.Retries++
				ds.FollowerMisses++
				attemptDone()
				if forceLeaseholder || target == desc.Leaseholder {
					// The leaseholder itself could not serve (fenced lease
					// mid-recovery): wait for the lease to move.
					backoff(asp)
				}
				forceLeaseholder = true
				retriable = true
				break
			}
			var rkm *RangeKeyMismatchError
			if errors.As(resp.Err, &rkm) {
				lastErr = resp.Err
				asp.SetError(resp.Err)
				ds.Retries++
				attemptDone()
				backoff(asp)
				retriable = true
				break
			}
		}
		if retriable {
			continue
		}
		attemptDone()
		return resps
	}
	err := fmt.Errorf("kv: request to %q failed after %d attempts", key, maxSendAttempts)
	if lastErr != nil {
		err = fmt.Errorf("kv: request to %q failed after %d attempts: last attempt: %w",
			key, maxSendAttempts, lastErr)
	}
	sp.SetError(err)
	return errResponses(len(reqs), err)
}

// sendScan executes a scan that may span multiple ranges: it looks up every
// descriptor overlapping the span, clamps a sub-scan to each range's
// bounds, dispatches the sub-scans in parallel, and merges rows in range
// order up to MaxRows. When a replica returns a resume key (its copy of the
// range was smaller than the catalog promised, or a MaxRows cut), the
// DistSender follows it until MaxRows or span exhaustion.
func (ds *DistSender) sendScan(p *sim.Proc, req *ScanRequest) Response {
	sp, finish := ds.Tracer.StartIn(p, "ds.scan")
	defer finish()
	if sp != nil {
		sp.SetTag("key", string(req.StartKey))
	}
	var rows []mvcc.KeyValue
	served := simnet.NodeID(0)
	cursor := req.StartKey
	ranges := 0
	for hops := 0; ; hops++ {
		if hops >= maxScanHops {
			err := fmt.Errorf("kv: scan from %q exceeded %d range hops", req.StartKey, maxScanHops)
			sp.SetError(err)
			return Response{Err: err}
		}
		remaining := 0
		if req.MaxRows > 0 {
			remaining = req.MaxRows - len(rows)
			if remaining <= 0 {
				break
			}
		}
		descs := ds.Catalog.LookupSpan(cursor, req.EndKey)
		if len(descs) == 0 {
			d, err := ds.Catalog.Lookup(cursor)
			if err != nil {
				sp.SetError(err)
				return Response{Err: err}
			}
			descs = []*RangeDescriptor{d}
		}
		if ds.PerKeyDispatch && len(descs) > 1 {
			// Ablation: walk one range at a time via resume keys.
			descs = descs[:1]
		}
		subs := make([]interface{}, len(descs))
		var lastEnd mvcc.Key
		for i, d := range descs {
			sub := *req
			sub.StartKey = cursor
			if bytes.Compare(d.StartKey, sub.StartKey) > 0 {
				sub.StartKey = d.StartKey
			}
			sub.EndKey = req.EndKey
			if d.EndKey != nil && (sub.EndKey == nil || bytes.Compare(d.EndKey, sub.EndKey) < 0) {
				sub.EndKey = d.EndKey
			}
			sub.MaxRows = remaining
			subs[i] = &sub
			lastEnd = sub.EndKey
		}
		var resps []Response
		if len(subs) == 1 {
			resps = []Response{ds.sendToRange(p, subs[:1], 0)[0]}
		} else {
			resps = make([]Response, len(subs))
			parent := obs.ProcSpan(p)
			wg := p.Sim().GetWaitGroup()
			for i := range subs {
				i := i
				wg.Add(1)
				p.Sim().Spawn("ds/scan-range", func(wp *sim.Proc) {
					obs.SetProcSpan(wp, parent)
					defer wg.Done()
					resps[i] = ds.sendToRange(wp, subs[i:i+1], 0)[0]
				})
			}
			wg.Wait(p)
			wg.Release()
		}
		var resume mvcc.Key
		full := false
		for _, resp := range resps {
			if resp.Err != nil {
				sp.SetError(resp.Err)
				return resp
			}
			ranges++
			sr := resp.Scan
			if served == 0 {
				served = sr.ServedBy
			}
			for _, kvr := range sr.Rows {
				rows = append(rows, kvr)
				if req.MaxRows > 0 && len(rows) >= req.MaxRows {
					full = true
					break
				}
			}
			if full {
				break
			}
			if sr.ResumeKey != nil {
				// The replica served less than we asked of it: continue
				// from its resume key and discard any later ranges'
				// results (they may overlap the resumed span).
				resume = sr.ResumeKey
				break
			}
		}
		if full {
			break
		}
		if resume != nil {
			cursor = resume
			continue
		}
		// All dispatched sub-scans completed. If the catalog's coverage
		// stopped short of the requested span (or the ablation only took
		// the first range), continue from the last covered key.
		if lastEnd != nil && (req.EndKey == nil || bytes.Compare(lastEnd, req.EndKey) < 0) {
			cursor = lastEnd
			continue
		}
		break
	}
	sp.SetTagInt("ranges", int64(ranges)).SetTagInt("rows", int64(len(rows)))
	if ds.Metrics != nil {
		ds.Metrics.Histogram("ds.scan.ranges").Record(int64(ranges))
	}
	return Response{Scan: &ScanResponse{Rows: rows, ServedBy: served}}
}

// Get is a convenience wrapper returning the value for key.
func (ds *DistSender) Get(p *sim.Proc, req *GetRequest) (*GetResponse, error) {
	resp := ds.Send(p, req)
	if resp.Err != nil {
		return nil, resp.Err
	}
	return resp.Get, nil
}

// Put is a convenience wrapper for writes.
func (ds *DistSender) Put(p *sim.Proc, req *PutRequest) (*PutResponse, error) {
	resp := ds.Send(p, req)
	if resp.Err != nil {
		return nil, resp.Err
	}
	return resp.Put, nil
}

// NegotiateBoundedStaleness implements the two-phase bounded staleness
// protocol of §5.3.2 for a set of key spans: ask the nearest replica of
// each touched range for its locally servable timestamp and take the
// minimum. The caller compares the result against its staleness bound.
func (ds *DistSender) NegotiateBoundedStaleness(p *sim.Proc, spans [][2]mvcc.Key) (hlc.Timestamp, error) {
	result := hlc.MaxTimestamp
	for _, span := range spans {
		descs := ds.Catalog.LookupSpan(span[0], span[1])
		if len(descs) == 0 {
			// Point lookup fallback.
			d, err := ds.Catalog.Lookup(span[0])
			if err != nil {
				return hlc.Timestamp{}, err
			}
			descs = []*RangeDescriptor{d}
		}
		for _, desc := range descs {
			// Bounded staleness tolerates replica unavailability (§5.3.2):
			// try every replica in nearest-first order (live ones ahead of
			// suspect ones) and take the first answer, rather than failing
			// on the first transient RPC error.
			var lastErr error
			answered := false
			for _, target := range ds.replicasByPreference(desc) {
				raw, err := ds.Net.SendRPC(p, ds.NodeID, target,
					BatchRequest{RangeID: desc.RangeID, Req: &NegotiateRequest{StartKey: span[0], EndKey: span[1]}}, ds.RPCTimeout)
				if err != nil {
					ds.Retries++
					lastErr = err
					continue
				}
				resp := raw.(Response)
				if resp.Err != nil {
					ds.Retries++
					lastErr = resp.Err
					continue
				}
				if resp.Negot.MaxTimestamp.Less(result) {
					result = resp.Negot.MaxTimestamp
				}
				answered = true
				break
			}
			if !answered {
				if lastErr == nil {
					lastErr = fmt.Errorf("kv: r%d has no reachable replica", desc.RangeID)
				}
				return hlc.Timestamp{}, lastErr
			}
		}
	}
	return result, nil
}

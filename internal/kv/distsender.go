package kv

import (
	"errors"
	"fmt"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// DistSender routes KV requests from a gateway node to the right replica of
// the right range: the leaseholder for consistent reads and all writes, or
// the nearest replica for follower-read-eligible requests. It retries
// around leaseholder moves and follower-read misses.
type DistSender struct {
	NodeID  simnet.NodeID
	Net     *simnet.Network
	Topo    *simnet.Topology
	Catalog *RangeCatalog

	// RPCTimeout bounds each attempt. Zero uses the network default.
	RPCTimeout sim.Duration

	// Stats.
	Sent             int64
	Retries          int64
	FollowerMisses   int64
	LeaseholderHints int64
}

// keyOf extracts the routing key from a request.
func keyOf(req interface{}) (mvcc.Key, bool) {
	switch q := req.(type) {
	case *GetRequest:
		return q.Key, true
	case *PutRequest:
		return q.Key, true
	case *ScanRequest:
		return q.StartKey, true
	case *EndTxnRequest:
		return q.Txn.Meta.Key, true
	case *ResolveIntentRequest:
		return q.Key, true
	case *RefreshRequest:
		return q.Key, true
	case *NegotiateRequest:
		return q.StartKey, true
	case *QueryIntentRequest:
		return q.Key, true
	}
	return nil, false
}

// wantsFollower reports whether the request may be served by any replica.
func wantsFollower(req interface{}) bool {
	switch q := req.(type) {
	case *GetRequest:
		return q.FollowerRead
	case *ScanRequest:
		return q.FollowerRead
	case *RefreshRequest:
		return q.FollowerRead
	case *NegotiateRequest:
		return true
	}
	return false
}

// nearestReplica picks the lowest-RTT replica of d from the gateway.
func (ds *DistSender) nearestReplica(d *RangeDescriptor) simnet.NodeID {
	best := simnet.NodeID(0)
	var bestRTT sim.Duration
	for _, id := range d.Replicas() {
		rtt := ds.Topo.NodeRTT(ds.NodeID, id)
		if best == 0 || rtt < bestRTT {
			best, bestRTT = id, rtt
		}
	}
	return best
}

// maxSendAttempts bounds routing retries before giving up.
const maxSendAttempts = 16

// Send routes req and returns the typed response. It parks p for network
// and evaluation time.
func (ds *DistSender) Send(p *sim.Proc, req interface{}) Response {
	key, ok := keyOf(req)
	if !ok {
		return Response{Err: fmt.Errorf("kv: cannot route %T", req)}
	}
	leaseholderHint := simnet.NodeID(0)
	forceLeaseholder := false
	for attempt := 0; attempt < maxSendAttempts; attempt++ {
		desc, err := ds.Catalog.Lookup(key)
		if err != nil {
			return Response{Err: err}
		}
		target := desc.Leaseholder
		if leaseholderHint != 0 {
			target = leaseholderHint
			leaseholderHint = 0
		} else if wantsFollower(req) && !forceLeaseholder {
			target = ds.nearestReplica(desc)
		}
		ds.Sent++
		raw, rpcErr := ds.Net.SendRPC(p, ds.NodeID, target, BatchRequest{RangeID: desc.RangeID, Req: req}, ds.RPCTimeout)
		if rpcErr != nil {
			// Node unreachable: back off briefly and re-route (the
			// descriptor or lease may move during failover).
			ds.Retries++
			forceLeaseholder = false
			p.Sleep(100 * sim.Millisecond)
			continue
		}
		resp := raw.(Response)
		var nle *NotLeaseholderError
		if errors.As(resp.Err, &nle) {
			ds.Retries++
			ds.LeaseholderHints++
			if nle.Leaseholder != 0 && nle.Leaseholder != target {
				leaseholderHint = nle.Leaseholder
			} else {
				p.Sleep(50 * sim.Millisecond)
			}
			continue
		}
		var fru *FollowerReadUnavailableError
		if errors.As(resp.Err, &fru) {
			// Paper §5.3.1: reads a follower cannot serve are
			// redirected to the leaseholder.
			ds.Retries++
			ds.FollowerMisses++
			forceLeaseholder = true
			continue
		}
		var rkm *RangeKeyMismatchError
		if errors.As(resp.Err, &rkm) {
			ds.Retries++
			p.Sleep(10 * sim.Millisecond)
			continue
		}
		return resp
	}
	return Response{Err: fmt.Errorf("kv: request to %q failed after %d attempts", key, maxSendAttempts)}
}

// Get is a convenience wrapper returning the value for key.
func (ds *DistSender) Get(p *sim.Proc, req *GetRequest) (*GetResponse, error) {
	resp := ds.Send(p, req)
	if resp.Err != nil {
		return nil, resp.Err
	}
	return resp.Get, nil
}

// Put is a convenience wrapper for writes.
func (ds *DistSender) Put(p *sim.Proc, req *PutRequest) (*PutResponse, error) {
	resp := ds.Send(p, req)
	if resp.Err != nil {
		return nil, resp.Err
	}
	return resp.Put, nil
}

// NegotiateBoundedStaleness implements the two-phase bounded staleness
// protocol of §5.3.2 for a set of key spans: ask the nearest replica of
// each touched range for its locally servable timestamp and take the
// minimum. The caller compares the result against its staleness bound.
func (ds *DistSender) NegotiateBoundedStaleness(p *sim.Proc, spans [][2]mvcc.Key) (hlc.Timestamp, error) {
	result := hlc.MaxTimestamp
	for _, span := range spans {
		descs := ds.Catalog.LookupSpan(span[0], span[1])
		if len(descs) == 0 {
			// Point lookup fallback.
			d, err := ds.Catalog.Lookup(span[0])
			if err != nil {
				return hlc.Timestamp{}, err
			}
			descs = []*RangeDescriptor{d}
		}
		for _, desc := range descs {
			target := ds.nearestReplica(desc)
			raw, err := ds.Net.SendRPC(p, ds.NodeID, target,
				BatchRequest{RangeID: desc.RangeID, Req: &NegotiateRequest{StartKey: span[0], EndKey: span[1]}}, ds.RPCTimeout)
			if err != nil {
				return hlc.Timestamp{}, err
			}
			resp := raw.(Response)
			if resp.Err != nil {
				return hlc.Timestamp{}, resp.Err
			}
			if resp.Negot.MaxTimestamp.Less(result) {
				result = resp.Negot.MaxTimestamp
			}
		}
	}
	return result, nil
}

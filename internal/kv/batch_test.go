package kv

import (
	"testing"

	"mrdb/internal/mvcc"
)

func kvRow(k string) mvcc.KeyValue { return mvcc.KeyValue{Key: mvcc.Key(k)} }

// TestScanBoundsTruncation pins the replica-side scan clamp: a request
// spanning past the range's bounds is truncated, and the resume key points
// at the next range. This is the fix for the cross-range scan hole (a
// post-split engine retains copied right-half data, so an unclamped scan
// could return rows the range does not own).
func TestScanBoundsTruncation(t *testing.T) {
	r := &Replica{desc: &RangeDescriptor{
		RangeID: 1, StartKey: mvcc.Key("b"), EndKey: mvcc.Key("m"),
	}}

	// Fully contained: no clamping, no resume.
	start, end, resume, err := r.scanBounds(&ScanRequest{StartKey: mvcc.Key("c"), EndKey: mvcc.Key("h")})
	if err != nil || string(start) != "c" || string(end) != "h" || resume != nil {
		t.Fatalf("contained: %q %q %q %v", start, end, resume, err)
	}

	// Extends past the range: end clamps to the range bound and the
	// resume key continues there.
	start, end, resume, err = r.scanBounds(&ScanRequest{StartKey: mvcc.Key("c"), EndKey: mvcc.Key("z")})
	if err != nil || string(start) != "c" || string(end) != "m" || string(resume) != "m" {
		t.Fatalf("overhang: %q %q %q %v", start, end, resume, err)
	}

	// Unbounded scan clamps the same way.
	_, end, resume, err = r.scanBounds(&ScanRequest{StartKey: mvcc.Key("c")})
	if err != nil || string(end) != "m" || string(resume) != "m" {
		t.Fatalf("unbounded: %q %q %v", end, resume, err)
	}

	// Start before the range start clamps up (resumed scans land here).
	start, _, _, err = r.scanBounds(&ScanRequest{StartKey: mvcc.Key("a"), EndKey: mvcc.Key("h")})
	if err != nil || string(start) != "b" {
		t.Fatalf("start clamp: %q %v", start, err)
	}

	// Start at or past the range end is a mismatch.
	if _, _, _, err = r.scanBounds(&ScanRequest{StartKey: mvcc.Key("m"), EndKey: mvcc.Key("z")}); err == nil {
		t.Fatal("start past range end accepted")
	}

	// The last range (nil EndKey) never truncates.
	last := &Replica{desc: &RangeDescriptor{RangeID: 2, StartKey: mvcc.Key("m")}}
	_, end, resume, err = last.scanBounds(&ScanRequest{StartKey: mvcc.Key("n"), EndKey: mvcc.Key("z")})
	if err != nil || string(end) != "z" || resume != nil {
		t.Fatalf("last range: %q %q %v", end, resume, err)
	}
}

// TestScanResumeMaxRows pins resume-key selection after evaluation: a
// MaxRows cut resumes just past the last returned row and takes precedence
// over the range-bound resume; a completed scan keeps the range-bound
// resume (or none).
func TestScanResumeMaxRows(t *testing.T) {
	rows := []mvcc.KeyValue{kvRow("c"), kvRow("d")}

	// MaxRows hit short of the clamped end: resume just past the last row.
	got := scanResume(&ScanRequest{MaxRows: 2}, rows, mvcc.Key("m"), mvcc.Key("m"))
	if string(got) != "d\x00" {
		t.Fatalf("maxrows resume %q", got)
	}

	// MaxRows hit exactly at the end of the clamped span: fall back to the
	// range-bound resume (continue on the next range).
	got = scanResume(&ScanRequest{MaxRows: 2}, rows, mvcc.Key("d\x00"), mvcc.Key("m"))
	if string(got) != "m" {
		t.Fatalf("boundary resume %q", got)
	}

	// Under MaxRows: range-bound resume only.
	got = scanResume(&ScanRequest{MaxRows: 5}, rows, mvcc.Key("m"), mvcc.Key("m"))
	if string(got) != "m" {
		t.Fatalf("range resume %q", got)
	}

	// Under MaxRows, range covers the span: no resume.
	if got = scanResume(&ScanRequest{MaxRows: 5}, rows, mvcc.Key("m"), nil); got != nil {
		t.Fatalf("spurious resume %q", got)
	}

	// Unlimited scan never resumes on row count.
	if got = scanResume(&ScanRequest{}, rows, mvcc.Key("m"), nil); got != nil {
		t.Fatalf("unlimited resume %q", got)
	}
}

// TestDescContainsAll covers the split-under-batch re-split predicate.
func TestDescContainsAll(t *testing.T) {
	d := &RangeDescriptor{StartKey: mvcc.Key("b"), EndKey: mvcc.Key("m")}
	in := []interface{}{
		&PutRequest{Key: mvcc.Key("c")},
		&GetRequest{Key: mvcc.Key("l")},
	}
	if !descContainsAll(d, in) {
		t.Fatal("contained batch rejected")
	}
	out := append(in, &PutRequest{Key: mvcc.Key("x")})
	if descContainsAll(d, out) {
		t.Fatal("escaped key accepted")
	}
}

package kv

import (
	"sort"

	"mrdb/internal/hlc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// DefaultCloseLag is the default trailing closed-timestamp interval
// (paper §5.1.1: "by default, leaseholders close timestamps that are 3
// seconds old").
const DefaultCloseLag = 3 * sim.Second

// SideTransportInterval is the cadence at which leaseholders of LEAD
// (GLOBAL) ranges publish closed-timestamp promises via heartbeats; the
// lead target must cover it so followers' closed timestamps never fall
// behind present time + max_offset between publications.
const SideTransportInterval = 100 * sim.Millisecond

// leadPropagationMargin absorbs jitter on the publication path.
const leadPropagationMargin = 50 * sim.Millisecond

// closedTracker tracks closed timestamps on one replica. On the leaseholder
// it also issues new closed-timestamp promises; every promise is attached
// to proposals and heartbeats, and once issued the leaseholder must not
// accept writes at or below it.
type closedTracker struct {
	policy ClosedTSPolicy
	// lag applies under ClosedTSLag.
	lag sim.Duration
	// lead applies under ClosedTSLead: L_raft + L_replicate + max_offset
	// (paper §6.2.1).
	lead sim.Duration

	// closed is the highest closed timestamp known on this replica.
	closed hlc.Timestamp
	// issued is the highest target this replica has promised as
	// leaseholder; writes must exceed it.
	issued hlc.Timestamp
}

// target computes the next closed-timestamp promise for the given
// leaseholder clock reading.
func (c *closedTracker) target(now hlc.Timestamp) hlc.Timestamp {
	var t hlc.Timestamp
	if c.policy == ClosedTSLead {
		t = now.Add(c.lead)
	} else {
		t = now.Add(-c.lag)
	}
	if t.Less(c.issued) {
		t = c.issued
	}
	return t
}

// issue records a promise and returns it.
func (c *closedTracker) issue(now hlc.Timestamp) hlc.Timestamp {
	t := c.target(now)
	if c.issued.Less(t) {
		c.issued = t
	}
	return t
}

// advance moves the replica's known closed timestamp forward.
func (c *closedTracker) advance(ts hlc.Timestamp) {
	if c.closed.Less(ts) {
		c.closed = ts
	}
}

// LeadTime computes the closed-timestamp lead for a range with the given
// replica placement: Raft consensus latency to the nearest quorum plus full
// replication latency to the furthest replica plus the maximum clock offset
// (paper §6.2.1).
func LeadTime(topo *simnet.Topology, leaseholder simnet.NodeID, voters, nonVoters []simnet.NodeID, maxOffset sim.Duration) sim.Duration {
	// L_raft: RTT from the leaseholder to the median-nearest voter
	// (quorum of voters, leaseholder included).
	var voterRTTs []sim.Duration
	for _, v := range voters {
		if v == leaseholder {
			continue
		}
		voterRTTs = append(voterRTTs, topo.NodeRTT(leaseholder, v))
	}
	sort.Slice(voterRTTs, func(i, j int) bool { return voterRTTs[i] < voterRTTs[j] })
	var lRaft sim.Duration
	if len(voterRTTs) > 0 {
		// Quorum needs (len(voters)+1)/2 acks beyond the leaseholder's
		// own; the deciding ack comes from the (quorum-1)-th nearest.
		quorum := (len(voterRTTs)+1+1)/2 - 1 // acks needed from peers
		if quorum < 1 {
			quorum = 1
		}
		if quorum > len(voterRTTs) {
			quorum = len(voterRTTs)
		}
		lRaft = voterRTTs[quorum-1]
	}
	// L_replicate: one-way delay to the furthest replica of any kind.
	var lRep sim.Duration
	for _, id := range append(append([]simnet.NodeID{}, voters...), nonVoters...) {
		if d := topo.OneWay(leaseholder, id); d > lRep {
			lRep = d
		}
	}
	// The paper's estimate is L_raft + L_replicate + max_offset (§6.2.1);
	// on top of that the lead must cover the closed-timestamp publication
	// cadence so present time stays closed continuously at followers.
	return lRaft + lRep + maxOffset + SideTransportInterval + leadPropagationMargin
}

package kv

import (
	"testing"
	"testing/quick"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

func ts(w int64) hlc.Timestamp { return hlc.Timestamp{WallTime: w} }

// --- TimestampCache ---

func TestTimestampCacheBasics(t *testing.T) {
	c := NewTimestampCache(ts(10))
	if got, _ := c.MaxRead(mvcc.Key("a"), 0); got != ts(10) {
		t.Fatalf("empty cache MaxRead = %v, want low water", got)
	}
	c.RecordRead(mvcc.Key("a"), ts(20), 1)
	if got, _ := c.MaxRead(mvcc.Key("a"), 0); got != ts(20) {
		t.Fatalf("MaxRead = %v", got)
	}
	// Lower reads don't regress the entry.
	c.RecordRead(mvcc.Key("a"), ts(15), 2)
	if got, _ := c.MaxRead(mvcc.Key("a"), 0); got != ts(20) {
		t.Fatalf("MaxRead regressed to %v", got)
	}
	// Reads at or below the low water mark are not recorded.
	c.RecordRead(mvcc.Key("b"), ts(5), 1)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestTimestampCacheSelfExemption(t *testing.T) {
	c := NewTimestampCache(hlc.Timestamp{})
	c.RecordRead(mvcc.Key("k"), ts(30), 7)
	// The reader itself may write AT its read timestamp…
	if got, own := c.MaxRead(mvcc.Key("k"), 7); !own || got != ts(30) {
		t.Fatalf("owner MaxRead = %v own=%v", got, own)
	}
	// …anyone else must write above it.
	if _, own := c.MaxRead(mvcc.Key("k"), 8); own {
		t.Fatal("non-owner got the exemption")
	}
	// A second reader at the same timestamp destroys the exemption.
	c.RecordRead(mvcc.Key("k"), ts(30), 9)
	if _, own := c.MaxRead(mvcc.Key("k"), 7); own {
		t.Fatal("exemption survived a second reader")
	}
}

func TestTimestampCacheLowWater(t *testing.T) {
	c := NewTimestampCache(hlc.Timestamp{})
	c.RecordRead(mvcc.Key("a"), ts(10), 1)
	c.RecordRead(mvcc.Key("b"), ts(50), 1)
	c.SetLowWater(ts(30))
	if got, _ := c.MaxRead(mvcc.Key("a"), 0); got != ts(30) {
		t.Fatalf("entry below low water not floored: %v", got)
	}
	if got, _ := c.MaxRead(mvcc.Key("b"), 0); got != ts(50) {
		t.Fatalf("entry above low water clobbered: %v", got)
	}
	// Ratchets only forward.
	c.SetLowWater(ts(20))
	if c.LowWater() != ts(30) {
		t.Fatal("low water regressed")
	}
	c.RecordReadSpan(mvcc.Key("a"), mvcc.Key("z"), ts(40))
	if c.LowWater() != ts(40) {
		t.Fatal("span read did not ratchet low water")
	}
}

// Property: MaxRead never decreases as reads are recorded.
func TestQuickTimestampCacheMonotone(t *testing.T) {
	f := func(keys []uint8, walls []uint8) bool {
		c := NewTimestampCache(hlc.Timestamp{})
		last := map[byte]hlc.Timestamp{}
		n := len(keys)
		if len(walls) < n {
			n = len(walls)
		}
		for i := 0; i < n; i++ {
			k := mvcc.Key{keys[i]}
			c.RecordRead(k, ts(int64(walls[i])), mvcc.TxnID(i))
			got, _ := c.MaxRead(k, 0)
			if got.Less(last[keys[i]]) {
				return false
			}
			last[keys[i]] = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- Latch manager ---

func TestLatchManagerExclusion(t *testing.T) {
	s := sim.New(1)
	m := newLatchManager(s)
	var order []int
	s.Spawn("a", func(p *sim.Proc) {
		m.acquire(p, mvcc.Key("k"))
		order = append(order, 1)
		p.Sleep(10 * sim.Millisecond)
		order = append(order, 2)
		m.release(mvcc.Key("k"))
	})
	s.Spawn("b", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		m.acquire(p, mvcc.Key("k"))
		order = append(order, 3)
		m.release(mvcc.Key("k"))
	})
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if m.heldCount() != 0 {
		t.Fatal("latches leaked")
	}
}

func TestLatchWaitFree(t *testing.T) {
	s := sim.New(2)
	m := newLatchManager(s)
	var readAt sim.Time
	s.Spawn("writer", func(p *sim.Proc) {
		m.acquire(p, mvcc.Key("k"))
		p.Sleep(20 * sim.Millisecond)
		m.release(mvcc.Key("k"))
	})
	s.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		m.waitFree(p, mvcc.Key("k"))
		readAt = p.Now()
	})
	s.Run()
	if readAt < sim.Time(20*sim.Millisecond) {
		t.Fatalf("reader proceeded at %v while latch held", readAt)
	}
}

// --- TxnRegistry ---

func regHarness() (*sim.Simulation, *TxnRegistry) {
	s := sim.New(3)
	topo := simnet.NewTopology()
	topo.AddNode(1, simnet.Locality{Region: "r1", Zone: "a"})
	topo.AddNode(2, simnet.Locality{Region: "r2", Zone: "a"})
	return s, NewTxnRegistry(s, topo)
}

func TestRegistryCommitAbortRace(t *testing.T) {
	_, reg := regHarness()
	id := reg.Begin(1, 0)
	if st, _ := reg.Status(id); st != mvcc.Pending {
		t.Fatal("not pending")
	}
	if err := reg.TryCommit(id, ts(5)); err != nil {
		t.Fatal(err)
	}
	// Abort after commit loses.
	if reg.Abort(id) {
		t.Fatal("abort beat a commit")
	}
	if st, cts := reg.Status(id); st != mvcc.Committed || cts != ts(5) {
		t.Fatalf("status %v %v", st, cts)
	}
	// Commit after abort fails.
	id2 := reg.Begin(1, 0)
	reg.Abort(id2)
	if err := reg.TryCommit(id2, ts(6)); err == nil {
		t.Fatal("commit beat an abort")
	}
}

func TestRegistryStagingProtectsFromPush(t *testing.T) {
	s, reg := regHarness()
	holder := reg.Begin(1, 0)
	pusher := reg.Begin(2, 0)
	if err := reg.TryStage(holder, ts(9)); err != nil {
		t.Fatal(err)
	}
	var st mvcc.TxnStatus
	s.Spawn("pusher", func(p *sim.Proc) {
		// Even with a fake deadlock edge, staging holders are immune.
		reg.BeginWait(holder, pusher)
		st, _ = reg.PushTxn(p, 2, pusher, holder)
		reg.EndWait(holder)
	})
	s.Run()
	if st != mvcc.Pending {
		t.Fatalf("push changed staging txn to %v", st)
	}
	if err := reg.FinalizeStaged(holder); err != nil {
		t.Fatal(err)
	}
	if st, _ := reg.Status(holder); st != mvcc.Committed {
		t.Fatal("finalize failed")
	}
}

func TestRegistryStagingAbortRollback(t *testing.T) {
	_, reg := regHarness()
	id := reg.Begin(1, 0)
	if err := reg.TryStage(id, ts(4)); err != nil {
		t.Fatal(err)
	}
	reg.AbortStaged(id)
	if st, _ := reg.Status(id); st != mvcc.Aborted {
		t.Fatalf("status %v", st)
	}
	if err := reg.FinalizeStaged(id); err == nil {
		t.Fatal("finalized an aborted parallel commit")
	}
}

func TestRegistryDeadlockDetection(t *testing.T) {
	s, reg := regHarness()
	a := reg.Begin(1, 0)
	b := reg.Begin(1, 0)
	// a waits on b; b pushes a — the cycle b -> a -> b must abort the
	// youngest (b).
	reg.BeginWait(a, b)
	var st mvcc.TxnStatus
	s.Spawn("pusher", func(p *sim.Proc) {
		reg.BeginWait(b, a)
		st, _ = reg.PushTxn(p, 1, b, a)
	})
	s.Run()
	_ = st
	if bst, _ := reg.Status(b); bst != mvcc.Aborted {
		t.Fatalf("deadlock victim (youngest) not aborted: b=%v", bst)
	}
	if ast, _ := reg.Status(a); ast != mvcc.Pending {
		t.Fatalf("survivor aborted: a=%v", ast)
	}
}

func TestRegistryNoFalseAborts(t *testing.T) {
	s, reg := regHarness()
	holder := reg.Begin(1, 0)
	pusher := reg.Begin(1, 0)
	var st mvcc.TxnStatus
	s.Spawn("pusher", func(p *sim.Proc) {
		// No cycle: the holder is just slow. The push must not abort it.
		reg.BeginWait(pusher, holder)
		st, _ = reg.PushTxn(p, 1, pusher, holder)
		reg.EndWait(pusher)
	})
	s.Run()
	if st != mvcc.Pending {
		t.Fatalf("push returned %v", st)
	}
	if hst, _ := reg.Status(holder); hst != mvcc.Pending {
		t.Fatal("live holder aborted without a deadlock")
	}
}

func TestRegistryPushPaysRTT(t *testing.T) {
	s, reg := regHarness()
	holder := reg.Begin(2, 0) // anchored on node 2
	var took sim.Duration
	s.Spawn("pusher", func(p *sim.Proc) {
		start := p.Now()
		reg.PushTxn(p, 1, 0, holder)
		took = p.Now().Sub(start)
	})
	s.Run()
	want := reg.topo.NodeRTT(1, 2)
	if took != want {
		t.Fatalf("push took %v, want the anchor RTT %v", took, want)
	}
}

func TestRegistryWaitFinishedWakesOnCommit(t *testing.T) {
	s, reg := regHarness()
	id := reg.Begin(1, 0)
	var woke sim.Time
	var st mvcc.TxnStatus
	s.Spawn("waiter", func(p *sim.Proc) {
		st, _ = reg.WaitFinished(p, id, 10*sim.Second)
		woke = p.Now()
	})
	s.Spawn("committer", func(p *sim.Proc) {
		p.Sleep(7 * sim.Millisecond)
		reg.TryCommit(id, ts(3))
	})
	s.Run()
	if st != mvcc.Committed || woke != sim.Time(7*sim.Millisecond) {
		t.Fatalf("woke at %v with %v", woke, st)
	}
}

// --- Range catalog ---

func TestRangeCatalogLookup(t *testing.T) {
	c := NewRangeCatalog()
	mk := func(start, end string) *RangeDescriptor {
		return &RangeDescriptor{
			RangeID: c.NextRangeID(), StartKey: mvcc.Key(start), EndKey: mvcc.Key(end),
		}
	}
	if err := c.Insert(mk("b", "d")); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(mk("d", "f")); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(mk("a", "b")); err != nil {
		t.Fatal(err)
	}
	// Overlap rejected.
	if err := c.Insert(mk("c", "e")); err == nil {
		t.Fatal("overlapping insert accepted")
	}
	d, err := c.Lookup(mvcc.Key("c"))
	if err != nil || string(d.StartKey) != "b" {
		t.Fatalf("Lookup(c) = %v, %v", d, err)
	}
	if _, err := c.Lookup(mvcc.Key("z")); err == nil {
		t.Fatal("lookup past end succeeded")
	}
	span := c.LookupSpan(mvcc.Key("a"), mvcc.Key("e"))
	if len(span) != 3 {
		t.Fatalf("span = %d ranges", len(span))
	}
	c.Remove(d.RangeID)
	if _, err := c.Lookup(mvcc.Key("c")); err == nil {
		t.Fatal("removed range still found")
	}
}

func TestRangeDescriptorHelpers(t *testing.T) {
	d := &RangeDescriptor{
		RangeID: 1, StartKey: mvcc.Key("a"), EndKey: mvcc.Key("m"),
		Voters: []simnet.NodeID{1, 2}, NonVoters: []simnet.NodeID{3},
	}
	if !d.ContainsKey(mvcc.Key("a")) || d.ContainsKey(mvcc.Key("m")) {
		t.Fatal("ContainsKey bounds wrong")
	}
	if !d.HasReplicaOn(3) || d.HasReplicaOn(4) {
		t.Fatal("HasReplicaOn wrong")
	}
	cl := d.Clone()
	cl.Voters[0] = 9
	if d.Voters[0] == 9 {
		t.Fatal("Clone shares voter slice")
	}
}

// --- Closed timestamps ---

func TestClosedTrackerLagAndLead(t *testing.T) {
	lag := closedTracker{policy: ClosedTSLag, lag: 3 * sim.Second}
	now := ts(int64(10 * sim.Second))
	target := lag.issue(now)
	if target != ts(int64(7*sim.Second)) {
		t.Fatalf("lag target %v", target)
	}
	lead := closedTracker{policy: ClosedTSLead, lead: 500 * sim.Millisecond}
	lt := lead.issue(now)
	if lt != now.Add(500*sim.Millisecond) {
		t.Fatalf("lead target %v", lt)
	}
	// Issued targets never regress.
	if lead.issue(ts(int64(9*sim.Second))) != lt {
		t.Fatal("issued target regressed")
	}
	// Follower advance is monotonic.
	tr := closedTracker{}
	tr.advance(ts(10))
	tr.advance(ts(5))
	if tr.closed != ts(10) {
		t.Fatal("closed regressed")
	}
}

func TestLeadTimeComposition(t *testing.T) {
	topo := simnet.NewTable1Topology()
	topo.Jitter = 0
	// Leaseholder and two voters in us-east1 zones; non-voter in
	// australia (the furthest).
	topo.AddNode(1, simnet.Locality{Region: simnet.USEast1, Zone: "a"})
	topo.AddNode(2, simnet.Locality{Region: simnet.USEast1, Zone: "b"})
	topo.AddNode(3, simnet.Locality{Region: simnet.USEast1, Zone: "c"})
	topo.AddNode(4, simnet.Locality{Region: simnet.AustralSE1, Zone: "a"})
	offset := 250 * sim.Millisecond
	lead := LeadTime(topo, 1, []simnet.NodeID{1, 2, 3}, []simnet.NodeID{4}, offset)
	// L_raft = intra-region RTT (2ms), L_replicate = one way to
	// australia (99ms), plus offset and the publication budget.
	want := topo.IntraRegionRTT + topo.OneWay(1, 4) + offset + SideTransportInterval + leadPropagationMargin
	if lead != want {
		t.Fatalf("lead = %v, want %v", lead, want)
	}
}

// Package kv implements mrdb's distributed, transactional key-value layer:
// Ranges replicated with Raft (paper §3.1), leaseholders and leases,
// timestamp caches, a lock wait-queue, closed timestamps with both the
// lagging policy (follower reads, §5.1) and the leading policy that powers
// GLOBAL tables (§6.2.1), follower reads with exact and bounded staleness
// (§5.3), and the request routing layer (DistSender).
package kv

import (
	"bytes"
	"fmt"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/obs"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/zones"
)

// RangeID identifies a Range (one Raft group).
type RangeID uint64

// ClosedTSPolicy selects how a range's leaseholder closes timestamps.
type ClosedTSPolicy int8

const (
	// ClosedTSLag closes timestamps trailing present time (default 3s):
	// cheap, enables stale follower reads.
	ClosedTSLag ClosedTSPolicy = iota
	// ClosedTSLead closes timestamps in the future of present time so
	// that present-time reads can be served by any replica; writes are
	// pushed into the future and must commit-wait. This is the GLOBAL
	// table policy (paper §6.2.1).
	ClosedTSLead
)

func (p ClosedTSPolicy) String() string {
	if p == ClosedTSLead {
		return "LEAD"
	}
	return "LAG"
}

// RangeDescriptor locates a Range in the keyspace and in the cluster.
type RangeDescriptor struct {
	RangeID  RangeID
	StartKey mvcc.Key
	EndKey   mvcc.Key // exclusive; nil = +inf

	Voters    []simnet.NodeID
	NonVoters []simnet.NodeID
	// Leaseholder serves consistent reads and evaluates writes.
	Leaseholder simnet.NodeID
	// Policy is the closed-timestamp policy.
	Policy ClosedTSPolicy
	// Generation increments on every descriptor change; stale cache
	// entries are detected by comparing generations.
	Generation int64
}

// ContainsKey reports whether key falls in [StartKey, EndKey).
func (d *RangeDescriptor) ContainsKey(key mvcc.Key) bool {
	if bytes.Compare(key, d.StartKey) < 0 {
		return false
	}
	return d.EndKey == nil || bytes.Compare(key, d.EndKey) < 0
}

// Replicas returns all replica node IDs, voters first.
func (d *RangeDescriptor) Replicas() []simnet.NodeID {
	return append(append([]simnet.NodeID{}, d.Voters...), d.NonVoters...)
}

// HasReplicaOn reports whether the range has any replica on node id.
func (d *RangeDescriptor) HasReplicaOn(id simnet.NodeID) bool {
	for _, r := range d.Replicas() {
		if r == id {
			return true
		}
	}
	return false
}

// Clone deep-copies the descriptor.
func (d *RangeDescriptor) Clone() *RangeDescriptor {
	out := *d
	out.StartKey = append(mvcc.Key(nil), d.StartKey...)
	out.EndKey = append(mvcc.Key(nil), d.EndKey...)
	out.Voters = append([]simnet.NodeID(nil), d.Voters...)
	out.NonVoters = append([]simnet.NodeID(nil), d.NonVoters...)
	return &out
}

// Txn is the coordinator-side transaction state that rides on requests.
type Txn struct {
	Meta mvcc.TxnMeta
	// ReadTimestamp is the MVCC snapshot the txn reads at.
	ReadTimestamp hlc.Timestamp
	// GlobalUncertaintyLimit is ReadTimestamp + max_clock_offset, fixed
	// at txn start; values in (ReadTimestamp, Limit] are uncertain.
	GlobalUncertaintyLimit hlc.Timestamp
	// Priority breaks push ties; older (smaller) wins by default.
	Priority int64
}

// --- Requests ---

// ReadPolicy tells the DistSender where a read may be served.
type ReadPolicy int8

const (
	// ReadLeaseholder routes to the leaseholder (fresh reads).
	ReadLeaseholder ReadPolicy = iota
	// ReadNearest routes to the closest replica; the replica may bounce
	// the request to the leaseholder if it cannot serve it locally.
	ReadNearest
)

// GetRequest reads a single key.
type GetRequest struct {
	Key       mvcc.Key
	Timestamp hlc.Timestamp
	Txn       *Txn // nil for non-transactional / stale reads
	// Uncertainty, when false, disables uncertainty checking entirely
	// (stale reads, §5.3).
	Uncertainty bool
	// FollowerRead marks the request as allowed to be served by a
	// non-leaseholder replica.
	FollowerRead bool
	// CanBumpReadTS permits the server to ratchet the read timestamp
	// past an uncertain value and retry locally (a server-side
	// uncertainty refresh). The coordinator sets it when the transaction
	// has no other reads or writes that a bump would invalidate.
	CanBumpReadTS bool
	// ForUpdate acquires an exclusive unreplicated lock on the key after
	// reading (SELECT FOR UPDATE): later writers and locking readers
	// queue behind it instead of racing and restarting. The SQL layer
	// sets it on the reads of UPDATE/DELETE statements.
	ForUpdate bool
	// WaitForClosed is the adaptive follower-read policy the paper lists
	// as future work (§5.3.1, §6.2.1): instead of redirecting to the
	// leaseholder when the local closed timestamp is slightly behind,
	// the follower waits up to this long for it to catch up.
	WaitForClosed sim.Duration
}

// GetResponse carries the read result.
type GetResponse struct {
	Value     mvcc.Value
	Timestamp hlc.Timestamp // timestamp of the returned version
	ServedBy  simnet.NodeID
	// BumpedTS, if non-zero, is the ratcheted read timestamp after a
	// server-side uncertainty refresh; the coordinator must adopt it and,
	// if it leads the local clock, commit wait (paper §6.2).
	BumpedTS hlc.Timestamp
}

// ScanRequest reads keys in [StartKey, EndKey).
type ScanRequest struct {
	StartKey, EndKey mvcc.Key
	MaxRows          int
	Timestamp        hlc.Timestamp
	Txn              *Txn
	Uncertainty      bool
	FollowerRead     bool
}

// ScanResponse carries scan results. A replica truncates the scan to its
// own range bounds; ResumeKey, when set, is where the remainder of the
// requested span continues (on the next range, or — after a MaxRows cut —
// later in this one). The DistSender follows resume keys until MaxRows or
// span exhaustion.
type ScanResponse struct {
	Rows      []mvcc.KeyValue
	ServedBy  simnet.NodeID
	ResumeKey mvcc.Key
}

// PutRequest writes a provisional value (intent) for a transaction, or a
// committed value when Txn is nil.
type PutRequest struct {
	Key       mvcc.Key
	Value     mvcc.Value // nil deletes
	Timestamp hlc.Timestamp
	Txn       *Txn
	// Pipelined makes the leaseholder reply after evaluation and
	// proposal, before the write replicates (CockroachDB's write
	// pipelining / async consensus). The coordinator must prove the
	// write with a QueryIntentRequest before committing.
	Pipelined bool

	// Commit1PC asks the leaseholder to commit the transaction together
	// with this write (one-phase commit): the value is written directly
	// as committed — no intent ever becomes visible, so contending
	// operations wait only for the local consensus round, not for the
	// coordinator's WAN round trips. Only valid when this is the
	// transaction's sole write. ReadSpans (with ReadFromTS) lets the
	// leaseholder server-side-refresh the transaction's reads if the
	// commit timestamp got bumped; if any span has newer writes or lies
	// outside this range, the server declines and the coordinator falls
	// back to the two-phase path.
	Commit1PC  bool
	ReadSpans  [][2]mvcc.Key
	ReadFromTS hlc.Timestamp
}

// QueryIntentRequest verifies at commit time that a pipelined write
// replicated: it waits for in-flight applications on the key and reports
// whether the transaction's intent is present.
type QueryIntentRequest struct {
	Key   mvcc.Key
	TxnID mvcc.TxnID
	Epoch int32
}

// QueryIntentResponse reports whether the intent was found.
type QueryIntentResponse struct {
	Found bool
}

// PutResponse reports the timestamp the write was actually evaluated at
// (possibly above the request timestamp after tscache / closed-timestamp /
// write-too-old bumps).
type PutResponse struct {
	WriteTimestamp hlc.Timestamp
	// Committed reports that a Commit1PC request committed the
	// transaction at WriteTimestamp.
	Committed bool
	// Declined1PC reports that the server could not perform the
	// one-phase commit; nothing was written and the coordinator must use
	// the normal path.
	Declined1PC bool
}

// EndTxnRequest commits or aborts a transaction: it writes the transaction
// record on the anchor range through consensus.
type EndTxnRequest struct {
	Txn      *Txn
	Commit   bool
	CommitTS hlc.Timestamp
	// Stage performs a parallel commit: the record is written in STAGING
	// state while the coordinator concurrently proves pipelined writes,
	// then finalizes via the registry.
	Stage bool
}

// EndTxnResponse reports the recorded status.
type EndTxnResponse struct {
	Status mvcc.TxnStatus
}

// ResolveIntentRequest finalizes an intent after its transaction ended.
type ResolveIntentRequest struct {
	Key      mvcc.Key
	TxnID    mvcc.TxnID
	Status   mvcc.TxnStatus
	CommitTS hlc.Timestamp
}

// ResolveIntentResponse is empty; resolution is idempotent.
type ResolveIntentResponse struct{}

// RefreshRequest verifies that no value was written to Key — or to the span
// [Key, EndKey) when EndKey is set — in (FromTS, ToTS], allowing a
// transaction to ratchet its read timestamp without restarting (paper §6.1
// "uncertainty refresh").
type RefreshRequest struct {
	Key          mvcc.Key
	EndKey       mvcc.Key // optional; span refresh for scans
	FromTS, ToTS hlc.Timestamp
	TxnID        mvcc.TxnID
	// FollowerRead routes the refresh to the nearest replica, which can
	// verify it when its closed timestamp covers ToTS (GLOBAL tables).
	FollowerRead bool
}

// RefreshResponse reports whether the refresh succeeded.
type RefreshResponse struct {
	Success bool
}

// NegotiateRequest implements the bounded-staleness negotiation phase
// (§5.3.2): it asks a replica for the highest timestamp at which the key
// span can be served locally without blocking.
type NegotiateRequest struct {
	StartKey, EndKey mvcc.Key
}

// NegotiateResponse returns the local resolved timestamp.
type NegotiateResponse struct {
	MaxTimestamp hlc.Timestamp
}

// --- Errors ---

// NotLeaseholderError redirects the sender to the current leaseholder.
type NotLeaseholderError struct {
	RangeID     RangeID
	Leaseholder simnet.NodeID
}

func (e *NotLeaseholderError) Error() string {
	return fmt.Sprintf("r%d: not leaseholder; try n%d", e.RangeID, e.Leaseholder)
}

// FollowerReadUnavailableError means a follower could not serve a read
// locally (closed timestamp too low or conflicting intent); the DistSender
// retries at the leaseholder.
type FollowerReadUnavailableError struct {
	RangeID  RangeID
	ClosedTS hlc.Timestamp
	ReadTS   hlc.Timestamp
}

func (e *FollowerReadUnavailableError) Error() string {
	return fmt.Sprintf("r%d: follower read at %s unavailable (closed %s)", e.RangeID, e.ReadTS, e.ClosedTS)
}

// RangeKeyMismatchError means the request hit a replica that does not
// contain the key (stale routing cache).
type RangeKeyMismatchError struct {
	RequestedKey mvcc.Key
}

func (e *RangeKeyMismatchError) Error() string {
	return fmt.Sprintf("key %q not in range", e.RequestedKey)
}

// TxnAbortedError means the transaction was aborted (usually pushed by a
// contending transaction) and must be retried by the client.
type TxnAbortedError struct {
	TxnID mvcc.TxnID
}

func (e *TxnAbortedError) Error() string {
	return fmt.Sprintf("txn %d aborted", e.TxnID)
}

// RetryableTxnError means the transaction must restart at a new epoch with
// a higher timestamp (e.g. failed refresh).
type RetryableTxnError struct {
	TxnID  mvcc.TxnID
	Reason string
	// MinTimestamp is the timestamp the restarted txn should start at.
	MinTimestamp hlc.Timestamp
}

func (e *RetryableTxnError) Error() string {
	return fmt.Sprintf("txn %d must retry: %s", e.TxnID, e.Reason)
}

// CommitWaitInfo tells the coordinator how the read timestamp moved and
// whether a commit wait is due because a future-time value was observed.
type CommitWaitInfo struct {
	// Timestamp the transaction's reads were ratcheted to.
	Timestamp hlc.Timestamp
}

// Response is the union returned over RPC: exactly one field set.
type Response struct {
	Get         *GetResponse
	Scan        *ScanResponse
	Put         *PutResponse
	EndTxn      *EndTxnResponse
	Resolve     *ResolveIntentResponse
	Refresh     *RefreshResponse
	Negot       *NegotiateResponse
	QueryIntent *QueryIntentResponse
	Err         error
}

// BatchRequest is the RPC envelope dispatched to a Replica. It carries
// either a single request (Req) or a per-range sub-batch (Reqs) the
// DistSender split out of a larger batch; a replica evaluates the
// sub-batch's requests concurrently and replies with a BatchResponse whose
// responses are in request order.
type BatchRequest struct {
	RangeID RangeID
	Req     interface{}
	Reqs    []interface{}
	// Trace carries the sender's span context to the serving replica, so
	// server-side evaluation spans join the request's trace.
	Trace obs.SpanContext
}

// BatchResponse is the reply to a multi-request BatchRequest: one Response
// per request, in request order.
type BatchResponse struct {
	Resps []Response
}

// RaftEnvelope carries a Raft message for one range between stores.
type RaftEnvelope struct {
	RangeID RangeID
	// Msg is a raft.Message; typed as interface{} to avoid an import
	// cycle in this package's tests.
	Msg interface{}
}

// Command is the state-machine payload replicated through Raft and applied
// on every replica of a range.
type Command struct {
	Kind CommandKind

	Key      mvcc.Key
	Value    mvcc.Value
	Ts       hlc.Timestamp
	Txn      *mvcc.TxnMeta
	Status   mvcc.TxnStatus
	CommitTS hlc.Timestamp

	// ClosedTS is the closed-timestamp promise carried by this entry
	// (paper §5.1.1: "serialized into the Range's replication stream").
	ClosedTS hlc.Timestamp

	// Desc carries a new descriptor for CmdDescUpdate.
	Desc *RangeDescriptor
	// SplitDesc is the right-hand descriptor of a CmdSplit.
	SplitDesc *RangeDescriptor

	// LeaseEpoch, on CmdLeaseTransfer, is the liveness epoch the new lease
	// binds to — fixed at proposal time so that replaying the entry (e.g.
	// during crash recovery) rebinds the lease to the epoch it was granted
	// under, never to whatever epoch the applier currently observes.
	LeaseEpoch int64

	// SubsumeClosedTS, on CmdMerge, is the right-hand range's closed
	// timestamp at subsumption; the merged range's closed timestamp must
	// not regress below it or follower reads over the absorbed span could
	// miss the RHS's latest writes.
	SubsumeClosedTS hlc.Timestamp
}

// CommandKind discriminates Command.
type CommandKind int8

// Command kinds.
const (
	CmdPut CommandKind = iota
	CmdResolveIntent
	CmdTxnRecord // commit/abort record on the anchor range
	CmdDescUpdate
	CmdLeaseTransfer
	// CmdSplit divides a range: the left half shrinks to Desc, the right
	// half becomes the new range SplitDesc with copied data.
	CmdSplit
	// CmdSubsume freezes the right-hand range of a merge: once applied, a
	// replica rejects all evaluation with RangeKeyMismatchError so senders
	// re-route to the (widened) left-hand range.
	CmdSubsume
	// CmdMerge widens the left-hand range to Desc, absorbing the data of
	// the subsumed right-hand range SplitDesc.
	CmdMerge
)

// PlacementFromZoneConfig is re-exported glue so higher layers can go from
// a zone config to a placement without importing zones directly everywhere.
func PlacementFromZoneConfig(a *zones.Allocator, cfg zones.Config) (zones.Placement, error) {
	return a.Allocate(cfg)
}

package kv

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/obs"
	"mrdb/internal/raft"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// pushDelay is how long a conflicting writer waits on a lock before trying
// to push (and possibly abort) the lock holder, breaking deadlocks.
const pushDelay = 50 * sim.Millisecond

// Replica is one copy of a Range on one Store. The leaseholder replica
// evaluates reads and writes; all replicas apply the Raft log to their MVCC
// engines and can serve follower reads below their closed timestamp.
type Replica struct {
	store  *Store
	desc   *RangeDescriptor
	engine *mvcc.Engine
	raft   *raft.Node

	closed  closedTracker
	tscache *TimestampCache
	latches *latchManager

	// intentWaiters wakes requests blocked on a key's lock when an
	// intent on that key resolves locally.
	intentWaiters map[string]*sim.Cond
	// lockTable holds exclusive unreplicated locks (SELECT FOR UPDATE):
	// key -> holder transaction. Entries are stolen lazily once the
	// holder finishes; they are leaseholder-local state and vanish on
	// lease transfers, which is safe (they only order writers).
	lockTable map[string]mvcc.TxnID
	// closedAdvanced wakes adaptive follower reads waiting for the
	// closed timestamp to catch up.
	closedAdvanced *sim.Cond

	// applyErrors counts commands whose application failed; tests assert
	// this stays zero.
	applyErrors int

	// subsumed marks the right-hand range of an in-progress merge: once
	// CmdSubsume applies, the replica rejects all evaluation and proposals
	// with RangeKeyMismatchError so senders re-route through the catalog to
	// the widened left-hand range.
	subsumed bool

	// maxOffset sizes lease-start timestamps on failover acquisition.
	maxOffset sim.Duration
	// leaseEpoch is the liveness epoch the current lease (if held here) is
	// bound to; a bump of this node's epoch by a peer fences the lease.
	leaseEpoch int64
	// leaseAcqActive guards against concurrent lease-acquisition loops.
	leaseAcqActive bool

	// Stats.
	FollowerReads     int64
	RedirectsToLH     int64
	WritesEvaluated   int64
	LeaseAcquisitions int64
}

// Desc returns the replica's view of the range descriptor.
func (r *Replica) Desc() *RangeDescriptor { return r.desc }

// LeaseEpoch returns the liveness epoch the current lease is bound to, as
// published at replica creation or the last lease transfer applied here.
func (r *Replica) LeaseEpoch() int64 { return r.leaseEpoch }

// ClosedTimestamp returns this replica's known closed timestamp.
func (r *Replica) ClosedTimestamp() hlc.Timestamp { return r.closed.closed }

// Raft returns the underlying consensus node (testing and admin hook).
func (r *Replica) Raft() *raft.Node { return r.raft }

// EngineForBulkLoad exposes the MVCC engine for setup-time bulk loading
// (the IMPORT path); it must not be used while the replica serves traffic.
func (r *Replica) EngineForBulkLoad() *mvcc.Engine { return r.engine }

// isLeaseholder reports whether this replica currently holds the lease.
func (r *Replica) isLeaseholder() bool {
	return r.desc.Leaseholder == r.store.NodeID
}

// hasValidLease reports whether the lease held here is still usable: the
// node must believe its own liveness record is current and the lease's
// epoch must match — if a peer bumped our epoch after our record expired,
// the lease is fenced and another replica may already hold a new one
// (CockroachDB's epoch-based lease invalidation).
func (r *Replica) hasValidLease() bool {
	if !r.isLeaseholder() {
		return false
	}
	if r.store.liveness == nil {
		return true
	}
	return r.store.SelfLive() && r.store.CurrentEpoch() == r.leaseEpoch
}

// errNotLeaseholder builds the redirect error from the local descriptor.
func (r *Replica) errNotLeaseholder() error {
	return &NotLeaseholderError{RangeID: r.desc.RangeID, Leaseholder: r.desc.Leaseholder}
}

// checkLease gates leaseholder-only evaluation: a non-leaseholder redirects
// to the descriptor's leaseholder; a fenced leaseholder redirects with an
// empty hint (it no longer knows who holds the lease — the sender must
// re-route from its own catalog and liveness view).
func (r *Replica) checkLease() error {
	if !r.isLeaseholder() {
		return r.errNotLeaseholder()
	}
	if !r.hasValidLease() {
		return &NotLeaseholderError{RangeID: r.desc.RangeID}
	}
	return nil
}

// --- Request evaluation ---

// evaluate dispatches a request, blocking p as needed; it returns the
// response or a protocol error.
func (r *Replica) evaluate(p *sim.Proc, req interface{}) Response {
	if r.subsumed {
		return Response{Err: &RangeKeyMismatchError{RequestedKey: r.desc.StartKey}}
	}
	switch q := req.(type) {
	case *GetRequest:
		return r.evalGet(p, q)
	case *ScanRequest:
		return r.evalScan(p, q)
	case *PutRequest:
		return r.evalPut(p, q)
	case *EndTxnRequest:
		return r.evalEndTxn(p, q)
	case *ResolveIntentRequest:
		return r.evalResolveIntent(p, q)
	case *RefreshRequest:
		return r.evalRefresh(q)
	case *NegotiateRequest:
		return r.evalNegotiate(q)
	case *QueryIntentRequest:
		return r.evalQueryIntent(p, q)
	default:
		return Response{Err: fmt.Errorf("kv: unknown request %T", req)}
	}
}

// evaluateBatch evaluates a per-range sub-batch. The requests run as
// concurrent procs (they contend on latches like independent RPCs would),
// and the responses come back in request order.
func (r *Replica) evaluateBatch(p *sim.Proc, reqs []interface{}) []Response {
	resps := make([]Response, len(reqs))
	if len(reqs) == 1 {
		resps[0] = r.evaluate(p, reqs[0])
		return resps
	}
	parent := obs.ProcSpan(p)
	wg := p.Sim().GetWaitGroup()
	for i, req := range reqs {
		i, req := i, req
		wg.Add(1)
		p.Sim().Spawn("replica/batch-req", func(wp *sim.Proc) {
			obs.SetProcSpan(wp, parent)
			defer wg.Done()
			resps[i] = r.evaluate(wp, req)
		})
	}
	wg.Wait(p)
	wg.Release()
	return resps
}

func (r *Replica) getOpts(txn *Txn, uncertainty bool) mvcc.GetOptions {
	opts := mvcc.GetOptions{}
	if txn != nil {
		opts.Txn = &txn.Meta
		if uncertainty {
			opts.UncertaintyLimit = txn.GlobalUncertaintyLimit
			opts.LocalLimit = hlc.Timestamp{WallTime: r.store.Clock.PhysicalNow()}
		}
	}
	return opts
}

func (r *Replica) evalGet(p *sim.Proc, req *GetRequest) Response {
	if !req.Timestamp.IsEmpty() && !r.desc.ContainsKey(req.Key) {
		return Response{Err: &RangeKeyMismatchError{RequestedKey: req.Key}}
	}
	if r.checkLease() != nil {
		return r.evalFollowerGet(p, req)
	}
	if req.ForUpdate && req.Txn != nil {
		// SELECT FOR UPDATE: take the unreplicated lock before reading
		// so read-modify-write transactions queue instead of racing.
		if err := r.acquireLock(p, req.Key, req.Txn); err != nil {
			return Response{Err: err}
		}
	}
	opts := r.getOpts(req.Txn, req.Uncertainty)
	readTS := req.Timestamp
	var bumped hlc.Timestamp
	for {
		// Wait out in-flight writes on this key so we cannot read around
		// a write that is between evaluation and application.
		lsp := r.store.Obs.StartChild("latch.wait", obs.ProcSpan(p))
		r.latches.waitFree(p, req.Key)
		lsp.Finish()
		val, vts, err := r.engine.Get(req.Key, readTS, opts)
		var wie *mvcc.WriteIntentError
		if errors.As(err, &wie) {
			if werr := r.waitOnIntent(p, req.Key, wie.Txn, req.Txn, false); werr != nil {
				return Response{Err: werr}
			}
			continue
		}
		var ue *mvcc.UncertaintyError
		if errors.As(err, &ue) && req.CanBumpReadTS {
			// Server-side uncertainty refresh: nothing else in the
			// transaction's read/write set can be invalidated, so
			// ratchet locally and retry (paper §6.1).
			readTS = ue.ValueTimestamp
			bumped = readTS
			continue
		}
		if err != nil {
			return Response{Err: err}
		}
		var reader mvcc.TxnID
		if req.Txn != nil {
			reader = req.Txn.Meta.ID
		}
		r.tscache.RecordRead(req.Key, readTS, reader)
		return Response{Get: &GetResponse{Value: val, Timestamp: vts, ServedBy: r.store.NodeID, BumpedTS: bumped}}
	}
}

// evalFollowerGet serves a read from a non-leaseholder replica (paper §5.1).
// A stale read only needs its own timestamp closed; a consistent
// (uncertainty-checked) read needs its entire uncertainty interval closed —
// this is why the LEAD policy's closed-timestamp lead includes
// max_clock_offset (§6.2.1: "the size of uncertainty intervals must also be
// factored in") — so that uncertainty bumps stay below the closed timestamp
// and can be served locally without redirecting.
func (r *Replica) evalFollowerGet(p *sim.Proc, req *GetRequest) Response {
	required := req.Timestamp
	if req.Uncertainty && req.Txn != nil && required.Less(req.Txn.GlobalUncertaintyLimit) {
		required = req.Txn.GlobalUncertaintyLimit
	}
	if r.closed.closed.Less(required) && req.WaitForClosed > 0 {
		// Adaptive policy (paper future work): wait for the closed
		// timestamp to reach us instead of paying a WAN redirect.
		csp := r.store.Obs.StartChild("closedts.wait", obs.ProcSpan(p))
		r.waitForClosed(p, required, req.WaitForClosed)
		csp.Finish()
	}
	if r.closed.closed.Less(required) {
		r.RedirectsToLH++
		return Response{Err: &FollowerReadUnavailableError{
			RangeID: r.desc.RangeID, ClosedTS: r.closed.closed, ReadTS: required}}
	}
	opts := r.getOpts(req.Txn, req.Uncertainty)
	readTS := req.Timestamp
	var bumped hlc.Timestamp
	for {
		val, vts, err := r.engine.Get(req.Key, readTS, opts)
		var wie *mvcc.WriteIntentError
		if errors.As(err, &wie) {
			// Paper §5.1.1: "the read blocks while it is redirected to
			// the leaseholder to engage in conflict resolution."
			r.RedirectsToLH++
			return Response{Err: &FollowerReadUnavailableError{
				RangeID: r.desc.RangeID, ClosedTS: r.closed.closed, ReadTS: readTS}}
		}
		var ue *mvcc.UncertaintyError
		if errors.As(err, &ue) && req.CanBumpReadTS {
			// The bump stays within the uncertainty interval, which is
			// fully closed here, so the follower may serve it locally.
			readTS = ue.ValueTimestamp
			bumped = readTS
			continue
		}
		if err != nil {
			return Response{Err: err}
		}
		r.FollowerReads++
		obs.ProcSpan(p).SetTag("follower_read", "true")
		return Response{Get: &GetResponse{Value: val, Timestamp: vts, ServedBy: r.store.NodeID, BumpedTS: bumped}}
	}
}

// scanBounds clamps a requested scan span to this replica's range bounds.
// resume is the key where the remainder of the request's span continues on
// another range (the range's end key), or nil when the range covers the
// rest of the span. Post-split engines can retain copied right-hand data,
// so evaluating an unclamped span would silently read keys the range does
// not own — and miss newer writes that landed on their true owner.
func (r *Replica) scanBounds(req *ScanRequest) (start, end, resume mvcc.Key, err error) {
	start, end = req.StartKey, req.EndKey
	if bytes.Compare(start, r.desc.StartKey) < 0 {
		start = r.desc.StartKey
	}
	if !r.desc.ContainsKey(start) {
		return nil, nil, nil, &RangeKeyMismatchError{RequestedKey: start}
	}
	if r.desc.EndKey != nil && (end == nil || bytes.Compare(r.desc.EndKey, end) < 0) {
		end = r.desc.EndKey
		resume = append(mvcc.Key(nil), r.desc.EndKey...)
	}
	return start, end, resume, nil
}

// scanResume computes the resume key of a completed scan: after a MaxRows
// cut the scan continues just past the last returned row; otherwise it
// continues on the next range (rangeResume) if the span extends past this
// one.
func scanResume(req *ScanRequest, rows []mvcc.KeyValue, end, rangeResume mvcc.Key) mvcc.Key {
	if req.MaxRows > 0 && len(rows) >= req.MaxRows {
		next := append(append(mvcc.Key(nil), rows[len(rows)-1].Key...), 0)
		if end == nil || bytes.Compare(next, end) < 0 {
			return next
		}
	}
	return rangeResume
}

func (r *Replica) evalScan(p *sim.Proc, req *ScanRequest) Response {
	start, end, rangeResume, berr := r.scanBounds(req)
	if berr != nil {
		return Response{Err: berr}
	}
	if r.checkLease() != nil {
		if r.closed.closed.Less(req.Timestamp) {
			r.RedirectsToLH++
			return Response{Err: &FollowerReadUnavailableError{
				RangeID: r.desc.RangeID, ClosedTS: r.closed.closed, ReadTS: req.Timestamp}}
		}
		rows, err := r.engine.Scan(start, end, req.Timestamp, req.MaxRows, r.getOpts(req.Txn, req.Uncertainty))
		if err != nil {
			r.RedirectsToLH++
			return Response{Err: &FollowerReadUnavailableError{
				RangeID: r.desc.RangeID, ClosedTS: r.closed.closed, ReadTS: req.Timestamp}}
		}
		r.FollowerReads++
		obs.ProcSpan(p).SetTag("follower_read", "true")
		return Response{Scan: &ScanResponse{Rows: rows, ServedBy: r.store.NodeID,
			ResumeKey: scanResume(req, rows, end, rangeResume)}}
	}
	opts := r.getOpts(req.Txn, req.Uncertainty)
	for {
		rows, err := r.engine.Scan(start, end, req.Timestamp, req.MaxRows, opts)
		var wie *mvcc.WriteIntentError
		if errors.As(err, &wie) {
			if werr := r.waitOnIntent(p, wie.Key, wie.Txn, req.Txn, false); werr != nil {
				return Response{Err: werr}
			}
			continue
		}
		if err != nil {
			return Response{Err: err}
		}
		r.tscache.RecordReadSpan(start, end, req.Timestamp)
		return Response{Scan: &ScanResponse{Rows: rows, ServedBy: r.store.NodeID,
			ResumeKey: scanResume(req, rows, end, rangeResume)}}
	}
}

func (r *Replica) evalPut(p *sim.Proc, req *PutRequest) Response {
	if !r.desc.ContainsKey(req.Key) {
		return Response{Err: &RangeKeyMismatchError{RequestedKey: req.Key}}
	}
	if err := r.checkLease(); err != nil {
		return Response{Err: err}
	}
	// Take the unreplicated lock (if transactional) BEFORE the latch:
	// the lock is the coarse, transaction-lifetime mutex; the latch only
	// covers evaluation+replication. Acquiring in the other order
	// deadlocks: a latch holder waiting on the lock blocks the lock
	// holder's own write.
	if req.Txn != nil {
		if err := r.acquireLock(p, req.Key, req.Txn); err != nil {
			return Response{Err: err}
		}
	}
	lsp := r.store.Obs.StartChild("latch.wait", obs.ProcSpan(p))
	r.latches.acquire(p, req.Key)
	lsp.Finish()
	releaseOnReturn := true
	defer func() {
		if releaseOnReturn {
			r.latches.release(req.Key)
		}
	}()
	r.WritesEvaluated++

	ts := req.Timestamp
	var txnMeta *mvcc.TxnMeta
	if req.Txn != nil {
		txnMeta = &req.Txn.Meta
	}
	for {
		if err := r.checkLease(); err != nil {
			return Response{Err: err}
		}
		// Writes may not invalidate served reads — except the
		// transaction's own (self-exemption avoids forcing a refresh on
		// every read-modify-write).
		var writer mvcc.TxnID
		if txnMeta != nil {
			writer = txnMeta.ID
		}
		if tsc, own := r.tscache.MaxRead(req.Key, writer); own {
			if ts.Less(tsc) {
				ts = tsc
			}
		} else if ts.LessEq(tsc) {
			ts = tsc.Next()
			obs.ProcSpan(p).SetTag("tscache_push", "true")
		}
		// …and may not land at or below a closed timestamp. Under the
		// LEAD policy this is what pushes writes into the future
		// (paper §6.2.1: "the transaction's timestamp is advanced
		// immediately past the closed timestamp target").
		target := r.closed.issue(r.store.Clock.Now())
		if ts.LessEq(target) {
			ts = target.Next()
			obs.ProcSpan(p).SetTag("closedts_push", "true")
		}
		newTs, err := r.checkPut(req.Key, ts, txnMeta)
		var wie *mvcc.WriteIntentError
		if errors.As(err, &wie) {
			// Drop the latch while queued on the lock (as CockroachDB's
			// lock table does) so the holder's commit-time QueryIntent
			// and other readers are not blocked behind us.
			r.latches.release(req.Key)
			werr := r.waitOnIntent(p, req.Key, wie.Txn, req.Txn, true)
			r.latches.acquire(p, req.Key)
			if werr != nil {
				return Response{Err: werr}
			}
			continue
		}
		if err != nil {
			return Response{Err: err}
		}
		ts = newTs
		if req.Commit1PC && txnMeta != nil {
			return r.evalPut1PC(p, req, ts, target)
		}
		// Replicate the write.
		cmd := Command{Kind: CmdPut, Key: req.Key, Value: req.Value, Ts: ts, Txn: txnMeta, ClosedTS: target}
		if req.Pipelined {
			// Write pipelining: reply once the proposal is in flight;
			// the latch is held until the write applies so later reads
			// and QueryIntent observe it. The coordinator proves the
			// write before committing.
			f, err := r.raft.Propose(cmd)
			if err != nil {
				var nl *raft.ErrNotLeader
				if errors.As(err, &nl) {
					return Response{Err: r.errNotLeaseholder()}
				}
				return Response{Err: err}
			}
			releaseOnReturn = false
			key := append(mvcc.Key(nil), req.Key...)
			r.store.Sim.Spawn("kv/pipelined-apply", func(ap *sim.Proc) {
				f.Wait(ap)
				r.latches.release(key)
			})
			return Response{Put: &PutResponse{WriteTimestamp: ts}}
		}
		if err := r.propose(p, cmd); err != nil {
			return Response{Err: err}
		}
		return Response{Put: &PutResponse{WriteTimestamp: ts}}
	}
}

// evalPut1PC commits a single-write transaction in one consensus round
// (CockroachDB's one-phase commit): the transaction's reads are refreshed
// server-side to the commit timestamp, the commit is claimed in the
// registry, and the value replicates directly as committed. The latch is
// already held by evalPut.
func (r *Replica) evalPut1PC(p *sim.Proc, req *PutRequest, ts hlc.Timestamp, target hlc.Timestamp) Response {
	// Server-side refresh: every read span must live on this range and be
	// unchanged in (ReadFromTS, ts].
	if req.ReadFromTS.Less(ts) {
		for _, span := range req.ReadSpans {
			if !r.desc.ContainsKey(span[0]) {
				return Response{Put: &PutResponse{Declined1PC: true}}
			}
			end := span[1]
			if end == nil {
				if r.engine.HasNewerVersion(span[0], req.ReadFromTS, ts, req.Txn.Meta.ID) {
					return Response{Put: &PutResponse{Declined1PC: true}}
				}
				continue
			}
			if !r.desc.ContainsKey(end) && string(end) != string(r.desc.EndKey) {
				return Response{Put: &PutResponse{Declined1PC: true}}
			}
			if r.engine.HasNewerVersionInSpan(span[0], end, req.ReadFromTS, ts, req.Txn.Meta.ID) {
				return Response{Put: &PutResponse{Declined1PC: true}}
			}
		}
	}
	if err := r.store.Registry.TryCommit(req.Txn.Meta.ID, ts); err != nil {
		return Response{Err: err}
	}
	cmd := Command{Kind: CmdPut, Key: req.Key, Value: req.Value, Ts: ts, ClosedTS: target}
	if err := r.propose(p, cmd); err != nil {
		// The commit record is durable in the registry; the value's
		// replication failure here is a leadership-change corner the
		// coordinator surfaces as an error.
		return Response{Err: err}
	}
	return Response{Put: &PutResponse{WriteTimestamp: ts, Committed: true}}
}

// evalQueryIntent proves a pipelined write: after waiting out in-flight
// applications on the key, the transaction's intent must be present.
func (r *Replica) evalQueryIntent(p *sim.Proc, req *QueryIntentRequest) Response {
	if err := r.checkLease(); err != nil {
		return Response{Err: err}
	}
	r.latches.waitFree(p, req.Key)
	meta, ok := r.engine.GetIntent(req.Key)
	found := ok && meta.ID == req.TxnID && meta.Epoch == req.Epoch
	return Response{QueryIntent: &QueryIntentResponse{Found: found}}
}

// checkPut validates a write without mutating: it surfaces intent conflicts
// and bumps the timestamp above newer committed versions (write-too-old).
func (r *Replica) checkPut(key mvcc.Key, ts hlc.Timestamp, txn *mvcc.TxnMeta) (hlc.Timestamp, error) {
	if meta, ok := r.engine.GetIntent(key); ok {
		if txn == nil || meta.ID != txn.ID {
			return hlc.Timestamp{}, &mvcc.WriteIntentError{Key: key, Txn: meta}
		}
	}
	// Probe for write-too-old by a non-mutating read of the newest
	// version: read at MaxTimestamp with our own txn visibility.
	_, newest, err := r.engine.Get(key, hlc.MaxTimestamp, mvcc.GetOptions{Txn: txn})
	if err != nil {
		return hlc.Timestamp{}, err
	}
	if !newest.IsEmpty() && ts.LessEq(newest) {
		// Tolerable bump: the transaction's coordinator learns the new
		// timestamp from the response and refreshes at commit.
		ts = newest.Next()
	}
	return ts, nil
}

// propose pushes cmd through Raft and parks p until it applies locally.
func (r *Replica) propose(p *sim.Proc, cmd Command) error {
	if r.subsumed {
		// The range was frozen for a merge while this request was in
		// flight; nothing may land after the subsume entry.
		return &RangeKeyMismatchError{RequestedKey: cmd.Key}
	}
	sp := r.store.Obs.StartChild("raft.replicate", obs.ProcSpan(p))
	sp.SetTagInt("range", int64(r.desc.RangeID))
	f, err := r.raft.Propose(cmd)
	if err != nil {
		var nl *raft.ErrNotLeader
		if errors.As(err, &nl) {
			err = r.errNotLeaseholder()
		}
		sp.SetError(err)
		sp.Finish()
		return err
	}
	res := f.Wait(p)
	if sp != nil {
		if res.Err != nil {
			sp.SetError(res.Err)
		}
		// Attribute the quorum: which voters' acks committed the entry,
		// and how many of those acks crossed a region boundary. A write
		// that claims region-local latency must show wan_acks == 0; a
		// cross-region quorum shows exactly the remote acks it paid for.
		var acks strings.Builder
		wan := 0
		for i, a := range res.Acks {
			if i > 0 {
				acks.WriteByte(',')
			}
			fmt.Fprintf(&acks, "n%d", a)
			if a != r.store.NodeID && r.store.Net.WAN(r.store.NodeID, a) {
				wan++
			}
		}
		sp.SetTag("acks", acks.String())
		sp.SetTagInt("wan_acks", int64(wan))
		sp.Finish()
	}
	return res.Err
}

func (r *Replica) evalEndTxn(p *sim.Proc, req *EndTxnRequest) Response {
	if err := r.checkLease(); err != nil {
		return Response{Err: err}
	}
	status := mvcc.Aborted
	switch {
	case req.Commit && req.Stage:
		// Parallel commit: stage against concurrent pushes; the
		// coordinator finalizes after proving its writes.
		if err := r.store.Registry.TryStage(req.Txn.Meta.ID, req.CommitTS); err != nil {
			return Response{Err: err}
		}
		status = mvcc.Committed
	case req.Commit:
		// Claim the commit atomically against concurrent pushes.
		if err := r.store.Registry.TryCommit(req.Txn.Meta.ID, req.CommitTS); err != nil {
			return Response{Err: err}
		}
		status = mvcc.Committed
	default:
		r.store.Registry.Abort(req.Txn.Meta.ID)
	}
	// Durably record the decision on the anchor range (costs a consensus
	// round, as in the real system).
	cmd := Command{
		Kind: CmdTxnRecord, Key: req.Txn.Meta.Key, Status: status,
		CommitTS: req.CommitTS, ClosedTS: r.closed.issue(r.store.Clock.Now()),
	}
	if err := r.propose(p, cmd); err != nil {
		return Response{Err: err}
	}
	return Response{EndTxn: &EndTxnResponse{Status: status}}
}

func (r *Replica) evalResolveIntent(p *sim.Proc, req *ResolveIntentRequest) Response {
	if err := r.checkLease(); err != nil {
		return Response{Err: err}
	}
	// Only propose if the intent is still there (idempotence without a
	// wasted consensus round).
	if meta, ok := r.engine.GetIntent(req.Key); !ok || meta.ID != req.TxnID {
		return Response{Resolve: &ResolveIntentResponse{}}
	}
	cmd := Command{
		Kind: CmdResolveIntent, Key: req.Key, Txn: &mvcc.TxnMeta{ID: req.TxnID},
		Status: req.Status, CommitTS: req.CommitTS,
		ClosedTS: r.closed.issue(r.store.Clock.Now()),
	}
	if err := r.propose(p, cmd); err != nil {
		return Response{Err: err}
	}
	return Response{Resolve: &ResolveIntentResponse{}}
}

func (r *Replica) evalRefresh(req *RefreshRequest) Response {
	if !r.isLeaseholder() {
		// A follower can verify a refresh authoritatively when its
		// closed timestamp covers ToTS: no new writes can appear at or
		// below a closed timestamp, so the local state is complete.
		// This keeps refreshes of GLOBAL-table reads region-local.
		if r.closed.closed.Less(req.ToTS) {
			return Response{Err: &FollowerReadUnavailableError{
				RangeID: r.desc.RangeID, ClosedTS: r.closed.closed, ReadTS: req.ToTS}}
		}
		var ok bool
		if req.EndKey != nil {
			ok = !r.engine.HasNewerVersionInSpan(req.Key, req.EndKey, req.FromTS, req.ToTS, req.TxnID)
		} else {
			ok = !r.engine.HasNewerVersion(req.Key, req.FromTS, req.ToTS, req.TxnID)
		}
		return Response{Refresh: &RefreshResponse{Success: ok}}
	}
	var ok bool
	if req.EndKey != nil {
		ok = !r.engine.HasNewerVersionInSpan(req.Key, req.EndKey, req.FromTS, req.ToTS, req.TxnID)
		if ok {
			r.tscache.RecordReadSpan(req.Key, req.EndKey, req.ToTS)
		}
	} else {
		ok = !r.engine.HasNewerVersion(req.Key, req.FromTS, req.ToTS, req.TxnID)
		if ok {
			// The refreshed read is a read at the new timestamp.
			r.tscache.RecordRead(req.Key, req.ToTS, req.TxnID)
		}
	}
	return Response{Refresh: &RefreshResponse{Success: ok}}
}

// evalNegotiate serves the bounded-staleness negotiation (paper §5.3.2):
// the highest timestamp this replica can serve locally without blocking is
// the minimum of its closed timestamp and (any conflicting intent's
// timestamp - 1) over the span.
func (r *Replica) evalNegotiate(req *NegotiateRequest) Response {
	maxTS := r.closed.closed
	if r.hasValidLease() {
		// The leaseholder can serve up to its clock.
		maxTS = r.store.Clock.Now()
	}
	if its, ok := r.engine.MinIntentTS(req.StartKey, req.EndKey); ok && its.LessEq(maxTS) {
		maxTS = its.Prev()
	}
	return Response{Negot: &NegotiateResponse{MaxTimestamp: maxTS}}
}

// --- Lock waiting ---

// acquireLock takes (or confirms) the exclusive unreplicated lock on key
// for the requesting transaction, queueing behind live holders. Finished
// holders' locks are stolen lazily.
func (r *Replica) acquireLock(p *sim.Proc, key mvcc.Key, txn *Txn) error {
	reg := r.store.Registry
	k := string(key)
	wait := pushDelay
	for {
		holder, ok := r.lockTable[k]
		if !ok || holder == txn.Meta.ID {
			r.lockTable[k] = txn.Meta.ID
			return nil
		}
		if st, _ := reg.Status(holder); st != mvcc.Pending {
			r.lockTable[k] = txn.Meta.ID
			return nil
		}
		reg.BeginWait(txn.Meta.ID, holder)
		st, _ := reg.WaitFinished(p, holder, wait)
		if st == mvcc.Pending {
			st, _ = reg.PushTxn(p, r.store.NodeID, txn.Meta.ID, holder)
			wait = deadlockPushInterval
		}
		reg.EndWait(txn.Meta.ID)
		if st2, _ := reg.Status(txn.Meta.ID); st2 == mvcc.Aborted {
			return &TxnAbortedError{TxnID: txn.Meta.ID}
		}
	}
}

// livenessThreshold is how long a reader waits on a lock before treating
// the holder's coordinator as potentially dead and attempting an abort push.
const livenessThreshold = 5 * sim.Second

// deadlockPushInterval throttles repeat pushes from blocked writers; the
// steady-state wait relies on local wake-ups, not push polling.
const deadlockPushInterval = 1 * sim.Second

// waitOnIntent blocks p until the transaction owning the intent on key
// finishes, then resolves the intent locally and returns so the caller can
// re-evaluate. Writers push (and may abort) the holder after pushDelay,
// which breaks write-write deadlocks; readers wait for the holder to finish
// (paper §6.2: readers block on the locks of still-running writers), only
// pushing after a long liveness threshold.
func (r *Replica) waitOnIntent(p *sim.Proc, key mvcc.Key, holder mvcc.TxnMeta, waiter *Txn, isWrite bool) error {
	isp := r.store.Obs.StartChild("intent.wait", obs.ProcSpan(p))
	isp.SetTag("holder", fmt.Sprintf("%v", holder.ID))
	defer isp.Finish()
	reg := r.store.Registry
	status, commitTS := reg.Status(holder.ID)
	// The common case wakes on the registry's commit/abort broadcast at no
	// network cost. Pushes — which pay a round trip to the holder's
	// transaction record — run only on the deadlock/liveness cycle:
	// writers first push after pushDelay and then every
	// deadlockPushInterval; plain readers only after livenessThreshold.
	wait := pushDelay
	if !isWrite || waiter == nil {
		wait = livenessThreshold
	}
	var waiterID mvcc.TxnID
	if waiter != nil {
		waiterID = waiter.Meta.ID
	}
	// A Pending holder means this request actually blocks; log the wait as
	// a contention event (with its virtual duration) when it ends.
	if status == mvcc.Pending && r.store.Contention != nil {
		start := p.Now()
		defer func() {
			r.store.Contention.Record(obs.ContentionEvent{
				Start:    start,
				NodeID:   int64(r.store.NodeID),
				RangeID:  int64(r.desc.RangeID),
				Key:      string(key),
				Holder:   fmt.Sprintf("%v", holder.ID),
				Waiter:   fmt.Sprintf("%v", waiterID),
				Duration: p.Now().Sub(start),
				IsWrite:  isWrite,
			})
		}()
	}
	for status == mvcc.Pending {
		reg.BeginWait(waiterID, holder.ID)
		status, commitTS = reg.WaitFinished(p, holder.ID, wait)
		if status == mvcc.Pending {
			status, commitTS = reg.PushTxn(p, r.store.NodeID, waiterID, holder.ID)
			wait = deadlockPushInterval
		}
		reg.EndWait(waiterID)
		// If our own transaction got aborted while waiting, surface it.
		if waiter != nil {
			if st, _ := reg.Status(waiter.Meta.ID); st == mvcc.Aborted {
				return &TxnAbortedError{TxnID: waiter.Meta.ID}
			}
		}
	}
	// Holder finished: resolve its intent here so we can proceed.
	if meta, ok := r.engine.GetIntent(key); ok && meta.ID == holder.ID {
		cmd := Command{
			Kind: CmdResolveIntent, Key: key, Txn: &mvcc.TxnMeta{ID: holder.ID},
			Status: status, CommitTS: commitTS,
			ClosedTS: r.closed.issue(r.store.Clock.Now()),
		}
		if err := r.propose(p, cmd); err != nil {
			return err
		}
	} else {
		// Someone else resolved it; yield so their apply settles.
		p.Yield()
	}
	return nil
}

// --- Raft integration ---

// apply executes a committed command on this replica's engine.
func (r *Replica) apply(e raft.Entry) {
	cmd, ok := e.Data.(Command)
	if !ok {
		return
	}
	r.advanceClosed(cmd.ClosedTS)
	switch cmd.Kind {
	case CmdPut:
		// A write proposed before a split but applied after it belongs
		// to the right-hand child; forward it (same replica set, same
		// total order via this log).
		eng := r.engineFor(cmd.Key)
		if _, err := eng.Put(cmd.Key, cmd.Value, cmd.Ts, cmd.Txn); err != nil {
			r.applyErrors++
		}
	case CmdResolveIntent:
		if err := r.engineFor(cmd.Key).ResolveIntent(cmd.Key, cmd.Txn.ID, cmd.Status, cmd.CommitTS); err != nil {
			r.applyErrors++
		}
		r.wakeIntentWaiters(cmd.Key)
	case CmdTxnRecord:
		// The decision itself lives in the registry; the entry models
		// the durability round.
	case CmdDescUpdate:
		r.setDesc(cmd.Desc.Clone())
	case CmdLeaseTransfer:
		r.applyLeaseTransfer(cmd)
	case CmdSplit:
		r.applySplit(cmd)
	case CmdSubsume:
		r.subsumed = true
	case CmdMerge:
		r.applyMerge(cmd, e)
	}
}

// applySplit executes a range split on this replica: the right half's data
// is copied into a freshly created local replica of the new range, and the
// local descriptor shrinks. Because the split rides the old range's Raft
// log, every replica performs it at the same log position.
func (r *Replica) applySplit(cmd Command) {
	newDesc := cmd.SplitDesc
	if _, ok := r.store.Replica(newDesc.RangeID); !ok {
		nr := r.store.CreateReplica(newDesc, r.store.Clock.MaxOffset())
		r.engine.CopyTo(nr.engine, newDesc.StartKey, newDesc.EndKey)
		// The new leaseholder assumes everything below the split
		// timestamp was read.
		nr.tscache.SetLowWater(cmd.Ts)
		nr.closed.advance(r.closed.closed)
		if cmd.ClosedTS.Less(nr.closed.issued) {
			nr.closed.issued = cmd.ClosedTS
		}
		if newDesc.Leaseholder == r.store.NodeID {
			nr.raft.Campaign()
		}
		if r.store.Disk != nil {
			// Re-checkpoint the right half now that the copied data is in:
			// its own log is empty, so without this a crash before the next
			// checkpoint tick would lose the copy if the left half's split
			// entry has already been truncated away.
			r.store.writeCheckpointAt(nr, 0, 0)
		}
	}
	r.setDesc(cmd.Desc.Clone())
}

// applyMerge executes a range merge on this replica: the local subsumed
// right-hand replica's data is copied into this engine and the descriptor
// widens. Because the merge rides the left range's Raft log, every replica
// performs it at the same log position; the prior Subsume plus quiesce
// guarantee the right-hand data is complete and immutable by now.
func (r *Replica) applyMerge(cmd Command, e raft.Entry) {
	rhs := cmd.SplitDesc
	if other, ok := r.store.Replica(rhs.RangeID); ok {
		other.engine.CopyTo(r.engine, rhs.StartKey, rhs.EndKey)
	}
	// The merged leaseholder assumes everything in the absorbed span was
	// read up to the merge timestamp, and its closed timestamp must not
	// regress below the right-hand side's promises.
	r.tscache.SetLowWater(cmd.Ts)
	r.advanceClosed(cmd.SubsumeClosedTS)
	if r.closed.issued.Less(cmd.SubsumeClosedTS) {
		r.closed.issued = cmd.SubsumeClosedTS
	}
	r.setDesc(cmd.Desc.Clone())
	if r.store.Disk != nil {
		// Persist the widened range with the absorbed data before the
		// right-hand replica's WAL and checkpoint are deleted below; a
		// crash in between leaves at worst an inert extra range on disk.
		r.store.writeCheckpointAt(r, e.Index, e.Term)
	}
	if _, ok := r.store.Replica(rhs.RangeID); ok {
		r.store.RemoveReplica(rhs.RangeID)
	}
}

func (r *Replica) setDesc(desc *RangeDescriptor) {
	if desc.Generation >= r.desc.Generation {
		r.desc = desc
	}
}

func (r *Replica) applyLeaseTransfer(cmd Command) {
	if cmd.Desc != nil {
		r.setDesc(cmd.Desc.Clone())
	}
	if r.desc.Leaseholder == r.store.NodeID {
		// Fresh leaseholder: assume everything was read up to the
		// transfer timestamp (tscache low-water ratchet), and carry the
		// closed-timestamp promise floor forward. The lease binds to the
		// epoch recorded in the command at proposal time.
		r.tscache.SetLowWater(cmd.Ts)
		if r.closed.issued.Less(cmd.ClosedTS) {
			r.closed.issued = cmd.ClosedTS
		}
		r.leaseEpoch = cmd.LeaseEpoch
		if r.store.Catalog != nil {
			// Publish the new routing so gateways converge without an
			// admin in the loop.
			r.store.Catalog.Update(r.desc.Clone())
		}
	}
}

// --- Lease acquisition on leadership change ---

// onLeaderChange runs whenever this replica's Raft group elects (or learns
// of) a new leader. If we just became leader but do not hold the lease, we
// reconcile the two: CockroachDB colocates the leaseholder with the Raft
// leader, so either leadership goes back to a live leaseholder, or — if the
// leaseholder is dead by liveness — we fence it with an epoch bump and take
// the lease ourselves. This is what makes FailRegion/CrashNode heal with no
// admin intervention.
func (r *Replica) onLeaderChange(leader simnet.NodeID, _ uint64) {
	if leader != r.store.NodeID || r.store.liveness == nil {
		return
	}
	if r.hasValidLease() || r.leaseAcqActive {
		return
	}
	r.leaseAcqActive = true
	r.store.Sim.Spawn(fmt.Sprintf("n%d/r%d/lease-acq", r.store.NodeID, r.desc.RangeID), func(p *sim.Proc) {
		defer func() { r.leaseAcqActive = false }()
		r.maybeAcquireLease(p)
	})
}

// maybeAcquireLease runs on a fresh Raft leader without a valid lease.
func (r *Replica) maybeAcquireLease(p *sim.Proc) {
	// Settle first: a cooperative lease transfer to this node may already
	// be committed but not yet applied here (leadership changes hands
	// before the log catches up). Acting immediately would bounce
	// leadership back to the old leaseholder and undo the transfer.
	p.Sleep(500 * sim.Millisecond)
	nl := r.store.liveness
	for r.raft.IsLeader() && !r.hasValidLease() {
		prev := r.desc.Leaseholder
		if prev == r.store.NodeID {
			// Our own lease was fenced (epoch bumped while we were cut
			// off) but nobody claimed a new one; once our record is
			// confirmed again, re-propose it bound to the new epoch.
			if !r.store.SelfLive() {
				p.Sleep(LivenessHeartbeatInterval / 2)
				continue
			}
		} else if nl.Live(prev, p.Now()) {
			// The incumbent is healthy (e.g. we won an election it merely
			// lost by timing): hand leadership back instead of stealing
			// the lease, preserving leader/leaseholder colocation.
			r.raft.TransferLeadership(prev)
			p.Sleep(LivenessHeartbeatInterval)
			continue
		} else if !nl.IncrementEpoch(prev, p.Now()) {
			p.Sleep(LivenessHeartbeatInterval / 2)
			continue
		}
		// The old lease is fenced; claim it for ourselves through the log
		// so every replica learns the same lease at the same position.
		nd := r.desc.Clone()
		nd.Leaseholder = r.store.NodeID
		nd.Generation++
		cmd := Command{
			Kind:       CmdLeaseTransfer,
			Desc:       nd,
			Ts:         r.store.Clock.Now().Add(r.maxOffset),
			ClosedTS:   r.closed.issued,
			LeaseEpoch: r.store.CurrentEpoch(),
		}
		f, err := r.raft.Propose(cmd)
		if err != nil {
			p.Sleep(LivenessHeartbeatInterval / 2)
			continue
		}
		if res := f.Wait(p); res.Err != nil {
			p.Sleep(LivenessHeartbeatInterval / 2)
			continue
		}
		r.LeaseAcquisitions++
	}
}

func (r *Replica) wakeIntentWaiters(key mvcc.Key) {
	if c, ok := r.intentWaiters[string(key)]; ok {
		delete(r.intentWaiters, string(key))
		c.Broadcast()
	}
}

// waitForClosed parks p until the replica's closed timestamp reaches ts or
// patience elapses.
func (r *Replica) waitForClosed(p *sim.Proc, ts hlc.Timestamp, patience sim.Duration) {
	deadline := p.Now().Add(patience)
	expired := false
	r.store.Sim.Schedule(deadline, func() {
		if r.closed.closed.Less(ts) {
			expired = true
			r.closedAdvanced.Broadcast()
		}
	})
	for r.closed.closed.Less(ts) && !expired {
		r.closedAdvanced.Wait(p)
	}
}

// advanceClosed moves the replica's closed timestamp forward and wakes
// adaptive waiters.
func (r *Replica) advanceClosed(ts hlc.Timestamp) {
	before := r.closed.closed
	r.closed.advance(ts)
	if before.Less(r.closed.closed) {
		r.closedAdvanced.Broadcast()
	}
}

// engineFor resolves the engine a key belongs to after splits: normally
// this replica's own, otherwise the local replica that now owns the key.
func (r *Replica) engineFor(key mvcc.Key) *mvcc.Engine {
	if r.desc.ContainsKey(key) {
		return r.engine
	}
	for _, other := range r.store.replicas {
		if other != r && other.desc.ContainsKey(key) {
			return other.engine
		}
	}
	return r.engine
}

// heartbeatPayload generates the closed-timestamp side-transport payload on
// the leader (paper §5.1.1).
func (r *Replica) heartbeatPayload() interface{} {
	if !r.hasValidLease() {
		return nil
	}
	return r.closed.issue(r.store.Clock.Now())
}

// onHeartbeat advances the follower's closed timestamp.
func (r *Replica) onHeartbeat(_ simnet.NodeID, payload interface{}) {
	if ts, ok := payload.(hlc.Timestamp); ok {
		r.advanceClosed(ts)
	}
}

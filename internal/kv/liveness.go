package kv

import (
	"sort"

	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// Node-liveness constants. Every store heartbeats its liveness record at
// LivenessHeartbeatInterval; a record not renewed within LivenessTTL is
// expired and its node treated as dead. These mirror CockroachDB's
// liveness.heartbeatInterval / livenessDuration ratio.
const (
	LivenessHeartbeatInterval = 1 * sim.Second
	LivenessTTL               = 3 * sim.Second
)

// livenessRecord is one node's entry: the record is "live" until Expiration
// and carries an Epoch that fences leases. A node's epoch can only be
// incremented by another node after the record expires; any lease bound to
// the old epoch becomes invalid at that instant (CockroachDB §"epoch-based
// leases": the epoch bump is the fencing point, not a timeout on the lease
// itself).
type livenessRecord struct {
	Epoch      int64
	Expiration sim.Time
}

// NodeLiveness tracks per-node liveness records. Like the range catalog and
// transaction registry, one instance is shared by all stores, standing in
// for CockroachDB's gossiped system range: reads are free, but a record only
// becomes live through heartbeats that actually traverse the simulated
// network, so crashes and partitions expire records exactly as they would
// with a real gossip transport.
type NodeLiveness struct {
	sim  *sim.Simulation
	recs map[simnet.NodeID]*livenessRecord
	ids  []simnet.NodeID // sorted, for deterministic iteration

	// EpochBumps counts epoch increments (i.e. nodes declared dead).
	EpochBumps int64
}

// NewNodeLiveness returns an empty liveness registry.
func NewNodeLiveness(s *sim.Simulation) *NodeLiveness {
	return &NodeLiveness{sim: s, recs: map[simnet.NodeID]*livenessRecord{}}
}

// Register creates the record for a node at epoch 1 with a fresh expiration
// (a grace period until its first heartbeat round completes).
func (nl *NodeLiveness) Register(id simnet.NodeID) {
	if _, ok := nl.recs[id]; ok {
		return
	}
	nl.recs[id] = &livenessRecord{Epoch: 1, Expiration: nl.sim.Now().Add(LivenessTTL)}
	nl.ids = append(nl.ids, id)
	sort.Slice(nl.ids, func(i, j int) bool { return nl.ids[i] < nl.ids[j] })
}

// Nodes returns all registered nodes in sorted order.
func (nl *NodeLiveness) Nodes() []simnet.NodeID { return nl.ids }

// Heartbeat extends a node's expiration (ratcheting forward only).
func (nl *NodeLiveness) Heartbeat(id simnet.NodeID, expiration sim.Time) {
	rec, ok := nl.recs[id]
	if !ok {
		return
	}
	if expiration > rec.Expiration {
		rec.Expiration = expiration
	}
}

// Live reports whether the node's record is unexpired at now. Unregistered
// nodes are presumed live: liveness only ever demotes known nodes.
func (nl *NodeLiveness) Live(id simnet.NodeID, now sim.Time) bool {
	rec, ok := nl.recs[id]
	if !ok {
		return true
	}
	return now <= rec.Expiration
}

// Epoch returns the node's current epoch (0 if unregistered).
func (nl *NodeLiveness) Epoch(id simnet.NodeID) int64 {
	if rec, ok := nl.recs[id]; ok {
		return rec.Epoch
	}
	return 0
}

// IncrementEpoch declares a node dead by bumping its epoch, fencing every
// lease bound to the old epoch. It fails (returns false) while the record is
// still live — only expired records may be incremented. The record stays
// expired; only the node's own heartbeats revive it.
func (nl *NodeLiveness) IncrementEpoch(id simnet.NodeID, now sim.Time) bool {
	rec, ok := nl.recs[id]
	if !ok {
		return false
	}
	if now <= rec.Expiration {
		return false
	}
	rec.Epoch++
	nl.EpochBumps++
	return true
}

// SelfRestart re-registers a node booting from disk after a crash. The
// epoch advances unconditionally past both the registry's view and the
// node's own persisted epoch, so every lease bound to any pre-crash epoch is
// fenced forever — even if no peer noticed the outage and IncrementEpoch
// never ran. The record gets a registration-style grace period; leases
// remain unacquirable until a peer acks a heartbeat under the new epoch.
// It returns the new epoch for the caller to persist.
func (nl *NodeLiveness) SelfRestart(id simnet.NodeID, persistedEpoch int64) int64 {
	rec, ok := nl.recs[id]
	if !ok {
		nl.Register(id)
		rec = nl.recs[id]
	}
	if persistedEpoch > rec.Epoch {
		rec.Epoch = persistedEpoch
	}
	rec.Epoch++
	nl.EpochBumps++
	if exp := nl.sim.Now().Add(LivenessTTL); exp > rec.Expiration {
		rec.Expiration = exp
	}
	return rec.Epoch
}

// livenessPing is a store's periodic heartbeat to a peer: "my record is good
// through Expiration". The receiver applies it to the shared record set.
type livenessPing struct {
	Expiration sim.Time
}

// livenessAck answers a ping with the acker's view of the *sender's* epoch,
// so the sender learns when it has been declared dead and fenced.
type livenessAck struct {
	Epoch int64
}

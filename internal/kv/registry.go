package kv

import (
	"fmt"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// TxnRegistry models the transaction-record subsystem. In CockroachDB each
// transaction writes a record on the range holding its anchor key; here the
// records live in one shared structure, but every cross-node status check
// (push) still pays the network round trip to the record's anchor node, so
// the latency behaviour — in particular readers waiting on writers during
// contention — is preserved.
//
// The registry is the cluster-wide arbiter of commit/abort races: a push
// that aborts a transaction and that transaction's own commit are serialized
// here, so exactly one wins.
type TxnRegistry struct {
	sim  *sim.Simulation
	topo *simnet.Topology

	nextID  mvcc.TxnID
	records map[mvcc.TxnID]*txnRecord
	// waitsFor tracks which transaction each blocked transaction is
	// waiting on, for deadlock detection.
	waitsFor map[mvcc.TxnID]mvcc.TxnID
}

type txnRecord struct {
	id         mvcc.TxnID
	status     mvcc.TxnStatus
	commitTS   hlc.Timestamp
	anchorNode simnet.NodeID
	priority   int64
	// staging marks a parallel commit in progress: the commit record is
	// written but the pipelined writes are still being proved. Pushers
	// must not abort a staging transaction (it may already be implicitly
	// committed); its coordinator finalizes it momentarily.
	staging bool
	// finished resolves when the txn commits or aborts; intent waiters
	// subscribe to it.
	finished *sim.Cond
}

// NewTxnRegistry returns an empty registry.
func NewTxnRegistry(s *sim.Simulation, topo *simnet.Topology) *TxnRegistry {
	return &TxnRegistry{
		sim: s, topo: topo,
		records:  map[mvcc.TxnID]*txnRecord{},
		waitsFor: map[mvcc.TxnID]mvcc.TxnID{},
	}
}

// Begin allocates a transaction ID and creates its record in PENDING state.
// anchorNode is the gateway coordinating the transaction; pushes from other
// nodes pay the RTT to it.
func (r *TxnRegistry) Begin(anchorNode simnet.NodeID, priority int64) mvcc.TxnID {
	r.nextID++
	id := r.nextID
	r.records[id] = &txnRecord{
		id:         id,
		status:     mvcc.Pending,
		anchorNode: anchorNode,
		priority:   priority,
		finished:   sim.NewCond(r.sim),
	}
	return id
}

// Status returns the current status and commit timestamp without paying any
// network cost; callers that model a remote lookup should use PushTxn.
func (r *TxnRegistry) Status(id mvcc.TxnID) (mvcc.TxnStatus, hlc.Timestamp) {
	rec, ok := r.records[id]
	if !ok {
		// Unknown transactions are treated as aborted (their record was
		// GCed after resolution).
		return mvcc.Aborted, hlc.Timestamp{}
	}
	return rec.status, rec.commitTS
}

// TryCommit transitions id from PENDING to COMMITTED at commitTS. It fails
// if the transaction was already aborted by a pusher.
func (r *TxnRegistry) TryCommit(id mvcc.TxnID, commitTS hlc.Timestamp) error {
	rec, ok := r.records[id]
	if !ok {
		return &TxnAbortedError{TxnID: id}
	}
	switch rec.status {
	case mvcc.Aborted:
		return &TxnAbortedError{TxnID: id}
	case mvcc.Committed:
		if rec.commitTS == commitTS {
			// Idempotent retry: the commit claim succeeded but the claiming
			// request's replication failed retryably (lease or leadership
			// moved, range subsumed for a merge), so the coordinator re-sent
			// it. Only this transaction's coordinator commits it, so an
			// equal-timestamp re-claim is the same commit.
			return nil
		}
		return fmt.Errorf("kv: txn %d committed twice", id)
	}
	rec.status = mvcc.Committed
	rec.staging = false
	rec.commitTS = commitTS
	rec.finished.Broadcast()
	return nil
}

// TryStage transitions id from PENDING to a STAGING parallel commit at
// commitTS (paper-adjacent: CockroachDB's parallel commits). It fails if a
// pusher aborted the transaction first. While staging, pushes cannot abort
// the transaction.
func (r *TxnRegistry) TryStage(id mvcc.TxnID, commitTS hlc.Timestamp) error {
	rec, ok := r.records[id]
	if !ok {
		return &TxnAbortedError{TxnID: id}
	}
	switch rec.status {
	case mvcc.Aborted:
		return &TxnAbortedError{TxnID: id}
	case mvcc.Committed:
		if rec.commitTS == commitTS {
			// Idempotent retry of a staged commit already finalized.
			return nil
		}
		return fmt.Errorf("kv: txn %d committed twice", id)
	}
	rec.staging = true
	rec.commitTS = commitTS
	return nil
}

// FinalizeStaged completes a parallel commit once every in-flight write is
// proved.
func (r *TxnRegistry) FinalizeStaged(id mvcc.TxnID) error {
	rec, ok := r.records[id]
	if !ok || !rec.staging || rec.status != mvcc.Pending {
		return fmt.Errorf("kv: txn %d not staging", id)
	}
	rec.staging = false
	rec.status = mvcc.Committed
	rec.finished.Broadcast()
	return nil
}

// AbortStaged rolls a failed parallel commit back to aborted.
func (r *TxnRegistry) AbortStaged(id mvcc.TxnID) {
	if rec, ok := r.records[id]; ok && rec.staging && rec.status == mvcc.Pending {
		rec.staging = false
		rec.status = mvcc.Aborted
		rec.finished.Broadcast()
	}
}

// Abort transitions id to ABORTED (idempotent; loses to an earlier commit).
func (r *TxnRegistry) Abort(id mvcc.TxnID) bool {
	rec, ok := r.records[id]
	if !ok || rec.status == mvcc.Committed {
		return false
	}
	if rec.status == mvcc.Pending {
		rec.status = mvcc.Aborted
		rec.finished.Broadcast()
	}
	return true
}

// BeginWait records that waiter is blocked on holder (a waits-for edge for
// deadlock detection). Zero waiter IDs (non-transactional readers) are
// ignored.
func (r *TxnRegistry) BeginWait(waiter, holder mvcc.TxnID) {
	if waiter != 0 {
		r.waitsFor[waiter] = holder
	}
}

// EndWait clears waiter's waits-for edge.
func (r *TxnRegistry) EndWait(waiter mvcc.TxnID) {
	delete(r.waitsFor, waiter)
}

// PushTxn checks pushee's status from fromNode, paying the network round
// trip to the record's anchor. A push against a live transaction does NOT
// abort it unless a deadlock cycle through the pusher exists, in which case
// the youngest pushable transaction in the cycle is aborted (CockroachDB's
// distributed deadlock detection, condensed into the shared registry).
func (r *TxnRegistry) PushTxn(p *sim.Proc, fromNode simnet.NodeID, pusherID, pusheeID mvcc.TxnID) (mvcc.TxnStatus, hlc.Timestamp) {
	rec, ok := r.records[pusheeID]
	if !ok {
		return mvcc.Aborted, hlc.Timestamp{}
	}
	// Pay the RTT to the anchor node (txn-record lookup).
	if rtt := r.topo.NodeRTT(fromNode, rec.anchorNode); rtt > 0 {
		p.Sleep(rtt)
	}
	if rec.status != mvcc.Pending {
		return rec.status, rec.commitTS
	}
	if cycle := r.findCycle(pusherID, pusheeID); len(cycle) > 0 {
		if victim := r.chooseVictim(cycle); victim != 0 {
			v := r.records[victim]
			v.status = mvcc.Aborted
			v.finished.Broadcast()
		}
	}
	return rec.status, rec.commitTS
}

// findCycle follows waits-for edges from pushee; if the chain reaches
// pusher, the cycle pusher -> pushee -> ... -> pusher exists and its
// members are returned.
func (r *TxnRegistry) findCycle(pusherID, pusheeID mvcc.TxnID) []mvcc.TxnID {
	if pusherID == 0 {
		return nil
	}
	chain := []mvcc.TxnID{pusherID, pusheeID}
	seen := map[mvcc.TxnID]bool{pusherID: true, pusheeID: true}
	cur := pusheeID
	for {
		next, ok := r.waitsFor[cur]
		if !ok {
			return nil
		}
		if next == pusherID {
			return chain
		}
		if seen[next] {
			return nil // a cycle not involving the pusher; its own pushes handle it
		}
		seen[next] = true
		chain = append(chain, next)
		cur = next
	}
}

// chooseVictim picks the youngest (highest-ID, lowest-priority) pending,
// non-staging member of the cycle.
func (r *TxnRegistry) chooseVictim(cycle []mvcc.TxnID) mvcc.TxnID {
	var victim mvcc.TxnID
	var vrec *txnRecord
	for _, id := range cycle {
		rec, ok := r.records[id]
		if !ok || rec.status != mvcc.Pending || rec.staging {
			continue
		}
		if vrec == nil || rec.priority < vrec.priority ||
			(rec.priority == vrec.priority && id > victim) {
			victim, vrec = id, rec
		}
	}
	return victim
}

// WaitFinished parks p until the transaction commits or aborts, or until
// timeout elapses; it returns the status at wake-up.
func (r *TxnRegistry) WaitFinished(p *sim.Proc, id mvcc.TxnID, timeout sim.Duration) (mvcc.TxnStatus, hlc.Timestamp) {
	rec, ok := r.records[id]
	if !ok {
		return mvcc.Aborted, hlc.Timestamp{}
	}
	if rec.status != mvcc.Pending {
		return rec.status, rec.commitTS
	}
	expired := false
	if timeout > 0 {
		r.sim.After(timeout, func() {
			if rec.status == mvcc.Pending {
				expired = true
				rec.finished.Broadcast()
			}
		})
	}
	for rec.status == mvcc.Pending && !expired {
		rec.finished.Wait(p)
	}
	return rec.status, rec.commitTS
}

// GC drops the record of a finished transaction.
func (r *TxnRegistry) GC(id mvcc.TxnID) {
	if rec, ok := r.records[id]; ok && rec.status != mvcc.Pending {
		delete(r.records, id)
	}
}

// Len returns the number of live records (testing hook).
func (r *TxnRegistry) Len() int { return len(r.records) }

package kv

import (
	"bytes"
	"fmt"

	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/zones"
)

// LoadConfig tunes the load-based split/merge/rebalance queue. Zero fields
// take defaults.
type LoadConfig struct {
	// Interval is the queue cadence (default 10s).
	Interval sim.Duration
	// HalfLife is the QPS decay half-life (default 30s).
	HalfLife sim.Duration
	// SplitQPS is the rate above which a range splits at a load-weighted
	// key (default 500).
	SplitQPS float64
	// MergeQPS is the rate below which a range counts as cold (default 50).
	MergeQPS float64
	// MergeTicks is how many consecutive cold ticks BOTH neighbors need
	// before merging — hysteresis against split/merge flapping (default 3).
	MergeTicks int
	// LeaseShare is the single-region traffic fraction that attracts the
	// lease (default 0.66).
	LeaseShare float64
	// LeaseTicks is how many consecutive ticks the same region must
	// dominate before the lease (or a replica) moves (default 2).
	LeaseTicks int
}

func (lc LoadConfig) withDefaults() LoadConfig {
	if lc.Interval <= 0 {
		lc.Interval = 10 * sim.Second
	}
	if lc.HalfLife <= 0 {
		lc.HalfLife = 30 * sim.Second
	}
	if lc.SplitQPS <= 0 {
		lc.SplitQPS = 500
	}
	if lc.MergeQPS <= 0 {
		lc.MergeQPS = 50
	}
	if lc.MergeTicks <= 0 {
		lc.MergeTicks = 3
	}
	if lc.LeaseShare <= 0 {
		lc.LeaseShare = 0.66
	}
	if lc.LeaseTicks <= 0 {
		lc.LeaseTicks = 2
	}
	return lc
}

// RangeDecisions counts the load queue's actions on one range; surfaced
// through mrdb_internal.ranges.
type RangeDecisions struct {
	Splits, Merges, LeaseMoves, ReplicaMoves int64
}

func (d RangeDecisions) String() string {
	return fmt.Sprintf("splits=%d merges=%d lease_moves=%d replica_moves=%d",
		d.Splits, d.Merges, d.LeaseMoves, d.ReplicaMoves)
}

// Decisions returns the load queue's decision counts for a range.
func (a *Admin) Decisions(id RangeID) RangeDecisions {
	if d, ok := a.decisions[id]; ok {
		return *d
	}
	return RangeDecisions{}
}

func (a *Admin) bumpDecision(id RangeID, f func(*RangeDecisions)) {
	if a.decisions == nil {
		a.decisions = map[RangeID]*RangeDecisions{}
	}
	d := a.decisions[id]
	if d == nil {
		d = &RangeDecisions{}
		a.decisions[id] = d
	}
	f(d)
}

func (a *Admin) regionOf(id simnet.NodeID) simnet.Region {
	l, _ := a.Topo.LocalityOf(id)
	return l.Region
}

// configsMergeable reports whether two ranges' zone configs allow merging:
// both unregistered, or both registered and identical.
func (a *Admin) configsMergeable(x, y RangeID) bool {
	cx, okx := a.Catalog.ZoneConfig(x)
	cy, oky := a.Catalog.ZoneConfig(y)
	if okx != oky {
		return false
	}
	if !okx {
		return true
	}
	return cx.String() == cy.String()
}

// RelocateWithConfig is Relocate for a zone-config change: the new config
// is registered in the catalog atomically with the descriptor publication
// (Relocate's step 3), so a placement checker never observes the new
// placement against the old config or vice versa.
func (a *Admin) RelocateWithConfig(p *sim.Proc, rangeID RangeID, placement zones.Placement, policy ClosedTSPolicy, cfg *zones.Config) error {
	return a.relocate(p, rangeID, placement, policy, cfg)
}

// MergeRanges merges a range with its right-hand neighbor: the neighbor's
// replicas are first colocated onto the left range's nodes, the neighbor is
// frozen with a Subsume entry in its own log (after which its replicas
// reject all traffic and proposals), its log is quiesced so the absorbed
// data is complete and immutable, and finally a Merge entry in the left
// range's log widens every left replica, copying the local right-hand data
// at the same log position everywhere.
func (a *Admin) MergeRanges(p *sim.Proc, lhsID RangeID) error {
	lhs, ok := a.Catalog.LookupByID(lhsID)
	if !ok {
		return fmt.Errorf("kv: unknown range %d", lhsID)
	}
	if lhs.EndKey == nil {
		return fmt.Errorf("kv: r%d has no right neighbor", lhsID)
	}
	rhs, err := a.Catalog.Lookup(lhs.EndKey)
	if err != nil {
		return err
	}
	if !bytes.Equal(rhs.StartKey, lhs.EndKey) {
		return fmt.Errorf("kv: r%d and r%d are not adjacent", lhsID, rhs.RangeID)
	}
	if rhs.Policy != lhs.Policy {
		return fmt.Errorf("kv: r%d and r%d have different closed-ts policies", lhsID, rhs.RangeID)
	}
	if !a.configsMergeable(lhsID, rhs.RangeID) {
		return fmt.Errorf("kv: r%d and r%d have different zone configs", lhsID, rhs.RangeID)
	}
	rhsID := rhs.RangeID

	// 1. Colocate the right range onto the left range's exact placement so
	// every left replica has a local right replica to absorb.
	colocate := zones.Placement{
		Voters:      append([]simnet.NodeID(nil), lhs.Voters...),
		NonVoters:   append([]simnet.NodeID(nil), lhs.NonVoters...),
		Leaseholder: lhs.Leaseholder,
	}
	if err := a.Relocate(p, rhsID, colocate, rhs.Policy); err != nil {
		return err
	}

	// 2. Freeze the right range.
	rr, err := a.leaseholderReplica(rhsID)
	if err != nil {
		return err
	}
	sub := Command{
		Kind:     CmdSubsume,
		Ts:       rr.store.Clock.Now().Add(a.MaxOffset),
		ClosedTS: rr.closed.issued,
	}
	if err := rr.propose(p, sub); err != nil {
		return err
	}
	subClosed := rr.closed.issued

	// 3. Quiesce: in-flight (e.g. pipelined) proposals can still land after
	// the subsume entry; wait until the log stops growing and every replica
	// has applied all of it, so the merged data is identical everywhere.
	rdesc, ok := a.Catalog.LookupByID(rhsID)
	if !ok {
		return fmt.Errorf("kv: range %d vanished during merge", rhsID)
	}
	quiesced := false
	for i := 0; i < 2000; i++ {
		last := rr.raft.LastIndex()
		settled := true
		for _, id := range rdesc.Replicas() {
			st, ok := a.Stores[id]
			if !ok {
				settled = false
				break
			}
			rep, ok := st.Replica(rhsID)
			if !ok {
				settled = false
				break
			}
			if rep.raft.Applied() < last {
				settled = false
				break
			}
		}
		if settled && rr.raft.LastIndex() == last {
			quiesced = true
			break
		}
		p.Sleep(10 * sim.Millisecond)
	}
	if !quiesced {
		return fmt.Errorf("kv: r%d did not quiesce for merge", rhsID)
	}

	// 4. Widen the left range through its own log.
	lr, err := a.leaseholderReplica(lhsID)
	if err != nil {
		return err
	}
	merged := lr.desc.Clone()
	merged.EndKey = append(mvcc.Key(nil), rdesc.EndKey...)
	gen := merged.Generation
	if rdesc.Generation > gen {
		gen = rdesc.Generation
	}
	merged.Generation = gen + 1
	cmd := Command{
		Kind: CmdMerge, Desc: merged, SplitDesc: rdesc.Clone(),
		Ts:              lr.store.Clock.Now().Add(a.MaxOffset),
		ClosedTS:        lr.closed.issued,
		SubsumeClosedTS: subClosed,
	}
	if err := lr.propose(p, cmd); err != nil {
		return err
	}
	// Publish: drop the right descriptor and widen the left back-to-back
	// (no yield between the two mutations, so no lookup sees a gap).
	a.Catalog.Remove(rhsID)
	a.Catalog.Update(merged)
	a.Load.Forget(rhsID)
	return nil
}

// StartLoadQueue runs the load-based allocator loop: split hot ranges at a
// load-weighted key, merge cold adjacent ranges, and move leases and
// replicas toward traffic while honoring zone configs. It returns a stop
// function. All decisions run on the virtual clock over deterministic
// traffic accounting, so same-seed runs make identical decisions.
func (a *Admin) StartLoadQueue(lc LoadConfig) (stop func()) {
	lc = lc.withDefaults()
	if a.Load == nil {
		a.Load = NewRangeLoadTracker(a.Sim, lc.HalfLife)
	}
	coldTicks := map[RangeID]int{}
	hotTicks := map[RangeID]int{}
	hotRegion := map[RangeID]simnet.Region{}
	running := false
	return a.Sim.Ticker(lc.Interval, func() {
		if running {
			return
		}
		running = true
		a.Sim.Spawn("kv/load-queue", func(p *sim.Proc) {
			defer func() { running = false }()
			a.loadTick(p, lc, coldTicks, hotTicks, hotRegion)
		})
	})
}

func (a *Admin) loadTick(p *sim.Proc, lc LoadConfig, coldTicks, hotTicks map[RangeID]int, hotRegion map[RangeID]simnet.Region) {
	// 1. Split hot ranges at the load-weighted key.
	for _, d := range a.Catalog.All() {
		if a.Load.QPS(d.RangeID) <= lc.SplitQPS {
			continue
		}
		key := a.Load.SplitKey(d.RangeID, d.StartKey, d.EndKey)
		if key == nil {
			// All samples on one key: splitting cannot spread that load.
			continue
		}
		if _, err := a.SplitRange(p, d.RangeID, key); err != nil {
			// Benign: the range may be mid-reconfiguration; retry next tick.
			continue
		}
		// Both halves restart accounting so the stale pre-split rate
		// cannot immediately re-trigger a split.
		a.Load.Forget(d.RangeID)
		delete(coldTicks, d.RangeID)
		a.LoadSplits++
		a.bumpDecision(d.RangeID, func(rd *RangeDecisions) { rd.Splits++ })
	}

	// 2. Merge cold adjacent ranges, with hysteresis: both neighbors must
	// have been cold for MergeTicks consecutive ticks.
	descs := a.Catalog.All()
	for _, d := range descs {
		if a.Load.QPS(d.RangeID) < lc.MergeQPS {
			coldTicks[d.RangeID]++
		} else {
			coldTicks[d.RangeID] = 0
		}
	}
	for i := 0; i+1 < len(descs); i++ {
		// Re-resolve both sides: an earlier merge this tick may have
		// removed or widened them.
		cl, ok1 := a.Catalog.LookupByID(descs[i].RangeID)
		cr, ok2 := a.Catalog.LookupByID(descs[i+1].RangeID)
		if !ok1 || !ok2 || cl.EndKey == nil || !bytes.Equal(cl.EndKey, cr.StartKey) {
			continue
		}
		if coldTicks[cl.RangeID] < lc.MergeTicks || coldTicks[cr.RangeID] < lc.MergeTicks {
			continue
		}
		if cl.Policy != cr.Policy || !a.configsMergeable(cl.RangeID, cr.RangeID) {
			continue
		}
		if a.splitMaxKeys > 0 && a.mergedKeyCount(cl, cr) > a.splitMaxKeys {
			// The merged range would immediately re-split on size.
			continue
		}
		if err := a.MergeRanges(p, cl.RangeID); err != nil {
			continue
		}
		delete(coldTicks, cr.RangeID)
		coldTicks[cl.RangeID] = 0
		a.Merges++
		a.bumpDecision(cl.RangeID, func(rd *RangeDecisions) { rd.Merges++ })
	}

	// 3. Move leases (and, when needed, replicas) toward traffic.
	for _, d := range a.Catalog.All() {
		shares := a.Load.RegionShares(d.RangeID)
		if len(shares) == 0 || shares[0].Share < lc.LeaseShare {
			hotTicks[d.RangeID] = 0
			continue
		}
		top := shares[0].Region
		if hotRegion[d.RangeID] != top {
			hotRegion[d.RangeID] = top
			hotTicks[d.RangeID] = 1
		} else {
			hotTicks[d.RangeID]++
		}
		if hotTicks[d.RangeID] < lc.LeaseTicks {
			continue
		}
		cur, ok := a.Catalog.LookupByID(d.RangeID)
		if !ok || a.regionOf(cur.Leaseholder) == top {
			continue
		}
		cfg, hasCfg := a.Catalog.ZoneConfig(cur.RangeID)
		if hasCfg && len(cfg.LeasePreferences) > 0 && !regionInPrefs(top, cfg.LeasePreferences) {
			// The config pins the lease elsewhere; respect it.
			continue
		}
		// Prefer a lease transfer to an existing voter in the hot region.
		var target simnet.NodeID
		for _, v := range cur.Voters {
			if a.regionOf(v) == top && (target == 0 || v < target) {
				target = v
			}
		}
		if target != 0 {
			if err := a.TransferLease(p, cur.RangeID, target); err == nil {
				a.LeaseMoves++
				a.bumpDecision(cur.RangeID, func(rd *RangeDecisions) { rd.LeaseMoves++ })
				hotTicks[cur.RangeID] = 0
			}
			continue
		}
		// No voter in the hot region: swap one in if the config allows it.
		if !hasCfg {
			continue
		}
		if a.rebalanceReplica(p, cur, cfg, top, shares) {
			a.ReplicaMoves++
			a.bumpDecision(cur.RangeID, func(rd *RangeDecisions) { rd.ReplicaMoves++ })
			hotTicks[cur.RangeID] = 0
		}
	}
}

func regionInPrefs(r simnet.Region, prefs []simnet.Region) bool {
	for _, p := range prefs {
		if p == r {
			return true
		}
	}
	return false
}

// mergedKeyCount estimates the live key count of a merged pair.
func (a *Admin) mergedKeyCount(lhs, rhs *RangeDescriptor) int {
	lr, err := a.leaseholderReplica(lhs.RangeID)
	if err != nil {
		return 1 << 30
	}
	rr, err := a.leaseholderReplica(rhs.RangeID)
	if err != nil {
		return 1 << 30
	}
	return lr.engine.KeyCountInSpan(lhs.StartKey, lhs.EndKey) +
		rr.engine.KeyCountInSpan(rhs.StartKey, rhs.EndKey)
}

// rebalanceReplica swaps the lowest-traffic droppable voter for a node in
// the hot region, keeping the zone config exactly satisfied throughout
// (validated before acting). Returns whether a move was made.
func (a *Admin) rebalanceReplica(p *sim.Proc, d *RangeDescriptor, cfg zones.Config, hot simnet.Region, shares []RegionShare) bool {
	onRange := map[simnet.NodeID]bool{}
	for _, id := range d.Replicas() {
		onRange[id] = true
	}
	// Candidate to add: lowest-ID free node in the hot region.
	var add simnet.NodeID
	for _, id := range a.Topo.NodesInRegion(hot) {
		if _, ok := a.Stores[id]; ok && !onRange[id] {
			add = id
			break
		}
	}
	if add == 0 {
		return false
	}
	shareOf := map[simnet.Region]float64{}
	for _, s := range shares {
		shareOf[s.Region] = s.Share
	}
	// Candidates to drop: voters other than the leaseholder, coldest
	// region first (node ID breaks ties).
	drops := append([]simnet.NodeID(nil), d.Voters...)
	sortNodeIDs(drops, func(x, y simnet.NodeID) bool {
		sx, sy := shareOf[a.regionOf(x)], shareOf[a.regionOf(y)]
		if sx != sy {
			return sx < sy
		}
		return x < y
	})
	checker := &zones.Allocator{Topo: a.Topo}
	for _, drop := range drops {
		if drop == d.Leaseholder {
			continue
		}
		var voters []simnet.NodeID
		for _, v := range d.Voters {
			if v == drop {
				voters = append(voters, add)
			} else {
				voters = append(voters, v)
			}
		}
		pl := zones.Placement{
			Voters:      voters,
			NonVoters:   append([]simnet.NodeID(nil), d.NonVoters...),
			Leaseholder: d.Leaseholder,
		}
		if checker.CheckPlacement(cfg, pl) != nil {
			continue
		}
		return a.Relocate(p, d.RangeID, pl, d.Policy) == nil
	}
	return false
}

func sortNodeIDs(ids []simnet.NodeID, less func(x, y simnet.NodeID) bool) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && less(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

package kv

import (
	"bytes"
	"fmt"
	"sort"

	"mrdb/internal/mvcc"
	"mrdb/internal/zones"
)

// RangeCatalog is the authoritative map from keyspace to range
// descriptors. In CockroachDB this state lives in the meta ranges and is
// cached by each node; here it is a single shared structure — routing
// lookups are free, but leaseholder information may still be stale relative
// to a replica's own view, so NotLeaseholderError handling remains
// necessary. The simplification is recorded in DESIGN.md.
type RangeCatalog struct {
	// descs is sorted by StartKey; ranges must not overlap.
	descs  []*RangeDescriptor
	nextID RangeID
	// configs holds the zone config each range was placed under, keyed by
	// range ID. Configs live here rather than on the descriptor because
	// descriptors are gob-encoded into WALs and checkpoints, and
	// zones.Config contains maps whose gob encoding is not byte-stable.
	configs map[RangeID]zones.Config
}

// NewRangeCatalog returns an empty catalog.
func NewRangeCatalog() *RangeCatalog {
	return &RangeCatalog{configs: map[RangeID]zones.Config{}}
}

// SetZoneConfig records the zone config a range is placed under. The load
// queue and the placement invariant checker consult it; ranges without a
// registered config are exempt from constraint checking (and from
// constraint-aware rebalancing).
func (c *RangeCatalog) SetZoneConfig(id RangeID, cfg zones.Config) {
	c.configs[id] = cfg.Clone()
}

// ZoneConfig returns the registered zone config for a range, if any.
func (c *RangeCatalog) ZoneConfig(id RangeID) (zones.Config, bool) {
	cfg, ok := c.configs[id]
	return cfg, ok
}

// NextRangeID allocates a fresh range ID.
func (c *RangeCatalog) NextRangeID() RangeID {
	c.nextID++
	return c.nextID
}

// Insert adds a descriptor, keeping the catalog sorted. It rejects overlap.
func (c *RangeCatalog) Insert(d *RangeDescriptor) error {
	i := sort.Search(len(c.descs), func(i int) bool {
		return bytes.Compare(c.descs[i].StartKey, d.StartKey) > 0
	})
	// Check neighbors for overlap.
	if i > 0 {
		prev := c.descs[i-1]
		if prev.EndKey == nil || bytes.Compare(prev.EndKey, d.StartKey) > 0 {
			return fmt.Errorf("kv: range %d overlaps new range at %q", prev.RangeID, d.StartKey)
		}
	}
	if i < len(c.descs) {
		next := c.descs[i]
		if d.EndKey == nil || bytes.Compare(d.EndKey, next.StartKey) > 0 {
			return fmt.Errorf("kv: new range overlaps range %d", next.RangeID)
		}
	}
	c.descs = append(c.descs, nil)
	copy(c.descs[i+1:], c.descs[i:])
	c.descs[i] = d
	return nil
}

// Remove deletes the descriptor (and any zone config) for a range ID.
func (c *RangeCatalog) Remove(id RangeID) {
	delete(c.configs, id)
	for i, d := range c.descs {
		if d.RangeID == id {
			c.descs = append(c.descs[:i], c.descs[i+1:]...)
			return
		}
	}
}

// Lookup returns the descriptor containing key.
func (c *RangeCatalog) Lookup(key mvcc.Key) (*RangeDescriptor, error) {
	i := sort.Search(len(c.descs), func(i int) bool {
		return bytes.Compare(c.descs[i].StartKey, key) > 0
	})
	if i == 0 {
		return nil, fmt.Errorf("kv: no range contains key %q", key)
	}
	d := c.descs[i-1]
	if !d.ContainsKey(key) {
		return nil, fmt.Errorf("kv: no range contains key %q", key)
	}
	return d, nil
}

// LookupByID returns the descriptor with the given range ID.
func (c *RangeCatalog) LookupByID(id RangeID) (*RangeDescriptor, bool) {
	for _, d := range c.descs {
		if d.RangeID == id {
			return d, true
		}
	}
	return nil, false
}

// LookupSpan returns the descriptors overlapping [start, end), in order.
func (c *RangeCatalog) LookupSpan(start, end mvcc.Key) []*RangeDescriptor {
	var out []*RangeDescriptor
	for _, d := range c.descs {
		if end != nil && bytes.Compare(d.StartKey, end) >= 0 {
			break
		}
		if d.EndKey != nil && bytes.Compare(d.EndKey, start) <= 0 {
			continue
		}
		out = append(out, d)
	}
	return out
}

// All returns every descriptor in key order.
func (c *RangeCatalog) All() []*RangeDescriptor {
	return append([]*RangeDescriptor(nil), c.descs...)
}

// Update replaces the stored descriptor for d.RangeID with d if d's
// generation is newer.
func (c *RangeCatalog) Update(d *RangeDescriptor) {
	for i, cur := range c.descs {
		if cur.RangeID == d.RangeID {
			if d.Generation >= cur.Generation {
				c.descs[i] = d
			}
			return
		}
	}
}

// Len returns the number of ranges.
func (c *RangeCatalog) Len() int { return len(c.descs) }

package kv_test

import (
	"fmt"
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/zones"
)

// benchCluster builds a three-region cluster with one REGIONAL range split
// into three, returning the cluster and the us-east1 gateway sender.
func benchCluster(b *testing.B, seed int64) (*cluster.Cluster, *kv.DistSender) {
	b.Helper()
	c := cluster.New(cluster.Config{Seed: seed, Regions: cluster.ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	zcfg := zones.Config{
		NumReplicas: 5, NumVoters: 3,
		VoterConstraints: map[simnet.Region]int{simnet.USEast1: 3},
		Constraints:      map[simnet.Region]int{simnet.EuropeW2: 1, simnet.AsiaNE1: 1},
		LeasePreferences: []simnet.Region{simnet.USEast1},
	}
	desc, err := c.CreateRangeWithZoneConfig([]byte("bm/"), []byte("bm0"), zcfg, kv.ClosedTSLag)
	if err != nil {
		b.Fatal(err)
	}
	c.Sim.Spawn("setup", func(p *sim.Proc) {
		if err := c.Admin.WaitAllReady(p); err != nil {
			b.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		mid, err := c.Admin.SplitRange(p, desc.RangeID, mvcc.Key("bm/004"))
		if err != nil {
			b.Error(err)
			return
		}
		if _, err := c.Admin.SplitRange(p, mid.RangeID, mvcc.Key("bm/008")); err != nil {
			b.Error(err)
		}
	})
	c.Sim.RunFor(5 * sim.Second)
	return c, c.Senders[c.GatewayFor(simnet.USEast1)]
}

// BenchmarkDistSenderBatchDispatch measures the wall-clock cost of
// splitting, fanning out, and merging a 12-request batch across 3 ranges —
// the hardware-speed floor of the batched dispatch path.
func BenchmarkDistSenderBatchDispatch(b *testing.B) {
	c, ds := benchCluster(b, 7)
	reqs := make([]interface{}, 12)
	for i := range reqs {
		reqs[i] = &kv.GetRequest{
			Key:       mvcc.Key(fmt.Sprintf("bm/%03d", i)),
			Timestamp: c.Stores[ds.NodeID].Clock.Now(),
		}
	}
	c.Sim.Spawn("bench", func(p *sim.Proc) {
		defer c.Sim.Stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, resp := range ds.SendBatch(p, reqs) {
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		}
	})
	c.Sim.Run()
}

// BenchmarkDistSenderSingleDispatch is the per-request baseline: one point
// get through the full route-send-evaluate-reply cycle.
func BenchmarkDistSenderSingleDispatch(b *testing.B) {
	c, ds := benchCluster(b, 8)
	req := &kv.GetRequest{
		Key:       mvcc.Key("bm/005"),
		Timestamp: c.Stores[ds.NodeID].Clock.Now(),
	}
	c.Sim.Spawn("bench", func(p *sim.Proc) {
		defer c.Sim.Stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp := ds.Send(p, req); resp.Err != nil {
				b.Fatal(resp.Err)
			}
		}
	})
	c.Sim.Run()
}

package kv

import (
	"fmt"
	"testing"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/obs"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/storage"
	"mrdb/internal/zones"
)

// recoveryHarness is a minimal durable multi-store deployment for white-box
// crash/restart tests: every node gets its own simulated disk.
type recoveryHarness struct {
	s       *sim.Simulation
	topo    *simnet.Topology
	net     *simnet.Network
	nl      *NodeLiveness
	cat     *RangeCatalog
	metrics *obs.Registry
	stores  map[simnet.NodeID]*Store
	admin   *Admin
}

func newRecoveryHarness(t *testing.T, nodes int, ckptInterval sim.Duration) *recoveryHarness {
	t.Helper()
	s := sim.New(1)
	topo := simnet.NewTable1Topology()
	h := &recoveryHarness{
		s:       s,
		topo:    topo,
		net:     simnet.NewNetwork(s, topo),
		nl:      NewNodeLiveness(s),
		cat:     NewRangeCatalog(),
		metrics: obs.NewRegistry(),
		stores:  map[simnet.NodeID]*Store{},
	}
	reg := NewTxnRegistry(s, topo)
	for i := 1; i <= nodes; i++ {
		id := simnet.NodeID(i)
		topo.AddNode(id, simnet.Locality{Region: simnet.USEast1, Zone: simnet.Zone(fmt.Sprintf("us-east1-%c", 'a'+i-1))})
		clock := hlc.NewClock(hlc.SimWallSource{Sim: s}, 250*sim.Millisecond)
		st := NewStore(id, s, h.net, topo, clock, reg)
		st.Catalog = h.cat
		st.Disk = storage.NewDisk(s, 1000+int64(id), h.metrics)
		st.StartLiveness(h.nl)
		st.StartCheckpoints(ckptInterval)
		h.stores[id] = st
	}
	h.admin = &Admin{Sim: s, Topo: topo, Catalog: h.cat, Stores: h.stores, MaxOffset: 250 * sim.Millisecond}
	return h
}

// run executes fn in a fresh proc and advances the simulation until it
// finishes (or d elapses, which fails the test).
func (h *recoveryHarness) run(t *testing.T, d sim.Duration, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	done := false
	h.s.Spawn("test", func(p *sim.Proc) {
		err = fn(p)
		done = true
	})
	h.s.RunFor(d)
	if !done {
		t.Fatal("test proc did not finish in time")
	}
	if err != nil {
		t.Fatal(err)
	}
}

// createRange builds a range over [a, z) with the given voters and waits
// for its leaseholder to lead.
func (h *recoveryHarness) createRange(t *testing.T, voters []simnet.NodeID, leaseholder simnet.NodeID) *RangeDescriptor {
	t.Helper()
	desc, err := h.admin.CreateRange(mvcc.Key("a"), mvcc.Key("z"),
		zones.Placement{Voters: voters, Leaseholder: leaseholder}, ClosedTSLag)
	if err != nil {
		t.Fatal(err)
	}
	h.run(t, 15*sim.Second, func(p *sim.Proc) error {
		return h.admin.WaitReady(p, desc.RangeID)
	})
	return desc
}

func putCmd(st *Store, key, val string) Command {
	return Command{Kind: CmdPut, Key: mvcc.Key(key), Value: mvcc.Value(val), Ts: st.Clock.Now()}
}

func hasKey(r *Replica, key string) bool {
	return r.engine.KeyCountInSpan(mvcc.Key(key), mvcc.Key(key+"\x00")) > 0
}

// TestRestartDropsVolatileState is the regression test for the
// restart-resurrection hole: after an honest crash + recovery, a node's
// volatile state must be gone. A Raft entry appended but not yet fsynced is
// not in the recovered log (and is never proposed again), and a latch held
// by an in-flight request at crash time is not held by the reborn replica.
func TestRestartDropsVolatileState(t *testing.T) {
	h := newRecoveryHarness(t, 3, 0)
	desc := h.createRange(t, []simnet.NodeID{1, 2, 3}, 1)
	r1, _ := h.stores[1].Replica(desc.RangeID)

	// A committed, fsynced write that must survive the crash.
	h.run(t, 10*sim.Second, func(p *sim.Proc) error {
		return r1.propose(p, putCmd(h.stores[1], "k1", "v1"))
	})
	h.s.RunFor(sim.Second)

	// Cut n1 off so the next entry cannot replicate, then append it and
	// crash before the fsync delay elapses: the entry exists only in n1's
	// volatile WAL tail.
	h.net.Partition(1, 2)
	h.net.Partition(1, 3)
	var lastDurable uint64
	h.run(t, sim.Second, func(p *sim.Proc) error {
		// An in-flight request's latch, never released (its holder dies
		// with the node).
		h.s.Spawn("latch-holder", func(lp *sim.Proc) {
			r1.latches.acquire(lp, mvcc.Key("k2"))
		})
		return nil
	})
	if len(r1.latches.held) == 0 {
		t.Fatal("latch not held before crash")
	}
	lastDurable = r1.raft.DurableIndex()
	if _, err := r1.raft.Propose(putCmd(h.stores[1], "k2", "v2")); err != nil {
		t.Fatal(err)
	}
	if r1.raft.LastIndex() != lastDurable+1 {
		t.Fatalf("append not staged: last=%d durable=%d", r1.raft.LastIndex(), lastDurable)
	}
	if r1.raft.DurableIndex() != lastDurable {
		t.Fatal("entry became durable with no virtual time passing")
	}
	h.net.CrashNode(1)
	h.stores[1].Crash()

	// Recover from disk while still unreachable, then rejoin.
	restartAt := h.stores[1].Clock.Now()
	h.run(t, 5*sim.Second, func(p *sim.Proc) error {
		_, err := h.stores[1].Recover(p)
		return err
	})
	nr1, ok := h.stores[1].Replica(desc.RangeID)
	if !ok {
		t.Fatal("replica not recovered")
	}
	if nr1 == r1 {
		t.Fatal("recovery resurrected the old replica object")
	}
	if got := nr1.raft.LastIndex(); got != lastDurable {
		t.Fatalf("unflushed entry survived restart: last=%d, want durable %d", got, lastDurable)
	}
	if len(nr1.latches.held) != 0 {
		t.Fatalf("pre-crash latches held after restart: %v", nr1.latches.held)
	}
	if nr1.tscache.LowWater().Less(restartAt) {
		t.Fatalf("tscache low-water %v below restart time %v", nr1.tscache.LowWater(), restartAt)
	}
	h.net.RestartNode(1)
	h.net.Heal(1, 2)
	h.net.Heal(1, 3)
	h.s.RunFor(15 * sim.Second)

	// The durable write is everywhere; the volatile one is nowhere.
	for id := simnet.NodeID(1); id <= 3; id++ {
		r, ok := h.stores[id].Replica(desc.RangeID)
		if !ok {
			t.Fatalf("n%d lost its replica", id)
		}
		if !hasKey(r, "k1") {
			t.Fatalf("n%d: durable write k1 lost", id)
		}
		if hasKey(r, "k2") {
			t.Fatalf("n%d: unflushed write k2 resurrected", id)
		}
	}
}

// TestFencedLeaseStaysFencedThroughRestart: while a node is down its peers
// fence its lease with an epoch bump and take over; the restarted node must
// come back with a *further* bumped (and persisted) epoch, observe the new
// leaseholder from the replicated log, and never treat its pre-crash lease
// as valid.
func TestFencedLeaseStaysFencedThroughRestart(t *testing.T) {
	h := newRecoveryHarness(t, 3, 0)
	desc := h.createRange(t, []simnet.NodeID{1, 2, 3}, 1)
	if e := h.nl.Epoch(1); e != 1 {
		t.Fatalf("initial epoch %d, want 1", e)
	}

	h.net.CrashNode(1)
	h.stores[1].Crash()
	// Long outage: liveness expires, a peer fences n1 and takes the lease.
	h.s.RunFor(20 * sim.Second)
	if e := h.nl.Epoch(1); e != 2 {
		t.Fatalf("peers did not fence the dead node: epoch %d, want 2", e)
	}
	cur, _ := h.cat.LookupByID(desc.RangeID)
	if cur.Leaseholder == 1 {
		t.Fatal("lease did not move off the crashed node")
	}

	h.run(t, 5*sim.Second, func(p *sim.Proc) error {
		_, err := h.stores[1].Recover(p)
		return err
	})
	// Restart bumps past both the registry epoch and the persisted one.
	if e := h.nl.Epoch(1); e != 3 {
		t.Fatalf("restart did not bump the epoch: %d, want 3", e)
	}
	nr1, _ := h.stores[1].Replica(desc.RangeID)
	if nr1.hasValidLease() {
		t.Fatal("recovered node considers its pre-crash lease valid")
	}
	h.net.RestartNode(1)
	h.s.RunFor(15 * sim.Second)

	// The recovered node catches up on the log and learns the new
	// leaseholder; its old lease (epoch 1) can never validate again.
	if nr1.desc.Leaseholder == 1 {
		t.Fatal("recovered node still believes it is leaseholder")
	}
	if nr1.hasValidLease() {
		t.Fatal("fenced lease revalidated after restart")
	}
	// The fence survives another restart: the persisted epoch keeps
	// ratcheting even if no peer notices the next (quick) outage.
	h.net.CrashNode(1)
	h.stores[1].Crash()
	h.run(t, 5*sim.Second, func(p *sim.Proc) error {
		_, err := h.stores[1].Recover(p)
		return err
	})
	h.net.RestartNode(1)
	if e := h.nl.Epoch(1); e != 4 {
		t.Fatalf("quick restart did not bump the epoch: %d, want 4", e)
	}
}

// TestRecoveryReplaysOnlyPostCheckpointEntries pins the replay count: after
// a checkpoint, only entries beyond it are recovered from the WAL, and they
// re-commit through Raft rather than being applied directly.
func TestRecoveryReplaysOnlyPostCheckpointEntries(t *testing.T) {
	h := newRecoveryHarness(t, 1, 3600*sim.Second)
	desc := h.createRange(t, []simnet.NodeID{1}, 1)
	st := h.stores[1]
	r, _ := st.Replica(desc.RangeID)

	h.run(t, 10*sim.Second, func(p *sim.Proc) error {
		if err := r.propose(p, putCmd(st, "k1", "v1")); err != nil {
			return err
		}
		return r.propose(p, putCmd(st, "k2", "v2"))
	})
	h.s.RunFor(sim.Second)
	st.CheckpointNow()
	ckptIdx := r.raft.Applied()
	if r.raft.FirstIndex() != ckptIdx {
		t.Fatalf("log not truncated to checkpoint: first=%d applied=%d", r.raft.FirstIndex(), ckptIdx)
	}

	// Exactly three durable post-checkpoint entries.
	h.run(t, 10*sim.Second, func(p *sim.Proc) error {
		for i := 3; i <= 5; i++ {
			if err := r.propose(p, putCmd(st, fmt.Sprintf("k%d", i), "v")); err != nil {
				return err
			}
		}
		return nil
	})
	h.s.RunFor(sim.Second)

	replayedBefore := h.metrics.Counter("recovery.replay.entries").Value()
	h.net.CrashNode(1)
	st.Crash()
	var stats RecoveryStats
	var appliedAtRecovery uint64
	h.run(t, 5*sim.Second, func(p *sim.Proc) error {
		var err error
		if stats, err = st.Recover(p); err != nil {
			return err
		}
		// Observed before any further virtual time passes: recovery must
		// not have applied the replayed tail directly.
		if nr, ok := st.Replica(desc.RangeID); ok {
			appliedAtRecovery = nr.raft.Applied()
		}
		return nil
	})
	h.net.RestartNode(1)
	if stats.ReplayedEntries != 3 {
		t.Fatalf("replayed %d entries, want exactly the 3 post-checkpoint ones", stats.ReplayedEntries)
	}
	if got := h.metrics.Counter("recovery.replay.entries").Value() - replayedBefore; got != 3 {
		t.Fatalf("recovery.replay.entries advanced by %d, want 3", got)
	}
	if stats.Duration <= 0 {
		t.Fatal("recovery charged no virtual time")
	}

	// The tail re-commits through Raft once the single voter re-elects
	// itself; recovery itself must not have applied it.
	if appliedAtRecovery != ckptIdx {
		t.Fatalf("recovery applied past the checkpoint: %d > %d", appliedAtRecovery, ckptIdx)
	}
	nr, _ := st.Replica(desc.RangeID)
	h.s.RunFor(15 * sim.Second)
	for i := 1; i <= 5; i++ {
		if !hasKey(nr, fmt.Sprintf("k%d", i)) {
			t.Fatalf("k%d missing after recovery + re-commit", i)
		}
	}
}

// TestRecoverFailsLoudlyOnCorruptWAL: bit rot below the durable prefix must
// abort recovery with storage.ErrCorrupt, never replay garbage.
func TestRecoverFailsLoudlyOnCorruptWAL(t *testing.T) {
	h := newRecoveryHarness(t, 1, 3600*sim.Second)
	desc := h.createRange(t, []simnet.NodeID{1}, 1)
	st := h.stores[1]
	r, _ := st.Replica(desc.RangeID)
	h.run(t, 10*sim.Second, func(p *sim.Proc) error {
		return r.propose(p, putCmd(st, "k1", "v1"))
	})
	h.s.RunFor(sim.Second)

	h.net.CrashNode(1)
	st.Crash()
	st.Disk.WAL(walName(desc.RangeID)).FlipBit(10, 2)
	h.run(t, 5*sim.Second, func(p *sim.Proc) error {
		if _, err := st.Recover(p); err == nil {
			return fmt.Errorf("recovery succeeded over a corrupt WAL")
		}
		return nil
	})
}

package kv

import (
	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
)

// TimestampCache remembers the maximum timestamp at which each key was
// read, so that writes can never invalidate a served read: a write to key k
// is forced above tscache[k] (paper §6.1: "leaseholders also advance the
// timestamp of writes above the timestamp of any previously served reads").
//
// Entries remember which transaction performed the read so that a
// transaction writing a key it previously read itself is not pushed above
// its own read timestamp (otherwise every read-modify-write would force a
// commit-time refresh).
//
// A low-water mark covers all keys; it is ratcheted on lease transfers so a
// new leaseholder conservatively assumes everything was read at the
// transfer timestamp.
type TimestampCache struct {
	lowWater hlc.Timestamp
	reads    map[string]tsEntry
}

type tsEntry struct {
	ts hlc.Timestamp
	// txn is the reader; zero when unknown or when multiple transactions
	// read at the same timestamp (no self-exemption then).
	txn mvcc.TxnID
}

// NewTimestampCache returns a cache with the given low-water mark.
func NewTimestampCache(lowWater hlc.Timestamp) *TimestampCache {
	return &TimestampCache{lowWater: lowWater, reads: map[string]tsEntry{}}
}

// RecordRead notes a read of key at ts by txn (0 for non-transactional).
func (c *TimestampCache) RecordRead(key mvcc.Key, ts hlc.Timestamp, txn mvcc.TxnID) {
	if ts.LessEq(c.lowWater) {
		return
	}
	k := string(key)
	cur, ok := c.reads[k]
	switch {
	case !ok || cur.ts.Less(ts):
		c.reads[k] = tsEntry{ts: ts, txn: txn}
	case cur.ts.Equal(ts) && cur.txn != txn:
		// Two readers at the same timestamp: nobody gets an exemption.
		c.reads[k] = tsEntry{ts: ts}
	}
}

// RecordReadSpan notes a scan over [start, end) at ts by conservatively
// ratcheting the cache-wide low-water mark (span-precision is traded for
// simplicity; ranges in mrdb are small).
func (c *TimestampCache) RecordReadSpan(start, end mvcc.Key, ts hlc.Timestamp) {
	if c.lowWater.Less(ts) {
		c.lowWater = ts
	}
}

// MaxRead returns the maximum read timestamp recorded for key and whether
// that read belongs to writer itself (in which case the writer may write AT
// the timestamp rather than above it).
func (c *TimestampCache) MaxRead(key mvcc.Key, writer mvcc.TxnID) (hlc.Timestamp, bool) {
	ts := c.lowWater
	own := false
	if e, ok := c.reads[string(key)]; ok && ts.Less(e.ts) {
		ts = e.ts
		own = writer != 0 && e.txn == writer
	}
	return ts, own
}

// LowWater returns the cache-wide floor.
func (c *TimestampCache) LowWater() hlc.Timestamp { return c.lowWater }

// SetLowWater ratchets the floor (never backwards); used on lease
// transfers.
func (c *TimestampCache) SetLowWater(ts hlc.Timestamp) {
	if c.lowWater.Less(ts) {
		c.lowWater = ts
		// Entries at or below the floor are redundant.
		for k, e := range c.reads {
			if e.ts.LessEq(ts) {
				delete(c.reads, k)
			}
		}
	}
}

// Len returns the number of per-key entries (testing hook).
func (c *TimestampCache) Len() int { return len(c.reads) }

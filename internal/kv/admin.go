package kv

import (
	"fmt"
	"sort"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/raft"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/zones"
)

// Admin performs cluster-level range operations: creating ranges from zone
// -config placements, transferring leases, and relocating replicas when
// zone configs change (e.g. after ALTER TABLE ... SET LOCALITY or ALTER
// DATABASE ... ADD REGION).
type Admin struct {
	Sim       *sim.Simulation
	Topo      *simnet.Topology
	Catalog   *RangeCatalog
	Stores    map[simnet.NodeID]*Store
	MaxOffset sim.Duration

	// Load, when set, is the per-range traffic tracker the load-based
	// queue consults (the DistSenders feed it).
	Load *RangeLoadTracker

	// Splits counts ranges divided by the size-based split queue.
	Splits int64
	// Aggregate load-queue decision counters.
	LoadSplits   int64
	Merges       int64
	LeaseMoves   int64
	ReplicaMoves int64

	// splitMaxKeys remembers the size-based split threshold so the merge
	// path refuses merges that would immediately re-split on size.
	splitMaxKeys int
	// decisions holds per-range load-queue decision counts.
	decisions map[RangeID]*RangeDecisions
}

// CreateRange instantiates a range over [start, end) with the given
// placement and closed-timestamp policy, elects its leaseholder, and
// registers it in the catalog.
func (a *Admin) CreateRange(start, end mvcc.Key, placement zones.Placement, policy ClosedTSPolicy) (*RangeDescriptor, error) {
	desc := &RangeDescriptor{
		RangeID:     a.Catalog.NextRangeID(),
		StartKey:    append(mvcc.Key(nil), start...),
		EndKey:      append(mvcc.Key(nil), end...),
		Voters:      append([]simnet.NodeID(nil), placement.Voters...),
		NonVoters:   append([]simnet.NodeID(nil), placement.NonVoters...),
		Leaseholder: placement.Leaseholder,
		Policy:      policy,
		Generation:  1,
	}
	if err := a.Catalog.Insert(desc); err != nil {
		return nil, err
	}
	for _, id := range desc.Replicas() {
		st, ok := a.Stores[id]
		if !ok {
			return nil, fmt.Errorf("kv: no store on node %d", id)
		}
		st.CreateReplica(desc, a.MaxOffset)
	}
	// Elect the leaseholder as Raft leader.
	lh := a.Stores[desc.Leaseholder]
	r, _ := lh.Replica(desc.RangeID)
	r.raft.Campaign()
	return desc, nil
}

// WaitReady parks p until the range's leaseholder replica leads its Raft
// group (i.e. the range can serve traffic).
func (a *Admin) WaitReady(p *sim.Proc, rangeID RangeID) error {
	desc, ok := a.Catalog.LookupByID(rangeID)
	if !ok {
		return fmt.Errorf("kv: unknown range %d", rangeID)
	}
	for i := 0; i < 1000; i++ {
		st := a.Stores[desc.Leaseholder]
		if r, ok := st.Replica(rangeID); ok && r.raft.IsLeader() {
			return nil
		}
		p.Sleep(10 * sim.Millisecond)
	}
	return fmt.Errorf("kv: range %d not ready", rangeID)
}

// WaitAllReady waits until every range in the catalog is serving.
func (a *Admin) WaitAllReady(p *sim.Proc) error {
	for _, d := range a.Catalog.All() {
		if err := a.WaitReady(p, d.RangeID); err != nil {
			return err
		}
	}
	return nil
}

// leaseholderReplica returns the current leaseholder's replica object.
func (a *Admin) leaseholderReplica(rangeID RangeID) (*Replica, error) {
	desc, ok := a.Catalog.LookupByID(rangeID)
	if !ok {
		return nil, fmt.Errorf("kv: unknown range %d", rangeID)
	}
	st, ok := a.Stores[desc.Leaseholder]
	if !ok {
		return nil, fmt.Errorf("kv: leaseholder store n%d missing", desc.Leaseholder)
	}
	r, ok := st.Replica(rangeID)
	if !ok {
		return nil, fmt.Errorf("kv: leaseholder replica of r%d missing", rangeID)
	}
	return r, nil
}

// TransferLease moves the lease (and Raft leadership) of a range to target,
// which must already hold a voting replica.
func (a *Admin) TransferLease(p *sim.Proc, rangeID RangeID, target simnet.NodeID) error {
	r, err := a.leaseholderReplica(rangeID)
	if err != nil {
		return err
	}
	desc := r.desc.Clone()
	if desc.Leaseholder == target {
		return nil
	}
	isVoter := false
	for _, v := range desc.Voters {
		if v == target {
			isVoter = true
		}
	}
	if !isVoter {
		return fmt.Errorf("kv: lease target n%d is not a voter of r%d", target, rangeID)
	}
	desc.Leaseholder = target
	desc.Generation++
	// The transfer command carries the old leaseholder's clock reading
	// (plus max offset) as the new tscache low-water mark, the old
	// closed-timestamp promise floor, and the target's liveness epoch the
	// new lease binds to.
	var epoch int64
	if nl := r.store.Liveness(); nl != nil {
		epoch = nl.Epoch(target)
	}
	cmd := Command{
		Kind:       CmdLeaseTransfer,
		Desc:       desc,
		Ts:         r.store.Clock.Now().Add(a.MaxOffset),
		ClosedTS:   r.closed.issued,
		LeaseEpoch: epoch,
	}
	if err := r.propose(p, cmd); err != nil {
		return err
	}
	r.raft.TransferLeadership(target)
	a.Catalog.Update(desc)
	// Wait for the target to actually take over leadership.
	tr, ok := a.Stores[target].Replica(rangeID)
	if !ok {
		return fmt.Errorf("kv: target replica missing")
	}
	for i := 0; i < 1000 && !tr.raft.IsLeader(); i++ {
		p.Sleep(10 * sim.Millisecond)
	}
	if !tr.raft.IsLeader() {
		return fmt.Errorf("kv: lease transfer of r%d to n%d did not complete", rangeID, target)
	}
	// Recompute the closed-timestamp lead from the new leaseholder.
	if desc.Policy == ClosedTSLead {
		tr.closed.lead = LeadTime(a.Topo, target, desc.Voters, desc.NonVoters, a.MaxOffset)
		tr.raft.SetHeartbeatInterval(SideTransportInterval)
	}
	return nil
}

// Relocate moves a range's replicas to match a new placement, adding then
// removing replicas and finally transferring the lease if needed. This is
// the mechanism behind locality changes (paper §2.4.2).
func (a *Admin) Relocate(p *sim.Proc, rangeID RangeID, placement zones.Placement, policy ClosedTSPolicy) error {
	return a.relocate(p, rangeID, placement, policy, nil)
}

func (a *Admin) relocate(p *sim.Proc, rangeID RangeID, placement zones.Placement, policy ClosedTSPolicy, cfg *zones.Config) error {
	r, err := a.leaseholderReplica(rangeID)
	if err != nil {
		return err
	}
	old := r.desc.Clone()

	inOld := map[simnet.NodeID]bool{}
	for _, id := range old.Replicas() {
		inOld[id] = true
	}
	oldVoter := map[simnet.NodeID]bool{}
	for _, id := range old.Voters {
		oldVoter[id] = true
	}
	newVoter := map[simnet.NodeID]bool{}
	for _, id := range placement.Voters {
		newVoter[id] = true
	}
	inNew := map[simnet.NodeID]bool{}
	for _, id := range placement.Replicas() {
		inNew[id] = true
	}

	newDesc := old.Clone()
	newDesc.Voters = append([]simnet.NodeID(nil), placement.Voters...)
	newDesc.NonVoters = append([]simnet.NodeID(nil), placement.NonVoters...)
	// Keep the old leaseholder in this descriptor: the lease (and Raft
	// leadership) move via TransferLease below, which must observe that
	// the lease has not yet moved.
	newDesc.Leaseholder = old.Leaseholder
	newDesc.Policy = policy
	newDesc.Generation++

	propose := func(cc raft.ConfChange) error {
		f, err := r.raft.ProposeConfChange(cc)
		if err != nil {
			return err
		}
		if res := f.Wait(p); res.Err != nil {
			return res.Err
		}
		return nil
	}

	// 1. Create replicas on new nodes (as learners first).
	for _, id := range placement.Replicas() {
		if inOld[id] {
			continue
		}
		st, ok := a.Stores[id]
		if !ok {
			return fmt.Errorf("kv: no store on node %d", id)
		}
		st.CreateReplica(newDesc, a.MaxOffset)
		if err := propose(raft.ConfChange{Type: raft.AddLearner, Node: id}); err != nil {
			return err
		}
	}
	// 2. Promote new voters. (Demotions of ex-voters happen only after
	// leadership has safely moved, below.)
	for _, id := range sortedIDs(newVoter) {
		if !oldVoter[id] {
			if err := propose(raft.ConfChange{Type: raft.AddVoter, Node: id}); err != nil {
				return err
			}
		}
	}
	// 3. Publish the new descriptor so every replica learns placement,
	// policy and leaseholder.
	cmd := Command{Kind: CmdDescUpdate, Desc: newDesc, ClosedTS: r.closed.issued}
	if err := r.propose(p, cmd); err != nil {
		return err
	}
	a.Catalog.Update(newDesc)
	if cfg != nil {
		// The new zone config becomes authoritative in the same scheduler
		// step as the descriptor that satisfies it, so placement checkers
		// never pair a new config with the old placement or vice versa.
		a.Catalog.SetZoneConfig(rangeID, *cfg)
	}

	// 4. Move the lease (and Raft leadership) if the leaseholder is
	// changing — this must precede demoting the old leader.
	if placement.Leaseholder != old.Leaseholder {
		if err := a.TransferLease(p, rangeID, placement.Leaseholder); err != nil {
			return err
		}
		r, err = a.leaseholderReplica(rangeID)
		if err != nil {
			return err
		}
	}
	// 5. Demote ex-voters that remain as non-voters, then remove replicas
	// not in the new placement, proposing from the current leader.
	for _, id := range sortedIDs(oldVoter) {
		if !newVoter[id] && inNew[id] {
			if err := propose(raft.ConfChange{Type: raft.AddLearner, Node: id}); err != nil {
				return err
			}
		}
	}
	for _, id := range sortedIDs(inOld) {
		if inNew[id] {
			continue
		}
		if oldVoter[id] {
			if err := propose(raft.ConfChange{Type: raft.RemoveVoter, Node: id}); err != nil {
				return err
			}
		} else {
			if err := propose(raft.ConfChange{Type: raft.RemoveLearner, Node: id}); err != nil {
				return err
			}
		}
		a.Stores[id].RemoveReplica(rangeID)
	}
	// 6. Recompute closed-timestamp policy parameters at the leaseholder.
	lhr, err := a.leaseholderReplica(rangeID)
	if err != nil {
		return err
	}
	lhr.closed.policy = policy
	if policy == ClosedTSLead {
		lhr.closed.lead = LeadTime(a.Topo, newDesc.Leaseholder, newDesc.Voters, newDesc.NonVoters, a.MaxOffset)
		// The faster side-transport cadence is what the lead target
		// budgets for (paper §6.2.1); every replica adopts it so any
		// future leader publishes at the right rate.
		for _, id := range newDesc.Replicas() {
			if st, ok := a.Stores[id]; ok {
				if rep, ok := st.Replica(rangeID); ok {
					rep.raft.SetHeartbeatInterval(SideTransportInterval)
					rep.closed.policy = policy
					rep.closed.lag = st.CloseLag
				}
			}
		}
	}
	return nil
}

// sortedIDs returns map keys in ascending order for deterministic
// iteration.
func sortedIDs(m map[simnet.NodeID]bool) []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SplitRange divides a range at splitKey: the left half keeps the range ID
// and shrinks, the right half becomes a new range with the same replica
// placement and policy. The split replicates through the old range's Raft
// log so every replica splits at the same point.
func (a *Admin) SplitRange(p *sim.Proc, rangeID RangeID, splitKey mvcc.Key) (*RangeDescriptor, error) {
	r, err := a.leaseholderReplica(rangeID)
	if err != nil {
		return nil, err
	}
	old := r.desc.Clone()
	if !old.ContainsKey(splitKey) || string(splitKey) == string(old.StartKey) {
		return nil, fmt.Errorf("kv: split key %q not strictly inside r%d", splitKey, rangeID)
	}
	newDesc := old.Clone()
	newDesc.RangeID = a.Catalog.NextRangeID()
	newDesc.StartKey = append(mvcc.Key(nil), splitKey...)
	newDesc.Generation = 1
	updated := old.Clone()
	updated.EndKey = append(mvcc.Key(nil), splitKey...)
	updated.Generation++
	cmd := Command{
		Kind: CmdSplit, Desc: updated, SplitDesc: newDesc,
		Ts:       r.store.Clock.Now().Add(a.MaxOffset),
		ClosedTS: r.closed.issued,
	}
	if err := r.propose(p, cmd); err != nil {
		return nil, err
	}
	a.Catalog.Update(updated)
	if err := a.Catalog.Insert(newDesc); err != nil {
		return nil, err
	}
	// The right half inherits the left's zone config.
	if cfg, ok := a.Catalog.ZoneConfig(rangeID); ok {
		a.Catalog.SetZoneConfig(newDesc.RangeID, cfg)
	}
	// The right half's replicas appear as the split applies on each
	// store, so the leaseholder's initial campaign can race replica
	// creation and lose to a timeout election elsewhere. Align Raft
	// leadership with the lease.
	if err := a.alignLeadership(p, newDesc); err != nil {
		return nil, err
	}
	return newDesc, nil
}

// alignLeadership waits for the range to elect a leader and moves
// leadership to the leaseholder if someone else won.
func (a *Admin) alignLeadership(p *sim.Proc, desc *RangeDescriptor) error {
	for i := 0; i < 2000; i++ {
		var leader *Replica
		for _, id := range desc.Voters {
			st, ok := a.Stores[id]
			if !ok {
				continue
			}
			if r, ok := st.Replica(desc.RangeID); ok && r.raft.IsLeader() {
				leader = r
				break
			}
		}
		if leader != nil {
			if leader.store.NodeID == desc.Leaseholder {
				return nil
			}
			leader.raft.TransferLeadership(desc.Leaseholder)
		}
		p.Sleep(10 * sim.Millisecond)
	}
	return fmt.Errorf("kv: range %d leadership did not align with lease on n%d", desc.RangeID, desc.Leaseholder)
}

// StartSplitQueue runs a background loop (CockroachDB's split queue) that
// splits any range whose leaseholder holds more than maxKeys live keys. It
// returns a stop function.
func (a *Admin) StartSplitQueue(maxKeys int, interval sim.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * sim.Second
	}
	a.splitMaxKeys = maxKeys
	running := false
	return a.Sim.Ticker(interval, func() {
		if running {
			return
		}
		running = true
		a.Sim.Spawn("kv/split-queue", func(p *sim.Proc) {
			defer func() { running = false }()
			for _, d := range a.Catalog.All() {
				st, ok := a.Stores[d.Leaseholder]
				if !ok {
					continue
				}
				r, ok := st.Replica(d.RangeID)
				if !ok || !r.raft.IsLeader() {
					continue
				}
				if r.engine.KeyCountInSpan(d.StartKey, d.EndKey) <= maxKeys {
					continue
				}
				mid, ok := r.engine.ApproxMiddleKey(d.StartKey, d.EndKey)
				if !ok {
					continue
				}
				if _, err := a.SplitRange(p, d.RangeID, mid); err != nil {
					// Benign: the range may be mid-reconfiguration;
					// the next tick retries.
					continue
				}
				a.Splits++
			}
		})
	})
}

// GatewayTxn constructs the coordinator-side Txn state for a transaction
// starting now at the given gateway store.
func GatewayTxn(st *Store, anchorKey mvcc.Key, priority int64) *Txn {
	now := st.Clock.Now()
	id := st.Registry.Begin(st.NodeID, priority)
	return &Txn{
		Meta: mvcc.TxnMeta{
			ID:             id,
			Key:            append(mvcc.Key(nil), anchorKey...),
			WriteTimestamp: now,
		},
		ReadTimestamp:          now,
		GlobalUncertaintyLimit: now.Add(st.Clock.MaxOffset()),
	}
}

// Ensure hlc is referenced (timestamps appear in exported signatures).
var _ = hlc.Timestamp{}

package kv

import (
	"fmt"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/obs"
	"mrdb/internal/raft"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/storage"
)

// Store is the per-node container of replicas. It owns the node's HLC
// clock, dispatches incoming RPCs to replicas, and routes Raft traffic
// between ranges.
type Store struct {
	NodeID   simnet.NodeID
	Sim      *sim.Simulation
	Net      *simnet.Network
	Topo     *simnet.Topology
	Clock    *hlc.Clock
	Registry *TxnRegistry

	// CloseLag overrides the default lagging closed-timestamp interval.
	CloseLag sim.Duration

	// Catalog, when set, lets replicas publish descriptor changes (e.g. a
	// lease acquired after a failover) to the shared routing catalog.
	Catalog *RangeCatalog

	// Obs, when set, records server-side spans (replica evaluation,
	// latching, closed-timestamp waits, Raft replication) into incoming
	// requests' traces. Optional; nil-safe.
	Obs *obs.Tracer

	// Contention, when set, receives one event per intent wait on this
	// store's replicas, feeding mrdb_internal.contention_events. Optional;
	// nil-safe.
	Contention *obs.ContentionLog

	// Disk, when set, is the node's simulated durable device: Raft state
	// persists through per-range WALs, checkpoints truncate them, and
	// Crash/Recover model honest restarts. Nil keeps the historical fully
	// in-memory behavior.
	Disk *storage.Disk

	replicas map[RangeID]*Replica
	// engineSeed derives per-replica skiplist seeds deterministically.
	engineSeed int64

	// checkpoint loop state (durable stores only).
	ckptInterval sim.Duration
	ckptStop     func()

	// liveness state: the shared registry plus this node's view of its own
	// record, maintained from peer acks.
	liveness *NodeLiveness
	lastAck  sim.Time
	ackEpoch int64

	// GCCollected counts MVCC versions collected by the GC loop.
	GCCollected int64
}

// NewStore creates a store and registers its network handler.
func NewStore(id simnet.NodeID, s *sim.Simulation, net *simnet.Network, topo *simnet.Topology, clock *hlc.Clock, reg *TxnRegistry) *Store {
	st := &Store{
		NodeID:     id,
		Sim:        s,
		Net:        net,
		Topo:       topo,
		Clock:      clock,
		Registry:   reg,
		CloseLag:   DefaultCloseLag,
		replicas:   map[RangeID]*Replica{},
		engineSeed: int64(id) * 7919,
	}
	net.Register(id, st.handleMessage)
	return st
}

// Replica returns the local replica of the given range, if any.
func (s *Store) Replica(id RangeID) (*Replica, bool) {
	r, ok := s.replicas[id]
	return r, ok
}

// Replicas returns the number of replicas on this store.
func (s *Store) Replicas() int { return len(s.replicas) }

// ApplyErrors sums failed command applications across replicas; tests
// assert zero.
func (s *Store) ApplyErrors() int {
	n := 0
	for _, r := range s.replicas {
		n += r.applyErrors
	}
	return n
}

// handleMessage dispatches network traffic: Raft envelopes go straight to
// the replica's state machine; RPC requests are evaluated in a fresh
// process because evaluation may block on latches, locks, or replication.
func (s *Store) handleMessage(m simnet.Message) {
	switch payload := m.Payload.(type) {
	case RaftEnvelope:
		if r, ok := s.replicas[payload.RangeID]; ok {
			r.raft.Step(payload.Msg.(raft.Message))
		}
	case livenessPing:
		if s.liveness != nil {
			s.liveness.Heartbeat(m.From, payload.Expiration)
			s.Net.Send(s.NodeID, m.From, livenessAck{Epoch: s.liveness.Epoch(m.From)})
		}
	case livenessAck:
		// A peer confirmed our record: we are provably connected, and
		// payload.Epoch is the epoch our leases must be bound to.
		s.lastAck = s.Sim.Now()
		s.ackEpoch = payload.Epoch
	case *simnet.RPCRequest:
		batch, ok := payload.Payload.(BatchRequest)
		if !ok {
			payload.Reply(Response{Err: fmt.Errorf("kv: unexpected RPC payload %T", payload.Payload)})
			return
		}
		r, ok := s.replicas[batch.RangeID]
		if !ok {
			if batch.Reqs != nil {
				resps := make([]Response, len(batch.Reqs))
				for i := range resps {
					resps[i] = Response{Err: &RangeKeyMismatchError{}}
				}
				payload.Reply(BatchResponse{Resps: resps})
				return
			}
			payload.Reply(Response{Err: &RangeKeyMismatchError{}})
			return
		}
		// Static proc name: formatting "n%d/r%d/eval" per RPC was a top
		// allocation site, and proc names are purely cosmetic.
		s.Sim.Spawn("kv/eval", func(p *sim.Proc) {
			sp := s.Obs.StartSpan("replica.eval", batch.Trace)
			if batch.Reqs != nil {
				if sp != nil {
					sp.SetTagInt("node", int64(s.NodeID)).
						SetTagInt("range", int64(batch.RangeID)).
						SetTag("req", reqTypeName(batch.Reqs[0])).
						SetTagInt("reqs", int64(len(batch.Reqs)))
					obs.SetProcSpan(p, sp)
				}
				resps := r.evaluateBatch(p, batch.Reqs)
				sp.Finish()
				payload.Reply(BatchResponse{Resps: resps})
				return
			}
			if sp != nil {
				sp.SetTagInt("node", int64(s.NodeID)).
					SetTagInt("range", int64(batch.RangeID)).
					SetTag("req", reqTypeName(batch.Req))
				obs.SetProcSpan(p, sp)
			}
			resp := r.evaluate(p, batch.Req)
			if sp != nil && resp.Err != nil {
				sp.SetError(resp.Err)
			}
			sp.Finish()
			payload.Reply(resp)
		})
	}
}

// StartLiveness registers this node in the shared liveness registry and
// starts its heartbeat loop: every LivenessHeartbeatInterval the store pings
// all peers over the network; each delivered ping renews this node's record,
// and each ack renews this node's confidence in its own record. Crashes and
// partitions stop the pings, so the record expires after LivenessTTL and the
// node becomes eligible for an epoch bump. Returns a stop function.
func (s *Store) StartLiveness(nl *NodeLiveness) (stop func()) {
	s.liveness = nl
	nl.Register(s.NodeID)
	s.lastAck = s.Sim.Now()
	s.ackEpoch = nl.Epoch(s.NodeID)
	if s.Disk != nil {
		s.persistNodeMeta(s.ackEpoch)
	}
	return s.Sim.Ticker(LivenessHeartbeatInterval, func() {
		exp := s.Sim.Now().Add(LivenessTTL)
		for _, peer := range nl.Nodes() {
			if peer == s.NodeID {
				continue
			}
			s.Net.Send(s.NodeID, peer, livenessPing{Expiration: exp})
		}
	})
}

// Liveness returns the shared liveness registry (nil if not started).
func (s *Store) Liveness() *NodeLiveness { return s.liveness }

// SelfLive reports whether this node believes its own liveness record is
// current: a peer acked a heartbeat within the TTL. A node cut off from all
// peers loses this and must stop serving as a leaseholder, since others may
// have bumped its epoch. Single-node liveness domains are trivially live.
func (s *Store) SelfLive() bool {
	if s.liveness == nil || len(s.liveness.Nodes()) <= 1 {
		return true
	}
	return s.Sim.Now() <= s.lastAck.Add(LivenessTTL)
}

// CurrentEpoch is the epoch of this node's record as last confirmed by a
// peer; leases this store acquires are bound to it.
func (s *Store) CurrentEpoch() int64 {
	if s.liveness == nil {
		return 0
	}
	return s.ackEpoch
}

// raftTransport adapts the network for one range's Raft node.
type raftTransport struct {
	store   *Store
	rangeID RangeID
}

func (t *raftTransport) Send(to simnet.NodeID, msg raft.Message) {
	t.store.Net.Send(t.store.NodeID, to, RaftEnvelope{RangeID: t.rangeID, Msg: msg})
}

// CreateReplica instantiates the local replica of a range. maxOffset sizes
// the closed-timestamp lead for ClosedTSLead ranges.
func (s *Store) CreateReplica(desc *RangeDescriptor, maxOffset sim.Duration) *Replica {
	if _, ok := s.replicas[desc.RangeID]; ok {
		panic(fmt.Sprintf("kv: replica of r%d already on n%d", desc.RangeID, s.NodeID))
	}
	r := s.buildReplica(desc, maxOffset)
	s.replicas[desc.RangeID] = r
	if s.Disk != nil {
		// Seed the durable pair before the replica can make any promise:
		// an empty checkpoint at log position zero plus the manifest entry.
		s.writeCheckpointAt(r, 0, 0)
		s.persistManifest()
	}
	r.raft.Start()
	return r
}

// buildReplica constructs a replica and its Raft node without registering
// or starting them, so recovery can prime engine and log state first.
func (s *Store) buildReplica(desc *RangeDescriptor, maxOffset sim.Duration) *Replica {
	r := &Replica{
		store:         s,
		desc:          desc.Clone(),
		engine:        mvcc.NewEngine(s.engineSeed + int64(desc.RangeID)),
		tscache:       NewTimestampCache(hlc.Timestamp{}),
		latches:       newLatchManager(s.Sim),
		intentWaiters: map[string]*sim.Cond{},
		lockTable:     map[string]mvcc.TxnID{},
		maxOffset:     maxOffset,
		leaseEpoch:    s.CurrentEpoch(),
	}
	r.closedAdvanced = sim.NewCond(s.Sim)
	r.closed = closedTracker{policy: desc.Policy, lag: s.CloseLag}
	if desc.Policy == ClosedTSLead {
		r.closed.lead = LeadTime(s.Topo, desc.Leaseholder, desc.Voters, desc.NonVoters, s.Clock.MaxOffset())
	}
	rcfg := raft.Config{
		ID:               s.NodeID,
		Voters:           desc.Voters,
		Learners:         desc.NonVoters,
		Sim:              s.Sim,
		Transport:        &raftTransport{store: s, rangeID: desc.RangeID},
		Apply:            r.apply,
		HeartbeatPayload: r.heartbeatPayload,
		OnHeartbeat:      r.onHeartbeat,
		OnLeaderChange:   r.onLeaderChange,
	}
	if desc.Policy == ClosedTSLead {
		// GLOBAL ranges publish closed-timestamp promises on the faster
		// side-transport cadence the lead target accounts for.
		rcfg.HeartbeatInterval = SideTransportInterval
	}
	// Snapshot hooks are wired unconditionally: besides catching lagging
	// replicas up past a compacted log, they initialize replicas added by
	// relocation, whose engines must receive state (bulk loads, merged-in
	// data) the raft log never carried.
	rcfg.Snapshot = r.snapshotData
	rcfg.ApplySnapshot = r.applySnapshotData
	if s.Disk != nil {
		rcfg.Storage = &replicaStorage{wal: s.Disk.WAL(walName(desc.RangeID))}
	}
	r.raft = raft.NewNode(rcfg)
	return r
}

// StartGCLoop starts periodic MVCC garbage collection on every replica of
// this store: committed versions older than ttl are removed (at least the
// newest version of each key always survives). Stale reads older than the
// ttl become unservable, exactly as with CockroachDB's gc.ttlseconds.
// It returns a stop function.
func (s *Store) StartGCLoop(ttl sim.Duration) (stop func()) {
	interval := ttl / 2
	if interval <= 0 {
		interval = sim.Second
	}
	return s.Sim.Ticker(interval, func() {
		threshold := s.Clock.Now().Add(-ttl)
		for _, r := range s.replicas {
			s.GCCollected += int64(r.engine.GC(threshold))
		}
	})
}

// RemoveReplica tears down the local replica of a range.
func (s *Store) RemoveReplica(id RangeID) {
	if r, ok := s.replicas[id]; ok {
		r.raft.Stop()
		delete(s.replicas, id)
		if s.Disk != nil {
			s.Disk.RemoveWAL(walName(id))
			s.Disk.DeleteBlob(ckptName(id))
			s.persistManifest()
		}
	}
}

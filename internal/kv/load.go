package kv

import (
	"bytes"
	"math"
	"sort"

	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// loadSampleSize bounds the per-range reservoir of recently accessed keys
// used to pick load-weighted split points.
const loadSampleSize = 64

// ln2 converts between an exponentially-decayed counter value and a rate:
// at a steady request rate r with half-life H, the counter converges to
// C = r*H/ln2, so QPS = C*ln2/H.
var ln2 = math.Ln2

// rangeLoad is the decaying per-range traffic record.
type rangeLoad struct {
	count float64  // decayed request count
	last  sim.Time // time of the last decay

	// regions attributes decayed counts to the gateway region that issued
	// the requests, for lease/replica rebalancing decisions.
	regions map[simnet.Region]float64

	// samples is a bounded ring of recently touched keys; SplitKey picks
	// the median, approximating the key that halves the load.
	samples   []mvcc.Key
	sampleIdx int
}

// decayTo brings the counter forward to now, halving it once per half-life.
func (rl *rangeLoad) decayTo(now sim.Time, halfLife sim.Duration) {
	if now <= rl.last {
		return
	}
	f := math.Pow(0.5, float64(now-rl.last)/float64(halfLife))
	rl.count *= f
	for r := range rl.regions {
		rl.regions[r] *= f
	}
	rl.last = now
}

// RangeLoadTracker accumulates per-range request rates on the virtual
// clock using exponentially decaying counters, the same scheme CockroachDB
// uses for load-based splitting. All times come from the simulation, so
// identical seeds produce identical load profiles.
type RangeLoadTracker struct {
	Sim      *sim.Simulation
	HalfLife sim.Duration

	ranges map[RangeID]*rangeLoad
}

// NewRangeLoadTracker returns a tracker decaying with the given half-life.
func NewRangeLoadTracker(s *sim.Simulation, halfLife sim.Duration) *RangeLoadTracker {
	if halfLife <= 0 {
		halfLife = 30 * sim.Second
	}
	return &RangeLoadTracker{Sim: s, HalfLife: halfLife, ranges: map[RangeID]*rangeLoad{}}
}

func (t *RangeLoadTracker) load(id RangeID) *rangeLoad {
	rl := t.ranges[id]
	if rl == nil {
		rl = &rangeLoad{last: t.Sim.Now(), regions: map[simnet.Region]float64{}}
		t.ranges[id] = rl
	}
	return rl
}

// Record charges n requests against a range, attributed to the gateway
// region, sampling the first key of the batch for split-point selection.
func (t *RangeLoadTracker) Record(id RangeID, key mvcc.Key, region simnet.Region, n int) {
	if t == nil || n <= 0 {
		return
	}
	rl := t.load(id)
	rl.decayTo(t.Sim.Now(), t.HalfLife)
	rl.count += float64(n)
	rl.regions[region] += float64(n)
	k := append(mvcc.Key(nil), key...)
	if len(rl.samples) < loadSampleSize {
		rl.samples = append(rl.samples, k)
	} else {
		rl.samples[rl.sampleIdx] = k
	}
	rl.sampleIdx = (rl.sampleIdx + 1) % loadSampleSize
}

// QPS returns the current decayed request rate of a range in requests per
// second of virtual time.
func (t *RangeLoadTracker) QPS(id RangeID) float64 {
	if t == nil {
		return 0
	}
	rl := t.ranges[id]
	if rl == nil {
		return 0
	}
	rl.decayTo(t.Sim.Now(), t.HalfLife)
	return rl.count * ln2 / (float64(t.HalfLife) / float64(sim.Second))
}

// RegionShare is one region's fraction of a range's recent traffic.
type RegionShare struct {
	Region simnet.Region
	Share  float64
}

// RegionShares returns the per-region traffic distribution of a range,
// sorted by descending share (region name breaks ties, for determinism).
func (t *RangeLoadTracker) RegionShares(id RangeID) []RegionShare {
	if t == nil {
		return nil
	}
	rl := t.ranges[id]
	if rl == nil {
		return nil
	}
	rl.decayTo(t.Sim.Now(), t.HalfLife)
	total := 0.0
	for _, c := range rl.regions {
		total += c
	}
	if total <= 0 {
		return nil
	}
	out := make([]RegionShare, 0, len(rl.regions))
	for r, c := range rl.regions {
		out = append(out, RegionShare{Region: r, Share: c / total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// SplitKey returns the load-weighted split point for a range: the median of
// the sampled keys restricted to (start, end). It returns nil when the
// samples cannot produce a key strictly inside the range — e.g. when all
// traffic hits a single key, which splitting cannot spread.
func (t *RangeLoadTracker) SplitKey(id RangeID, start, end mvcc.Key) mvcc.Key {
	if t == nil {
		return nil
	}
	rl := t.ranges[id]
	if rl == nil {
		return nil
	}
	var in []mvcc.Key
	for _, k := range rl.samples {
		if bytes.Compare(k, start) <= 0 {
			continue
		}
		if end != nil && bytes.Compare(k, end) >= 0 {
			continue
		}
		in = append(in, k)
	}
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return bytes.Compare(in[i], in[j]) < 0 })
	return in[len(in)/2]
}

// Forget drops a range's accounting (after a merge removed it).
func (t *RangeLoadTracker) Forget(id RangeID) {
	if t != nil {
		delete(t.ranges, id)
	}
}

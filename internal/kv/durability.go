package kv

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/raft"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/storage"
)

// This file is the durability glue between a Store and its simulated Disk
// (internal/storage). Per range, the node keeps:
//
//   - a WAL "r<id>/raft" of walRecord frames: every Raft persist() call
//     appends one record carrying the hard state (term, vote) and the batch
//     of new log entries, then fsyncs before Raft acks its peers;
//   - a checkpoint blob "r<id>/ckpt": the applied MVCC engine contents plus
//     replica metadata (descriptor, closed/issued timestamps, lease epoch)
//     at a known applied index. Checkpoints let the WAL be truncated — at
//     checkpoint time the Raft log is compacted to the applied index and the
//     WAL is atomically rewritten to hold only the remaining tail.
//
// Node-wide blobs: "manifest" lists the ranges with replicas on this node,
// and "nodemeta" persists the liveness epoch so a restarted node can never
// resurrect a pre-crash epoch (and with it a fenced lease).
//
// Recovery (Store.Recover) reverses the pipeline: for each manifest range,
// load the checkpoint, parse the WAL (discarding a torn tail, failing loudly
// on mid-log corruption), drop entries at or below the checkpoint, and prime
// a fresh Raft node with the hard state and tail. Entries beyond the
// checkpoint are NOT applied directly — they re-commit through Raft once a
// leader emerges, so recovery can never apply an uncommitted suffix.

// DefaultCheckpointInterval is the cadence of the per-store checkpoint and
// Raft-log-truncation loop.
const DefaultCheckpointInterval = 5 * sim.Second

// walName and ckptName locate a range's durable state on the node's disk.
func walName(id RangeID) string  { return fmt.Sprintf("r%d/raft", id) }
func ckptName(id RangeID) string { return fmt.Sprintf("r%d/ckpt", id) }

// walRecord is one durable Raft persist batch.
type walRecord struct {
	HS      hardStateRec
	Entries []walEntryRec
}

// hardStateRec mirrors raft.HardState for the wire format.
type hardStateRec struct {
	Term uint64
	Vote simnet.NodeID
}

// walEntryRec is one Raft log entry in the WAL. Entry payloads are either
// nil (leader no-ops) or kv.Command values; gob cannot encode a nil
// interface, so the payload is a concrete *Command that is nil for no-ops.
type walEntryRec struct {
	Term  uint64
	Index uint64
	Cmd   *Command
	Conf  *raft.ConfChange
}

// checkpointRec is the atomically-written per-range checkpoint blob.
type checkpointRec struct {
	AppliedIndex uint64
	AppliedTerm  uint64
	Desc         RangeDescriptor
	Closed       hlc.Timestamp
	Issued       hlc.Timestamp
	LeaseEpoch   int64
	MaxOffset    sim.Duration
	Engine       []mvcc.SnapshotKey
}

// nodeMetaRec is the node-wide metadata blob.
type nodeMetaRec struct {
	Epoch int64
}

// rangeSnapshot is the in-memory snapshot a leader ships to a peer whose
// log tail was truncated away (raft MsgSnap payload). It never crosses a
// process boundary in the simulator, so it stays a Go value.
type rangeSnapshot struct {
	Desc   *RangeDescriptor
	Closed hlc.Timestamp
	Issued hlc.Timestamp
	Engine []mvcc.SnapshotKey
}

func gobEncode(v interface{}) []byte {
	// A fresh encoder per record keeps every frame self-describing and
	// byte-deterministic (no shared type-dictionary state across records).
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("kv: durability encode: %v", err))
	}
	return buf.Bytes()
}

func gobDecode(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

func toWALEntries(entries []raft.Entry) []walEntryRec {
	out := make([]walEntryRec, len(entries))
	for i, e := range entries {
		out[i] = walEntryRec{Term: e.Term, Index: e.Index, Conf: e.Conf}
		if e.Data != nil {
			cmd, ok := e.Data.(Command)
			if !ok {
				panic(fmt.Sprintf("kv: cannot persist entry payload %T", e.Data))
			}
			c := cmd
			out[i].Cmd = &c
		}
	}
	return out
}

func fromWALEntry(rec walEntryRec) raft.Entry {
	e := raft.Entry{Term: rec.Term, Index: rec.Index, Conf: rec.Conf}
	if rec.Cmd != nil {
		e.Data = *rec.Cmd
	}
	return e
}

// replicaStorage adapts one range's WAL to the raft.Storage interface.
type replicaStorage struct {
	wal *storage.WAL
}

func (rs *replicaStorage) Append(hs raft.HardState, entries []raft.Entry, done func()) {
	rs.wal.Append(gobEncode(walRecord{HS: hardStateRec(hs), Entries: toWALEntries(entries)}))
	rs.wal.Sync(done)
}

func (rs *replicaStorage) Compact(index, term uint64, tail []raft.Entry, hs raft.HardState) {
	// Log rotation: the WAL shrinks to a single record holding the current
	// hard state plus the post-checkpoint tail.
	rs.wal.ResetDurable([][]byte{gobEncode(walRecord{HS: hardStateRec(hs), Entries: toWALEntries(tail)})})
}

func (rs *replicaStorage) Reset(index, term uint64, hs raft.HardState) {
	rs.wal.ResetDurable([][]byte{gobEncode(walRecord{HS: hardStateRec(hs)})})
}

// replayRaftWAL folds parsed WAL records into the final hard state and log
// tail. Hard state is last-writer-wins. Entry batches replay in append
// order; a batch whose first index overlaps previously staged entries
// supersedes the overlapped suffix — that is how a leader-change truncation
// looks on disk, since Raft rewrites the conflicting suffix by re-appending.
func replayRaftWAL(payloads [][]byte) (raft.HardState, []raft.Entry, error) {
	var hs raft.HardState
	var entries []raft.Entry
	for i, p := range payloads {
		var rec walRecord
		if err := gobDecode(p, &rec); err != nil {
			return hs, nil, fmt.Errorf("kv: wal record %d: %w", i, err)
		}
		hs = raft.HardState(rec.HS)
		for _, er := range rec.Entries {
			for len(entries) > 0 && entries[len(entries)-1].Index >= er.Index {
				entries = entries[:len(entries)-1]
			}
			entries = append(entries, fromWALEntry(er))
		}
	}
	return hs, entries, nil
}

// --- Store-side checkpointing ---

func (s *Store) sortedRangeIDs() []RangeID {
	ids := make([]RangeID, 0, len(s.replicas))
	for id := range s.replicas {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// writeCheckpoint persists a replica's applied state at its current applied
// index.
func (s *Store) writeCheckpoint(r *Replica) {
	s.writeCheckpointAt(r, r.raft.Applied(), r.raft.AppliedTerm())
}

// writeCheckpointAt persists a replica's applied state, declaring it current
// as of the given log position. The blob write is atomic (temp + rename), so
// a crash between checkpoint and WAL truncation leaves a recoverable pair:
// the WAL simply still holds entries at or below the checkpoint, which
// recovery filters out.
func (s *Store) writeCheckpointAt(r *Replica, index, term uint64) {
	rec := checkpointRec{
		AppliedIndex: index,
		AppliedTerm:  term,
		Desc:         *r.desc.Clone(),
		Closed:       r.closed.closed,
		Issued:       r.closed.issued,
		LeaseEpoch:   r.leaseEpoch,
		MaxOffset:    r.maxOffset,
		Engine:       r.engine.Snapshot(),
	}
	s.Disk.PutBlob(ckptName(rec.Desc.RangeID), gobEncode(rec))
}

// persistManifest records which ranges have replicas here.
func (s *Store) persistManifest() {
	s.Disk.PutBlob("manifest", gobEncode(s.sortedRangeIDs()))
}

// persistNodeMeta records the node's liveness epoch.
func (s *Store) persistNodeMeta(epoch int64) {
	s.Disk.PutBlob("nodemeta", gobEncode(nodeMetaRec{Epoch: epoch}))
}

// CheckpointNow checkpoints every replica on this store, then truncates
// their Raft logs up to the checkpointed indexes. All engines snapshot
// before any log shrinks, and within one scheduler step: writes a replica
// forwarded into a sibling's engine during a split are therefore captured by
// the sibling's checkpoint before the forwarding replica's log entry can be
// truncated away.
func (s *Store) CheckpointNow() {
	if s.Disk == nil {
		return
	}
	ids := s.sortedRangeIDs()
	for _, id := range ids {
		s.writeCheckpoint(s.replicas[id])
	}
	for _, id := range ids {
		r := s.replicas[id]
		r.raft.Compact(r.raft.Applied())
	}
}

// StartCheckpoints begins the periodic checkpoint/truncation loop. The loop
// stops on Crash and resumes automatically after Recover.
func (s *Store) StartCheckpoints(interval sim.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultCheckpointInterval
	}
	s.ckptInterval = interval
	s.startCkptTicker()
	return func() {
		if s.ckptStop != nil {
			s.ckptStop()
			s.ckptStop = nil
		}
		s.ckptInterval = 0
	}
}

func (s *Store) startCkptTicker() {
	s.ckptStop = s.Sim.Ticker(s.ckptInterval, func() { s.CheckpointNow() })
}

// --- Crash and recovery ---

// Crash wipes the node's volatile state, exactly as power loss would: every
// replica (engine, tscache, latches, unapplied Raft state) is discarded, the
// checkpoint loop dies with the process, and the disk loses its un-fsynced
// WAL tails. The network handler and liveness ticker survive as objects but
// are inert while the node is partitioned off by simnet.CrashNode; Recover
// rebuilds the node from the disk alone.
func (s *Store) Crash() {
	if s.ckptStop != nil {
		s.ckptStop()
		s.ckptStop = nil
	}
	for _, id := range s.sortedRangeIDs() {
		s.replicas[id].raft.Stop()
	}
	s.replicas = map[RangeID]*Replica{}
	s.lastAck = 0
	s.ackEpoch = 0
	if s.Disk != nil {
		s.Disk.Crash()
	}
}

// RecoveryStats summarizes one node restart from disk.
type RecoveryStats struct {
	Ranges          int
	ReplayedEntries int
	WALBytes        int
	// Duration is the virtual time the restart charged on the clock.
	Duration sim.Duration
}

// recoveryDuration models restart cost deterministically: process boot plus
// per-range checkpoint loading plus per-entry replay plus WAL scan
// bandwidth. Being a pure function of recovered state, it keeps same-seed
// runs byte-identical.
func recoveryDuration(st RecoveryStats) sim.Duration {
	return 10*sim.Millisecond +
		sim.Duration(st.Ranges)*2*sim.Millisecond +
		sim.Duration(st.ReplayedEntries)*100*sim.Microsecond +
		sim.Duration(st.WALBytes/1024)*20*sim.Microsecond
}

// Recover boots the node from its disk: every manifest range is rebuilt
// from its checkpoint plus the WAL tail, the liveness epoch is bumped past
// the persisted one (fencing any pre-crash lease), and the restart cost is
// charged on the virtual clock before the method returns. The caller heals
// the network afterwards — recovery happens while the node is still
// unreachable, so no traffic observes a half-recovered store.
func (s *Store) Recover(p *sim.Proc) (RecoveryStats, error) {
	var stats RecoveryStats
	if s.Disk == nil {
		return stats, fmt.Errorf("kv: node n%d has no disk to recover from", s.NodeID)
	}
	if len(s.replicas) != 0 {
		return stats, fmt.Errorf("kv: node n%d recovering over %d live replicas", s.NodeID, len(s.replicas))
	}
	var ids []RangeID
	if b, ok := s.Disk.GetBlob("manifest"); ok {
		if err := gobDecode(b, &ids); err != nil {
			return stats, fmt.Errorf("kv: manifest: %w", err)
		}
	}
	for _, rid := range ids {
		b, ok := s.Disk.GetBlob(ckptName(rid))
		if !ok {
			return stats, fmt.Errorf("kv: r%d in manifest but checkpoint missing", rid)
		}
		var ckpt checkpointRec
		if err := gobDecode(b, &ckpt); err != nil {
			return stats, fmt.Errorf("kv: r%d checkpoint: %w", rid, err)
		}
		wal := s.Disk.WAL(walName(rid))
		payloads, err := wal.Records() // truncates a torn tail; *ErrCorrupt on bit rot
		if err != nil {
			return stats, fmt.Errorf("kv: r%d: %w", rid, err)
		}
		stats.WALBytes += wal.Size()
		hs, entries, err := replayRaftWAL(payloads)
		if err != nil {
			return stats, fmt.Errorf("kv: r%d: %w", rid, err)
		}
		// Entries at or below the checkpoint are already reflected in the
		// engine snapshot; only the tail beyond it is live log.
		tail := entries[:0:0]
		for _, e := range entries {
			if e.Index > ckpt.AppliedIndex {
				tail = append(tail, e)
			}
		}
		if len(tail) > 0 && tail[0].Index != ckpt.AppliedIndex+1 {
			return stats, fmt.Errorf("kv: r%d: wal gap: checkpoint at %d, first tail entry %d",
				rid, ckpt.AppliedIndex, tail[0].Index)
		}
		s.recoverReplica(ckpt, hs, tail)
		stats.Ranges++
		stats.ReplayedEntries += len(tail)
	}
	// Fence the past: bump the liveness epoch past the persisted one so no
	// lease bound to a pre-crash epoch can ever be considered valid again,
	// and persist the bump before serving anything.
	if s.liveness != nil {
		var meta nodeMetaRec
		if b, ok := s.Disk.GetBlob("nodemeta"); ok {
			if err := gobDecode(b, &meta); err != nil {
				return stats, fmt.Errorf("kv: nodemeta: %w", err)
			}
		}
		s.persistNodeMeta(s.liveness.SelfRestart(s.NodeID, meta.Epoch))
	}
	// The node must not believe it is live until a peer acks a fresh
	// heartbeat under the new epoch.
	s.lastAck = 0
	s.ackEpoch = 0
	stats.Duration = recoveryDuration(stats)
	p.Sleep(stats.Duration)
	m := s.Disk.Metrics()
	m.Counter("recovery.replay.entries").Add(int64(stats.ReplayedEntries))
	m.Histogram("recovery.duration").RecordDuration(stats.Duration)
	if s.ckptInterval > 0 {
		s.startCkptTicker()
	}
	return stats, nil
}

// recoverReplica rebuilds one replica from its durable state. The Raft node
// is primed with commit = applied = the checkpoint index even if the tail
// holds committed entries; they re-commit through the normal Raft flow, so
// recovery never applies a suffix the cluster may have truncated.
func (s *Store) recoverReplica(ckpt checkpointRec, hs raft.HardState, tail []raft.Entry) *Replica {
	desc := ckpt.Desc.Clone()
	r := s.buildReplica(desc, ckpt.MaxOffset)
	r.engine.LoadSnapshot(ckpt.Engine)
	r.closed.advance(ckpt.Closed)
	r.closed.issued = ckpt.Issued
	r.leaseEpoch = ckpt.LeaseEpoch
	// The recovered node no longer remembers pre-crash reads: ratchet the
	// tscache low-water past restart time plus the clock uncertainty so a
	// recovered leaseholder cannot permit a write under a forgotten read.
	r.tscache.SetLowWater(s.Clock.Now().Add(s.Clock.MaxOffset()))
	r.raft.Restore(hs, ckpt.AppliedIndex, ckpt.AppliedTerm, tail)
	s.replicas[desc.RangeID] = r
	r.raft.Start()
	return r
}

// snapshotData packages this replica's applied state for a lagging peer
// whose needed log prefix was truncated (raft Config.Snapshot hook; the
// leader calls it at its applied index).
func (r *Replica) snapshotData() interface{} {
	return &rangeSnapshot{
		Desc:   r.desc.Clone(),
		Closed: r.closed.closed,
		Issued: r.closed.issued,
		Engine: r.engine.Snapshot(),
	}
}

// applySnapshotData installs a leader snapshot (raft Config.ApplySnapshot
// hook): the engine is rebuilt from the snapshot contents and the follower's
// durable checkpoint advances to the snapshot position, after which Raft
// resets its log and the WAL.
func (r *Replica) applySnapshotData(data interface{}, index, term uint64) {
	snap := data.(*rangeSnapshot)
	s := r.store
	r.engine = mvcc.NewEngine(s.engineSeed + int64(r.desc.RangeID))
	r.engine.LoadSnapshot(snap.Engine)
	r.setDesc(snap.Desc.Clone())
	r.closed.advance(snap.Closed)
	if r.closed.issued.Less(snap.Issued) {
		r.closed.issued = snap.Issued
	}
	r.tscache.SetLowWater(snap.Closed)
	if s.Disk != nil {
		s.writeCheckpointAt(r, index, term)
	}
}

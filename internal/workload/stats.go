// Package workload implements the benchmark workloads of the paper's
// evaluation: YCSB variants A/B/D with zipf/uniform/latest key choosers
// (§7.1–§7.3), TPC-C (§7.4), and the movr application schema (§7.5), plus
// the latency recorders the harness uses to regenerate figures.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"mrdb/internal/sim"
)

// LatencyRecorder accumulates latency samples for one operation class.
type LatencyRecorder struct {
	Name    string
	samples []sim.Duration
	Errors  int
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder(name string) *LatencyRecorder {
	return &LatencyRecorder{Name: name}
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d sim.Duration) { r.samples = append(r.samples, d) }

// RecordError counts a failed operation.
func (r *LatencyRecorder) RecordError() { r.Errors++ }

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Samples returns the recorded virtual-time samples in recording order.
// The metamorphic tracing tests compare these slices across runs.
func (r *LatencyRecorder) Samples() []sim.Duration {
	return append([]sim.Duration(nil), r.samples...)
}

// Merge folds other's samples and errors into r.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	r.samples = append(r.samples, other.samples...)
	r.Errors += other.Errors
}

// sorted returns samples ascending (cached sorting is unnecessary at our
// sample counts).
func (r *LatencyRecorder) sorted() []sim.Duration {
	out := append([]sim.Duration(nil), r.samples...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the q-th percentile (0 <= q <= 100).
func (r *LatencyRecorder) Percentile(q float64) sim.Duration {
	s := r.sorted()
	if len(s) == 0 {
		return 0
	}
	idx := int(math.Ceil(q/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Mean returns the average latency.
func (r *LatencyRecorder) Mean() sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var total sim.Duration
	for _, s := range r.samples {
		total += s
	}
	return total / sim.Duration(len(r.samples))
}

// Max returns the maximum sample.
func (r *LatencyRecorder) Max() sim.Duration {
	var m sim.Duration
	for _, s := range r.samples {
		if s > m {
			m = s
		}
	}
	return m
}

// BoxStats summarizes the distribution the way the paper's Fig. 3 box
// plots do: quartiles plus 1.5×IQR whiskers.
type BoxStats struct {
	P25, P50, P75        sim.Duration
	WhiskerLo, WhiskerHi sim.Duration
}

// Box computes box-plot statistics.
func (r *LatencyRecorder) Box() BoxStats {
	b := BoxStats{
		P25: r.Percentile(25),
		P50: r.Percentile(50),
		P75: r.Percentile(75),
	}
	iqr := b.P75 - b.P25
	lo := b.P25 - 3*iqr/2
	hi := b.P75 + 3*iqr/2
	s := r.sorted()
	if len(s) == 0 {
		return b
	}
	b.WhiskerLo, b.WhiskerHi = b.P50, b.P50
	for _, v := range s {
		if v >= lo {
			b.WhiskerLo = v
			break
		}
	}
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] <= hi {
			b.WhiskerHi = s[i]
			break
		}
	}
	return b
}

// CDF returns (latency, cumulative fraction) points for plotting, at the
// given resolution.
func (r *LatencyRecorder) CDF(points int) [][2]float64 {
	s := r.sorted()
	if len(s) == 0 {
		return nil
	}
	if points <= 0 {
		points = 100
	}
	var out [][2]float64
	for i := 1; i <= points; i++ {
		frac := float64(i) / float64(points)
		idx := int(frac*float64(len(s))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, [2]float64{float64(s[idx]) / float64(sim.Millisecond), frac})
	}
	return out
}

// String renders a one-line summary.
func (r *LatencyRecorder) String() string {
	return fmt.Sprintf("%-28s n=%-7d p50=%-10v p90=%-10v p99=%-10v max=%-10v errs=%d",
		r.Name, r.Count(), r.Percentile(50), r.Percentile(90), r.Percentile(99), r.Max(), r.Errors)
}

// Table renders recorders as an aligned text table.
func Table(recs ...*LatencyRecorder) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %10s %10s %10s %10s %10s %6s\n",
		"operation", "count", "p25", "p50", "p75", "p90", "p99", "errs")
	for _, r := range recs {
		fmt.Fprintf(&b, "%-28s %8d %10v %10v %10v %10v %10v %6d\n",
			r.Name, r.Count(), r.Percentile(25), r.Percentile(50), r.Percentile(75),
			r.Percentile(90), r.Percentile(99), r.Errors)
	}
	return b.String()
}

// --- Key choosers ---

// KeyChooser selects keys for YCSB operations.
type KeyChooser interface {
	// Next returns a key in [0, n).
	Next(rng *rand.Rand) int
}

// UniformChooser picks uniformly from n keys.
type UniformChooser struct{ N int }

// Next implements KeyChooser.
func (u UniformChooser) Next(rng *rand.Rand) int { return rng.Intn(u.N) }

// ZipfChooser picks keys with a zipfian distribution (YCSB default
// theta=0.99), favoring low-numbered keys; used by YCSB-A/B (§7.1.1).
type ZipfChooser struct {
	n    int
	zipf *rand.Zipf
}

// NewZipfChooser builds a zipf chooser over n keys using the given rng for
// construction (the distribution object is deterministic).
func NewZipfChooser(n int, rng *rand.Rand) *ZipfChooser {
	return &ZipfChooser{n: n, zipf: rand.NewZipf(rng, 1.1, 1, uint64(n-1))}
}

// Next implements KeyChooser.
func (z *ZipfChooser) Next(rng *rand.Rand) int { return int(z.zipf.Uint64()) }

// LatestChooser favors recently inserted keys (YCSB-D).
type LatestChooser struct {
	// Insert tracking: the caller bumps Max as inserts happen.
	Max  int
	zipf *rand.Zipf
}

// NewLatestChooser builds a latest-distribution chooser.
func NewLatestChooser(initial int, rng *rand.Rand) *LatestChooser {
	return &LatestChooser{Max: initial, zipf: rand.NewZipf(rng, 1.1, 1, 1<<20)}
}

// Next implements KeyChooser.
func (l *LatestChooser) Next(rng *rand.Rand) int {
	off := int(l.zipf.Uint64())
	k := l.Max - 1 - off
	if k < 0 {
		k = 0
	}
	return k
}

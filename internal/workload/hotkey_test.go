package workload

import (
	"fmt"
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/sql"
)

// TestGlobalHotKeyBounded is a regression test for the paper's central
// claim (§6.2): contended writes to one GLOBAL key commit-wait
// concurrently, so each blind write stays bounded near
// L_raft + L_replicate + max_clock_offset instead of queueing for seconds.
func TestGlobalHotKeyBounded(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 9, Regions: cluster.PaperRegions(), MaxOffset: 250 * sim.Millisecond})
	catalog := sql.NewCatalog()
	y := NewYCSB(c, catalog, YCSBConfig{Variant: YCSBA, RecordCount: 10, Distribution: "uniform", OpsPerClient: 1, ClientsPerRegion: 1})
	var worst sim.Duration
	var runErr error
	c.Sim.Spawn("bench", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := y.SetupSchema(p, "LOCALITY GLOBAL"); err != nil {
			runErr = err
			return
		}
		p.Sleep(2 * sim.Second)
		if err := y.Load(p); err != nil {
			runErr = err
			return
		}
		p.Sleep(2 * sim.Second)
		wg := sim.NewWaitGroup(c.Sim)
		for i := 0; i < 10; i++ {
			i := i
			region := c.Regions()[i%len(c.Regions())]
			wg.Add(1)
			c.Sim.Spawn("w", func(wp *sim.Proc) {
				defer wg.Done()
				s := sql.NewSession(c, catalog, c.GatewayFor(region))
				s.Database = "ycsb"
				for op := 0; op < 5; op++ {
					start := wp.Now()
					_, err := s.ExecStmt(wp, &sql.Insert{
						Table:   "usertable",
						Columns: []string{"ycsb_key", "field0"},
						Rows: [][]sql.Expr{{
							&sql.Lit{Val: keyName(0)},
							&sql.Lit{Val: fmt.Sprintf("w%d-%d", i, op)},
						}},
						Upsert: true,
					})
					if err != nil {
						t.Errorf("writer %d op %d: %v", i, op, err)
						return
					}
					if d := wp.Now().Sub(start); d > worst {
						worst = d
					}
				}
			})
		}
		wg.Wait(p)
	})
	c.Sim.RunFor(60 * 60 * sim.Second)
	if runErr != nil {
		t.Fatal(runErr)
	}
	// Bound: lead (~500ms) + gateway RTT (<=200ms) + latch queueing.
	if worst > 1200*sim.Millisecond {
		t.Fatalf("worst contended global write %v; commit waits are not concurrent", worst)
	}
}

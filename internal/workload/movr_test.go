package workload

import (
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/sql"
)

// TestMovrWorkload runs the ride-sharing mix and checks the locality
// profile: browsing (GLOBAL reads) and ride transactions stay local at
// p50 from every region.
func TestMovrWorkload(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 51, Regions: cluster.ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	catalog := sql.NewCatalog()
	m := NewMovr(c, catalog)
	var runErr error
	c.Sim.Spawn("movr", func(p *sim.Proc) {
		defer c.Sim.Stop()
		if err := m.Setup(p); err != nil {
			runErr = err
			return
		}
		p.Sleep(2 * sim.Second)
		if err := m.Load(p); err != nil {
			runErr = err
			return
		}
		p.Sleep(2 * sim.Second)
		if err := m.Run(p, 2, 20); err != nil {
			runErr = err
			return
		}
	})
	c.Sim.RunFor(60 * 60 * sim.Second)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
	if m.BrowseLat.Count() == 0 || m.RideLat.Count() == 0 {
		t.Fatalf("no samples: browse=%d ride=%d", m.BrowseLat.Count(), m.RideLat.Count())
	}
	if m.BrowseLat.Errors+m.RideLat.Errors+m.SignupLat.Errors > 0 {
		t.Fatalf("errors: %d/%d/%d", m.BrowseLat.Errors, m.RideLat.Errors, m.SignupLat.Errors)
	}
	// GLOBAL promo reads are local everywhere.
	if p50 := m.BrowseLat.Percentile(50); p50 > 5*sim.Millisecond {
		t.Errorf("browse p50 = %v, want local", p50)
	}
	// Ride transactions: local user read + local GLOBAL read + insert
	// (whose PK uniqueness check fans out, as the paper accepts for
	// auto-homed tables). The median still sits far below a full
	// cross-region transaction.
	if p50 := m.RideLat.Percentile(50); p50 > 500*sim.Millisecond {
		t.Errorf("ride p50 = %v", p50)
	}
	t.Logf("%s", Table(m.BrowseLat, m.RideLat, m.SignupLat))
}

package workload

import (
	"fmt"
	"sort"

	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// This file holds the dynamic-scenario workloads that exercise elastic
// scale: traffic whose shape changes over virtual time, so the load-based
// split/merge queue and the lease/replica rebalancer have something to
// chase. Two variants mirror the paper's motivating patterns:
//
//   - FollowTheSun rotates the dominant MovR region phase by phase, the way
//     a global application's diurnal peak walks westward (§1.1).
//   - MigratingHotspot concentrates most YCSB operations in a key window
//     that jumps between phases, forcing load-based splits to track it.
//
// Both record every operation into WindowedRecorders keyed by virtual-time
// window, so benchmarks can plot p50/p99 trajectories and assert that the
// latency shape re-converges after each dynamic event.

// WindowedRecorder buckets latency samples into fixed-width virtual-time
// windows. Windows are indexed by now/Width; empty windows simply have no
// entry.
type WindowedRecorder struct {
	// Width is the window width; zero defaults to 30s.
	Width   sim.Duration
	windows map[int64]*LatencyRecorder
}

// NewWindowedRecorder returns an empty recorder with the given window width.
func NewWindowedRecorder(width sim.Duration) *WindowedRecorder {
	if width <= 0 {
		width = 30 * sim.Second
	}
	return &WindowedRecorder{Width: width, windows: map[int64]*LatencyRecorder{}}
}

// Record adds one sample (or error) to the window containing now.
func (w *WindowedRecorder) Record(now sim.Time, lat sim.Duration, err error) {
	idx := int64(now) / int64(w.Width)
	rec, ok := w.windows[idx]
	if !ok {
		rec = NewLatencyRecorder(fmt.Sprintf("window/%d", idx))
		w.windows[idx] = rec
	}
	if err != nil {
		rec.RecordError()
	} else {
		rec.Record(lat)
	}
}

// Window returns the recorder for window idx, or nil when it saw no traffic.
func (w *WindowedRecorder) Window(idx int64) *LatencyRecorder { return w.windows[idx] }

// Indices returns the populated window indices in ascending order.
func (w *WindowedRecorder) Indices() []int64 {
	out := make([]int64, 0, len(w.windows))
	for idx := range w.windows {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IndexAt returns the window index containing t.
func (w *WindowedRecorder) IndexAt(t sim.Time) int64 { return int64(t) / int64(w.Width) }

// Between merges all samples recorded in [from, to) into one recorder.
func (w *WindowedRecorder) Between(from, to sim.Time) *LatencyRecorder {
	out := NewLatencyRecorder(fmt.Sprintf("window/%v-%v", from, to))
	for idx, rec := range w.windows {
		start := sim.Time(idx * int64(w.Width))
		if start >= from && start < to {
			out.Merge(rec)
		}
	}
	return out
}

// SetRegions restricts the MovR database to the given regions, even when
// the cluster topology has more. Benchmarks use this to create the database
// over a subset of regions and then ADD REGION mid-run while the extra
// nodes already exist in the topology. Must be called before Setup.
func (m *Movr) SetRegions(regions []simnet.Region) {
	m.regions = append([]simnet.Region(nil), regions...)
}

// SunPhase is one phase of a follow-the-sun run: Hot carries the bulk of
// the traffic for Duration of virtual time.
type SunPhase struct {
	Hot      simnet.Region
	Duration sim.Duration
}

// FollowTheSun drives MovR traffic whose dominant region rotates phase by
// phase. Within a phase the hot region runs HotClients closed-loop clients
// while every other database region runs ColdClients, so the per-range QPS
// mix the load queue observes genuinely shifts.
type FollowTheSun struct {
	M *Movr
	// HotClients / ColdClients are the closed-loop client counts for the
	// hot region and each other region (defaults 4 and 1).
	HotClients, ColdClients int
	// Think is an optional pause between operations.
	Think sim.Duration

	// Windows collects every operation; HotWindows only those issued from
	// the phase's hot region (the convergence signal benchmarks gate on).
	Windows    *WindowedRecorder
	HotWindows *WindowedRecorder

	// PhaseStarts records the virtual time each phase began, in order.
	PhaseStarts []sim.Time
}

// NewFollowTheSun wraps an already set-up MovR harness.
func NewFollowTheSun(m *Movr, windowWidth sim.Duration) *FollowTheSun {
	return &FollowTheSun{
		M:          m,
		HotClients: 4, ColdClients: 1,
		Windows:    NewWindowedRecorder(windowWidth),
		HotWindows: NewWindowedRecorder(windowWidth),
	}
}

// Run executes the phases sequentially. Each phase spawns its clients in
// region order (deterministic) and waits for all of them at the phase
// boundary, so phases never overlap.
func (f *FollowTheSun) Run(p *sim.Proc, phases []SunPhase) error {
	var firstErr error
	for pi, ph := range phases {
		f.PhaseStarts = append(f.PhaseStarts, p.Now())
		deadline := p.Now().Add(ph.Duration)
		wg := sim.NewWaitGroup(f.M.Cluster.Sim)
		for ri, region := range f.M.regions {
			n := f.ColdClients
			if region == ph.Hot {
				n = f.HotClients
			}
			for cl := 0; cl < n; cl++ {
				ri, region := ri, region
				hot := region == ph.Hot
				wg.Add(1)
				f.M.Cluster.Sim.Spawn(fmt.Sprintf("sun/%d/%s/%d", pi, region, cl), func(wp *sim.Proc) {
					defer wg.Done()
					if err := f.client(wp, ri, region, hot, deadline); err != nil && firstErr == nil {
						firstErr = err
					}
				})
			}
		}
		wg.Wait(p)
	}
	return firstErr
}

// client runs the MovR op mix in a closed loop until the phase deadline.
func (f *FollowTheSun) client(wp *sim.Proc, ri int, region simnet.Region, hot bool, deadline sim.Time) error {
	m := f.M
	s := m.session(region)
	ps := m.prepare(s)
	rng := wp.Rand()
	var firstErr error
	for wp.Now() < deadline {
		roll := rng.Float64()
		start := wp.Now()
		var err error
		switch {
		case roll < 0.70:
			err = m.browse(wp, s, ps, rng.Intn(m.Promos))
			record(m.BrowseLat, wp.Now().Sub(start), err)
		case roll < 0.95:
			userID := ri*m.UsersPerRegion + 1 + rng.Intn(m.UsersPerRegion)
			err = m.startRide(wp, s, ps, userID, rng.Intn(m.Promos))
			record(m.RideLat, wp.Now().Sub(start), err)
		default:
			err = m.signup(wp, s, ps)
			record(m.SignupLat, wp.Now().Sub(start), err)
		}
		lat := wp.Now().Sub(start)
		f.Windows.Record(start, lat, err)
		if hot {
			f.HotWindows.Record(start, lat, err)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if f.Think > 0 {
			wp.Sleep(f.Think)
		}
	}
	return firstErr
}

// HotspotPhase is one phase of a migrating-hotspot run: the hot key window
// starts at key Start for Duration of virtual time.
type HotspotPhase struct {
	Start    int
	Duration sim.Duration
}

// MigratingHotspot drives YCSB-style reads/updates where HotFrac of the
// operations land in a WindowKeys-wide key window that jumps between
// phases. Load-based splitting must carve the hot window out of its range
// (and merging should eventually reclaim the cold remnants).
type MigratingHotspot struct {
	Y *YCSB
	// HotFrac is the fraction of ops aimed at the hot window (default 0.9).
	HotFrac float64
	// WindowKeys is the hot window width in keys (default RecordCount/10).
	WindowKeys int
	// ClientsPerRegion closed-loop clients run at each region's gateway
	// (default 2).
	ClientsPerRegion int
	// WriteFrac is the update fraction (default 0.05, YCSB-B's mix).
	WriteFrac float64
	// Think is an optional pause between operations.
	Think sim.Duration
	// Regions restricts the client regions (default: all cluster regions).
	Regions []simnet.Region

	// Windows collects every operation across all regions.
	Windows *WindowedRecorder

	// PhaseStarts records the virtual time each phase began, in order.
	PhaseStarts []sim.Time
}

// NewMigratingHotspot wraps an already set-up YCSB harness.
func NewMigratingHotspot(y *YCSB, windowWidth sim.Duration) *MigratingHotspot {
	return &MigratingHotspot{
		Y:       y,
		HotFrac: 0.9, WindowKeys: y.Cfg.RecordCount / 10, ClientsPerRegion: 2,
		WriteFrac: 0.05,
		Windows:   NewWindowedRecorder(windowWidth),
	}
}

// Run executes the phases sequentially, spawning clients in region order
// each phase and joining them at the phase boundary.
func (h *MigratingHotspot) Run(p *sim.Proc, phases []HotspotPhase) error {
	if h.WindowKeys <= 0 {
		h.WindowKeys = 1
	}
	regions := h.Regions
	if len(regions) == 0 {
		regions = h.Y.Cluster.Regions()
	}
	var firstErr error
	for pi, ph := range phases {
		h.PhaseStarts = append(h.PhaseStarts, p.Now())
		deadline := p.Now().Add(ph.Duration)
		wg := sim.NewWaitGroup(h.Y.Cluster.Sim)
		for _, region := range regions {
			for cl := 0; cl < h.ClientsPerRegion; cl++ {
				region := region
				hotStart := ph.Start
				wg.Add(1)
				h.Y.Cluster.Sim.Spawn(fmt.Sprintf("hotspot/%d/%s/%d", pi, region, cl), func(wp *sim.Proc) {
					defer wg.Done()
					if err := h.client(wp, region, hotStart, deadline); err != nil && firstErr == nil {
						firstErr = err
					}
				})
			}
		}
		wg.Wait(p)
	}
	return firstErr
}

// client runs the read/update mix in a closed loop until the phase deadline.
func (h *MigratingHotspot) client(wp *sim.Proc, region simnet.Region, hotStart int, deadline sim.Time) error {
	y := h.Y
	s := y.Sessions[region]
	rng := wp.Rand()
	op := 0
	var firstErr error
	for wp.Now() < deadline {
		op++
		var key int
		if rng.Float64() < h.HotFrac {
			key = hotStart + rng.Intn(h.WindowKeys)
			if key >= y.Cfg.RecordCount {
				key = y.Cfg.RecordCount - 1
			}
		} else {
			key = rng.Intn(y.Cfg.RecordCount)
		}
		start := wp.Now()
		var err error
		if rng.Float64() < h.WriteFrac {
			err = y.doUpdate(wp, s, key, op)
		} else {
			err = y.doRead(wp, s, key)
		}
		h.Windows.Record(start, wp.Now().Sub(start), err)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if h.Think > 0 {
			wp.Sleep(h.Think)
		}
	}
	return firstErr
}

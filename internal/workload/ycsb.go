package workload

import (
	"fmt"
	"math/rand"

	"mrdb/internal/cluster"
	"mrdb/internal/hlc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
)

// YCSBVariant selects the operation mix.
type YCSBVariant int8

// YCSB variants used in the paper.
const (
	// YCSBA is 50% reads / 50% updates (used in §7.1 and §7.3 with a
	// zipf distribution).
	YCSBA YCSBVariant = iota
	// YCSBB is 95% reads / 5% updates (used in §7.2 with uniform keys).
	YCSBB
	// YCSBD is 95% reads / 5% inserts (used in §7.2.2).
	YCSBD
)

func (v YCSBVariant) String() string {
	switch v {
	case YCSBA:
		return "ycsb-a"
	case YCSBB:
		return "ycsb-b"
	case YCSBD:
		return "ycsb-d"
	}
	return "ycsb-?"
}

// YCSBConfig parameterizes a YCSB run.
type YCSBConfig struct {
	Variant YCSBVariant
	// Table is the target table name (created by Setup).
	Table string
	// RecordCount is the number of preloaded keys.
	RecordCount int
	// Distribution: "zipfian", "uniform" or "latest".
	Distribution string
	// OpsPerClient is the closed-loop operation count per client.
	OpsPerClient int
	// ClientsPerRegion spawns this many clients at each region's gateway.
	ClientsPerRegion int
	// LocalityOfAccess is the probability (0..1) that an operation
	// targets a key homed in the client's region (REGIONAL BY ROW runs,
	// §7.2). Zero means keys are chosen over the whole keyspace.
	LocalityOfAccess float64
	// SharedRemoteKeys, when true, directs all remote accesses at one
	// shared contended block (§7.2.3); otherwise clients use disjoint
	// remote blocks.
	SharedRemoteKeys bool
	// StaleReads serves reads with bounded staleness (§5.3.2) instead of
	// fresh reads.
	StaleReads bool
	// MaxStaleness is the staleness bound for StaleReads (default 30s).
	MaxStaleness sim.Duration
	// Rehoming enables auto-rehoming on the client sessions.
	Rehoming bool
	// DisableLOS turns off locality optimized search ("Unoptimized").
	DisableLOS bool
	// BaselineManual models the manually partitioned baseline (§7.2):
	// the application knows each key's region and adds it to every WHERE
	// clause, pinning the query to one partition.
	BaselineManual bool
	// SchemaSQL overrides the CREATE TABLE statement (e.g. for the
	// computed-region variant of §7.2.2).
	SchemaSQL string
	// SpannerCommitWait holds locks through commit wait instead of
	// releasing them concurrently (ablation of paper §6.2).
	SpannerCommitWait bool
	// DisableOnePC forces the two-phase commit path so writes leave
	// intents (ablations that study lock visibility).
	DisableOnePC bool
	// RegionPrefixedKeys prepends each key's home region to the key
	// itself, modeling applications whose primary keys determine
	// placement (the computed-region variant of §7.2.2).
	RegionPrefixedKeys bool
}

// YCSB drives the workload against a cluster.
type YCSB struct {
	Cfg      YCSBConfig
	Cluster  *cluster.Cluster
	Catalog  *sql.Catalog
	Sessions map[simnet.Region]*sql.Session

	// Recorders per (region, op) pair.
	ReadLat  map[simnet.Region]*LatencyRecorder
	WriteLat map[simnet.Region]*LatencyRecorder

	table   *sql.Table
	nextKey int
	// insertedRegion remembers the home region of keys inserted during
	// the run (YCSB-D with region-prefixed keys).
	insertedRegion map[int]simnet.Region
}

// NewYCSB builds the workload harness over an existing cluster.
func NewYCSB(c *cluster.Cluster, catalog *sql.Catalog, cfg YCSBConfig) *YCSB {
	if cfg.Table == "" {
		cfg.Table = "usertable"
	}
	if cfg.MaxStaleness == 0 {
		cfg.MaxStaleness = 30 * sim.Second
	}
	y := &YCSB{
		Cfg: cfg, Cluster: c, Catalog: catalog,
		Sessions:       map[simnet.Region]*sql.Session{},
		ReadLat:        map[simnet.Region]*LatencyRecorder{},
		WriteLat:       map[simnet.Region]*LatencyRecorder{},
		insertedRegion: map[int]simnet.Region{},
	}
	for _, r := range c.Regions() {
		s := sql.NewSession(c, catalog, c.GatewayFor(r))
		s.Database = "ycsb"
		s.AutoRehoming = cfg.Rehoming
		s.LocalityOptimizedSearch = !cfg.DisableLOS
		y.Sessions[r] = s
		y.ReadLat[r] = NewLatencyRecorder(fmt.Sprintf("read/%s", r))
		y.WriteLat[r] = NewLatencyRecorder(fmt.Sprintf("write/%s", r))
	}
	return y
}

// SetupSchema creates the database and table with the given locality
// clause (e.g. "LOCALITY GLOBAL", "LOCALITY REGIONAL BY ROW").
func (y *YCSB) SetupSchema(p *sim.Proc, localityClause string) error {
	regions := y.Cluster.Regions()
	s := y.Sessions[regions[0]]
	create := fmt.Sprintf(`CREATE DATABASE ycsb PRIMARY REGION "%s"`, regions[0])
	if len(regions) > 1 {
		create += " REGIONS "
		for i, r := range regions[1:] {
			if i > 0 {
				create += ", "
			}
			create += fmt.Sprintf("%q", string(r))
		}
	}
	if _, err := s.Exec(p, create); err != nil {
		return err
	}
	stmt := y.Cfg.SchemaSQL
	if stmt == "" {
		stmt = fmt.Sprintf(
			`CREATE TABLE %s (ycsb_key STRING PRIMARY KEY, field0 STRING) %s`,
			y.Cfg.Table, localityClause)
	}
	if _, err := s.Exec(p, stmt); err != nil {
		return err
	}
	t, ok := y.Catalog.Table("ycsb", y.Cfg.Table)
	if !ok {
		return fmt.Errorf("ycsb: table missing after create")
	}
	y.table = t
	return nil
}

// keyName formats key i.
func keyName(i int) string { return fmt.Sprintf("user%09d", i) }

// keyString formats key i, optionally with its home region prefix.
func (y *YCSB) keyString(i int) string {
	if !y.Cfg.RegionPrefixedKeys {
		return keyName(i)
	}
	region, ok := y.insertedRegion[i]
	if !ok {
		region = y.regionOfKey(i)
	}
	return fmt.Sprintf("%s/%s", region, keyName(i))
}

// regionOfKey maps a key to its home region under the blocked layout:
// key space divided into equal consecutive blocks, one per region.
func (y *YCSB) regionOfKey(i int) simnet.Region {
	regions := y.Cluster.Regions()
	block := y.Cfg.RecordCount / len(regions)
	idx := i / block
	if idx >= len(regions) {
		idx = len(regions) - 1
	}
	return regions[idx]
}

// Load bulk-loads RecordCount rows at a past timestamp. REGIONAL BY ROW
// tables get keys homed per the blocked layout.
func (y *YCSB) Load(p *sim.Proc) error {
	s := y.Sessions[y.Cluster.Regions()[0]]
	ts := hlc.Timestamp{WallTime: 1} // before all measurement traffic
	for i := 0; i < y.Cfg.RecordCount; i++ {
		vals := map[string]sql.Datum{
			"ycsb_key": y.keyString(i),
			"field0":   fmt.Sprintf("v%09d", i),
		}
		if y.table.IsPartitioned() {
			vals[sql.RegionColumnName] = string(y.regionOfKey(i))
		}
		if err := s.BulkLoadRow(y.table, vals, ts); err != nil {
			return err
		}
	}
	y.nextKey = y.Cfg.RecordCount
	return nil
}

// chooseKey picks a key for a client in the given region.
func (y *YCSB) chooseKey(rng *rand.Rand, region simnet.Region, regionIdx, clientIdx int, chooser KeyChooser) int {
	if y.Cfg.LocalityOfAccess <= 0 {
		return chooser.Next(rng)
	}
	regions := y.Cluster.Regions()
	block := y.Cfg.RecordCount / len(regions)
	local := rng.Float64() < y.Cfg.LocalityOfAccess
	if local {
		// A key homed in this client's region.
		return regionIdx*block + chooser.Next(rng)%block
	}
	if y.Cfg.SharedRemoteKeys {
		// §7.2.3: all remote accesses share one contended block — the
		// first block of the next region over.
		remote := (regionIdx + 1) % len(regions)
		return remote*block + chooser.Next(rng)%(block/10+1)
	}
	// Disjoint remote keys per client (§7.2.1).
	remote := (regionIdx + 1 + clientIdx%(len(regions)-1)) % len(regions)
	span := block / (y.Cfg.ClientsPerRegion + 1)
	if span == 0 {
		span = 1
	}
	base := remote*block + (clientIdx%y.Cfg.ClientsPerRegion)*span
	return base + chooser.Next(rng)%span
}

// Run spawns clients in every region and waits for completion. Each client
// is a closed loop issuing OpsPerClient operations.
func (y *YCSB) Run(p *sim.Proc) error {
	regions := y.Cluster.Regions()
	wg := sim.NewWaitGroup(y.Cluster.Sim)
	var firstErr error
	for ri, region := range regions {
		for ci := 0; ci < y.Cfg.ClientsPerRegion; ci++ {
			ri, ci, region := ri, ci, region
			wg.Add(1)
			y.Cluster.Sim.Spawn(fmt.Sprintf("ycsb/%s/%d", region, ci), func(cp *sim.Proc) {
				defer wg.Done()
				if err := y.client(cp, region, ri, ci); err != nil && firstErr == nil {
					firstErr = err
				}
			})
		}
	}
	wg.Wait(p)
	return firstErr
}

func (y *YCSB) client(p *sim.Proc, region simnet.Region, regionIdx, clientIdx int) error {
	// Each client gets its own session (so rehoming uses its gateway)
	// but clients in a region share the gateway node.
	s := sql.NewSession(y.Cluster, y.Catalog, y.Cluster.GatewayFor(region))
	s.Database = "ycsb"
	s.AutoRehoming = y.Cfg.Rehoming
	s.LocalityOptimizedSearch = !y.Cfg.DisableLOS
	s.Coord.SpannerCommitWait = y.Cfg.SpannerCommitWait
	s.DisableOnePC = y.Cfg.DisableOnePC
	// The manually partitioned baseline cannot enforce global uniqueness
	// at all (paper Fig. 1b): the partition column is part of its keys,
	// so per-partition checks suffice and no cross-region probes happen.
	s.UniquenessChecks = !y.Cfg.BaselineManual
	rng := p.Rand()

	var chooser KeyChooser
	switch y.Cfg.Distribution {
	case "uniform", "":
		chooser = UniformChooser{N: y.Cfg.RecordCount}
	case "zipfian":
		chooser = NewZipfChooser(y.Cfg.RecordCount, rand.New(rand.NewSource(int64(regionIdx*1000+clientIdx))))
	case "latest":
		chooser = NewLatestChooser(y.Cfg.RecordCount, rand.New(rand.NewSource(int64(regionIdx*1000+clientIdx))))
	default:
		return fmt.Errorf("ycsb: unknown distribution %q", y.Cfg.Distribution)
	}

	var writeFrac float64
	isInsert := false
	switch y.Cfg.Variant {
	case YCSBA:
		writeFrac = 0.5
	case YCSBB:
		writeFrac = 0.05
	case YCSBD:
		writeFrac = 0.05
		isInsert = true
	}

	readRec := y.ReadLat[region]
	writeRec := y.WriteLat[region]
	for op := 0; op < y.Cfg.OpsPerClient; op++ {
		isWrite := rng.Float64() < writeFrac
		start := p.Now()
		var err error
		switch {
		case isWrite && isInsert:
			err = y.doInsert(p, s, region)
		case isWrite:
			k := y.chooseKey(rng, region, regionIdx, clientIdx, chooser)
			err = y.doUpdate(p, s, k, op)
		default:
			k := y.chooseKey(rng, region, regionIdx, clientIdx, chooser)
			err = y.doRead(p, s, k)
		}
		lat := p.Now().Sub(start)
		if isWrite {
			if err != nil {
				writeRec.RecordError()
			} else {
				writeRec.Record(lat)
			}
		} else {
			if err != nil {
				readRec.RecordError()
			} else {
				readRec.Record(lat)
			}
		}
	}
	return nil
}

// whereForKey builds the WHERE clause; the manual baseline adds the
// key's region, pinning the query to one partition (§7.2).
func (y *YCSB) whereForKey(key int) *sql.Where {
	conds := []sql.Cond{{Col: "ycsb_key", Op: sql.OpEq, Vals: []sql.Expr{&sql.Lit{Val: y.keyString(key)}}}}
	if y.Cfg.BaselineManual && y.table.IsPartitioned() {
		conds = append(conds, sql.Cond{
			Col: sql.RegionColumnName, Op: sql.OpEq,
			Vals: []sql.Expr{&sql.Lit{Val: string(y.regionOfKey(key))}},
		})
	}
	return &sql.Where{Conds: conds}
}

func (y *YCSB) doRead(p *sim.Proc, s *sql.Session, key int) error {
	sel := &sql.Select{
		Table: y.Cfg.Table,
		Where: y.whereForKey(key),
	}
	if y.Cfg.StaleReads {
		sel.AsOf = &sql.AsOf{MaxStaleness: &sql.Lit{Val: y.Cfg.MaxStaleness.String()}}
	}
	res, err := s.ExecStmt(p, sel)
	if err != nil {
		return err
	}
	if len(res.Rows) == 0 && !y.Cfg.StaleReads {
		return fmt.Errorf("ycsb: key %d missing", key)
	}
	return nil
}

func (y *YCSB) doUpdate(p *sim.Proc, s *sql.Session, key, op int) error {
	if !y.table.IsPartitioned() {
		// Blind write, as the CockroachDB YCSB harness issues: no read
		// set, so contended writers bump past each other (write-too-old)
		// instead of serializing on refresh restarts.
		up := &sql.Insert{
			Table:   y.Cfg.Table,
			Columns: []string{"ycsb_key", "field0"},
			Rows: [][]sql.Expr{{
				&sql.Lit{Val: y.keyString(key)},
				&sql.Lit{Val: fmt.Sprintf("u%d", op)},
			}},
			Upsert: true,
		}
		_, err := s.ExecStmt(p, up)
		return err
	}
	up := &sql.Update{
		Table: y.Cfg.Table,
		Set:   []sql.Assignment{{Col: "field0", Val: &sql.Lit{Val: fmt.Sprintf("u%d", op)}}},
		Where: y.whereForKey(key),
	}
	_, err := s.ExecStmt(p, up)
	return err
}

func (y *YCSB) doInsert(p *sim.Proc, s *sql.Session, region simnet.Region) error {
	y.nextKey++
	k := y.nextKey
	if y.Cfg.RegionPrefixedKeys {
		// The inserting client homes the key in its own region.
		y.insertedRegion[k] = region
	}
	in := &sql.Insert{
		Table:   y.Cfg.Table,
		Columns: []string{"ycsb_key", "field0"},
		Rows: [][]sql.Expr{{
			&sql.Lit{Val: y.keyString(k)},
			&sql.Lit{Val: fmt.Sprintf("i%d", k)},
		}},
	}
	_, err := s.ExecStmt(p, in)
	return err
}

// AllReads merges the per-region read recorders.
func (y *YCSB) AllReads() *LatencyRecorder {
	out := NewLatencyRecorder("read/all")
	for _, r := range y.Cluster.Regions() {
		rec := y.ReadLat[r]
		out.samples = append(out.samples, rec.samples...)
		out.Errors += rec.Errors
	}
	return out
}

// AllWrites merges the per-region write recorders.
func (y *YCSB) AllWrites() *LatencyRecorder {
	out := NewLatencyRecorder("write/all")
	for _, r := range y.Cluster.Regions() {
		rec := y.WriteLat[r]
		out.samples = append(out.samples, rec.samples...)
		out.Errors += rec.Errors
	}
	return out
}

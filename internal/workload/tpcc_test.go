package workload

import (
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/sql"
)

// TestTPCCSmoke loads a small TPC-C and runs all five transaction types.
func TestTPCCSmoke(t *testing.T) {
	c := cluster.New(cluster.Config{
		Seed:      3,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
	})
	catalog := sql.NewCatalog()
	cfg := DefaultTPCCConfig()
	cfg.TxnsPerTerminal = 15
	cfg.TerminalsPerRegion = 2
	w := NewTPCC(c, catalog, cfg)
	var runErr error
	c.Sim.Spawn("bench", func(p *sim.Proc) {
		if err := w.SetupSchema(p); err != nil {
			runErr = err
			return
		}
		p.Sleep(sim.Second)
		if err := w.Load(p); err != nil {
			runErr = err
			return
		}
		p.Sleep(sim.Second)
		if err := w.Run(p); err != nil {
			runErr = err
			return
		}
	})
	c.Sim.RunFor(60 * 60 * sim.Second)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
	if w.NewOrders == 0 {
		t.Fatal("no new-order transactions committed")
	}
	if w.NewOrderLat.Errors > 0 || w.PaymentLat.Errors > 0 {
		t.Fatalf("errors: NO=%d pay=%d", w.NewOrderLat.Errors, w.PaymentLat.Errors)
	}
	// New-order transactions stay region-local at p50 (§7.4: "requests
	// do not cross regions in the common case").
	if p50 := w.NewOrderLat.Percentile(50); p50 > 400*sim.Millisecond {
		t.Errorf("new-order p50 = %v, want region-local", p50)
	}
	if w.TpmC() <= 0 {
		t.Error("tpmC not positive")
	}
	t.Logf("tpmC=%.1f over %v", w.TpmC(), w.Elapsed)
	t.Logf("%s", Table(w.NewOrderLat, w.PaymentLat, w.OrderStatusLat, w.DeliveryLat, w.StockLevelLat))
}

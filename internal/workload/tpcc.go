package workload

import (
	"fmt"
	"sort"

	"mrdb/internal/cluster"
	"mrdb/internal/hlc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
	"mrdb/internal/txn"
)

// TPCCConfig parameterizes the TPC-C reproduction (§7.4). The schema
// follows the paper's multi-region adaptation: the item table is GLOBAL
// (never updated after import) and the other eight tables are REGIONAL BY
// ROW with the region computed from the warehouse ID, so all transactions
// touching one warehouse stay in its region.
//
// Data sizes are scaled down from spec (documented in DESIGN.md): the
// figures of interest are throughput *scaling* and latency locality, which
// depend on region counts and key distribution, not on raw cardinality.
type TPCCConfig struct {
	WarehousesPerRegion int
	DistrictsPerWH      int
	CustomersPerDist    int
	Items               int
	StockPerWH          int // stocked item count per warehouse (<= Items)
	TerminalsPerRegion  int
	TxnsPerTerminal     int
	// RunFor, when set, runs each terminal in a closed loop until the
	// deadline instead of a fixed transaction count; throughput is then
	// free of straggler skew.
	RunFor sim.Duration
	// RemoteWarehouseFrac is the fraction of new-order transactions that
	// touch a remote warehouse (spec: ~10%).
	RemoteWarehouseFrac float64
}

// DefaultTPCCConfig returns a laptop-scale configuration.
func DefaultTPCCConfig() TPCCConfig {
	return TPCCConfig{
		WarehousesPerRegion: 2,
		DistrictsPerWH:      10, // spec value; fewer districts convoy on d_next_o_id
		CustomersPerDist:    10,
		Items:               500,
		StockPerWH:          500,
		TerminalsPerRegion:  3,
		TxnsPerTerminal:     20,
		RemoteWarehouseFrac: 0.10,
	}
}

// TPCC drives the workload.
type TPCC struct {
	Cfg     TPCCConfig
	Cluster *cluster.Cluster
	Catalog *sql.Catalog

	// Latency recorders per transaction type, plus per-region new-order
	// recorders for the p50/p90 locality claim.
	NewOrderLat    *LatencyRecorder
	PaymentLat     *LatencyRecorder
	OrderStatusLat *LatencyRecorder
	DeliveryLat    *LatencyRecorder
	StockLevelLat  *LatencyRecorder
	PerRegionNO    map[simnet.Region]*LatencyRecorder

	// NewOrders counts committed new-order transactions (the tpmC
	// numerator).
	NewOrders int64
	// Elapsed is the measurement duration in virtual time.
	Elapsed sim.Duration

	// TraceLog, if set, receives per-transaction diagnostics.
	TraceLog func(string)

	regions []simnet.Region
	histSeq int
}

// NewTPCC builds the workload over a cluster.
func NewTPCC(c *cluster.Cluster, catalog *sql.Catalog, cfg TPCCConfig) *TPCC {
	t := &TPCC{
		Cfg: cfg, Cluster: c, Catalog: catalog,
		NewOrderLat:    NewLatencyRecorder("new-order"),
		PaymentLat:     NewLatencyRecorder("payment"),
		OrderStatusLat: NewLatencyRecorder("order-status"),
		DeliveryLat:    NewLatencyRecorder("delivery"),
		StockLevelLat:  NewLatencyRecorder("stock-level"),
		PerRegionNO:    map[simnet.Region]*LatencyRecorder{},
		regions:        sortedRegions(c.Regions()),
	}
	for _, r := range t.regions {
		t.PerRegionNO[r] = NewLatencyRecorder(fmt.Sprintf("new-order/%s", r))
	}
	return t
}

// sortedRegions orders regions alphabetically to match the database's
// region enum, which region_from_warehouse maps over.
func sortedRegions(in []simnet.Region) []simnet.Region {
	out := append([]simnet.Region(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// warehouseRegion maps warehouse IDs onto regions: w mod R, matching the
// region_from_warehouse computed column.
func (t *TPCC) warehouseRegion(w int) simnet.Region {
	return t.regions[w%len(t.regions)]
}

// totalWarehouses returns the cluster-wide warehouse count.
func (t *TPCC) totalWarehouses() int {
	return t.Cfg.WarehousesPerRegion * len(t.regions)
}

// SetupSchema creates the TPC-C database and its nine tables.
func (t *TPCC) SetupSchema(p *sim.Proc) error {
	s := sql.NewSession(t.Cluster, t.Catalog, t.Cluster.GatewayFor(t.regions[0]))
	create := fmt.Sprintf(`CREATE DATABASE tpcc PRIMARY REGION "%s"`, t.regions[0])
	if len(t.regions) > 1 {
		create += " REGIONS "
		for i, r := range t.regions[1:] {
			if i > 0 {
				create += ", "
			}
			create += fmt.Sprintf("%q", string(r))
		}
	}
	if _, err := s.Exec(p, create); err != nil {
		return err
	}
	region := func(col string) string {
		return fmt.Sprintf("crdb_region crdb_internal_region AS (region_from_warehouse(%s)) STORED", col)
	}
	stmts := []string{
		// The paper's multi-region TPC-C: item is GLOBAL (read-only
		// reference data), everything else REGIONAL BY ROW computed from
		// the warehouse column.
		`CREATE TABLE item (i_id INT PRIMARY KEY, i_name STRING, i_price FLOAT) LOCALITY GLOBAL`,
		// Composite primary keys prefixed by the warehouse column mean
		// the computed region is derived from the PK, so global
		// uniqueness checks are elided (§4.1 case 3) — exactly the
		// paper's TPC-C adaptation.
		fmt.Sprintf(`CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name STRING, w_tax FLOAT, w_ytd FLOAT, %s) LOCALITY REGIONAL BY ROW`, region("w_id")),
		fmt.Sprintf(`CREATE TABLE district (d_w_id INT, d_id INT, d_tax FLOAT, d_ytd FLOAT, d_next_o_id INT, %s, PRIMARY KEY (d_w_id, d_id)) LOCALITY REGIONAL BY ROW`, region("d_w_id")),
		fmt.Sprintf(`CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_name STRING, c_balance FLOAT, c_ytd_payment FLOAT, c_payment_cnt INT, %s, PRIMARY KEY (c_w_id, c_d_id, c_id)) LOCALITY REGIONAL BY ROW`, region("c_w_id")),
		fmt.Sprintf(`CREATE TABLE history (h_w_id INT, h_seq INT, h_amount FLOAT, %s, PRIMARY KEY (h_w_id, h_seq)) LOCALITY REGIONAL BY ROW`, region("h_w_id")),
		fmt.Sprintf(`CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, o_carrier_id INT, o_ol_cnt INT, %s, PRIMARY KEY (o_w_id, o_d_id, o_id)) LOCALITY REGIONAL BY ROW`, region("o_w_id")),
		fmt.Sprintf(`CREATE TABLE new_order (no_w_id INT, no_d_id INT, no_o_id INT, %s, PRIMARY KEY (no_w_id, no_d_id, no_o_id)) LOCALITY REGIONAL BY ROW`, region("no_w_id")),
		fmt.Sprintf(`CREATE TABLE order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, ol_number INT, ol_i_id INT, ol_quantity INT, ol_amount FLOAT, %s, PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number)) LOCALITY REGIONAL BY ROW`, region("ol_w_id")),
		fmt.Sprintf(`CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, s_ytd INT, %s, PRIMARY KEY (s_w_id, s_i_id)) LOCALITY REGIONAL BY ROW`, region("s_w_id")),
	}
	for _, stmt := range stmts {
		if _, err := s.Exec(p, stmt); err != nil {
			return fmt.Errorf("tpcc schema: %w", err)
		}
	}
	return nil
}

// whereInts builds a WHERE of col=val equalities (composite key lookups).
func whereInts(pairs ...interface{}) *sql.Where {
	w := &sql.Where{}
	for i := 0; i < len(pairs); i += 2 {
		w.Conds = append(w.Conds, sql.Cond{
			Col: pairs[i].(string), Op: sql.OpEq,
			Vals: []sql.Expr{&sql.Lit{Val: int64(pairs[i+1].(int))}},
		})
	}
	return w
}

// Load bulk-loads initial data.
func (t *TPCC) Load(p *sim.Proc) error {
	s := sql.NewSession(t.Cluster, t.Catalog, t.Cluster.GatewayFor(t.regions[0]))
	s.Database = "tpcc"
	ts := hlc.Timestamp{WallTime: 1}
	load := func(table string, vals map[string]sql.Datum) error {
		tbl, ok := t.Catalog.Table("tpcc", table)
		if !ok {
			return fmt.Errorf("tpcc: missing table %s", table)
		}
		return s.BulkLoadRow(tbl, vals, ts)
	}
	for i := 0; i < t.Cfg.Items; i++ {
		if err := load("item", map[string]sql.Datum{
			"i_id": int64(i), "i_name": fmt.Sprintf("item-%d", i), "i_price": 1.0 + float64(i%100)/10,
		}); err != nil {
			return err
		}
	}
	for w := 0; w < t.totalWarehouses(); w++ {
		if err := load("warehouse", map[string]sql.Datum{
			"w_id": int64(w), "w_name": fmt.Sprintf("wh-%d", w), "w_tax": 0.05, "w_ytd": 0.0,
		}); err != nil {
			return err
		}
		for d := 0; d < t.Cfg.DistrictsPerWH; d++ {
			if err := load("district", map[string]sql.Datum{
				"d_w_id": int64(w), "d_id": int64(d),
				"d_tax": 0.07, "d_ytd": 0.0, "d_next_o_id": int64(1),
			}); err != nil {
				return err
			}
			for c := 0; c < t.Cfg.CustomersPerDist; c++ {
				if err := load("customer", map[string]sql.Datum{
					"c_w_id": int64(w), "c_d_id": int64(d), "c_id": int64(c),
					"c_name":    fmt.Sprintf("cust-%d-%d-%d", w, d, c),
					"c_balance": 0.0, "c_ytd_payment": 0.0, "c_payment_cnt": int64(0),
				}); err != nil {
					return err
				}
			}
		}
		for i := 0; i < t.Cfg.StockPerWH && i < t.Cfg.Items; i++ {
			if err := load("stock", map[string]sql.Datum{
				"s_w_id": int64(w), "s_i_id": int64(i),
				"s_quantity": int64(100), "s_ytd": int64(0),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run spawns terminals and measures throughput.
func (t *TPCC) Run(p *sim.Proc) error {
	start := p.Now()
	wg := sim.NewWaitGroup(t.Cluster.Sim)
	var firstErr error
	for ri, region := range t.regions {
		for term := 0; term < t.Cfg.TerminalsPerRegion; term++ {
			ri, term, region := ri, term, region
			wg.Add(1)
			t.Cluster.Sim.Spawn(fmt.Sprintf("tpcc/%s/%d", region, term), func(tp *sim.Proc) {
				defer wg.Done()
				if err := t.terminal(tp, region, ri, term); err != nil && firstErr == nil {
					firstErr = err
				}
			})
		}
	}
	wg.Wait(p)
	t.Elapsed = p.Now().Sub(start)
	return firstErr
}

// TpmC returns committed new-order transactions per virtual minute. With
// RunFor set the denominator is the configured window, avoiding straggler
// skew.
func (t *TPCC) TpmC() float64 {
	d := t.Elapsed
	if t.Cfg.RunFor > 0 {
		d = t.Cfg.RunFor
	}
	if d == 0 {
		return 0
	}
	return float64(t.NewOrders) / (float64(d) / float64(60*sim.Second))
}

// lineNums is the bounded IN list over possible order-line numbers
// (TPC-C orders carry 5-15 lines).
const lineNums = "0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14"

// tpccStmts is the per-terminal prepared-statement set: every statement
// shape in the five transactions, prepared once so repeated executions
// bind values into a cached plan.
type tpccStmts struct {
	warehouseTax *sql.Prepared
	districtBump *sql.Prepared
	districtNext *sql.Prepared
	customerName *sql.Prepared
	insertOrder  *sql.Prepared
	insertNewOrd *sql.Prepared
	itemPrice    *sql.Prepared
	stockQty     *sql.Prepared
	stockUpdate  *sql.Prepared
	insertLine   *sql.Prepared
	whPay        *sql.Prepared
	distPay      *sql.Prepared
	custPay      *sql.Prepared
	insertHist   *sql.Prepared
	custStatus   *sql.Prepared
	orderByID    *sql.Prepared
	orderLines   *sql.Prepared
	lineItemIDs  *sql.Prepared
	newOrdByID   *sql.Prepared
	delNewOrd    *sql.Prepared
	orderCarrier *sql.Prepared
}

func (t *TPCC) prepare(s *sql.Session) *tpccStmts {
	return &tpccStmts{
		warehouseTax: s.MustPrepare(`SELECT w_tax FROM warehouse WHERE w_id = $1`),
		districtBump: s.MustPrepare(`UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = $1 AND d_id = $2`),
		districtNext: s.MustPrepare(`SELECT d_next_o_id FROM district WHERE d_w_id = $1 AND d_id = $2`),
		customerName: s.MustPrepare(`SELECT c_name FROM customer WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = $3`),
		insertOrder:  s.MustPrepare(`INSERT INTO orders (o_w_id, o_d_id, o_id, o_c_id, o_carrier_id, o_ol_cnt) VALUES ($1, $2, $3, $4, $5, $6)`),
		insertNewOrd: s.MustPrepare(`INSERT INTO new_order (no_w_id, no_d_id, no_o_id) VALUES ($1, $2, $3)`),
		itemPrice:    s.MustPrepare(`SELECT i_price FROM item WHERE i_id = $1`),
		stockQty:     s.MustPrepare(`SELECT s_quantity FROM stock WHERE s_w_id = $1 AND s_i_id = $2`),
		stockUpdate:  s.MustPrepare(`UPDATE stock SET s_quantity = $1, s_ytd = s_ytd + $2 WHERE s_w_id = $3 AND s_i_id = $4`),
		insertLine:   s.MustPrepare(`INSERT INTO order_line (ol_w_id, ol_d_id, ol_o_id, ol_number, ol_i_id, ol_quantity, ol_amount) VALUES ($1, $2, $3, $4, $5, $6, $7)`),
		whPay:        s.MustPrepare(`UPDATE warehouse SET w_ytd = w_ytd + $1 WHERE w_id = $2`),
		distPay:      s.MustPrepare(`UPDATE district SET d_ytd = d_ytd + $1 WHERE d_w_id = $2 AND d_id = $3`),
		custPay:      s.MustPrepare(`UPDATE customer SET c_balance = c_balance - $1, c_ytd_payment = c_ytd_payment + $2, c_payment_cnt = c_payment_cnt + 1 WHERE c_w_id = $3 AND c_d_id = $4 AND c_id = $5`),
		insertHist:   s.MustPrepare(`INSERT INTO history (h_w_id, h_seq, h_amount) VALUES ($1, $2, $3)`),
		custStatus:   s.MustPrepare(`SELECT c_balance, c_name FROM customer WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = $3`),
		orderByID:    s.MustPrepare(`SELECT * FROM orders WHERE o_w_id = $1 AND o_d_id = $2 AND o_id = $3`),
		orderLines:   s.MustPrepare(`SELECT * FROM order_line WHERE ol_w_id = $1 AND ol_d_id = $2 AND ol_o_id = $3 AND ol_number IN (` + lineNums + `)`),
		lineItemIDs:  s.MustPrepare(`SELECT ol_i_id FROM order_line WHERE ol_w_id = $1 AND ol_d_id = $2 AND ol_o_id = $3 AND ol_number IN (` + lineNums + `)`),
		newOrdByID:   s.MustPrepare(`SELECT * FROM new_order WHERE no_w_id = $1 AND no_d_id = $2 AND no_o_id = $3`),
		delNewOrd:    s.MustPrepare(`DELETE FROM new_order WHERE no_w_id = $1 AND no_d_id = $2 AND no_o_id = $3`),
		orderCarrier: s.MustPrepare(`UPDATE orders SET o_carrier_id = 7 WHERE o_w_id = $1 AND o_d_id = $2 AND o_id = $3`),
	}
}

// PlanOnly runs the planning half of n TPC-C transactions against the
// session — every statement shape of the transaction mix, via the same
// prepared set the terminals use — without executing anything. It returns
// the number of statements planned. The speed benchmark uses it to measure
// planning throughput with the plan cache on and off: in the executing
// workloads the simulated replication and network layers dominate wall
// time, so this is where the cache's per-statement saving is visible.
func (t *TPCC) PlanOnly(s *sql.Session, n int) (int, error) {
	ps := t.prepare(s)
	w, d, c, item, oid := int64(0), int64(1), int64(2), int64(3), int64(4)
	set := []struct {
		ps   *sql.Prepared
		args []sql.Datum
	}{
		{ps.warehouseTax, []sql.Datum{w}},
		{ps.districtBump, []sql.Datum{w, d}},
		{ps.districtNext, []sql.Datum{w, d}},
		{ps.customerName, []sql.Datum{w, d, c}},
		{ps.insertOrder, []sql.Datum{w, d, oid, c, int64(0), int64(10)}},
		{ps.insertNewOrd, []sql.Datum{w, d, oid}},
		{ps.itemPrice, []sql.Datum{item}},
		{ps.stockQty, []sql.Datum{w, item}},
		{ps.stockUpdate, []sql.Datum{int64(50), int64(5), w, item}},
		{ps.insertLine, []sql.Datum{w, d, oid, int64(1), item, int64(5), 12.5}},
		{ps.whPay, []sql.Datum{10.0, w}},
		{ps.distPay, []sql.Datum{10.0, w, d}},
		{ps.custPay, []sql.Datum{10.0, 10.0, w, d, c}},
		{ps.insertHist, []sql.Datum{w, oid, 10.0}},
		{ps.custStatus, []sql.Datum{w, d, c}},
		{ps.orderByID, []sql.Datum{w, d, oid}},
		{ps.orderLines, []sql.Datum{w, d, oid}},
		{ps.lineItemIDs, []sql.Datum{w, d, oid}},
		{ps.newOrdByID, []sql.Datum{w, d, oid}},
		{ps.delNewOrd, []sql.Datum{w, d, oid}},
		{ps.orderCarrier, []sql.Datum{w, d, oid}},
	}
	planned := 0
	for i := 0; i < n; i++ {
		for _, st := range set {
			if err := s.PlanForBench(st.ps, st.args...); err != nil {
				return planned, err
			}
			planned++
		}
	}
	return planned, nil
}

// terminal runs one closed-loop client: standard-ish mix of 45% new-order,
// 43% payment, 4% each of order-status, delivery, stock-level.
func (t *TPCC) terminal(p *sim.Proc, region simnet.Region, regionIdx, termIdx int) error {
	s := sql.NewSession(t.Cluster, t.Catalog, t.Cluster.GatewayFor(region))
	s.Database = "tpcc"
	ps := t.prepare(s)
	rng := p.Rand()
	localWarehouse := func() int {
		return regionIdx + len(t.regions)*(rng.Intn(t.Cfg.WarehousesPerRegion))
	}
	deadline := p.Now().Add(t.Cfg.RunFor)
	for i := 0; ; i++ {
		if t.Cfg.RunFor > 0 {
			if p.Now() >= deadline {
				break
			}
		} else if i >= t.Cfg.TxnsPerTerminal {
			break
		}
		w := localWarehouse()
		roll := rng.Float64()
		start := p.Now()
		var err error
		switch {
		case roll < 0.45:
			// ~10% of new-orders access a remote warehouse's stock
			// (§7.4: "only the 10% of new-order transactions that
			// access remote warehouses" cross regions).
			remote := rng.Float64() < t.Cfg.RemoteWarehouseFrac
			err = t.newOrder(p, s, ps, w, rng.Intn(t.Cfg.DistrictsPerWH), rng.Intn(t.Cfg.CustomersPerDist), remote, rng)
			if err == nil {
				t.NewOrders++
				t.NewOrderLat.Record(p.Now().Sub(start))
				t.PerRegionNO[region].Record(p.Now().Sub(start))
			} else {
				t.NewOrderLat.RecordError()
			}
		case roll < 0.88:
			err = t.payment(p, s, ps, w, rng.Intn(t.Cfg.DistrictsPerWH), rng.Intn(t.Cfg.CustomersPerDist), rng)
			record(t.PaymentLat, p.Now().Sub(start), err)
		case roll < 0.92:
			err = t.orderStatus(p, s, ps, w, rng.Intn(t.Cfg.DistrictsPerWH), rng.Intn(t.Cfg.CustomersPerDist))
			record(t.OrderStatusLat, p.Now().Sub(start), err)
		case roll < 0.96:
			err = t.delivery(p, s, ps, w)
			record(t.DeliveryLat, p.Now().Sub(start), err)
		default:
			err = t.stockLevel(p, s, ps, w, rng.Intn(t.Cfg.DistrictsPerWH))
			record(t.StockLevelLat, p.Now().Sub(start), err)
		}
		if err != nil {
			return fmt.Errorf("tpcc %s terminal %d: %w", region, termIdx, err)
		}
		if t.TraceLog != nil {
			t.TraceLog(fmt.Sprintf("%s term%d txn%d roll=%.2f took %v", region, termIdx, i, roll, p.Now().Sub(start)))
		}
	}
	return nil
}

func record(r *LatencyRecorder, d sim.Duration, err error) {
	if err != nil {
		r.RecordError()
	} else {
		r.Record(d)
	}
}

// --- Transactions ---

// selectOne executes a prepared single-row lookup and returns the row.
func selectOne(p *sim.Proc, s *sql.Session, tx *txn.Txn, ps *sql.Prepared, table string, args ...sql.Datum) ([]sql.Datum, error) {
	res, err := s.ExecPreparedTxn(p, tx, ps, args...)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("tpcc: no row in %s", table)
	}
	return res.Rows[0], nil
}

// newOrder implements the New-Order transaction: read warehouse/district/
// customer, consume an order ID, insert orders/new_order, and for each of
// 5-15 lines read the GLOBAL item table, update stock, insert order_line.
func (t *TPCC) newOrder(p *sim.Proc, s *sql.Session, ps *tpccStmts, w, d, c int, remote bool, rng interface{ Intn(int) int }) error {
	lines := 5 + rng.Intn(11)
	items := make([]int, lines)
	qtys := make([]int, lines)
	stockWH := make([]int, lines)
	for i := range items {
		items[i] = rng.Intn(t.Cfg.Items)
		qtys[i] = 1 + rng.Intn(10)
		stockWH[i] = w
	}
	if remote && t.totalWarehouses() > len(t.regions) {
		// One line sources stock from a warehouse in another region.
		stockWH[rng.Intn(lines)] = (w + 1) % t.totalWarehouses()
	}
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		if _, err := selectOne(p, s, tx, ps.warehouseTax, "warehouse", int64(w)); err != nil {
			return err
		}
		// Consume the order ID with an in-place increment (the
		// read-modify-write stays inside one statement, as with
		// CockroachDB's implicit SELECT FOR UPDATE), then read our own
		// intent back for the assigned ID.
		if _, err := s.ExecPreparedTxn(p, tx, ps.districtBump, int64(w), int64(d)); err != nil {
			return err
		}
		drow, err := selectOne(p, s, tx, ps.districtNext, "district", int64(w), int64(d))
		if err != nil {
			return err
		}
		oid := int(drow[0].(int64)) - 1
		if _, err := selectOne(p, s, tx, ps.customerName, "customer", int64(w), int64(d), int64(c)); err != nil {
			return err
		}
		if _, err := s.ExecPreparedTxn(p, tx, ps.insertOrder,
			int64(w), int64(d), int64(oid), int64(c), int64(0), int64(lines)); err != nil {
			return err
		}
		if _, err := s.ExecPreparedTxn(p, tx, ps.insertNewOrd, int64(w), int64(d), int64(oid)); err != nil {
			return err
		}
		for line := 0; line < lines; line++ {
			item := items[line]
			// GLOBAL item read: local in every region (§7.4).
			irow, err := selectOne(p, s, tx, ps.itemPrice, "item", int64(item))
			if err != nil {
				return err
			}
			price := irow[0].(float64)
			// Stock for this line may come from a remote warehouse
			// (per-line, matching the TPC-C spec's remote item rule).
			sw := stockWH[line]
			srow, err := selectOne(p, s, tx, ps.stockQty, "stock", int64(sw), int64(item))
			if err != nil {
				return err
			}
			qty := int(srow[0].(int64))
			newQty := qty - qtys[line]
			if newQty < 10 {
				newQty += 91
			}
			if _, err := s.ExecPreparedTxn(p, tx, ps.stockUpdate,
				int64(newQty), int64(qtys[line]), int64(sw), int64(item)); err != nil {
				return err
			}
			if _, err := s.ExecPreparedTxn(p, tx, ps.insertLine,
				int64(w), int64(d), int64(oid), int64(line), int64(item), int64(qtys[line]),
				price*float64(qtys[line])); err != nil {
				return err
			}
		}
		return nil
	})
}

// payment updates warehouse/district YTD and the customer balance, and
// appends a history row.
func (t *TPCC) payment(p *sim.Proc, s *sql.Session, ps *tpccStmts, w, d, c int, rng interface{ Intn(int) int }) error {
	amount := 1.0 + float64(rng.Intn(5000))/100
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		if _, err := s.ExecPreparedTxn(p, tx, ps.whPay, amount, int64(w)); err != nil {
			return err
		}
		if _, err := s.ExecPreparedTxn(p, tx, ps.distPay, amount, int64(w), int64(d)); err != nil {
			return err
		}
		if _, err := s.ExecPreparedTxn(p, tx, ps.custPay,
			amount, amount, int64(w), int64(d), int64(c)); err != nil {
			return err
		}
		t.histSeq++
		_, err := s.ExecPreparedTxn(p, tx, ps.insertHist, int64(w), int64(t.histSeq), amount)
		return err
	})
}

// orderStatus reads a customer and their most recent order with its lines.
func (t *TPCC) orderStatus(p *sim.Proc, s *sql.Session, ps *tpccStmts, w, d, c int) error {
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		if _, err := selectOne(p, s, tx, ps.custStatus, "customer", int64(w), int64(d), int64(c)); err != nil {
			return err
		}
		drow, err := selectOne(p, s, tx, ps.districtNext, "district", int64(w), int64(d))
		if err != nil {
			return err
		}
		last := int(drow[0].(int64)) - 1
		if last < 1 {
			return nil // no orders yet
		}
		res, err := s.ExecPreparedTxn(p, tx, ps.orderByID, int64(w), int64(d), int64(last))
		if err != nil || len(res.Rows) == 0 {
			return err
		}
		// Order lines for that order: bounded IN over line numbers.
		_, err = s.ExecPreparedTxn(p, tx, ps.orderLines, int64(w), int64(d), int64(last))
		return err
	})
}

// delivery processes the oldest undelivered order in each district.
func (t *TPCC) delivery(p *sim.Proc, s *sql.Session, ps *tpccStmts, w int) error {
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		for d := 0; d < t.Cfg.DistrictsPerWH; d++ {
			drow, err := selectOne(p, s, tx, ps.districtNext, "district", int64(w), int64(d))
			if err != nil {
				return err
			}
			next := int(drow[0].(int64))
			// Probe for the oldest new_order still present (bounded).
			for o := 1; o < next && o < 50; o++ {
				res, err := s.ExecPreparedTxn(p, tx, ps.newOrdByID, int64(w), int64(d), int64(o))
				if err != nil {
					return err
				}
				if len(res.Rows) == 0 {
					continue
				}
				if _, err := s.ExecPreparedTxn(p, tx, ps.delNewOrd, int64(w), int64(d), int64(o)); err != nil {
					return err
				}
				if _, err := s.ExecPreparedTxn(p, tx, ps.orderCarrier, int64(w), int64(d), int64(o)); err != nil {
					return err
				}
				break
			}
		}
		return nil
	})
}

// stockLevel counts recently sold items below a stock threshold.
func (t *TPCC) stockLevel(p *sim.Proc, s *sql.Session, ps *tpccStmts, w, d int) error {
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		drow, err := selectOne(p, s, tx, ps.districtNext, "district", int64(w), int64(d))
		if err != nil {
			return err
		}
		next := int(drow[0].(int64))
		seen := map[int64]bool{}
		for o := next - 5; o < next; o++ {
			if o < 1 {
				continue
			}
			res, err := s.ExecPreparedTxn(p, tx, ps.lineItemIDs, int64(w), int64(d), int64(o))
			if err != nil {
				return err
			}
			for _, row := range res.Rows {
				seen[row[0].(int64)] = true
			}
		}
		items := make([]int64, 0, len(seen))
		for item := range seen {
			items = append(items, item)
		}
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		low := 0
		for _, item := range items {
			srow, err := selectOne(p, s, tx, ps.stockQty, "stock", int64(w), item)
			if err != nil {
				return err
			}
			if srow[0].(int64) < 20 {
				low++
			}
		}
		_ = low
		return nil
	})
}

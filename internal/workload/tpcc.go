package workload

import (
	"fmt"
	"sort"

	"mrdb/internal/cluster"
	"mrdb/internal/hlc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
	"mrdb/internal/txn"
)

// TPCCConfig parameterizes the TPC-C reproduction (§7.4). The schema
// follows the paper's multi-region adaptation: the item table is GLOBAL
// (never updated after import) and the other eight tables are REGIONAL BY
// ROW with the region computed from the warehouse ID, so all transactions
// touching one warehouse stay in its region.
//
// Data sizes are scaled down from spec (documented in DESIGN.md): the
// figures of interest are throughput *scaling* and latency locality, which
// depend on region counts and key distribution, not on raw cardinality.
type TPCCConfig struct {
	WarehousesPerRegion int
	DistrictsPerWH      int
	CustomersPerDist    int
	Items               int
	StockPerWH          int // stocked item count per warehouse (<= Items)
	TerminalsPerRegion  int
	TxnsPerTerminal     int
	// RunFor, when set, runs each terminal in a closed loop until the
	// deadline instead of a fixed transaction count; throughput is then
	// free of straggler skew.
	RunFor sim.Duration
	// RemoteWarehouseFrac is the fraction of new-order transactions that
	// touch a remote warehouse (spec: ~10%).
	RemoteWarehouseFrac float64
}

// DefaultTPCCConfig returns a laptop-scale configuration.
func DefaultTPCCConfig() TPCCConfig {
	return TPCCConfig{
		WarehousesPerRegion: 2,
		DistrictsPerWH:      10, // spec value; fewer districts convoy on d_next_o_id
		CustomersPerDist:    10,
		Items:               500,
		StockPerWH:          500,
		TerminalsPerRegion:  3,
		TxnsPerTerminal:     20,
		RemoteWarehouseFrac: 0.10,
	}
}

// TPCC drives the workload.
type TPCC struct {
	Cfg     TPCCConfig
	Cluster *cluster.Cluster
	Catalog *sql.Catalog

	// Latency recorders per transaction type, plus per-region new-order
	// recorders for the p50/p90 locality claim.
	NewOrderLat    *LatencyRecorder
	PaymentLat     *LatencyRecorder
	OrderStatusLat *LatencyRecorder
	DeliveryLat    *LatencyRecorder
	StockLevelLat  *LatencyRecorder
	PerRegionNO    map[simnet.Region]*LatencyRecorder

	// NewOrders counts committed new-order transactions (the tpmC
	// numerator).
	NewOrders int64
	// Elapsed is the measurement duration in virtual time.
	Elapsed sim.Duration

	// TraceLog, if set, receives per-transaction diagnostics.
	TraceLog func(string)

	regions []simnet.Region
	histSeq int
}

// NewTPCC builds the workload over a cluster.
func NewTPCC(c *cluster.Cluster, catalog *sql.Catalog, cfg TPCCConfig) *TPCC {
	t := &TPCC{
		Cfg: cfg, Cluster: c, Catalog: catalog,
		NewOrderLat:    NewLatencyRecorder("new-order"),
		PaymentLat:     NewLatencyRecorder("payment"),
		OrderStatusLat: NewLatencyRecorder("order-status"),
		DeliveryLat:    NewLatencyRecorder("delivery"),
		StockLevelLat:  NewLatencyRecorder("stock-level"),
		PerRegionNO:    map[simnet.Region]*LatencyRecorder{},
		regions:        sortedRegions(c.Regions()),
	}
	for _, r := range t.regions {
		t.PerRegionNO[r] = NewLatencyRecorder(fmt.Sprintf("new-order/%s", r))
	}
	return t
}

// sortedRegions orders regions alphabetically to match the database's
// region enum, which region_from_warehouse maps over.
func sortedRegions(in []simnet.Region) []simnet.Region {
	out := append([]simnet.Region(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// warehouseRegion maps warehouse IDs onto regions: w mod R, matching the
// region_from_warehouse computed column.
func (t *TPCC) warehouseRegion(w int) simnet.Region {
	return t.regions[w%len(t.regions)]
}

// totalWarehouses returns the cluster-wide warehouse count.
func (t *TPCC) totalWarehouses() int {
	return t.Cfg.WarehousesPerRegion * len(t.regions)
}

// SetupSchema creates the TPC-C database and its nine tables.
func (t *TPCC) SetupSchema(p *sim.Proc) error {
	s := sql.NewSession(t.Cluster, t.Catalog, t.Cluster.GatewayFor(t.regions[0]))
	create := fmt.Sprintf(`CREATE DATABASE tpcc PRIMARY REGION "%s"`, t.regions[0])
	if len(t.regions) > 1 {
		create += " REGIONS "
		for i, r := range t.regions[1:] {
			if i > 0 {
				create += ", "
			}
			create += fmt.Sprintf("%q", string(r))
		}
	}
	if _, err := s.Exec(p, create); err != nil {
		return err
	}
	region := func(col string) string {
		return fmt.Sprintf("crdb_region crdb_internal_region AS (region_from_warehouse(%s)) STORED", col)
	}
	stmts := []string{
		// The paper's multi-region TPC-C: item is GLOBAL (read-only
		// reference data), everything else REGIONAL BY ROW computed from
		// the warehouse column.
		`CREATE TABLE item (i_id INT PRIMARY KEY, i_name STRING, i_price FLOAT) LOCALITY GLOBAL`,
		// Composite primary keys prefixed by the warehouse column mean
		// the computed region is derived from the PK, so global
		// uniqueness checks are elided (§4.1 case 3) — exactly the
		// paper's TPC-C adaptation.
		fmt.Sprintf(`CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name STRING, w_tax FLOAT, w_ytd FLOAT, %s) LOCALITY REGIONAL BY ROW`, region("w_id")),
		fmt.Sprintf(`CREATE TABLE district (d_w_id INT, d_id INT, d_tax FLOAT, d_ytd FLOAT, d_next_o_id INT, %s, PRIMARY KEY (d_w_id, d_id)) LOCALITY REGIONAL BY ROW`, region("d_w_id")),
		fmt.Sprintf(`CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_name STRING, c_balance FLOAT, c_ytd_payment FLOAT, c_payment_cnt INT, %s, PRIMARY KEY (c_w_id, c_d_id, c_id)) LOCALITY REGIONAL BY ROW`, region("c_w_id")),
		fmt.Sprintf(`CREATE TABLE history (h_w_id INT, h_seq INT, h_amount FLOAT, %s, PRIMARY KEY (h_w_id, h_seq)) LOCALITY REGIONAL BY ROW`, region("h_w_id")),
		fmt.Sprintf(`CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, o_carrier_id INT, o_ol_cnt INT, %s, PRIMARY KEY (o_w_id, o_d_id, o_id)) LOCALITY REGIONAL BY ROW`, region("o_w_id")),
		fmt.Sprintf(`CREATE TABLE new_order (no_w_id INT, no_d_id INT, no_o_id INT, %s, PRIMARY KEY (no_w_id, no_d_id, no_o_id)) LOCALITY REGIONAL BY ROW`, region("no_w_id")),
		fmt.Sprintf(`CREATE TABLE order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, ol_number INT, ol_i_id INT, ol_quantity INT, ol_amount FLOAT, %s, PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number)) LOCALITY REGIONAL BY ROW`, region("ol_w_id")),
		fmt.Sprintf(`CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, s_ytd INT, %s, PRIMARY KEY (s_w_id, s_i_id)) LOCALITY REGIONAL BY ROW`, region("s_w_id")),
	}
	for _, stmt := range stmts {
		if _, err := s.Exec(p, stmt); err != nil {
			return fmt.Errorf("tpcc schema: %w", err)
		}
	}
	return nil
}

// whereInts builds a WHERE of col=val equalities (composite key lookups).
func whereInts(pairs ...interface{}) *sql.Where {
	w := &sql.Where{}
	for i := 0; i < len(pairs); i += 2 {
		w.Conds = append(w.Conds, sql.Cond{
			Col: pairs[i].(string), Op: sql.OpEq,
			Vals: []sql.Expr{&sql.Lit{Val: int64(pairs[i+1].(int))}},
		})
	}
	return w
}

// Load bulk-loads initial data.
func (t *TPCC) Load(p *sim.Proc) error {
	s := sql.NewSession(t.Cluster, t.Catalog, t.Cluster.GatewayFor(t.regions[0]))
	s.Database = "tpcc"
	ts := hlc.Timestamp{WallTime: 1}
	load := func(table string, vals map[string]sql.Datum) error {
		tbl, ok := t.Catalog.Table("tpcc", table)
		if !ok {
			return fmt.Errorf("tpcc: missing table %s", table)
		}
		return s.BulkLoadRow(tbl, vals, ts)
	}
	for i := 0; i < t.Cfg.Items; i++ {
		if err := load("item", map[string]sql.Datum{
			"i_id": int64(i), "i_name": fmt.Sprintf("item-%d", i), "i_price": 1.0 + float64(i%100)/10,
		}); err != nil {
			return err
		}
	}
	for w := 0; w < t.totalWarehouses(); w++ {
		if err := load("warehouse", map[string]sql.Datum{
			"w_id": int64(w), "w_name": fmt.Sprintf("wh-%d", w), "w_tax": 0.05, "w_ytd": 0.0,
		}); err != nil {
			return err
		}
		for d := 0; d < t.Cfg.DistrictsPerWH; d++ {
			if err := load("district", map[string]sql.Datum{
				"d_w_id": int64(w), "d_id": int64(d),
				"d_tax": 0.07, "d_ytd": 0.0, "d_next_o_id": int64(1),
			}); err != nil {
				return err
			}
			for c := 0; c < t.Cfg.CustomersPerDist; c++ {
				if err := load("customer", map[string]sql.Datum{
					"c_w_id": int64(w), "c_d_id": int64(d), "c_id": int64(c),
					"c_name":    fmt.Sprintf("cust-%d-%d-%d", w, d, c),
					"c_balance": 0.0, "c_ytd_payment": 0.0, "c_payment_cnt": int64(0),
				}); err != nil {
					return err
				}
			}
		}
		for i := 0; i < t.Cfg.StockPerWH && i < t.Cfg.Items; i++ {
			if err := load("stock", map[string]sql.Datum{
				"s_w_id": int64(w), "s_i_id": int64(i),
				"s_quantity": int64(100), "s_ytd": int64(0),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run spawns terminals and measures throughput.
func (t *TPCC) Run(p *sim.Proc) error {
	start := p.Now()
	wg := sim.NewWaitGroup(t.Cluster.Sim)
	var firstErr error
	for ri, region := range t.regions {
		for term := 0; term < t.Cfg.TerminalsPerRegion; term++ {
			ri, term, region := ri, term, region
			wg.Add(1)
			t.Cluster.Sim.Spawn(fmt.Sprintf("tpcc/%s/%d", region, term), func(tp *sim.Proc) {
				defer wg.Done()
				if err := t.terminal(tp, region, ri, term); err != nil && firstErr == nil {
					firstErr = err
				}
			})
		}
	}
	wg.Wait(p)
	t.Elapsed = p.Now().Sub(start)
	return firstErr
}

// TpmC returns committed new-order transactions per virtual minute. With
// RunFor set the denominator is the configured window, avoiding straggler
// skew.
func (t *TPCC) TpmC() float64 {
	d := t.Elapsed
	if t.Cfg.RunFor > 0 {
		d = t.Cfg.RunFor
	}
	if d == 0 {
		return 0
	}
	return float64(t.NewOrders) / (float64(d) / float64(60*sim.Second))
}

// terminal runs one closed-loop client: standard-ish mix of 45% new-order,
// 43% payment, 4% each of order-status, delivery, stock-level.
func (t *TPCC) terminal(p *sim.Proc, region simnet.Region, regionIdx, termIdx int) error {
	s := sql.NewSession(t.Cluster, t.Catalog, t.Cluster.GatewayFor(region))
	s.Database = "tpcc"
	rng := p.Rand()
	localWarehouse := func() int {
		return regionIdx + len(t.regions)*(rng.Intn(t.Cfg.WarehousesPerRegion))
	}
	deadline := p.Now().Add(t.Cfg.RunFor)
	for i := 0; ; i++ {
		if t.Cfg.RunFor > 0 {
			if p.Now() >= deadline {
				break
			}
		} else if i >= t.Cfg.TxnsPerTerminal {
			break
		}
		w := localWarehouse()
		roll := rng.Float64()
		start := p.Now()
		var err error
		switch {
		case roll < 0.45:
			// ~10% of new-orders access a remote warehouse's stock
			// (§7.4: "only the 10% of new-order transactions that
			// access remote warehouses" cross regions).
			remote := rng.Float64() < t.Cfg.RemoteWarehouseFrac
			err = t.newOrder(p, s, w, rng.Intn(t.Cfg.DistrictsPerWH), rng.Intn(t.Cfg.CustomersPerDist), remote, rng)
			if err == nil {
				t.NewOrders++
				t.NewOrderLat.Record(p.Now().Sub(start))
				t.PerRegionNO[region].Record(p.Now().Sub(start))
			} else {
				t.NewOrderLat.RecordError()
			}
		case roll < 0.88:
			err = t.payment(p, s, w, rng.Intn(t.Cfg.DistrictsPerWH), rng.Intn(t.Cfg.CustomersPerDist), rng)
			record(t.PaymentLat, p.Now().Sub(start), err)
		case roll < 0.92:
			err = t.orderStatus(p, s, w, rng.Intn(t.Cfg.DistrictsPerWH), rng.Intn(t.Cfg.CustomersPerDist))
			record(t.OrderStatusLat, p.Now().Sub(start), err)
		case roll < 0.96:
			err = t.delivery(p, s, w)
			record(t.DeliveryLat, p.Now().Sub(start), err)
		default:
			err = t.stockLevel(p, s, w, rng.Intn(t.Cfg.DistrictsPerWH))
			record(t.StockLevelLat, p.Now().Sub(start), err)
		}
		if err != nil {
			return fmt.Errorf("tpcc %s terminal %d: %w", region, termIdx, err)
		}
		if t.TraceLog != nil {
			t.TraceLog(fmt.Sprintf("%s term%d txn%d roll=%.2f took %v", region, termIdx, i, roll, p.Now().Sub(start)))
		}
	}
	return nil
}

func record(r *LatencyRecorder, d sim.Duration, err error) {
	if err != nil {
		r.RecordError()
	} else {
		r.Record(d)
	}
}

// --- Transactions ---

func selectOne(p *sim.Proc, s *sql.Session, tx *txn.Txn, table string, where *sql.Where, cols ...string) ([]sql.Datum, error) {
	res, err := s.ExecStmtTxn(p, tx, &sql.Select{Table: table, Columns: cols, Where: where})
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("tpcc: no row in %s", table)
	}
	return res.Rows[0], nil
}

func lit(v interface{}) sql.Expr {
	switch x := v.(type) {
	case int:
		return &sql.Lit{Val: int64(x)}
	default:
		return &sql.Lit{Val: v}
	}
}

// newOrder implements the New-Order transaction: read warehouse/district/
// customer, consume an order ID, insert orders/new_order, and for each of
// 5-15 lines read the GLOBAL item table, update stock, insert order_line.
func (t *TPCC) newOrder(p *sim.Proc, s *sql.Session, w, d, c int, remote bool, rng interface{ Intn(int) int }) error {
	lines := 5 + rng.Intn(11)
	items := make([]int, lines)
	qtys := make([]int, lines)
	stockWH := make([]int, lines)
	for i := range items {
		items[i] = rng.Intn(t.Cfg.Items)
		qtys[i] = 1 + rng.Intn(10)
		stockWH[i] = w
	}
	if remote && t.totalWarehouses() > len(t.regions) {
		// One line sources stock from a warehouse in another region.
		stockWH[rng.Intn(lines)] = (w + 1) % t.totalWarehouses()
	}
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		if _, err := selectOne(p, s, tx, "warehouse", whereInts("w_id", w), "w_tax"); err != nil {
			return err
		}
		// Consume the order ID with an in-place increment (the
		// read-modify-write stays inside one statement, as with
		// CockroachDB's implicit SELECT FOR UPDATE), then read our own
		// intent back for the assigned ID.
		if _, err := s.ExecStmtTxn(p, tx, &sql.Update{
			Table: "district",
			Set: []sql.Assignment{{Col: "d_next_o_id", Val: &sql.BinaryExpr{
				Op: "+", L: &sql.ColRef{Name: "d_next_o_id"}, R: lit(1)}}},
			Where: whereInts("d_w_id", w, "d_id", d),
		}); err != nil {
			return err
		}
		drow, err := selectOne(p, s, tx, "district", whereInts("d_w_id", w, "d_id", d), "d_next_o_id")
		if err != nil {
			return err
		}
		oid := int(drow[0].(int64)) - 1
		if _, err := selectOne(p, s, tx, "customer", whereInts("c_w_id", w, "c_d_id", d, "c_id", c), "c_name"); err != nil {
			return err
		}
		if _, err := s.ExecStmtTxn(p, tx, &sql.Insert{
			Table:   "orders",
			Columns: []string{"o_w_id", "o_d_id", "o_id", "o_c_id", "o_carrier_id", "o_ol_cnt"},
			Rows:    [][]sql.Expr{{lit(w), lit(d), lit(oid), lit(c), lit(0), lit(lines)}},
		}); err != nil {
			return err
		}
		if _, err := s.ExecStmtTxn(p, tx, &sql.Insert{
			Table:   "new_order",
			Columns: []string{"no_w_id", "no_d_id", "no_o_id"},
			Rows:    [][]sql.Expr{{lit(w), lit(d), lit(oid)}},
		}); err != nil {
			return err
		}
		for line := 0; line < lines; line++ {
			item := items[line]
			// GLOBAL item read: local in every region (§7.4).
			irow, err := selectOne(p, s, tx, "item", whereInts("i_id", item), "i_price")
			if err != nil {
				return err
			}
			price := irow[0].(float64)
			// Stock for this line may come from a remote warehouse
			// (per-line, matching the TPC-C spec's remote item rule).
			sw := stockWH[line]
			srow, err := selectOne(p, s, tx, "stock", whereInts("s_w_id", sw, "s_i_id", item), "s_quantity")
			if err != nil {
				return err
			}
			qty := int(srow[0].(int64))
			newQty := qty - qtys[line]
			if newQty < 10 {
				newQty += 91
			}
			if _, err := s.ExecStmtTxn(p, tx, &sql.Update{
				Table: "stock",
				Set: []sql.Assignment{
					{Col: "s_quantity", Val: lit(newQty)},
					{Col: "s_ytd", Val: &sql.BinaryExpr{Op: "+", L: &sql.ColRef{Name: "s_ytd"}, R: lit(qtys[line])}},
				},
				Where: whereInts("s_w_id", sw, "s_i_id", item),
			}); err != nil {
				return err
			}
			if _, err := s.ExecStmtTxn(p, tx, &sql.Insert{
				Table:   "order_line",
				Columns: []string{"ol_w_id", "ol_d_id", "ol_o_id", "ol_number", "ol_i_id", "ol_quantity", "ol_amount"},
				Rows: [][]sql.Expr{{
					lit(w), lit(d), lit(oid), lit(line), lit(item), lit(qtys[line]),
					&sql.Lit{Val: price * float64(qtys[line])},
				}},
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// payment updates warehouse/district YTD and the customer balance, and
// appends a history row.
func (t *TPCC) payment(p *sim.Proc, s *sql.Session, w, d, c int, rng interface{ Intn(int) int }) error {
	amount := 1.0 + float64(rng.Intn(5000))/100
	inc := func(col string, by sql.Datum) sql.Assignment {
		return sql.Assignment{Col: col, Val: &sql.BinaryExpr{
			Op: "+", L: &sql.ColRef{Name: col}, R: &sql.Lit{Val: by}}}
	}
	dec := func(col string, by sql.Datum) sql.Assignment {
		return sql.Assignment{Col: col, Val: &sql.BinaryExpr{
			Op: "-", L: &sql.ColRef{Name: col}, R: &sql.Lit{Val: by}}}
	}
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		if _, err := s.ExecStmtTxn(p, tx, &sql.Update{
			Table: "warehouse",
			Set:   []sql.Assignment{inc("w_ytd", amount)},
			Where: whereInts("w_id", w),
		}); err != nil {
			return err
		}
		if _, err := s.ExecStmtTxn(p, tx, &sql.Update{
			Table: "district",
			Set:   []sql.Assignment{inc("d_ytd", amount)},
			Where: whereInts("d_w_id", w, "d_id", d),
		}); err != nil {
			return err
		}
		if _, err := s.ExecStmtTxn(p, tx, &sql.Update{
			Table: "customer",
			Set: []sql.Assignment{
				dec("c_balance", amount),
				inc("c_ytd_payment", amount),
				inc("c_payment_cnt", int64(1)),
			},
			Where: whereInts("c_w_id", w, "c_d_id", d, "c_id", c),
		}); err != nil {
			return err
		}
		t.histSeq++
		_, err := s.ExecStmtTxn(p, tx, &sql.Insert{
			Table:   "history",
			Columns: []string{"h_w_id", "h_seq", "h_amount"},
			Rows:    [][]sql.Expr{{lit(w), lit(t.histSeq), &sql.Lit{Val: amount}}},
		})
		return err
	})
}

// orderStatus reads a customer and their most recent order with its lines.
func (t *TPCC) orderStatus(p *sim.Proc, s *sql.Session, w, d, c int) error {
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		if _, err := selectOne(p, s, tx, "customer", whereInts("c_w_id", w, "c_d_id", d, "c_id", c), "c_balance", "c_name"); err != nil {
			return err
		}
		drow, err := selectOne(p, s, tx, "district", whereInts("d_w_id", w, "d_id", d), "d_next_o_id")
		if err != nil {
			return err
		}
		last := int(drow[0].(int64)) - 1
		if last < 1 {
			return nil // no orders yet
		}
		res, err := s.ExecStmtTxn(p, tx, &sql.Select{
			Table: "orders",
			Where: whereInts("o_w_id", w, "o_d_id", d, "o_id", last),
		})
		if err != nil || len(res.Rows) == 0 {
			return err
		}
		// Order lines for that order: bounded IN over line numbers.
		var nums []sql.Expr
		for line := 0; line < 15; line++ {
			nums = append(nums, lit(line))
		}
		where := whereInts("ol_w_id", w, "ol_d_id", d, "ol_o_id", last)
		where.Conds = append(where.Conds, sql.Cond{Col: "ol_number", Op: sql.OpIn, Vals: nums})
		_, err = s.ExecStmtTxn(p, tx, &sql.Select{Table: "order_line", Where: where})
		return err
	})
}

// delivery processes the oldest undelivered order in each district.
func (t *TPCC) delivery(p *sim.Proc, s *sql.Session, w int) error {
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		for d := 0; d < t.Cfg.DistrictsPerWH; d++ {
			drow, err := selectOne(p, s, tx, "district", whereInts("d_w_id", w, "d_id", d), "d_next_o_id")
			if err != nil {
				return err
			}
			next := int(drow[0].(int64))
			// Probe for the oldest new_order still present (bounded).
			for o := 1; o < next && o < 50; o++ {
				res, err := s.ExecStmtTxn(p, tx, &sql.Select{
					Table: "new_order",
					Where: whereInts("no_w_id", w, "no_d_id", d, "no_o_id", o),
				})
				if err != nil {
					return err
				}
				if len(res.Rows) == 0 {
					continue
				}
				if _, err := s.ExecStmtTxn(p, tx, &sql.Delete{
					Table: "new_order",
					Where: whereInts("no_w_id", w, "no_d_id", d, "no_o_id", o),
				}); err != nil {
					return err
				}
				if _, err := s.ExecStmtTxn(p, tx, &sql.Update{
					Table: "orders",
					Set:   []sql.Assignment{{Col: "o_carrier_id", Val: lit(7)}},
					Where: whereInts("o_w_id", w, "o_d_id", d, "o_id", o),
				}); err != nil {
					return err
				}
				break
			}
		}
		return nil
	})
}

// stockLevel counts recently sold items below a stock threshold.
func (t *TPCC) stockLevel(p *sim.Proc, s *sql.Session, w, d int) error {
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		drow, err := selectOne(p, s, tx, "district", whereInts("d_w_id", w, "d_id", d), "d_next_o_id")
		if err != nil {
			return err
		}
		next := int(drow[0].(int64))
		seen := map[int64]bool{}
		for o := next - 5; o < next; o++ {
			if o < 1 {
				continue
			}
			var nums []sql.Expr
			for line := 0; line < 15; line++ {
				nums = append(nums, lit(line))
			}
			where := whereInts("ol_w_id", w, "ol_d_id", d, "ol_o_id", o)
			where.Conds = append(where.Conds, sql.Cond{Col: "ol_number", Op: sql.OpIn, Vals: nums})
			res, err := s.ExecStmtTxn(p, tx, &sql.Select{
				Table: "order_line", Columns: []string{"ol_i_id"}, Where: where,
			})
			if err != nil {
				return err
			}
			for _, row := range res.Rows {
				seen[row[0].(int64)] = true
			}
		}
		items := make([]int64, 0, len(seen))
		for item := range seen {
			items = append(items, item)
		}
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		low := 0
		for _, item := range items {
			srow, err := selectOne(p, s, tx, "stock", whereInts("s_w_id", w, "s_i_id", int(item)), "s_quantity")
			if err != nil {
				return err
			}
			if srow[0].(int64) < 20 {
				low++
			}
		}
		_ = low
		return nil
	})
}

package workload

import (
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
)

func TestLatencyRecorder(t *testing.T) {
	r := NewLatencyRecorder("test")
	for i := 1; i <= 100; i++ {
		r.Record(sim.Duration(i) * sim.Millisecond)
	}
	if got := r.Percentile(50); got != 50*sim.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := r.Percentile(99); got != 99*sim.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := r.Max(); got != 100*sim.Millisecond {
		t.Errorf("max = %v", got)
	}
	if got := r.Mean(); got != 50500*sim.Microsecond {
		t.Errorf("mean = %v", got)
	}
	box := r.Box()
	if box.P25 != 25*sim.Millisecond || box.P75 != 75*sim.Millisecond {
		t.Errorf("box = %+v", box)
	}
	cdf := r.CDF(10)
	if len(cdf) != 10 || cdf[9][1] != 1.0 {
		t.Errorf("cdf = %v", cdf)
	}
}

func TestKeyChoosers(t *testing.T) {
	s := sim.New(1)
	rng := s.Rand()
	u := UniformChooser{N: 100}
	for i := 0; i < 1000; i++ {
		if k := u.Next(rng); k < 0 || k >= 100 {
			t.Fatalf("uniform out of range: %d", k)
		}
	}
	z := NewZipfChooser(100, rng)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		k := z.Next(rng)
		if k < 0 || k >= 100 {
			t.Fatalf("zipf out of range: %d", k)
		}
		counts[k]++
	}
	// Zipf must skew toward low keys.
	if counts[0] < counts[50]*2 {
		t.Errorf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	l := NewLatestChooser(100, rng)
	for i := 0; i < 1000; i++ {
		if k := l.Next(rng); k < 0 || k >= 100 {
			t.Fatalf("latest out of range: %d", k)
		}
	}
}

// TestYCSBSmoke runs a small YCSB-A against a REGIONAL BY ROW table and a
// GLOBAL table and sanity-checks the latency profiles.
func TestYCSBSmoke(t *testing.T) {
	c := cluster.New(cluster.Config{
		Seed:      1,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
	})
	catalog := sql.NewCatalog()
	y := NewYCSB(c, catalog, YCSBConfig{
		Variant:          YCSBB,
		RecordCount:      300,
		Distribution:     "uniform",
		OpsPerClient:     30,
		ClientsPerRegion: 2,
		LocalityOfAccess: 0.95,
	})
	var runErr error
	c.Sim.Spawn("bench", func(p *sim.Proc) {
		if err := y.SetupSchema(p, "LOCALITY REGIONAL BY ROW"); err != nil {
			runErr = err
			return
		}
		p.Sleep(500 * sim.Millisecond)
		if err := y.Load(p); err != nil {
			runErr = err
			return
		}
		if err := y.Run(p); err != nil {
			runErr = err
			return
		}
	})
	c.Sim.RunFor(30 * 60 * sim.Second)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
	reads := y.AllReads()
	writes := y.AllWrites()
	if reads.Count() == 0 || writes.Count() == 0 {
		t.Fatalf("no samples: reads=%d writes=%d", reads.Count(), writes.Count())
	}
	if reads.Errors > 0 || writes.Errors > 0 {
		t.Fatalf("errors: reads=%d writes=%d", reads.Errors, writes.Errors)
	}
	// With 95% locality and LOS, the median read is region-local.
	if p50 := reads.Percentile(50); p50 > 20*sim.Millisecond {
		t.Errorf("read p50 = %v, want local latency", p50)
	}
	for _, r := range c.Regions() {
		t.Logf("%s", y.ReadLat[r])
		t.Logf("%s", y.WriteLat[r])
	}
}

func TestYCSBGlobalTable(t *testing.T) {
	c := cluster.New(cluster.Config{
		Seed:      2,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
	})
	catalog := sql.NewCatalog()
	y := NewYCSB(c, catalog, YCSBConfig{
		Variant:          YCSBA,
		RecordCount:      200,
		Distribution:     "zipfian",
		OpsPerClient:     20,
		ClientsPerRegion: 1,
	})
	var runErr error
	c.Sim.Spawn("bench", func(p *sim.Proc) {
		if err := y.SetupSchema(p, "LOCALITY GLOBAL"); err != nil {
			runErr = err
			return
		}
		p.Sleep(sim.Second)
		if err := y.Load(p); err != nil {
			runErr = err
			return
		}
		p.Sleep(sim.Second)
		if err := y.Run(p); err != nil {
			runErr = err
			return
		}
	})
	c.Sim.RunFor(60 * 60 * sim.Second)
	if runErr != nil {
		t.Fatal(runErr)
	}
	reads := y.AllReads()
	writes := y.AllWrites()
	if reads.Errors > 0 || writes.Errors > 0 {
		t.Fatalf("errors: reads=%d writes=%d", reads.Errors, writes.Errors)
	}
	// GLOBAL: sub-5ms median reads everywhere, slow writes (Fig 3).
	if p50 := reads.Percentile(50); p50 > 5*sim.Millisecond {
		t.Errorf("global read p50 = %v", p50)
	}
	if p50 := writes.Percentile(50); p50 < 300*sim.Millisecond {
		t.Errorf("global write p50 = %v, want commit-wait dominated", p50)
	}
	_ = simnet.USEast1
}

package workload

import (
	"fmt"

	"mrdb/internal/cluster"
	"mrdb/internal/hlc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
	"mrdb/internal/txn"
)

// hlcLoadTS is the timestamp bulk loads happen at: before all traffic.
func hlcLoadTS() hlc.Timestamp { return hlc.Timestamp{WallTime: 1} }

// Movr drives the paper's motivating ride-sharing application (§1.1,
// §7.5.1) as a workload: signups and ride transactions are region-local
// REGIONAL BY ROW traffic, promo-code browsing is GLOBAL-table read
// traffic, and every ride transaction joins the two.
type Movr struct {
	Cluster *cluster.Cluster
	Catalog *sql.Catalog

	// UsersPerRegion seeds this many users in each region.
	UsersPerRegion int
	// Promos seeds this many promo codes.
	Promos int

	SignupLat *LatencyRecorder
	RideLat   *LatencyRecorder
	BrowseLat *LatencyRecorder

	regions []simnet.Region
	nextID  int
}

// NewMovr builds the workload harness.
func NewMovr(c *cluster.Cluster, catalog *sql.Catalog) *Movr {
	return &Movr{
		Cluster:        c,
		Catalog:        catalog,
		UsersPerRegion: 10,
		Promos:         5,
		SignupLat:      NewLatencyRecorder("movr/signup"),
		RideLat:        NewLatencyRecorder("movr/start-ride"),
		BrowseLat:      NewLatencyRecorder("movr/browse-promos"),
		regions:        c.Regions(),
	}
}

// session opens a movr session at a region's gateway.
func (m *Movr) session(region simnet.Region) *sql.Session {
	s := sql.NewSession(m.Cluster, m.Catalog, m.Cluster.GatewayFor(region))
	s.Database = "movr"
	return s
}

// Setup creates the movr schema exactly as paper Fig. 1c prescribes.
func (m *Movr) Setup(p *sim.Proc) error {
	s := m.session(m.regions[0])
	create := fmt.Sprintf(`CREATE DATABASE movr PRIMARY REGION "%s"`, m.regions[0])
	if len(m.regions) > 1 {
		create += " REGIONS "
		for i, r := range m.regions[1:] {
			if i > 0 {
				create += ", "
			}
			create += fmt.Sprintf("%q", string(r))
		}
	}
	stmts := []string{
		create,
		`CREATE TABLE users (id INT PRIMARY KEY, email STRING UNIQUE, name STRING) LOCALITY REGIONAL BY ROW`,
		`CREATE TABLE rides (id INT PRIMARY KEY, rider_id INT, vehicle STRING, promo STRING) LOCALITY REGIONAL BY ROW`,
		`CREATE TABLE promo_codes (code STRING PRIMARY KEY, description STRING) LOCALITY GLOBAL`,
	}
	for _, stmt := range stmts {
		if _, err := s.Exec(p, stmt); err != nil {
			return fmt.Errorf("movr setup: %w", err)
		}
	}
	return nil
}

// Load seeds users (region-homed) and promo codes.
func (m *Movr) Load(p *sim.Proc) error {
	s := m.session(m.regions[0])
	users, ok := m.Catalog.Table("movr", "users")
	if !ok {
		return fmt.Errorf("movr: users missing")
	}
	promos, ok := m.Catalog.Table("movr", "promo_codes")
	if !ok {
		return fmt.Errorf("movr: promo_codes missing")
	}
	ts := hlcLoadTS()
	id := 0
	for _, r := range m.regions {
		for u := 0; u < m.UsersPerRegion; u++ {
			id++
			if err := s.BulkLoadRow(users, map[string]sql.Datum{
				"id":                 int64(id),
				"email":              fmt.Sprintf("user%d@movr.com", id),
				"name":               fmt.Sprintf("user-%d", id),
				sql.RegionColumnName: string(r),
			}, ts); err != nil {
				return err
			}
		}
	}
	for i := 0; i < m.Promos; i++ {
		if err := s.BulkLoadRow(promos, map[string]sql.Datum{
			"code":        fmt.Sprintf("PROMO%d", i),
			"description": fmt.Sprintf("promo %d", i),
		}, ts); err != nil {
			return err
		}
	}
	m.nextID = id
	return nil
}

// Run executes ops per client in every region: a mix of promo browsing
// (70%), ride starts (25%) and signups (5%).
func (m *Movr) Run(p *sim.Proc, clientsPerRegion, opsPerClient int) error {
	wg := sim.NewWaitGroup(m.Cluster.Sim)
	var firstErr error
	for ri, region := range m.regions {
		for cl := 0; cl < clientsPerRegion; cl++ {
			ri, region := ri, region
			wg.Add(1)
			m.Cluster.Sim.Spawn(fmt.Sprintf("movr/%s/%d", region, cl), func(wp *sim.Proc) {
				defer wg.Done()
				s := m.session(region)
				rng := wp.Rand()
				for op := 0; op < opsPerClient; op++ {
					roll := rng.Float64()
					start := wp.Now()
					var err error
					switch {
					case roll < 0.70:
						err = m.browse(wp, s, rng.Intn(m.Promos))
						record(m.BrowseLat, wp.Now().Sub(start), err)
					case roll < 0.95:
						userID := ri*m.UsersPerRegion + 1 + rng.Intn(m.UsersPerRegion)
						err = m.startRide(wp, s, userID, rng.Intn(m.Promos))
						record(m.RideLat, wp.Now().Sub(start), err)
					default:
						err = m.signup(wp, s)
						record(m.SignupLat, wp.Now().Sub(start), err)
					}
					if err != nil && firstErr == nil {
						firstErr = err
					}
				}
			})
		}
	}
	wg.Wait(p)
	return firstErr
}

func (m *Movr) browse(p *sim.Proc, s *sql.Session, promo int) error {
	res, err := s.ExecStmt(p, &sql.Select{
		Table: "promo_codes",
		Where: &sql.Where{Conds: []sql.Cond{{
			Col: "code", Op: sql.OpEq,
			Vals: []sql.Expr{&sql.Lit{Val: fmt.Sprintf("PROMO%d", promo)}},
		}}},
	})
	if err != nil {
		return err
	}
	if len(res.Rows) != 1 {
		return fmt.Errorf("movr: promo missing")
	}
	return nil
}

// startRide is the paper's canonical multi-table transaction: a REGIONAL
// BY ROW write that reads a GLOBAL dimension table, staying region-local.
func (m *Movr) startRide(p *sim.Proc, s *sql.Session, userID, promo int) error {
	m.nextID++
	rideID := 1000000 + m.nextID
	return s.RunTxn(p, func(tx *txn.Txn) error {
		res, err := s.ExecStmtTxn(p, tx, &sql.Select{
			Table: "users", Columns: []string{"name"},
			Where: &sql.Where{Conds: []sql.Cond{{
				Col: "id", Op: sql.OpEq, Vals: []sql.Expr{&sql.Lit{Val: int64(userID)}},
			}}},
		})
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return fmt.Errorf("movr: user %d missing", userID)
		}
		if _, err := s.ExecStmtTxn(p, tx, &sql.Select{
			Table: "promo_codes",
			Where: &sql.Where{Conds: []sql.Cond{{
				Col: "code", Op: sql.OpEq,
				Vals: []sql.Expr{&sql.Lit{Val: fmt.Sprintf("PROMO%d", promo)}},
			}}},
		}); err != nil {
			return err
		}
		_, err = s.ExecStmtTxn(p, tx, &sql.Insert{
			Table:   "rides",
			Columns: []string{"id", "rider_id", "vehicle", "promo"},
			Rows: [][]sql.Expr{{
				&sql.Lit{Val: int64(rideID)}, &sql.Lit{Val: int64(userID)},
				&sql.Lit{Val: "scooter"}, &sql.Lit{Val: fmt.Sprintf("PROMO%d", promo)},
			}},
		})
		return err
	})
}

func (m *Movr) signup(p *sim.Proc, s *sql.Session) error {
	m.nextID++
	id := m.nextID
	_, err := s.ExecStmt(p, &sql.Insert{
		Table:   "users",
		Columns: []string{"id", "email", "name"},
		Rows: [][]sql.Expr{{
			&sql.Lit{Val: int64(id)},
			&sql.Lit{Val: fmt.Sprintf("user%d@movr.com", id)},
			&sql.Lit{Val: fmt.Sprintf("user-%d", id)},
		}},
	})
	return err
}

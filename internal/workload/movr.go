package workload

import (
	"fmt"

	"mrdb/internal/cluster"
	"mrdb/internal/hlc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
	"mrdb/internal/txn"
)

// hlcLoadTS is the timestamp bulk loads happen at: before all traffic.
func hlcLoadTS() hlc.Timestamp { return hlc.Timestamp{WallTime: 1} }

// Movr drives the paper's motivating ride-sharing application (§1.1,
// §7.5.1) as a workload: signups and ride transactions are region-local
// REGIONAL BY ROW traffic, promo-code browsing is GLOBAL-table read
// traffic, and every ride transaction joins the two.
type Movr struct {
	Cluster *cluster.Cluster
	Catalog *sql.Catalog

	// UsersPerRegion seeds this many users in each region.
	UsersPerRegion int
	// Promos seeds this many promo codes.
	Promos int

	SignupLat *LatencyRecorder
	RideLat   *LatencyRecorder
	BrowseLat *LatencyRecorder

	regions []simnet.Region
	nextID  int
}

// NewMovr builds the workload harness.
func NewMovr(c *cluster.Cluster, catalog *sql.Catalog) *Movr {
	return &Movr{
		Cluster:        c,
		Catalog:        catalog,
		UsersPerRegion: 10,
		Promos:         5,
		SignupLat:      NewLatencyRecorder("movr/signup"),
		RideLat:        NewLatencyRecorder("movr/start-ride"),
		BrowseLat:      NewLatencyRecorder("movr/browse-promos"),
		regions:        c.Regions(),
	}
}

// session opens a movr session at a region's gateway.
func (m *Movr) session(region simnet.Region) *sql.Session {
	s := sql.NewSession(m.Cluster, m.Catalog, m.Cluster.GatewayFor(region))
	s.Database = "movr"
	return s
}

// Setup creates the movr schema exactly as paper Fig. 1c prescribes.
func (m *Movr) Setup(p *sim.Proc) error {
	s := m.session(m.regions[0])
	create := fmt.Sprintf(`CREATE DATABASE movr PRIMARY REGION "%s"`, m.regions[0])
	if len(m.regions) > 1 {
		create += " REGIONS "
		for i, r := range m.regions[1:] {
			if i > 0 {
				create += ", "
			}
			create += fmt.Sprintf("%q", string(r))
		}
	}
	stmts := []string{
		create,
		`CREATE TABLE users (id INT PRIMARY KEY, email STRING UNIQUE, name STRING) LOCALITY REGIONAL BY ROW`,
		`CREATE TABLE rides (id INT PRIMARY KEY, rider_id INT, vehicle STRING, promo STRING) LOCALITY REGIONAL BY ROW`,
		`CREATE TABLE promo_codes (code STRING PRIMARY KEY, description STRING) LOCALITY GLOBAL`,
	}
	for _, stmt := range stmts {
		if _, err := s.Exec(p, stmt); err != nil {
			return fmt.Errorf("movr setup: %w", err)
		}
	}
	return nil
}

// Load seeds users (region-homed) and promo codes.
func (m *Movr) Load(p *sim.Proc) error {
	s := m.session(m.regions[0])
	users, ok := m.Catalog.Table("movr", "users")
	if !ok {
		return fmt.Errorf("movr: users missing")
	}
	promos, ok := m.Catalog.Table("movr", "promo_codes")
	if !ok {
		return fmt.Errorf("movr: promo_codes missing")
	}
	ts := hlcLoadTS()
	id := 0
	for _, r := range m.regions {
		for u := 0; u < m.UsersPerRegion; u++ {
			id++
			if err := s.BulkLoadRow(users, map[string]sql.Datum{
				"id":                 int64(id),
				"email":              fmt.Sprintf("user%d@movr.com", id),
				"name":               fmt.Sprintf("user-%d", id),
				sql.RegionColumnName: string(r),
			}, ts); err != nil {
				return err
			}
		}
	}
	for i := 0; i < m.Promos; i++ {
		if err := s.BulkLoadRow(promos, map[string]sql.Datum{
			"code":        fmt.Sprintf("PROMO%d", i),
			"description": fmt.Sprintf("promo %d", i),
		}, ts); err != nil {
			return err
		}
	}
	m.nextID = id
	return nil
}

// movrStmts is the per-client prepared-statement set. Each client
// prepares once and binds values per op, so repeated shapes hit the
// session's plan cache instead of re-planning.
type movrStmts struct {
	browsePromo *sql.Prepared
	userByID    *sql.Prepared
	insertRide  *sql.Prepared
	insertUser  *sql.Prepared
}

func (m *Movr) prepare(s *sql.Session) *movrStmts {
	return &movrStmts{
		browsePromo: s.MustPrepare(`SELECT * FROM promo_codes WHERE code = $1`),
		userByID:    s.MustPrepare(`SELECT name FROM users WHERE id = $1`),
		insertRide:  s.MustPrepare(`INSERT INTO rides (id, rider_id, vehicle, promo) VALUES ($1, $2, $3, $4)`),
		insertUser:  s.MustPrepare(`INSERT INTO users (id, email, name) VALUES ($1, $2, $3)`),
	}
}

// Run executes ops per client in every region: a mix of promo browsing
// (70%), ride starts (25%) and signups (5%).
func (m *Movr) Run(p *sim.Proc, clientsPerRegion, opsPerClient int) error {
	wg := sim.NewWaitGroup(m.Cluster.Sim)
	var firstErr error
	for ri, region := range m.regions {
		for cl := 0; cl < clientsPerRegion; cl++ {
			ri, region := ri, region
			wg.Add(1)
			m.Cluster.Sim.Spawn(fmt.Sprintf("movr/%s/%d", region, cl), func(wp *sim.Proc) {
				defer wg.Done()
				s := m.session(region)
				ps := m.prepare(s)
				rng := wp.Rand()
				for op := 0; op < opsPerClient; op++ {
					roll := rng.Float64()
					start := wp.Now()
					var err error
					switch {
					case roll < 0.70:
						err = m.browse(wp, s, ps, rng.Intn(m.Promos))
						record(m.BrowseLat, wp.Now().Sub(start), err)
					case roll < 0.95:
						userID := ri*m.UsersPerRegion + 1 + rng.Intn(m.UsersPerRegion)
						err = m.startRide(wp, s, ps, userID, rng.Intn(m.Promos))
						record(m.RideLat, wp.Now().Sub(start), err)
					default:
						err = m.signup(wp, s, ps)
						record(m.SignupLat, wp.Now().Sub(start), err)
					}
					if err != nil && firstErr == nil {
						firstErr = err
					}
				}
			})
		}
	}
	wg.Wait(p)
	return firstErr
}

func (m *Movr) browse(p *sim.Proc, s *sql.Session, ps *movrStmts, promo int) error {
	res, err := s.ExecPrepared(p, ps.browsePromo, fmt.Sprintf("PROMO%d", promo))
	if err != nil {
		return err
	}
	if len(res.Rows) != 1 {
		return fmt.Errorf("movr: promo missing")
	}
	return nil
}

// startRide is the paper's canonical multi-table transaction: a REGIONAL
// BY ROW write that reads a GLOBAL dimension table, staying region-local.
func (m *Movr) startRide(p *sim.Proc, s *sql.Session, ps *movrStmts, userID, promo int) error {
	m.nextID++
	rideID := 1000000 + m.nextID
	return s.RunTxn(p, func(tx *txn.Txn) error {
		res, err := s.ExecPreparedTxn(p, tx, ps.userByID, int64(userID))
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return fmt.Errorf("movr: user %d missing", userID)
		}
		if _, err := s.ExecPreparedTxn(p, tx, ps.browsePromo, fmt.Sprintf("PROMO%d", promo)); err != nil {
			return err
		}
		_, err = s.ExecPreparedTxn(p, tx, ps.insertRide,
			int64(rideID), int64(userID), "scooter", fmt.Sprintf("PROMO%d", promo))
		return err
	})
}

func (m *Movr) signup(p *sim.Proc, s *sql.Session, ps *movrStmts) error {
	m.nextID++
	id := m.nextID
	_, err := s.ExecPrepared(p, ps.insertUser,
		int64(id), fmt.Sprintf("user%d@movr.com", id), fmt.Sprintf("user-%d", id))
	return err
}

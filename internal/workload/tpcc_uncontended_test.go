package workload

import (
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/sql"
)

// TestTPCCUncontended verifies new-order latency with one terminal per
// region: all transactions stay region-local except the ~10% with a remote
// stock line (§7.4).
func TestTPCCUncontended(t *testing.T) {
	c := cluster.New(cluster.Config{Seed: 5, Regions: cluster.ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	catalog := sql.NewCatalog()
	cfg := DefaultTPCCConfig()
	cfg.TerminalsPerRegion = 1
	cfg.TxnsPerTerminal = 10
	w := NewTPCC(c, catalog, cfg)
	var runErr error
	c.Sim.Spawn("bench", func(p *sim.Proc) {
		if err := w.SetupSchema(p); err != nil {
			runErr = err
			return
		}
		p.Sleep(sim.Second)
		if err := w.Load(p); err != nil {
			runErr = err
			return
		}
		p.Sleep(sim.Second)
		if err := w.Run(p); err != nil {
			runErr = err
			return
		}
	})
	c.Sim.RunFor(60 * 60 * sim.Second)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
	if p50 := w.NewOrderLat.Percentile(50); p50 > 250*sim.Millisecond {
		t.Errorf("new-order p50 = %v, want region-local", p50)
	}
	if p50 := w.PaymentLat.Percentile(50); p50 > 60*sim.Millisecond {
		t.Errorf("payment p50 = %v, want region-local", p50)
	}
	t.Logf("%s", Table(w.NewOrderLat, w.PaymentLat, w.OrderStatusLat, w.DeliveryLat, w.StockLevelLat))
}

// Package raft implements the consensus substrate that replicates each
// mrdb Range (paper §3.1): leader election, log replication with quorum
// commit, configuration changes, leadership transfer, and — central to the
// paper — learners ("non-voting replicas", §5.2) that receive the log and
// can serve follower reads but do not vote and therefore never affect write
// latency.
//
// The implementation runs on the deterministic simulator: timers come from
// sim.Simulation, transport from a caller-provided interface, and all state
// transitions happen in scheduler context.
package raft

import (
	"fmt"
	"sort"

	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// Role is a replica's current consensus role.
type Role int8

// Replica roles.
const (
	Follower Role = iota
	Candidate
	Leader
	Learner // receives the log, never votes or campaigns
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	case Learner:
		return "learner"
	}
	return "unknown"
}

// Entry is one log slot.
type Entry struct {
	Term  uint64
	Index uint64
	Data  interface{}
	// Conf, if non-nil, is a configuration change applied when the entry
	// commits.
	Conf *ConfChange
}

// ConfChangeType enumerates membership operations.
type ConfChangeType int8

// Membership operations.
const (
	AddVoter ConfChangeType = iota
	RemoveVoter
	AddLearner
	RemoveLearner
)

// ConfChange alters group membership.
type ConfChange struct {
	Type ConfChangeType
	Node simnet.NodeID
}

// Message is the union of Raft RPCs; Kind discriminates.
type Message struct {
	Kind MsgKind
	Term uint64
	From simnet.NodeID

	// RequestVote / response
	LastLogIndex uint64
	LastLogTerm  uint64
	VoteGranted  bool

	// AppendEntries / response
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	LeaderCommit uint64
	Success      bool
	MatchIndex   uint64
	// Payload carries opaque per-heartbeat data from the leader (mrdb
	// uses it for closed-timestamp propagation, paper §5.1.1).
	Payload interface{}

	// Snapshot install (leader → peer whose needed entries were compacted
	// away). Snapshot is opaque to raft; the kv layer serializes its
	// applied state at SnapIndex/SnapTerm.
	SnapIndex uint64
	SnapTerm  uint64
	Snapshot  interface{}

	// TimeoutNow triggers an immediate campaign (leadership transfer).
}

// MsgKind discriminates Message.
type MsgKind int8

// Message kinds.
const (
	MsgVote MsgKind = iota
	MsgVoteResp
	MsgApp
	MsgAppResp
	MsgTimeoutNow
	MsgSnap
)

// HardState is the durable core of a replica's consensus state: the pair
// that must survive a crash for Raft's voting rules to stay safe.
type HardState struct {
	Term uint64
	Vote simnet.NodeID
}

// Storage persists Raft state for one replica. A nil Storage in Config
// preserves the historical fully-synchronous in-memory behavior: done
// callbacks run before the call returns and nothing survives a crash.
//
// Implementations must provide FIFO durability: when the done callback of
// one Append fires, every earlier Append's data is durable too.
type Storage interface {
	// Append stages the hard state and entries (appended at their Index;
	// a batch whose first index overlaps previously staged entries
	// supersedes the overlapped suffix) and invokes done once durable.
	// done may never fire (crash); callers must not rely on it.
	Append(hs HardState, entries []Entry, done func())
	// Compact atomically rewrites the durable log so it holds exactly the
	// given tail of entries, with everything at or before (index, term)
	// owned by the latest checkpoint.
	Compact(index, term uint64, tail []Entry, hs HardState)
	// Reset atomically replaces the durable log after a snapshot install
	// at (index, term); the snapshot itself was persisted by the
	// ApplySnapshot callback before Reset is called.
	Reset(index, term uint64, hs HardState)
}

// Transport sends a message to a peer; implementations add network latency
// and drop traffic to failed nodes.
type Transport interface {
	Send(to simnet.NodeID, msg Message)
}

// Config parameterizes a Node.
type Config struct {
	ID       simnet.NodeID
	Voters   []simnet.NodeID
	Learners []simnet.NodeID

	Sim       *sim.Simulation
	Transport Transport

	// ElectionTimeout is the base follower patience; each check is
	// perturbed ±50% for tie-breaking. Default 2s (WAN-appropriate).
	ElectionTimeout sim.Duration
	// HeartbeatInterval is the leader's append/heartbeat cadence.
	// Default 400ms (GLOBAL ranges override it with the faster
	// closed-timestamp side-transport cadence).
	HeartbeatInterval sim.Duration

	// Apply is invoked on every replica, in log order, as entries commit.
	Apply func(e Entry)
	// OnLeaderChange fires when this node learns of a new leader.
	OnLeaderChange func(leader simnet.NodeID, term uint64)
	// HeartbeatPayload, if set on the leader, generates the opaque
	// payload attached to each outgoing heartbeat.
	HeartbeatPayload func() interface{}
	// OnHeartbeat, if set, receives payloads on followers/learners.
	OnHeartbeat func(from simnet.NodeID, payload interface{})

	// Storage, if set, persists hard state and log entries; promises to
	// peers (votes, append acks, the leader's own match index) are then
	// withheld until the corresponding fsync completes. Nil keeps the
	// historical synchronous in-memory behavior exactly.
	Storage Storage
	// Snapshot, if set, returns an opaque serialization of the applied
	// state machine, consistent at this node's applied index. The leader
	// calls it when a peer needs entries that were compacted away.
	Snapshot func() interface{}
	// ApplySnapshot installs an incoming snapshot at (index, term),
	// replacing the applied state machine. Called before the log is reset
	// around the snapshot; implementations should persist the snapshot.
	ApplySnapshot func(data interface{}, index, term uint64)
}

// ErrNotLeader is returned by Propose on non-leaders.
type ErrNotLeader struct {
	Leader simnet.NodeID // 0 if unknown
}

func (e *ErrNotLeader) Error() string {
	return fmt.Sprintf("raft: not leader (known leader: n%d)", e.Leader)
}

// ErrLeadershipLost fails proposals that were in flight when the leader
// stepped down; the command may or may not eventually commit.
var ErrLeadershipLost = fmt.Errorf("raft: leadership lost with proposal in flight")

// ProposeResult reports the fate of a proposal.
type ProposeResult struct {
	Index uint64
	Err   error
	// Acks lists the voters (including the leader itself) whose match
	// index had reached the entry when it committed — the critical quorum
	// that paid for this proposal's replication round trip. Sorted by node
	// ID; nil on error or when resolved away from the leader. The
	// observability layer uses it to count inter-region quorum round trips.
	Acks []simnet.NodeID
}

// Node is one replica's Raft state machine.
type Node struct {
	cfg  Config
	role Role

	term     uint64
	votedFor simnet.NodeID
	leader   simnet.NodeID

	// log[0] is a sentinel carrying the index/term of the last entry
	// subsumed by a checkpoint or snapshot (index 0 before any
	// compaction); real entries follow at ascending indices.
	log         []Entry
	commitIndex uint64
	applied     uint64
	// durableIndex is the highest log index known fsynced locally; the
	// node never tells a leader it matched an entry beyond it. With nil
	// Storage it tracks LastIndex.
	durableIndex uint64

	voters   map[simnet.NodeID]bool
	learners map[simnet.NodeID]bool

	// Leader state.
	nextIndex  map[simnet.NodeID]uint64
	matchIndex map[simnet.NodeID]uint64
	pending    map[uint64]*sim.Future[ProposeResult]

	// Candidate state.
	votes map[simnet.NodeID]bool

	lastHeard sim.Time
	stopped   bool
}

// NewNode constructs a replica. If the node appears in cfg.Learners it
// starts as a Learner, otherwise as a Follower. Call Start to arm timers.
func NewNode(cfg Config) *Node {
	if cfg.ElectionTimeout == 0 {
		cfg.ElectionTimeout = 2 * sim.Second
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 400 * sim.Millisecond
	}
	n := &Node{
		cfg:        cfg,
		log:        []Entry{{}},
		voters:     map[simnet.NodeID]bool{},
		learners:   map[simnet.NodeID]bool{},
		nextIndex:  map[simnet.NodeID]uint64{},
		matchIndex: map[simnet.NodeID]uint64{},
		pending:    map[uint64]*sim.Future[ProposeResult]{},
	}
	for _, v := range cfg.Voters {
		n.voters[v] = true
	}
	for _, l := range cfg.Learners {
		n.learners[l] = true
	}
	if n.learners[cfg.ID] {
		n.role = Learner
	}
	return n
}

// Start arms the election timer. Leaders are elected normally; tests and
// the cluster bootstrap may call Campaign for an immediate election.
func (n *Node) Start() {
	n.lastHeard = n.cfg.Sim.Now()
	n.scheduleElectionCheck()
}

// Stop halts timers and fails pending proposals.
func (n *Node) Stop() {
	n.stopped = true
	n.failPending()
}

// --- Introspection ---

// ID returns this replica's node ID.
func (n *Node) ID() simnet.NodeID { return n.cfg.ID }

// Role returns the replica's current role.
func (n *Node) Role() Role { return n.role }

// Term returns the current term.
func (n *Node) Term() uint64 { return n.term }

// Leader returns the last known leader (0 if unknown).
func (n *Node) Leader() simnet.NodeID { return n.leader }

// IsLeader reports whether this replica currently leads.
func (n *Node) IsLeader() bool { return n.role == Leader }

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// LastIndex returns the highest appended log index.
func (n *Node) LastIndex() uint64 { return n.log[len(n.log)-1].Index }

// FirstIndex returns the index of the log sentinel: everything at or below
// it has been folded into a checkpoint/snapshot.
func (n *Node) FirstIndex() uint64 { return n.offset() }

// DurableIndex returns the highest locally-fsynced log index.
func (n *Node) DurableIndex() uint64 { return n.durableIndex }

// Applied returns the highest applied log index.
func (n *Node) Applied() uint64 { return n.applied }

// AppliedTerm returns the term of the highest applied entry.
func (n *Node) AppliedTerm() uint64 { return n.at(n.applied).Term }

// offset is the sentinel's index; log position of index i is i-offset.
func (n *Node) offset() uint64 { return n.log[0].Index }

// at returns the entry at log index idx; idx must be in [offset, LastIndex].
func (n *Node) at(idx uint64) Entry { return n.log[idx-n.offset()] }

// persist stages the current hard state plus entries and runs done once
// durable. With nil Storage it completes synchronously, preserving the
// historical in-memory semantics event-for-event.
func (n *Node) persist(entries []Entry, done func()) {
	if n.cfg.Storage == nil {
		n.durableIndex = n.LastIndex()
		done()
		return
	}
	n.cfg.Storage.Append(HardState{Term: n.term, Vote: n.votedFor}, entries, done)
}

// markDurable advances durableIndex to idx, clamped to the current log end
// (a conflicting truncation may have discarded a suffix that was syncing).
func (n *Node) markDurable(idx uint64) {
	if last := n.LastIndex(); idx > last {
		idx = last
	}
	if idx > n.durableIndex {
		n.durableIndex = idx
	}
}

// Voters returns the current voter set.
func (n *Node) Voters() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(n.voters))
	for v := range n.voters {
		out = append(out, v)
	}
	return out
}

// Learners returns the current learner set.
func (n *Node) Learners() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(n.learners))
	for l := range n.learners {
		out = append(out, l)
	}
	return out
}

// IsVoter reports whether id is currently a voter.
func (n *Node) IsVoter(id simnet.NodeID) bool { return n.voters[id] }

// --- Timers ---

func (n *Node) scheduleElectionCheck() {
	if n.stopped {
		return
	}
	// Perturb the check interval so that two followers rarely campaign
	// simultaneously; deterministic via the simulation RNG.
	d := n.cfg.ElectionTimeout/2 + sim.Duration(n.cfg.Sim.Rand().Int63n(int64(n.cfg.ElectionTimeout)))
	n.cfg.Sim.After(d, func() {
		if n.stopped {
			return
		}
		if n.role != Leader && n.role != Learner {
			if n.cfg.Sim.Now().Sub(n.lastHeard) >= n.cfg.ElectionTimeout {
				n.Campaign()
			}
		}
		n.scheduleElectionCheck()
	})
}

func (n *Node) scheduleHeartbeat() {
	if n.stopped || n.role != Leader {
		return
	}
	n.broadcastAppend()
	n.cfg.Sim.After(n.cfg.HeartbeatInterval, func() { n.scheduleHeartbeat() })
}

// --- Elections ---

// Campaign starts an election for this replica.
func (n *Node) Campaign() {
	if n.role == Learner || n.stopped {
		return
	}
	n.term++
	n.role = Candidate
	n.votedFor = n.cfg.ID
	n.leader = 0
	n.votes = map[simnet.NodeID]bool{n.cfg.ID: true}
	n.lastHeard = n.cfg.Sim.Now()
	// The incremented term and self-vote must be durable before they are
	// announced, or a crash could let this node vote twice in the term.
	term := n.term
	n.persist(nil, func() {
		if n.stopped || n.term != term || n.role != Candidate {
			return
		}
		last := n.log[len(n.log)-1]
		for _, v := range n.sortedVoters() {
			if v == n.cfg.ID {
				continue
			}
			n.cfg.Transport.Send(v, Message{
				Kind: MsgVote, Term: term, From: n.cfg.ID,
				LastLogIndex: last.Index, LastLogTerm: last.Term,
			})
		}
		n.maybeWinElection()
	})
}

func (n *Node) maybeWinElection() {
	if n.role != Candidate {
		return
	}
	granted := 0
	for v := range n.votes {
		if n.voters[v] && n.votes[v] {
			granted++
		}
	}
	if granted > len(n.voters)/2 {
		n.becomeLeader()
	}
}

func (n *Node) becomeLeader() {
	n.role = Leader
	n.leader = n.cfg.ID
	last := n.LastIndex()
	for _, id := range n.peers() {
		n.nextIndex[id] = last + 1
		n.matchIndex[id] = 0
	}
	// The leader may only count its own log up to what is fsynced.
	n.matchIndex[n.cfg.ID] = n.durableIndex
	if n.cfg.OnLeaderChange != nil {
		n.cfg.OnLeaderChange(n.cfg.ID, n.term)
	}
	// Commit a no-op entry from the new term so prior-term entries can
	// commit (Raft §5.4.2).
	n.appendLocal(Entry{Data: nil})
	n.scheduleHeartbeat()
}

func (n *Node) stepDown(term uint64, leader simnet.NodeID) {
	wasLeader := n.role == Leader
	if term > n.term {
		n.term = term
		n.votedFor = 0
	}
	if n.role != Learner {
		n.role = Follower
	}
	if leader != 0 && leader != n.leader {
		n.leader = leader
		if n.cfg.OnLeaderChange != nil {
			n.cfg.OnLeaderChange(leader, n.term)
		}
	}
	if wasLeader {
		n.failPending()
	}
}

func (n *Node) failPending() {
	idxs := make([]uint64, 0, len(n.pending))
	for idx := range n.pending {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		f := n.pending[idx]
		delete(n.pending, idx)
		f.Set(ProposeResult{Index: idx, Err: ErrLeadershipLost})
	}
}

// SetHeartbeatInterval retunes the leader's append/heartbeat cadence (used
// when a range's closed-timestamp policy changes); it takes effect on the
// next tick.
func (n *Node) SetHeartbeatInterval(d sim.Duration) {
	if d > 0 {
		n.cfg.HeartbeatInterval = d
	}
}

// TransferLeadership asks target to campaign immediately. The current
// leader keeps serving until the target wins its election.
func (n *Node) TransferLeadership(target simnet.NodeID) {
	if n.role != Leader || !n.voters[target] || target == n.cfg.ID {
		return
	}
	// Bring the target fully up to date first, then tell it to campaign.
	n.sendAppend(target)
	n.cfg.Transport.Send(target, Message{Kind: MsgTimeoutNow, Term: n.term, From: n.cfg.ID})
}

// --- Log replication ---

// peers returns all other replicas in ascending node order. Deterministic
// iteration matters: message send order consumes network-jitter randomness,
// so map-order iteration would make runs irreproducible.
func (n *Node) peers() []simnet.NodeID {
	seen := map[simnet.NodeID]bool{}
	var out []simnet.NodeID
	add := func(id simnet.NodeID) {
		if id != n.cfg.ID && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for v := range n.voters {
		add(v)
	}
	for l := range n.learners {
		add(l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedVoters returns the voter set in ascending node order.
func (n *Node) sortedVoters() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(n.voters))
	for v := range n.voters {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (n *Node) appendLocal(e Entry) uint64 {
	e.Term = n.term
	e.Index = n.LastIndex() + 1
	n.log = append(n.log, e)
	idx, term := e.Index, n.term
	// The leader's own vote for the entry (its match index) counts toward
	// quorum only once the entry is on disk.
	n.persist([]Entry{e}, func() {
		if n.stopped {
			return
		}
		n.markDurable(idx)
		if n.role == Leader && n.term == term {
			if idx > n.matchIndex[n.cfg.ID] {
				n.matchIndex[n.cfg.ID] = idx
			}
			n.maybeCommit()
		}
	})
	return idx
}

// Propose replicates data, returning a future resolved once the entry
// commits and applies on this leader (or fails on leadership loss).
func (n *Node) Propose(data interface{}) (*sim.Future[ProposeResult], error) {
	if n.role != Leader {
		return nil, &ErrNotLeader{Leader: n.leader}
	}
	idx := n.appendLocal(Entry{Data: data})
	f := sim.NewFuture[ProposeResult](n.cfg.Sim)
	n.pending[idx] = f
	n.broadcastAppend()
	return f, nil
}

// ProposeConfChange replicates a membership change.
func (n *Node) ProposeConfChange(cc ConfChange) (*sim.Future[ProposeResult], error) {
	if n.role != Leader {
		return nil, &ErrNotLeader{Leader: n.leader}
	}
	idx := n.appendLocal(Entry{Conf: &cc})
	f := sim.NewFuture[ProposeResult](n.cfg.Sim)
	n.pending[idx] = f
	n.broadcastAppend()
	return f, nil
}

func (n *Node) broadcastAppend() {
	for _, id := range n.peers() {
		n.sendAppend(id)
	}
}

// maxBatch bounds entries per AppendEntries message.
const maxBatch = 256

func (n *Node) sendAppend(to simnet.NodeID) {
	next := n.nextIndex[to]
	if next == 0 {
		// A replica added by conf change after this range accumulated state:
		// initialize it with a snapshot (see applyConfChange). Replaying the
		// log from index 1 would miss state the log never carried.
		if n.cfg.Snapshot != nil {
			n.sendSnapshot(to)
			return
		}
		next = 1
		n.nextIndex[to] = 1
	}
	if next <= n.offset() {
		// The entries the peer needs were compacted into a checkpoint;
		// ship a snapshot of the applied state instead.
		n.sendSnapshot(to)
		return
	}
	prev := n.at(next - 1)
	var entries []Entry
	for i := next; i <= n.LastIndex() && len(entries) < maxBatch; i++ {
		entries = append(entries, n.at(i))
	}
	msg := Message{
		Kind: MsgApp, Term: n.term, From: n.cfg.ID,
		PrevLogIndex: prev.Index, PrevLogTerm: prev.Term,
		Entries: entries, LeaderCommit: n.commitIndex,
	}
	if n.cfg.HeartbeatPayload != nil {
		msg.Payload = n.cfg.HeartbeatPayload()
	}
	n.cfg.Transport.Send(to, msg)
}

// sendSnapshot ships the leader's applied state to a peer that fell behind
// the compacted log (paper §5.2: lagging replicas catch up via snapshots).
func (n *Node) sendSnapshot(to simnet.NodeID) {
	if n.cfg.Snapshot == nil {
		return // not snapshot-capable; the peer stays behind
	}
	idx := n.applied
	msg := Message{
		Kind: MsgSnap, Term: n.term, From: n.cfg.ID,
		SnapIndex: idx, SnapTerm: n.at(idx).Term,
		Snapshot: n.cfg.Snapshot(), LeaderCommit: n.commitIndex,
	}
	n.nextIndex[to] = idx + 1
	n.cfg.Transport.Send(to, msg)
}

func (n *Node) maybeCommit() {
	if n.role != Leader {
		return
	}
	for idx := n.LastIndex(); idx > n.commitIndex && idx > n.offset(); idx-- {
		if n.at(idx).Term != n.term {
			break // only commit entries from the current term by counting
		}
		count := 0
		for v := range n.voters {
			if n.matchIndex[v] >= idx {
				count++
			}
		}
		if count > len(n.voters)/2 {
			n.commitIndex = idx
			n.applyCommitted()
			break
		}
	}
}

// ackSet returns the sorted voters whose match index covers idx. Called at
// commit time on the leader, this is exactly the quorum whose acks
// committed the entry (slower voters have not matched it yet).
func (n *Node) ackSet(idx uint64) []simnet.NodeID {
	var acks []simnet.NodeID
	for v := range n.voters {
		if n.matchIndex[v] >= idx {
			acks = append(acks, v)
		}
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
	return acks
}

func (n *Node) applyCommitted() {
	for n.applied < n.commitIndex {
		n.applied++
		e := n.at(n.applied)
		if e.Conf != nil {
			n.applyConfChange(*e.Conf)
		}
		if n.cfg.Apply != nil && (e.Data != nil || e.Conf != nil) {
			n.cfg.Apply(e)
		}
		if f, ok := n.pending[e.Index]; ok {
			delete(n.pending, e.Index)
			f.Set(ProposeResult{Index: e.Index, Acks: n.ackSet(e.Index)})
		}
	}
}

func (n *Node) applyConfChange(cc ConfChange) {
	switch cc.Type {
	case AddVoter:
		delete(n.learners, cc.Node)
		n.voters[cc.Node] = true
	case RemoveVoter:
		delete(n.voters, cc.Node)
	case AddLearner:
		if !n.voters[cc.Node] {
			n.learners[cc.Node] = true
		}
	case RemoveLearner:
		delete(n.learners, cc.Node)
	}
	if cc.Node == n.cfg.ID {
		switch cc.Type {
		case AddVoter:
			if n.role == Learner {
				n.role = Follower
			}
		case AddLearner, RemoveVoter:
			if n.role == Leader {
				n.failPending()
			}
			n.role = Learner
		}
	}
	if n.role == Leader {
		if _, ok := n.nextIndex[cc.Node]; !ok {
			if n.cfg.Snapshot != nil {
				// A brand-new replica initializes from a snapshot of the
				// applied state, never by replaying the log from scratch:
				// the log cannot reproduce state that predates it (bulk
				// loads, data absorbed by merges). 0 is the sentinel
				// sendAppend turns into an initial snapshot.
				n.nextIndex[cc.Node] = 0
			} else {
				n.nextIndex[cc.Node] = 1
			}
			n.matchIndex[cc.Node] = 0
		}
		n.maybeCommit()
	}
}

// --- Message handling ---

// Step processes an incoming message. It must be called in scheduler
// context (the kv layer invokes it from network handlers).
func (n *Node) Step(msg Message) {
	if n.stopped {
		return
	}
	if msg.Term > n.term {
		n.stepDown(msg.Term, 0)
	}
	switch msg.Kind {
	case MsgVote:
		n.handleVote(msg)
	case MsgVoteResp:
		n.handleVoteResp(msg)
	case MsgApp:
		n.handleApp(msg)
	case MsgAppResp:
		n.handleAppResp(msg)
	case MsgSnap:
		n.handleSnap(msg)
	case MsgTimeoutNow:
		if msg.Term >= n.term && n.role != Learner {
			n.Campaign()
		}
	}
}

func (n *Node) handleVote(msg Message) {
	granted := false
	if msg.Term >= n.term && (n.votedFor == 0 || n.votedFor == msg.From) && n.role != Leader {
		last := n.log[len(n.log)-1]
		upToDate := msg.LastLogTerm > last.Term ||
			(msg.LastLogTerm == last.Term && msg.LastLogIndex >= last.Index)
		if upToDate {
			granted = true
			n.votedFor = msg.From
			n.lastHeard = n.cfg.Sim.Now()
		}
	}
	term := n.term
	reply := func() {
		n.cfg.Transport.Send(msg.From, Message{
			Kind: MsgVoteResp, Term: term, From: n.cfg.ID, VoteGranted: granted,
		})
	}
	if granted {
		// A vote is a promise: it must survive a crash, or the node could
		// vote for a different candidate in the same term after restart.
		n.persist(nil, func() {
			if !n.stopped {
				reply()
			}
		})
		return
	}
	reply()
}

func (n *Node) handleVoteResp(msg Message) {
	if n.role != Candidate || msg.Term != n.term {
		return
	}
	n.votes[msg.From] = msg.VoteGranted
	n.maybeWinElection()
}

func (n *Node) handleApp(msg Message) {
	if msg.Term < n.term {
		n.cfg.Transport.Send(msg.From, Message{
			Kind: MsgAppResp, Term: n.term, From: n.cfg.ID, Success: false,
		})
		return
	}
	n.lastHeard = n.cfg.Sim.Now()
	if n.role == Candidate {
		n.role = Follower
	}
	if n.leader != msg.From {
		n.leader = msg.From
		if n.cfg.OnLeaderChange != nil {
			n.cfg.OnLeaderChange(msg.From, msg.Term)
		}
	}
	// Entries at or below our checkpoint sentinel are already applied;
	// realign the leader's prev to the sentinel and skip them.
	if msg.PrevLogIndex < n.offset() {
		skip := n.offset() - msg.PrevLogIndex
		if uint64(len(msg.Entries)) <= skip {
			msg.Entries = nil
		} else {
			msg.Entries = msg.Entries[skip:]
		}
		msg.PrevLogIndex = n.log[0].Index
		msg.PrevLogTerm = n.log[0].Term
	}
	// Log matching.
	if msg.PrevLogIndex > n.LastIndex() || n.at(msg.PrevLogIndex).Term != msg.PrevLogTerm {
		n.cfg.Transport.Send(msg.From, Message{
			Kind: MsgAppResp, Term: n.term, From: n.cfg.ID, Success: false,
			MatchIndex: min64(msg.PrevLogIndex-1, n.LastIndex()),
		})
		return
	}
	// Append, truncating conflicts.
	var appended []Entry
	for _, e := range msg.Entries {
		if e.Index <= n.offset() {
			continue
		}
		if e.Index <= n.LastIndex() {
			if n.at(e.Index).Term != e.Term {
				n.log = n.log[:e.Index-n.offset()]
				if n.durableIndex > n.LastIndex() {
					n.durableIndex = n.LastIndex()
				}
				n.log = append(n.log, e)
				appended = append(appended, e)
			}
		} else {
			n.log = append(n.log, e)
			appended = append(appended, e)
		}
	}
	if msg.LeaderCommit > n.commitIndex {
		n.commitIndex = min64(msg.LeaderCommit, n.LastIndex())
		n.applyCommitted()
	}
	if n.cfg.OnHeartbeat != nil && msg.Payload != nil {
		n.cfg.OnHeartbeat(msg.From, msg.Payload)
	}
	// The ack promises the leader these entries are stable here, so it is
	// withheld until they are fsynced. Syncs are FIFO, so acking the
	// captured tail index is safe even if later appends are still in
	// flight. The term is captured too: if a new leader truncates our log
	// while the fsync is pending, the stale ack must not be credited.
	last, term, from := n.LastIndex(), n.term, msg.From
	n.persist(appended, func() {
		if n.stopped || n.term != term {
			return
		}
		n.markDurable(last)
		n.cfg.Transport.Send(from, Message{
			Kind: MsgAppResp, Term: term, From: n.cfg.ID, Success: true,
			MatchIndex: n.durableIndex,
		})
	})
}

// handleSnap installs a leader-shipped snapshot, replacing the applied
// state machine and restarting the log at the snapshot index.
func (n *Node) handleSnap(msg Message) {
	if msg.Term < n.term {
		n.cfg.Transport.Send(msg.From, Message{
			Kind: MsgAppResp, Term: n.term, From: n.cfg.ID, Success: false,
		})
		return
	}
	n.lastHeard = n.cfg.Sim.Now()
	if n.role == Candidate {
		n.role = Follower
	}
	if n.leader != msg.From {
		n.leader = msg.From
		if n.cfg.OnLeaderChange != nil {
			n.cfg.OnLeaderChange(msg.From, msg.Term)
		}
	}
	if msg.SnapIndex <= n.commitIndex {
		// Stale or redundant snapshot; report what we actually hold.
		n.cfg.Transport.Send(msg.From, Message{
			Kind: MsgAppResp, Term: n.term, From: n.cfg.ID, Success: true,
			MatchIndex: n.durableIndex,
		})
		return
	}
	if n.cfg.ApplySnapshot != nil {
		n.cfg.ApplySnapshot(msg.Snapshot, msg.SnapIndex, msg.SnapTerm)
	}
	n.log = []Entry{{Index: msg.SnapIndex, Term: msg.SnapTerm}}
	n.commitIndex = msg.SnapIndex
	n.applied = msg.SnapIndex
	n.durableIndex = msg.SnapIndex
	if n.cfg.Storage != nil {
		// ApplySnapshot persisted the checkpoint; now the durable log is
		// reset around it (both atomic, so the ack below is safe).
		n.cfg.Storage.Reset(msg.SnapIndex, msg.SnapTerm, HardState{Term: n.term, Vote: n.votedFor})
	}
	n.cfg.Transport.Send(msg.From, Message{
		Kind: MsgAppResp, Term: n.term, From: n.cfg.ID, Success: true,
		MatchIndex: msg.SnapIndex,
	})
}

// Compact trims the in-memory log through upTo (clamped to the applied
// index), leaving the sentinel at upTo, and rewrites the durable log to
// match. The caller must already have checkpointed the applied state at or
// beyond upTo.
func (n *Node) Compact(upTo uint64) {
	if upTo > n.applied {
		upTo = n.applied
	}
	if upTo <= n.offset() {
		return
	}
	term := n.at(upTo).Term
	tail := append([]Entry(nil), n.log[upTo-n.offset()+1:]...)
	n.log = append([]Entry{{Index: upTo, Term: term}}, tail...)
	if n.cfg.Storage != nil {
		n.cfg.Storage.Compact(upTo, term, tail, HardState{Term: n.term, Vote: n.votedFor})
		// The rewrite persists the whole remaining tail at once.
		n.durableIndex = n.LastIndex()
	}
}

// Restore primes a freshly-constructed node from recovered durable state:
// hard state, the checkpoint position (which becomes the log sentinel and
// the applied/commit floor), and the surviving log tail. Call before Start.
// Entries beyond the checkpoint are NOT applied here; they re-commit
// through the normal Raft flow once a leader confirms them.
func (n *Node) Restore(hs HardState, ckptIndex, ckptTerm uint64, tail []Entry) {
	n.term = hs.Term
	n.votedFor = hs.Vote
	n.log = append([]Entry{{Index: ckptIndex, Term: ckptTerm}}, tail...)
	n.commitIndex = ckptIndex
	n.applied = ckptIndex
	n.durableIndex = n.LastIndex()
}

func (n *Node) handleAppResp(msg Message) {
	if n.role != Leader || msg.Term != n.term {
		return
	}
	if msg.Success {
		if msg.MatchIndex > n.matchIndex[msg.From] {
			n.matchIndex[msg.From] = msg.MatchIndex
		}
		n.nextIndex[msg.From] = msg.MatchIndex + 1
		n.maybeCommit()
		// Keep streaming if the peer is behind.
		if n.nextIndex[msg.From] <= n.LastIndex() {
			n.sendAppend(msg.From)
		}
	} else {
		// Back off nextIndex and retry.
		ni := n.nextIndex[msg.From]
		if msg.MatchIndex+1 < ni {
			n.nextIndex[msg.From] = msg.MatchIndex + 1
		} else if ni > 1 {
			n.nextIndex[msg.From] = ni - 1
		}
		n.sendAppend(msg.From)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

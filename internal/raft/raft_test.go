package raft

import (
	"fmt"
	"testing"

	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// harness wires a Raft group over a simulated network.
type harness struct {
	s     *sim.Simulation
	net   *simnet.Network
	nodes map[simnet.NodeID]*Node
	// applied records Data values applied per node, in order.
	applied map[simnet.NodeID][]interface{}
}

type harnessTransport struct {
	h    *harness
	from simnet.NodeID
}

func (t *harnessTransport) Send(to simnet.NodeID, msg Message) {
	t.h.net.Send(t.from, to, msg)
}

// newHarness builds a group with the given voters and learners, one node
// per zone across up to three regions.
func newHarness(t *testing.T, seed int64, voters, learners []simnet.NodeID) *harness {
	t.Helper()
	s := sim.New(seed)
	topo := simnet.NewTable1Topology()
	topo.Jitter = 0.02
	regions := []simnet.Region{simnet.USEast1, simnet.EuropeW2, simnet.AsiaNE1}
	all := append(append([]simnet.NodeID{}, voters...), learners...)
	for i, id := range all {
		r := regions[i%len(regions)]
		topo.AddNode(id, simnet.Locality{Region: r, Zone: simnet.Zone(fmt.Sprintf("%s-%d", r, i))})
	}
	h := &harness{
		s:       s,
		net:     simnet.NewNetwork(s, topo),
		nodes:   map[simnet.NodeID]*Node{},
		applied: map[simnet.NodeID][]interface{}{},
	}
	for _, id := range all {
		id := id
		n := NewNode(Config{
			ID:        id,
			Voters:    voters,
			Learners:  learners,
			Sim:       s,
			Transport: &harnessTransport{h: h, from: id},
			Apply: func(e Entry) {
				if e.Data != nil {
					h.applied[id] = append(h.applied[id], e.Data)
				}
			},
		})
		h.nodes[id] = n
		h.net.Register(id, func(m simnet.Message) {
			n.Step(m.Payload.(Message))
		})
		n.Start()
	}
	return h
}

func (h *harness) leader() *Node {
	for _, n := range h.nodes {
		if n.IsLeader() && !h.net.NodeDown(n.ID()) {
			return n
		}
	}
	return nil
}

func (h *harness) waitForLeader(t *testing.T, within sim.Duration) *Node {
	t.Helper()
	deadline := h.s.Now().Add(within)
	for h.s.Now() < deadline {
		h.s.RunFor(100 * sim.Millisecond)
		if l := h.leader(); l != nil {
			return l
		}
	}
	t.Fatalf("no leader within %v", within)
	return nil
}

func TestElectLeader(t *testing.T) {
	h := newHarness(t, 1, []simnet.NodeID{1, 2, 3}, nil)
	l := h.waitForLeader(t, 10*sim.Second)
	if l == nil {
		t.Fatal("no leader")
	}
	// All voters agree on the leader after propagation.
	h.s.RunFor(2 * sim.Second)
	for id, n := range h.nodes {
		if n.Leader() != l.ID() {
			t.Errorf("node %d thinks leader is %d, want %d", id, n.Leader(), l.ID())
		}
	}
}

func TestExplicitCampaign(t *testing.T) {
	h := newHarness(t, 2, []simnet.NodeID{1, 2, 3}, nil)
	h.nodes[2].Campaign()
	h.s.RunFor(2 * sim.Second)
	if !h.nodes[2].IsLeader() {
		t.Fatal("explicit campaign did not win")
	}
}

func TestProposeCommitApply(t *testing.T) {
	h := newHarness(t, 3, []simnet.NodeID{1, 2, 3}, nil)
	h.nodes[1].Campaign()
	h.s.RunFor(2 * sim.Second)
	l := h.nodes[1]
	var idx uint64
	h.s.Spawn("proposer", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			f, err := l.Propose(fmt.Sprintf("cmd-%d", i))
			if err != nil {
				t.Errorf("propose: %v", err)
				return
			}
			res := f.Wait(p)
			if res.Err != nil {
				t.Errorf("commit: %v", res.Err)
			}
			idx = res.Index
		}
	})
	h.s.RunFor(10 * sim.Second)
	if idx == 0 {
		t.Fatal("nothing committed")
	}
	for id, n := range h.nodes {
		got := h.applied[id]
		if len(got) != 5 {
			t.Fatalf("node %d applied %d entries: %v", id, len(got), got)
		}
		for i, v := range got {
			if v.(string) != fmt.Sprintf("cmd-%d", i) {
				t.Fatalf("node %d applied out of order: %v", id, got)
			}
		}
		_ = n
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	h := newHarness(t, 4, []simnet.NodeID{1, 2, 3}, nil)
	h.nodes[1].Campaign()
	h.s.RunFor(2 * sim.Second)
	_, err := h.nodes[2].Propose("x")
	if _, ok := err.(*ErrNotLeader); !ok {
		t.Fatalf("expected ErrNotLeader, got %v", err)
	}
}

func TestLearnerReplicatesButNeverVotes(t *testing.T) {
	h := newHarness(t, 5, []simnet.NodeID{1, 2, 3}, []simnet.NodeID{4, 5})
	h.nodes[1].Campaign()
	h.s.RunFor(2 * sim.Second)
	h.s.Spawn("proposer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			f, err := h.nodes[1].Propose(i)
			if err != nil {
				t.Errorf("propose: %v", err)
				return
			}
			f.Wait(p)
		}
	})
	h.s.RunFor(5 * sim.Second)
	// Learners applied everything.
	for _, id := range []simnet.NodeID{4, 5} {
		if len(h.applied[id]) != 3 {
			t.Fatalf("learner %d applied %d entries", id, len(h.applied[id]))
		}
		if h.nodes[id].Role() != Learner {
			t.Fatalf("learner %d has role %v", id, h.nodes[id].Role())
		}
	}
}

func TestLearnersDoNotAffectQuorum(t *testing.T) {
	// 3 voters + 2 learners; crash both learners: commits proceed.
	h := newHarness(t, 6, []simnet.NodeID{1, 2, 3}, []simnet.NodeID{4, 5})
	h.nodes[1].Campaign()
	h.s.RunFor(2 * sim.Second)
	h.net.CrashNode(4)
	h.net.CrashNode(5)
	committed := false
	h.s.Spawn("proposer", func(p *sim.Proc) {
		f, err := h.nodes[1].Propose("survives")
		if err != nil {
			t.Errorf("propose: %v", err)
			return
		}
		if res := f.Wait(p); res.Err == nil {
			committed = true
		}
	})
	h.s.RunFor(5 * sim.Second)
	if !committed {
		t.Fatal("commit blocked on crashed learners")
	}
}

func TestLeaderFailover(t *testing.T) {
	h := newHarness(t, 7, []simnet.NodeID{1, 2, 3}, nil)
	h.nodes[1].Campaign()
	h.s.RunFor(2 * sim.Second)
	if !h.nodes[1].IsLeader() {
		t.Fatal("setup: node 1 not leader")
	}
	h.net.CrashNode(1)
	l := h.waitForLeader(t, 30*sim.Second)
	if l.ID() == 1 {
		t.Fatal("crashed node still leader")
	}
	// The new leader can commit.
	ok := false
	h.s.Spawn("proposer", func(p *sim.Proc) {
		f, err := l.Propose("after-failover")
		if err != nil {
			t.Errorf("propose: %v", err)
			return
		}
		if res := f.Wait(p); res.Err == nil {
			ok = true
		}
	})
	h.s.RunFor(5 * sim.Second)
	if !ok {
		t.Fatal("new leader cannot commit")
	}
}

func TestNoQuorumNoCommit(t *testing.T) {
	h := newHarness(t, 8, []simnet.NodeID{1, 2, 3}, nil)
	h.nodes[1].Campaign()
	h.s.RunFor(2 * sim.Second)
	h.net.CrashNode(2)
	h.net.CrashNode(3)
	committed := false
	h.s.Spawn("proposer", func(p *sim.Proc) {
		f, err := h.nodes[1].Propose("doomed")
		if err != nil {
			return
		}
		if res, ok := f.WaitTimeout(p, 20*sim.Second); ok && res.Err == nil {
			committed = true
		}
	})
	h.s.RunFor(30 * sim.Second)
	if committed {
		t.Fatal("committed without quorum")
	}
}

func TestLeadershipTransfer(t *testing.T) {
	h := newHarness(t, 9, []simnet.NodeID{1, 2, 3}, nil)
	h.nodes[1].Campaign()
	h.s.RunFor(2 * sim.Second)
	h.nodes[1].TransferLeadership(3)
	h.s.RunFor(3 * sim.Second)
	if !h.nodes[3].IsLeader() {
		t.Fatalf("transfer failed; roles: %v %v %v",
			h.nodes[1].Role(), h.nodes[2].Role(), h.nodes[3].Role())
	}
}

func TestConfChangeAddLearnerThenPromote(t *testing.T) {
	h := newHarness(t, 10, []simnet.NodeID{1, 2, 3}, []simnet.NodeID{4})
	h.nodes[1].Campaign()
	h.s.RunFor(2 * sim.Second)
	// Promote learner 4 to voter.
	h.s.Spawn("reconfig", func(p *sim.Proc) {
		f, err := h.nodes[1].ProposeConfChange(ConfChange{Type: AddVoter, Node: 4})
		if err != nil {
			t.Errorf("conf change: %v", err)
			return
		}
		f.Wait(p)
	})
	h.s.RunFor(5 * sim.Second)
	if !h.nodes[1].IsVoter(4) {
		t.Fatal("leader does not see node 4 as voter")
	}
	if h.nodes[4].Role() == Learner {
		t.Fatal("node 4 still a learner after promotion")
	}
	// Quorum is now 3 of 4; crash two voters, leaving 1 and 4: no commit.
	h.net.CrashNode(2)
	h.net.CrashNode(3)
	committed := false
	h.s.Spawn("proposer", func(p *sim.Proc) {
		f, err := h.nodes[1].Propose("needs-3-of-4")
		if err != nil {
			return
		}
		if res, ok := f.WaitTimeout(p, 10*sim.Second); ok && res.Err == nil {
			committed = true
		}
	})
	h.s.RunFor(15 * sim.Second)
	if committed {
		t.Fatal("committed with only 2 of 4 voters reachable")
	}
}

func TestHeartbeatPayloadDelivery(t *testing.T) {
	s := sim.New(11)
	topo := simnet.NewTable1Topology()
	topo.Jitter = 0
	topo.AddNode(1, simnet.Locality{Region: simnet.USEast1, Zone: "a"})
	topo.AddNode(2, simnet.Locality{Region: simnet.EuropeW2, Zone: "b"})
	topo.AddNode(3, simnet.Locality{Region: simnet.AsiaNE1, Zone: "c"})
	net := simnet.NewNetwork(s, topo)
	h := &harness{s: s, net: net, nodes: map[simnet.NodeID]*Node{}, applied: map[simnet.NodeID][]interface{}{}}
	seq := 0
	received := map[simnet.NodeID]int{}
	for _, id := range []simnet.NodeID{1, 2, 3} {
		id := id
		cfg := Config{
			ID: id, Voters: []simnet.NodeID{1, 2, 3}, Sim: s,
			Transport: &harnessTransport{h: h, from: id},
			OnHeartbeat: func(from simnet.NodeID, payload interface{}) {
				if v, ok := payload.(int); ok && v > received[id] {
					received[id] = v
				}
			},
		}
		if id == 1 {
			cfg.HeartbeatPayload = func() interface{} { seq++; return seq }
		}
		n := NewNode(cfg)
		h.nodes[id] = n
		net.Register(id, func(m simnet.Message) { n.Step(m.Payload.(Message)) })
		n.Start()
	}
	h.nodes[1].Campaign()
	s.RunFor(5 * sim.Second)
	if received[2] == 0 || received[3] == 0 {
		t.Fatalf("followers missed heartbeat payloads: %v", received)
	}
}

func TestDeterministicReplication(t *testing.T) {
	run := func() []interface{} {
		h := newHarness(t, 42, []simnet.NodeID{1, 2, 3}, []simnet.NodeID{4})
		h.nodes[1].Campaign()
		h.s.RunFor(2 * sim.Second)
		h.s.Spawn("proposer", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(sim.Duration(p.Rand().Intn(100)) * sim.Millisecond)
				if f, err := h.nodes[1].Propose(i); err == nil {
					f.Wait(p)
				}
			}
		})
		h.s.RunFor(20 * sim.Second)
		return h.applied[4]
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

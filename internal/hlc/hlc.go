// Package hlc implements hybrid logical clocks (HLC) over the simulated
// wall clocks of mrdb nodes.
//
// Every node owns a Clock fed by a WallSource. In the simulator the wall
// source is the virtual clock plus a per-node skew, which lets tests and
// benchmarks explore behaviour under clock skew up to a configured
// max_clock_offset — the quantity that sizes transaction uncertainty
// intervals and bounds commit-wait time for global transactions (paper §6).
package hlc

import (
	"fmt"

	"mrdb/internal/sim"
)

// Timestamp is a hybrid logical timestamp: a wall time in nanoseconds and a
// logical counter that breaks ties between events at the same wall time.
//
// The zero Timestamp sorts before every other timestamp and means "no
// timestamp".
type Timestamp struct {
	WallTime int64
	Logical  int32
}

// MinTimestamp is the zero timestamp.
var MinTimestamp = Timestamp{}

// MaxTimestamp is greater than every real timestamp.
var MaxTimestamp = Timestamp{WallTime: 1<<63 - 1, Logical: 1<<31 - 1}

// IsEmpty reports whether t is the zero timestamp.
func (t Timestamp) IsEmpty() bool { return t.WallTime == 0 && t.Logical == 0 }

// Less reports t < u.
func (t Timestamp) Less(u Timestamp) bool {
	if t.WallTime != u.WallTime {
		return t.WallTime < u.WallTime
	}
	return t.Logical < u.Logical
}

// LessEq reports t <= u.
func (t Timestamp) LessEq(u Timestamp) bool { return !u.Less(t) }

// Equal reports t == u.
func (t Timestamp) Equal(u Timestamp) bool { return t == u }

// Compare returns -1, 0 or +1 as t is before, equal to, or after u.
func (t Timestamp) Compare(u Timestamp) int {
	switch {
	case t.Less(u):
		return -1
	case u.Less(t):
		return 1
	default:
		return 0
	}
}

// Max returns the later of t and u.
func (t Timestamp) Max(u Timestamp) Timestamp {
	if t.Less(u) {
		return u
	}
	return t
}

// Min returns the earlier of t and u.
func (t Timestamp) Min(u Timestamp) Timestamp {
	if u.Less(t) {
		return u
	}
	return t
}

// Add returns a timestamp d later in wall time, with the logical counter
// preserved only when d is zero.
func (t Timestamp) Add(d sim.Duration) Timestamp {
	if d == 0 {
		return t
	}
	return Timestamp{WallTime: t.WallTime + int64(d)}
}

// Next returns the immediately following timestamp (logical+1).
func (t Timestamp) Next() Timestamp {
	if t.Logical == 1<<31-1 {
		return Timestamp{WallTime: t.WallTime + 1}
	}
	return Timestamp{WallTime: t.WallTime, Logical: t.Logical + 1}
}

// Prev returns the immediately preceding timestamp.
func (t Timestamp) Prev() Timestamp {
	if t.Logical > 0 {
		return Timestamp{WallTime: t.WallTime, Logical: t.Logical - 1}
	}
	if t.WallTime > 0 {
		return Timestamp{WallTime: t.WallTime - 1, Logical: 1<<31 - 1}
	}
	return Timestamp{}
}

// FloorWall returns the timestamp with the same wall time and zero logical.
func (t Timestamp) FloorWall() Timestamp { return Timestamp{WallTime: t.WallTime} }

// String renders the timestamp as wall.logical in seconds.
func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%09d,%d", t.WallTime/1e9, t.WallTime%1e9, t.Logical)
}

// WallSource supplies the physical component of an HLC. Implementations must
// be monotonically non-decreasing.
type WallSource interface {
	WallNow() int64
}

// SimWallSource derives a node's wall clock from the simulation's virtual
// clock plus a fixed skew. A positive skew means the node's clock runs ahead
// of true (virtual) time.
type SimWallSource struct {
	Sim  *sim.Simulation
	Skew sim.Duration
}

// WallNow implements WallSource.
func (s SimWallSource) WallNow() int64 {
	w := int64(s.Sim.Now()) + int64(s.Skew)
	if w < 0 {
		return 0
	}
	return w
}

// ManualWallSource is a hand-advanced wall clock for unit tests.
type ManualWallSource struct{ Wall int64 }

// WallNow implements WallSource.
func (m *ManualWallSource) WallNow() int64 { return m.Wall }

// Advance moves the manual clock forward by d.
func (m *ManualWallSource) Advance(d sim.Duration) { m.Wall += int64(d) }

// Clock is a hybrid logical clock. It is not internally synchronized: in the
// simulator all callers run under the cooperative scheduler, and real
// concurrent use is out of scope.
type Clock struct {
	source    WallSource
	maxOffset sim.Duration
	last      Timestamp
}

// NewClock returns an HLC fed by source, with the given maximum tolerated
// clock offset between any two nodes in the cluster.
func NewClock(source WallSource, maxOffset sim.Duration) *Clock {
	return &Clock{source: source, maxOffset: maxOffset}
}

// MaxOffset returns the configured maximum clock offset; it sizes
// transaction uncertainty intervals.
func (c *Clock) MaxOffset() sim.Duration { return c.maxOffset }

// Now returns the next HLC timestamp: at least wall time, and strictly after
// every timestamp previously returned or observed via Update.
func (c *Clock) Now() Timestamp {
	wall := c.source.WallNow()
	if wall > c.last.WallTime {
		c.last = Timestamp{WallTime: wall}
	} else {
		c.last = c.last.Next()
	}
	return c.last
}

// PhysicalNow returns the raw wall time without advancing the HLC.
func (c *Clock) PhysicalNow() int64 { return c.source.WallNow() }

// Update forwards the clock to at least t, implementing the HLC receive
// rule: after observing a message stamped t, all local timestamps are > t.
func (c *Clock) Update(t Timestamp) {
	if c.last.Less(t) {
		c.last = t
	}
}

// NowAfter blocks conceptually until the clock exceeds t; in practice it
// returns the duration a caller must sleep so that, afterwards, Now() > t.
// It is the primitive behind commit wait (paper §6.2): the coordinator
// delays acknowledging a future-time commit until its local HLC passes the
// commit timestamp.
func (c *Clock) NowAfter(t Timestamp) sim.Duration {
	wall := c.source.WallNow()
	if wall > t.WallTime {
		return 0
	}
	// Sleep until wall time strictly exceeds t.WallTime.
	return sim.Duration(t.WallTime-wall) + sim.Nanosecond
}

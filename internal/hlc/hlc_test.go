package hlc

import (
	"sort"
	"testing"
	"testing/quick"

	"mrdb/internal/sim"
)

func ts(wall int64, logical int32) Timestamp {
	return Timestamp{WallTime: wall, Logical: logical}
}

func TestTimestampOrdering(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		less bool
	}{
		{ts(1, 0), ts(2, 0), true},
		{ts(2, 0), ts(1, 0), false},
		{ts(1, 1), ts(1, 2), true},
		{ts(1, 2), ts(1, 2), false},
		{ts(0, 0), ts(0, 1), true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v < %v = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !ts(1, 1).LessEq(ts(1, 1)) {
		t.Error("LessEq not reflexive")
	}
	if MinTimestamp.Less(MinTimestamp) {
		t.Error("zero < zero")
	}
	if !MinTimestamp.Less(MaxTimestamp) {
		t.Error("min !< max")
	}
}

func TestTimestampNextPrev(t *testing.T) {
	a := ts(5, 7)
	if a.Next() != ts(5, 8) {
		t.Errorf("Next = %v", a.Next())
	}
	if a.Next().Prev() != a {
		t.Errorf("Next.Prev != identity")
	}
	b := ts(5, 0)
	if b.Prev() != ts(4, 1<<31-1) {
		t.Errorf("Prev across wall = %v", b.Prev())
	}
	if b.Prev().Next() != b {
		t.Errorf("Prev.Next != identity at wall boundary")
	}
}

func TestTimestampMaxMin(t *testing.T) {
	a, b := ts(1, 5), ts(2, 0)
	if a.Max(b) != b || b.Max(a) != b {
		t.Error("Max wrong")
	}
	if a.Min(b) != a || b.Min(a) != a {
		t.Error("Min wrong")
	}
}

func TestClockMonotonic(t *testing.T) {
	src := &ManualWallSource{Wall: 100}
	c := NewClock(src, 0)
	prev := c.Now()
	for i := 0; i < 100; i++ {
		// Wall clock frozen: logical must climb.
		cur := c.Now()
		if !prev.Less(cur) {
			t.Fatalf("clock not monotonic: %v then %v", prev, cur)
		}
		prev = cur
	}
	src.Advance(50)
	cur := c.Now()
	if cur.WallTime != 150 || cur.Logical != 0 {
		t.Fatalf("clock did not adopt advanced wall time: %v", cur)
	}
}

func TestClockUpdate(t *testing.T) {
	src := &ManualWallSource{Wall: 100}
	c := NewClock(src, 0)
	c.Update(ts(500, 3))
	got := c.Now()
	if !ts(500, 3).Less(got) {
		t.Fatalf("Now after Update(500.3) = %v, want > 500.3", got)
	}
	// Updating backwards is a no-op.
	c.Update(ts(10, 0))
	got2 := c.Now()
	if !got.Less(got2) {
		t.Fatalf("clock regressed after stale update")
	}
}

func TestSimWallSourceSkew(t *testing.T) {
	s := sim.New(1)
	fast := SimWallSource{Sim: s, Skew: 10 * sim.Millisecond}
	slow := SimWallSource{Sim: s, Skew: -10 * sim.Millisecond}
	s.Schedule(sim.Time(100*sim.Millisecond), func() {
		if fast.WallNow()-slow.WallNow() != int64(20*sim.Millisecond) {
			t.Errorf("skew spread wrong")
		}
	})
	s.Run()
	if slow.WallNow() < 0 {
		t.Error("negative wall time not clamped")
	}
}

func TestNowAfterCommitWait(t *testing.T) {
	src := &ManualWallSource{Wall: 1000}
	c := NewClock(src, 250)
	// Commit timestamp 200ns in the future: must wait just past it.
	d := c.NowAfter(ts(1200, 0))
	if d != 201 {
		t.Fatalf("NowAfter = %v, want 201", d)
	}
	// Already-past timestamps require no wait.
	if c.NowAfter(ts(999, 5)) != 0 {
		t.Fatal("past timestamp should not wait")
	}
	src.Advance(sim.Duration(d))
	if c.NowAfter(ts(1200, 0)) != 0 {
		t.Fatal("wait did not satisfy NowAfter")
	}
	if got := c.Now(); !ts(1200, 0).Less(got) {
		t.Fatalf("after waiting, Now = %v, want > 1200", got)
	}
}

// Property: Compare is a total order consistent with Less.
func TestQuickCompareTotalOrder(t *testing.T) {
	f := func(aw, bw uint32, al, bl uint8) bool {
		a := ts(int64(aw), int32(al))
		b := ts(int64(bw), int32(bl))
		c := a.Compare(b)
		switch {
		case a.Less(b):
			return c == -1 && b.Compare(a) == 1
		case b.Less(a):
			return c == 1 && b.Compare(a) == -1
		default:
			return c == 0 && a == b
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a sequence of interleaved Now/Update calls yields strictly
// increasing timestamps from Now.
func TestQuickClockMonotonicUnderUpdates(t *testing.T) {
	f := func(ops []uint16) bool {
		src := &ManualWallSource{Wall: 1}
		c := NewClock(src, 0)
		var seen []Timestamp
		for _, op := range ops {
			switch op % 3 {
			case 0:
				seen = append(seen, c.Now())
			case 1:
				c.Update(ts(int64(op)*7, int32(op%5)))
			case 2:
				src.Advance(sim.Duration(op % 100))
			}
		}
		return sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i].Less(seen[j]) })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

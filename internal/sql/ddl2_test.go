package sql

import (
	"strings"
	"testing"

	"mrdb/internal/sim"
)

// TestSQLExplainAndShowRanges covers the introspection statements.
func TestSQLExplainAndShowRanges(t *testing.T) {
	h := newSQLHarness(101)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		res, err := s.Exec(p, `EXPLAIN SELECT name FROM users WHERE email = 'a@b.c'`)
		if err != nil {
			t.Error(err)
			return
		}
		flat := ""
		for _, row := range res.Rows {
			flat += FormatDatum(row[0]) + "=" + FormatDatum(row[1]) + ";"
		}
		for _, want := range []string{
			"index=users_email_key", "locality optimized search=true",
			"locality=REGIONAL BY ROW", "region pinned=false",
		} {
			if !strings.Contains(flat, want) {
				t.Errorf("EXPLAIN missing %q in %q", want, flat)
			}
		}
		// A region-pinned plan.
		res, err = s.Exec(p, `EXPLAIN SELECT name FROM users WHERE id = 1 AND crdb_region = 'us-east1'`)
		if err != nil {
			t.Error(err)
			return
		}
		flat = ""
		for _, row := range res.Rows {
			flat += FormatDatum(row[0]) + "=" + FormatDatum(row[1]) + ";"
		}
		if !strings.Contains(flat, "region pinned=true") {
			t.Errorf("pinned EXPLAIN: %q", flat)
		}

		res, err = s.Exec(p, `SHOW RANGES FROM TABLE users`)
		if err != nil {
			t.Error(err)
			return
		}
		// users: 2 indexes x 3 partitions.
		if len(res.Rows) != 6 {
			t.Errorf("SHOW RANGES rows = %d, want 6", len(res.Rows))
		}
		res, err = s.Exec(p, `SHOW RANGES FROM TABLE promo_codes`)
		if err != nil || len(res.Rows) != 1 {
			t.Errorf("GLOBAL table ranges: %v %v", res, err)
			return
		}
		if res.Rows[0][6] != "LEAD" {
			t.Errorf("GLOBAL range policy = %v", res.Rows[0][5])
		}
	})
}

// TestSQLDropAndTruncate covers table teardown.
func TestSQLDropAndTruncate(t *testing.T) {
	h := newSQLHarness(102)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		for i := 1; i <= 4; i++ {
			if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (`+itoa(i)+`, 'u`+itoa(i)+`@x.com', 'u')`); err != nil {
				t.Error(err)
				return
			}
		}
		res, err := s.Exec(p, `TRUNCATE TABLE users`)
		if err != nil || res.RowsAffected != 4 {
			t.Errorf("truncate: %v %v", res, err)
			return
		}
		res, _ = s.Exec(p, `SELECT id FROM users`)
		if len(res.Rows) != 0 {
			t.Errorf("rows after truncate: %v", res.Rows)
		}
		// Schema survives truncate.
		if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (9, 'z@x.com', 'z')`); err != nil {
			t.Errorf("insert after truncate: %v", err)
		}
		// Secondary index entries were removed too (unique can be reused).
		if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (10, 'u1@x.com', 'reuse')`); err != nil {
			t.Errorf("unique value not freed by truncate: %v", err)
		}

		rangesBefore := h.c.Catalog.Len()
		if _, err := s.Exec(p, `DROP TABLE users`); err != nil {
			t.Error(err)
			return
		}
		if h.c.Catalog.Len() >= rangesBefore {
			t.Error("DROP TABLE did not remove ranges")
		}
		if _, err := s.Exec(p, `SELECT id FROM users`); err == nil {
			t.Error("dropped table still queryable")
		}
	})
}

func itoa(i int) string {
	return string(rune('0' + i))
}

package sql

import (
	"fmt"
	"strings"
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
	"mrdb/internal/zones"
)

// elasticLoopResult is everything one elastic-loop run produces that must be
// bit-identical across same-seed runs.
type elasticLoopResult struct {
	ranges     string // canonical mrdb_internal.ranges rendering
	stats      string // statement-statistics registry rendering
	spanHash   uint64 // full-run span-tree hash
	loadSplits int64
	merges     int64
	leaseMoves int64
}

// runElasticLoop drives the full elastic cycle on one cluster: hot SQL
// traffic that load-splits a table partition, a region added and dropped
// mid-run, single-region KV traffic that attracts a lease move, and a cold
// tail in which the split remnants merge back. planCacheOff runs the loop
// on the plan-cache ablation arm.
func runElasticLoop(t *testing.T, seed int64, planCacheOff bool) elasticLoopResult {
	t.Helper()
	c := cluster.New(cluster.Config{
		Seed:      seed,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
		Jitter:    0.02,
		Tracing:   true,
		LoadBased: true,
		Load: kv.LoadConfig{
			Interval: 5 * sim.Second, HalfLife: 5 * sim.Second,
			SplitQPS: 20, MergeQPS: 2, MergeTicks: 2,
		},
	})
	catalog := NewCatalog()
	catalog.PlanCacheOff = planCacheOff
	us := NewSession(c, catalog, c.GatewayFor(simnet.USEast1))
	var out elasticLoopResult
	c.Sim.Spawn("test", func(p *sim.Proc) {
		defer c.Sim.Stop()
		p.Sleep(100 * sim.Millisecond)
		for _, stmt := range []string{
			`CREATE DATABASE movr PRIMARY REGION "us-east1" REGIONS "europe-west2"`,
			`CREATE TABLE users (id INT PRIMARY KEY, name STRING) LOCALITY REGIONAL BY ROW`,
			`CREATE TABLE promo_codes (code STRING PRIMARY KEY, description STRING) LOCALITY GLOBAL`,
		} {
			if _, err := us.Exec(p, stmt); err != nil {
				t.Errorf("%s: %v", stmt, err)
				return
			}
		}
		us.Database = "movr"
		const userCount = 40
		var values []string
		for i := 0; i < userCount; i++ {
			values = append(values, fmt.Sprintf("(%d, 'u%d')", i, i))
		}
		if _, err := us.Exec(p, `INSERT INTO users (id, name) VALUES `+strings.Join(values, ", ")); err != nil {
			t.Errorf("seed users: %v", err)
			return
		}
		if _, err := us.Exec(p, `INSERT INTO promo_codes (code, description) VALUES ('GO', 'x')`); err != nil {
			t.Errorf("seed promo: %v", err)
			return
		}
		// A raw KV range with no lease preferences: the only range the lease
		// mover is allowed to chase (SQL tables pin their leases home).
		rbCfg := zones.Config{
			NumReplicas: 3, NumVoters: 3,
			VoterConstraints: map[simnet.Region]int{
				simnet.USEast1: 1, simnet.EuropeW2: 1, simnet.AsiaNE1: 1,
			},
		}
		if _, err := c.CreateRangeWithZoneConfig([]byte("rb/"), []byte("rb0"), rbCfg, kv.ClosedTSLag); err != nil {
			t.Errorf("rb range: %v", err)
			return
		}
		p.Sleep(500 * sim.Millisecond)

		// Phase 1 — hot: point reads hammer the us-east users partition
		// until the load queue splits it.
		deadline := p.Now().Add(30 * sim.Second)
		for i := 0; p.Now() < deadline; i++ {
			q := fmt.Sprintf(`SELECT name FROM users WHERE id = %d AND crdb_region = 'us-east1'`, i%userCount)
			if _, err := us.Exec(p, q); err != nil {
				t.Errorf("hot read: %v", err)
				return
			}
			p.Sleep(10 * sim.Millisecond)
		}

		// Phase 2 — topology change under way: add a region, keep reading,
		// then drop it again.
		if _, err := us.Exec(p, `ALTER DATABASE movr ADD REGION "asia-northeast1"`); err != nil {
			t.Errorf("add region: %v", err)
			return
		}
		deadline = p.Now().Add(10 * sim.Second)
		for i := 0; p.Now() < deadline; i++ {
			q := fmt.Sprintf(`SELECT name FROM users WHERE id = %d AND crdb_region = 'us-east1'`, i%userCount)
			if _, err := us.Exec(p, q); err != nil {
				t.Errorf("read during region add: %v", err)
				return
			}
			p.Sleep(50 * sim.Millisecond)
		}
		if _, err := us.Exec(p, `ALTER DATABASE movr DROP REGION "asia-northeast1"`); err != nil {
			t.Errorf("drop region: %v", err)
			return
		}

		// Phase 3 — rebalance: single-region KV traffic from Europe must
		// attract the rb range's lease.
		euGW := c.GatewayFor(simnet.EuropeW2)
		co := txn.NewCoordinator(c.Stores[euGW], c.Senders[euGW])
		deadline = p.Now().Add(20 * sim.Second)
		for i := 0; p.Now() < deadline; i++ {
			key := mvcc.Key(fmt.Sprintf("rb/%03d", i%30))
			if err := co.Run(p, func(tx *txn.Txn) error {
				return tx.Put(p, key, mvcc.Value(fmt.Sprintf("v%d", i)))
			}); err != nil {
				t.Errorf("rb write: %v", err)
				return
			}
			p.Sleep(20 * sim.Millisecond)
		}

		// Phase 4 — cold: traffic stops, rates decay, remnants merge back.
		p.Sleep(60 * sim.Second)

		res, err := us.Exec(p, `SELECT * FROM mrdb_internal.ranges`)
		if err != nil {
			t.Errorf("ranges: %v", err)
			return
		}
		out.ranges = renderResult(res)
	})
	c.Sim.RunFor(20 * 60 * sim.Second)
	if n := c.ApplyErrors(); n != 0 {
		t.Fatalf("%d apply errors", n)
	}
	out.stats = c.StmtStats.String()
	out.spanHash = c.Tracer.Hash()
	out.loadSplits = c.Admin.LoadSplits
	out.merges = c.Admin.Merges
	out.leaseMoves = c.Admin.LeaseMoves
	return out
}

// TestElasticLoopMetamorphicDeterminism runs the full elastic loop — load
// split, merge, lease rebalance, online region add/drop — twice under the
// same seed and requires byte-identical results: the span-tree hash over
// every recorded trace and the canonical mrdb_internal.ranges rendering.
// This is the property that keeps every dynamic scenario replayable.
func TestElasticLoopMetamorphicDeterminism(t *testing.T) {
	a := runElasticLoop(t, 907, false)
	b := runElasticLoop(t, 907, false)
	// The loop genuinely exercised every elastic mechanism.
	if a.loadSplits == 0 {
		t.Error("hot phase produced no load-based splits")
	}
	if a.merges == 0 {
		t.Error("cold phase produced no merges")
	}
	if a.leaseMoves == 0 {
		t.Error("single-region traffic attracted no lease move")
	}
	// Metamorphic property: identical seeds, identical worlds.
	if a.spanHash != b.spanHash {
		t.Errorf("span hash differs across same-seed runs: %016x vs %016x", a.spanHash, b.spanHash)
	}
	if a.ranges != b.ranges {
		t.Errorf("mrdb_internal.ranges differs across same-seed runs:\n--- run 1:\n%s--- run 2:\n%s",
			a.ranges, b.ranges)
	}
	if a.loadSplits != b.loadSplits || a.merges != b.merges || a.leaseMoves != b.leaseMoves {
		t.Errorf("decision counts differ: run1 splits=%d merges=%d leases=%d, run2 splits=%d merges=%d leases=%d",
			a.loadSplits, a.merges, a.leaseMoves, b.loadSplits, b.merges, b.leaseMoves)
	}
	// The rendered table reflects the load queue's decisions.
	if !strings.Contains(a.ranges, "splits=") {
		t.Errorf("ranges output missing decisions column:\n%s", a.ranges)
	}
}

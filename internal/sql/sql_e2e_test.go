package sql

import (
	"fmt"
	"strings"
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
)

// e2e harness: a 3-region cluster with one SQL session per region.
type sqlHarness struct {
	c        *cluster.Cluster
	catalog  *Catalog
	sessions map[simnet.Region]*Session
}

func newSQLHarness(seed int64) *sqlHarness {
	c := cluster.New(cluster.Config{
		Seed:      seed,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
		Jitter:    0.02,
	})
	h := &sqlHarness{c: c, catalog: NewCatalog(), sessions: map[simnet.Region]*Session{}}
	for _, r := range c.Regions() {
		h.sessions[r] = NewSession(c, h.catalog, c.GatewayFor(r))
	}
	return h
}

// run executes fn in the root test process and then drains the simulation.
func (h *sqlHarness) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	h.c.Sim.Spawn("test", func(p *sim.Proc) {
		p.Sleep(100 * sim.Millisecond)
		fn(p)
	})
	h.c.Sim.RunFor(20 * 60 * sim.Second)
	if n := h.c.ApplyErrors(); n != 0 {
		t.Fatalf("%d command application errors", n)
	}
}

// setupMovr creates the movr-style schema used by most tests.
func (h *sqlHarness) setupMovr(t *testing.T, p *sim.Proc) *Session {
	t.Helper()
	s := h.sessions[simnet.USEast1]
	stmts := []string{
		`CREATE DATABASE movr PRIMARY REGION "us-east1" REGIONS "europe-west2", "asia-northeast1"`,
		`CREATE TABLE users (id INT PRIMARY KEY, email STRING UNIQUE, name STRING) LOCALITY REGIONAL BY ROW`,
		`CREATE TABLE promo_codes (code STRING PRIMARY KEY, description STRING) LOCALITY GLOBAL`,
	}
	for _, stmt := range stmts {
		if _, err := s.Exec(p, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	for _, sess := range h.sessions {
		sess.Database = "movr"
	}
	p.Sleep(500 * sim.Millisecond) // closed timestamps propagate
	return s
}

func TestSQLInsertSelect(t *testing.T) {
	h := newSQLHarness(1)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (1, 'a@x.com', 'alice'), (2, 'b@x.com', 'bob')`); err != nil {
			t.Error(err)
			return
		}
		res, err := s.Exec(p, `SELECT * FROM users WHERE id = 1`)
		if err != nil {
			t.Error(err)
			return
		}
		if len(res.Rows) != 1 || res.Rows[0][2] != "alice" {
			t.Errorf("rows = %v", res.Rows)
		}
		// Hidden crdb_region is not in SELECT * (§2.3.2)...
		for _, c := range res.Columns {
			if c == RegionColumnName {
				t.Error("hidden column leaked into SELECT *")
			}
		}
		// ...but is accessible by name.
		res, err = s.Exec(p, `SELECT crdb_region, id FROM users WHERE id = 1`)
		if err != nil {
			t.Error(err)
			return
		}
		if res.Rows[0][0] != "us-east1" {
			t.Errorf("crdb_region = %v, want gateway region us-east1", res.Rows[0][0])
		}
	})
}

func TestSQLUniqueConstraintGlobal(t *testing.T) {
	h := newSQLHarness(2)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		eu := h.sessions[simnet.EuropeW2]
		if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (1, 'dup@x.com', 'alice')`); err != nil {
			t.Error(err)
			return
		}
		// Same email from another region: rows live in different
		// partitions, but the global unique constraint must hold (§4.1).
		_, err := eu.Exec(p, `INSERT INTO users (id, email, name) VALUES (2, 'dup@x.com', 'eve')`)
		if err == nil || !strings.Contains(err.Error(), "unique") {
			t.Errorf("duplicate email accepted across regions: %v", err)
		}
		// Same id too (the PK excludes crdb_region, §4.1).
		_, err = eu.Exec(p, `INSERT INTO users (id, email, name) VALUES (1, 'other@x.com', 'eve')`)
		if err == nil || !strings.Contains(err.Error(), "unique") {
			t.Errorf("duplicate PK accepted across regions: %v", err)
		}
	})
}

func TestSQLLocalityOptimizedSearch(t *testing.T) {
	h := newSQLHarness(3)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		eu := h.sessions[simnet.EuropeW2]
		// Insert one row in each region.
		if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (1, 'east@x.com', 'east-user')`); err != nil {
			t.Error(err)
			return
		}
		if _, err := eu.Exec(p, `INSERT INTO users (id, email, name) VALUES (2, 'eu@x.com', 'eu-user')`); err != nil {
			t.Error(err)
			return
		}
		// Local hit: LOS keeps the lookup in-region → fast.
		start := p.Now()
		res, err := eu.Exec(p, `SELECT name FROM users WHERE email = 'eu@x.com'`)
		if err != nil || len(res.Rows) != 1 {
			t.Errorf("local read: %v, %v", res, err)
			return
		}
		localLat := p.Now().Sub(start)
		if localLat > 10*sim.Millisecond {
			t.Errorf("LOS local hit took %v, want in-region latency", localLat)
		}
		// Remote hit: local miss, then fan-out (one cross-region RTT).
		start = p.Now()
		res, err = eu.Exec(p, `SELECT name FROM users WHERE email = 'east@x.com'`)
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "east-user" {
			t.Errorf("remote read: %v, %v", res, err)
			return
		}
		remoteLat := p.Now().Sub(start)
		if remoteLat < 50*sim.Millisecond || remoteLat > 400*sim.Millisecond {
			t.Errorf("LOS remote hit took %v, want ~one cross-region RTT", remoteLat)
		}
		// With LOS disabled every lookup fans out: local reads also pay
		// cross-region latency (§7.2.1 "Unoptimized").
		eu.MustExec(p, `SET enable_locality_optimized_search = off`)
		start = p.Now()
		if _, err := eu.Exec(p, `SELECT name FROM users WHERE email = 'eu@x.com'`); err != nil {
			t.Error(err)
			return
		}
		unoptLat := p.Now().Sub(start)
		if unoptLat < 50*sim.Millisecond {
			t.Errorf("unoptimized local read took %v, expected cross-region fan-out", unoptLat)
		}
	})
}

func TestSQLGlobalTableReads(t *testing.T) {
	h := newSQLHarness(4)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		start := p.Now()
		if _, err := s.Exec(p, `INSERT INTO promo_codes (code, description) VALUES ('SAVE10', 'ten percent off')`); err != nil {
			t.Error(err)
			return
		}
		writeLat := p.Now().Sub(start)
		if writeLat < 200*sim.Millisecond {
			t.Errorf("global write took %v; expected commit-wait dominated latency", writeLat)
		}
		// Strongly consistent reads from every region are local.
		for r, sess := range h.sessions {
			start := p.Now()
			res, err := sess.Exec(p, `SELECT description FROM promo_codes WHERE code = 'SAVE10'`)
			if err != nil || len(res.Rows) != 1 {
				t.Errorf("%s: %v %v", r, res, err)
				return
			}
			if d := p.Now().Sub(start); d > 10*sim.Millisecond {
				t.Errorf("%s: global read took %v, want local", r, d)
			}
		}
	})
}

func TestSQLComputedRegionColumn(t *testing.T) {
	h := newSQLHarness(5)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		stmt := `CREATE TABLE accounts (
			id INT PRIMARY KEY,
			state STRING NOT NULL,
			crdb_region crdb_internal_region AS (
				CASE WHEN state = 'CA' THEN 'asia-northeast1'
				     WHEN state = 'NY' THEN 'us-east1'
				     ELSE 'europe-west2' END) STORED,
			balance INT
		) LOCALITY REGIONAL BY ROW`
		if _, err := s.Exec(p, stmt); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		if _, err := s.Exec(p, `INSERT INTO accounts (id, state, balance) VALUES (1, 'CA', 100), (2, 'NY', 200)`); err != nil {
			t.Error(err)
			return
		}
		res, err := s.Exec(p, `SELECT crdb_region FROM accounts WHERE id = 1`)
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "asia-northeast1" {
			t.Errorf("computed region: %v %v", res, err)
			return
		}
		// When the determinant column is in WHERE, the query stays in
		// one region (§2.3.2): NY → us-east1, local for this session.
		start := p.Now()
		res, err = s.Exec(p, `SELECT balance FROM accounts WHERE id = 2 AND state = 'NY'`)
		if err != nil || len(res.Rows) != 1 {
			t.Errorf("%v %v", res, err)
			return
		}
		if d := p.Now().Sub(start); d > 10*sim.Millisecond {
			t.Errorf("computed-region-pinned read took %v", d)
		}
	})
}

func TestSQLAutoRehoming(t *testing.T) {
	h := newSQLHarness(6)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		eu := h.sessions[simnet.EuropeW2]
		if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (10, 'mover@x.com', 'mover')`); err != nil {
			t.Error(err)
			return
		}
		// Update from Europe without rehoming: row stays in us-east1.
		if _, err := eu.Exec(p, `UPDATE users SET name = 'moved1' WHERE id = 10`); err != nil {
			t.Error(err)
			return
		}
		res, _ := s.Exec(p, `SELECT crdb_region FROM users WHERE id = 10`)
		if res.Rows[0][0] != "us-east1" {
			t.Errorf("row rehomed with setting off: %v", res.Rows[0][0])
		}
		// With auto-rehoming on, the update moves the row (§2.3.2).
		eu.MustExec(p, `SET enable_auto_rehoming = on`)
		if _, err := eu.Exec(p, `UPDATE users SET name = 'moved2' WHERE id = 10`); err != nil {
			t.Error(err)
			return
		}
		res, err := eu.Exec(p, `SELECT crdb_region, name FROM users WHERE id = 10`)
		if err != nil || len(res.Rows) != 1 {
			t.Errorf("%v %v", res, err)
			return
		}
		if res.Rows[0][0] != "europe-west2" || res.Rows[0][1] != "moved2" {
			t.Errorf("rehoming failed: %v", res.Rows[0])
		}
		// Subsequent reads from Europe are now local.
		start := p.Now()
		if _, err := eu.Exec(p, `SELECT name FROM users WHERE id = 10`); err != nil {
			t.Error(err)
			return
		}
		if d := p.Now().Sub(start); d > 10*sim.Millisecond {
			t.Errorf("read after rehome took %v, want local", d)
		}
	})
}

func TestSQLStaleReads(t *testing.T) {
	h := newSQLHarness(7)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (20, 's@x.com', 'stale')`); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(4 * sim.Second)
		asia := h.sessions[simnet.AsiaNE1]
		// Exact staleness from a remote region: local follower read.
		start := p.Now()
		res, err := asia.Exec(p, `SELECT name FROM users AS OF SYSTEM TIME '-3.5s' WHERE id = 20`)
		if err != nil || len(res.Rows) != 1 {
			t.Errorf("exact stale: %v %v", res, err)
			return
		}
		if d := p.Now().Sub(start); d > 10*sim.Millisecond {
			t.Errorf("exact stale read took %v", d)
		}
		// Bounded staleness picks a local timestamp (§5.3.2).
		start = p.Now()
		res, err = asia.Exec(p, `SELECT name FROM users AS OF SYSTEM TIME with_max_staleness('30s') WHERE id = 20`)
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "stale" {
			t.Errorf("bounded stale: %v %v", res, err)
			return
		}
		if d := p.Now().Sub(start); d > 15*sim.Millisecond {
			t.Errorf("bounded stale read took %v", d)
		}
	})
}

func TestSQLAddDropRegion(t *testing.T) {
	h := newSQLHarness(8)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		// us-west1 has no nodes in this 3-region cluster: rejected.
		if _, err := s.Exec(p, `ALTER DATABASE movr ADD REGION "us-west1"`); err == nil {
			t.Error("added region with no nodes")
		}
		res, err := s.Exec(p, `SHOW REGIONS FROM DATABASE movr`)
		if err != nil || len(res.Rows) != 3 {
			t.Errorf("%v %v", res, err)
			return
		}
		// Put a row in asia, then try dropping asia: validation fails.
		asia := h.sessions[simnet.AsiaNE1]
		if _, err := asia.Exec(p, `INSERT INTO users (id, email, name) VALUES (30, 'asia@x.com', 'tokyo')`); err != nil {
			t.Error(err)
			return
		}
		if _, err := s.Exec(p, `ALTER DATABASE movr DROP REGION "asia-northeast1"`); err == nil {
			t.Error("dropped region with homed rows")
			return
		}
		// State rolled back: inserts to asia still work.
		if _, err := asia.Exec(p, `INSERT INTO users (id, email, name) VALUES (31, 'asia2@x.com', 'osaka')`); err != nil {
			t.Errorf("region not writable after failed drop: %v", err)
			return
		}
		// Move the rows away, then the drop succeeds.
		if _, err := s.Exec(p, `DELETE FROM users WHERE id = 30`); err != nil {
			t.Error(err)
			return
		}
		if _, err := s.Exec(p, `DELETE FROM users WHERE id = 31`); err != nil {
			t.Error(err)
			return
		}
		if _, err := s.Exec(p, `ALTER DATABASE movr DROP REGION "asia-northeast1"`); err != nil {
			t.Errorf("drop after cleanup: %v", err)
			return
		}
		res, _ = s.Exec(p, `SHOW REGIONS FROM DATABASE movr`)
		if len(res.Rows) != 2 {
			t.Errorf("regions after drop: %v", res.Rows)
		}
	})
}

func TestSQLAlterLocalityRBTToGlobal(t *testing.T) {
	h := newSQLHarness(9)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		if _, err := s.Exec(p, `CREATE TABLE refdata (k STRING PRIMARY KEY, v STRING)`); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(300 * sim.Millisecond)
		if _, err := s.Exec(p, `INSERT INTO refdata (k, v) VALUES ('x', '1')`); err != nil {
			t.Error(err)
			return
		}
		if _, err := s.Exec(p, `ALTER TABLE refdata SET LOCALITY GLOBAL`); err != nil {
			t.Errorf("alter to GLOBAL: %v", err)
			return
		}
		p.Sleep(time2(p)) // let lead closed timestamps establish
		// Reads from remote regions are now local.
		asia := h.sessions[simnet.AsiaNE1]
		start := p.Now()
		res, err := asia.Exec(p, `SELECT v FROM refdata WHERE k = 'x'`)
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "1" {
			t.Errorf("%v %v", res, err)
			return
		}
		if d := p.Now().Sub(start); d > 10*sim.Millisecond {
			t.Errorf("read after GLOBAL conversion took %v", d)
		}
	})
}

func time2(p *sim.Proc) sim.Duration { return 2 * sim.Second }

func TestSQLAlterLocalityToRegionalByRow(t *testing.T) {
	h := newSQLHarness(10)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		if _, err := s.Exec(p, `CREATE TABLE orders (id INT PRIMARY KEY, item STRING)`); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(300 * sim.Millisecond)
		for i := 1; i <= 3; i++ {
			if _, err := s.Exec(p, fmt.Sprintf(`INSERT INTO orders (id, item) VALUES (%d, 'thing-%d')`, i, i)); err != nil {
				t.Error(err)
				return
			}
		}
		// Convert to REGIONAL BY ROW: index swap + backfill (§2.4.2).
		if _, err := s.Exec(p, `ALTER TABLE orders SET LOCALITY REGIONAL BY ROW`); err != nil {
			t.Errorf("alter to RBR: %v", err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		res, err := s.Exec(p, `SELECT item FROM orders WHERE id = 2`)
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "thing-2" {
			t.Errorf("row lost in conversion: %v %v", res, err)
			return
		}
		res, err = s.Exec(p, `SELECT crdb_region FROM orders WHERE id = 2`)
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "us-east1" {
			t.Errorf("backfilled region: %v %v", res, err)
		}
		// New inserts from other regions partition by gateway.
		eu := h.sessions[simnet.EuropeW2]
		if _, err := eu.Exec(p, `INSERT INTO orders (id, item) VALUES (4, 'thing-4')`); err != nil {
			t.Error(err)
			return
		}
		res, err = eu.Exec(p, `SELECT crdb_region FROM orders WHERE id = 4`)
		if err != nil || res.Rows[0][0] != "europe-west2" {
			t.Errorf("%v %v", res, err)
		}
	})
}

func TestSQLDuplicateIndexesBaseline(t *testing.T) {
	h := newSQLHarness(11)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		if _, err := s.Exec(p, `CREATE TABLE dup_codes (code STRING PRIMARY KEY, v STRING) WITH DUPLICATE INDEXES`); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		// Writes fan out to all index copies (slow).
		start := p.Now()
		if _, err := s.Exec(p, `INSERT INTO dup_codes (code, v) VALUES ('A', '1')`); err != nil {
			t.Error(err)
			return
		}
		writeLat := p.Now().Sub(start)
		if writeLat < 100*sim.Millisecond {
			t.Errorf("dup-index write took %v; expected multi-region fan-out", writeLat)
		}
		// Reads use the local pinned copy (fast) in every region.
		for r, sess := range h.sessions {
			sess.Database = "movr"
			start := p.Now()
			res, err := sess.Exec(p, `SELECT v FROM dup_codes WHERE code = 'A'`)
			if err != nil || len(res.Rows) != 1 {
				t.Errorf("%s: %v %v", r, res, err)
				return
			}
			if d := p.Now().Sub(start); d > 10*sim.Millisecond {
				t.Errorf("%s: dup-index read took %v, want local", r, d)
			}
		}
	})
}

func TestSQLMultiStatementTxn(t *testing.T) {
	h := newSQLHarness(12)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		err := s.RunTxn(p, func(tx *txn.Txn) error {
			if _, err := s.ExecTxn(p, tx, `INSERT INTO users (id, email, name) VALUES (50, 'txn@x.com', 'before')`); err != nil {
				return err
			}
			if _, err := s.ExecTxn(p, tx, `UPDATE users SET name = 'after' WHERE id = 50`); err != nil {
				return err
			}
			res, err := s.ExecTxn(p, tx, `SELECT name FROM users WHERE id = 50`)
			if err != nil {
				return err
			}
			// Read-your-writes inside the transaction.
			if len(res.Rows) != 1 || res.Rows[0][0] != "after" {
				return fmt.Errorf("read-your-writes failed: %v", res.Rows)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		res, _ := s.Exec(p, `SELECT name FROM users WHERE id = 50`)
		if len(res.Rows) != 1 || res.Rows[0][0] != "after" {
			t.Errorf("committed state: %v", res.Rows)
		}
	})
}

func TestSQLDeleteAndScan(t *testing.T) {
	h := newSQLHarness(13)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		for i := 1; i <= 5; i++ {
			if _, err := s.Exec(p, fmt.Sprintf(`INSERT INTO users (id, email, name) VALUES (%d, 'u%d@x.com', 'user%d')`, i, i, i)); err != nil {
				t.Error(err)
				return
			}
		}
		if _, err := s.Exec(p, `DELETE FROM users WHERE id = 3`); err != nil {
			t.Error(err)
			return
		}
		res, err := s.Exec(p, `SELECT id FROM users`)
		if err != nil {
			t.Error(err)
			return
		}
		if len(res.Rows) != 4 {
			t.Errorf("full scan rows = %d, want 4", len(res.Rows))
		}
		// Deleted secondary index entry too.
		res, err = s.Exec(p, `SELECT id FROM users WHERE email = 'u3@x.com'`)
		if err != nil || len(res.Rows) != 0 {
			t.Errorf("deleted row still visible via index: %v %v", res, err)
		}
		// LIMIT.
		res, err = s.Exec(p, `SELECT id FROM users LIMIT 2`)
		if err != nil || len(res.Rows) != 2 {
			t.Errorf("limit: %v %v", res, err)
		}
	})
}

func TestSQLSurvivabilityChange(t *testing.T) {
	h := newSQLHarness(14)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (60, 'r@x.com', 'region-survivor')`); err != nil {
			t.Error(err)
			return
		}
		if _, err := s.Exec(p, `ALTER DATABASE movr SURVIVE REGION FAILURE`); err != nil {
			t.Errorf("survive region: %v", err)
			return
		}
		p.Sleep(500 * sim.Millisecond)
		// Verify the users ranges now have 5 voters spanning regions.
		tbl, _ := h.catalog.Table("movr", "users")
		start, _ := IndexSpan(tbl, PrimaryIndexID, simnet.USEast1)
		desc, err := h.c.Catalog.Lookup(start)
		if err != nil {
			t.Error(err)
			return
		}
		if len(desc.Voters) != 5 {
			t.Errorf("voters after SURVIVE REGION = %d, want 5", len(desc.Voters))
		}
		regions := map[simnet.Region]int{}
		for _, v := range desc.Voters {
			loc, _ := h.c.Topo.LocalityOf(v)
			regions[loc.Region]++
		}
		for r, n := range regions {
			if n > 2 {
				t.Errorf("region %s holds %d of 5 voters", r, n)
			}
		}
		// Data still there; writes work.
		res, err := s.Exec(p, `SELECT name FROM users WHERE id = 60`)
		if err != nil || len(res.Rows) != 1 {
			t.Errorf("%v %v", res, err)
		}
	})
}

func TestSQLPlacementRestricted(t *testing.T) {
	h := newSQLHarness(15)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		if _, err := s.Exec(p, `ALTER DATABASE movr PLACEMENT RESTRICTED`); err != nil {
			t.Errorf("placement restricted: %v", err)
			return
		}
		p.Sleep(300 * sim.Millisecond)
		// users partitions keep all replicas in their home region…
		tbl, _ := h.catalog.Table("movr", "users")
		start, _ := IndexSpan(tbl, PrimaryIndexID, simnet.USEast1)
		desc, err := h.c.Catalog.Lookup(start)
		if err != nil {
			t.Error(err)
			return
		}
		for _, id := range desc.Replicas() {
			loc, _ := h.c.Topo.LocalityOf(id)
			if loc.Region != simnet.USEast1 {
				t.Errorf("RESTRICTED replica on %s", loc.Region)
			}
		}
		// …but GLOBAL tables are unaffected (§3.3.4).
		gt, _ := h.catalog.Table("movr", "promo_codes")
		gstart, _ := IndexSpan(gt, PrimaryIndexID, "")
		gdesc, err := h.c.Catalog.Lookup(gstart)
		if err != nil {
			t.Error(err)
			return
		}
		regions := map[simnet.Region]bool{}
		for _, id := range gdesc.Replicas() {
			loc, _ := h.c.Topo.LocalityOf(id)
			regions[loc.Region] = true
		}
		if len(regions) != 3 {
			t.Errorf("GLOBAL table restricted too: %v", regions)
		}
	})
}

func TestSQLDeterministicExecution(t *testing.T) {
	runOnce := func() string {
		h := newSQLHarness(42)
		var out string
		h.run(t, func(p *sim.Proc) {
			s := h.setupMovr(t, p)
			for i := 0; i < 10; i++ {
				s.Exec(p, fmt.Sprintf(`INSERT INTO users (id, email, name) VALUES (%d, 'd%d@x.com', 'det')`, i, i))
			}
			res, _ := s.Exec(p, `SELECT id FROM users`)
			out = fmt.Sprintf("%v@%v", res.Rows, p.Now())
		})
		return out
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("nondeterministic SQL execution:\n%s\nvs\n%s", a, b)
	}
}

package sql

import (
	"fmt"
	"sort"

	"mrdb/internal/core"
	"mrdb/internal/mvcc"
	"mrdb/internal/simnet"
)

// TableID identifies a table.
type TableID uint32

// IndexID identifies an index within a table; the primary index is 1.
type IndexID uint32

// ColumnID identifies a column within a table.
type ColumnID uint32

// PrimaryIndexID is the ID of every table's primary index.
const PrimaryIndexID IndexID = 1

// ColType is a SQL column type.
type ColType int8

// Column types.
const (
	TString ColType = iota
	TInt
	TFloat
	TBool
	TUUID
	TTimestamp
	// TRegion is the crdb_internal_region enum (paper §2.1); its values
	// are constrained to the database's regions.
	TRegion
)

func (t ColType) String() string {
	switch t {
	case TString:
		return "STRING"
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TBool:
		return "BOOL"
	case TUUID:
		return "UUID"
	case TTimestamp:
		return "TIMESTAMP"
	case TRegion:
		return "crdb_internal_region"
	}
	return "UNKNOWN"
}

// Column is a table column.
type Column struct {
	ID      ColumnID
	Name    string
	Type    ColType
	NotNull bool
	// Hidden columns are omitted from SELECT * (the auto crdb_region
	// column, paper §2.3.2).
	Hidden bool
	// Default, if non-nil, computes the value on INSERT when omitted.
	Default Expr
	// Computed, if non-nil, always derives the value from other columns
	// (computed partitioning, §2.3.2).
	Computed Expr
	// OnUpdateRehome re-computes the column to the gateway region on
	// UPDATE (automatic rehoming, §2.3.2).
	OnUpdateRehome bool

	// computedDeps memoizes exprColumnDeps(Computed); computedDepsOf is the
	// expression it was derived from, so replacing Computed (ALTER ...
	// LOCALITY rebuilds) invalidates the memo.
	computedDeps   []string
	computedDepsOf Expr
}

// Index is a primary or secondary index.
type Index struct {
	ID     IndexID
	Name   string
	Unique bool
	// Cols are the indexed columns, in order. For REGIONAL BY ROW tables
	// every index is implicitly prefixed by crdb_region at the key level
	// (partitioning), without crdb_region appearing here.
	Cols []ColumnID
	// Storing lists extra columns stored in the index value (duplicate
	// indexes store the whole row).
	Storing []ColumnID
	// PinnedRegion, for the duplicate-indexes baseline, is the region
	// whose reads this index copy serves.
	PinnedRegion simnet.Region
}

// Table is a table descriptor.
type Table struct {
	ID      TableID
	Name    string
	DB      string
	Columns []*Column
	// Primary is Indexes[0]; PK column set.
	Indexes  []*Index
	Locality core.TableLocality
	// HomeRegion applies to REGIONAL BY TABLE.
	HomeRegion simnet.Region
	// RegionColumn is the partitioning column for REGIONAL BY ROW
	// (default: the hidden crdb_region column).
	RegionColumn ColumnID
	// DuplicateIndexes marks the legacy baseline topology (§7.3.1): a
	// pinned index copy per region.
	DuplicateIndexes bool

	nextColID ColumnID
	nextIdxID IndexID
}

// Column returns the column with the given name.
func (t *Table) Column(name string) (*Column, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// ColumnByID returns the column with the given ID.
func (t *Table) ColumnByID(id ColumnID) (*Column, bool) {
	for _, c := range t.Columns {
		if c.ID == id {
			return c, true
		}
	}
	return nil, false
}

// Primary returns the primary index.
func (t *Table) Primary() *Index { return t.Indexes[0] }

// Index returns the index with the given name.
func (t *Table) Index(name string) (*Index, bool) {
	for _, idx := range t.Indexes {
		if idx.Name == name {
			return idx, true
		}
	}
	return nil, false
}

// IndexByID returns the index with the given ID.
func (t *Table) IndexByID(id IndexID) (*Index, bool) {
	for _, idx := range t.Indexes {
		if idx.ID == id {
			return idx, true
		}
	}
	return nil, false
}

// AddColumn appends a column, assigning its ID.
func (t *Table) AddColumn(c *Column) *Column {
	t.nextColID++
	c.ID = t.nextColID
	t.Columns = append(t.Columns, c)
	return c
}

// AddIndex appends an index, assigning its ID.
func (t *Table) AddIndex(idx *Index) *Index {
	t.nextIdxID++
	idx.ID = t.nextIdxID
	t.Indexes = append(t.Indexes, idx)
	return idx
}

// VisibleColumns returns non-hidden columns in declaration order.
func (t *Table) VisibleColumns() []*Column {
	var out []*Column
	for _, c := range t.Columns {
		if !c.Hidden {
			out = append(out, c)
		}
	}
	return out
}

// IsPartitioned reports whether the table's indexes carry a region prefix.
func (t *Table) IsPartitioned() bool { return t.Locality == core.RegionalByRow }

// RegionColumnName is the hidden partitioning column's conventional name.
const RegionColumnName = "crdb_region"

// Catalog is the cluster-wide schema: databases and tables. It is shared
// by all sessions (schema changes in mrdb are applied synchronously; the
// paper's online schema-change machinery is out of scope and noted in
// DESIGN.md).
type Catalog struct {
	Databases map[string]*core.Database
	tables    map[string]*Table // key: db.table
	nextTable TableID

	// PlanCacheOff disables the fingerprint-keyed plan cache (ablation
	// flag, same machinery as the dispatcher's PerKeyDispatch): every
	// statement replans from scratch, exactly the pre-cache behavior.
	PlanCacheOff bool

	// version counts schema and zone-config changes. Cached plans record
	// the version they were built under and are dropped wholesale when it
	// moves, so DDL, ALTER ... LOCALITY and ADD/DROP REGION can never be
	// served a stale plan. Every mutation site bumps before its next yield
	// point, which under the cooperative scheduler makes invalidation
	// atomic with the catalog change.
	version uint64
	plans   PlanCache
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		Databases: map[string]*core.Database{},
		tables:    map[string]*Table{},
	}
}

// Bump invalidates all cached plans; called by every DDL or zone-config
// mutation.
func (c *Catalog) Bump() { c.version++ }

// Version returns the schema/zone-config version counter.
func (c *Catalog) Version() uint64 { return c.version }

// CreateDatabase registers a database.
func (c *Catalog) CreateDatabase(db *core.Database) error {
	if _, ok := c.Databases[db.Name]; ok {
		return fmt.Errorf("sql: database %q already exists", db.Name)
	}
	c.Databases[db.Name] = db
	c.Bump()
	return nil
}

// Database returns a database by name.
func (c *Catalog) Database(name string) (*core.Database, bool) {
	db, ok := c.Databases[name]
	return db, ok
}

// CreateTable registers a table, assigning its ID.
func (c *Catalog) CreateTable(t *Table) error {
	key := t.DB + "." + t.Name
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("sql: table %q already exists", key)
	}
	c.nextTable++
	t.ID = c.nextTable
	c.tables[key] = t
	c.Bump()
	return nil
}

// Table resolves db.table.
func (c *Catalog) Table(db, name string) (*Table, bool) {
	t, ok := c.tables[db+"."+name]
	return t, ok
}

// Tables returns all tables of a database, sorted by name.
func (c *Catalog) Tables(db string) []*Table {
	var out []*Table
	for _, t := range c.tables {
		if t.DB == db {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DropTable removes a table from the catalog.
func (c *Catalog) DropTable(db, name string) {
	delete(c.tables, db+"."+name)
	c.Bump()
}

// --- Key construction ---

// IndexPrefix returns the key prefix of one index (unpartitioned) or one
// index partition (REGIONAL BY ROW): /t<id>/i<idx>[/region].
func IndexPrefix(t *Table, idx IndexID, region simnet.Region) mvcc.Key {
	key := []byte(fmt.Sprintf("/t%06d/i%03d/", t.ID, idx))
	if region != "" {
		key = EncodeKeyDatum(key, string(region))
	}
	return key
}

// IndexSpan returns [start, end) covering an index partition.
func IndexSpan(t *Table, idx IndexID, region simnet.Region) (mvcc.Key, mvcc.Key) {
	start := IndexPrefix(t, idx, region)
	return start, PrefixEnd(start)
}

// PrefixEnd returns the key immediately after all keys with the given
// prefix.
func PrefixEnd(prefix mvcc.Key) mvcc.Key {
	end := append(mvcc.Key(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil // prefix is all 0xFF: no end
}

// EncodeIndexKey builds the full key for an index entry: prefix + encoded
// index column values (callers append PK columns for non-unique secondary
// indexes).
func EncodeIndexKey(t *Table, idx *Index, region simnet.Region, vals []Datum) mvcc.Key {
	key := IndexPrefix(t, idx.ID, region)
	for _, v := range vals {
		key = EncodeKeyDatum(key, v)
	}
	return key
}

// EncodeTupleSuffix encodes datums without an index prefix; used to append
// primary-key columns to non-unique secondary index keys.
func EncodeTupleSuffix(vals []Datum) mvcc.Key {
	var key mvcc.Key
	for _, v := range vals {
		key = EncodeKeyDatum(key, v)
	}
	return key
}

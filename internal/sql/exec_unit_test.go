package sql

import (
	"testing"

	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

func TestEvalExprArithmeticAndCase(t *testing.T) {
	h := newPlanHarness(t)
	s := h.session
	cases := []struct {
		e    Expr
		row  map[string]Datum
		want Datum
	}{
		{&BinaryExpr{Op: "+", L: &Lit{Val: int64(2)}, R: &Lit{Val: int64(3)}}, nil, int64(5)},
		{&BinaryExpr{Op: "-", L: &Lit{Val: int64(2)}, R: &Lit{Val: int64(3)}}, nil, int64(-1)},
		{&BinaryExpr{Op: "+", L: &Lit{Val: 1.5}, R: &Lit{Val: int64(2)}}, nil, 3.5},
		{&BinaryExpr{Op: "=", L: &Lit{Val: int64(3)}, R: &Lit{Val: 3.0}}, nil, true},
		{
			&BinaryExpr{Op: "+", L: &ColRef{Name: "n"}, R: &Lit{Val: int64(1)}},
			map[string]Datum{"n": int64(9)}, int64(10),
		},
		{
			&CaseExpr{
				Whens: []CaseWhen{{
					Cond: &BinaryExpr{Op: "=", L: &ColRef{Name: "state"}, R: &Lit{Val: "CA"}},
					Then: &Lit{Val: "west"},
				}},
				Else: &Lit{Val: "east"},
			},
			map[string]Datum{"state": "CA"}, "west",
		},
		{
			&CaseExpr{
				Whens: []CaseWhen{{
					Cond: &BinaryExpr{Op: "=", L: &ColRef{Name: "state"}, R: &Lit{Val: "CA"}},
					Then: &Lit{Val: "west"},
				}},
				Else: &Lit{Val: "east"},
			},
			map[string]Datum{"state": "NY"}, "east",
		},
	}
	for i, c := range cases {
		var ctx *evalCtx
		if c.row != nil {
			ctx = &evalCtx{session: s, row: c.row}
		}
		got, err := s.evalExpr(c.e, ctx)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if !DatumsEqual(got, c.want) {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
	// Errors.
	if _, err := s.evalExpr(&BinaryExpr{Op: "+", L: &Lit{Val: "x"}, R: &Lit{Val: int64(1)}}, nil); err == nil {
		t.Error("string arithmetic succeeded")
	}
	if _, err := s.evalExpr(&ColRef{Name: "missing"}, nil); err == nil {
		t.Error("column ref without row succeeded")
	}
	if _, err := s.evalExpr(&FuncCall{Name: "nope"}, nil); err == nil {
		t.Error("unknown function succeeded")
	}
}

func TestEvalBuiltins(t *testing.T) {
	h := newPlanHarness(t)
	s := h.session
	// gateway_region reflects the session's gateway.
	v, err := s.evalExpr(&FuncCall{Name: "gateway_region"}, nil)
	if err != nil || v != string(simnet.EuropeW2) {
		t.Errorf("gateway_region = %v, %v", v, err)
	}
	// gen_random_uuid yields 36-char distinct values.
	a, _ := s.evalExpr(&FuncCall{Name: "gen_random_uuid"}, nil)
	b, _ := s.evalExpr(&FuncCall{Name: "gen_random_uuid"}, nil)
	if len(a.(string)) != 36 || a == b {
		t.Errorf("uuids: %v %v", a, b)
	}
	// region_from_prefix extracts and validates.
	v, err = s.evalExpr(&FuncCall{Name: "region_from_prefix", Args: []Expr{&Lit{Val: "us-east1/user42"}}}, nil)
	if err != nil || v != "us-east1" {
		t.Errorf("region_from_prefix = %v, %v", v, err)
	}
	if _, err := s.evalExpr(&FuncCall{Name: "region_from_prefix", Args: []Expr{&Lit{Val: "noprefix"}}}, nil); err == nil {
		t.Error("prefixless key accepted")
	}
	// region_from_warehouse maps ints onto sorted regions.
	v, err = s.evalExpr(&FuncCall{Name: "region_from_warehouse", Args: []Expr{&Lit{Val: int64(0)}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != string(simnet.AsiaNE1) { // alphabetically first of the three
		t.Errorf("region_from_warehouse(0) = %v", v)
	}
}

func TestResolveAsOfTimestamp(t *testing.T) {
	h := newPlanHarness(t)
	s := h.session
	now := s.Coord.Store.Clock.Now()
	ts, err := s.resolveAsOfTimestamp(&Lit{Val: "-30s"})
	if err != nil {
		t.Fatal(err)
	}
	if d := now.WallTime - ts.WallTime; d < int64(29*sim.Second) || d > int64(31*sim.Second) {
		t.Errorf("-30s resolved %v in the past", d)
	}
	if _, err := s.resolveAsOfTimestamp(&Lit{Val: "bogus"}); err == nil {
		t.Error("bad interval accepted")
	}
	abs, err := s.resolveAsOfTimestamp(&Lit{Val: int64(12345)})
	if err != nil || abs.WallTime != 12345 {
		t.Errorf("absolute ts: %v %v", abs, err)
	}
}

func TestSetVarValidation(t *testing.T) {
	h := newPlanHarness(t)
	s := h.session
	if _, err := s.execSetVar(&SetVar{Name: "enable_auto_rehoming", Value: "on"}); err != nil || !s.AutoRehoming {
		t.Errorf("rehoming not enabled: %v", err)
	}
	if _, err := s.execSetVar(&SetVar{Name: "enable_locality_optimized_search", Value: "off"}); err != nil || s.LocalityOptimizedSearch {
		t.Errorf("LOS not disabled: %v", err)
	}
	if _, err := s.execSetVar(&SetVar{Name: "no_such_setting", Value: "on"}); err == nil {
		t.Error("unknown setting accepted")
	}
	if _, err := s.execSetVar(&SetVar{Name: "database", Value: "other"}); err != nil || s.Database != "other" {
		t.Errorf("database switch failed: %v", err)
	}
}

func TestTypeFromName(t *testing.T) {
	good := map[string]ColType{
		"string": TString, "text": TString, "int": TInt, "bigint": TInt,
		"float": TFloat, "bool": TBool, "uuid": TUUID,
		"timestamp": TTimestamp, "crdb_internal_region": TRegion,
	}
	for name, want := range good {
		got, err := typeFromName(name)
		if err != nil || got != want {
			t.Errorf("typeFromName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := typeFromName("blob"); err == nil {
		t.Error("unknown type accepted")
	}
}

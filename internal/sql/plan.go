package sql

import (
	"fmt"

	"mrdb/internal/core"
	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
	"mrdb/internal/obs"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
)

// Read planning. The planner picks an index from WHERE equality/IN
// constraints, determines the candidate partitions, and — when the row
// count is bounded by a unique index — applies Locality Optimized Search
// (paper §4.2): probe the gateway's local partition first and fan out to
// remote partitions only on a miss.

// tableRow is a fetched row plus the partition it lives in.
type tableRow struct {
	vals   map[ColumnID]Datum
	region simnet.Region
}

// namedVals converts a row to a name→value map for expression evaluation.
func (t *Table) namedVals(vals map[ColumnID]Datum) map[string]Datum {
	out := map[string]Datum{}
	for _, c := range t.Columns {
		if v, ok := vals[c.ID]; ok {
			out[c.Name] = v
		} else {
			out[c.Name] = nil
		}
	}
	return out
}

// readPlan describes how to fetch rows.
type readPlan struct {
	t     *Table
	index *Index
	// lookups are full index-key tuples for point gets; nil means scan.
	lookups [][]Datum
	// regions are the candidate partitions; [""]
	// for unpartitioned tables.
	regions []simnet.Region
	// regionPinned means the partition set is exact (no search needed).
	regionPinned bool
	// los applies local-first probing (bounded row count).
	los bool
	// limit bounds scan row counts (0 = unlimited).
	limit int
	// prefixes, when non-nil, is the cached plan's memoized index-prefix
	// table; fetch paths build keys through it. Nil on the from-scratch
	// path, which keeps the ablation arm's allocation profile untouched.
	prefixes *prefixCache
	// filterRedundant (cached plans only) marks the per-row WHERE filter as
	// a provable no-op: every conjunct is already enforced by the lookup
	// tuples and its values are pure, so skipping the pass changes neither
	// results nor RNG draws.
	filterRedundant bool
}

// constraints extracts per-column candidate values from a WHERE clause.
// The returned map and its value slices are session scratch: valid only
// until the next constraints call on this session, and never retained by
// planRead or bindRead.
func (s *Session) constraints(w *Where, ctx *evalCtx) (map[string][]Datum, error) {
	if s.consScratch == nil {
		s.consScratch = map[string][]Datum{}
	}
	clear(s.consScratch)
	out := s.consScratch
	if w == nil {
		return out, nil
	}
	s.consSlab = s.consSlab[:0]
	for _, c := range w.Conds {
		start := len(s.consSlab)
		for _, e := range c.Vals {
			v, err := s.evalExpr(e, ctx)
			if err != nil {
				return nil, err
			}
			s.consSlab = append(s.consSlab, v)
		}
		// Full slice expression: a later cond growing the slab cannot
		// clobber this cond's values (growth copies; the old backing array
		// keeps the already-written datums alive).
		vals := s.consSlab[start:len(s.consSlab):len(s.consSlab)]
		if existing, ok := out[c.Col]; ok {
			// Conjunction: intersect value sets.
			var merged []Datum
			for _, v := range existing {
				for _, w := range vals {
					if DatumsEqual(v, w) {
						merged = append(merged, v)
					}
				}
			}
			vals = merged
		}
		out[c.Col] = vals
	}
	return out, nil
}

// computedRegionFromConstraints evaluates a computed region column when all
// the columns it depends on are single-value constrained.
func (s *Session) computedRegionFromConstraints(t *Table, cons map[string][]Datum) (simnet.Region, bool) {
	col, ok := t.ColumnByID(t.RegionColumn)
	if !ok || col.Computed == nil {
		return "", false
	}
	if col.computedDepsOf != col.Computed {
		col.computedDeps = exprColumnDeps(col.Computed)
		col.computedDepsOf = col.Computed
	}
	deps := col.computedDeps
	if s.crRow == nil {
		s.crRow = map[string]Datum{}
	}
	clear(s.crRow)
	row := s.crRow
	for _, d := range deps {
		vals, ok := cons[d]
		if !ok || len(vals) != 1 {
			return "", false
		}
		row[d] = vals[0]
	}
	s.crCtx = evalCtx{session: s, row: row}
	v, err := s.evalExpr(col.Computed, &s.crCtx)
	if err != nil {
		return "", false
	}
	r, ok := v.(string)
	if !ok {
		return "", false
	}
	return simnet.Region(r), true
}

// exprColumnDeps returns the column names an expression references.
func exprColumnDeps(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch ex := e.(type) {
		case *ColRef:
			out = append(out, ex.Name)
		case *FuncCall:
			for _, a := range ex.Args {
				walk(a)
			}
		case *BinaryExpr:
			walk(ex.L)
			walk(ex.R)
		case *CaseExpr:
			for _, w := range ex.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if ex.Else != nil {
				walk(ex.Else)
			}
		}
	}
	walk(e)
	return out
}

// planRead builds a read plan for a WHERE clause.
func (s *Session) planRead(t *Table, db *core.Database, w *Where, limit int) (*readPlan, error) {
	cons, err := s.constraints(w, nil)
	if err != nil {
		return nil, err
	}
	plan := &readPlan{t: t, limit: limit}

	// Partition determination for REGIONAL BY ROW.
	if t.IsPartitioned() {
		regionCol, _ := t.ColumnByID(t.RegionColumn)
		if vals, ok := cons[regionCol.Name]; ok && len(vals) > 0 {
			for _, v := range vals {
				if r, ok := v.(string); ok {
					plan.regions = append(plan.regions, simnet.Region(r))
				}
			}
			plan.regionPinned = true
		} else if r, ok := s.computedRegionFromConstraints(t, cons); ok {
			// Computed partitioning (§2.3.2): the region is derivable
			// from the WHERE clause, so the query stays in one region.
			plan.regions = []simnet.Region{r}
			plan.regionPinned = true
		} else {
			// Candidate partitions: gateway-local region first (LOS).
			local := s.Region()
			if db.HasRegion(local) {
				plan.regions = append(plan.regions, local)
			}
			for _, r := range db.Regions() {
				if r != local {
					plan.regions = append(plan.regions, r)
				}
			}
		}
	} else {
		plan.regions = []simnet.Region{""}
		plan.regionPinned = true
	}

	// Index selection: an index is usable if every indexed column has
	// candidate values. Prefer the primary index, then unique indexes.
	pickIndex := func() *Index {
		var candidates []*Index
		if t.DuplicateIndexes {
			// Duplicate-indexes baseline: read the copy pinned to the
			// gateway's region (§7.3.1).
			local := s.Region()
			for _, idx := range t.Indexes {
				if idx.PinnedRegion == local {
					candidates = append(candidates, idx)
				}
			}
		}
		candidates = append(candidates, t.Indexes...)
		for _, idx := range candidates {
			usable := true
			for _, cid := range idx.Cols {
				col, _ := t.ColumnByID(cid)
				if vals, ok := cons[col.Name]; !ok || len(vals) == 0 {
					usable = false
					break
				}
			}
			if usable {
				return idx
			}
		}
		return nil
	}
	idx := pickIndex()
	if idx == nil {
		// Full scan of the primary index.
		plan.index = t.Primary()
		if t.DuplicateIndexes {
			local := s.Region()
			for _, di := range t.Indexes {
				if di.PinnedRegion == local && len(di.Storing) > 0 {
					plan.index = di
				}
			}
		}
		return plan, nil
	}
	plan.index = idx

	// Build lookup tuples: cartesian product of candidate values.
	tuples := [][]Datum{nil}
	for _, cid := range idx.Cols {
		col, _ := t.ColumnByID(cid)
		vals := cons[col.Name]
		var next [][]Datum
		for _, tu := range tuples {
			for _, v := range vals {
				nt := append(append([]Datum(nil), tu...), v)
				next = append(next, nt)
			}
		}
		tuples = next
		if len(tuples) > 1024 {
			return nil, fmt.Errorf("sql: IN list product too large")
		}
	}
	plan.lookups = tuples
	// LOS applies when the row count is bounded (unique index or LIMIT,
	// §4.2) and the feature is enabled.
	plan.los = s.LocalityOptimizedSearch && !plan.regionPinned && (idx.Unique || limit > 0)
	return plan, nil
}

// rowFetcher abstracts fresh (transactional) vs stale reads.
type rowFetcher interface {
	get(p *sim.Proc, key mvcc.Key) (mvcc.Value, error)
	scan(p *sim.Proc, start, end mvcc.Key, max int) ([]mvcc.KeyValue, error)
}

// txnFetcher reads through a transaction; forUpdate makes point reads take
// exclusive locks (the implicit SELECT FOR UPDATE of UPDATE/DELETE).
type txnFetcher struct {
	tx        *txn.Txn
	forUpdate bool
}

func (f *txnFetcher) get(p *sim.Proc, key mvcc.Key) (mvcc.Value, error) {
	if f.forUpdate {
		return f.tx.GetForUpdate(p, key)
	}
	return f.tx.Get(p, key)
}
func (f *txnFetcher) scan(p *sim.Proc, start, end mvcc.Key, max int) ([]mvcc.KeyValue, error) {
	return f.tx.Scan(p, start, end, max)
}

// staleFetcher reads at a fixed timestamp from the nearest replica.
type staleFetcher struct {
	co *txn.Coordinator
	ts hlc.Timestamp
}

func (f *staleFetcher) get(p *sim.Proc, key mvcc.Key) (mvcc.Value, error) {
	v, _, err := f.co.ExactStaleRead(p, key, f.ts)
	return v, err
}
func (f *staleFetcher) scan(p *sim.Proc, start, end mvcc.Key, max int) ([]mvcc.KeyValue, error) {
	return f.co.StaleScan(p, start, end, max, f.ts)
}

// fetchRows executes a read plan.
func (s *Session) fetchRows(p *sim.Proc, f rowFetcher, plan *readPlan) ([]tableRow, error) {
	if plan.lookups == nil {
		return s.fetchScan(p, f, plan)
	}
	return s.fetchPoint(p, f, plan)
}

// fetchPoint probes the index partitions for each lookup tuple. With LOS
// the gateway's region is probed first; remaining tuples fan out to the
// other partitions in parallel, and — because a unique index returns at
// most one row per tuple — each tuple resolves as soon as any partition
// finds it, rather than waiting for the slowest region (§4.2: "if the row
// is found, there is no need to fan out to remote regions").
func (s *Session) fetchPoint(p *sim.Proc, f rowFetcher, plan *readPlan) ([]tableRow, error) {
	t, idx := plan.t, plan.index
	remaining := plan.lookups
	var out []tableRow

	// probeAll waits for every probe (needed when a miss must be
	// definitive, e.g. the local-first phase).
	probeAll := func(regions []simnet.Region, tuples [][]Datum) ([]tableRow, [][]Datum, error) {
		type result struct {
			row *tableRow
			err error
		}
		slots := make([]result, len(regions)*len(tuples))
		wg := p.Sim().GetWaitGroup()
		parent := obs.ProcSpan(p)
		i := 0
		for _, region := range regions {
			for _, tuple := range tuples {
				region, tuple, slot := region, tuple, i
				i++
				wg.Add(1)
				p.Sim().Spawn("sql/probe", func(wp *sim.Proc) {
					defer wg.Done()
					obs.SetProcSpan(wp, parent)
					row, err := s.lookupOne(wp, f, t, idx, plan.prefixes, region, tuple)
					slots[slot] = result{row: row, err: err}
				})
			}
		}
		wg.Wait(p)
		wg.Release()
		var rows []tableRow
		foundTuple := make([]bool, len(tuples))
		i = 0
		for range regions {
			for ti := range tuples {
				r := slots[i]
				i++
				if r.err != nil {
					return nil, nil, r.err
				}
				if r.row != nil {
					rows = append(rows, *r.row)
					foundTuple[ti] = true
				}
			}
		}
		var miss [][]Datum
		for ti, tuple := range tuples {
			if !foundTuple[ti] {
				miss = append(miss, tuple)
			}
		}
		return rows, miss, nil
	}

	// probeFirstHit fans a tuple out to all regions and resolves on the
	// first hit (or once all partitions report a miss). Only sound for
	// unique indexes. Slower probes continue harmlessly in the
	// background, as in a real distributed cancellation.
	probeFirstHit := func(regions []simnet.Region, tuple []Datum) (*tableRow, error) {
		type outcome struct {
			row *tableRow
			err error
		}
		res := sim.NewFuture[outcome](p.Sim())
		pending := len(regions)
		parent := obs.ProcSpan(p)
		for _, region := range regions {
			region := region
			p.Sim().Spawn("sql/probe", func(wp *sim.Proc) {
				obs.SetProcSpan(wp, parent)
				row, err := s.lookupOne(wp, f, t, idx, plan.prefixes, region, tuple)
				pending--
				if res.Done() {
					return
				}
				switch {
				case err != nil:
					res.Set(outcome{err: err})
				case row != nil:
					res.Set(outcome{row: row})
				case pending == 0:
					res.Set(outcome{})
				}
			})
		}
		o := res.Wait(p)
		return o.row, o.err
	}

	if plan.los && len(plan.regions) > 1 && idx.Unique {
		// Phase 1: local partition only (§4.2).
		rows, miss, err := probeAll(plan.regions[:1], remaining)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
		if len(miss) == 0 {
			return out, nil
		}
		// Phase 2: fan each missing tuple to the remote partitions,
		// resolving on first hit.
		for _, tuple := range miss {
			row, err := probeFirstHit(plan.regions[1:], tuple)
			if err != nil {
				return nil, err
			}
			if row != nil {
				out = append(out, *row)
			}
		}
		return out, nil
	}
	rows, _, err := probeAll(plan.regions, remaining)
	if err != nil {
		return nil, err
	}
	return append(out, rows...), nil
}

// lookupOne fetches one index tuple in one partition, following secondary
// index entries to the primary row. With a prefix cache attached (cached
// plans), keys are built from memoized prefixes and row maps come from the
// session pool; without one the pre-cache path runs unchanged.
func (s *Session) lookupOne(p *sim.Proc, f rowFetcher, t *Table, idx *Index, pc *prefixCache, region simnet.Region, tuple []Datum) (*tableRow, error) {
	key := encodeIndexKey(pc, t, idx, region, tuple)
	val, err := f.get(p, key)
	if err != nil {
		return nil, err
	}
	if val == nil {
		return nil, nil
	}
	if idx.ID == t.Primary().ID || len(idx.Storing) > 0 {
		vals, err := s.decodeRowPooled(pc, val)
		if err != nil {
			return nil, err
		}
		return &tableRow{vals: vals, region: region}, nil
	}
	// Secondary index: value holds the PK; the row lives in the same
	// partition as the index entry.
	pkVals, err := s.decodeRowPooled(pc, val)
	if err != nil {
		return nil, err
	}
	primary := t.Primary()
	var pkTuple []Datum
	for _, cid := range primary.Cols {
		pkTuple = append(pkTuple, pkVals[cid])
	}
	rowKey := encodeIndexKey(pc, t, primary, region, pkTuple)
	rowVal, err := f.get(p, rowKey)
	if pc != nil {
		s.putRowMap(pkVals)
	}
	if err != nil {
		return nil, err
	}
	if rowVal == nil {
		return nil, nil
	}
	vals, err := s.decodeRowPooled(pc, rowVal)
	if err != nil {
		return nil, err
	}
	return &tableRow{vals: vals, region: region}, nil
}

// decodeRowPooled decodes a row value, drawing the destination map from the
// session pool when the fetch runs under a cached plan.
func (s *Session) decodeRowPooled(pc *prefixCache, val mvcc.Value) (map[ColumnID]Datum, error) {
	if pc == nil {
		return DecodeRow(val)
	}
	m := s.getRowMap()
	if err := DecodeRowInto(m, val); err != nil {
		s.putRowMap(m)
		return nil, err
	}
	return m, nil
}

// fetchScan scans every candidate partition of the plan's index in
// parallel.
func (s *Session) fetchScan(p *sim.Proc, f rowFetcher, plan *readPlan) ([]tableRow, error) {
	t, idx := plan.t, plan.index
	type result struct {
		rows []tableRow
		err  error
	}
	slots := make([]result, len(plan.regions))
	wg := p.Sim().GetWaitGroup()
	parent := obs.ProcSpan(p)
	for i, region := range plan.regions {
		i, region := i, region
		wg.Add(1)
		p.Sim().Spawn("sql/scan", func(wp *sim.Proc) {
			defer wg.Done()
			obs.SetProcSpan(wp, parent)
			start, end := IndexSpan(t, idx.ID, region)
			kvs, err := f.scan(wp, start, end, plan.limit)
			if err != nil {
				slots[i] = result{err: err}
				return
			}
			var rows []tableRow
			for _, kvp := range kvs {
				if idx.ID == t.Primary().ID || len(idx.Storing) > 0 {
					vals, err := DecodeRow(kvp.Value)
					if err != nil {
						slots[i] = result{err: err}
						return
					}
					rows = append(rows, tableRow{vals: vals, region: region})
				} else {
					row, err := s.primaryFromIndexValue(wp, f, t, region, kvp.Value)
					if err != nil {
						slots[i] = result{err: err}
						return
					}
					if row != nil {
						rows = append(rows, *row)
					}
				}
			}
			slots[i] = result{rows: rows}
		})
	}
	wg.Wait(p)
	wg.Release()
	var out []tableRow
	for _, r := range slots {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.rows...)
	}
	return out, nil
}

func (s *Session) primaryFromIndexValue(p *sim.Proc, f rowFetcher, t *Table, region simnet.Region, val mvcc.Value) (*tableRow, error) {
	pkVals, err := DecodeRow(val)
	if err != nil {
		return nil, err
	}
	primary := t.Primary()
	var pkTuple []Datum
	for _, cid := range primary.Cols {
		pkTuple = append(pkTuple, pkVals[cid])
	}
	rowKey := EncodeIndexKey(t, primary, region, pkTuple)
	rowVal, err := f.get(p, rowKey)
	if err != nil || rowVal == nil {
		return nil, err
	}
	vals, err := DecodeRow(rowVal)
	if err != nil {
		return nil, err
	}
	return &tableRow{vals: vals, region: region}, nil
}

// filterRows applies the full WHERE clause to fetched rows.
func (s *Session) filterRows(t *Table, rows []tableRow, w *Where) ([]tableRow, error) {
	if w == nil {
		return rows, nil
	}
	var out []tableRow
	for _, row := range rows {
		named := t.namedVals(row.vals)
		match := true
		for _, c := range w.Conds {
			v, ok := named[c.Col]
			if !ok {
				return nil, fmt.Errorf("sql: unknown column %q", c.Col)
			}
			any := false
			for _, e := range c.Vals {
				ev, err := s.evalExpr(e, nil)
				if err != nil {
					return nil, err
				}
				if DatumsEqual(v, ev) {
					any = true
					break
				}
			}
			if !any {
				match = false
				break
			}
		}
		if match {
			out = append(out, row)
		}
	}
	return out, nil
}

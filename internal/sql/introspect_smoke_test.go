package sql_test

import (
	"strings"
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/sql"
	"mrdb/internal/workload"
)

// TestIntrospectionSmoke is the CI introspection smoke: a short MovR
// workload must populate mrdb_internal.statement_statistics, and the
// table's rendered contents must be byte-identical across two runs with
// the same seed. This is the end-to-end determinism contract for the whole
// introspection stack — fingerprinting, histogram accumulation, WAN-trip
// counting, and virtual-table rendering.
func TestIntrospectionSmoke(t *testing.T) {
	runOnce := func() string {
		c := cluster.New(cluster.Config{
			Seed:      42,
			Regions:   cluster.ThreeRegions(),
			MaxOffset: 250 * sim.Millisecond,
			Jitter:    0.02,
		})
		catalog := sql.NewCatalog()
		var rendered string
		c.Sim.Spawn("smoke", func(p *sim.Proc) {
			defer c.Sim.Stop()
			m := workload.NewMovr(c, catalog)
			if err := m.Setup(p); err != nil {
				t.Errorf("movr setup: %v", err)
				return
			}
			if err := m.Load(p); err != nil {
				t.Errorf("movr load: %v", err)
				return
			}
			if err := m.Run(p, 1, 5); err != nil {
				t.Errorf("movr run: %v", err)
				return
			}
			s := sql.NewSession(c, catalog, c.GatewayFor(c.Regions()[0]))
			res, err := s.Exec(p, `SELECT * FROM mrdb_internal.statement_statistics`)
			if err != nil {
				t.Errorf("select statement_statistics: %v", err)
				return
			}
			var b strings.Builder
			b.WriteString(strings.Join(res.Columns, "|"))
			b.WriteByte('\n')
			for _, row := range res.Rows {
				for i, v := range row {
					if i > 0 {
						b.WriteByte('|')
					}
					b.WriteString(sql.FormatDatum(v))
				}
				b.WriteByte('\n')
			}
			rendered = b.String()
		})
		c.Sim.RunFor(30 * 60 * sim.Second)
		if n := c.ApplyErrors(); n != 0 {
			t.Fatalf("%d command application errors", n)
		}
		return rendered
	}
	first := runOnce()
	if strings.Count(first, "\n") < 2 {
		t.Fatalf("statement_statistics empty after MovR run:\n%s", first)
	}
	second := runOnce()
	if first != second {
		t.Errorf("statement_statistics differ across same-seed runs:\n%s\nvs\n%s", first, second)
	}
}

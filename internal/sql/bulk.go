package sql

import (
	"fmt"

	"mrdb/internal/hlc"
	"mrdb/internal/mvcc"
)

// BulkLoadRow writes a row directly into the engines of every replica of
// the affected ranges at the given timestamp, bypassing transactions and
// consensus — the moral equivalent of IMPORT. It must only be used during
// benchmark/test setup, before measurement and before any replica
// relocation (replicas added later replay the Raft log, which does not
// contain bulk-loaded data).
func (s *Session) BulkLoadRow(t *Table, colVals map[string]Datum, ts hlc.Timestamp) error {
	vals := map[ColumnID]Datum{}
	for name, v := range colVals {
		c, ok := t.Column(name)
		if !ok {
			return fmt.Errorf("sql: unknown column %q", name)
		}
		vals[c.ID] = v
	}
	// Computed columns.
	for _, c := range t.Columns {
		if c.Computed != nil {
			v, err := s.evalExpr(c.Computed, &evalCtx{session: s, row: t.namedVals(vals)})
			if err != nil {
				return err
			}
			vals[c.ID] = v
		}
	}
	region, err := rowRegion(t, vals)
	if err != nil {
		return err
	}
	primary := t.Primary()
	var pkTuple []Datum
	pkMap := map[ColumnID]Datum{}
	for _, cid := range primary.Cols {
		pkTuple = append(pkTuple, vals[cid])
		pkMap[cid] = vals[cid]
	}
	pkVal := EncodeRow(pkMap)
	for _, idx := range t.Indexes {
		idxRegion := region
		if idx.PinnedRegion != "" && !t.IsPartitioned() {
			idxRegion = ""
		}
		var tuple []Datum
		for _, cid := range idx.Cols {
			tuple = append(tuple, vals[cid])
		}
		key := EncodeIndexKey(t, idx, idxRegion, tuple)
		if !idx.Unique {
			key = append(key, EncodeTupleSuffix(pkTuple)...)
		}
		var val mvcc.Value
		if idx.ID == t.Primary().ID || len(idx.Storing) > 0 {
			val = EncodeRow(vals)
		} else {
			val = pkVal
		}
		if err := s.bulkPut(key, val, ts); err != nil {
			return err
		}
	}
	return nil
}

// bulkPut applies one KV pair to all replicas of its range.
func (s *Session) bulkPut(key mvcc.Key, val mvcc.Value, ts hlc.Timestamp) error {
	desc, err := s.Cluster.Catalog.Lookup(key)
	if err != nil {
		return err
	}
	for _, id := range desc.Replicas() {
		st, ok := s.Cluster.Stores[id]
		if !ok {
			return fmt.Errorf("sql: no store on node %d", id)
		}
		r, ok := st.Replica(desc.RangeID)
		if !ok {
			return fmt.Errorf("sql: replica of r%d missing on n%d", desc.RangeID, id)
		}
		if _, err := r.EngineForBulkLoad().Put(key, val, ts, nil); err != nil {
			return err
		}
	}
	return nil
}

package sql

import (
	"fmt"
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// mustExec executes one statement and fails the test on error.
func mustExec(t *testing.T, p *sim.Proc, s *Session, stmt string) *Result {
	t.Helper()
	res, err := s.Exec(p, stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return res
}

// TestPlanCacheHitMissAndDDLInvalidation covers the cache's basic
// lifecycle: first execution of a statement shape misses and populates the
// cache, re-execution hits, and any DDL (here CREATE INDEX) drops every
// cached plan so the next execution replans against the new schema.
func TestPlanCacheHitMissAndDDLInvalidation(t *testing.T) {
	h := newSQLHarness(921)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		mustExec(t, p, s, `INSERT INTO users (id, email, name) VALUES (1, 'a@x.com', 'alice'), (2, 'b@x.com', 'bob')`)

		q := `SELECT name FROM users WHERE id = 1 AND crdb_region = 'us-east1'`
		mustExec(t, p, s, q)
		if s.lastPlanCache != planCacheMiss {
			t.Errorf("first execution: plan cache = %q, want miss", s.lastPlanCache)
		}
		res := mustExec(t, p, s, q)
		if s.lastPlanCache != planCacheHit {
			t.Errorf("re-execution: plan cache = %q, want hit", s.lastPlanCache)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != "alice" {
			t.Errorf("cached read returned %v", res.Rows)
		}
		if n := h.catalog.PlanCacheLen(); n == 0 {
			t.Error("cache is empty after a miss that should have populated it")
		}
		hits, misses := h.catalog.PlanCacheStats()
		if hits == 0 || misses == 0 {
			t.Errorf("stats: hits=%d misses=%d, want both non-zero", hits, misses)
		}

		// DDL: every cached shape is dropped, and the replanned statement
		// sees the new index.
		mustExec(t, p, s, `CREATE UNIQUE INDEX users_name_idx ON users (name)`)
		if n := h.catalog.PlanCacheLen(); n != 0 {
			t.Errorf("cache holds %d plans after DDL, want 0", n)
		}
		mustExec(t, p, s, q)
		if s.lastPlanCache != planCacheMiss {
			t.Errorf("post-DDL execution: plan cache = %q, want miss", s.lastPlanCache)
		}
		res = mustExec(t, p, s, `SELECT id FROM users WHERE name = 'bob'`)
		if len(res.Rows) != 1 || res.Rows[0][0] != int64(2) {
			t.Errorf("read through new index returned %v", res.Rows)
		}
	})
}

// TestPlanCacheAlterLocalityInvalidation pins the stale-plan hazard of
// ALTER TABLE ... SET LOCALITY: a cached plan against the old partitioning
// must not survive the repartition.
func TestPlanCacheAlterLocalityInvalidation(t *testing.T) {
	h := newSQLHarness(922)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		mustExec(t, p, s, `INSERT INTO promo_codes (code, description) VALUES ('GO', 'ten percent off')`)

		q := `SELECT description FROM promo_codes WHERE code = 'GO'`
		mustExec(t, p, s, q)
		res := mustExec(t, p, s, q)
		if s.lastPlanCache != planCacheHit {
			t.Fatalf("warmup: plan cache = %q, want hit", s.lastPlanCache)
		}

		// GLOBAL -> REGIONAL BY ROW moves every row under a region-prefixed
		// key; the cached unpartitioned plan would read the old key span.
		mustExec(t, p, s, `ALTER TABLE promo_codes SET LOCALITY REGIONAL BY ROW`)
		res = mustExec(t, p, s, q)
		if s.lastPlanCache != planCacheMiss {
			t.Errorf("post-ALTER execution: plan cache = %q, want miss", s.lastPlanCache)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != "ten percent off" {
			t.Errorf("read after repartition returned %v", res.Rows)
		}
	})
}

// TestPlanCacheAddDropRegionInvalidation pins the subtlest invalidation: a
// cached search-mode plan memoizes the partition probe order, so ALTER
// DATABASE ADD REGION must drop it or rows homed in the new region would be
// invisible to the stale region list. DROP REGION is the mirror image.
func TestPlanCacheAddDropRegionInvalidation(t *testing.T) {
	h := newSQLHarness(924)
	h.run(t, func(p *sim.Proc) {
		s := h.sessions[simnet.USEast1]
		for _, stmt := range []string{
			`CREATE DATABASE bank PRIMARY REGION "us-east1" REGIONS "europe-west2"`,
			`CREATE TABLE accts (id INT PRIMARY KEY, balance INT) LOCALITY REGIONAL BY ROW`,
		} {
			mustExec(t, p, s, stmt)
		}
		s.Database = "bank"
		p.Sleep(500 * sim.Millisecond)
		mustExec(t, p, s, `INSERT INTO accts (id, balance) VALUES (1, 100)`)

		// Warm a search-mode plan: id alone does not constrain the region,
		// so the plan memoizes the two-region probe order.
		q := `SELECT balance FROM accts WHERE id = %d`
		mustExec(t, p, s, fmt.Sprintf(q, 1))
		mustExec(t, p, s, fmt.Sprintf(q, 1))
		if s.lastPlanCache != planCacheHit {
			t.Fatalf("warmup: plan cache = %q, want hit", s.lastPlanCache)
		}

		p.Sleep(10 * sim.Second) // let partition ranges settle before reconfiguring
		mustExec(t, p, s, `ALTER DATABASE bank ADD REGION "asia-northeast1"`)
		p.Sleep(500 * sim.Millisecond)
		mustExec(t, p, s, `INSERT INTO accts (id, balance, crdb_region) VALUES (7, 700, 'asia-northeast1')`)
		res := mustExec(t, p, s, fmt.Sprintf(q, 7))
		if len(res.Rows) != 1 || res.Rows[0][0] != int64(700) {
			t.Fatalf("row homed in the added region is invisible: %v (stale cached probe order?)", res.Rows)
		}

		// Drop the region again (after evacuating its row) and make sure the
		// replanned probe order still finds the surviving rows.
		mustExec(t, p, s, `DELETE FROM accts WHERE id = 7`)
		mustExec(t, p, s, `ALTER DATABASE bank DROP REGION "asia-northeast1"`)
		res = mustExec(t, p, s, fmt.Sprintf(q, 1))
		if s.lastPlanCache != planCacheMiss {
			t.Errorf("post-DROP execution: plan cache = %q, want miss", s.lastPlanCache)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != int64(100) {
			t.Errorf("read after DROP REGION returned %v", res.Rows)
		}
	})
}

// TestExplainAnalyzePlanCacheLine pins the introspection surface: EXPLAIN
// ANALYZE renders the plan-cache outcome of the analyzed statement.
func TestExplainAnalyzePlanCacheLine(t *testing.T) {
	h := newSQLHarness(923)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		mustExec(t, p, s, `INSERT INTO users (id, email, name) VALUES (1, 'a@x.com', 'alice')`)

		q := `EXPLAIN ANALYZE SELECT name FROM users WHERE id = 1 AND crdb_region = 'us-east1'`
		res := mustExec(t, p, s, q)
		if got := eaField(t, res, "plan cache"); got != "miss" {
			t.Errorf("first EXPLAIN ANALYZE: plan cache = %q, want miss", got)
		}
		res = mustExec(t, p, s, q)
		if got := eaField(t, res, "plan cache"); got != "hit" {
			t.Errorf("second EXPLAIN ANALYZE: plan cache = %q, want hit", got)
		}

		h.catalog.PlanCacheOff = true
		res = mustExec(t, p, s, q)
		if got := eaField(t, res, "plan cache"); got != "off" {
			t.Errorf("ablation arm: plan cache = %q, want off", got)
		}
		h.catalog.PlanCacheOff = false
	})
}

// TestPreparedStatements covers the prepared-statement surface: placeholder
// binding, result correctness across rebinds, and fingerprint sharing with
// the ad-hoc form of the same statement.
func TestPreparedStatements(t *testing.T) {
	h := newSQLHarness(926)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)

		ins := s.MustPrepare(`INSERT INTO users (id, email, name) VALUES ($1, $2, $3)`)
		for i := 1; i <= 3; i++ {
			if _, err := s.ExecPrepared(p, ins, int64(i), fmt.Sprintf("u%d@x.com", i), fmt.Sprintf("user%d", i)); err != nil {
				t.Fatalf("prepared insert %d: %v", i, err)
			}
		}
		sel := s.MustPrepare(`SELECT name FROM users WHERE id = $1`)
		if sel.NumArgs() != 1 {
			t.Fatalf("NumArgs = %d, want 1", sel.NumArgs())
		}
		for i := 3; i >= 1; i-- {
			res, err := s.ExecPrepared(p, sel, int64(i))
			if err != nil {
				t.Fatalf("prepared select %d: %v", i, err)
			}
			if len(res.Rows) != 1 || res.Rows[0][0] != fmt.Sprintf("user%d", i) {
				t.Errorf("prepared select %d returned %v", i, res.Rows)
			}
		}
		// Wrong arity is rejected up front.
		if _, err := s.ExecPrepared(p, sel); err == nil {
			t.Error("arity mismatch not rejected")
		}
		// The prepared form and the ad-hoc literal form share a fingerprint,
		// and therefore a cache entry: the ad-hoc execution hits.
		mustExec(t, p, s, `SELECT name FROM users WHERE id = 2`)
		if s.lastPlanCache != planCacheHit {
			t.Errorf("ad-hoc form of prepared statement: plan cache = %q, want hit", s.lastPlanCache)
		}
	})
}

// TestPlanCacheAblationMetamorphicDeterminism is the cache's core safety
// property: the full elastic loop — load splits, merges, lease moves, a
// region added and dropped mid-run — produces byte-identical span trees,
// statement statistics and mrdb_internal.ranges output with the plan cache
// on and off. The cache may only cut wall-clock planning cost, never change
// what the simulation does.
func TestPlanCacheAblationMetamorphicDeterminism(t *testing.T) {
	on := runElasticLoop(t, 911, false)
	off := runElasticLoop(t, 911, true)
	if on.spanHash != off.spanHash {
		t.Errorf("span hash differs cache on vs off: %016x vs %016x", on.spanHash, off.spanHash)
	}
	if on.ranges != off.ranges {
		t.Errorf("mrdb_internal.ranges differs cache on vs off:\n--- on:\n%s--- off:\n%s", on.ranges, off.ranges)
	}
	if on.stats == "" {
		t.Error("no statement statistics recorded")
	}
	if on.stats != off.stats {
		t.Errorf("statement statistics differ cache on vs off:\n--- on:\n%s--- off:\n%s", on.stats, off.stats)
	}
	if on.loadSplits != off.loadSplits || on.merges != off.merges || on.leaseMoves != off.leaseMoves {
		t.Errorf("decision counts differ: on splits=%d merges=%d leases=%d, off splits=%d merges=%d leases=%d",
			on.loadSplits, on.merges, on.leaseMoves, off.loadSplits, off.merges, off.leaseMoves)
	}
}

// TestPlanCacheManySessionsSmoke interleaves many sessions executing
// prepared statements against the shared cache while DDL invalidates it
// mid-flight; run under -race in CI it doubles as the cache's race smoke.
func TestPlanCacheManySessionsSmoke(t *testing.T) {
	h := newSQLHarness(925)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		mustExec(t, p, s, `INSERT INTO users (id, email, name) VALUES (1, 'a@x.com', 'alice')`)

		const workers = 8
		wg := sim.NewWaitGroup(h.c.Sim)
		wg.Add(workers)
		regions := h.c.Regions()
		for w := 0; w < workers; w++ {
			w := w
			h.c.Sim.Spawn(fmt.Sprintf("worker-%d", w), func(wp *sim.Proc) {
				defer wg.Done()
				ws := NewSession(h.c, h.catalog, h.c.GatewayFor(regions[w%len(regions)]))
				ws.Database = "movr"
				sel := ws.MustPrepare(`SELECT name FROM users WHERE id = $1`)
				ins := ws.MustPrepare(`INSERT INTO users (id, email, name) VALUES ($1, $2, $3)`)
				for i := 0; i < 25; i++ {
					id := int64(100 + w*100 + i)
					if _, err := ws.ExecPrepared(wp, ins, id, fmt.Sprintf("w%d@x.com", id), fmt.Sprintf("w%d", id)); err != nil {
						t.Errorf("worker %d insert: %v", w, err)
						return
					}
					if _, err := ws.ExecPrepared(wp, sel, id); err != nil {
						t.Errorf("worker %d select: %v", w, err)
						return
					}
					wp.Sleep(sim.Duration(w+1) * 7 * sim.Millisecond)
				}
			})
		}
		// Invalidate the shared cache twice while the workers churn.
		p.Sleep(300 * sim.Millisecond)
		mustExec(t, p, s, `CREATE UNIQUE INDEX users_name_idx ON users (name)`)
		p.Sleep(300 * sim.Millisecond)
		mustExec(t, p, s, `ALTER TABLE promo_codes SET LOCALITY REGIONAL BY ROW`)
		wg.Wait(p)
		hits, misses := h.catalog.PlanCacheStats()
		if hits == 0 {
			t.Errorf("no cache hits across %d sessions (misses=%d)", workers, misses)
		}
	})
}

// benchSQLCluster builds a three-region cluster with a movr-style schema
// and one warm row, returning the cluster and a us-east1 session.
func benchSQLCluster(b *testing.B, seed int64) (*cluster.Cluster, *Session) {
	b.Helper()
	c := cluster.New(cluster.Config{Seed: seed, Regions: cluster.ThreeRegions(), MaxOffset: 250 * sim.Millisecond})
	catalog := NewCatalog()
	s := NewSession(c, catalog, c.GatewayFor(simnet.USEast1))
	c.Sim.Spawn("setup", func(p *sim.Proc) {
		p.Sleep(100 * sim.Millisecond)
		for _, stmt := range []string{
			`CREATE DATABASE movr PRIMARY REGION "us-east1" REGIONS "europe-west2", "asia-northeast1"`,
			`CREATE TABLE users (id INT PRIMARY KEY, email STRING, name STRING) LOCALITY REGIONAL BY ROW`,
		} {
			if _, err := s.Exec(p, stmt); err != nil {
				b.Errorf("%s: %v", stmt, err)
				return
			}
		}
		s.Database = "movr"
		if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (1, 'a@x.com', 'alice')`); err != nil {
			b.Error(err)
		}
	})
	c.Sim.RunFor(5 * sim.Second)
	return c, s
}

// BenchmarkExecPointRead measures the wall-clock cost of one prepared
// point read through the full SQL+KV stack (plan cache on).
func BenchmarkExecPointRead(b *testing.B) {
	c, s := benchSQLCluster(b, 11)
	c.Sim.Spawn("bench", func(p *sim.Proc) {
		defer c.Sim.Stop()
		ps := s.MustPrepare(`SELECT name FROM users WHERE id = $1 AND crdb_region = 'us-east1'`)
		if _, err := s.ExecPrepared(p, ps, int64(1)); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.ExecPrepared(p, ps, int64(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	c.Sim.Run()
}

// BenchmarkExecInsert measures the wall-clock cost of one prepared
// single-row INSERT through the full SQL+KV stack (plan cache on).
func BenchmarkExecInsert(b *testing.B) {
	c, s := benchSQLCluster(b, 12)
	c.Sim.Spawn("bench", func(p *sim.Proc) {
		defer c.Sim.Stop()
		ps := s.MustPrepare(`INSERT INTO users (id, email, name) VALUES ($1, $2, $3)`)
		if _, err := s.ExecPrepared(p, ps, int64(2), "b@x.com", "bob"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.ExecPrepared(p, ps, int64(1000+i), "x@x.com", "x"); err != nil {
				b.Fatal(err)
			}
		}
	})
	c.Sim.Run()
}

package sql

import (
	"testing"

	"mrdb/internal/cluster"
	"mrdb/internal/core"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// planHarness builds a catalog + session without running any workload;
// planning is pure.
type planHarness struct {
	c       *cluster.Cluster
	catalog *Catalog
	session *Session
	db      *core.Database
}

func newPlanHarness(t *testing.T) *planHarness {
	t.Helper()
	c := cluster.New(cluster.Config{
		Seed: 1, Regions: cluster.ThreeRegions(), MaxOffset: 250 * sim.Millisecond,
	})
	catalog := NewCatalog()
	db := core.NewDatabase("d", simnet.USEast1, simnet.EuropeW2, simnet.AsiaNE1)
	if err := catalog.CreateDatabase(db); err != nil {
		t.Fatal(err)
	}
	s := NewSession(c, catalog, c.GatewayFor(simnet.EuropeW2))
	s.Database = "d"
	return &planHarness{c: c, catalog: catalog, session: s, db: db}
}

// mkTable registers a REGIONAL BY ROW table with PK (id), unique email,
// and a computed-region variant flag, without creating ranges.
func (h *planHarness) mkTable(t *testing.T, name string, computed bool) *Table {
	t.Helper()
	tbl := &Table{Name: name, DB: "d", Locality: core.RegionalByRow}
	id := tbl.AddColumn(&Column{Name: "id", Type: TInt, NotNull: true})
	email := tbl.AddColumn(&Column{Name: "email", Type: TString})
	tbl.AddColumn(&Column{Name: "city", Type: TString})
	var regionCol *Column
	if computed {
		regionCol = tbl.AddColumn(&Column{
			Name: RegionColumnName, Type: TRegion, NotNull: true, Hidden: true,
			Computed: &FuncCall{Name: "region_from_city", Args: []Expr{&ColRef{Name: "city"}}},
		})
	} else {
		regionCol = tbl.AddColumn(&Column{
			Name: RegionColumnName, Type: TRegion, NotNull: true, Hidden: true,
			Default: &FuncCall{Name: "gateway_region"},
		})
	}
	tbl.RegionColumn = regionCol.ID
	tbl.AddIndex(&Index{Name: "primary", Unique: true, Cols: []ColumnID{id.ID}})
	tbl.AddIndex(&Index{Name: "email_key", Unique: true, Cols: []ColumnID{email.ID}})
	if err := h.catalog.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func eq(col string, v Datum) *Where {
	return &Where{Conds: []Cond{{Col: col, Op: OpEq, Vals: []Expr{&Lit{Val: v}}}}}
}

func TestPlanPointLookupOnPK(t *testing.T) {
	h := newPlanHarness(t)
	tbl := h.mkTable(t, "users", false)
	plan, err := h.session.planRead(tbl, h.db, eq("id", int64(7)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.index.Name != "primary" {
		t.Fatalf("chose index %q", plan.index.Name)
	}
	if len(plan.lookups) != 1 || len(plan.lookups[0]) != 1 {
		t.Fatalf("lookups = %v", plan.lookups)
	}
	if plan.regionPinned {
		t.Fatal("region should not be pinned without a region predicate")
	}
	if !plan.los {
		t.Fatal("unique point lookup should use locality optimized search")
	}
	// Gateway's region probes first.
	if plan.regions[0] != simnet.EuropeW2 {
		t.Fatalf("first probe region = %v, want the gateway's", plan.regions[0])
	}
	if len(plan.regions) != 3 {
		t.Fatalf("regions = %v", plan.regions)
	}
}

func TestPlanUniqueSecondaryIndex(t *testing.T) {
	h := newPlanHarness(t)
	tbl := h.mkTable(t, "users", false)
	plan, err := h.session.planRead(tbl, h.db, eq("email", "a@b.c"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.index.Name != "email_key" {
		t.Fatalf("chose index %q", plan.index.Name)
	}
	if !plan.los {
		t.Fatal("unique secondary lookup should use LOS")
	}
}

func TestPlanRegionPinnedByPredicate(t *testing.T) {
	h := newPlanHarness(t)
	tbl := h.mkTable(t, "users", false)
	w := eq("id", int64(1))
	w.Conds = append(w.Conds, Cond{
		Col: RegionColumnName, Op: OpEq,
		Vals: []Expr{&Lit{Val: "asia-northeast1"}},
	})
	plan, err := h.session.planRead(tbl, h.db, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.regionPinned || len(plan.regions) != 1 || plan.regions[0] != simnet.AsiaNE1 {
		t.Fatalf("pinned=%v regions=%v", plan.regionPinned, plan.regions)
	}
}

func TestPlanComputedRegionPins(t *testing.T) {
	h := newPlanHarness(t)
	tbl := h.mkTable(t, "accounts", true)
	w := eq("id", int64(1))
	w.Conds = append(w.Conds, Cond{Col: "city", Op: OpEq, Vals: []Expr{&Lit{Val: "tokyo"}}})
	plan, err := h.session.planRead(tbl, h.db, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.regionPinned || len(plan.regions) != 1 {
		t.Fatalf("computed region did not pin: %v", plan.regions)
	}
	// Without the determinant column the plan must search.
	plan, err = h.session.planRead(tbl, h.db, eq("id", int64(1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.regionPinned {
		t.Fatal("pinned without the determinant column")
	}
}

func TestPlanInListBuildsTuples(t *testing.T) {
	h := newPlanHarness(t)
	tbl := h.mkTable(t, "users", false)
	w := &Where{Conds: []Cond{{
		Col: "id", Op: OpIn,
		Vals: []Expr{&Lit{Val: int64(1)}, &Lit{Val: int64(2)}, &Lit{Val: int64(3)}},
	}}}
	plan, err := h.session.planRead(tbl, h.db, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.lookups) != 3 {
		t.Fatalf("lookups = %d", len(plan.lookups))
	}
}

func TestPlanFullScanWithoutUsableIndex(t *testing.T) {
	h := newPlanHarness(t)
	tbl := h.mkTable(t, "users", false)
	plan, err := h.session.planRead(tbl, h.db, eq("city", "x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.lookups != nil {
		t.Fatal("non-indexed predicate should scan")
	}
	if plan.index.Name != "primary" {
		t.Fatalf("scan over %q", plan.index.Name)
	}
}

func TestPlanLOSDisabled(t *testing.T) {
	h := newPlanHarness(t)
	tbl := h.mkTable(t, "users", false)
	h.session.LocalityOptimizedSearch = false
	plan, err := h.session.planRead(tbl, h.db, eq("id", int64(1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.los {
		t.Fatal("LOS used despite being disabled")
	}
}

func TestPlanConstraintIntersection(t *testing.T) {
	h := newPlanHarness(t)
	tbl := h.mkTable(t, "users", false)
	// id IN (1,2) AND id = 2 -> single lookup for 2.
	w := &Where{Conds: []Cond{
		{Col: "id", Op: OpIn, Vals: []Expr{&Lit{Val: int64(1)}, &Lit{Val: int64(2)}}},
		{Col: "id", Op: OpEq, Vals: []Expr{&Lit{Val: int64(2)}}},
	}}
	plan, err := h.session.planRead(tbl, h.db, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.lookups) != 1 || plan.lookups[0][0] != int64(2) {
		t.Fatalf("lookups = %v", plan.lookups)
	}
}

func TestExprColumnDeps(t *testing.T) {
	e := &CaseExpr{
		Whens: []CaseWhen{{
			Cond: &BinaryExpr{Op: "=", L: &ColRef{Name: "state"}, R: &Lit{Val: "CA"}},
			Then: &Lit{Val: "us-west1"},
		}},
		Else: &FuncCall{Name: "f", Args: []Expr{&ColRef{Name: "city"}}},
	}
	deps := exprColumnDeps(e)
	if len(deps) != 2 || deps[0] != "state" || deps[1] != "city" {
		t.Fatalf("deps = %v", deps)
	}
}

func TestIndexSpanNesting(t *testing.T) {
	h := newPlanHarness(t)
	tbl := h.mkTable(t, "users", false)
	// Partition spans must be disjoint per (index, region).
	s1, e1 := IndexSpan(tbl, tbl.Primary().ID, simnet.USEast1)
	s2, _ := IndexSpan(tbl, tbl.Primary().ID, simnet.EuropeW2)
	if string(s1) >= string(e1) {
		t.Fatal("empty span")
	}
	if string(s2) >= string(s1) && string(s2) < string(e1) {
		t.Fatal("partition spans overlap")
	}
	// Keys encode inside their partition span.
	key := EncodeIndexKey(tbl, tbl.Primary(), simnet.USEast1, []Datum{int64(5)})
	if string(key) < string(s1) || string(key) >= string(e1) {
		t.Fatal("encoded key outside its partition span")
	}
}

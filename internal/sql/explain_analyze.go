package sql

import (
	"fmt"
	"strconv"

	"mrdb/internal/obs"
	"mrdb/internal/sim"
)

// execExplainAnalyze executes the inner statement under a dedicated trace
// root and renders the plan annotated with trace-derived actuals: rows,
// per-attempt RPCs and retries, WAN links crossed, latch/closed-timestamp/
// intent wait time, Raft quorum trips, and the commit phases with their
// virtual-time durations. The statement's effects are real (as in
// CockroachDB, EXPLAIN ANALYZE runs the statement); only the rendering
// differs. Tracing is switched on for the duration if it was off — span
// recording is passive over virtual time, so this cannot change the
// statement's behavior or latency.
func (s *Session) execExplainAnalyze(p *sim.Proc, st *ExplainAnalyze) (*Result, error) {
	tr := s.Cluster.Tracer
	if !tr.Enabled() {
		tr.SetEnabled(true)
		defer tr.SetEnabled(false)
	}
	sp, done := tr.StartRootIn(p, "sql.analyze")
	s.lastPlanCache = ""
	start := p.Now()
	inner, execErr := s.execDML(p, st.Stmt)
	elapsed := p.Now().Sub(start)
	done()
	if execErr != nil {
		return nil, execErr
	}
	trace := tr.Collect(sp.Ctx().Trace)
	spans := spansUnder(trace, sp)

	// Aggregate the span forest into per-kind counts and durations.
	var (
		batches, kvReqs, rpcs, retries    int64
		wanRPCs                           int64
		quorumTrips, wanQuorumTrips       int64
		latchWait, closedWait, intentWait sim.Duration
		phases                            = map[string]sim.Duration{}
		phaseCount                        = map[string]int64{}
		proveWrites                       int64
	)
	for _, span := range spans {
		switch span.Name {
		case "ds.send":
			batches++
			// Each per-range batch carries >= 1 request; the "reqs" tag is
			// set only on multi-request batches.
			kvReqs++
			if v, ok := span.Tag("reqs"); ok {
				if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 1 {
					kvReqs += n - 1
				}
			}
		case "ds.rpc":
			rpcs++
			if _, failed := span.Tag("err"); failed {
				retries++
			}
		case "net.rpc":
			if wan, ok := span.Tag("wan"); ok && wan == "true" {
				wanRPCs++
			}
		case "raft.replicate":
			quorumTrips++
			if v, ok := span.Tag("wan_acks"); ok {
				if n, err := strconv.ParseInt(v, 10, 64); err == nil {
					wanQuorumTrips += n
				}
			}
		case "latch.wait":
			latchWait += span.Duration()
		case "closedts.wait":
			closedWait += span.Duration()
		case "intent.wait":
			intentWait += span.Duration()
		case "txn.stage", "txn.commit_record", "txn.prove", "txn.commitwait",
			"txn.refresh", "txn.resolve":
			phases[span.Name] += span.Duration()
			phaseCount[span.Name]++
			if span.Name == "txn.prove" {
				if v, ok := span.Tag("writes"); ok {
					if n, err := strconv.ParseInt(v, 10, 64); err == nil {
						proveWrites += n
					}
				}
			}
		}
	}

	res := &Result{Columns: []string{"field", "value"}}
	add := func(f, v string) { res.Rows = append(res.Rows, []Datum{f, v}) }
	add("statement", Fingerprint(st.Stmt))
	// For reads, splice in the static plan the optimizer chose.
	if sel, ok := st.Stmt.(*Select); ok && !IsVirtualTable(sel.Table) {
		if t, db, err := s.table(sel.Table); err == nil {
			if plan, err := s.planRead(t, db, sel.Where, sel.Limit); err == nil {
				add("index", plan.index.Name)
				add("partitions", fmt.Sprintf("%v", plan.regions))
				add("locality optimized search", fmt.Sprintf("%v", plan.los))
			}
		}
	}
	if s.lastPlanCache != "" {
		add("plan cache", s.lastPlanCache)
	}
	add("rows", fmt.Sprintf("%d", len(inner.Rows)))
	add("rows affected", fmt.Sprintf("%d", inner.RowsAffected))
	add("execution time", elapsed.String())
	add("kv requests", fmt.Sprintf("%d", kvReqs))
	add("kv batches", fmt.Sprintf("%d", batches))
	add("kv rpcs", fmt.Sprintf("%d", rpcs))
	add("kv retries", fmt.Sprintf("%d", retries))
	add("wan rpcs", fmt.Sprintf("%d", wanRPCs))
	add("raft quorum trips", fmt.Sprintf("%d", quorumTrips))
	add("inter-region quorum trips", fmt.Sprintf("%d", wanQuorumTrips))
	add("latch wait", latchWait.String())
	add("closed-ts wait", closedWait.String())
	add("intent wait", intentWait.String())
	// Commit phases render in protocol order; absent phases are elided
	// except commit wait, whose zero is itself the headline claim for
	// REGIONAL tables (§4.4: only GLOBAL transactions commit-wait).
	if phaseCount["txn.stage"] > 0 {
		add("commit: stage writes", phases["txn.stage"].String())
	}
	if phaseCount["txn.commit_record"] > 0 {
		add("commit: write record", phases["txn.commit_record"].String())
	}
	if phaseCount["txn.prove"] > 0 {
		add("commit: prove writes", fmt.Sprintf("%s (%d writes)", phases["txn.prove"], proveWrites))
	}
	add("commit wait", phases["txn.commitwait"].String())
	if phaseCount["txn.refresh"] > 0 {
		add("refresh", phases["txn.refresh"].String())
	}
	if phaseCount["txn.resolve"] > 0 {
		add("resolve intents", "async")
	}
	res.RowsAffected = len(res.Rows)
	return res, nil
}

// spansUnder returns root and every descendant of root in t, in creation
// order. When tracing was already on, the collected trace can contain
// spans outside this statement (the enclosing sql.exec root); walking the
// parent chain keeps the aggregation scoped to the analyzed statement.
func spansUnder(t *obs.Trace, root *obs.Span) []*obs.Span {
	if t == nil || root == nil {
		return nil
	}
	in := map[obs.SpanID]bool{root.Context.Span: true}
	var out []*obs.Span
	// Spans append in creation order and parents precede children, so one
	// forward pass finds the full subtree.
	for _, s := range t.Spans {
		if in[s.Context.Span] || in[s.Parent] {
			in[s.Context.Span] = true
			out = append(out, s)
		}
	}
	return out
}

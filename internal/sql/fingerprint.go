package sql

import (
	"fmt"
	"strings"
)

// Fingerprint renders a DML statement in canonical form with literals
// normalized to "_", so executions of the same statement shape share one
// entry in the statement-statistics registry regardless of their concrete
// values. Multi-row VALUES lists collapse to the first row's shape, and IN
// lists collapse to a single placeholder, matching how CockroachDB
// fingerprints statements for crdb_internal.statement_statistics.
func Fingerprint(stmt Statement) string {
	var b strings.Builder
	switch st := stmt.(type) {
	case *Insert:
		if st.Upsert {
			b.WriteString("UPSERT INTO ")
		} else {
			b.WriteString("INSERT INTO ")
		}
		b.WriteString(st.Table)
		if len(st.Columns) > 0 {
			b.WriteString(" (")
			b.WriteString(strings.Join(st.Columns, ", "))
			b.WriteString(")")
		}
		b.WriteString(" VALUES (")
		if len(st.Rows) > 0 {
			for i, e := range st.Rows[0] {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(fingerprintExpr(e))
			}
		}
		b.WriteString(")")
		if len(st.Rows) > 1 {
			b.WriteString(", ...")
		}
	case *Select:
		b.WriteString("SELECT ")
		if st.Columns == nil {
			b.WriteString("*")
		} else {
			b.WriteString(strings.Join(st.Columns, ", "))
		}
		b.WriteString(" FROM ")
		b.WriteString(st.Table)
		if st.AsOf != nil {
			b.WriteString(" AS OF SYSTEM TIME _")
		}
		fingerprintWhere(&b, st.Where)
		if st.Limit > 0 {
			b.WriteString(" LIMIT _")
		}
	case *Update:
		b.WriteString("UPDATE ")
		b.WriteString(st.Table)
		b.WriteString(" SET ")
		for i, a := range st.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Col)
			b.WriteString(" = ")
			b.WriteString(fingerprintExpr(a.Val))
		}
		fingerprintWhere(&b, st.Where)
	case *Delete:
		b.WriteString("DELETE FROM ")
		b.WriteString(st.Table)
		fingerprintWhere(&b, st.Where)
	default:
		return strings.TrimPrefix(fmt.Sprintf("%T", stmt), "*sql.")
	}
	return b.String()
}

func fingerprintWhere(b *strings.Builder, w *Where) {
	if w == nil || len(w.Conds) == 0 {
		return
	}
	b.WriteString(" WHERE ")
	for i, c := range w.Conds {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(c.Col)
		if c.Op == OpIn {
			b.WriteString(" IN (_)")
		} else {
			b.WriteString(" = ")
			b.WriteString(fingerprintExpr(c.Vals[0]))
		}
	}
}

// fingerprintExpr renders an expression with literals replaced by "_".
// Column references and function names stay, since they change the plan.
func fingerprintExpr(e Expr) string {
	switch ex := e.(type) {
	case *Lit:
		return "_"
	case *Placeholder:
		// Placeholders fingerprint like literals, so a prepared statement
		// shares its fingerprint — and cached plan — with its ad-hoc form.
		return "_"
	case *ColRef:
		return ex.Name
	case *FuncCall:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = fingerprintExpr(a)
		}
		return ex.Name + "(" + strings.Join(args, ", ") + ")"
	case *BinaryExpr:
		return fingerprintExpr(ex.L) + " " + ex.Op + " " + fingerprintExpr(ex.R)
	case *CaseExpr:
		return "CASE"
	}
	return "_"
}

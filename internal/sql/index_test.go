package sql

import (
	"testing"

	"mrdb/internal/sim"
)

// TestSQLCreateIndexBackfill covers CREATE INDEX on existing data: the new
// index is backfilled and immediately usable by the planner.
func TestSQLCreateIndexBackfill(t *testing.T) {
	h := newSQLHarness(201)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		for i := 1; i <= 5; i++ {
			if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (`+itoa(i)+`, 'i`+itoa(i)+`@x.com', 'n`+itoa(i)+`')`); err != nil {
				t.Error(err)
				return
			}
		}
		if _, err := s.Exec(p, `CREATE UNIQUE INDEX users_name_idx ON users (name)`); err != nil {
			t.Errorf("create index: %v", err)
			return
		}
		p.Sleep(300 * sim.Millisecond)
		// The planner picks the new index for name lookups...
		res, err := s.Exec(p, `EXPLAIN SELECT id FROM users WHERE name = 'n3'`)
		if err != nil {
			t.Error(err)
			return
		}
		found := false
		for _, row := range res.Rows {
			if row[0] == "index" && row[1] == "users_name_idx" {
				found = true
			}
		}
		if !found {
			t.Errorf("planner did not pick the new index: %v", res.Rows)
		}
		// ...and backfilled rows are found through it.
		got, err := s.Exec(p, `SELECT id FROM users WHERE name = 'n3'`)
		if err != nil || len(got.Rows) != 1 || got.Rows[0][0] != int64(3) {
			t.Errorf("index lookup: %v %v", got, err)
		}
		// New writes maintain it.
		if _, err := s.Exec(p, `INSERT INTO users (id, email, name) VALUES (9, 'i9@x.com', 'n9')`); err != nil {
			t.Error(err)
			return
		}
		got, err = s.Exec(p, `SELECT id FROM users WHERE name = 'n9'`)
		if err != nil || len(got.Rows) != 1 {
			t.Errorf("post-create maintenance: %v %v", got, err)
		}
		// The unique index enforces uniqueness across regions.
		eu := h.sessions["europe-west2"]
		if _, err := eu.Exec(p, `INSERT INTO users (id, email, name) VALUES (10, 'i10@x.com', 'n3')`); err == nil {
			t.Error("duplicate name accepted through new unique index")
		}
	})
}

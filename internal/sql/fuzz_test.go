package sql

import (
	"testing"
	"testing/quick"
)

// Property: Parse never panics, whatever the input.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutating valid statements never panics the parser.
func TestQuickParseMutatedStatements(t *testing.T) {
	bases := []string{
		`SELECT a, b FROM t WHERE a = 1 AND b IN (2, 3) LIMIT 5`,
		`CREATE TABLE t (a INT PRIMARY KEY, b STRING UNIQUE) LOCALITY REGIONAL BY ROW`,
		`INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`,
		`UPDATE t SET b = b + 1 WHERE a = 1`,
		`ALTER DATABASE d SURVIVE REGION FAILURE`,
		`SELECT * FROM t AS OF SYSTEM TIME with_max_staleness('30s')`,
	}
	f := func(pick uint8, pos uint8, repl byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		src := []byte(bases[int(pick)%len(bases)])
		src[int(pos)%len(src)] = repl
		_, _ = Parse(string(src))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

package sql

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyDatumRoundTrip(t *testing.T) {
	cases := []Datum{
		nil, true, false,
		int64(0), int64(-1), int64(42), int64(math.MaxInt64), int64(math.MinInt64),
		0.0, -1.5, 3.14159, math.MaxFloat64, -math.MaxFloat64,
		"", "hello", "with\x00null", "with\x00\xffbytes", "ünïcode",
	}
	for _, d := range cases {
		enc := EncodeKeyDatum(nil, d)
		got, rest, err := DecodeKeyDatum(enc)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: %d leftover bytes", d, len(rest))
		}
		if !DatumsEqual(got, d) {
			t.Fatalf("roundtrip %v -> %v", d, got)
		}
	}
}

func TestKeyOrderingInts(t *testing.T) {
	vals := []int64{math.MinInt64, -1000, -1, 0, 1, 7, 1000, math.MaxInt64}
	var keys [][]byte
	for _, v := range vals {
		keys = append(keys, EncodeKeyDatum(nil, v))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("key order broken between %d and %d", vals[i-1], vals[i])
		}
	}
}

func TestKeyOrderingStringsWithNulls(t *testing.T) {
	vals := []string{"", "a", "a\x00", "a\x00b", "ab", "b"}
	for i := 1; i < len(vals); i++ {
		a := EncodeKeyDatum(nil, vals[i-1])
		b := EncodeKeyDatum(nil, vals[i])
		if bytes.Compare(a, b) >= 0 {
			t.Fatalf("string key order broken between %q and %q", vals[i-1], vals[i])
		}
	}
}

// Property: encoded-key comparison matches value comparison for ints.
func TestQuickIntKeyOrder(t *testing.T) {
	f := func(a, b int64) bool {
		ka := EncodeKeyDatum(nil, a)
		kb := EncodeKeyDatum(nil, b)
		switch {
		case a < b:
			return bytes.Compare(ka, kb) < 0
		case a > b:
			return bytes.Compare(ka, kb) > 0
		default:
			return bytes.Equal(ka, kb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encoded-key comparison matches lexicographic order for strings.
func TestQuickStringKeyOrder(t *testing.T) {
	f := func(a, b string) bool {
		ka := EncodeKeyDatum(nil, a)
		kb := EncodeKeyDatum(nil, b)
		return (a < b) == (bytes.Compare(ka, kb) < 0) &&
			(a == b) == bytes.Equal(ka, kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: float keys sort correctly (NaN excluded).
func TestQuickFloatKeyOrder(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := EncodeKeyDatum(nil, a)
		kb := EncodeKeyDatum(nil, b)
		if a < b {
			return bytes.Compare(ka, kb) < 0
		}
		if a > b {
			return bytes.Compare(ka, kb) > 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: multi-datum tuples sort lexicographically by component.
func TestQuickTupleOrder(t *testing.T) {
	f := func(a1 int64, a2 string, b1 int64, b2 string) bool {
		ka := EncodeKeyDatum(EncodeKeyDatum(nil, a1), a2)
		kb := EncodeKeyDatum(EncodeKeyDatum(nil, b1), b2)
		var want int
		switch {
		case a1 < b1:
			want = -1
		case a1 > b1:
			want = 1
		case a2 < b2:
			want = -1
		case a2 > b2:
			want = 1
		}
		got := bytes.Compare(ka, kb)
		if got > 0 {
			got = 1
		} else if got < 0 {
			got = -1
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowRoundTrip(t *testing.T) {
	vals := map[ColumnID]Datum{
		1: "hello",
		2: int64(-42),
		3: 3.5,
		4: true,
		5: nil,
		9: "trailing",
	}
	enc := EncodeRow(vals)
	got, err := DecodeRow(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("lengths: %d vs %d", len(got), len(vals))
	}
	for id, v := range vals {
		if !DatumsEqual(got[id], v) {
			t.Fatalf("col %d: %v vs %v", id, got[id], v)
		}
	}
}

// Property: row encode/decode is lossless for arbitrary string/int columns.
func TestQuickRowRoundTrip(t *testing.T) {
	f := func(strs []string, ints []int64) bool {
		vals := map[ColumnID]Datum{}
		id := ColumnID(1)
		for _, s := range strs {
			vals[id] = s
			id++
		}
		for _, n := range ints {
			vals[id] = n
			id++
		}
		got, err := DecodeRow(EncodeRow(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for k, v := range vals {
			if !DatumsEqual(got[k], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc", "abd"},
		{"a\xff", "b"},
	}
	for _, c := range cases {
		got := PrefixEnd([]byte(c.in))
		if string(got) != c.want {
			t.Errorf("PrefixEnd(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if PrefixEnd([]byte{0xff, 0xff}) != nil {
		t.Error("PrefixEnd of all-FF should be nil")
	}
	// Every key starting with p sorts below PrefixEnd(p).
	p := []byte("table/1/")
	end := PrefixEnd(p)
	keys := []string{"table/1/", "table/1/zzz", "table/1/\xff\xff"}
	for _, k := range keys {
		if bytes.Compare([]byte(k), end) >= 0 {
			t.Errorf("%q not below PrefixEnd", k)
		}
	}
}

func TestDatumsEqualNumeric(t *testing.T) {
	if !DatumsEqual(int64(3), 3.0) || !DatumsEqual(3.0, int64(3)) {
		t.Error("int/float equality")
	}
	if DatumsEqual(int64(3), 3.5) {
		t.Error("3 == 3.5")
	}
	if !DatumsEqual(int(3), int64(3)) {
		t.Error("int vs int64")
	}
	if !DatumsEqual(nil, nil) || DatumsEqual(nil, "x") {
		t.Error("nil comparisons")
	}
	_ = sort.Strings // keep import pattern consistent
}

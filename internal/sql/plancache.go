package sql

import (
	"encoding/binary"
	"fmt"

	"mrdb/internal/core"
	"mrdb/internal/mvcc"
	"mrdb/internal/simnet"
)

// Plan cache: the statement-execution fast path. Planning a statement
// twice with the same fingerprint, catalog version, gateway region and
// WHERE-clause arities makes every *shape* decision — index choice,
// partition-resolution mode, search order, locality-optimized-search
// eligibility — identically, so those decisions are computed once and
// reused. Everything value-dependent (constraint values, lookup tuples,
// computed regions) is still evaluated per execution, in exactly the order
// the from-scratch planner evaluates it, which keeps RNG and clock draws —
// and therefore span trees and statement statistics — byte-identical with
// the cache on or off. The whole path is disabled by Catalog.PlanCacheOff.

// planCache outcome labels rendered by EXPLAIN ANALYZE.
const (
	planCacheHit  = "hit"
	planCacheMiss = "miss"
	planCacheOff  = "off"
)

// regionMode classifies how a cached read plan resolves its candidate
// partitions on each execution.
type regionMode int8

const (
	// modeUnpartitioned: non-REGIONAL BY ROW table, the single "" partition.
	modeUnpartitioned regionMode = iota
	// modeRegionCol: the region column is constrained in WHERE; partitions
	// come from its per-execution values (pinned).
	modeRegionCol
	// modeComputed: the region column is computed and all its dependencies
	// are single-value constrained; evaluate it per execution (pinned).
	modeComputed
	// modeSearch: gateway-local partition first, then the rest (§4.2).
	modeSearch
)

// cachedRead is the shape half of a read plan: every decision that is a
// pure function of the cache key. Binding it to per-execution constraint
// values reproduces planRead's output exactly.
type cachedRead struct {
	index *Index
	// colNames are index.Cols resolved to names, for constraint lookup
	// without per-execution catalog scans.
	colNames []string
	// scan means no usable index: full scan of index, no lookup tuples.
	scan bool
	mode regionMode
	// regions is the memoized gateway-first search order (modeSearch only);
	// shared read-only across executions.
	regions []simnet.Region
	// los is the locality-optimized-search decision (§4.2); the LOS session
	// setting is part of the cache key, so the bit is fully determined.
	los bool
	// filterRedundant means every WHERE conjunct is enforced by the lookup
	// tuples themselves (literal/placeholder values on indexed columns), so
	// the per-row filter pass is a provable no-op and is skipped.
	filterRedundant bool
	// prefixes memoizes this table's index-partition key prefixes.
	prefixes prefixCache
}

// cachedInsert is the shape half of an INSERT: resolved target columns,
// the default/computed column schedule, and the uuid-default set that
// drives uniqueness-check elision (§4.1).
type cachedInsert struct {
	cols     []ColumnID
	defaults []*Column
	computed []*Column
	// fromDefault is the shared, read-only gen_random_uuid() default set
	// (every execution of this shape fills the same columns from defaults).
	fromDefault map[ColumnID]bool
	prefixes    prefixCache
}

// prefixEntry memoizes one index partition's key prefix.
type prefixEntry struct {
	idx    IndexID
	region simnet.Region
	key    mvcc.Key
}

// prefixCache memoizes index-partition key prefixes per cached plan, so hot
// key construction skips IndexPrefix's per-key formatting. The entry count
// is bounded by indexes × regions of one table, so a linear scan beats a
// map. Entries are appended lazily; the cooperative scheduler serializes
// sessions, so no locking is needed (same argument as StmtStats).
type prefixCache struct {
	entries []prefixEntry
}

// indexKey builds a full index key using the memoized prefix: one
// exact-capacity allocation per key instead of formatting garbage. The
// bytes are identical to EncodeIndexKey's.
func (pc *prefixCache) indexKey(t *Table, idx *Index, region simnet.Region, vals []Datum) mvcc.Key {
	var prefix mvcc.Key
	for i := range pc.entries {
		e := &pc.entries[i]
		if e.idx == idx.ID && e.region == region {
			prefix = e.key
			break
		}
	}
	if prefix == nil {
		prefix = IndexPrefix(t, idx.ID, region)
		pc.entries = append(pc.entries, prefixEntry{idx: idx.ID, region: region, key: prefix})
	}
	key := make(mvcc.Key, len(prefix), len(prefix)+KeyTupleSize(vals))
	copy(key, prefix)
	return AppendKeyTuple(key, vals)
}

// encodeIndexKey builds an index key through the plan's prefix cache when
// one is attached, and through the regular path otherwise. Both produce the
// same bytes; only the allocation profile differs, which keeps the
// PlanCacheOff ablation arm exactly on the pre-cache path.
func encodeIndexKey(pc *prefixCache, t *Table, idx *Index, region simnet.Region, vals []Datum) mvcc.Key {
	if pc == nil {
		return EncodeIndexKey(t, idx, region, vals)
	}
	return pc.indexKey(t, idx, region, vals)
}

// PlanCache holds cached statement shapes keyed by fingerprint-derived
// strings. It is cluster-shared state on the Catalog (like StmtStats) and
// is invalidated wholesale when the catalog version moves: DDL,
// ALTER TABLE ... LOCALITY, ALTER DATABASE ADD/DROP REGION, survivability,
// placement and primary-region changes all bump the version.
type PlanCache struct {
	version uint64
	reads   map[string]*cachedRead
	inserts map[string]*cachedInsert
	hits    uint64
	misses  uint64
}

// planCacheMaxEntries bounds each shape map; workloads have a handful of
// statement shapes, so hitting the bound means something is generating
// unbounded shapes and caching them would only burn memory.
const planCacheMaxEntries = 4096

// sync drops every entry when the catalog version has moved since the last
// access: O(1) invalidation, no stale plan can survive a schema change.
func (pc *PlanCache) sync(version uint64) {
	if pc.version != version {
		pc.reads, pc.inserts = nil, nil
		pc.version = version
	}
}

func (pc *PlanCache) getRead(version uint64, key []byte) *cachedRead {
	pc.sync(version)
	cr := pc.reads[string(key)]
	if cr != nil {
		pc.hits++
	} else {
		pc.misses++
	}
	return cr
}

func (pc *PlanCache) putRead(version uint64, key string, cr *cachedRead) {
	pc.sync(version)
	if pc.reads == nil {
		pc.reads = map[string]*cachedRead{}
	}
	if len(pc.reads) < planCacheMaxEntries {
		pc.reads[key] = cr
	}
}

func (pc *PlanCache) getInsert(version uint64, key []byte) *cachedInsert {
	pc.sync(version)
	ci := pc.inserts[string(key)]
	if ci != nil {
		pc.hits++
	} else {
		pc.misses++
	}
	return ci
}

func (pc *PlanCache) putInsert(version uint64, key string, ci *cachedInsert) {
	pc.sync(version)
	if pc.inserts == nil {
		pc.inserts = map[string]*cachedInsert{}
	}
	if len(pc.inserts) < planCacheMaxEntries {
		pc.inserts[key] = ci
	}
}

// PlanCacheStats returns the cumulative hit and miss counts.
func (c *Catalog) PlanCacheStats() (hits, misses uint64) {
	return c.plans.hits, c.plans.misses
}

// PlanCacheLen returns the number of cached statement shapes at the current
// catalog version.
func (c *Catalog) PlanCacheLen() int {
	c.plans.sync(c.version)
	return len(c.plans.reads) + len(c.plans.inserts)
}

// --- cache keys ---

// stmtFingerprint returns the current statement's fingerprint: the one the
// prepared-statement path or ExecStmt already computed, or a fresh one.
func (s *Session) stmtFingerprint(stmt Statement) string {
	if s.curFP != "" {
		return s.curFP
	}
	return Fingerprint(stmt)
}

// readPlanKey builds the read-plan cache key into the session scratch
// buffer: database, fingerprint, gateway region, LOS setting and the
// per-conjunct value arities. Fingerprints erase IN-list arity, but tuple
// counts and computed-region eligibility depend on it, so arities must key
// the cache. The returned slice aliases session scratch.
func (s *Session) readPlanKey(fp string, w *Where) []byte {
	b := append(s.keyScratch[:0], s.Database...)
	b = append(b, 0)
	b = append(b, fp...)
	b = append(b, 0)
	b = append(b, s.Region()...)
	if s.LocalityOptimizedSearch {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if w != nil {
		for _, c := range w.Conds {
			b = binary.AppendUvarint(b, uint64(len(c.Vals)))
		}
	}
	s.keyScratch = b
	return b
}

// insertPlanKey builds the INSERT cache key (database + fingerprint; the
// fingerprint already pins table, column list and row shape).
func (s *Session) insertPlanKey(fp string) []byte {
	b := append(s.keyScratch[:0], s.Database...)
	b = append(b, 0)
	b = append(b, fp...)
	s.keyScratch = b
	return b
}

// cacheableWhere rejects WHERE clauses that constrain the same column more
// than once: conjunct intersection can empty a value set depending on the
// concrete values, which makes index usability — and with it the whole plan
// shape — value-dependent rather than shape-determined.
func cacheableWhere(w *Where) bool {
	if w == nil {
		return true
	}
	for i, c := range w.Conds {
		for j := 0; j < i; j++ {
			if w.Conds[j].Col == c.Col {
				return false
			}
		}
	}
	return true
}

// filterCoveredByLookup reports whether the per-row filter pass is provably
// redundant: every conjunct targets an indexed column with pure
// literal/placeholder values, so rows fetched via the lookup tuples satisfy
// the WHERE clause by construction. Non-pure values (function calls) keep
// the filter, both for correctness and because skipping their per-row
// re-evaluation would desynchronize RNG draws from the cache-off path.
func filterCoveredByLookup(t *Table, idx *Index, w *Where) bool {
	if w == nil {
		return true
	}
	for _, c := range w.Conds {
		col, ok := t.Column(c.Col)
		if !ok {
			return false
		}
		indexed := false
		for _, cid := range idx.Cols {
			if cid == col.ID {
				indexed = true
				break
			}
		}
		if !indexed {
			return false
		}
		for _, e := range c.Vals {
			switch e.(type) {
			case *Lit, *Placeholder:
			default:
				return false
			}
		}
	}
	return true
}

// --- read path ---

// unpartitionedRegions is the shared single-"" partition list.
var unpartitionedRegions = []simnet.Region{""}

// planReadCached is planRead behind the plan cache: a hit binds the cached
// shape to this execution's constraint values; a miss plans from scratch
// and installs the shape. With the cache off (ablation) or an uncacheable
// WHERE clause it falls through to planRead unchanged.
func (s *Session) planReadCached(stmt Statement, t *Table, db *core.Database, w *Where, limit int) (*readPlan, error) {
	if s.Catalog.PlanCacheOff {
		s.lastPlanCache = planCacheOff
		return s.planRead(t, db, w, limit)
	}
	if !cacheableWhere(w) {
		s.lastPlanCache = planCacheMiss
		return s.planRead(t, db, w, limit)
	}
	fp := s.stmtFingerprint(stmt)
	key := s.readPlanKey(fp, w)
	if cr := s.Catalog.plans.getRead(s.Catalog.version, key); cr != nil {
		s.lastPlanCache = planCacheHit
		return s.bindRead(cr, t, db, w, limit)
	}
	s.lastPlanCache = planCacheMiss
	plan, err := s.planRead(t, db, w, limit)
	if err != nil {
		return nil, err
	}
	cr := buildCachedRead(t, plan, w)
	s.Catalog.plans.putRead(s.Catalog.version, string(key), cr)
	// The miss execution fetches through the fresh entry's prefix cache too,
	// warming it for the hits that follow.
	plan.prefixes = &cr.prefixes
	plan.filterRedundant = cr.filterRedundant
	return plan, nil
}

// buildCachedRead extracts the shape half of a freshly planned read.
func buildCachedRead(t *Table, plan *readPlan, w *Where) *cachedRead {
	cr := &cachedRead{index: plan.index, scan: plan.lookups == nil, los: plan.los}
	switch {
	case !t.IsPartitioned():
		cr.mode = modeUnpartitioned
	case whereConstrains(w, regionColumnName(t)):
		cr.mode = modeRegionCol
	case plan.regionPinned:
		cr.mode = modeComputed
	default:
		cr.mode = modeSearch
		cr.regions = plan.regions
	}
	if !cr.scan {
		for _, cid := range plan.index.Cols {
			col, _ := t.ColumnByID(cid)
			cr.colNames = append(cr.colNames, col.Name)
		}
		cr.filterRedundant = filterCoveredByLookup(t, plan.index, w)
	}
	return cr
}

func regionColumnName(t *Table) string {
	col, ok := t.ColumnByID(t.RegionColumn)
	if !ok {
		return ""
	}
	return col.Name
}

func whereConstrains(w *Where, col string) bool {
	if w == nil || col == "" {
		return false
	}
	for _, c := range w.Conds {
		if c.Col == col {
			return true
		}
	}
	return false
}

// bindRead reproduces planRead's output from a cached shape plus this
// execution's constraint values. Constraints are still evaluated exactly as
// the from-scratch planner evaluates them (same expressions, same order),
// so any RNG or clock draws match the cache-off execution; only the shape
// recomputation and its allocations are skipped.
func (s *Session) bindRead(cr *cachedRead, t *Table, db *core.Database, w *Where, limit int) (*readPlan, error) {
	cons, err := s.constraints(w, nil)
	if err != nil {
		return nil, err
	}
	plan := &s.planScratch
	*plan = readPlan{t: t, index: cr.index, limit: limit, prefixes: &cr.prefixes, filterRedundant: cr.filterRedundant}
	switch cr.mode {
	case modeUnpartitioned:
		plan.regions = unpartitionedRegions
		plan.regionPinned = true
	case modeRegionCol:
		regions := s.regionScratch[:0]
		for _, v := range cons[regionColumnName(t)] {
			if r, ok := v.(string); ok {
				regions = append(regions, simnet.Region(r))
			}
		}
		s.regionScratch = regions
		plan.regions = regions
		plan.regionPinned = true
	case modeComputed:
		r, ok := s.computedRegionFromConstraints(t, cons)
		if !ok {
			// Shape drift the key did not capture; replan defensively.
			return s.planRead(t, db, w, limit)
		}
		regions := append(s.regionScratch[:0], r)
		s.regionScratch = regions
		plan.regions = regions
		plan.regionPinned = true
	case modeSearch:
		plan.regions = cr.regions
	}
	if cr.scan {
		return plan, nil
	}
	plan.los = cr.los
	// Lookup tuples: cartesian product of the per-column candidate values,
	// exactly as planRead builds them. The single-tuple case — every indexed
	// column equality-constrained to one value, the OLTP hot path — reuses
	// session scratch; that is safe only when no first-hit probes can
	// outlive the statement, i.e. when LOS fan-out is off for this plan.
	single := true
	for _, name := range cr.colNames {
		n := len(cons[name])
		if n == 0 {
			// Arity is in the key, so this implies the catalog changed
			// shape under us; replan defensively.
			return s.planRead(t, db, w, limit)
		}
		if n != 1 {
			single = false
		}
	}
	if single && !plan.los {
		tuple := s.tupleScratch[:0]
		for _, name := range cr.colNames {
			tuple = append(tuple, cons[name][0])
		}
		s.tupleScratch = tuple
		if s.lookupScratch == nil {
			s.lookupScratch = make([][]Datum, 1)
		}
		s.lookupScratch[0] = tuple
		plan.lookups = s.lookupScratch
		return plan, nil
	}
	tuples := [][]Datum{nil}
	for _, name := range cr.colNames {
		vals := cons[name]
		var next [][]Datum
		for _, tu := range tuples {
			for _, v := range vals {
				nt := append(append([]Datum(nil), tu...), v)
				next = append(next, nt)
			}
		}
		tuples = next
		if len(tuples) > 1024 {
			return nil, fmt.Errorf("sql: IN list product too large")
		}
	}
	plan.lookups = tuples
	return plan, nil
}

// --- insert path ---

// insertPlan looks up or installs the cached shape of an INSERT. A nil
// return (ablation, uncacheable shape) sends the caller down the
// from-scratch path.
func (s *Session) insertPlan(st *Insert, t *Table) *cachedInsert {
	if s.Catalog.PlanCacheOff {
		s.lastPlanCache = planCacheOff
		return nil
	}
	fp := s.stmtFingerprint(st)
	key := s.insertPlanKey(fp)
	if ci := s.Catalog.plans.getInsert(s.Catalog.version, key); ci != nil {
		s.lastPlanCache = planCacheHit
		return ci
	}
	s.lastPlanCache = planCacheMiss
	ci := buildCachedInsert(st, t)
	if ci != nil {
		s.Catalog.plans.putInsert(s.Catalog.version, string(key), ci)
	}
	return ci
}

// buildCachedInsert resolves an INSERT's target columns and precomputes the
// default/computed evaluation schedule. Returns nil for shapes the slow
// path must reject (unknown columns), so the error surfaces there.
func buildCachedInsert(st *Insert, t *Table) *cachedInsert {
	cols := st.Columns
	if cols == nil {
		for _, c := range t.VisibleColumns() {
			cols = append(cols, c.Name)
		}
	}
	ci := &cachedInsert{fromDefault: map[ColumnID]bool{}}
	provided := map[ColumnID]bool{}
	for _, name := range cols {
		c, ok := t.Column(name)
		if !ok {
			return nil
		}
		ci.cols = append(ci.cols, c.ID)
		provided[c.ID] = true
	}
	for _, c := range t.Columns {
		if provided[c.ID] || c.Computed != nil {
			continue
		}
		if c.Default != nil {
			ci.defaults = append(ci.defaults, c)
			if fc, ok := c.Default.(*FuncCall); ok && fc.Name == "gen_random_uuid" {
				ci.fromDefault[c.ID] = true
			}
		}
	}
	for _, c := range t.Columns {
		if c.Computed != nil {
			ci.computed = append(ci.computed, c)
		}
	}
	return ci
}

// buildRowValuesCached is buildRowValues over a cached insert shape: same
// expressions evaluated in the same order (value parity and RNG parity with
// the slow path), but with the column resolution, provided/fromDefault
// bookkeeping maps and the per-default name→value map rebuilds all hoisted
// into the cached shape. One name→value map is built per row and updated
// incrementally, which is observationally identical to rebuilding it before
// every default and computed evaluation.
func (s *Session) buildRowValuesCached(ci *cachedInsert, t *Table, db *core.Database, exprs []Expr) (map[ColumnID]Datum, error) {
	vals := make(map[ColumnID]Datum, len(t.Columns))
	for i, cid := range ci.cols {
		v, err := s.evalExpr(exprs[i], nil)
		if err != nil {
			return nil, err
		}
		vals[cid] = v
	}
	var ctx *evalCtx
	if len(ci.defaults)+len(ci.computed) > 0 {
		ctx = &evalCtx{session: s, row: t.namedVals(vals)}
	}
	for _, c := range ci.defaults {
		v, err := s.evalExpr(c.Default, ctx)
		if err != nil {
			return nil, err
		}
		vals[c.ID] = v
		ctx.row[c.Name] = v
	}
	for _, c := range ci.computed {
		v, err := s.evalExpr(c.Computed, ctx)
		if err != nil {
			return nil, err
		}
		vals[c.ID] = v
		ctx.row[c.Name] = v
	}
	for _, c := range t.Columns {
		if c.NotNull && vals[c.ID] == nil {
			return nil, fmt.Errorf("sql: null value in column %q", c.Name)
		}
	}
	if t.IsPartitioned() {
		r, err := rowRegion(t, vals)
		if err != nil {
			return nil, err
		}
		if !db.CanWriteRegion(r) {
			return nil, fmt.Errorf("sql: region %q is not writable", r)
		}
	}
	return vals, nil
}

// --- pooled row materialization ---

// rowPoolMax bounds the per-session free list of row maps.
const rowPoolMax = 64

// getRowMap returns a cleared row map from the session pool, or a fresh
// one. Only the cached-plan fetch path draws from the pool, so the
// ablation arm keeps the pre-cache allocation profile.
func (s *Session) getRowMap() map[ColumnID]Datum {
	if n := len(s.rowPool); n > 0 {
		m := s.rowPool[n-1]
		s.rowPool = s.rowPool[:n-1]
		for k := range m {
			delete(m, k)
		}
		return m
	}
	return make(map[ColumnID]Datum, 8)
}

func (s *Session) putRowMap(m map[ColumnID]Datum) {
	if m != nil && len(s.rowPool) < rowPoolMax {
		s.rowPool = append(s.rowPool, m)
	}
}

// releaseRows returns fetched rows' value maps to the pool once a statement
// is done with them (results hold copied datums, never the maps).
func (s *Session) releaseRows(rows []tableRow) {
	for i := range rows {
		s.putRowMap(rows[i].vals)
		rows[i].vals = nil
	}
}

package sql

import (
	"encoding/binary"
	"fmt"
	"math"

	"mrdb/internal/mvcc"
)

// Key/value encoding. Keys use an order-preserving tuple encoding (the same
// idea as CockroachDB's key encoding): the byte comparison of two encoded
// keys matches the tuple comparison of their values. Row values use a
// compact self-describing column encoding.

// Datum is a SQL value: nil, string, int64, float64 or bool. Regions,
// UUIDs and timestamps are represented as strings / int64s at this layer;
// column types (see catalog.go) give them SQL-level meaning.
type Datum interface{}

// Type tags for value encoding.
const (
	tagNull byte = iota
	tagString
	tagInt
	tagFloat
	tagBool
)

// Key-encoding markers. Each encoded datum starts with a marker so that
// different types order deterministically (null first, then bools, ints,
// floats, strings).
const (
	kmNull   byte = 0x01
	kmFalse  byte = 0x02
	kmTrue   byte = 0x03
	kmInt    byte = 0x04
	kmFloat  byte = 0x05
	kmString byte = 0x06
)

// EncodeKeyDatum appends the order-preserving encoding of d to buf.
func EncodeKeyDatum(buf []byte, d Datum) []byte {
	switch v := d.(type) {
	case nil:
		return append(buf, kmNull)
	case bool:
		if v {
			return append(buf, kmTrue)
		}
		return append(buf, kmFalse)
	case int64:
		buf = append(buf, kmInt)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v)^(1<<63))
		return append(buf, b[:]...)
	case int:
		return EncodeKeyDatum(buf, int64(v))
	case float64:
		buf = append(buf, kmFloat)
		bits := math.Float64bits(v)
		if math.Signbit(v) {
			bits = ^bits
		} else {
			bits ^= 1 << 63
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return append(buf, b[:]...)
	case string:
		buf = append(buf, kmString)
		// Escape 0x00 as 0x00 0xFF; terminate with 0x00 0x01 so that
		// prefixes order before extensions.
		for i := 0; i < len(v); i++ {
			if v[i] == 0x00 {
				buf = append(buf, 0x00, 0xFF)
			} else {
				buf = append(buf, v[i])
			}
		}
		return append(buf, 0x00, 0x01)
	default:
		panic(fmt.Sprintf("sql: cannot key-encode %T", d))
	}
}

// KeyTupleSize returns the exact encoded size of a datum tuple, so callers
// can allocate key buffers once at full capacity.
func KeyTupleSize(vals []Datum) int {
	n := 0
	for _, d := range vals {
		switch v := d.(type) {
		case nil, bool:
			n++
		case int64, int:
			n += 9
		case float64:
			n += 9
		case string:
			n += 3 + len(v) // marker + bytes + terminator; 0x00 escapes add more
			for i := 0; i < len(v); i++ {
				if v[i] == 0x00 {
					n++
				}
			}
		default:
			panic(fmt.Sprintf("sql: cannot key-encode %T", d))
		}
	}
	return n
}

// AppendKeyTuple appends the order-preserving encoding of each datum to
// buf; identical bytes to calling EncodeKeyDatum in a loop.
func AppendKeyTuple(buf mvcc.Key, vals []Datum) mvcc.Key {
	for _, v := range vals {
		buf = EncodeKeyDatum(buf, v)
	}
	return buf
}

// DecodeKeyDatum decodes one datum from key, returning it and the rest.
func DecodeKeyDatum(key []byte) (Datum, []byte, error) {
	if len(key) == 0 {
		return nil, nil, fmt.Errorf("sql: empty key")
	}
	switch key[0] {
	case kmNull:
		return nil, key[1:], nil
	case kmFalse:
		return false, key[1:], nil
	case kmTrue:
		return true, key[1:], nil
	case kmInt:
		if len(key) < 9 {
			return nil, nil, fmt.Errorf("sql: truncated int key")
		}
		v := binary.BigEndian.Uint64(key[1:9]) ^ (1 << 63)
		return int64(v), key[9:], nil
	case kmFloat:
		if len(key) < 9 {
			return nil, nil, fmt.Errorf("sql: truncated float key")
		}
		bits := binary.BigEndian.Uint64(key[1:9])
		if bits&(1<<63) != 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		return math.Float64frombits(bits), key[9:], nil
	case kmString:
		var out []byte
		i := 1
		for {
			if i >= len(key) {
				return nil, nil, fmt.Errorf("sql: unterminated string key")
			}
			if key[i] == 0x00 {
				if i+1 >= len(key) {
					return nil, nil, fmt.Errorf("sql: truncated string escape")
				}
				switch key[i+1] {
				case 0x01:
					return string(out), key[i+2:], nil
				case 0xFF:
					out = append(out, 0x00)
					i += 2
				default:
					return nil, nil, fmt.Errorf("sql: bad string escape")
				}
			} else {
				out = append(out, key[i])
				i++
			}
		}
	default:
		return nil, nil, fmt.Errorf("sql: unknown key marker 0x%02x", key[0])
	}
}

// EncodeRow encodes column values (by column ID) as a row value.
func EncodeRow(vals map[ColumnID]Datum) mvcc.Value {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	// Deterministic order: ascending column ID.
	ids := make([]ColumnID, 0, len(vals))
	for id := range vals {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
		switch v := vals[id].(type) {
		case nil:
			buf = append(buf, tagNull)
		case string:
			buf = append(buf, tagString)
			buf = binary.AppendUvarint(buf, uint64(len(v)))
			buf = append(buf, v...)
		case int64:
			buf = append(buf, tagInt)
			buf = binary.AppendVarint(buf, v)
		case int:
			buf = append(buf, tagInt)
			buf = binary.AppendVarint(buf, int64(v))
		case float64:
			buf = append(buf, tagFloat)
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
			buf = append(buf, b[:]...)
		case bool:
			buf = append(buf, tagBool)
			if v {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		default:
			panic(fmt.Sprintf("sql: cannot encode %T", vals[id]))
		}
	}
	return mvcc.Value(buf)
}

// DecodeRow decodes a row value back into column values.
func DecodeRow(val mvcc.Value) (map[ColumnID]Datum, error) {
	out := map[ColumnID]Datum{}
	if err := DecodeRowInto(out, val); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeRowInto decodes a row value into out, which must be empty; the
// plan-cache fast path feeds it pooled maps to avoid per-row map churn.
func DecodeRowInto(out map[ColumnID]Datum, val mvcc.Value) error {
	buf := []byte(val)
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return fmt.Errorf("sql: bad row header")
	}
	buf = buf[sz:]
	for i := uint64(0); i < n; i++ {
		id, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return fmt.Errorf("sql: bad column id")
		}
		buf = buf[sz:]
		if len(buf) == 0 {
			return fmt.Errorf("sql: truncated column")
		}
		tag := buf[0]
		buf = buf[1:]
		switch tag {
		case tagNull:
			out[ColumnID(id)] = nil
		case tagString:
			l, sz := binary.Uvarint(buf)
			if sz <= 0 || uint64(len(buf)-sz) < l {
				return fmt.Errorf("sql: truncated string")
			}
			out[ColumnID(id)] = string(buf[sz : sz+int(l)])
			buf = buf[sz+int(l):]
		case tagInt:
			v, sz := binary.Varint(buf)
			if sz <= 0 {
				return fmt.Errorf("sql: bad int")
			}
			out[ColumnID(id)] = v
			buf = buf[sz:]
		case tagFloat:
			if len(buf) < 8 {
				return fmt.Errorf("sql: truncated float")
			}
			out[ColumnID(id)] = math.Float64frombits(binary.BigEndian.Uint64(buf[:8]))
			buf = buf[8:]
		case tagBool:
			if len(buf) < 1 {
				return fmt.Errorf("sql: truncated bool")
			}
			out[ColumnID(id)] = buf[0] == 1
			buf = buf[1:]
		default:
			return fmt.Errorf("sql: unknown tag %d", tag)
		}
	}
	return nil
}

// DatumsEqual compares two datums for SQL equality (ints and floats
// compare numerically).
func DatumsEqual(a, b Datum) bool {
	if ai, ok := a.(int); ok {
		a = int64(ai)
	}
	if bi, ok := b.(int); ok {
		b = int64(bi)
	}
	if af, ok := a.(int64); ok {
		if bf, ok := b.(float64); ok {
			return float64(af) == bf
		}
	}
	if af, ok := a.(float64); ok {
		if bi, ok := b.(int64); ok {
			return af == float64(bi)
		}
	}
	return a == b
}

// FormatDatum renders a datum for result output.
func FormatDatum(d Datum) string {
	switch v := d.(type) {
	case nil:
		return "NULL"
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

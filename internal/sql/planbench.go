package sql

import "fmt"

// PlanForBench runs the planning path for one prepared DML statement with
// the given placeholder arguments, without executing it: SELECT, UPDATE and
// DELETE go through the plan cache's read planner (or the uncached planner
// when Catalog.PlanCacheOff is set), INSERT through the cached column-
// resolution path. It exists so the speed benchmark can measure planning
// throughput — the work the plan cache amortizes — in isolation: in the
// macro workloads statement execution is dominated by the simulated
// replication and network layers, which the cache leaves bit-identical.
func (s *Session) PlanForBench(ps *Prepared, args ...Datum) error {
	if len(args) != ps.numArgs {
		return fmt.Errorf("sql: prepared statement wants %d args, got %d", ps.numArgs, len(args))
	}
	s.bindPrepared(ps, args)
	defer s.unbindPrepared()
	switch st := ps.Stmt.(type) {
	case *Select:
		t, db, err := s.table(st.Table)
		if err != nil {
			return err
		}
		_, err = s.planReadCached(st, t, db, st.Where, st.Limit)
		return err
	case *Update:
		t, db, err := s.table(st.Table)
		if err != nil {
			return err
		}
		_, err = s.planReadCached(st, t, db, st.Where, 0)
		return err
	case *Delete:
		t, db, err := s.table(st.Table)
		if err != nil {
			return err
		}
		_, err = s.planReadCached(st, t, db, st.Where, 0)
		return err
	case *Insert:
		t, _, err := s.table(st.Table)
		if err != nil {
			return err
		}
		if ci := s.insertPlan(st, t); ci != nil {
			return nil
		}
		// Cache off or uncacheable: resolve columns as execInsert's slow
		// path would.
		for _, name := range st.Columns {
			if _, ok := t.Column(name); !ok {
				return fmt.Errorf("sql: unknown column %s", name)
			}
		}
		return nil
	}
	return fmt.Errorf("sql: cannot plan %T", ps.Stmt)
}

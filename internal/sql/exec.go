package sql

import (
	"fmt"
	"strings"
	"time"

	"mrdb/internal/cluster"
	"mrdb/internal/core"
	"mrdb/internal/hlc"
	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
	"mrdb/internal/zones"
)

// Session executes SQL against a cluster from one gateway node. Sessions
// share the cluster-wide Catalog; each is bound to a gateway whose region
// determines gateway_region() and locality-optimized search order.
type Session struct {
	Cluster *cluster.Cluster
	Catalog *Catalog
	Gateway simnet.NodeID
	Coord   *txn.Coordinator

	// Database is the current database.
	Database string

	// Session settings (SET <name> = on|off).
	LocalityOptimizedSearch bool // enable_locality_optimized_search
	AutoRehoming            bool // enable_auto_rehoming (§2.3.2, off by default)
	UniquenessChecks        bool // enable_uniqueness_checks
	DisableOnePC            bool // disable one-phase commits (ablations)

	// explicit transaction, when the caller manages one.
	activeTxn *txn.Txn

	// --- statement-execution fast path state ---

	// curFP is the fingerprint of the statement currently executing, when
	// the entry point already computed it (ExecStmt, ExecPrepared); the
	// plan cache and StmtStats reuse it instead of recomputing.
	curFP string
	// phArgs are the placeholder arguments bound by ExecPrepared.
	phArgs []Datum
	// curRes is the prepared statement's reusable result buffer.
	curRes *Result
	// lastPlanCache records the plan-cache outcome ("hit"/"miss"/"off") of
	// the last planned statement, for EXPLAIN ANALYZE.
	lastPlanCache string

	// Per-statement scratch reused across executions (the cooperative
	// scheduler runs one statement of this session at a time).
	keyScratch    []byte
	planScratch   readPlan
	tupleScratch  []Datum
	lookupScratch [][]Datum
	regionScratch []simnet.Region
	rowPool       []map[ColumnID]Datum
	// consScratch/consSlab back constraints(); the returned map and its
	// value slices are valid only until the next constraints call.
	consScratch map[string][]Datum
	consSlab    []Datum
	// crRow/crCtx back computedRegionFromConstraints.
	crRow map[string]Datum
	crCtx evalCtx
}

// NewSession opens a session at the given gateway node.
func NewSession(c *cluster.Cluster, catalog *Catalog, gateway simnet.NodeID) *Session {
	return &Session{
		Cluster:                 c,
		Catalog:                 catalog,
		Gateway:                 gateway,
		Coord:                   txn.NewCoordinator(c.Stores[gateway], c.Senders[gateway]),
		LocalityOptimizedSearch: true,
		UniquenessChecks:        true,
	}
}

// Region returns the gateway's region.
func (s *Session) Region() simnet.Region {
	loc, _ := s.Cluster.Topo.LocalityOf(s.Gateway)
	return loc.Region
}

// Result is the outcome of a statement.
type Result struct {
	Columns      []string
	Rows         [][]Datum
	RowsAffected int
}

// takeResult returns the prepared statement's reusable result buffer
// (truncated for refill) when one is bound, or a fresh Result. A reused
// Result is valid until the next ExecPrepared on the same Prepared.
func (s *Session) takeResult() *Result {
	r := s.curRes
	if r == nil {
		return &Result{}
	}
	s.curRes = nil
	r.Rows = r.Rows[:0]
	r.RowsAffected = 0
	return r
}

// Exec parses and executes one statement. DML runs in its own transaction
// with automatic retries unless the session has an explicit transaction.
func (s *Session) Exec(p *sim.Proc, sqlText string) (*Result, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(p, stmt)
}

// MustExec is Exec that panics on error; for tests and examples.
func (s *Session) MustExec(p *sim.Proc, sqlText string) *Result {
	res, err := s.Exec(p, sqlText)
	if err != nil {
		panic(fmt.Sprintf("sql: %v", err))
	}
	return res
}

// ExecStmt executes a parsed statement. When cluster tracing is enabled it
// is the root of the request path's trace: every downstream span —
// transaction phases, DistSender attempts, network RPCs, replica
// evaluation, Raft replication — hangs off the "sql.exec" span started
// here (unless the caller already carries a span, in which case execution
// joins the caller's trace).
func (s *Session) ExecStmt(p *sim.Proc, stmt Statement) (*Result, error) {
	sp, done := s.Cluster.Tracer.StartRootIn(p, "sql.exec")
	sp.SetTag("stmt", strings.TrimPrefix(fmt.Sprintf("%T", stmt), "*sql.")).
		SetTag("gateway_region", string(s.Region()))
	// DML against real tables folds into the statement-statistics registry:
	// virtual-time latency plus the per-statement delta of the coordinator's
	// restart count and the shared sender's WAN RPC count.
	record := false
	var start sim.Time
	var retries0, wan0 int64
	switch stmt.(type) {
	case *Insert, *Update, *Delete, *Select:
		if !isVirtualStmt(stmt) {
			record = true
			// Computed once here, then shared by the plan-cache key and the
			// statistics record below.
			s.curFP = Fingerprint(stmt)
			start = p.Now()
			retries0 = s.Coord.Restarts
			wan0 = s.Coord.Sender.WANRPCs
		}
	}
	res, err := s.execStmt(p, stmt)
	if err != nil {
		sp.SetError(err)
	}
	done()
	if record {
		s.Cluster.StmtStats.Record(s.curFP, p.Now().Sub(start),
			s.Coord.Restarts-retries0, s.Coord.Sender.WANRPCs-wan0, err != nil)
		s.curFP = ""
	}
	return res, err
}

// isVirtualStmt reports whether a DML statement targets a virtual table.
func isVirtualStmt(stmt Statement) bool {
	switch st := stmt.(type) {
	case *Select:
		return IsVirtualTable(st.Table)
	case *Insert:
		return IsVirtualTable(st.Table)
	case *Update:
		return IsVirtualTable(st.Table)
	case *Delete:
		return IsVirtualTable(st.Table)
	}
	return false
}

func (s *Session) execStmt(p *sim.Proc, stmt Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *CreateDatabase:
		return s.execCreateDatabase(st)
	case *AlterDatabase:
		return s.execAlterDatabase(p, st)
	case *CreateTable:
		return s.execCreateTable(p, st)
	case *CreateIndex:
		return s.execCreateIndex(p, st)
	case *AlterTableLocality:
		return s.execAlterTableLocality(p, st)
	case *SetVar:
		return s.execSetVar(st)
	case *ShowRegions:
		return s.execShowRegions(st)
	case *ShowRanges:
		return s.execShowRanges(st)
	case *DropTable:
		return s.execDropTable(st)
	case *Truncate:
		return s.execTruncate(p, st)
	case *Explain:
		return s.execExplain(st)
	case *ExplainAnalyze:
		return s.execExplainAnalyze(p, st)
	case *Insert, *Update, *Delete, *Select:
		return s.execDML(p, stmt)
	}
	return nil, fmt.Errorf("sql: unhandled statement %T", stmt)
}

// BeginTxn starts an explicit transaction; subsequent Exec calls run inside
// it until CommitTxn or RollbackTxn.
func (s *Session) BeginTxn() *txn.Txn {
	s.activeTxn = s.Coord.Begin(0)
	return s.activeTxn
}

// CommitTxn commits the explicit transaction.
func (s *Session) CommitTxn(p *sim.Proc) error {
	if s.activeTxn == nil {
		return fmt.Errorf("sql: no transaction in progress")
	}
	t := s.activeTxn
	s.activeTxn = nil
	return t.Commit(p)
}

// RollbackTxn aborts the explicit transaction.
func (s *Session) RollbackTxn(p *sim.Proc) {
	if s.activeTxn != nil {
		s.activeTxn.Abort(p)
		s.activeTxn = nil
	}
}

// RunTxn executes fn inside a retrying transaction; statements issued via
// ExecTxn within fn share it. Like ExecStmt it roots a trace when tracing
// is enabled and no span is already in flight.
func (s *Session) RunTxn(p *sim.Proc, fn func(tx *txn.Txn) error) error {
	sp, done := s.Cluster.Tracer.StartRootIn(p, "sql.txn")
	sp.SetTag("gateway_region", string(s.Region()))
	err := s.Coord.Run(p, fn)
	if err != nil {
		sp.SetError(err)
	}
	done()
	return err
}

func (s *Session) execDML(p *sim.Proc, stmt Statement) (*Result, error) {
	if isVirtualStmt(stmt) {
		sel, ok := stmt.(*Select)
		if !ok {
			return nil, fmt.Errorf("sql: %s tables are read-only", VirtualSchema)
		}
		// Virtual tables read in-memory cluster state; no transaction.
		return s.execVirtualSelect(sel)
	}
	if sel, ok := stmt.(*Select); ok && sel.AsOf != nil {
		// Stale reads run outside transactions (§5.3).
		return s.execStaleSelect(p, sel)
	}
	if s.activeTxn != nil {
		return s.execDMLInTxn(p, s.activeTxn, stmt)
	}
	var res *Result
	err := s.Coord.Run(p, func(tx *txn.Txn) error {
		// Auto-commit statements are one-phase-commit eligible: a sole
		// write is buffered and committed in a single consensus round at
		// its leaseholder, so no intent ever blocks other transactions.
		tx.AllowOnePC = !s.DisableOnePC
		var err error
		res, err = s.execDMLInTxn(p, tx, stmt)
		return err
	})
	return res, err
}

// ExecTxn executes a DML statement inside the given transaction.
func (s *Session) ExecTxn(p *sim.Proc, tx *txn.Txn, sqlText string) (*Result, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, err
	}
	if sel, ok := stmt.(*Select); ok && sel.AsOf != nil {
		return nil, fmt.Errorf("sql: AS OF SYSTEM TIME not allowed in a read-write transaction")
	}
	return s.execDMLInTxn(p, tx, stmt)
}

func (s *Session) execDMLInTxn(p *sim.Proc, tx *txn.Txn, stmt Statement) (*Result, error) {
	if isVirtualStmt(stmt) {
		sel, ok := stmt.(*Select)
		if !ok {
			return nil, fmt.Errorf("sql: %s tables are read-only", VirtualSchema)
		}
		return s.execVirtualSelect(sel)
	}
	switch st := stmt.(type) {
	case *Insert:
		return s.execInsert(p, tx, st)
	case *Select:
		return s.execSelect(p, tx, st)
	case *Update:
		return s.execUpdate(p, tx, st)
	case *Delete:
		return s.execDelete(p, tx, st)
	}
	return nil, fmt.Errorf("sql: %T is not DML", stmt)
}

func (s *Session) execSetVar(st *SetVar) (*Result, error) {
	on := st.Value == "on" || st.Value == "true" || st.Value == "1"
	switch st.Name {
	case "enable_locality_optimized_search":
		s.LocalityOptimizedSearch = on
	case "enable_auto_rehoming":
		s.AutoRehoming = on
	case "enable_uniqueness_checks":
		s.UniquenessChecks = on
	case "database":
		s.Database = st.Value
	default:
		return nil, fmt.Errorf("sql: unknown setting %q", st.Name)
	}
	return &Result{}, nil
}

func (s *Session) execShowRegions(st *ShowRegions) (*Result, error) {
	res := &Result{Columns: []string{"region", "state"}}
	name := st.Database
	if name == "" {
		// Cluster regions: the union of node regions (§2.1).
		for _, r := range s.Cluster.Topo.Regions() {
			res.Rows = append(res.Rows, []Datum{string(r), "PUBLIC"})
		}
		return res, nil
	}
	db, ok := s.Catalog.Database(name)
	if !ok {
		return nil, fmt.Errorf("sql: database %q does not exist", name)
	}
	for _, r := range db.Regions() {
		state, _ := db.RegionState(r)
		str := "PUBLIC"
		if state == core.RegionReadOnly {
			str = "READ ONLY"
		}
		res.Rows = append(res.Rows, []Datum{string(r), str})
	}
	return res, nil
}

// execDropTable removes a table: its ranges are torn down and the catalog
// entry deleted.
func (s *Session) execDropTable(st *DropTable) (*Result, error) {
	t, db, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	for _, idx := range t.Indexes {
		for _, region := range partitionsOf(t, db) {
			start, _ := IndexSpan(t, idx.ID, region)
			desc, err := s.Cluster.Catalog.Lookup(start)
			if err != nil {
				continue
			}
			for _, id := range desc.Replicas() {
				s.Cluster.Stores[id].RemoveReplica(desc.RangeID)
			}
			s.Cluster.Catalog.Remove(desc.RangeID)
		}
	}
	s.Catalog.DropTable(db.Name, t.Name)
	return &Result{}, nil
}

// execTruncate deletes every row of a table transactionally.
func (s *Session) execTruncate(p *sim.Proc, st *Truncate) (*Result, error) {
	t, db, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	deleted := 0
	err = s.Coord.Run(p, func(tx *txn.Txn) error {
		deleted = 0
		for _, region := range partitionsOf(t, db) {
			start, end := IndexSpan(t, t.Primary().ID, region)
			rows, err := tx.Scan(p, start, end, 0)
			if err != nil {
				return err
			}
			for _, kvp := range rows {
				vals, err := DecodeRow(kvp.Value)
				if err != nil {
					return err
				}
				if err := s.deleteRow(p, tx, t, nil, region, vals); err != nil {
					return err
				}
				deleted++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: deleted}, nil
}

// execShowRanges lists the range descriptors backing a table: one row per
// (index, partition) with lease placement and closed-timestamp policy.
func (s *Session) execShowRanges(st *ShowRanges) (*Result, error) {
	t, db, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"index", "partition", "range_id", "leaseholder", "lease_epoch", "lease_region", "policy", "voters", "non_voters"}}
	for _, idx := range t.Indexes {
		for _, region := range partitionsOf(t, db) {
			start, _ := IndexSpan(t, idx.ID, region)
			desc, err := s.Cluster.Catalog.Lookup(start)
			if err != nil {
				continue
			}
			loc, _ := s.Cluster.Topo.LocalityOf(desc.Leaseholder)
			part := string(region)
			if part == "" {
				part = "-"
			}
			res.Rows = append(res.Rows, []Datum{
				idx.Name, part, int64(desc.RangeID), int64(desc.Leaseholder),
				s.leaseEpochOf(desc.Leaseholder, desc.RangeID),
				string(loc.Region), desc.Policy.String(),
				fmt.Sprintf("%v", desc.Voters), fmt.Sprintf("%v", desc.NonVoters),
			})
		}
	}
	res.RowsAffected = len(res.Rows)
	return res, nil
}

// execExplain renders the read plan: chosen index, candidate partitions,
// and whether locality optimized search applies (§4.2).
func (s *Session) execExplain(st *Explain) (*Result, error) {
	t, db, err := s.table(st.Stmt.Table)
	if err != nil {
		return nil, err
	}
	plan, err := s.planRead(t, db, st.Stmt.Where, st.Stmt.Limit)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"field", "value"}}
	add := func(f, v string) { res.Rows = append(res.Rows, []Datum{f, v}) }
	if plan.lookups != nil {
		add("plan", fmt.Sprintf("point lookup (%d keys)", len(plan.lookups)))
	} else {
		add("plan", "scan")
	}
	add("table", t.Name)
	add("index", plan.index.Name)
	add("locality", t.Locality.String())
	add("partitions", fmt.Sprintf("%v", plan.regions))
	add("region pinned", fmt.Sprintf("%v", plan.regionPinned))
	add("locality optimized search", fmt.Sprintf("%v", plan.los))
	if st.Stmt.AsOf != nil {
		add("as of system time", "stale read (nearest replica)")
	}
	res.RowsAffected = len(res.Rows)
	return res, nil
}

// --- Expression evaluation ---

// evalCtx supplies runtime context for expression evaluation.
type evalCtx struct {
	session *Session
	row     map[string]Datum // current row values by column name
}

func (s *Session) evalExpr(e Expr, ctx *evalCtx) (Datum, error) {
	switch ex := e.(type) {
	case *Lit:
		return ex.Val, nil
	case *Placeholder:
		if ex.Idx < 1 || ex.Idx > len(s.phArgs) {
			return nil, fmt.Errorf("sql: no value for placeholder $%d", ex.Idx)
		}
		return s.phArgs[ex.Idx-1], nil
	case *ColRef:
		if ctx == nil || ctx.row == nil {
			return nil, fmt.Errorf("sql: column %q not available here", ex.Name)
		}
		v, ok := ctx.row[ex.Name]
		if !ok {
			return nil, fmt.Errorf("sql: unknown column %q", ex.Name)
		}
		return v, nil
	case *FuncCall:
		return s.evalFunc(ex, ctx)
	case *BinaryExpr:
		l, err := s.evalExpr(ex.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := s.evalExpr(ex.R, ctx)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "=":
			return DatumsEqual(l, r), nil
		case "+", "-":
			if lf, lok := toFloat(l); lok {
				if rf, rok := toFloat(r); rok {
					// Mixed or float arithmetic yields float; pure int
					// stays int.
					_, li := l.(int64)
					_, ri := r.(int64)
					if li && ri {
						if ex.Op == "+" {
							return l.(int64) + r.(int64), nil
						}
						return l.(int64) - r.(int64), nil
					}
					if ex.Op == "+" {
						return lf + rf, nil
					}
					return lf - rf, nil
				}
			}
			return nil, fmt.Errorf("sql: %s requires numbers", ex.Op)
		}
		return nil, fmt.Errorf("sql: unsupported operator %q", ex.Op)
	case *CaseExpr:
		for _, w := range ex.Whens {
			v, err := s.evalExpr(w.Cond, ctx)
			if err != nil {
				return nil, err
			}
			if b, ok := v.(bool); ok && b {
				return s.evalExpr(w.Then, ctx)
			}
		}
		if ex.Else != nil {
			return s.evalExpr(ex.Else, ctx)
		}
		return nil, nil
	}
	return nil, fmt.Errorf("sql: cannot evaluate %T", e)
}

func toFloat(d Datum) (float64, bool) {
	switch v := d.(type) {
	case int64:
		return float64(v), true
	case int:
		return float64(v), true
	case float64:
		return v, true
	}
	return 0, false
}

func toInt(d Datum) (int64, bool) {
	switch v := d.(type) {
	case int64:
		return v, true
	case int:
		return int64(v), true
	}
	return 0, false
}

func (s *Session) evalFunc(fc *FuncCall, ctx *evalCtx) (Datum, error) {
	switch fc.Name {
	case "gateway_region":
		// §2.3.2: the region the request originated in.
		return string(s.Region()), nil
	case "gen_random_uuid":
		// Deterministic UUIDs from the simulation RNG.
		rng := s.Cluster.Sim.Rand()
		return fmt.Sprintf("%08x-%04x-%04x-%04x-%012x",
			rng.Uint32(), rng.Uint32()&0xffff, rng.Uint32()&0xffff,
			rng.Uint32()&0xffff, rng.Int63()&0xffffffffffff), nil
	case "now":
		return int64(s.Coord.Store.Clock.PhysicalNow()), nil
	case "rehome_row":
		return string(s.Region()), nil
	case "region_from_prefix":
		// Extracts the region from a "region/rest" composite key: the
		// application encodes data placement in its primary keys, as
		// TPC-C does with warehouse IDs.
		if len(fc.Args) != 1 {
			return nil, fmt.Errorf("sql: region_from_prefix takes one argument")
		}
		v, err := s.evalExpr(fc.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		str, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("sql: region_from_prefix requires a string")
		}
		if i := strings.IndexByte(str, '/'); i >= 0 {
			return str[:i], nil
		}
		return nil, fmt.Errorf("sql: key %q has no region prefix", str)
	case "region_from_city", "region_from_warehouse":
		// Helper used in examples/benchmarks: computed-column functions
		// are modeled by CASE in real schemas; these evaluate their
		// argument via a registered mapping.
		if len(fc.Args) != 1 {
			return nil, fmt.Errorf("sql: %s takes one argument", fc.Name)
		}
		v, err := s.evalExpr(fc.Args[0], ctx)
		if err != nil {
			return nil, err
		}
		return s.mapToRegion(v)
	}
	return nil, fmt.Errorf("sql: unknown function %q", fc.Name)
}

// mapToRegion deterministically maps a value onto the current database's
// regions; the stand-in for user-written CASE mappings in benchmarks.
func (s *Session) mapToRegion(v Datum) (Datum, error) {
	db, ok := s.Catalog.Database(s.Database)
	if !ok {
		return nil, fmt.Errorf("sql: no current database")
	}
	regions := db.Regions()
	if len(regions) == 0 {
		return nil, fmt.Errorf("sql: database has no regions")
	}
	var h uint64
	switch x := v.(type) {
	case int64:
		h = uint64(x)
	case string:
		for i := 0; i < len(x); i++ {
			h = h*131 + uint64(x[i])
		}
	default:
		return nil, fmt.Errorf("sql: cannot map %T to a region", v)
	}
	return string(regions[h%uint64(len(regions))]), nil
}

// parseDuration parses interval strings like '30s', '-4.8s', '500ms'.
func parseDuration(s string) (sim.Duration, error) {
	return time.ParseDuration(strings.TrimSpace(s))
}

// resolveAsOfTimestamp converts an AS OF SYSTEM TIME argument to a
// timestamp at the gateway clock.
func (s *Session) resolveAsOfTimestamp(e Expr) (hlc.Timestamp, error) {
	v, err := s.evalExpr(e, nil)
	if err != nil {
		return hlc.Timestamp{}, err
	}
	now := s.Coord.Store.Clock.Now()
	switch x := v.(type) {
	case string:
		d, err := parseDuration(x)
		if err != nil {
			return hlc.Timestamp{}, fmt.Errorf("sql: bad AS OF SYSTEM TIME %q", x)
		}
		return now.Add(d), nil
	case int64:
		return hlc.Timestamp{WallTime: x}, nil
	}
	return hlc.Timestamp{}, fmt.Errorf("sql: bad AS OF SYSTEM TIME value %T", v)
}

// --- helpers shared by DDL and DML ---

func (s *Session) database() (*core.Database, error) {
	db, ok := s.Catalog.Database(s.Database)
	if !ok {
		return nil, fmt.Errorf("sql: no current database (SET database = ...)")
	}
	return db, nil
}

func (s *Session) table(name string) (*Table, *core.Database, error) {
	db, err := s.database()
	if err != nil {
		return nil, nil, err
	}
	t, ok := s.Catalog.Table(db.Name, name)
	if !ok {
		return nil, nil, fmt.Errorf("sql: table %q does not exist", name)
	}
	return t, db, nil
}

// partitionsOf returns the key partitions of an index: the database regions
// for REGIONAL BY ROW tables, or the single empty partition otherwise.
func partitionsOf(t *Table, db *core.Database) []simnet.Region {
	if t.IsPartitioned() {
		return db.Regions()
	}
	return []simnet.Region{""}
}

// createIndexRanges creates the ranges backing one index of a table,
// honoring the table's locality.
func (s *Session) createIndexRanges(t *Table, db *core.Database, idx *Index) error {
	alloc := s.Cluster.Allocator()
	switch {
	case t.DuplicateIndexes && idx.PinnedRegion != "":
		cfg, err := db.ZoneConfigForHome(idx.PinnedRegion, false)
		if err != nil {
			return err
		}
		return s.createRangeForSpan(t, idx.ID, "", cfg, kv.ClosedTSLag, alloc)
	case t.Locality == core.Global:
		tp, err := db.PlacementForTable(core.Global, "")
		if err != nil {
			return err
		}
		cfg := tp.Home[db.PrimaryRegion]
		return s.createRangeForSpan(t, idx.ID, "", cfg, tp.Policy, alloc)
	case t.Locality == core.RegionalByRow:
		tp, err := db.PlacementForTable(core.RegionalByRow, "")
		if err != nil {
			return err
		}
		for _, region := range db.Regions() {
			if err := s.createRangeForSpan(t, idx.ID, region, tp.Home[region], tp.Policy, alloc); err != nil {
				return err
			}
		}
		return nil
	default: // REGIONAL BY TABLE
		tp, err := db.PlacementForTable(core.RegionalByTable, t.HomeRegion)
		if err != nil {
			return err
		}
		home := t.HomeRegion
		if home == "" {
			home = db.PrimaryRegion
		}
		return s.createRangeForSpan(t, idx.ID, "", tp.Home[home], tp.Policy, alloc)
	}
}

func (s *Session) createRangeForSpan(t *Table, idx IndexID, region simnet.Region, cfg zones.Config, policy kv.ClosedTSPolicy, alloc *zones.Allocator) error {
	placement, err := alloc.Allocate(cfg)
	if err != nil {
		return err
	}
	start, end := IndexSpan(t, idx, region)
	desc, err := s.Cluster.Admin.CreateRange(start, end, placement, policy)
	if err != nil {
		return err
	}
	s.Cluster.Catalog.SetZoneConfig(desc.RangeID, cfg)
	return nil
}

// waitTableReady blocks until all of a table's ranges serve.
func (s *Session) waitTableReady(p *sim.Proc, t *Table, db *core.Database) error {
	for _, idx := range t.Indexes {
		for _, region := range partitionsOf(t, db) {
			start, _ := IndexSpan(t, idx.ID, region)
			desc, err := s.Cluster.Catalog.Lookup(start)
			if err != nil {
				return err
			}
			if err := s.Cluster.Admin.WaitReady(p, desc.RangeID); err != nil {
				return err
			}
		}
	}
	return nil
}

var _ = mvcc.Key(nil)

// ExecStmtTxn executes a parsed DML statement inside the given transaction;
// the workload drivers use it to avoid re-parsing hot statements.
func (s *Session) ExecStmtTxn(p *sim.Proc, tx *txn.Txn, stmt Statement) (*Result, error) {
	return s.execDMLInTxn(p, tx, stmt)
}

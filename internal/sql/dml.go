package sql

import (
	"fmt"

	"mrdb/internal/core"
	"mrdb/internal/mvcc"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
)

// --- SELECT ---

func (s *Session) execSelect(p *sim.Proc, tx *txn.Txn, st *Select) (*Result, error) {
	t, db, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	plan, err := s.planReadCached(st, t, db, st.Where, st.Limit)
	if err != nil {
		return nil, err
	}
	fetched, err := s.fetchRows(p, &txnFetcher{tx: tx}, plan)
	if err != nil {
		return nil, err
	}
	rows := fetched
	if !plan.filterRedundant {
		rows, err = s.filterRows(t, rows, st.Where)
		if err != nil {
			return nil, err
		}
	}
	res, err := s.project(t, rows, st.Columns, st.Limit)
	if plan.prefixes != nil {
		s.releaseRows(fetched)
	}
	return res, err
}

// execStaleSelect serves SELECT ... AS OF SYSTEM TIME (paper §5.3): exact
// staleness uses the given timestamp directly; bounded staleness negotiates
// the highest locally servable timestamp before reading.
func (s *Session) execStaleSelect(p *sim.Proc, st *Select) (*Result, error) {
	t, db, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	plan, err := s.planReadCached(st, t, db, st.Where, st.Limit)
	if err != nil {
		return nil, err
	}
	var ts = s.Coord.Store.Clock.Now()
	switch {
	case st.AsOf.Exact != nil:
		ts, err = s.resolveAsOfTimestamp(st.AsOf.Exact)
		if err != nil {
			return nil, err
		}
	case st.AsOf.MinTimestamp != nil, st.AsOf.MaxStaleness != nil:
		var minTS = ts
		if st.AsOf.MinTimestamp != nil {
			minTS, err = s.resolveAsOfTimestamp(st.AsOf.MinTimestamp)
		} else {
			v, verr := s.evalExpr(st.AsOf.MaxStaleness, nil)
			if verr != nil {
				return nil, verr
			}
			str, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("sql: with_max_staleness requires an interval string")
			}
			d, derr := parseDuration(str)
			if derr != nil {
				return nil, derr
			}
			minTS = s.Coord.MaxStalenessToMinTS(d)
		}
		if err != nil {
			return nil, err
		}
		// Negotiate over the spans the plan will touch (§5.3.2).
		var spans [][2]mvcc.Key
		for _, region := range plan.regions {
			start, end := IndexSpan(t, plan.index.ID, region)
			spans = append(spans, [2]mvcc.Key{start, end})
		}
		negotiated, err := s.Coord.Sender.NegotiateBoundedStaleness(p, spans)
		if err != nil {
			return nil, err
		}
		now := s.Coord.Store.Clock.Now()
		if negotiated.IsEmpty() || now.Less(negotiated) {
			negotiated = now
		}
		if negotiated.Less(minTS) {
			// Fall back to the leaseholder at the bound.
			negotiated = minTS
		}
		ts = negotiated
	}
	fetched, err := s.fetchRows(p, &staleFetcher{co: s.Coord, ts: ts}, plan)
	if err != nil {
		return nil, err
	}
	rows := fetched
	if !plan.filterRedundant {
		rows, err = s.filterRows(t, rows, st.Where)
		if err != nil {
			return nil, err
		}
	}
	res, err := s.project(t, rows, st.Columns, st.Limit)
	if plan.prefixes != nil {
		s.releaseRows(fetched)
	}
	return res, err
}

// project builds the result set: named columns, or all visible columns for
// SELECT * (hidden columns like crdb_region stay hidden, §2.3.2).
func (s *Session) project(t *Table, rows []tableRow, cols []string, limit int) (*Result, error) {
	var outCols []*Column
	if cols == nil {
		outCols = t.VisibleColumns()
	} else {
		for _, name := range cols {
			c, ok := t.Column(name)
			if !ok {
				return nil, fmt.Errorf("sql: unknown column %q", name)
			}
			outCols = append(outCols, c)
		}
	}
	res := s.takeResult()
	if res.Columns == nil {
		for _, c := range outCols {
			res.Columns = append(res.Columns, c.Name)
		}
	}
	// Refill a reused result's row slices in place (datums are copied out of
	// the fetched rows, so a recycled backing array is safe to overwrite).
	prev := res.Rows[:cap(res.Rows)]
	for _, row := range rows {
		var out []Datum
		if n := len(res.Rows); n < len(prev) && prev[n] != nil {
			out = prev[n][:0]
		}
		for _, c := range outCols {
			out = append(out, row.vals[c.ID])
		}
		res.Rows = append(res.Rows, out)
		if limit > 0 && len(res.Rows) >= limit {
			break
		}
	}
	res.RowsAffected = len(res.Rows)
	return res, nil
}

// --- INSERT ---

func (s *Session) execInsert(p *sim.Proc, tx *txn.Txn, st *Insert) (*Result, error) {
	t, db, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	// Cached shape: column resolution and the default/computed schedule are
	// reused; values still evaluate per row in the slow path's order.
	ci := s.insertPlan(st, t)
	var pc *prefixCache
	var cols []string
	if ci != nil {
		pc = &ci.prefixes
	} else {
		cols = st.Columns
		if cols == nil {
			for _, c := range t.VisibleColumns() {
				cols = append(cols, c.Name)
			}
		}
	}
	type insRow struct {
		vals        map[ColumnID]Datum
		fromDefault map[ColumnID]bool
		region      simnet.Region
	}
	var rows []insRow
	for _, rowExprs := range st.Rows {
		var vals map[ColumnID]Datum
		var fromDefault map[ColumnID]bool
		if ci != nil {
			if len(rowExprs) != len(ci.cols) {
				return nil, fmt.Errorf("sql: %d values for %d columns", len(rowExprs), len(ci.cols))
			}
			vals, err = s.buildRowValuesCached(ci, t, db, rowExprs)
			fromDefault = ci.fromDefault
		} else {
			if len(rowExprs) != len(cols) {
				return nil, fmt.Errorf("sql: %d values for %d columns", len(rowExprs), len(cols))
			}
			vals, fromDefault, err = s.buildRowValues(t, db, cols, rowExprs)
		}
		if err != nil {
			return nil, err
		}
		region, err := rowRegion(t, vals)
		if err != nil {
			return nil, err
		}
		rows = append(rows, insRow{vals: vals, fromDefault: fromDefault, region: region})
	}
	if st.Upsert {
		for _, r := range rows {
			if err := s.upsertRow(p, tx, t, db, pc, r.vals); err != nil {
				return nil, err
			}
		}
		res := s.takeResult()
		res.RowsAffected = len(rows)
		return res, nil
	}
	// Uniqueness checks (paper §4.1) for the whole statement at once:
	// same-statement duplicates are caught against the pending write set
	// (the keys earlier rows will lay down), and all remaining partition
	// probes go out as one batched read — one KV RPC per touched range
	// instead of one per row.
	var probeKeys []mvcc.Key
	type probeRef struct {
		idx    *Index
		region simnet.Region
	}
	var probeRefs []probeRef
	pending := map[string]bool{}
	for _, r := range rows {
		for _, idx := range t.Indexes {
			if !idx.Unique {
				continue
			}
			var tuple []Datum
			for _, cid := range idx.Cols {
				tuple = append(tuple, r.vals[cid])
			}
			for _, pr := range uniqueProbeRegions(t, db, idx, r.region, r.fromDefault, s.UniquenessChecks) {
				key := encodeIndexKey(pc, t, idx, pr, tuple)
				if pending[string(key)] {
					return nil, fmt.Errorf("sql: duplicate key value violates unique constraint %q (region %s)", idx.Name, pr)
				}
				probeKeys = append(probeKeys, key)
				probeRefs = append(probeRefs, probeRef{idx: idx, region: pr})
			}
		}
		for _, key := range uniqueWriteKeys(t, pc, r.region, r.vals) {
			pending[string(key)] = true
		}
	}
	if len(probeKeys) > 0 {
		found, err := tx.GetParallel(p, probeKeys)
		if err != nil {
			return nil, err
		}
		for i, v := range found {
			if v != nil {
				return nil, fmt.Errorf("sql: duplicate key value violates unique constraint %q (region %s)", probeRefs[i].idx.Name, probeRefs[i].region)
			}
		}
	}
	// All rows' index entries go out as one batch: the DistSender splits it
	// by range and the statement pays the max, not the sum, of per-range
	// round trips.
	var kvs []mvcc.KeyValue
	for _, r := range rows {
		kvs = append(kvs, rowKVs(t, pc, r.region, r.vals)...)
	}
	if err := tx.PutParallel(p, kvs); err != nil {
		return nil, err
	}
	res := s.takeResult()
	res.RowsAffected = len(rows)
	return res, nil
}

// uniqueProbeRegions returns the partitions a unique-index check must probe
// for a row homed in region: the local partition always, plus every remote
// partition unless the check can be elided (paper §4.1): the value came
// from gen_random_uuid() (case 1), the region column is part of the index
// (case 2), or the region is computed from the indexed columns (case 3).
func uniqueProbeRegions(t *Table, db *core.Database, idx *Index, region simnet.Region, fromDefault map[ColumnID]bool, remoteChecks bool) []simnet.Region {
	checkRegions := []simnet.Region{region}
	if !t.IsPartitioned() || !remoteChecks {
		return checkRegions
	}
	elide := false
	// §4.1 (1): generated UUIDs never collide; skip remote checks.
	if len(idx.Cols) == 1 && fromDefault[idx.Cols[0]] {
		elide = true
	}
	// §4.1 (2): the region column is part of the unique constraint.
	for _, cid := range idx.Cols {
		if cid == t.RegionColumn {
			elide = true
		}
	}
	// §4.1 (3): the region is computed from the unique columns, so
	// per-partition uniqueness implies global uniqueness.
	if regionCol, ok := t.ColumnByID(t.RegionColumn); ok && regionCol.Computed != nil {
		deps := exprColumnDeps(regionCol.Computed)
		idxNames := map[string]bool{}
		for _, cid := range idx.Cols {
			c, _ := t.ColumnByID(cid)
			idxNames[c.Name] = true
		}
		covered := true
		for _, d := range deps {
			if !idxNames[d] {
				covered = false
			}
		}
		if covered && len(deps) > 0 {
			elide = true
		}
	}
	if !elide {
		for _, r := range db.Regions() {
			if r != region {
				checkRegions = append(checkRegions, r)
			}
		}
	}
	return checkRegions
}

// uniqueWriteKeys lists the unique-index keys a row write lays down, using
// the same per-index region logic as rowKVs.
func uniqueWriteKeys(t *Table, pc *prefixCache, region simnet.Region, vals map[ColumnID]Datum) []mvcc.Key {
	var keys []mvcc.Key
	for _, idx := range t.Indexes {
		if !idx.Unique {
			continue
		}
		idxRegion := region
		if idx.PinnedRegion != "" && !t.IsPartitioned() {
			idxRegion = ""
		}
		var tuple []Datum
		for _, cid := range idx.Cols {
			tuple = append(tuple, vals[cid])
		}
		keys = append(keys, encodeIndexKey(pc, t, idx, idxRegion, tuple))
	}
	return keys
}

// buildRowValues evaluates provided expressions, fills defaults, computes
// computed columns and validates constraints. fromDefault records columns
// whose value came from a gen_random_uuid() default (uniqueness checks for
// them are elided, §4.1).
func (s *Session) buildRowValues(t *Table, db *core.Database, cols []string, exprs []Expr) (map[ColumnID]Datum, map[ColumnID]bool, error) {
	vals := map[ColumnID]Datum{}
	provided := map[ColumnID]bool{}
	for i, name := range cols {
		c, ok := t.Column(name)
		if !ok {
			return nil, nil, fmt.Errorf("sql: unknown column %q", name)
		}
		v, err := s.evalExpr(exprs[i], nil)
		if err != nil {
			return nil, nil, err
		}
		vals[c.ID] = v
		provided[c.ID] = true
	}
	fromDefault := map[ColumnID]bool{}
	for _, c := range t.Columns {
		if provided[c.ID] || c.Computed != nil {
			continue
		}
		if c.Default != nil {
			v, err := s.evalExpr(c.Default, &evalCtx{session: s, row: t.namedVals(vals)})
			if err != nil {
				return nil, nil, err
			}
			vals[c.ID] = v
			if fc, ok := c.Default.(*FuncCall); ok && fc.Name == "gen_random_uuid" {
				fromDefault[c.ID] = true
			}
		}
	}
	// Computed columns evaluate last, over the full row.
	for _, c := range t.Columns {
		if c.Computed != nil {
			v, err := s.evalExpr(c.Computed, &evalCtx{session: s, row: t.namedVals(vals)})
			if err != nil {
				return nil, nil, err
			}
			vals[c.ID] = v
		}
	}
	for _, c := range t.Columns {
		if c.NotNull && vals[c.ID] == nil {
			return nil, nil, fmt.Errorf("sql: null value in column %q", c.Name)
		}
	}
	// Region writability: a READ ONLY region value (mid DROP REGION,
	// §2.4.1) rejects writes.
	if t.IsPartitioned() {
		r, err := rowRegion(t, vals)
		if err != nil {
			return nil, nil, err
		}
		if !db.CanWriteRegion(r) {
			return nil, nil, fmt.Errorf("sql: region %q is not writable", r)
		}
	}
	return vals, fromDefault, nil
}

// rowRegion extracts the partition region of a row.
func rowRegion(t *Table, vals map[ColumnID]Datum) (simnet.Region, error) {
	if !t.IsPartitioned() {
		return "", nil
	}
	v := vals[t.RegionColumn]
	r, ok := v.(string)
	if !ok || r == "" {
		return "", fmt.Errorf("sql: row has no region value")
	}
	return simnet.Region(r), nil
}

// upsertRow blindly overwrites a row: no uniqueness checks, no existence
// read. It requires every index key to be a function of the primary key so
// stale index entries cannot arise, and an unpartitioned table (a blind
// write cannot know which partition an existing row lives in).
func (s *Session) upsertRow(p *sim.Proc, tx *txn.Txn, t *Table, db *core.Database, pc *prefixCache, vals map[ColumnID]Datum) error {
	if t.IsPartitioned() {
		return fmt.Errorf("sql: UPSERT is not supported on REGIONAL BY ROW tables")
	}
	pkSet := map[ColumnID]bool{}
	for _, cid := range t.Primary().Cols {
		pkSet[cid] = true
	}
	for _, idx := range t.Indexes {
		for _, cid := range idx.Cols {
			if !pkSet[cid] {
				return fmt.Errorf("sql: UPSERT requires index %q keys to derive from the primary key", idx.Name)
			}
		}
	}
	return s.writeRow(p, tx, t, pc, "", vals)
}

// uniquenessCheck verifies no other row has the same values for a unique
// index. The local partition is always checked (the write itself needs it);
// remote partitions are probed in one batched read unless the check can be
// elided (see uniqueProbeRegions). Absence must hold everywhere, so unlike
// LOS there is no early exit (the latency is the max RTT). excludePK skips
// a row with the same primary key (for UPDATEs rewriting themselves).
func (s *Session) uniquenessCheck(p *sim.Proc, tx *txn.Txn, t *Table, db *core.Database, idx *Index, pc *prefixCache, region simnet.Region, vals map[ColumnID]Datum, fromDefault map[ColumnID]bool, excludePK []Datum) error {
	var tuple []Datum
	for _, cid := range idx.Cols {
		tuple = append(tuple, vals[cid])
	}
	checkRegions := uniqueProbeRegions(t, db, idx, region, fromDefault, s.UniquenessChecks)
	keys := make([]mvcc.Key, len(checkRegions))
	for i, r := range checkRegions {
		keys[i] = encodeIndexKey(pc, t, idx, r, tuple)
	}
	found, err := tx.GetParallel(p, keys)
	if err != nil {
		return err
	}
	for i, val := range found {
		if val == nil {
			continue
		}
		// Same-row exemption for UPDATE.
		if excludePK != nil {
			existing, err := DecodeRow(val)
			if err == nil {
				same := true
				for j, cid := range t.Primary().Cols {
					if !DatumsEqual(existing[cid], excludePK[j]) {
						same = false
						break
					}
				}
				if same {
					continue
				}
			}
		}
		return fmt.Errorf("sql: duplicate key value violates unique constraint %q (region %s)", idx.Name, checkRegions[i])
	}
	return nil
}

// writeRow writes the primary row and every index entry as one batch.
func (s *Session) writeRow(p *sim.Proc, tx *txn.Txn, t *Table, pc *prefixCache, region simnet.Region, vals map[ColumnID]Datum) error {
	return tx.PutParallel(p, rowKVs(t, pc, region, vals))
}

// rowKVs builds the primary-row and index-entry writes for one row.
func rowKVs(t *Table, pc *prefixCache, region simnet.Region, vals map[ColumnID]Datum) []mvcc.KeyValue {
	var kvs []mvcc.KeyValue
	primary := t.Primary()
	var pkTuple []Datum
	for _, cid := range primary.Cols {
		pkTuple = append(pkTuple, vals[cid])
	}
	pkMap := map[ColumnID]Datum{}
	for _, cid := range primary.Cols {
		pkMap[cid] = vals[cid]
	}
	pkVal := EncodeRow(pkMap)
	for _, idx := range t.Indexes {
		idxRegion := region
		if idx.PinnedRegion != "" && !t.IsPartitioned() {
			idxRegion = "" // duplicate indexes are unpartitioned
		}
		var tuple []Datum
		for _, cid := range idx.Cols {
			tuple = append(tuple, vals[cid])
		}
		key := encodeIndexKey(pc, t, idx, idxRegion, tuple)
		if !idx.Unique {
			key = append(key, EncodeTupleSuffix(pkTuple)...)
		}
		var val mvcc.Value
		switch {
		case idx.ID == t.Primary().ID || len(idx.Storing) > 0:
			val = EncodeRow(vals)
		default:
			val = pkVal
		}
		kvs = append(kvs, mvcc.KeyValue{Key: key, Value: val})
	}
	return kvs
}

// deleteRow removes the primary row and index entries.
func (s *Session) deleteRow(p *sim.Proc, tx *txn.Txn, t *Table, pc *prefixCache, region simnet.Region, vals map[ColumnID]Datum) error {
	return tx.PutParallel(p, deleteKVs(t, pc, region, vals))
}

// deleteKVs builds the tombstone writes removing one row.
func deleteKVs(t *Table, pc *prefixCache, region simnet.Region, vals map[ColumnID]Datum) []mvcc.KeyValue {
	var kvs []mvcc.KeyValue
	primary := t.Primary()
	var pkTuple []Datum
	for _, cid := range primary.Cols {
		pkTuple = append(pkTuple, vals[cid])
	}
	for _, idx := range t.Indexes {
		idxRegion := region
		if idx.PinnedRegion != "" && !t.IsPartitioned() {
			idxRegion = ""
		}
		var tuple []Datum
		for _, cid := range idx.Cols {
			tuple = append(tuple, vals[cid])
		}
		key := encodeIndexKey(pc, t, idx, idxRegion, tuple)
		if !idx.Unique {
			key = append(key, EncodeTupleSuffix(pkTuple)...)
		}
		kvs = append(kvs, mvcc.KeyValue{Key: key, Value: nil})
	}
	return kvs
}

// --- UPDATE ---

func (s *Session) execUpdate(p *sim.Proc, tx *txn.Txn, st *Update) (*Result, error) {
	t, db, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	plan, err := s.planReadCached(st, t, db, st.Where, 0)
	if err != nil {
		return nil, err
	}
	pc := plan.prefixes
	// UPDATE reads lock their rows (implicit SELECT FOR UPDATE) so
	// read-modify-write transactions queue rather than restart.
	fetched, err := s.fetchRows(p, &txnFetcher{tx: tx, forUpdate: plan.lookups != nil}, plan)
	if err != nil {
		return nil, err
	}
	rows := fetched
	if !plan.filterRedundant {
		rows, err = s.filterRows(t, rows, st.Where)
		if err != nil {
			return nil, err
		}
	}
	pkSet := map[ColumnID]bool{}
	for _, cid := range t.Primary().Cols {
		pkSet[cid] = true
	}
	updated := 0
	for _, row := range rows {
		newVals := map[ColumnID]Datum{}
		for k, v := range row.vals {
			newVals[k] = v
		}
		changed := map[ColumnID]bool{}
		for _, a := range st.Set {
			c, ok := t.Column(a.Col)
			if !ok {
				return nil, fmt.Errorf("sql: unknown column %q", a.Col)
			}
			if pkSet[c.ID] {
				return nil, fmt.Errorf("sql: updating primary key column %q is not supported", a.Col)
			}
			v, err := s.evalExpr(a.Val, &evalCtx{session: s, row: t.namedVals(row.vals)})
			if err != nil {
				return nil, err
			}
			newVals[c.ID] = v
			changed[c.ID] = true
		}
		// Automatic rehoming (§2.3.2): the row moves to the gateway's
		// region when enabled (via setting or ON UPDATE rehome_row()).
		if t.IsPartitioned() {
			regionCol, _ := t.ColumnByID(t.RegionColumn)
			rehome := s.AutoRehoming || regionCol.OnUpdateRehome
			if rehome && regionCol.Computed == nil && !changed[t.RegionColumn] {
				gw := string(s.Region())
				if db.CanWriteRegion(simnet.Region(gw)) && newVals[t.RegionColumn] != gw {
					newVals[t.RegionColumn] = gw
					changed[t.RegionColumn] = true
				}
			}
		}
		// Recompute computed columns over the new row.
		for _, c := range t.Columns {
			if c.Computed != nil {
				v, err := s.evalExpr(c.Computed, &evalCtx{session: s, row: t.namedVals(newVals)})
				if err != nil {
					return nil, err
				}
				if !DatumsEqual(v, newVals[c.ID]) {
					newVals[c.ID] = v
					changed[c.ID] = true
				}
			}
		}
		newRegion, err := rowRegion(t, newVals)
		if err != nil {
			return nil, err
		}
		if t.IsPartitioned() && !db.CanWriteRegion(newRegion) {
			return nil, fmt.Errorf("sql: region %q is not writable", newRegion)
		}
		// Uniqueness checks for changed unique columns.
		var pkTuple []Datum
		for _, cid := range t.Primary().Cols {
			pkTuple = append(pkTuple, newVals[cid])
		}
		for _, idx := range t.Indexes {
			if !idx.Unique || idx.ID == t.Primary().ID {
				continue
			}
			touched := false
			for _, cid := range idx.Cols {
				if changed[cid] {
					touched = true
				}
			}
			if touched {
				if err := s.uniquenessCheck(p, tx, t, db, idx, pc, newRegion, newVals, nil, pkTuple); err != nil {
					return nil, err
				}
			}
		}
		if newRegion != row.region && t.IsPartitioned() {
			// Cross-partition move (rehoming): delete + reinsert.
			if err := s.deleteRow(p, tx, t, pc, row.region, row.vals); err != nil {
				return nil, err
			}
			if err := s.writeRow(p, tx, t, pc, newRegion, newVals); err != nil {
				return nil, err
			}
		} else {
			// Rewrite the row; refresh index entries whose keys changed.
			if err := s.updateIndexEntries(p, tx, t, pc, row.region, row.vals, newVals, changed); err != nil {
				return nil, err
			}
		}
		updated++
	}
	if pc != nil {
		s.releaseRows(fetched)
	}
	res := s.takeResult()
	res.RowsAffected = updated
	return res, nil
}

func (s *Session) updateIndexEntries(p *sim.Proc, tx *txn.Txn, t *Table, pc *prefixCache, region simnet.Region, oldVals, newVals map[ColumnID]Datum, changed map[ColumnID]bool) error {
	var kvs []mvcc.KeyValue
	primary := t.Primary()
	var pkTuple []Datum
	for _, cid := range primary.Cols {
		pkTuple = append(pkTuple, newVals[cid])
	}
	pkMap := map[ColumnID]Datum{}
	for _, cid := range primary.Cols {
		pkMap[cid] = newVals[cid]
	}
	pkVal := EncodeRow(pkMap)
	for _, idx := range t.Indexes {
		idxRegion := region
		if idx.PinnedRegion != "" && !t.IsPartitioned() {
			idxRegion = ""
		}
		keyChanged := false
		for _, cid := range idx.Cols {
			if changed[cid] {
				keyChanged = true
			}
		}
		newTuple := make([]Datum, 0, len(idx.Cols))
		for _, cid := range idx.Cols {
			newTuple = append(newTuple, newVals[cid])
		}
		newKey := encodeIndexKey(pc, t, idx, idxRegion, newTuple)
		if !idx.Unique {
			newKey = append(newKey, EncodeTupleSuffix(pkTuple)...)
		}
		if keyChanged {
			oldTuple := make([]Datum, 0, len(idx.Cols))
			for _, cid := range idx.Cols {
				oldTuple = append(oldTuple, oldVals[cid])
			}
			oldKey := encodeIndexKey(pc, t, idx, idxRegion, oldTuple)
			if !idx.Unique {
				oldKey = append(oldKey, EncodeTupleSuffix(pkTuple)...)
			}
			kvs = append(kvs, mvcc.KeyValue{Key: oldKey, Value: nil})
		}
		needsRewrite := keyChanged || idx.ID == t.Primary().ID || len(idx.Storing) > 0
		if needsRewrite {
			var val mvcc.Value
			if idx.ID == t.Primary().ID || len(idx.Storing) > 0 {
				val = EncodeRow(newVals)
			} else {
				val = pkVal
			}
			kvs = append(kvs, mvcc.KeyValue{Key: newKey, Value: val})
		}
	}
	return tx.PutParallel(p, kvs)
}

// --- DELETE ---

func (s *Session) execDelete(p *sim.Proc, tx *txn.Txn, st *Delete) (*Result, error) {
	t, db, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	plan, err := s.planReadCached(st, t, db, st.Where, 0)
	if err != nil {
		return nil, err
	}
	fetched, err := s.fetchRows(p, &txnFetcher{tx: tx, forUpdate: plan.lookups != nil}, plan)
	if err != nil {
		return nil, err
	}
	rows := fetched
	if !plan.filterRedundant {
		rows, err = s.filterRows(t, rows, st.Where)
		if err != nil {
			return nil, err
		}
	}
	// All rows' tombstones go out as one per-range-batched write.
	var kvs []mvcc.KeyValue
	for _, row := range rows {
		kvs = append(kvs, deleteKVs(t, plan.prefixes, row.region, row.vals)...)
	}
	if err := tx.PutParallel(p, kvs); err != nil {
		return nil, err
	}
	n := len(rows)
	if plan.prefixes != nil {
		s.releaseRows(fetched)
	}
	res := s.takeResult()
	res.RowsAffected = n
	return res, nil
}

// --- Backfills ---

// backfillIndex populates a newly created secondary index from the primary
// index.
func (s *Session) backfillIndex(p *sim.Proc, t *Table, db *core.Database, idx *Index) error {
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		for _, region := range partitionsOf(t, db) {
			start, end := IndexSpan(t, t.Primary().ID, region)
			kvs, err := tx.Scan(p, start, end, 0)
			if err != nil {
				return err
			}
			for _, kvp := range kvs {
				vals, err := DecodeRow(kvp.Value)
				if err != nil {
					return err
				}
				var tuple []Datum
				for _, cid := range idx.Cols {
					tuple = append(tuple, vals[cid])
				}
				key := EncodeIndexKey(t, idx, region, tuple)
				var pkTuple []Datum
				pkMap := map[ColumnID]Datum{}
				for _, cid := range t.Primary().Cols {
					pkTuple = append(pkTuple, vals[cid])
					pkMap[cid] = vals[cid]
				}
				if !idx.Unique {
					key = append(key, EncodeTupleSuffix(pkTuple)...)
				}
				if err := tx.Put(p, key, EncodeRow(pkMap)); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// backfillLocalityChange copies all rows from the old primary index into
// the new index set during an ALTER ... SET LOCALITY repartition (§2.4.2).
// Rows gaining a crdb_region column during conversion to REGIONAL BY ROW
// adopt the column's default at the ALTER's gateway.
func (s *Session) backfillLocalityChange(p *sim.Proc, t *Table, db *core.Database, oldPrimary *Index, oldPartitioned bool, newIndexes []*Index) error {
	oldRegions := []simnet.Region{""}
	if oldPartitioned {
		oldRegions = db.Regions()
	}
	return s.Coord.Run(p, func(tx *txn.Txn) error {
		for _, oldRegion := range oldRegions {
			start, end := IndexSpan(t, oldPrimary.ID, oldRegion)
			kvs, err := tx.Scan(p, start, end, 0)
			if err != nil {
				return err
			}
			for _, kvp := range kvs {
				vals, err := DecodeRow(kvp.Value)
				if err != nil {
					return err
				}
				if t.IsPartitioned() {
					if _, ok := vals[t.RegionColumn].(string); !ok {
						col, _ := t.ColumnByID(t.RegionColumn)
						v, err := s.evalExpr(col.Default, &evalCtx{session: s, row: t.namedVals(vals)})
						if err != nil {
							return err
						}
						vals[t.RegionColumn] = v
					}
				}
				region, err := rowRegion(t, vals)
				if err != nil {
					return err
				}
				// Write through the new index set only. writeRow yields, so
				// bump across the swap: a concurrent session must not cache
				// a plan against the transient index set (or keep one from
				// before the restore).
				saved := t.Indexes
				t.Indexes = newIndexes
				s.Catalog.Bump()
				err = s.writeRow(p, tx, t, nil, region, vals)
				t.Indexes = saved
				s.Catalog.Bump()
				if err != nil {
					return err
				}
			}
		}
		return nil
	})
}
